GO ?= go

.PHONY: all check fmt vet build test bench

all: check

# check chains every gate in order: formatting, vet, build, the full test
# suite under the race detector, then a short benchmark pass.
check: fmt vet build test bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bench runs the micro-benchmarks briefly — enough to catch a throughput
# cliff, not a full measurement run.
bench:
	$(GO) test . -run '^$$' -bench 'Replay|RunBenchmark|TraceGeneration' -benchtime 1x -benchmem
