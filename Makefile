GO ?= go

.PHONY: all check fmt vet build test bench bench-json fuzz

all: check

# check chains every gate in order: formatting, vet, build, the full test
# suite under the race detector, a fuzz smoke pass, then a short benchmark
# pass.
check: fmt vet build test fuzz bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# fuzz gives each trace-decoder fuzz target a short budget — a smoke pass
# that exercises the corpus plus a few seconds of mutation, not a soak.
FUZZTIME ?= 5s
fuzz:
	$(GO) test ./internal/memtrace -run '^$$' -fuzz FuzzReadTrace -fuzztime $(FUZZTIME)
	$(GO) test ./internal/memtrace -run '^$$' -fuzz FuzzReadDinero -fuzztime $(FUZZTIME)
	$(GO) test ./internal/memtrace -run '^$$' -fuzz FuzzLenientReaders -fuzztime $(FUZZTIME)

# bench runs the micro-benchmarks briefly — enough to catch a throughput
# cliff, not a full measurement run.
bench:
	$(GO) test . -run '^$$' -bench 'Replay|RunBenchmark|TraceGeneration' -benchtime 1x -benchmem

# bench-json measures the replay loop with telemetry off vs on
# (ns/op, allocs/op) and writes the comparison to BENCH_telemetry.json.
BENCH_JSON_OUT ?= BENCH_telemetry.json
bench-json:
	BENCH_JSON=$(BENCH_JSON_OUT) $(GO) test . -run TestWriteBenchTelemetryJSON -v
