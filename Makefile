GO ?= go

.PHONY: all check fmt vet build test shuffle cover bench bench-json bench-gate fuzz loadtest loadtest-full trace-e2e

all: check

# check chains every gate in order: formatting, vet, build, the full test
# suite under the race detector, a fuzz smoke pass, then a short benchmark
# pass.
check: fmt vet build test fuzz bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# shuffle reruns the whole suite in randomized test and subtest order to
# flush out inter-test state dependence.
shuffle:
	$(GO) test -shuffle=on ./...

# cover enforces coverage floors on the subsystems whose interesting
# branches a quick test run can silently stop exercising: the fan-out
# engine (cancellation, panic relay, backpressure), the job queue
# (retry classification, drain, admission, store quarantine), and the
# sharded-replay engine (fallback matrix, panic relay, merge paths).
FANOUT_COVER_MIN ?= 85.0
JOBQUEUE_COVER_MIN ?= 80.0
SHARDREPLAY_COVER_MIN ?= 85.0
cover:
	$(GO) test -coverprofile=cover_fanout.out ./internal/fanout
	@total=$$($(GO) tool cover -func=cover_fanout.out | awk '/^total:/ { sub(/%/, "", $$NF); print $$NF }'); \
	rm -f cover_fanout.out; \
	echo "internal/fanout coverage: $$total% (floor $(FANOUT_COVER_MIN)%)"; \
	awk -v got="$$total" -v min="$(FANOUT_COVER_MIN)" \
		'BEGIN { if (got+0 < min+0) { print "coverage below floor"; exit 1 } }'
	$(GO) test -short -coverprofile=cover_jobqueue.out ./internal/jobqueue
	@total=$$($(GO) tool cover -func=cover_jobqueue.out | awk '/^total:/ { sub(/%/, "", $$NF); print $$NF }'); \
	rm -f cover_jobqueue.out; \
	echo "internal/jobqueue coverage: $$total% (floor $(JOBQUEUE_COVER_MIN)%)"; \
	awk -v got="$$total" -v min="$(JOBQUEUE_COVER_MIN)" \
		'BEGIN { if (got+0 < min+0) { print "coverage below floor"; exit 1 } }'
	$(GO) test -coverprofile=cover_shardreplay.out ./internal/shardreplay
	@total=$$($(GO) tool cover -func=cover_shardreplay.out | awk '/^total:/ { sub(/%/, "", $$NF); print $$NF }'); \
	rm -f cover_shardreplay.out; \
	echo "internal/shardreplay coverage: $$total% (floor $(SHARDREPLAY_COVER_MIN)%)"; \
	awk -v got="$$total" -v min="$(SHARDREPLAY_COVER_MIN)" \
		'BEGIN { if (got+0 < min+0) { print "coverage below floor"; exit 1 } }'

# fuzz gives each trace-decoder fuzz target a short budget — a smoke pass
# that exercises the corpus plus a few seconds of mutation, not a soak.
FUZZTIME ?= 5s
fuzz:
	$(GO) test ./internal/memtrace -run '^$$' -fuzz FuzzReadTrace -fuzztime $(FUZZTIME)
	$(GO) test ./internal/memtrace -run '^$$' -fuzz FuzzReadDinero -fuzztime $(FUZZTIME)
	$(GO) test ./internal/memtrace -run '^$$' -fuzz FuzzLenientReaders -fuzztime $(FUZZTIME)
	$(GO) test ./internal/shardreplay -run '^$$' -fuzz FuzzShardMerge -fuzztime $(FUZZTIME)

# loadtest runs the cachesimd chaos/load test under the race detector:
# concurrent clients flood the daemon's HTTP API, a tenth of them with
# fault-injected traces, and the test verifies zero lost jobs, zero
# results diverging from a direct library replay, and 429-on-overload.
# The default profile is CI-sized; loadtest-full opts into the large one.
loadtest:
	$(GO) test -race -run TestChaosLoad -v ./internal/jobqueue
loadtest-full:
	CACHESIMD_LOADTEST=full $(GO) test -race -run TestChaosLoad -v -timeout 30m ./internal/jobqueue

# trace-e2e boots cachesimd in-process, submits a job, and asserts the
# same job ID appears in /debug/traces (span tree + SLO summary) and in
# the structured log, plus the slowloris read-header-timeout hardening.
trace-e2e:
	$(GO) test -race -run 'TestTraceEndToEnd|TestStalledHeaderConnectionDropped' -v ./cmd/cachesimd

# bench runs the micro-benchmarks briefly — enough to catch a throughput
# cliff, not a full measurement run.
bench:
	$(GO) test . -run '^$$' -bench 'Replay|RunBenchmark|TraceGeneration' -benchtime 1x -benchmem

# bench-json writes the measured benchmark artifacts: the replay loop with
# telemetry off vs on (BENCH_telemetry.json), the decode-once fan-out
# replay vs per-configuration decoding (BENCH_fanout.json), and the
# sharded-replay scaling curve across 1/2/4/8 shards (BENCH_shard.json,
# with the measuring host's core count recorded alongside).
BENCH_JSON_OUT ?= BENCH_telemetry.json
BENCH_FANOUT_OUT ?= BENCH_fanout.json
BENCH_SHARD_OUT ?= BENCH_shard.json
bench-json:
	BENCH_JSON=$(BENCH_JSON_OUT) $(GO) test . -run TestWriteBenchTelemetryJSON -v
	BENCH_FANOUT_JSON=$(BENCH_FANOUT_OUT) $(GO) test . -run TestWriteBenchFanoutJSON -v
	BENCH_SHARD_JSON=$(BENCH_SHARD_OUT) $(GO) test . -run TestWriteBenchShardJSON -v

# bench-gate is the benchmark regression gate: it measures the telemetry
# off/on replay and shard scaling benchmarks fresh and fails if
# telemetry-on overhead exceeds 10%, allocs/op on the file-backed replay
# regresses against the committed BENCH_telemetry.json baseline, or the
# sharded replay misses its scaling floor (3x at 8 shards on >=8-core
# hosts; a routing-overhead sanity floor on smaller hosts).
BENCH_GATE_TMP ?= bench_measured.json
BENCH_SHARD_GATE_TMP ?= bench_shard_measured.json
bench-gate:
	BENCH_JSON=$(BENCH_GATE_TMP) $(GO) test . -run TestWriteBenchTelemetryJSON -v
	BENCH_SHARD_JSON=$(BENCH_SHARD_GATE_TMP) $(GO) test . -run TestWriteBenchShardJSON -v
	$(GO) run ./cmd/benchgate -baseline BENCH_telemetry.json -measured $(BENCH_GATE_TMP) \
		-shard-baseline BENCH_shard.json -shard-measured $(BENCH_SHARD_GATE_TMP)
	@rm -f $(BENCH_GATE_TMP) $(BENCH_SHARD_GATE_TMP)
