module jouppi

go 1.22
