// Command benchgate enforces the telemetry performance budget in CI. It
// compares a freshly measured benchmark artifact (the JSON written by
// TestWriteBenchTelemetryJSON) against the baseline committed in the
// repository and exits non-zero when:
//
//   - the telemetry-on overhead of either replay arm (in-memory or
//     file-backed) exceeds -max-overhead percent, or
//   - the introspection-on overhead of the in-memory replay (phase
//     windows + heatmaps + sampled miss trace, no 3C classifier)
//     exceeds -max-introspect-overhead percent, or
//   - the trace-attached fan-out replay (a root span carried through the
//     context, spans at replay/consumer granularity) runs more than
//     -max-trace-overhead percent slower than the detached path, or
//   - allocations per op on the file-backed replay regress beyond
//     -alloc-slack times the committed baseline — the zero-alloc decode
//     path must stay O(1) allocations per replay, not per line, or
//   - the sharded-replay scaling artifact (-shard-baseline, the JSON
//     written by TestWriteBenchShardJSON) shows an 8-shard speedup below
//     -min-shard-speedup on a host with at least 8 cores. Hosts with
//     fewer cores cannot demonstrate parallel scaling, so there the gate
//     degrades to -min-shard-sanity, a routing-overhead ceiling only.
//
// Run it via `make bench-gate`, which generates the fresh measurement
// first. With no -measured flag it gates the baseline artifact against
// itself, which still catches a committed artifact that violates the
// overhead budget outright.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type entry struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	MAccPerSec  float64 `json:"macc_per_sec"`
}

type fileReplay struct {
	Format    string  `json:"format"`
	Records   int     `json:"records"`
	Off       entry   `json:"telemetry_off"`
	On        entry   `json:"telemetry_on"`
	OverheadP float64 `json:"overhead_percent"`
}

type report struct {
	Benchmark  string     `json:"benchmark"`
	Workload   string     `json:"workload"`
	Off        entry      `json:"telemetry_off"`
	On         entry      `json:"telemetry_on"`
	OverheadP  float64    `json:"overhead_percent"`
	Intro      entry      `json:"introspect_on"`
	IntroOverP float64    `json:"introspect_overhead_percent"`
	TraceOverP float64    `json:"trace_overhead_percent"`
	File       fileReplay `json:"file_replay"`
}

// shardReport mirrors the artifact TestWriteBenchShardJSON writes: the
// shard-count scaling curve plus the measuring host's core count. The
// speedup floor is only meaningful when the host actually has the cores
// the shards are supposed to occupy, so the gate arms itself on the
// recorded core count rather than pretending a single-core container
// can demonstrate parallel scaling.
type shardPoint struct {
	Shards     int     `json:"shards"`
	NsPerOp    int64   `json:"ns_per_op"`
	MAccPerSec float64 `json:"macc_per_sec"`
	N          int     `json:"n"`
}

type shardReport struct {
	Benchmark  string       `json:"benchmark"`
	Workload   string       `json:"workload"`
	Cores      int          `json:"cores"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Points     []shardPoint `json:"points"`
	SpeedupAt8 float64      `json:"speedup_at_8"`
}

func loadShard(path string) (shardReport, error) {
	var r shardReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Points) == 0 || r.Points[0].NsPerOp <= 0 || r.SpeedupAt8 <= 0 {
		return r, fmt.Errorf("%s: missing or zero shard measurements", path)
	}
	return r, nil
}

func load(path string) (report, error) {
	var r report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Off.NsPerOp <= 0 || r.File.Off.NsPerOp <= 0 {
		return r, fmt.Errorf("%s: missing or zero measurements", path)
	}
	return r, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_telemetry.json",
		"committed baseline artifact")
	measuredPath := flag.String("measured", "",
		"freshly measured artifact (defaults to gating the baseline against itself)")
	maxOverhead := flag.Float64("max-overhead", 10,
		"maximum telemetry-on overhead in percent, per replay arm")
	maxIntrospect := flag.Float64("max-introspect-overhead", 5,
		"maximum introspection-on overhead in percent on the in-memory replay")
	maxTrace := flag.Float64("max-trace-overhead", 5,
		"maximum trace-attached overhead in percent on the fan-out replay")
	allocSlack := flag.Float64("alloc-slack", 1.5,
		"allowed multiple of baseline allocs/op on the file-backed replay")
	shardPath := flag.String("shard-baseline", "",
		"shard scaling artifact (BENCH_shard.json); empty skips the shard gate")
	shardMeasuredPath := flag.String("shard-measured", "",
		"freshly measured shard artifact (defaults to gating the shard baseline)")
	minShardSpeedup := flag.Float64("min-shard-speedup", 3,
		"required 8-shard speedup over 1 shard, enforced only when the artifact's host has >= 8 cores")
	minShardSanity := flag.Float64("min-shard-sanity", 0.4,
		"required 8-shard speedup on hosts with fewer than 8 cores (a routing-overhead ceiling, not a scaling claim)")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	measured := baseline
	if *measuredPath != "" {
		measured, err = load(*measuredPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	if measured.OverheadP > *maxOverhead {
		fail("in-memory replay: telemetry-on overhead %.1f%% exceeds budget %.1f%% (off %d ns/op, on %d ns/op)",
			measured.OverheadP, *maxOverhead, measured.Off.NsPerOp, measured.On.NsPerOp)
	}
	if measured.File.OverheadP > *maxOverhead {
		fail("file-backed replay: telemetry-on overhead %.1f%% exceeds budget %.1f%% (off %d ns/op, on %d ns/op)",
			measured.File.OverheadP, *maxOverhead, measured.File.Off.NsPerOp, measured.File.On.NsPerOp)
	}
	// The introspection arm is gated only when the artifact carries it, so
	// pre-introspection baselines keep loading.
	if measured.Intro.NsPerOp > 0 && measured.IntroOverP > *maxIntrospect {
		fail("in-memory replay: introspection-on overhead %.1f%% exceeds budget %.1f%% (off %d ns/op, introspected %d ns/op)",
			measured.IntroOverP, *maxIntrospect, measured.Off.NsPerOp, measured.Intro.NsPerOp)
	}
	// Pre-tracing baselines carry no trace column (unmarshals to 0) and
	// pass trivially, so old artifacts keep loading.
	if measured.TraceOverP > *maxTrace {
		fail("fan-out replay: trace-attached overhead %.1f%% exceeds budget %.1f%%",
			measured.TraceOverP, *maxTrace)
	}
	// Alloc regression: the decode path is zero-alloc per record, so
	// allocs/op on a file-backed replay is a small fixed count. A growth
	// beyond slack means someone reintroduced per-line allocation.
	checkAllocs := func(arm string, base, got entry) {
		if base.AllocsPerOp <= 0 {
			return
		}
		limit := int64(float64(base.AllocsPerOp) * *allocSlack)
		if got.AllocsPerOp > limit {
			fail("file-backed replay (%s): %d allocs/op exceeds %d (baseline %d × slack %.2f)",
				arm, got.AllocsPerOp, limit, base.AllocsPerOp, *allocSlack)
		}
	}
	checkAllocs("telemetry off", baseline.File.Off, measured.File.Off)
	checkAllocs("telemetry on", baseline.File.On, measured.File.On)

	// Shard scaling gate. The artifact records the measuring host's core
	// count: with >= 8 cores the 8-shard speedup floor applies in full;
	// below that, parallel speedup is physically unavailable, so the gate
	// degrades to a sanity floor that only catches the sharding machinery
	// becoming pathologically expensive.
	shardNote := ""
	if *shardPath != "" {
		sb, err := loadShard(*shardPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		sm := sb
		if *shardMeasuredPath != "" {
			sm, err = loadShard(*shardMeasuredPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchgate:", err)
				os.Exit(2)
			}
		}
		if sm.Cores >= 8 {
			if sm.SpeedupAt8 < *minShardSpeedup {
				fail("sharded replay: 8-shard speedup %.2fx below floor %.2fx on a %d-core host",
					sm.SpeedupAt8, *minShardSpeedup, sm.Cores)
			}
			shardNote = fmt.Sprintf("; shard speedup at 8 %.2fx (floor %.2fx, %d cores)",
				sm.SpeedupAt8, *minShardSpeedup, sm.Cores)
		} else {
			if sm.SpeedupAt8 < *minShardSanity {
				fail("sharded replay: 8-shard throughput ratio %.2fx below sanity floor %.2fx — routing overhead regressed (host has only %d cores, full %.2fx floor disarmed)",
					sm.SpeedupAt8, *minShardSanity, sm.Cores, *minShardSpeedup)
			}
			shardNote = fmt.Sprintf("; shard ratio at 8 %.2fx on %d-core host (full %.2fx floor needs >= 8 cores)",
				sm.SpeedupAt8, sm.Cores, *minShardSpeedup)
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok — in-memory overhead %.1f%%, introspection overhead %.1f%% (budget %.1f%%), "+
		"trace overhead %.1f%% (budget %.1f%%), file-backed overhead %.1f%% (budget %.1f%%); "+
		"file-backed allocs/op off=%d on=%d (baseline %d/%d, slack %.2f)%s\n",
		measured.OverheadP, measured.IntroOverP, *maxIntrospect,
		measured.TraceOverP, *maxTrace,
		measured.File.OverheadP, *maxOverhead,
		measured.File.Off.AllocsPerOp, measured.File.On.AllocsPerOp,
		baseline.File.Off.AllocsPerOp, baseline.File.On.AllocsPerOp, *allocSlack, shardNote)
}
