package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jouppi/internal/telemetry"
	"jouppi/sim"
)

func TestParseSystem(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want sim.Config
	}{
		{"", sim.BaselineSystem()},
		{"baseline", sim.BaselineSystem()},
		{"victim:4", sim.Config{D: sim.Augmentation{VictimCacheEntries: 4}}},
		{"misscache:2", sim.Config{D: sim.Augmentation{MissCacheEntries: 2}}},
	} {
		got, err := parseSystem(tc.spec)
		if err != nil {
			t.Errorf("parseSystem(%q): %v", tc.spec, err)
		} else if got != tc.want {
			t.Errorf("parseSystem(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	// ImprovedSystem carries stream pointers, so compare its shape.
	imp, err := parseSystem("improved")
	if err != nil || imp.D.VictimCacheEntries != 4 || imp.I.Stream == nil || imp.D.Stream == nil {
		t.Errorf("parseSystem(improved) = %+v, %v", imp, err)
	}
	got, err := parseSystem("stream:4x8")
	if err != nil || got.D.Stream == nil || got.D.Stream.Ways != 4 || got.D.Stream.Depth != 8 {
		t.Errorf("parseSystem(stream:4x8) = %+v, %v", got, err)
	}
	for _, bad := range []string{"victim", "victim:0", "victim:x", "stream:4", "stream:0x4", "turbo:9"} {
		if _, err := parseSystem(bad); err == nil {
			t.Errorf("parseSystem(%q) accepted", bad)
		}
	}
}

func TestReplayMode(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "miss.jsonl")
	code, out, errOut := runCmd(t, "-replay", "met", "-system", "victim:4",
		"-scale", "0.02", "-phase", "2048", "-heatmap", "-missdump", dump)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, want := range []string{
		"benchmark met at scale 0.02 through victim:4",
		"L1I:", "L1D:", "% of potential",
		"miss rate per 2048-access window",
		"L1I misses per set",
		"L1D conflict evictions per set",
		"set  accesses  misses  evictions",
		"miss dump:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	var headers int
	for _, e := range events {
		if e.Event == "miss-dump" {
			headers++
			if e.Side != "inst" && e.Side != "data" {
				t.Errorf("miss-dump with side %q", e.Side)
			}
		}
	}
	if headers != 2 {
		t.Errorf("%d miss-dump headers, want one per side", headers)
	}
}

func TestReplayModeUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-replay", "met", "-run", "fig3-5"}, "mutually exclusive"},
		{[]string{"-replay", "met", "-scale", "0"}, "positive finite"},
		{[]string{"-replay", "met", "-system", "turbo:9"}, "bad -system"},
		{[]string{"-replay", "nosuch", "-scale", "0.02"}, "unknown benchmark"},
		{[]string{"-phase", "1024"}, "require -replay"},
		{[]string{"-heatmap"}, "require -replay"},
		{[]string{"-missdump", "x.jsonl"}, "require -replay"},
	} {
		code, _, errOut := runCmd(t, tc.args...)
		if code != exitUsage || !strings.Contains(errOut, tc.want) {
			t.Errorf("args %v: code %d, stderr %q (want %q)", tc.args, code, errOut, tc.want)
		}
	}
}

func TestReplayModeMissDumpCreateError(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "missing-dir", "miss.jsonl")
	code, _, errOut := runCmd(t, "-replay", "met", "-scale", "0.02", "-missdump", dump)
	if code != exitFailure {
		t.Errorf("uncreatable -missdump: code %d, stderr %q", code, errOut)
	}
}
