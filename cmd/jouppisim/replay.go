package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"jouppi/internal/introspect"
	"jouppi/internal/telemetry"
	"jouppi/internal/textplot"
	"jouppi/sim"
)

// parseSystem turns a -system spec into a simulator configuration. The
// specs cover the paper's interesting single-system points; anything
// richer belongs in the experiment suite or the sim library.
func parseSystem(spec string) (sim.Config, error) {
	switch spec {
	case "", "baseline":
		return sim.BaselineSystem(), nil
	case "improved":
		return sim.ImprovedSystem(), nil
	}
	kind, arg, ok := strings.Cut(spec, ":")
	if ok {
		switch kind {
		case "victim":
			n, err := strconv.Atoi(arg)
			if err == nil && n > 0 {
				return sim.Config{D: sim.Augmentation{VictimCacheEntries: n}}, nil
			}
		case "misscache":
			n, err := strconv.Atoi(arg)
			if err == nil && n > 0 {
				return sim.Config{D: sim.Augmentation{MissCacheEntries: n}}, nil
			}
		case "stream":
			w, d, ok := strings.Cut(arg, "x")
			if ok {
				ways, werr := strconv.Atoi(w)
				depth, derr := strconv.Atoi(d)
				if werr == nil && derr == nil && ways > 0 && depth > 0 {
					return sim.Config{D: sim.Augmentation{
						Stream: &sim.StreamOptions{Ways: ways, Depth: depth}}}, nil
				}
			}
		}
	}
	return sim.Config{}, fmt.Errorf(
		"bad -system %q (want baseline | improved | victim:N | misscache:N | stream:WxD)", spec)
}

// runReplay is jouppisim's single-system mode: replay one benchmark
// through one configuration with an introspection probe attached and
// print the run summary plus the requested time/space views.
func runReplay(ctx context.Context, stdout, stderr io.Writer,
	bench, spec string, scale float64, phase int, heatmap bool, missDump string) int {
	cfg, err := parseSystem(spec)
	if err != nil {
		fmt.Fprintln(stderr, "jouppisim:", err)
		return exitUsage
	}
	intro := sim.Introspection{Window: phase, Heatmap: heatmap}
	if phase == 0 {
		intro.Window = -1
	}
	if missDump != "" {
		intro.MissEvery = 1
	}
	res, probe, err := sim.RunBenchmarkIntrospected(ctx, bench, scale, cfg, intro)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(stderr, "jouppisim: interrupted:", err)
			return exitInterrupted
		}
		fmt.Fprintln(stderr, "jouppisim:", err)
		return exitUsage
	}

	fmt.Fprintf(stdout, "benchmark %s at scale %g through %s\n", bench, scale, spec)
	side := func(name string, s sim.SideResults) {
		fmt.Fprintf(stdout, "%s: %d accesses, %d misses, %d aux hits, %d full misses (rate %.4f)\n",
			name, s.Accesses, s.Misses, s.AuxHits, s.FullMisses, s.MissRate)
	}
	side("L1I", res.I)
	side("L1D", res.D)
	fmt.Fprintf(stdout, "execution: %d instruction-times for %d instructions (%.1f%% of potential)\n",
		res.TotalTime, res.Instructions, res.PercentOfPotential)

	if phase > 0 {
		series := []textplot.Series{
			introspect.PhaseSeries("L1I", probe.I.Windows()),
			introspect.PhaseSeries("L1D", probe.D.Windows()),
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, introspect.RenderPhases(
			fmt.Sprintf("miss rate per %d-access window", phase), series, 72, 16))
	}
	if heatmap {
		for _, sp := range []struct {
			name string
			p    *introspect.Probe
		}{{"L1I", probe.I}, {"L1D", probe.D}} {
			heat := sp.p.Heat()
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.RenderHeat(sp.name+" misses per set", heat, introspect.HeatMisses, 64))
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.RenderHeat(sp.name+" conflict evictions per set", heat, introspect.HeatEvictions, 64))
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.TopSetsTable(heat, introspect.HeatEvictions, 8))
		}
	}
	if missDump != "" {
		f, err := os.Create(missDump)
		if err != nil {
			fmt.Fprintln(stderr, "jouppisim:", err)
			return exitFailure
		}
		j := telemetry.NewJournal(f)
		probe.I.EmitMissEvents(j, "inst")
		probe.D.EmitMissEvents(j, "data")
		err = j.Err()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "jouppisim:", err)
			return exitFailure
		}
		fmt.Fprintf(stdout, "miss dump: %s (%d inst + %d data events, %d dropped)\n",
			missDump, len(probe.I.Events()), len(probe.D.Events()),
			probe.I.Dropped()+probe.D.Dropped())
	}
	return exitOK
}
