package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListDefault(t *testing.T) {
	code, out, _ := runCmd(t)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"table2-2", "fig3-5", "fig5-1", "ablation-stride", "run one with"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestExplicitList(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 || !strings.Contains(out, "available experiments") {
		t.Errorf("exit %d, out %q", code, out[:min(80, len(out))])
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := runCmd(t, "-run", "fig9-9")
	if code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	code, out, errOut := runCmd(t, "-run", "table1-1", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "WRL Titan") {
		t.Errorf("missing table content:\n%s", out)
	}
}

func TestRunMultipleWithTimings(t *testing.T) {
	code, out, _ := runCmd(t, "-run", "table1-1,table2-2", "-scale", "0.02", "-time")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "took") {
		t.Error("missing timing output")
	}
	if !strings.Contains(out, "Baseline system first-level cache miss rates") {
		t.Error("second experiment missing")
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCmd(t, "-bogus"); code != 2 {
		t.Error("bad flag accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, errOut := runCmd(t, "-run", "table1-1", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	var results []struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(results) != 1 || results[0].ID != "table1-1" || len(results[0].Rows) != 3 {
		t.Errorf("unexpected JSON structure: %+v", results)
	}
}

func TestOutputIsDeterministic(t *testing.T) {
	_, a, _ := runCmd(t, "-run", "table2-2", "-scale", "0.05")
	_, b, _ := runCmd(t, "-run", "table2-2", "-scale", "0.05")
	if a != b {
		t.Error("identical invocations produced different output")
	}
}
