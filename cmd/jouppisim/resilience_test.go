package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"jouppi/internal/experiments"
)

func runCmdCtx(t *testing.T, ctx context.Context, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(ctx, args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestBadScaleIsUsageError(t *testing.T) {
	for _, scale := range []string{"0", "-1", "+Inf", "NaN"} {
		code, _, errOut := runCmd(t, "-run", "table1-1", "-scale", scale)
		if code != 2 || !strings.Contains(errOut, "scale") {
			t.Errorf("scale %s: code %d, stderr %q", scale, code, errOut)
		}
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	code, _, errOut := runCmd(t, "-run", "table1-1", "-resume")
	if code != 2 || !strings.Contains(errOut, "-resume requires -checkpoint") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

func TestNegativeTimeoutIsUsageError(t *testing.T) {
	if code, _, _ := runCmd(t, "-run", "table1-1", "-timeout", "-3s"); code != 2 {
		t.Errorf("negative timeout: code %d, want 2", code)
	}
}

// A cancelled context (what SIGINT produces via signal.NotifyContext)
// must exit 130, the shell convention for an interrupted process, and
// point at the checkpoint so the user knows how to resume.
func TestInterruptedExitCode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ck := filepath.Join(t.TempDir(), "sweep.json")
	code, _, errOut := runCmdCtx(t, ctx, "-run", "table1-1", "-scale", "0.02", "-checkpoint", ck)
	if code != 130 {
		t.Fatalf("code %d, want 130", code)
	}
	if !strings.Contains(errOut, "interrupted") || !strings.Contains(errOut, "-resume") {
		t.Errorf("stderr %q, want an interruption notice with resume hint", errOut)
	}
}

// The acceptance scenario: a sweep killed partway through, resumed from
// its checkpoint, must produce output identical to an uninterrupted run.
func TestCheckpointResumeMatchesUninterruptedRun(t *testing.T) {
	const ids = "table1-1,table2-1"
	const scale = "0.02"

	code, full, errOut := runCmd(t, "-run", ids, "-scale", scale)
	if code != 0 {
		t.Fatalf("uninterrupted run: exit %d, stderr %q", code, errOut)
	}

	// "Interrupted" sweep: only the first experiment completed before the
	// kill, its result checkpointed.
	ck := filepath.Join(t.TempDir(), "sweep.json")
	if code, _, errOut := runCmd(t, "-run", "table1-1", "-scale", scale, "-checkpoint", ck); code != 0 {
		t.Fatalf("partial run: exit %d, stderr %q", code, errOut)
	}

	code, resumed, errOut := runCmd(t, "-run", ids, "-scale", scale, "-checkpoint", ck, "-resume")
	if code != 0 {
		t.Fatalf("resumed run: exit %d, stderr %q", code, errOut)
	}
	if resumed != full {
		t.Errorf("resumed output differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", full, resumed)
	}

	// The checkpoint must now hold both completed results.
	c, err := experiments.LoadCheckpoint(ck, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup("table1-1") == nil || c.Lookup("table2-1") == nil {
		t.Errorf("checkpoint incomplete after resumed run: %+v", c.Results)
	}
}

// Resuming against a checkpoint taken at a different scale must fail
// rather than mix incomparable results.
func TestResumeRejectsScaleMismatch(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "sweep.json")
	if code, _, _ := runCmd(t, "-run", "table1-1", "-scale", "0.02", "-checkpoint", ck); code != 0 {
		t.Fatal("seed run failed")
	}
	code, _, errOut := runCmd(t, "-run", "table1-1", "-scale", "0.05", "-checkpoint", ck, "-resume")
	if code != 1 || !strings.Contains(errOut, "scale") {
		t.Errorf("code %d, stderr %q, want scale-mismatch failure", code, errOut)
	}
}

// -resume with a checkpoint path that does not exist yet is a fresh
// start, not an error — so scripts can pass the same flags every run.
func TestResumeWithMissingCheckpointStartsFresh(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "nonexistent.json")
	code, out, errOut := runCmd(t, "-run", "table1-1", "-scale", "0.02", "-checkpoint", ck, "-resume")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "WRL Titan") {
		t.Error("experiment did not run")
	}
	if _, err := experiments.LoadCheckpoint(ck, 0.02); err != nil {
		t.Errorf("checkpoint not written: %v", err)
	}
}
