package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jouppi/internal/telemetry"
)

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCmd(t, "-version")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "jouppisim") {
		t.Errorf("version output %q does not lead with the tool name", out)
	}
}

func TestNegativeRetriesRejected(t *testing.T) {
	code, _, errOut := runCmd(t, "-run", "table1-1", "-retries", "-1")
	if code != 2 || !strings.Contains(errOut, "-retries") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

// TestJournalAndProgressRun drives a real (tiny) experiment with the full
// observability surface on: JSONL journal to a file, live progress on
// stderr, metrics endpoint bound to an ephemeral port.
func TestJournalAndProgressRun(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	code, _, errOut := runCmd(t, "-run", "table1-1", "-scale", "0.02",
		"-journal", journal, "-progress", "-metrics-addr", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(errOut, "/metrics") {
		t.Errorf("stderr does not announce the metrics endpoint: %q", errOut)
	}

	f, err := os.Open(journal)
	if err != nil {
		t.Fatalf("journal not written: %v", err)
	}
	defer f.Close()
	events, err := telemetry.ReadEvents(f)
	if err != nil {
		t.Fatalf("journal does not parse: %v", err)
	}
	kinds := make(map[string]int)
	for _, e := range events {
		kinds[e.Event]++
	}
	for _, want := range []string{"run-start", "experiment-start", "experiment-finish", "run-finish"} {
		if kinds[want] == 0 {
			t.Errorf("journal missing %s event (have %v)", want, kinds)
		}
	}
}

// TestJournalRecordsCheckpointSaves runs with -checkpoint and checks the
// journal carries the checkpoint-saved events.
func TestJournalRecordsCheckpointSaves(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")
	ckpt := filepath.Join(dir, "sweep.json")
	code, _, errOut := runCmd(t, "-run", "table1-1", "-scale", "0.02",
		"-journal", journal, "-checkpoint", ckpt)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	f, err := os.Open(journal)
	if err != nil {
		t.Fatalf("journal not written: %v", err)
	}
	defer f.Close()
	events, err := telemetry.ReadEvents(f)
	if err != nil {
		t.Fatalf("journal does not parse: %v", err)
	}
	found := false
	for _, e := range events {
		if e.Event == "checkpoint-saved" && e.ID == "table1-1" {
			found = true
		}
	}
	if !found {
		t.Errorf("no checkpoint-saved event in journal: %+v", events)
	}
}
