// Command jouppisim regenerates the paper's tables and figures.
//
// Usage:
//
//	jouppisim -list                 # list available experiments
//	jouppisim -run fig3-5           # run one experiment
//	jouppisim -run all              # run everything, in paper order
//	jouppisim -run fig5-1 -scale 1  # bigger workloads (slower, smoother)
//
// Single-system replay with introspection (phase plot, per-set heatmaps,
// a full miss-event dump):
//
//	jouppisim -replay ccom -system victim:4 -phase 8192 -heatmap -missdump miss.jsonl
//
// Long sweeps are resilient: each experiment runs isolated (a crash in
// one reports a failure and the suite continues), -timeout bounds each
// experiment, and -checkpoint/-resume persist completed results so an
// interrupted sweep — Ctrl-C included — picks up where it left off:
//
//	jouppisim -run all -checkpoint sweep.json            # ^C midway…
//	jouppisim -run all -checkpoint sweep.json -resume    # …finishes the rest
//
// Output is plain text: tables and ASCII charts matching the paper's
// exhibits. Results for the default scale are recorded in EXPERIMENTS.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"jouppi/internal/experiments"
	"jouppi/internal/telemetry"
	"jouppi/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes: 0 success, 1 runtime failure (an experiment crashed or
// output could not be written), 2 usage error, 130 interrupted by signal
// (the shell convention for SIGINT).
const (
	exitOK          = 0
	exitFailure     = 1
	exitUsage       = 2
	exitInterrupted = 130
)

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jouppisim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list available experiments and exit")
		runID      = fs.String("run", "", "experiment id to run, or 'all'")
		scale      = fs.Float64("scale", 0.25, "workload scale (1.0 ≈ 1–4M instructions per benchmark)")
		timings    = fs.Bool("time", false, "print per-experiment wall time")
		asJSON     = fs.Bool("json", false, "emit structured JSON instead of rendered text")
		timeout    = fs.Duration("timeout", 0, "per-experiment deadline, e.g. 90s (0 = none)")
		checkpoint = fs.String("checkpoint", "", "flush completed results to this JSON file after every experiment")
		resume     = fs.Bool("resume", false, "skip experiments already completed in the -checkpoint file")
		retries    = fs.Int("retries", 0, "re-run a failed experiment up to this many extra times")
		metrics    = fs.String("metrics-addr", "", "serve /metrics, /vars and /debug/pprof on this address (e.g. localhost:9090) for the duration of the run")
		journalTo  = fs.String("journal", "", "append one JSON line per run event (experiment start/finish/panic/retry, checkpoint saves) to this file")
		progress   = fs.Bool("progress", false, "render a live progress line (experiments done, accesses/sec, ETA) on stderr")
		replay     = fs.String("replay", "", "replay one benchmark through a single system (see -system) instead of running experiments")
		system     = fs.String("system", "baseline", "system for -replay: baseline | improved | victim:N | misscache:N | stream:WxD")
		phase      = fs.Int("phase", 0, "with -replay: render a phase plot, miss rate per window of this many per-side accesses (0 = off)")
		heatmap    = fs.Bool("heatmap", false, "with -replay: render per-set miss/eviction heatmaps and the hottest-set table for both L1 sides")
		missDump   = fs.String("missdump", "", "with -replay: write every L1 miss event as JSONL to this file")
		showVer    = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *showVer {
		fmt.Fprintln(stdout, version.String("jouppisim"))
		return exitOK
	}

	if *replay != "" {
		if *runID != "" {
			fmt.Fprintln(stderr, "jouppisim: -replay and -run are mutually exclusive")
			return exitUsage
		}
		if !(*scale > 0) || math.IsInf(*scale, 0) {
			fmt.Fprintf(stderr, "jouppisim: -scale must be a positive finite number, got %v\n", *scale)
			return exitUsage
		}
		return runReplay(ctx, stdout, stderr, *replay, *system, *scale, *phase, *heatmap, *missDump)
	}
	if *phase != 0 || *heatmap || *missDump != "" {
		fmt.Fprintln(stderr, "jouppisim: -phase/-heatmap/-missdump require -replay")
		return exitUsage
	}

	if *list || *runID == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "  %-22s %s\n", e.ID, e.Title)
		}
		if *runID == "" && !*list {
			fmt.Fprintln(stdout, "\nrun one with: jouppisim -run <id>   (or -run all)")
		}
		return exitOK
	}

	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fmt.Fprintf(stderr, "jouppisim: -scale must be a positive finite number, got %v\n", *scale)
		return exitUsage
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(stderr, "jouppisim: -resume requires -checkpoint")
		return exitUsage
	}
	if *timeout < 0 {
		fmt.Fprintln(stderr, "jouppisim: -timeout must not be negative")
		return exitUsage
	}
	if *retries < 0 {
		fmt.Fprintln(stderr, "jouppisim: -retries must not be negative")
		return exitUsage
	}

	// Observability plumbing. The registry backs both the /metrics
	// endpoint and the progress line, so either flag creates it.
	var reg *telemetry.Registry
	if *metrics != "" || *progress {
		reg = telemetry.NewRegistry()
	}
	if *metrics != "" {
		srv, err := telemetry.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintln(stderr, "jouppisim:", err)
			return exitFailure
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "jouppisim: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", srv.Addr())
	}
	var journal *telemetry.Journal
	if *journalTo != "" {
		f, err := os.OpenFile(*journalTo, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "jouppisim:", err)
			return exitFailure
		}
		defer f.Close()
		journal = telemetry.NewJournal(f)
		defer func() {
			if err := journal.Err(); err != nil {
				fmt.Fprintln(stderr, "jouppisim: journal:", err)
			}
		}()
	}

	cfg := experiments.Config{Scale: *scale, Traces: experiments.NewTraceSet(*scale)}

	var toRun []experiments.Experiment
	if *runID == "all" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "jouppisim: unknown experiment %q; try -list\n", id)
				return exitUsage
			}
			toRun = append(toRun, e)
		}
	}

	// The checkpoint accumulates completed results and is flushed after
	// every experiment, so a SIGINT (or crash) loses at most the
	// experiment that was in flight.
	var ckpt *experiments.Checkpoint
	if *checkpoint != "" {
		if *resume {
			var err error
			if ckpt, err = experiments.LoadCheckpoint(*checkpoint, *scale); err != nil {
				if !errors.Is(err, os.ErrNotExist) {
					fmt.Fprintln(stderr, "jouppisim:", err)
					return exitFailure
				}
				ckpt = experiments.NewCheckpoint(*scale) // nothing to resume from yet
			}
		} else {
			ckpt = experiments.NewCheckpoint(*scale)
		}
	}

	type jsonResult struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Scale   float64    `json:"scale"`
		Headers []string   `json:"headers,omitempty"`
		Rows    [][]string `json:"rows,omitempty"`
		Err     string     `json:"err,omitempty"`
	}
	var jsonResults []jsonResult

	if !*asJSON {
		fmt.Fprintf(stdout, "jouppisim: scale %.2f, %d CPUs\n\n", *scale, runtime.GOMAXPROCS(0))
	}

	failures := 0
	last := time.Now()
	saved := 0
	opts := experiments.RunOptions{
		Timeout:     *timeout,
		Experiments: toRun,
		Retries:     *retries,
		Telemetry:   reg,
		Journal:     journal,
		OnResult: func(res *experiments.Result, cached bool) {
			elapsed := time.Since(last)
			last = time.Now()
			if ckpt != nil && !cached {
				ckpt.Add(res)
				if err := ckpt.Save(*checkpoint); err != nil {
					fmt.Fprintln(stderr, "jouppisim:", err)
				} else {
					saved++
					journal.Emit(telemetry.Event{Event: "checkpoint-saved",
						ID: res.ID, Title: res.Title, Seq: saved, Total: len(toRun)})
				}
			}
			if res.Failed() {
				failures++
				fmt.Fprintf(stderr, "jouppisim: experiment %s failed: %s\n", res.ID, res.Err)
				if res.Stack != "" {
					fmt.Fprintln(stderr, res.Stack)
				}
			}
			if *asJSON {
				jsonResults = append(jsonResults, jsonResult{
					ID: res.ID, Title: res.Title, Scale: *scale,
					Headers: res.Headers, Rows: res.Rows, Err: res.Err,
				})
				return
			}
			if !res.Failed() {
				fmt.Fprintf(stdout, "===== %s =====\n%s\n", res.Title, res.Text)
			}
			if *timings {
				fmt.Fprintf(stdout, "[%s took %v]\n\n", res.ID, elapsed.Round(time.Millisecond))
			}
		},
	}
	if ckpt != nil && *resume {
		opts.Cached = ckpt.Lookup
	}

	var prog *telemetry.Progress
	if *progress {
		// The counter and gauges here are the same instances RunAll
		// registers (the registry is idempotent by name), so the line
		// tracks the run with no extra plumbing.
		prog = telemetry.NewProgress(stderr,
			reg.Counter("sim_replay_accesses_total", "trace references replayed across all experiments"),
			reg.Gauge("experiments_done", "experiments finished so far this run"),
			reg.Gauge("experiments_total", "experiments in this run"))
		prog.Start(200 * time.Millisecond)
		defer prog.Stop()
	}

	_, runErr := experiments.RunAll(ctx, cfg, opts)
	if prog != nil {
		prog.Stop()
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintln(stderr, "jouppisim:", err)
			return exitFailure
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "jouppisim: interrupted: %v", runErr)
		if ckpt != nil {
			fmt.Fprintf(stderr, " (completed results saved to %s; rerun with -resume)", *checkpoint)
		}
		fmt.Fprintln(stderr)
		return exitInterrupted
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "jouppisim: %d of %d experiments failed\n", failures, len(toRun))
		return exitFailure
	}
	return exitOK
}
