// Command jouppisim regenerates the paper's tables and figures.
//
// Usage:
//
//	jouppisim -list                 # list available experiments
//	jouppisim -run fig3-5           # run one experiment
//	jouppisim -run all              # run everything, in paper order
//	jouppisim -run fig5-1 -scale 1  # bigger workloads (slower, smoother)
//
// Output is plain text: tables and ASCII charts matching the paper's
// exhibits. Results for the default scale are recorded in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"jouppi/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jouppisim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available experiments and exit")
		runID   = fs.String("run", "", "experiment id to run, or 'all'")
		scale   = fs.Float64("scale", 0.25, "workload scale (1.0 ≈ 1–4M instructions per benchmark)")
		timings = fs.Bool("time", false, "print per-experiment wall time")
		asJSON  = fs.Bool("json", false, "emit structured JSON instead of rendered text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list || *runID == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "  %-22s %s\n", e.ID, e.Title)
		}
		if *runID == "" && !*list {
			fmt.Fprintln(stdout, "\nrun one with: jouppisim -run <id>   (or -run all)")
		}
		return 0
	}

	cfg := experiments.Config{Scale: *scale, Traces: experiments.NewTraceSet(*scale)}

	var toRun []experiments.Experiment
	if *runID == "all" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "jouppisim: unknown experiment %q; try -list\n", id)
				return 2
			}
			toRun = append(toRun, e)
		}
	}

	if *asJSON {
		type jsonResult struct {
			ID      string     `json:"id"`
			Title   string     `json:"title"`
			Scale   float64    `json:"scale"`
			Headers []string   `json:"headers,omitempty"`
			Rows    [][]string `json:"rows,omitempty"`
		}
		var results []jsonResult
		for _, e := range toRun {
			res := e.Run(cfg)
			results = append(results, jsonResult{
				ID: res.ID, Title: res.Title, Scale: *scale,
				Headers: res.Headers, Rows: res.Rows,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(stderr, "jouppisim:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "jouppisim: scale %.2f, %d CPUs\n\n", *scale, runtime.GOMAXPROCS(0))
	for _, e := range toRun {
		start := time.Now()
		res := e.Run(cfg)
		fmt.Fprintf(stdout, "===== %s =====\n%s\n", res.Title, res.Text)
		if *timings {
			fmt.Fprintf(stdout, "[%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return 0
}
