package main

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestStalledHeaderConnectionDropped checks the slowloris hardening: a
// client that opens a connection and never finishes its request headers
// is cut off at -read-header-timeout instead of pinning the connection
// forever.
func TestStalledHeaderConnectionDropped(t *testing.T) {
	url, shutdown, _ := startDaemon(t, "-read-header-timeout", "150ms")
	defer shutdown()

	conn, err := net.Dial("tcp", strings.TrimPrefix(url, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request line with no terminating CRLFCRLF: the server is
	// now waiting on headers that never come.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stalled\r\n")); err != nil {
		t.Fatal(err)
	}
	// Well past the header timeout the server must have closed the
	// connection: the read returns an error (EOF/reset), not a hang.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("server answered a half-sent request")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("connection still open after read-header-timeout: %v", err)
	}

	// The server is still healthy for well-formed clients.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after stalled conn = %d", resp.StatusCode)
	}
}

// TestTraceEndToEnd boots the daemon, runs one job, and checks the same
// job ID appears in the structured log, in /debug/traces (with a span
// tree and SLO summary), and in the trace's own span IDs — the "one ID
// follows the job everywhere" contract.
func TestTraceEndToEnd(t *testing.T) {
	url, shutdown, stderr := startDaemon(t, "-workers", "1")
	defer shutdown()

	code, st := postJob(t, url, `{"benchmark": "liver", "scale": 0.02, "configs": "victim=2"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, st)
	}
	id := st["id"].(string)
	waitState(t, url, id, "done")

	// /debug/traces carries the job's span tree.
	resp, err := http.Get(url + "/debug/traces?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces?id=%s status %d", id, resp.StatusCode)
	}
	var out struct {
		Traces []struct {
			ID    string `json:"id"`
			Root  string `json:"root"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
		SLO []struct {
			Span  string `json:"span"`
			Count uint64 `json:"count"`
		} `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad /debug/traces JSON: %v", err)
	}
	if len(out.Traces) != 1 || out.Traces[0].ID != id || out.Traces[0].Root != "job" {
		t.Fatalf("traces = %+v, want the job's trace", out.Traces)
	}
	names := map[string]bool{}
	for _, s := range out.Traces[0].Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"queue-wait", "run", "attempt", "replay", "job"} {
		if !names[want] {
			t.Fatalf("span %q missing from trace %v", want, out.Traces[0].Spans)
		}
	}
	// Every SLO stage observed the one finished job.
	stages := map[string]uint64{}
	for _, s := range out.SLO {
		stages[s.Span] = s.Count
	}
	for _, want := range []string{"queue-wait", "attempt", "job"} {
		if stages[want] != 1 {
			t.Fatalf("SLO stage %q count = %d, want 1 (%v)", want, stages[want], out.SLO)
		}
	}

	// The structured log carries the same job ID at every lifecycle step.
	log := stderr.String()
	for _, msg := range []string{"job admitted", "job running", "job finished"} {
		found := false
		sc := bufio.NewScanner(strings.NewReader(log))
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "msg="+jsonQuote(msg)) && strings.Contains(line, "job="+id) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no %q log line carrying job=%s:\n%s", msg, id, log)
		}
	}
}

// jsonQuote renders a slog text-handler value: quoted when it contains
// spaces, bare otherwise.
func jsonQuote(s string) string {
	if strings.ContainsAny(s, " ") {
		return `"` + s + `"`
	}
	return s
}
