package main

import (
	"bufio"
	"bytes"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestSIGTERMDrainEndToEnd exercises the real signal path: build the
// actual binary, start it as a subprocess, occupy it with work, send it
// SIGTERM, and require a narrated drain and exit status 0. The
// in-process tests cover the drain semantics; this one proves the
// signal wiring (signal.NotifyContext through to os.Exit) is sound.
func TestSIGTERMDrainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a subprocess; skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "cachesimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building cachesimd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "60s")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs msg=listening addr=<addr> once it accepts traffic.
	var (
		mu     sync.Mutex
		stderr bytes.Buffer
	)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			stderr.WriteString(line + "\n")
			mu.Unlock()
			if strings.Contains(line, "msg=listening") {
				if _, rest, ok := strings.Cut(line, "addr="); ok {
					addr, _, _ := strings.Cut(rest, " ")
					select {
					case addrCh <- strings.TrimSpace(addr):
					default:
					}
				}
			}
		}
	}()
	var url string
	select {
	case addr := <-addrCh:
		url = "http://" + addr
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never reported its listen address")
	}

	// Occupy the worker so the drain has something in flight.
	resp, err := http.Post(url+"/jobs", "application/json",
		strings.NewReader(`{"benchmark": "liver", "scale": 10, "configs": "sys=improved"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	mu.Lock()
	log := stderr.String()
	mu.Unlock()
	if !strings.Contains(log, "draining") || !strings.Contains(log, "drained") {
		t.Fatalf("drain not narrated:\n%s", log)
	}
}
