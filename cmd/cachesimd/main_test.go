package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"jouppi/internal/jobqueue"
)

// startDaemon runs the daemon in-process with a cancellable context
// standing in for SIGTERM, returning its base URL and a way to stop it.
func startDaemon(t *testing.T, args ...string) (url string, shutdown func() int, stderr *bytes.Buffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stderr = &bytes.Buffer{}
	ready := make(chan string, 1)
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...),
			io.Discard, stderr, ready)
	}()
	select {
	case addr := <-ready:
		url = "http://" + addr
	case c := <-code:
		t.Fatalf("daemon exited %d before listening: %s", c, stderr)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started listening")
	}
	shutdown = func() int {
		cancel()
		select {
		case c := <-code:
			return c
		case <-time.After(60 * time.Second):
			t.Fatal("daemon never exited after shutdown signal")
			return -1
		}
	}
	t.Cleanup(cancel)
	return url, shutdown, stderr
}

func postJob(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func getJob(t *testing.T, url, id string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// waitState polls a job until it reaches the wanted state.
func waitState(t *testing.T, url, id, want string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if _, st := getJob(t, url, id); st["state"] == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &stdout, &stderr, nil); code != exitOK {
		t.Fatalf("exit %d, stderr %s", code, &stderr)
	}
	if !strings.HasPrefix(stdout.String(), "cachesimd ") {
		t.Fatalf("version output %q", stdout.String())
	}
}

func TestBadFlagsExitUsage(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(context.Background(), []string{"-nonesuch"}, io.Discard, &stderr, nil); code != exitUsage {
		t.Fatalf("exit %d, want %d", code, exitUsage)
	}
}

func TestBadListenAddressExitFailure(t *testing.T) {
	var stderr bytes.Buffer
	code := run(context.Background(), []string{"-addr", "256.256.256.256:0"}, io.Discard, &stderr, nil)
	if code != exitFailure {
		t.Fatalf("exit %d, want %d", code, exitFailure)
	}
}

// TestEndToEndJobAndCache drives a full client round trip: submit, poll
// to completion, resubmit for a cache hit, and watch /metrics move.
func TestEndToEndJobAndCache(t *testing.T) {
	url, shutdown, _ := startDaemon(t, "-workers", "2", "-cache-dir", t.TempDir())

	body := `{"benchmark": "liver", "scale": 0.02, "configs": "misscache=2;victim=4"}`
	code, st := postJob(t, url, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d (%v)", code, st)
	}
	id, _ := st["id"].(string)
	deadline := time.Now().Add(60 * time.Second)
	var state string
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var got map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		state, _ = got["state"].(string)
		if state == "done" || state == "failed" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("job settled as %q", state)
	}

	// The identical submission is answered from the on-disk cache: 200
	// (already terminal), flagged as a cache hit.
	code, st = postJob(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200", code)
	}
	if hit, _ := st["cache_hit"].(bool); !hit {
		t.Fatalf("resubmit not a cache hit: %v", st)
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(prom, []byte("jobqueue_cache_hits_total 1")) {
		t.Fatal("/metrics does not show the cache hit")
	}

	if code := shutdown(); code != exitOK {
		t.Fatalf("shutdown exit %d", code)
	}
}

// TestGracefulDrain is the end-to-end drain scenario: with one worker
// occupied and more jobs queued, a termination signal must let the
// in-flight job finish, reject the queued ones with a clear status,
// refuse new work, and exit 0 within the drain deadline.
//
// Timing cannot occupy the worker reliably here — on a loaded
// single-core machine the HTTP round trips contend with replay for
// CPU, so any job sized "long enough" can finish before the signal
// lands. Instead the runner hook holds the in-flight job on a token
// channel, and every assertion is ordered by observed state, not by
// sleeps: the signal is sent while the worker is provably occupied,
// the rejections are read back through the still-open API, and only
// then is the in-flight job released to finish.
func TestGracefulDrain(t *testing.T) {
	tokens := make(chan struct{})
	testHookRunner = func(ctx context.Context, spec *jobqueue.Spec, version string) (*jobqueue.ResultBody, error) {
		select {
		case <-tokens:
			return jobqueue.DefaultRunner(ctx, spec, version)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer func() { testHookRunner = nil }()

	url, shutdown, stderr := startDaemon(t,
		"-workers", "1", "-queue", "8", "-drain-timeout", "60s")

	// The first job occupies the single worker (held by the hook); the
	// next three sit queued. Distinct configs keep them from dup-joining.
	code, st := postJob(t, url, `{"benchmark": "liver", "scale": 0.01, "configs": "sys=improved"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	longID, _ := st["id"].(string)
	var queuedIDs []string
	for _, victim := range []int{1, 2, 4} {
		code, st = postJob(t, url, fmt.Sprintf(`{"benchmark": "liver", "scale": 0.01, "configs": "victim=%d"}`, victim))
		if code != http.StatusAccepted {
			t.Fatalf("POST queued = %d", code)
		}
		id, _ := st["id"].(string)
		queuedIDs = append(queuedIDs, id)
	}

	// Only signal once the worker has provably picked up the first job;
	// otherwise the drain could reject all four.
	waitState(t, url, longID, "running")

	done := make(chan int, 1)
	go func() { done <- shutdown() }()

	// The drain rejects queued jobs before waiting for in-flight ones,
	// and keeps the listener open until the workers are idle — so the
	// rejections are observable through the API while the held job is
	// still running.
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range queuedIDs {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never rejected; stderr:\n%s", id, stderr)
			}
			code, st := getJob(t, url, id)
			if code != http.StatusOK {
				t.Fatalf("GET /jobs/%s = %d during drain", id, code)
			}
			if state, _ := st["state"].(string); state == "rejected" {
				if errmsg, _ := st["error"].(string); !strings.Contains(errmsg, "draining") {
					t.Fatalf("job %s rejected with error %q", id, errmsg)
				}
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// While draining, new submissions get 503.
	code, _ = postJob(t, url, `{"benchmark": "liver", "scale": 0.01, "configs": "misscache=2"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining = %d, want 503", code)
	}

	// Release the in-flight job; the drain must now complete with it.
	close(tokens)
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("drain exit %d, stderr:\n%s", code, stderr)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("daemon did not exit within the drain window")
	}
	log := stderr.String()
	if !strings.Contains(log, "draining") || !strings.Contains(log, "drained") {
		t.Fatalf("drain not narrated on stderr:\n%s", log)
	}
	if !strings.Contains(log, "in-flight jobs completed") {
		t.Fatalf("in-flight job was not allowed to finish:\n%s", log)
	}
	if !strings.Contains(log, "rejected=3") {
		t.Fatalf("queued jobs not rejected:\n%s", log)
	}
	_ = longID
}
