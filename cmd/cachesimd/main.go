// Command cachesimd serves the simulator as a fault-tolerant HTTP
// daemon: clients POST simulation jobs (a built-in benchmark or an
// uploaded trace, fanned out over a list of cache configurations), poll
// or stream their progress, and fetch results that are cached
// content-addressed on disk so identical submissions are answered
// without re-simulating.
//
//	cachesimd -addr 127.0.0.1:8080 -workers 4 -cache-dir /var/cache/cachesimd
//
// The daemon degrades predictably under load (bounded queue, 429 +
// Retry-After when full), retries transient failures with capped
// exponential backoff, and drains gracefully on SIGTERM/SIGINT:
// admission stops, queued jobs are rejected with a clear status,
// in-flight jobs get -drain-timeout to finish, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jouppi/internal/jobqueue"
	"jouppi/internal/telemetry"
	"jouppi/internal/version"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
)

// testHookRunner, when non-nil, replaces the queue's job runner. Only
// tests set it, to hold jobs at a controlled point; nil means the
// default runner.
var testHookRunner jobqueue.Runner

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable body of main. ready, when non-nil, receives the
// bound listen address once the server is accepting connections.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("cachesimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		workers      = fs.Int("workers", 2, "simulation worker pool size")
		queueDepth   = fs.Int("queue", 64, "admission queue depth (full queue = 429)")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "per-attempt time limit for each job (0 = unbounded)")
		jobDeadline  = fs.Duration("job-deadline", 15*time.Minute, "whole-job time limit across retries (0 = unbounded)")
		retries      = fs.Int("retries", 1, "extra attempts for retryably-failed jobs")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "time in-flight jobs get to finish on shutdown")
		cacheDir     = fs.String("cache-dir", "", "content-addressed result cache directory (empty = caching off)")
		maxJobs      = fs.Int("max-jobs", 1024, "retained job records before the oldest finished ones are evicted")
		logFormat    = fs.String("log-format", "text", "structured log format: text or json")
		readHeaderTO = fs.Duration("read-header-timeout", telemetry.DefaultReadHeaderTimeout,
			"time a client gets to send request headers (slowloris bound)")
		readTO = fs.Duration("read-timeout", telemetry.DefaultReadTimeout,
			"time a client gets to send a whole request, body included")
		idleTO = fs.Duration("idle-timeout", telemetry.DefaultIdleTimeout,
			"idle keep-alive connection lifetime")
		traceCap     = fs.Int("trace-capacity", 256, "finished job traces retained for /debug/traces")
		sloQueueWait = fs.Duration("slo-queue-wait", 0,
			"queue-wait p99 bound that triggers a CPU profile capture (0 = off; needs -profile-dir)")
		profileDir = fs.String("profile-dir", "", "directory for SLO-triggered CPU profiles")
		showVer    = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("cachesimd"))
		return exitOK
	}

	// Every log record below carries key/value context (job IDs, span
	// IDs, addresses), so one job can be followed across logs, spans,
	// journal events, and metrics by a single ID.
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(stderr, nil)
	case "text":
		handler = slog.NewTextHandler(stderr, nil)
	default:
		fmt.Fprintf(stderr, "cachesimd: unknown -log-format %q (have text, json)\n", *logFormat)
		return exitUsage
	}
	logger := slog.New(handler)

	var store *jobqueue.Store
	if *cacheDir != "" {
		var err error
		if store, err = jobqueue.OpenStore(*cacheDir); err != nil {
			logger.Error("opening result store failed", "dir", *cacheDir, "err", err)
			return exitFailure
		}
		if n := store.Quarantined(); n > 0 {
			logger.Warn("quarantined corrupt result cache entries",
				"count", n, "dir", store.Dir())
		}
	}

	reg := telemetry.NewRegistry()
	queue := jobqueue.NewQueue(jobqueue.Options{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		JobTimeout:    *jobTimeout,
		JobDeadline:   *jobDeadline,
		Retries:       *retries,
		Store:         store,
		Registry:      reg,
		MaxJobs:       *maxJobs,
		Runner:        testHookRunner,
		Version:       version.String("cachesimd"),
		Logger:        logger,
		TraceCapacity: *traceCap,
		QueueWaitP99:  *sloQueueWait,
		ProfileDir:    *profileDir,
	})
	api := jobqueue.NewServer(queue, reg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		queue.Drain(0)
		return exitFailure
	}
	srv := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: *readHeaderTO,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		queue.Drain(0)
		return exitFailure
	}

	// Graceful drain: flip /healthz first so load balancers stop routing
	// here, stop admitting and settle the queue, then close the listener
	// once the workers are idle so event streams finish cleanly.
	logger.Info("shutdown signal received, draining")
	api.SetDraining()
	sum := queue.Drain(*drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown failed", "err", err)
	}
	how := "in-flight jobs completed"
	if sum.Forced {
		how = "drain deadline expired, in-flight jobs cancelled"
	}
	logger.Info("drained", "how", how, "rejected", sum.Rejected)
	return exitOK
}
