package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jouppi/internal/workload"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func writeTrace(t *testing.T, din bool) string {
	t.Helper()
	name := "t.jtr"
	if din {
		name = "t.din"
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := workload.GenerateTrace(workload.Linpack(), 0.02)
	if din {
		if _, err := tr.WriteDinero(f); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := tr.WriteTo(f); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestMissingTrace(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Error("missing -trace accepted")
	}
}

func TestStatsOnJTR(t *testing.T) {
	path := writeTrace(t, false)
	code, out, errOut := runCmd(t, "-trace", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"accesses:", "footprint", "sequential runs", "mean length"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// linpack streams: mean data run length should be reported > 1.
	if !strings.Contains(out, "data miss-stream") {
		t.Error("missing data run section")
	}
}

func TestStatsOnDin(t *testing.T) {
	path := writeTrace(t, true)
	code, out, _ := runCmd(t, "-trace", path, "-format", "din", "-window", "5000")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "working set") {
		t.Errorf("missing working-set section:\n%s", out)
	}
}

func TestBadFormatAndFile(t *testing.T) {
	path := writeTrace(t, false)
	if code, _, _ := runCmd(t, "-trace", path, "-format", "xml"); code != 2 {
		t.Error("bad format accepted")
	}
	if code, _, _ := runCmd(t, "-trace", "/nope.jtr"); code != 1 {
		t.Error("missing file accepted")
	}
	// jtr file parsed as din must fail cleanly.
	if code, _, _ := runCmd(t, "-trace", path, "-format", "din"); code != 1 {
		t.Error("jtr-as-din accepted")
	}
}

func TestBadAnalysisParams(t *testing.T) {
	path := writeTrace(t, false)
	if code, _, _ := runCmd(t, "-trace", path, "-line", "24"); code != 1 {
		t.Error("bad line size accepted")
	}
	if code, _, _ := runCmd(t, "-trace", path, "-size", "100"); code != 1 {
		t.Error("bad probe size accepted")
	}
}

func TestMissRatioCurve(t *testing.T) {
	path := writeTrace(t, false)
	code, out, errOut := runCmd(t, "-trace", path, "-curve")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "miss-ratio curve") {
		t.Errorf("missing curve section:\n%s", out)
	}
	// linpack's 80KB matrix: the data curve must show a sharp knee —
	// high miss ratio at small capacities, near zero at 128KB+.
	if !strings.Contains(out, "data fully-associative") {
		t.Error("missing data curve")
	}
}

func TestHotspots(t *testing.T) {
	path := writeTrace(t, false)
	code, out, errOut := runCmd(t, "-trace", path, "-hotspots", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "conflict hotspots") || !strings.Contains(out, "contending lines") {
		t.Errorf("missing hotspot section:\n%s", out)
	}
}
