package main

import (
	"strings"
	"testing"
)

func TestPressureReport(t *testing.T) {
	path := writeTrace(t, false)
	code, out, errOut := runCmd(t, "-trace", path, "-pressure")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, want := range []string{
		"instruction set pressure (4096B direct-mapped, 16B lines):",
		"data set pressure (4096B direct-mapped, 16B lines):",
		"misses per set",
		"conflict evictions per set",
		"set  accesses  misses  evictions",
		`ramp " .:-=+*#%@"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPressureAgreesWithSummary(t *testing.T) {
	// The pressure pass replays the same stream the summary pass counted:
	// per-side heat totals must match the summary's reference counts, which
	// the probe's own property tests tie back to cache stats.
	path := writeTrace(t, false)
	code, out, errOut := runCmd(t, "-trace", path, "-pressure", "-size", "1024")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "set pressure (1024B direct-mapped") {
		t.Errorf("probe geometry not reported:\n%s", out)
	}
}
