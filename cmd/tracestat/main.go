// Command tracestat characterizes a trace file: reference counts,
// footprints, the sequential run-length distribution of the miss stream
// (the property stream buffers exploit), and a working-set curve.
//
// Every analysis is an independent streaming pass over the file — the
// trace is never materialized, so multi-gigabyte traces are fine.
//
// Usage:
//
//	tracestat -trace linpack.jtr
//	tracestat -trace trace.din -format din -size 4096 -line 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jouppi/internal/analysis"
	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/introspect"
	"jouppi/internal/memtrace"
	"jouppi/internal/textplot"
	"jouppi/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// traceSource is one streaming pass over a trace file.
type traceSource struct {
	memtrace.Source
	f    *os.File
	err  func() error
	degr func() memtrace.Degradation
}

// lenientOpts carries the count-and-skip decode settings into
// openTraceSource; a nil value means strict decoding.
type lenientOpts struct {
	maxDrops uint64
}

// openTraceSource opens path and positions a streaming reader at the first
// record. Callers must Close it and should check Err after consuming.
func openTraceSource(path, format string, lenient *lenientOpts) (*traceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	switch format {
	case "jtr":
		r, err := memtrace.NewReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		if lenient != nil {
			r.Lenient(lenient.maxDrops)
		}
		return &traceSource{Source: r, f: f, err: r.Err, degr: r.Degradation}, nil
	case "din":
		dr := memtrace.NewDineroReader(f)
		if lenient != nil {
			dr.Lenient(lenient.maxDrops)
		}
		return &traceSource{Source: dr, f: f, err: dr.Err, degr: dr.Degradation}, nil
	default:
		f.Close()
		return nil, fmt.Errorf("-format must be jtr or din")
	}
}

// Close releases the underlying file.
func (ts *traceSource) Close() error { return ts.f.Close() }

// Err reports the decoding error that ended the pass, if any.
func (ts *traceSource) Err() error { return ts.err() }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath = fs.String("trace", "", "trace file (required)")
		format    = fs.String("format", "jtr", "trace format: jtr | din")
		size      = fs.Int("size", 4096, "probe cache size for run-length analysis")
		line      = fs.Int("line", 16, "line size in bytes")
		window    = fs.Int("window", 100000, "working-set window in accesses")
		maxRun    = fs.Int("maxrun", 32, "run-length histogram bound")
		curve     = fs.Bool("curve", false, "also print the LRU miss-ratio curve (Mattson stack-distance analysis)")
		hotspots  = fs.Int("hotspots", 0, "print the N most conflicting cache sets and their contending lines")
		pressure  = fs.Bool("pressure", false, "render per-set miss/eviction heatmaps and the hottest-set table for the probe cache geometry")
		lenient   = fs.Bool("lenient", false, "skip malformed trace records (up to -maxdrops) and report the degradation instead of failing")
		maxDrops  = fs.Uint64("maxdrops", 1<<20, "malformed-record cap in -lenient mode (0 = unlimited)")
		showVer   = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *showVer {
		fmt.Fprintln(stdout, version.String("tracestat"))
		return 0
	}

	if *tracePath == "" {
		fmt.Fprintln(stderr, "tracestat: -trace is required")
		return 2
	}
	if *format != "jtr" && *format != "din" {
		fmt.Fprintln(stderr, "tracestat: -format must be jtr or din")
		return 2
	}

	var lopts *lenientOpts
	if *lenient {
		lopts = &lenientOpts{maxDrops: *maxDrops}
	}

	// pass runs one streaming analysis over the file and folds decoding
	// errors into the analysis error. Every pass decodes independently, so
	// in lenient mode each sees (and skips) the same damage; the
	// degradation report of the first pass is printed once.
	var degradation *memtrace.Degradation
	pass := func(analyze func(src memtrace.Source) error) error {
		src, err := openTraceSource(*tracePath, *format, lopts)
		if err != nil {
			return err
		}
		defer src.Close()
		if err := analyze(src); err != nil {
			return err
		}
		if err := src.Err(); err != nil {
			return err
		}
		if degradation == nil {
			d := src.degr()
			degradation = &d
		}
		return nil
	}

	var s analysis.Summary
	if err := pass(func(src memtrace.Source) error {
		var err error
		s, err = analysis.Summarize(src, *line)
		return err
	}); err != nil {
		fmt.Fprintln(stderr, "tracestat:", err)
		return 1
	}
	fmt.Fprintf(stdout, "trace:            %s (%s)\n", *tracePath, *format)
	if *lenient {
		fmt.Fprintf(stdout, "degradation:      %s\n", degradation)
	}
	fmt.Fprintf(stdout, "accesses:         %d (%d ifetch, %d load, %d store)\n",
		s.Accesses, s.Instructions, s.Loads, s.Stores)
	fmt.Fprintf(stdout, "footprint (%dB):  I %d lines / %d KB, D %d lines / %d KB\n",
		s.LineSize, s.UniqueILines, s.IFootprint/1024, s.UniqueDLines, s.DFootprint/1024)

	for _, sideName := range []string{"instruction", "data"} {
		instr := sideName == "instruction"
		var h *analysis.Histogram
		if err := pass(func(src memtrace.Source) error {
			var err error
			h, err = analysis.MissRunLengths(src, instr, *size, *line, *maxRun)
			return err
		}); err != nil {
			fmt.Fprintln(stderr, "tracestat:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\n%s miss-stream sequential runs (probe: %dB direct-mapped, %dB lines):\n",
			sideName, *size, *line)
		if h.Total() == 0 {
			fmt.Fprintln(stdout, "  (no misses)")
			continue
		}
		fmt.Fprintf(stdout, "  runs %d, mean length %.2f lines, runs > %d lines: %d\n",
			h.Total(), h.Mean(), *maxRun-1, h.Overflow)
		cum := h.CumulativeFraction()
		for _, p := range []int{1, 2, 4, 8, 16} {
			if p < len(cum) {
				fmt.Fprintf(stdout, "  ≤ %2d lines: %5.1f%%\n", p, cum[p]*100)
			}
		}
	}

	var ws []int
	if err := pass(func(src memtrace.Source) error {
		var err error
		ws, err = analysis.WorkingSetCurve(src, *line, *window)
		return err
	}); err != nil {
		fmt.Fprintln(stderr, "tracestat:", err)
		return 1
	}
	if len(ws) > 1 {
		xs := make([]float64, len(ws))
		ys := make([]float64, len(ws))
		for i, v := range ws {
			xs[i] = float64(i)
			ys[i] = float64(v)
		}
		fmt.Fprintf(stdout, "\nworking set (distinct %dB lines per window of %d accesses):\n", *line, *window)
		fmt.Fprint(stdout, textplot.Lines("", "window", "lines",
			[]textplot.Series{{Name: "working set", X: xs, Y: ys}}, 60, 10))
	}

	if *hotspots > 0 {
		for _, sideName := range []string{"instruction", "data"} {
			var hs []analysis.Hotspot
			if err := pass(func(src memtrace.Source) error {
				var err error
				hs, err = analysis.ConflictHotspots(src, sideName == "instruction",
					*size, *line, *hotspots)
				return err
			}); err != nil {
				fmt.Fprintln(stderr, "tracestat:", err)
				return 1
			}
			fmt.Fprintf(stdout, "\n%s conflict hotspots (%dB direct-mapped, %dB lines):\n",
				sideName, *size, *line)
			if len(hs) == 0 {
				fmt.Fprintln(stdout, "  (no misses)")
				continue
			}
			for _, h := range hs {
				fmt.Fprintf(stdout, "  set %4d: %7d misses, %3d contending lines, hottest:",
					h.Set, h.Misses, h.Lines)
				for _, la := range h.TopLines {
					fmt.Fprintf(stdout, " 0x%x", la*uint64(*line))
				}
				fmt.Fprintln(stdout)
			}
		}
	}

	if *pressure {
		// Set pressure replays each side through a plain probe cache of the
		// -size/-line geometry and feeds an introspection probe synthesized
		// Results (there is no augmentation here, so a miss is served by
		// memory), yielding the same per-set heat views the simulators print.
		probeCfg := cache.Config{Name: "probe", Size: *size, LineSize: *line, Assoc: 1}
		if err := probeCfg.Validate(); err != nil {
			fmt.Fprintln(stderr, "tracestat:", err)
			return 2
		}
		for _, sideName := range []string{"instruction", "data"} {
			instr := sideName == "instruction"
			c := cache.MustNew(probeCfg)
			probe := introspect.NewProbe(probeCfg, introspect.Options{Window: -1, Heatmap: true})
			if err := pass(func(src memtrace.Source) error {
				memtrace.Each(src, func(a memtrace.Access) {
					if (a.Kind == memtrace.Ifetch) != instr {
						return
					}
					hit, _ := c.Access(uint64(a.Addr), a.Kind == memtrace.Store)
					r := core.Result{L1Hit: hit}
					if !hit {
						r.Served = core.ServedMemory
					}
					probe.Observe(uint64(a.Addr), r)
				})
				return nil
			}); err != nil {
				fmt.Fprintln(stderr, "tracestat:", err)
				return 1
			}
			heat := probe.Heat()
			fmt.Fprintf(stdout, "\n%s set pressure (%dB direct-mapped, %dB lines):\n",
				sideName, *size, *line)
			fmt.Fprint(stdout, introspect.RenderHeat("misses per set", heat, introspect.HeatMisses, 64))
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.RenderHeat("conflict evictions per set", heat, introspect.HeatEvictions, 64))
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.TopSetsTable(heat, introspect.HeatEvictions, 8))
		}
	}

	if *curve {
		// One Mattson pass gives the fully-associative LRU miss ratio at
		// every capacity; print it per side for powers of two up to 64K
		// lines.
		caps := []int{16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}
		for _, sideName := range []string{"instruction", "data"} {
			instr := sideName == "instruction"
			sd := analysis.MustNewStackDist(*line, caps[len(caps)-1])
			if err := pass(func(src memtrace.Source) error {
				memtrace.Each(src, func(a memtrace.Access) {
					if (a.Kind == memtrace.Ifetch) == instr {
						sd.Access(uint64(a.Addr))
					}
				})
				return nil
			}); err != nil {
				fmt.Fprintln(stderr, "tracestat:", err)
				return 1
			}
			if sd.Accesses() == 0 {
				continue
			}
			ratios, err := sd.MissRatioCurve(caps)
			if err != nil {
				fmt.Fprintln(stderr, "tracestat:", err)
				return 1
			}
			fmt.Fprintf(stdout, "\n%s fully-associative LRU miss-ratio curve (%dB lines):\n",
				sideName, *line)
			for i, c := range caps {
				bytes := c * (*line)
				label := fmt.Sprintf("%d B", bytes)
				if bytes >= 1024 {
					label = fmt.Sprintf("%d KB", bytes/1024)
				}
				fmt.Fprintf(stdout, "  %8s: %.4f\n", label, ratios[i])
			}
		}
	}
	return 0
}
