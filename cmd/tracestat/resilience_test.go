package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCorruptDin(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		kind := i % 3
		fmt.Fprintf(&sb, "%d %x\n", kind, 0x1000+i*16)
		if i%50 == 7 {
			sb.WriteString("## not a din record ##\n")
		}
	}
	path := filepath.Join(t.TempDir(), "corrupt.din")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptDinStrictVsLenient(t *testing.T) {
	path := writeCorruptDin(t)

	if code, _, _ := runCmd(t, "-trace", path, "-format", "din"); code != 1 {
		t.Fatalf("strict mode on corrupt trace: exit %d, want 1", code)
	}

	code, out, errOut := runCmd(t, "-trace", path, "-format", "din", "-lenient")
	if code != 0 {
		t.Fatalf("lenient mode: exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "degradation:") || !strings.Contains(out, "records dropped") {
		t.Errorf("missing degradation report:\n%s", out)
	}
	if !strings.Contains(out, "accesses:         200") {
		t.Errorf("lenient mode did not deliver the 200 good records:\n%s", out)
	}
}

func TestLenientCapExceededFails(t *testing.T) {
	path := writeCorruptDin(t)
	code, _, errOut := runCmd(t, "-trace", path, "-format", "din", "-lenient", "-maxdrops", "2")
	if code != 1 || !strings.Contains(errOut, "lenient cap") {
		t.Errorf("code %d, stderr %q, want a cap failure", code, errOut)
	}
}

// Every analysis pass re-decodes the file; in lenient mode each pass must
// see the same damage and the tool must report it only once.
func TestLenientReportPrintedOnce(t *testing.T) {
	path := writeCorruptDin(t)
	code, out, _ := runCmd(t, "-trace", path, "-format", "din", "-lenient", "-curve")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if n := strings.Count(out, "degradation:"); n != 1 {
		t.Errorf("degradation line printed %d times, want 1", n)
	}
}
