package main

import (
	"strings"
	"testing"
)

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCmd(t, "-version")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "tracestat") {
		t.Errorf("version output %q does not lead with the tool name", out)
	}
}
