// Command cachesim replays a binary trace file (produced by tracegen)
// through one configurable first-level cache system and reports hit/miss
// statistics. It is the standalone single-configuration harness; for the
// paper's full experiment suite use jouppisim.
//
// Usage:
//
//	cachesim -trace linpack.jtr -side data -size 4096 -line 16 -victim 4 -ways 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jouppi/internal/cache"
	"jouppi/internal/classify"
	"jouppi/internal/core"
	"jouppi/internal/memtrace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath = fs.String("trace", "", "trace file (required)")
		format    = fs.String("format", "jtr", "trace format: jtr | din")
		sideStr   = fs.String("side", "data", "which references to simulate: instr | data | all")
		size      = fs.Int("size", 4096, "cache size in bytes")
		line      = fs.Int("line", 16, "line size in bytes")
		assoc     = fs.Int("assoc", 1, "associativity (1 = direct-mapped)")
		missCache = fs.Int("misscache", 0, "miss cache entries")
		victim    = fs.Int("victim", 0, "victim cache entries")
		ways      = fs.Int("ways", 0, "stream buffer ways (0 = none)")
		depth     = fs.Int("depth", 4, "stream buffer depth")
		quasi     = fs.Bool("quasi", false, "quasi-sequential stream buffer lookup")
		stride    = fs.Bool("stride", false, "stride-detecting stream buffers")
		classify3 = fs.Bool("classify", false, "also report the 3C miss classification of the plain cache")
		lenient   = fs.Bool("lenient", false, "skip malformed trace records (up to -maxdrops) and report the degradation instead of failing")
		maxDrops  = fs.Uint64("maxdrops", 1<<20, "malformed-record cap in -lenient mode (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *tracePath == "" {
		fmt.Fprintln(stderr, "cachesim: -trace is required")
		return 2
	}
	if *missCache > 0 && (*victim > 0 || *ways > 0) {
		fmt.Fprintln(stderr, "cachesim: -misscache cannot be combined with -victim or -ways")
		return 2
	}

	// The trace streams through the simulator in buffered chunks — it is
	// never materialized, so file size does not bound what cachesim can
	// replay.
	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}
	defer f.Close()
	var (
		src    memtrace.Source
		srcErr func() error
		degr   func() memtrace.Degradation
	)
	switch *format {
	case "jtr":
		r, err := memtrace.NewReader(f)
		if err != nil {
			fmt.Fprintln(stderr, "cachesim:", err)
			return 1
		}
		if *lenient {
			r.Lenient(*maxDrops)
		}
		src, srcErr, degr = r, r.Err, r.Degradation
	case "din":
		dr := memtrace.NewDineroReader(f)
		if *lenient {
			dr.Lenient(*maxDrops)
		}
		src, srcErr, degr = dr, dr.Err, dr.Degradation
	default:
		fmt.Fprintln(stderr, "cachesim: -format must be jtr or din")
		return 2
	}

	keep := func(a memtrace.Access) bool { return true }
	switch *sideStr {
	case "instr":
		keep = func(a memtrace.Access) bool { return a.Kind == memtrace.Ifetch }
	case "data":
		keep = func(a memtrace.Access) bool { return a.Kind.IsData() }
	case "all":
	default:
		fmt.Fprintln(stderr, "cachesim: -side must be instr, data, or all")
		return 2
	}

	l1cfg := cache.Config{Name: "L1", Size: *size, LineSize: *line, Assoc: *assoc}
	if err := l1cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 2
	}
	l1 := cache.MustNew(l1cfg)

	var fe core.FrontEnd
	timing := core.DefaultTiming()
	streamCfg := core.StreamConfig{Ways: *ways, Depth: *depth, Quasi: *quasi, DetectStride: *stride}
	switch {
	case *missCache > 0:
		fe = core.NewMissCache(l1, *missCache, nil, timing)
	case *victim > 0 && *ways > 0:
		fe = core.NewCombined(l1, *victim, streamCfg, nil, timing)
	case *victim > 0:
		fe = core.NewVictimCache(l1, *victim, nil, timing)
	case *ways > 0:
		fe = core.NewStreamBuffer(l1, streamCfg, nil, timing)
	default:
		fe = core.NewBaseline(l1, nil, timing)
	}

	var cl *classify.Classifier
	if *classify3 {
		cl = classify.MustNew(*size, *line)
	}

	memtrace.Each(src, func(a memtrace.Access) {
		if !keep(a) {
			return
		}
		r := fe.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		if cl != nil {
			cl.ObserveMiss(uint64(a.Addr), !r.L1Hit)
		}
	})
	if err := srcErr(); err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}

	st := fe.Stats()
	fmt.Fprintf(stdout, "configuration:   %s over %dB/%dB/%d-way cache\n", fe.Name(), *size, *line, *assoc)
	if *lenient {
		// The degradation report rides alongside the results so damaged
		// inputs are visible, never silent.
		fmt.Fprintf(stdout, "degradation:     %s\n", degr())
	}
	fmt.Fprintf(stdout, "accesses:        %d\n", st.Accesses)
	fmt.Fprintf(stdout, "L1 hits:         %d\n", st.L1Hits)
	fmt.Fprintf(stdout, "L1 misses:       %d (raw rate %.4f)\n", st.L1Misses, st.RawMissRate())
	if st.AuxHits > 0 {
		fmt.Fprintf(stdout, "aux hits:        %d (victim %d, miss-cache %d, stream %d)\n",
			st.AuxHits, st.VictimHits, st.MissCacheHits, st.StreamHits)
	}
	fmt.Fprintf(stdout, "full misses:     %d (effective rate %.4f)\n", st.FullMisses(), st.MissRate())
	if st.PrefetchIssued > 0 {
		fmt.Fprintf(stdout, "prefetches:      %d issued, %d used (%.1f%% accuracy)\n",
			st.PrefetchIssued, st.PrefetchUsed,
			100*float64(st.PrefetchUsed)/float64(st.PrefetchIssued))
	}
	fmt.Fprintf(stdout, "stall cycles:    %d (%.2f per access)\n",
		st.StallCycles, float64(st.StallCycles)/float64(max(1, st.Accesses)))
	if cl != nil {
		c := cl.Counts()
		total := max(1, c.Total())
		fmt.Fprintf(stdout, "3C (plain L1):   compulsory %d (%.1f%%), capacity %d (%.1f%%), conflict %d (%.1f%%)\n",
			c.Compulsory, 100*float64(c.Compulsory)/float64(total),
			c.Capacity, 100*float64(c.Capacity)/float64(total),
			c.Conflict, 100*float64(c.Conflict)/float64(total))
	}
	return 0
}
