// Command cachesim replays a binary trace file (produced by tracegen)
// through one configurable first-level cache system and reports hit/miss
// statistics. It is the standalone single-configuration harness; for the
// paper's full experiment suite use jouppisim.
//
// Usage:
//
//	cachesim -trace linpack.jtr -side data -size 4096 -line 16 -victim 4 -ways 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jouppi/internal/cache"
	"jouppi/internal/classify"
	"jouppi/internal/core"
	"jouppi/internal/introspect"
	"jouppi/internal/memtrace"
	"jouppi/internal/shardreplay"
	"jouppi/internal/telemetry"
	"jouppi/internal/textplot"
	"jouppi/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath  = fs.String("trace", "", "trace file (required)")
		format     = fs.String("format", "jtr", "trace format: jtr | din")
		sideStr    = fs.String("side", "data", "which references to simulate: instr | data | all")
		size       = fs.Int("size", 4096, "cache size in bytes")
		line       = fs.Int("line", 16, "line size in bytes")
		assoc      = fs.Int("assoc", 1, "associativity (1 = direct-mapped)")
		missCache  = fs.Int("misscache", 0, "miss cache entries")
		victim     = fs.Int("victim", 0, "victim cache entries")
		ways       = fs.Int("ways", 0, "stream buffer ways (0 = none)")
		depth      = fs.Int("depth", 4, "stream buffer depth")
		quasi      = fs.Bool("quasi", false, "quasi-sequential stream buffer lookup")
		stride     = fs.Bool("stride", false, "stride-detecting stream buffers")
		classify3  = fs.Bool("classify", false, "also report the 3C miss classification of the plain cache")
		fanouts    = fs.String("fanout", "", "decode the trace once and replay it through multiple configurations: semicolon-separated specs, each a comma-separated key=value list over size, line, assoc, misscache, victim, ways, depth, quasi, stride (empty spec = the main-flag configuration)")
		phase      = fs.Int("phase", 0, "render a phase plot: miss rate per window of this many kept accesses (0 = off)")
		heatmap    = fs.Bool("heatmap", false, "render per-set access/miss/eviction heatmaps and the hottest-set table")
		missSample = fs.Int("misssample", 0, "sample every Nth L1 miss into a bounded event ring (0 = off)")
		missCap    = fs.Int("misscap", 0, "miss-event ring capacity (default 1024)")
		missDump   = fs.String("missdump", "", "write the sampled miss events as JSONL to this file (enables -misssample 1 unless set)")
		shards     = fs.Int("shards", 1, "replay the single configuration on this many set-partitioned shards (results are bit-identical; configurations with globally-coupled structures fall back to sequential with a note)")
		lenient    = fs.Bool("lenient", false, "skip malformed trace records (up to -maxdrops) and report the degradation instead of failing")
		maxDrops   = fs.Uint64("maxdrops", 1<<20, "malformed-record cap in -lenient mode (0 = unlimited)")
		metrics    = fs.String("metrics-addr", "", "serve /metrics, /vars and /debug/pprof on this address for the duration of the replay")
		progress   = fs.Bool("progress", false, "render a live progress line (records decoded, accesses/sec) on stderr")
		showVer    = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *showVer {
		fmt.Fprintln(stdout, version.String("cachesim"))
		return 0
	}

	if *tracePath == "" {
		fmt.Fprintln(stderr, "cachesim: -trace is required")
		return 2
	}
	if *missCache > 0 && (*victim > 0 || *ways > 0) {
		fmt.Fprintln(stderr, "cachesim: -misscache cannot be combined with -victim or -ways")
		return 2
	}
	if *fanouts != "" && *classify3 {
		fmt.Fprintln(stderr, "cachesim: -classify is not supported with -fanout")
		return 2
	}
	if *fanouts != "" && *shards > 1 {
		fmt.Fprintln(stderr, "cachesim: -shards is not supported with -fanout (fan-out already parallelizes across configurations)")
		return 2
	}
	if *missDump != "" && *missSample == 0 {
		*missSample = 1
	}
	introOn := *phase > 0 || *heatmap || *missSample > 0
	if *fanouts != "" && introOn {
		fmt.Fprintln(stderr, "cachesim: -phase/-heatmap/-misssample/-missdump are not supported with -fanout")
		return 2
	}

	// Observability plumbing. The registry backs both the /metrics
	// endpoint and the progress line; when neither flag is set reg stays
	// nil and every counter below is a no-op.
	var reg *telemetry.Registry
	if *metrics != "" || *progress {
		reg = telemetry.NewRegistry()
	}
	if *metrics != "" {
		srv, err := telemetry.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintln(stderr, "cachesim:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "cachesim: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", srv.Addr())
	}
	decoded := reg.Counter("memtrace_records_total", "trace records decoded")
	dropped := reg.Counter("memtrace_dropped_total", "trace records dropped in lenient mode")

	// The trace streams through the simulator in buffered chunks — it is
	// never materialized, so file size does not bound what cachesim can
	// replay.
	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}
	defer f.Close()
	var (
		src    memtrace.Source
		srcErr func() error
		degr   func() memtrace.Degradation
	)
	switch *format {
	case "jtr":
		r, err := memtrace.NewReader(f)
		if err != nil {
			fmt.Fprintln(stderr, "cachesim:", err)
			return 1
		}
		if *lenient {
			r.Lenient(*maxDrops)
		}
		r.Instrument(decoded, dropped)
		src, srcErr, degr = r, r.Err, r.Degradation
	case "din":
		dr := memtrace.NewDineroReader(f)
		if *lenient {
			dr.Lenient(*maxDrops)
		}
		dr.Instrument(decoded, dropped)
		src, srcErr, degr = dr, dr.Err, dr.Degradation
	default:
		fmt.Fprintln(stderr, "cachesim: -format must be jtr or din")
		return 2
	}

	keep := func(a memtrace.Access) bool { return true }
	switch *sideStr {
	case "instr":
		keep = func(a memtrace.Access) bool { return a.Kind == memtrace.Ifetch }
	case "data":
		keep = func(a memtrace.Access) bool { return a.Kind.IsData() }
	case "all":
	default:
		fmt.Fprintln(stderr, "cachesim: -side must be instr, data, or all")
		return 2
	}

	if *fanouts != "" {
		def := feSpec{size: *size, line: *line, assoc: *assoc,
			missCache: *missCache, victim: *victim,
			ways: *ways, depth: *depth, quasi: *quasi, stride: *stride}
		var prog *telemetry.Progress
		if *progress {
			prog = telemetry.NewProgress(stderr, decoded, nil, nil)
			prog.Start(200 * time.Millisecond)
			defer prog.Stop()
		}
		return runFanout(stdout, stderr, *fanouts, def, src, keep, reg, srcErr, degr, *lenient)
	}

	l1cfg := cache.Config{Name: "L1", Size: *size, LineSize: *line, Assoc: *assoc}
	if err := l1cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 2
	}

	if *shards > 1 {
		// Structures coupled through the global access stream cannot
		// shard; declare them so the planner's fallback says why. The
		// decision only routes work — results are bit-identical either way.
		var coupled []string
		if *missCache > 0 {
			coupled = append(coupled, "-misscache: the miss cache is a shared fully-associative structure ordered by the global miss stream")
		}
		if *victim > 0 {
			coupled = append(coupled, "-victim: the victim cache is a shared fully-associative structure ordered by the global eviction stream")
		}
		if *ways > 0 {
			coupled = append(coupled, "-ways: stream buffers are allocated by the global miss stream")
		}
		if *classify3 {
			coupled = append(coupled, "-classify: the 3C classifier keeps a global fully-associative LRU shadow")
		}
		if introOn {
			coupled = append(coupled, "-phase/-heatmap/-misssample: introspection observers are ordered by the global access stream")
		}
		dec := shardreplay.PlanCache(l1cfg, *shards, coupled...)
		if dec.Sharded() {
			return runShardedReplay(stdout, stderr, dec, l1cfg, src, keep, reg,
				srcErr, degr, *lenient, *progress, decoded)
		}
		fmt.Fprintf(stderr, "cachesim: replaying sequentially: %s\n", dec.Fallback)
	}

	l1 := cache.MustNew(l1cfg)

	var fe core.FrontEnd
	timing := core.DefaultTiming()
	streamCfg := core.StreamConfig{Ways: *ways, Depth: *depth, Quasi: *quasi, DetectStride: *stride}
	switch {
	case *missCache > 0:
		fe = core.NewMissCache(l1, *missCache, nil, timing)
	case *victim > 0 && *ways > 0:
		fe = core.NewCombined(l1, *victim, streamCfg, nil, timing)
	case *victim > 0:
		fe = core.NewVictimCache(l1, *victim, nil, timing)
	case *ways > 0:
		fe = core.NewStreamBuffer(l1, streamCfg, nil, timing)
	default:
		fe = core.NewBaseline(l1, nil, timing)
	}

	var cl *classify.Classifier
	if *classify3 {
		cl = classify.MustNew(*size, *line)
	}

	// The introspection probe is a pure reader riding the replay loop:
	// attaching it changes none of the numbers reported below (when
	// -classify is on, its sampled events reuse that classifier instead
	// of shadowing the stream twice).
	var probe *introspect.Probe
	if introOn {
		opts := introspect.Options{Window: *phase, Heatmap: *heatmap,
			MissEvery: *missSample, MissCap: *missCap}
		if *phase == 0 {
			opts.Window = -1
		}
		probe = introspect.NewProbe(l1cfg, opts)
		probe.AttachTelemetry(reg, "l1")
	}

	// Live replay counters, published as deltas of the front-end's own
	// stats at flush boundaries (every telFlushEvery kept accesses and at
	// end of replay), so the hot loop carries no telemetry work beyond a
	// pending-count increment. With reg nil tel stays nil and even that
	// disappears.
	const telFlushEvery = 4096
	tel := newFETel(reg)
	if reg != nil {
		l1.Instrument(cache.NewCounters(reg, l1cfg.Name))
		if cl != nil {
			cl.Instrument(
				reg.Counter("sim_3c_compulsory_misses_total", "plain-cache misses classified compulsory"),
				reg.Counter("sim_3c_capacity_misses_total", "plain-cache misses classified capacity"),
				reg.Counter("sim_3c_conflict_misses_total", "plain-cache misses classified conflict"))
		}
	}
	flushTel := func() {
		if tel == nil {
			return
		}
		tel.publish(fe.Stats())
		l1.FlushTelemetry()
		if cl != nil {
			cl.Flush()
		}
	}
	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(stderr, decoded, nil, nil)
		prog.Start(200 * time.Millisecond)
		defer prog.Stop()
	}

	memtrace.Each(src, func(a memtrace.Access) {
		if !keep(a) {
			return
		}
		r := fe.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		if cl != nil {
			c := cl.ObserveMiss(uint64(a.Addr), !r.L1Hit)
			if probe != nil {
				probe.ObserveClassified(uint64(a.Addr), r, c)
			}
		} else if probe != nil {
			probe.Observe(uint64(a.Addr), r)
		}
		if tel != nil {
			tel.pending++
			if tel.pending >= telFlushEvery {
				flushTel()
			}
		}
	})
	flushTel()
	if prog != nil {
		prog.Stop()
	}
	if *lenient {
		memtrace.PublishDegradation(reg, degr())
	}
	if err := srcErr(); err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}

	st := fe.Stats()
	degraded := ""
	if *lenient {
		// The degradation report rides alongside the results so damaged
		// inputs are visible, never silent.
		degraded = fmt.Sprint(degr())
	}
	printStats(stdout, fe.Name(), *size, *line, *assoc, st, degraded)
	if cl != nil {
		c := cl.Counts()
		total := max(1, c.Total())
		fmt.Fprintf(stdout, "3C (plain L1):   compulsory %d (%.1f%%), capacity %d (%.1f%%), conflict %d (%.1f%%)\n",
			c.Compulsory, 100*float64(c.Compulsory)/float64(total),
			c.Capacity, 100*float64(c.Capacity)/float64(total),
			c.Conflict, 100*float64(c.Conflict)/float64(total))
	}
	if probe != nil {
		if *phase > 0 {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.RenderPhases(
				fmt.Sprintf("%s miss rate per %d-access window", fe.Name(), *phase),
				[]textplot.Series{introspect.PhaseSeries(fe.Name(), probe.Windows())},
				72, 16))
		}
		if *heatmap {
			heat := probe.Heat()
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.RenderHeat("accesses per set", heat, introspect.HeatAccesses, 64))
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.RenderHeat("misses per set", heat, introspect.HeatMisses, 64))
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.RenderHeat("conflict evictions per set", heat, introspect.HeatEvictions, 64))
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, introspect.TopSetsTable(heat, introspect.HeatEvictions, 8))
		}
		if *missSample > 0 {
			events := probe.Events()
			fmt.Fprintf(stdout, "miss trace:      %d sampled (every %d), %d dropped by the ring\n",
				len(events), *missSample, probe.Dropped())
			if *missDump != "" {
				df, err := os.Create(*missDump)
				if err != nil {
					fmt.Fprintln(stderr, "cachesim:", err)
					return 1
				}
				j := telemetry.NewJournal(df)
				probe.EmitMissEvents(j, *sideStr)
				err = j.Err()
				if cerr := df.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					fmt.Fprintln(stderr, "cachesim:", err)
					return 1
				}
				fmt.Fprintf(stdout, "miss dump:       %s\n", *missDump)
			}
		}
	}
	return 0
}
