package main

import (
	"strings"
	"testing"
)

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCmd(t, "-version")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "cachesim") {
		t.Errorf("version output %q does not lead with the tool name", out)
	}
}

// TestMetricsAndProgressReplay smoke-tests a replay with the full
// observability surface on: ephemeral metrics endpoint plus progress
// line, results identical to a plain run.
func TestMetricsAndProgressReplay(t *testing.T) {
	path := writeTestTrace(t)
	code, plain, _ := runCmd(t, "-trace", path, "-victim", "4", "-ways", "4", "-classify")
	if code != 0 {
		t.Fatalf("plain run exit %d", code)
	}
	code, instr, errOut := runCmd(t, "-trace", path, "-victim", "4", "-ways", "4", "-classify",
		"-metrics-addr", "127.0.0.1:0", "-progress")
	if code != 0 {
		t.Fatalf("instrumented run exit %d, stderr %q", code, errOut)
	}
	if plain != instr {
		t.Errorf("telemetry changed the replay output:\nplain:\n%s\ninstrumented:\n%s", plain, instr)
	}
	if !strings.Contains(errOut, "/metrics") {
		t.Errorf("stderr does not announce the metrics endpoint: %q", errOut)
	}
}
