package main

import (
	"strings"
	"testing"
)

// TestShardedStdoutIdentical pins the CLI half of the sharding
// contract: -shards must not change a single byte of stdout.
func TestShardedStdoutIdentical(t *testing.T) {
	path := writeTestTrace(t)
	for _, side := range []string{"data", "instr", "all"} {
		code, seq, _ := runCmd(t, "-trace", path, "-side", side)
		if code != 0 {
			t.Fatalf("sequential exit %d", code)
		}
		code, sharded, errOut := runCmd(t, "-trace", path, "-side", side, "-shards", "4")
		if code != 0 {
			t.Fatalf("sharded exit %d, stderr %q", code, errOut)
		}
		if seq != sharded {
			t.Errorf("side %s: sharded stdout diverged\n--- sequential ---\n%s--- sharded ---\n%s", side, seq, sharded)
		}
		if !strings.Contains(errOut, "sharded replay on 4 shards") {
			t.Errorf("side %s: stderr missing shard note: %q", side, errOut)
		}
	}
}

// TestShardedFallbackNote pins that every globally-coupled flag demotes
// -shards to a sequential replay with a reason on stderr — and the run
// still succeeds with unchanged output shape.
func TestShardedFallbackNote(t *testing.T) {
	path := writeTestTrace(t)
	for _, tc := range []struct {
		extra []string
		want  string
	}{
		{[]string{"-victim", "4"}, "-victim"},
		{[]string{"-misscache", "2"}, "-misscache"},
		{[]string{"-ways", "2"}, "-ways"},
		{[]string{"-classify"}, "-classify"},
		{[]string{"-heatmap"}, "-heatmap"},
	} {
		args := append([]string{"-trace", path, "-shards", "4"}, tc.extra...)
		code, out, errOut := runCmd(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr %q", tc.extra, code, errOut)
		}
		if !strings.Contains(errOut, "replaying sequentially") || !strings.Contains(errOut, tc.want) {
			t.Errorf("%v: stderr missing fallback reason: %q", tc.extra, errOut)
		}
		if !strings.Contains(out, "configuration:") {
			t.Errorf("%v: no results printed", tc.extra)
		}
	}
}

// TestShardsRejectedWithFanout pins the flag conflict.
func TestShardsRejectedWithFanout(t *testing.T) {
	path := writeTestTrace(t)
	code, _, errOut := runCmd(t, "-trace", path, "-shards", "2", "-fanout", "size=8192")
	if code != 2 || !strings.Contains(errOut, "-shards") {
		t.Errorf("exit %d, stderr %q", code, errOut)
	}
}

// TestShardedLenientAndMetrics exercises the sharded path's lenient
// decode and end-of-replay telemetry publication.
func TestShardedLenientAndMetrics(t *testing.T) {
	path := writeTestTrace(t)
	code, out, errOut := runCmd(t, "-trace", path, "-shards", "4", "-lenient", "-progress")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "degradation:") {
		t.Errorf("lenient run did not report degradation:\n%s", out)
	}
}
