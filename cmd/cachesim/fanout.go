package main

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/fanout"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
)

// feSpec is one first-level configuration of a fan-out replay. Fields
// default to the main command-line flags, so a spec only names what it
// changes.
type feSpec struct {
	size, line, assoc              int
	missCache, victim, ways, depth int
	quasi, stride                  bool
}

// parseFanoutSpec parses one semicolon-separated element of -fanout: a
// comma-separated key=value list over the feSpec fields. The empty spec
// is the main-flag configuration, labelled "baseline".
func parseFanoutSpec(s string, def feSpec) (feSpec, string, error) {
	sp := def
	label := strings.TrimSpace(s)
	if label == "" {
		label = "baseline"
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return sp, "", fmt.Errorf("fanout spec %q: want key=value, got %q", s, kv)
		}
		bad := func(err error) (feSpec, string, error) {
			return sp, "", fmt.Errorf("fanout spec %q: %s: %v", s, key, err)
		}
		switch key {
		case "quasi", "stride":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return bad(err)
			}
			if key == "quasi" {
				sp.quasi = b
			} else {
				sp.stride = b
			}
		case "size", "line", "assoc", "misscache", "victim", "ways", "depth":
			n, err := strconv.Atoi(val)
			if err != nil {
				return bad(err)
			}
			switch key {
			case "size":
				sp.size = n
			case "line":
				sp.line = n
			case "assoc":
				sp.assoc = n
			case "misscache":
				sp.missCache = n
			case "victim":
				sp.victim = n
			case "ways":
				sp.ways = n
			case "depth":
				sp.depth = n
			}
		default:
			return sp, "", fmt.Errorf("fanout spec %q: unknown key %q (have size, line, assoc, misscache, victim, ways, depth, quasi, stride)", s, key)
		}
	}
	return sp, label, nil
}

// frontEnd builds the configured first-level system, mirroring the
// single-configuration switch in run.
func (sp feSpec) frontEnd() (core.FrontEnd, error) {
	if sp.missCache > 0 && (sp.victim > 0 || sp.ways > 0) {
		return nil, fmt.Errorf("misscache cannot be combined with victim or ways")
	}
	l1cfg := cache.Config{Name: "L1", Size: sp.size, LineSize: sp.line, Assoc: sp.assoc}
	if err := l1cfg.Validate(); err != nil {
		return nil, err
	}
	l1 := cache.MustNew(l1cfg)
	timing := core.DefaultTiming()
	streamCfg := core.StreamConfig{Ways: sp.ways, Depth: sp.depth, Quasi: sp.quasi, DetectStride: sp.stride}
	switch {
	case sp.missCache > 0:
		return core.NewMissCache(l1, sp.missCache, nil, timing), nil
	case sp.victim > 0 && sp.ways > 0:
		return core.NewCombined(l1, sp.victim, streamCfg, nil, timing), nil
	case sp.victim > 0:
		return core.NewVictimCache(l1, sp.victim, nil, timing), nil
	case sp.ways > 0:
		return core.NewStreamBuffer(l1, streamCfg, nil, timing), nil
	default:
		return core.NewBaseline(l1, nil, timing), nil
	}
}

// feConsumer replays the kept references of each broadcast chunk into one
// front end.
type feConsumer struct {
	fe   core.FrontEnd
	keep func(memtrace.Access) bool
}

func (c *feConsumer) Consume(chunk []memtrace.Access) {
	for _, a := range chunk {
		if c.keep(a) {
			c.fe.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		}
	}
}

// runFanout decodes the trace once and replays it through every spec'd
// configuration via the fan-out engine, printing one summary row per
// configuration. Statistics are bit-identical to running cachesim once
// per configuration; the decode cost is paid once.
func runFanout(stdout, stderr io.Writer, specs string, def feSpec,
	src memtrace.Source, keep func(memtrace.Access) bool,
	reg *telemetry.Registry, srcErr func() error,
	degr func() memtrace.Degradation, lenient bool) int {
	var labels []string
	var consumers []fanout.Consumer
	var fes []core.FrontEnd
	for _, s := range strings.Split(specs, ";") {
		sp, label, err := parseFanoutSpec(s, def)
		if err != nil {
			fmt.Fprintln(stderr, "cachesim:", err)
			return 2
		}
		fe, err := sp.frontEnd()
		if err != nil {
			fmt.Fprintf(stderr, "cachesim: fanout spec %q: %v\n", label, err)
			return 2
		}
		labels = append(labels, label)
		fes = append(fes, fe)
		consumers = append(consumers, &feConsumer{fe: fe, keep: keep})
	}

	eng := fanout.New(fanout.Config{})
	eng.AttachTelemetry(reg)
	if err := eng.Replay(context.Background(), src, consumers...); err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}
	if err := srcErr(); err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}
	if lenient {
		memtrace.PublishDegradation(reg, degr())
		fmt.Fprintf(stdout, "degradation:     %s\n", degr())
	}

	fmt.Fprintf(stdout, "fan-out replay:  %d configurations, one trace pass\n", len(fes))
	wid := len("config")
	for _, l := range labels {
		if len(l) > wid {
			wid = len(l)
		}
	}
	fmt.Fprintf(stdout, "%-*s  %12s  %12s  %12s  %12s  %10s\n",
		wid, "config", "accesses", "L1 misses", "aux hits", "full misses", "miss rate")
	for i, fe := range fes {
		st := fe.Stats()
		fmt.Fprintf(stdout, "%-*s  %12d  %12d  %12d  %12d  %10.4f\n",
			wid, labels[i], st.Accesses, st.L1Misses, st.AuxHits, st.FullMisses(), st.MissRate())
	}
	return 0
}
