package main

// The -shards replay path: the single configuration is replicated once
// per shard and the trace is routed by L1 set index, so each replica
// sees exactly the accesses that touch its sets and the merged stats
// are bit-identical to the sequential replay's (internal/shardreplay's
// differential suite pins this). stdout is printed through the same
// helper as the sequential path, so the two outputs are identical by
// construction; the only sharding trace is on stderr and in telemetry.

import (
	"context"
	"fmt"
	"io"
	"time"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/memtrace"
	"jouppi/internal/shardreplay"
	"jouppi/internal/telemetry"
)

// feTel publishes the replayed front-end's outcome counters as deltas
// of its own stats: the sequential path flushes every telFlushEvery
// kept accesses and at end of replay; the sharded path publishes once
// at the end, from the merging goroutine, since per-shard stats are
// single-owner until the shard goroutines finish.
type feTel struct {
	accesses, l1Hits, auxHits, missCacheHits, victimHits, streamHits, fullMisses *telemetry.Counter
	last                                                                         core.Stats
	pending                                                                      int
}

func newFETel(reg *telemetry.Registry) *feTel {
	if reg == nil {
		return nil
	}
	return &feTel{
		accesses:      reg.Counter("sim_replay_accesses_total", "references replayed through the cache under study"),
		l1Hits:        reg.Counter("sim_l1_hits_total", "first-level cache hits"),
		auxHits:       reg.Counter("sim_aux_hits_total", "hits in any auxiliary structure"),
		missCacheHits: reg.Counter("sim_miss_cache_hits_total", "miss-cache hits"),
		victimHits:    reg.Counter("sim_victim_hits_total", "victim-cache hits"),
		streamHits:    reg.Counter("sim_stream_hits_total", "stream-buffer hits"),
		fullMisses:    reg.Counter("sim_full_misses_total", "misses served by the next level"),
	}
}

func addDelta(c *telemetry.Counter, cur, last uint64) {
	if cur != last {
		c.Add(cur - last)
	}
}

func (t *feTel) publish(cur core.Stats) {
	addDelta(t.accesses, cur.Accesses, t.last.Accesses)
	addDelta(t.l1Hits, cur.L1Hits, t.last.L1Hits)
	addDelta(t.auxHits, cur.AuxHits, t.last.AuxHits)
	addDelta(t.missCacheHits, cur.MissCacheHits, t.last.MissCacheHits)
	addDelta(t.victimHits, cur.VictimHits, t.last.VictimHits)
	addDelta(t.streamHits, cur.StreamHits, t.last.StreamHits)
	addDelta(t.fullMisses, cur.FullMisses(), t.last.FullMisses())
	t.last = cur
	t.pending = 0
}

// printStats renders the replayed front-end's counters. Both replay
// paths print through it, so sharded stdout matches sequential stdout
// byte for byte.
func printStats(stdout io.Writer, name string, size, line, assoc int, st core.Stats, degraded string) {
	fmt.Fprintf(stdout, "configuration:   %s over %dB/%dB/%d-way cache\n", name, size, line, assoc)
	if degraded != "" {
		// The degradation report rides alongside the results so damaged
		// inputs are visible, never silent.
		fmt.Fprintf(stdout, "degradation:     %s\n", degraded)
	}
	fmt.Fprintf(stdout, "accesses:        %d\n", st.Accesses)
	fmt.Fprintf(stdout, "L1 hits:         %d\n", st.L1Hits)
	fmt.Fprintf(stdout, "L1 misses:       %d (raw rate %.4f)\n", st.L1Misses, st.RawMissRate())
	if st.AuxHits > 0 {
		fmt.Fprintf(stdout, "aux hits:        %d (victim %d, miss-cache %d, stream %d)\n",
			st.AuxHits, st.VictimHits, st.MissCacheHits, st.StreamHits)
	}
	fmt.Fprintf(stdout, "full misses:     %d (effective rate %.4f)\n", st.FullMisses(), st.MissRate())
	if st.PrefetchIssued > 0 {
		fmt.Fprintf(stdout, "prefetches:      %d issued, %d used (%.1f%% accuracy)\n",
			st.PrefetchIssued, st.PrefetchUsed,
			100*float64(st.PrefetchUsed)/float64(st.PrefetchIssued))
	}
	fmt.Fprintf(stdout, "stall cycles:    %d (%.2f per access)\n",
		st.StallCycles, float64(st.StallCycles)/float64(max(1, st.Accesses)))
}

// filterSource narrows a source to the kept accesses on the producer
// side, before shard routing — the same stream the sequential loop's
// keep filter admits.
type filterSource struct {
	src  memtrace.Source
	keep func(memtrace.Access) bool
}

func (f filterSource) Next() (memtrace.Access, bool) {
	for {
		a, ok := f.src.Next()
		if !ok || f.keep(a) {
			return a, ok
		}
	}
}

// runShardedReplay replays the planned sharded decision and prints the
// merged stats.
func runShardedReplay(stdout, stderr io.Writer, dec shardreplay.Decision, l1cfg cache.Config,
	src memtrace.Source, keep func(memtrace.Access) bool, reg *telemetry.Registry,
	srcErr func() error, degr func() memtrace.Degradation, lenient, progress bool,
	decoded *telemetry.Counter) int {

	build := func() (core.FrontEnd, error) {
		c, err := cache.New(l1cfg)
		if err != nil {
			return nil, err
		}
		return core.NewBaseline(c, nil, core.DefaultTiming()), nil
	}
	fes, err := shardreplay.NewFrontEnds(l1cfg, dec.Requested, build)
	if err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}
	fes.AttachTelemetry(reg)
	fmt.Fprintf(stderr, "cachesim: sharded replay on %d shards (set-index bits [%d,%d), bit-identical to sequential)\n",
		dec.Shards, dec.FieldShift, dec.FieldShift+dec.FieldWidth)

	var prog *telemetry.Progress
	if progress {
		prog = telemetry.NewProgress(stderr, decoded, nil, nil)
		prog.Start(200 * time.Millisecond)
		defer prog.Stop()
	}

	if err := fes.Replay(context.Background(), filterSource{src: src, keep: keep}); err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}
	if prog != nil {
		prog.Stop()
	}
	st := fes.Stats()
	newFETel(reg).publishMerged(st)
	degraded := ""
	if lenient {
		memtrace.PublishDegradation(reg, degr())
		degraded = fmt.Sprint(degr())
	}
	if err := srcErr(); err != nil {
		fmt.Fprintln(stderr, "cachesim:", err)
		return 1
	}
	printStats(stdout, fes.FrontEnds()[0].Name(), l1cfg.Size, l1cfg.LineSize, l1cfg.Assoc, st, degraded)
	return 0
}

// publishMerged publishes the end-of-replay merged stats (a no-op when
// telemetry is off, so the nil receiver is fine).
func (t *feTel) publishMerged(st core.Stats) {
	if t != nil {
		t.publish(st)
	}
}
