package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCorruptDin writes a din trace with good records bracketing a few
// malformed lines and returns its path.
func writeCorruptDin(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "2 %x\n", i*4)
		if i%25 == 10 {
			sb.WriteString("garbage line here\n")
		}
	}
	path := filepath.Join(t.TempDir(), "corrupt.din")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Strict mode must fail fast and non-zero on a damaged trace; lenient
// mode must complete and surface the damage in a degradation report.
func TestCorruptDinStrictVsLenient(t *testing.T) {
	path := writeCorruptDin(t)

	code, _, errOut := runCmd(t, "-trace", path, "-format", "din", "-side", "instr")
	if code != 1 {
		t.Fatalf("strict mode on corrupt trace: exit %d, want 1", code)
	}
	if errOut == "" {
		t.Error("strict failure produced no stderr diagnostic")
	}

	code, out, errOut := runCmd(t, "-trace", path, "-format", "din", "-side", "instr", "-lenient")
	if code != 0 {
		t.Fatalf("lenient mode: exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "degradation:") || !strings.Contains(out, "records dropped") {
		t.Errorf("lenient output missing degradation report:\n%s", out)
	}
	if !strings.Contains(out, "accesses:        100") {
		t.Errorf("lenient mode did not deliver the 100 good records:\n%s", out)
	}
}

// The -maxdrops cap converts unbounded damage back into a hard failure.
func TestLenientCapExceededFails(t *testing.T) {
	path := writeCorruptDin(t)
	code, _, errOut := runCmd(t, "-trace", path, "-format", "din", "-lenient", "-maxdrops", "1")
	if code != 1 {
		t.Fatalf("exit %d, want 1 when drops exceed the cap", code)
	}
	if !strings.Contains(errOut, "lenient cap") {
		t.Errorf("stderr %q, want a cap diagnostic", errOut)
	}
}

// A clean trace in lenient mode reports no degradation and produces the
// same statistics as strict mode.
func TestLenientCleanTraceIdentical(t *testing.T) {
	path := writeTestTrace(t)
	codeS, outS, _ := runCmd(t, "-trace", path, "-side", "data")
	codeL, outL, _ := runCmd(t, "-trace", path, "-side", "data", "-lenient")
	if codeS != 0 || codeL != 0 {
		t.Fatalf("exits %d/%d", codeS, codeL)
	}
	if !strings.Contains(outL, "no records dropped") {
		t.Errorf("clean trace reported degradation:\n%s", outL)
	}
	// Strip the degradation line; everything else must match strict.
	var kept []string
	for _, line := range strings.Split(outL, "\n") {
		if !strings.HasPrefix(line, "degradation:") {
			kept = append(kept, line)
		}
	}
	if strings.Join(kept, "\n") != outS {
		t.Errorf("lenient stats differ from strict on a clean trace:\n--- strict ---\n%s\n--- lenient ---\n%s", outS, outL)
	}
}
