package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jouppi/internal/memtrace"
	"jouppi/internal/workload"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// writeTestTrace writes a small benchmark trace and returns its path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "met.jtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := memtrace.NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	workload.Met().Generate(0.02, sw)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMissingTrace(t *testing.T) {
	if code, _, errOut := runCmd(t); code != 2 || !strings.Contains(errOut, "required") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

func TestConflictingFlags(t *testing.T) {
	code, _, errOut := runCmd(t, "-trace", "x", "-misscache", "2", "-victim", "2")
	if code != 2 || !strings.Contains(errOut, "misscache") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

func TestBadSideAndGeometry(t *testing.T) {
	path := writeTestTrace(t)
	if code, _, _ := runCmd(t, "-trace", path, "-side", "sideways"); code != 2 {
		t.Error("bad side accepted")
	}
	if code, _, _ := runCmd(t, "-trace", path, "-size", "100"); code != 2 {
		t.Error("bad geometry accepted")
	}
	if code, _, _ := runCmd(t, "-trace", path, "-format", "xml"); code != 2 {
		t.Error("bad format accepted")
	}
}

func TestMissingFile(t *testing.T) {
	if code, _, _ := runCmd(t, "-trace", "/definitely/missing.jtr"); code != 1 {
		t.Error("missing file not reported")
	}
}

func TestBaselineRun(t *testing.T) {
	path := writeTestTrace(t)
	code, out, errOut := runCmd(t, "-trace", path, "-side", "data")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"configuration:", "accesses:", "full misses:", "baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVictimWithStreamAndClassify(t *testing.T) {
	path := writeTestTrace(t)
	code, out, _ := runCmd(t, "-trace", path, "-side", "data",
		"-victim", "4", "-ways", "4", "-classify")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"combined-vc4-sb4x4", "aux hits:", "3C (plain L1):", "conflict"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMissCacheRun(t *testing.T) {
	path := writeTestTrace(t)
	code, out, _ := runCmd(t, "-trace", path, "-misscache", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "miss-cache-2") {
		t.Errorf("output missing config name:\n%s", out)
	}
}

func TestStreamOnlyRunWithOptions(t *testing.T) {
	path := writeTestTrace(t)
	for _, extra := range [][]string{
		{"-ways", "1"},
		{"-ways", "4", "-quasi"},
		{"-ways", "4", "-stride"},
		{"-victim", "2"},
		{"-side", "instr"},
		{"-side", "all", "-assoc", "2"},
	} {
		args := append([]string{"-trace", path}, extra...)
		if code, _, errOut := runCmd(t, args...); code != 0 {
			t.Errorf("args %v: exit %d, stderr %q", extra, code, errOut)
		}
	}
}
