package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jouppi/internal/workload"
)

// writeDineroTrace writes a small benchmark trace in dinero text format
// and returns its path.
func writeDineroTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "met.din")
	tr := workload.GenerateTrace(workload.Met(), 0.02)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteDinero(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// fanoutRow extracts the whitespace-separated numeric cells of the table
// row whose config label is name.
func fanoutRow(t *testing.T, out, name string) []string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && fields[0] == name {
			return fields[1:]
		}
	}
	t.Fatalf("no fan-out row for %q in output:\n%s", name, out)
	return nil
}

// singleStat pulls "label:   value" numbers out of the single-config
// output for cross-checking against the fan-out table.
func singleStat(t *testing.T, out, label string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, label) {
			fields := strings.Fields(strings.TrimPrefix(line, label))
			if len(fields) == 0 {
				break
			}
			return fields[0]
		}
	}
	t.Fatalf("no %q line in output:\n%s", label, out)
	return ""
}

// TestFanoutMatchesSingleRuns is the CLI-level equivalence pin: every row
// of a -fanout replay must report exactly the numbers the corresponding
// single-configuration invocation reports from its own decode of the same
// trace file.
func TestFanoutMatchesSingleRuns(t *testing.T) {
	path := writeTestTrace(t)
	specs := map[string][]string{
		"baseline":    nil,
		"victim=4":    {"-victim", "4"},
		"misscache=4": {"-misscache", "4"},
		"ways=4":      {"-ways", "4"},
	}
	code, out, errOut := runCmd(t, "-trace", path, "-side", "data",
		"-fanout", "; victim=4 ; misscache=4 ; ways=4")
	if code != 0 {
		t.Fatalf("fanout run failed (%d): %s", code, errOut)
	}
	if !strings.Contains(out, "4 configurations, one trace pass") {
		t.Errorf("missing fan-out banner:\n%s", out)
	}
	for label, flags := range specs {
		args := append([]string{"-trace", path, "-side", "data"}, flags...)
		scode, sout, serr := runCmd(t, args...)
		if scode != 0 {
			t.Fatalf("single run %v failed (%d): %s", flags, scode, serr)
		}
		row := fanoutRow(t, out, label)
		if got, want := row[0], singleStat(t, sout, "accesses:"); got != want {
			t.Errorf("%s accesses: fanout %s, single %s", label, got, want)
		}
		if got, want := row[1], singleStat(t, sout, "L1 misses:"); got != want {
			t.Errorf("%s L1 misses: fanout %s, single %s", label, got, want)
		}
		if got, want := row[3], singleStat(t, sout, "full misses:"); got != want {
			t.Errorf("%s full misses: fanout %s, single %s", label, got, want)
		}
	}
}

// TestFanoutSpecErrors covers the parser's failure modes and flag
// interactions.
func TestFanoutSpecErrors(t *testing.T) {
	path := writeTestTrace(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad pair", []string{"-fanout", "victim"}, "want key=value"},
		{"unknown key", []string{"-fanout", "entries=4"}, "unknown key"},
		{"bad int", []string{"-fanout", "victim=many"}, "victim"},
		{"bad bool", []string{"-fanout", "quasi=perhaps"}, "quasi"},
		{"conflict", []string{"-fanout", "misscache=2,victim=2"}, "misscache"},
		{"bad geometry", []string{"-fanout", "size=1000"}, "size"},
		{"classify", []string{"-fanout", "victim=2", "-classify"}, "-classify"},
	}
	for _, tc := range cases {
		args := append([]string{"-trace", path}, tc.args...)
		code, _, errOut := runCmd(t, args...)
		if code != 2 || !strings.Contains(errOut, tc.want) {
			t.Errorf("%s: code %d, stderr %q (want code 2 containing %q)",
				tc.name, code, errOut, tc.want)
		}
	}
}

// TestFanoutDineroAndTelemetry replays a dinero-format trace through the
// fan-out arm with metrics enabled — the decode-once case the engine is
// built for — and checks the run completes with the engine metrics
// exposed.
func TestFanoutDineroAndTelemetry(t *testing.T) {
	path := writeDineroTrace(t)
	code, out, errOut := runCmd(t, "-trace", path, "-format", "din",
		"-metrics-addr", "127.0.0.1:0",
		"-fanout", ";victim=2;victim=4,ways=4")
	if code != 0 {
		t.Fatalf("code %d: %s", code, errOut)
	}
	if !strings.Contains(out, "3 configurations") {
		t.Errorf("banner missing:\n%s", out)
	}
}
