package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jouppi/internal/telemetry"
)

// TestIntrospectionFlagsRender checks the -phase/-heatmap/-misssample
// views all render and that the standard report above them is unchanged
// by attaching the probe.
func TestIntrospectionFlagsRender(t *testing.T) {
	path := writeTestTrace(t)
	_, plain, _ := runCmd(t, "-trace", path, "-side", "data", "-victim", "4")
	code, out, errOut := runCmd(t, "-trace", path, "-side", "data", "-victim", "4",
		"-phase", "2048", "-heatmap", "-misssample", "8")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	// The probe is a pure reader: everything cachesim printed without it
	// must appear verbatim, as a prefix, with it.
	if !strings.HasPrefix(out, plain) {
		t.Errorf("introspected output does not start with the plain report:\nplain:\n%s\nintrospected:\n%s", plain, out)
	}
	for _, want := range []string{
		"miss rate per 2048-access window",
		"accesses per set",
		"misses per set",
		"conflict evictions per set",
		"set  accesses  misses  evictions",
		"miss trace:",
		"(every 8)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestIntrospectionWithClassify checks the probe rides the -classify
// classifier (sampled events should render without error alongside 3C).
func TestIntrospectionWithClassify(t *testing.T) {
	path := writeTestTrace(t)
	dump := filepath.Join(t.TempDir(), "miss.jsonl")
	code, out, errOut := runCmd(t, "-trace", path, "-side", "data",
		"-classify", "-missdump", dump)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "3C (plain L1):") || !strings.Contains(out, "miss dump:") {
		t.Fatalf("output missing sections:\n%s", out)
	}
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 || events[0].Event != "miss-dump" || events[0].Side != "data" {
		t.Fatalf("unexpected journal head: %+v", events[:min(2, len(events))])
	}
	if events[0].Total != len(events)-1 {
		t.Errorf("miss-dump Total %d, %d event lines", events[0].Total, len(events)-1)
	}
	for _, e := range events[1:] {
		if e.Event != "miss-event" || e.Addr == "" || e.Served == "" {
			t.Fatalf("malformed miss-event: %+v", e)
		}
		// -classify was on, so every sampled miss carries its 3C class.
		if e.Class == "" {
			t.Fatalf("miss-event missing class: %+v", e)
		}
	}
}

// -missdump with no explicit -misssample samples every miss.
func TestMissDumpImpliesSampling(t *testing.T) {
	path := writeTestTrace(t)
	dump := filepath.Join(t.TempDir(), "miss.jsonl")
	code, out, errOut := runCmd(t, "-trace", path, "-missdump", dump)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "(every 1)") {
		t.Errorf("missdump did not imply -misssample 1:\n%s", out)
	}
}

func TestIntrospectionRejectedWithFanout(t *testing.T) {
	for _, extra := range [][]string{
		{"-phase", "1024"},
		{"-heatmap"},
		{"-misssample", "4"},
		{"-missdump", "x.jsonl"},
	} {
		args := append([]string{"-trace", "x", "-fanout", ";victim=4"}, extra...)
		code, _, errOut := runCmd(t, args...)
		if code != 2 || !strings.Contains(errOut, "not supported with -fanout") {
			t.Errorf("args %v: code %d, stderr %q", extra, code, errOut)
		}
	}
}

func TestMissDumpCreateError(t *testing.T) {
	path := writeTestTrace(t)
	dump := filepath.Join(t.TempDir(), "missing-dir", "miss.jsonl")
	if code, _, errOut := runCmd(t, "-trace", path, "-missdump", dump); code != 1 {
		t.Errorf("uncreatable -missdump: code %d, stderr %q", code, errOut)
	}
}
