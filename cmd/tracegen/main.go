// Command tracegen generates a benchmark's memory-reference trace into a
// trace file — the compact binary format ("JTR1", see internal/memtrace)
// or classic dinero "din" text — for use with cachesim, tracestat, or
// external tools.
//
// Usage:
//
//	tracegen -bench linpack -scale 0.5 -o linpack.jtr
//	tracegen -bench liver -format din -o liver.din
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"jouppi/internal/memtrace"
	"jouppi/internal/version"
	"jouppi/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list   = fs.Bool("list", false, "list available benchmarks and exit")
		bench  = fs.String("bench", "", "benchmark name")
		scale  = fs.Float64("scale", 0.25, "workload scale")
		out    = fs.String("o", "", "output file (required)")
		format = fs.String("format", "jtr", "output format: jtr (binary) | din (dinero text)")
		ver    = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *ver {
		fmt.Fprintln(stdout, version.String("tracegen"))
		return 0
	}

	if *list {
		for _, b := range append(workload.All(), workload.Strided(), workload.PointerChase()) {
			fmt.Fprintf(stdout, "  %-10s %s\n", b.Name(), b.Description())
		}
		return 0
	}
	if *bench == "" || *out == "" {
		fmt.Fprintln(stderr, "tracegen: -bench and -o are required; see -list")
		return 2
	}
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fmt.Fprintf(stderr, "tracegen: -scale must be a positive finite number, got %v\n", *scale)
		return 2
	}

	var b workload.Benchmark
	switch *bench {
	case "strided":
		b = workload.Strided()
	case "ptrchase":
		b = workload.PointerChase()
	default:
		var ok bool
		if b, ok = workload.ByName(*bench); !ok {
			fmt.Fprintf(stderr, "tracegen: unknown benchmark %q; see -list\n", *bench)
			return 2
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	var count uint64
	switch *format {
	case "jtr":
		sw, err := memtrace.NewStreamWriter(f)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		b.Generate(*scale, sw)
		if err := sw.Close(); err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		count = sw.Count()
	case "din":
		dw := memtrace.NewDineroWriter(f)
		b.Generate(*scale, dw)
		if err := dw.Close(); err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		count = dw.Count()
	default:
		fmt.Fprintln(stderr, "tracegen: -format must be jtr or din")
		return 2
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "tracegen: wrote %d accesses to %s (%s)\n", count, *out, *format)
	return 0
}
