package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestBadScaleIsUsageError(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.jtr")
	for _, scale := range []string{"0", "-0.5", "+Inf", "NaN"} {
		code, _, errOut := runCmd(t, "-bench", "met", "-scale", scale, "-o", out)
		if code != 2 || !strings.Contains(errOut, "scale") {
			t.Errorf("scale %s: code %d, stderr %q", scale, code, errOut)
		}
	}
}

func TestUnwritableOutputFails(t *testing.T) {
	code, _, errOut := runCmd(t, "-bench", "met", "-scale", "0.01", "-o", "/nonexistent-dir/x.jtr")
	if code != 1 || errOut == "" {
		t.Errorf("code %d, stderr %q, want runtime failure on stderr", code, errOut)
	}
}
