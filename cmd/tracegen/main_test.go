package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jouppi/internal/memtrace"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"ccom", "grr", "yacc", "met", "linpack", "liver", "strided"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestMissingArgs(t *testing.T) {
	if code, _, errOut := runCmd(t); code != 2 || !strings.Contains(errOut, "required") {
		t.Errorf("missing args: code %d, stderr %q", code, errOut)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	code, _, errOut := runCmd(t, "-bench", "nope", "-o", "/tmp/x.jtr")
	if code != 2 || !strings.Contains(errOut, "unknown benchmark") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

func TestUnknownFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.out")
	code, _, errOut := runCmd(t, "-bench", "met", "-o", path, "-format", "xml")
	if code != 2 || !strings.Contains(errOut, "format") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

func TestGenerateJTR(t *testing.T) {
	path := filepath.Join(t.TempDir(), "met.jtr")
	code, out, errOut := runCmd(t, "-bench", "met", "-scale", "0.02", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "wrote") {
		t.Errorf("stdout = %q", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := memtrace.ReadTrace(f)
	if err != nil {
		t.Fatalf("generated file unreadable: %v", err)
	}
	if tr.Len() == 0 {
		t.Error("empty trace generated")
	}
}

func TestGenerateDin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "met.din")
	code, _, errOut := runCmd(t, "-bench", "strided", "-scale", "0.02", "-o", path, "-format", "din")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := memtrace.ReadDinero(f)
	if err != nil {
		t.Fatalf("generated din unreadable: %v", err)
	}
	if tr.Len() == 0 {
		t.Error("empty din trace")
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCmd(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
