package jouppi

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"sort"
	"testing"
	"time"

	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/trace"
	"jouppi/internal/workload"
	"jouppi/sim"
)

// replayImproved drives one full replay of the ccom trace through the
// improved system, optionally with a telemetry registry attached, and
// returns the simulation results.
func replayImproved(tb testing.TB, tr *memtrace.Trace, reg *telemetry.Registry) sim.Results {
	tb.Helper()
	sys, err := sim.NewSystem(sim.ImprovedSystem())
	if err != nil {
		tb.Fatal(err)
	}
	sys.AttachTelemetry(reg)
	tr.Each(func(a memtrace.Access) {
		switch a.Kind {
		case memtrace.Ifetch:
			sys.Ifetch(uint64(a.Addr))
		case memtrace.Load:
			sys.Load(uint64(a.Addr))
		case memtrace.Store:
			sys.Store(uint64(a.Addr))
		}
	})
	return sys.Results()
}

// replayIntrospected is replayImproved with the introspection probe
// attached in its benchmark configuration: default phase windows,
// per-set heatmaps, and every-64th-miss sampling — everything except the
// 3C shadow classifier, whose cost is priced separately and opted into.
func replayIntrospected(tb testing.TB, tr *memtrace.Trace) sim.Results {
	tb.Helper()
	sys, err := sim.NewSystem(sim.ImprovedSystem())
	if err != nil {
		tb.Fatal(err)
	}
	sys.AttachIntrospection(sim.Introspection{Window: 1 << 15, Heatmap: true, MissEvery: 64})
	tr.Each(func(a memtrace.Access) {
		switch a.Kind {
		case memtrace.Ifetch:
			sys.Ifetch(uint64(a.Addr))
		case memtrace.Load:
			sys.Load(uint64(a.Addr))
		case memtrace.Store:
			sys.Store(uint64(a.Addr))
		}
	})
	return sys.Results()
}

// TestTelemetryEquivalence pins the zero-overhead contract from the
// observability layer: attaching a registry must not change any simulated
// number. Both replays walk the same trace; the Results structs must be
// identical field for field.
func TestTelemetryEquivalence(t *testing.T) {
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)
	plain := replayImproved(t, tr, nil)
	reg := telemetry.NewRegistry()
	instrumented := replayImproved(t, tr, reg)
	if plain != instrumented {
		t.Errorf("telemetry changed simulation results:\nplain:        %+v\ninstrumented: %+v",
			plain, instrumented)
	}
	// Sanity: the registry actually observed the replay.
	snap := reg.Snapshot()
	if snap["sim_l1i_accesses_total"] == 0 || snap["sim_l1d_accesses_total"] == 0 {
		t.Errorf("registry saw no accesses: %v", snap)
	}
}

// BenchmarkTelemetryReplay compares the replay loop with telemetry
// detached (the nil fast path every production sweep takes by default)
// against the fully instrumented loop. The off case is the one the ≤2%
// overhead budget in the design notes refers to.
func BenchmarkTelemetryReplay(b *testing.B) {
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)
	// The registry is shared across iterations (metric registration is
	// idempotent by name) so the on case measures per-access increment
	// cost, not registration.
	bench := func(reg *telemetry.Registry) func(*testing.B) {
		return func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				replayImproved(b, tr, reg)
				total += uint64(tr.Len())
			}
			b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
		}
	}
	b.Run("off", bench(nil))
	b.Run("on", bench(telemetry.NewRegistry()))
	b.Run("introspect", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			replayIntrospected(b, tr)
			total += uint64(tr.Len())
		}
		b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
	})
}

// pairedOverheadPercent estimates how much slower on is than off by
// running the two replays back to back pairs times and taking the
// median of the per-pair time ratios. On a shared, drifting machine
// this is far more stable than comparing two separately measured
// blocks: the drift cancels inside each pair (the replays run
// milliseconds apart) and the median discards the scheduling spikes
// that dominate a mean. The order within a pair alternates because the
// second replay of a pair runs measurably slower (it absorbs the GC
// debt of the first); the geometric mean of the two orders' median
// ratios cancels that position bias — an arm paired against itself
// reads ~0.0% where the one-order median reads ~+0.7%.
func pairedOverheadPercent(pairs int, off, on func()) float64 {
	off()
	on() // warm both paths before timing
	offFirst := make([]float64, 0, (pairs+1)/2)
	onFirst := make([]float64, 0, pairs/2)
	for i := 0; i < pairs; i++ {
		t0 := time.Now()
		if i%2 == 0 {
			off()
			t1 := time.Now()
			on()
			if d := t1.Sub(t0); d > 0 {
				offFirst = append(offFirst, float64(time.Since(t1))/float64(d))
			}
		} else {
			on()
			t1 := time.Now()
			off()
			if d := time.Since(t1); d > 0 {
				onFirst = append(onFirst, float64(t1.Sub(t0))/float64(d))
			}
		}
	}
	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	return 100 * (math.Sqrt(median(offFirst)*median(onFirst)) - 1)
}

// TestWriteBenchTelemetryJSON measures the off/on replay benchmarks with
// testing.Benchmark and writes the comparison to the file named by the
// BENCH_JSON environment variable (wired up as `make bench-json`). Without
// the variable the test is skipped, so ordinary `go test ./...` runs stay
// fast.
func TestWriteBenchTelemetryJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<path> to write the telemetry benchmark comparison")
	}
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)

	// The file-backed arm decodes the same workload from dinero text every
	// iteration — the shape a captured trace file replays in, and the
	// configuration the allocs/op regression gate watches: the zero-alloc
	// decode path keeps allocations per replay constant instead of
	// per-line.
	din, records := fanoutBenchTrace(t)
	fileCfg := fanoutBenchConfigs()[len(fanoutBenchConfigs())-1] // the full improved system
	replayFile := func(reg *telemetry.Registry) hierarchy.Results {
		counting := memtrace.NewCountingSource(memtrace.NewDineroReader(bytes.NewReader(din)))
		sys := hierarchy.MustNew(fileCfg)
		sys.AttachTelemetry(reg)
		sys.RunSource(counting)
		return sys.Results(counting.Instructions())
	}

	// Every arm is measured benchRuns times and the fastest run kept: on
	// a shared machine the minimum is the closest estimate of the true
	// cost. The rounds are interleaved — off, on, introspect, ... then
	// again — rather than run per arm back to back, so slow drift
	// (thermals, a neighbour tenant) lands on every arm instead of
	// biasing whichever arm happened to run last. These minima feed the
	// descriptive columns (ns/op, allocs/op, MAcc/s); the gated overhead
	// percentages come from pairedOverheadPercent below, which is robust
	// to drift the block comparison cannot cancel.
	const benchRuns = 5
	reg := telemetry.NewRegistry() // shared: prices increments, not registration
	fileReg := telemetry.NewRegistry()
	arms := []func(b *testing.B){
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replayImproved(b, tr, nil)
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replayImproved(b, tr, reg)
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replayIntrospected(b, tr)
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replayFile(nil)
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replayFile(fileReg)
			}
		},
	}
	mins := make([]testing.BenchmarkResult, len(arms))
	for round := 0; round < benchRuns; round++ {
		for i, fn := range arms {
			r := testing.Benchmark(fn)
			if round == 0 || r.NsPerOp() < mins[i].NsPerOp() {
				mins[i] = r
			}
		}
	}
	off, on, introOn, fileOff, fileOn := mins[0], mins[1], mins[2], mins[3], mins[4]

	type entry struct {
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		N           int     `json:"n"`
		MAccPerSec  float64 `json:"macc_per_sec"`
	}
	mk := func(r testing.BenchmarkResult) entry {
		e := entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if r.T > 0 {
			e.MAccPerSec = float64(uint64(r.N)*uint64(tr.Len())) / 1e6 / r.T.Seconds()
		}
		return e
	}
	type fileReplay struct {
		Format    string  `json:"format"`
		Records   int     `json:"records"`
		Off       entry   `json:"telemetry_off"`
		On        entry   `json:"telemetry_on"`
		OverheadP float64 `json:"overhead_percent"`
	}
	report := struct {
		Benchmark  string     `json:"benchmark"`
		Workload   string     `json:"workload"`
		Scale      float64    `json:"scale"`
		Accesses   int        `json:"accesses"`
		Method     string     `json:"overhead_method"`
		Off        entry      `json:"telemetry_off"`
		On         entry      `json:"telemetry_on"`
		OverheadP  float64    `json:"overhead_percent"`
		Intro      entry      `json:"introspect_on"`
		IntroOverP float64    `json:"introspect_overhead_percent"`
		TraceOverP float64    `json:"trace_overhead_percent"`
		File       fileReplay `json:"file_replay"`
	}{
		Benchmark: "TelemetryReplay",
		Workload:  "ccom",
		Scale:     benchScale,
		Accesses:  tr.Len(),
		Method:    "paired-median",
		Off:       mk(off),
		On:        mk(on),
		Intro:     mk(introOn),
		File: fileReplay{
			Format:  "din",
			Records: records,
			Off:     mk(fileOff),
			On:      mk(fileOn),
		},
	}
	report.OverheadP = pairedOverheadPercent(500,
		func() { replayImproved(t, tr, nil) },
		func() { replayImproved(t, tr, reg) })
	report.IntroOverP = pairedOverheadPercent(500,
		func() { replayImproved(t, tr, nil) },
		func() { replayIntrospected(t, tr) })
	report.File.OverheadP = pairedOverheadPercent(250,
		func() { replayFile(nil) },
		func() { replayFile(fileReg) })
	// Trace attachment is priced on the whole fan-out replay path — the
	// exact code a traced cachesimd job runs — against the detached nil
	// fast path. Spans exist only at replay/consumer granularity, so this
	// prices a handful of span closes amortized over a full trace pass.
	tracer := trace.New(trace.Options{Capacity: 4})
	traceCfgs := []sim.Config{sim.ImprovedSystem()}
	replayTraced := func(attach bool) {
		ctx := context.Background()
		var root *trace.Span
		if attach {
			root = tracer.Root("bench", "", nil)
			ctx = trace.ContextWith(ctx, root)
		}
		if _, err := sim.ReplayManyContext(ctx, "ccom", benchScale, nil, traceCfgs); err != nil {
			t.Fatal(err)
		}
		root.End()
	}
	report.TraceOverP = pairedOverheadPercent(250,
		func() { replayTraced(false) },
		func() { replayTraced(true) })
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: off %d ns/op (%d allocs), on %d ns/op (%d allocs), overhead %.1f%%; "+
		"introspect on %d ns/op (%d allocs), overhead %.1f%%; trace overhead %.1f%%; "+
		"file replay off %d ns/op (%d allocs), on %d ns/op (%d allocs), overhead %.1f%%",
		out, report.Off.NsPerOp, report.Off.AllocsPerOp,
		report.On.NsPerOp, report.On.AllocsPerOp, report.OverheadP,
		report.Intro.NsPerOp, report.Intro.AllocsPerOp, report.IntroOverP, report.TraceOverP,
		report.File.Off.NsPerOp, report.File.Off.AllocsPerOp,
		report.File.On.NsPerOp, report.File.On.AllocsPerOp, report.File.OverheadP)
}
