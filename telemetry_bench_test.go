package jouppi

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/workload"
	"jouppi/sim"
)

// replayImproved drives one full replay of the ccom trace through the
// improved system, optionally with a telemetry registry attached, and
// returns the simulation results.
func replayImproved(tb testing.TB, tr *memtrace.Trace, reg *telemetry.Registry) sim.Results {
	tb.Helper()
	sys, err := sim.NewSystem(sim.ImprovedSystem())
	if err != nil {
		tb.Fatal(err)
	}
	sys.AttachTelemetry(reg)
	tr.Each(func(a memtrace.Access) {
		switch a.Kind {
		case memtrace.Ifetch:
			sys.Ifetch(uint64(a.Addr))
		case memtrace.Load:
			sys.Load(uint64(a.Addr))
		case memtrace.Store:
			sys.Store(uint64(a.Addr))
		}
	})
	return sys.Results()
}

// TestTelemetryEquivalence pins the zero-overhead contract from the
// observability layer: attaching a registry must not change any simulated
// number. Both replays walk the same trace; the Results structs must be
// identical field for field.
func TestTelemetryEquivalence(t *testing.T) {
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)
	plain := replayImproved(t, tr, nil)
	reg := telemetry.NewRegistry()
	instrumented := replayImproved(t, tr, reg)
	if plain != instrumented {
		t.Errorf("telemetry changed simulation results:\nplain:        %+v\ninstrumented: %+v",
			plain, instrumented)
	}
	// Sanity: the registry actually observed the replay.
	snap := reg.Snapshot()
	if snap["sim_l1i_accesses_total"] == 0 || snap["sim_l1d_accesses_total"] == 0 {
		t.Errorf("registry saw no accesses: %v", snap)
	}
}

// BenchmarkTelemetryReplay compares the replay loop with telemetry
// detached (the nil fast path every production sweep takes by default)
// against the fully instrumented loop. The off case is the one the ≤2%
// overhead budget in the design notes refers to.
func BenchmarkTelemetryReplay(b *testing.B) {
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)
	// The registry is shared across iterations (metric registration is
	// idempotent by name) so the on case measures per-access increment
	// cost, not registration.
	bench := func(reg *telemetry.Registry) func(*testing.B) {
		return func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				replayImproved(b, tr, reg)
				total += uint64(tr.Len())
			}
			b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
		}
	}
	b.Run("off", bench(nil))
	b.Run("on", bench(telemetry.NewRegistry()))
}

// TestWriteBenchTelemetryJSON measures the off/on replay benchmarks with
// testing.Benchmark and writes the comparison to the file named by the
// BENCH_JSON environment variable (wired up as `make bench-json`). Without
// the variable the test is skipped, so ordinary `go test ./...` runs stay
// fast.
func TestWriteBenchTelemetryJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<path> to write the telemetry benchmark comparison")
	}
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)
	// Each arm is measured several times and the fastest run kept: on a
	// shared machine the minimum is the closest estimate of the true cost,
	// and the overhead ratio between two noisy 1-second samples is
	// otherwise dominated by scheduler interference.
	const benchRuns = 5
	best := func(fn func(b *testing.B)) testing.BenchmarkResult {
		var min testing.BenchmarkResult
		for i := 0; i < benchRuns; i++ {
			r := testing.Benchmark(fn)
			if i == 0 || r.NsPerOp() < min.NsPerOp() {
				min = r
			}
		}
		return min
	}
	// As in BenchmarkTelemetryReplay, one registry is shared across
	// iterations so the on case prices increments, not registration.
	measure := func(reg *telemetry.Registry) testing.BenchmarkResult {
		return best(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replayImproved(b, tr, reg)
			}
		})
	}
	off := measure(nil)
	on := measure(telemetry.NewRegistry())

	// The file-backed arm decodes the same workload from dinero text every
	// iteration — the shape a captured trace file replays in, and the
	// configuration the allocs/op regression gate watches: the zero-alloc
	// decode path keeps allocations per replay constant instead of
	// per-line.
	din, records := fanoutBenchTrace(t)
	fileCfg := fanoutBenchConfigs()[len(fanoutBenchConfigs())-1] // the full improved system
	replayFile := func(reg *telemetry.Registry) hierarchy.Results {
		counting := memtrace.NewCountingSource(memtrace.NewDineroReader(bytes.NewReader(din)))
		sys := hierarchy.MustNew(fileCfg)
		sys.AttachTelemetry(reg)
		sys.RunSource(counting)
		return sys.Results(counting.Instructions())
	}
	measureFile := func(reg *telemetry.Registry) testing.BenchmarkResult {
		return best(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replayFile(reg)
			}
		})
	}
	fileOff := measureFile(nil)
	fileOn := measureFile(telemetry.NewRegistry())

	type entry struct {
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		N           int     `json:"n"`
		MAccPerSec  float64 `json:"macc_per_sec"`
	}
	mk := func(r testing.BenchmarkResult) entry {
		e := entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if r.T > 0 {
			e.MAccPerSec = float64(uint64(r.N)*uint64(tr.Len())) / 1e6 / r.T.Seconds()
		}
		return e
	}
	type fileReplay struct {
		Format    string  `json:"format"`
		Records   int     `json:"records"`
		Off       entry   `json:"telemetry_off"`
		On        entry   `json:"telemetry_on"`
		OverheadP float64 `json:"overhead_percent"`
	}
	report := struct {
		Benchmark string     `json:"benchmark"`
		Workload  string     `json:"workload"`
		Scale     float64    `json:"scale"`
		Accesses  int        `json:"accesses"`
		Off       entry      `json:"telemetry_off"`
		On        entry      `json:"telemetry_on"`
		OverheadP float64    `json:"overhead_percent"`
		File      fileReplay `json:"file_replay"`
	}{
		Benchmark: "TelemetryReplay",
		Workload:  "ccom",
		Scale:     benchScale,
		Accesses:  tr.Len(),
		Off:       mk(off),
		On:        mk(on),
		File: fileReplay{
			Format:  "din",
			Records: records,
			Off:     mk(fileOff),
			On:      mk(fileOn),
		},
	}
	if report.Off.NsPerOp > 0 {
		report.OverheadP = 100 * float64(report.On.NsPerOp-report.Off.NsPerOp) / float64(report.Off.NsPerOp)
	}
	if report.File.Off.NsPerOp > 0 {
		report.File.OverheadP = 100 * float64(report.File.On.NsPerOp-report.File.Off.NsPerOp) / float64(report.File.Off.NsPerOp)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: off %d ns/op (%d allocs), on %d ns/op (%d allocs), overhead %.1f%%; "+
		"file replay off %d ns/op (%d allocs), on %d ns/op (%d allocs), overhead %.1f%%",
		out, report.Off.NsPerOp, report.Off.AllocsPerOp,
		report.On.NsPerOp, report.On.AllocsPerOp, report.OverheadP,
		report.File.Off.NsPerOp, report.File.Off.AllocsPerOp,
		report.File.On.NsPerOp, report.File.On.AllocsPerOp, report.File.OverheadP)
}
