// Trace pipeline: generate a workload trace, write it to disk in both
// supported formats, read it back, characterize it (footprints and
// miss-stream run lengths — the property stream buffers exploit), and
// replay it through a cache front-end. This is the programmatic
// equivalent of the tracegen → tracestat → cachesim tool chain.
//
//	go run ./examples/tracepipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"jouppi/internal/analysis"
	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/memtrace"
	"jouppi/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "jouppi-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate linpack's reference trace.
	tr := workload.GenerateTrace(workload.Linpack(), 0.1)
	fmt.Printf("generated linpack trace: %d accesses (%d instructions)\n",
		tr.Len(), tr.Instructions())

	// 2. Write it in both formats and read the binary one back.
	jtrPath := filepath.Join(dir, "linpack.jtr")
	f, err := os.Create(jtrPath)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	dinPath := filepath.Join(dir, "linpack.din")
	df, err := os.Create(dinPath)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tr.WriteDinero(df); err != nil {
		log.Fatal(err)
	}
	df.Close()

	rf, err := os.Open(jtrPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := memtrace.ReadTrace(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	jtrInfo, _ := os.Stat(jtrPath)
	dinInfo, _ := os.Stat(dinPath)
	fmt.Printf("round-tripped %d accesses (binary %d KB, dinero text %d KB)\n",
		loaded.Len(), jtrInfo.Size()/1024, dinInfo.Size()/1024)

	// 3. Characterize: footprint and sequential miss runs.
	sum, err := analysis.Summarize(loaded.Source(), 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("footprint: I %dKB, D %dKB\n", sum.IFootprint/1024, sum.DFootprint/1024)
	runs, err := analysis.MissRunLengths(loaded.Source(), false, 4096, 16, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data miss stream: %d sequential runs, mean %.2f lines\n",
		runs.Total(), runs.Mean())

	// 4. Replay the data side through a victim cache + 4-way stream
	// buffer front-end.
	fe := core.NewCombined(
		cache.MustNew(cache.Config{Name: "L1D", Size: 4096, LineSize: 16, Assoc: 1}),
		4, core.StreamConfig{Ways: 4, Depth: 4}, nil, core.DefaultTiming())
	memtrace.Each(loaded.Source(), func(a memtrace.Access) {
		if a.Kind.IsData() {
			fe.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		}
	})
	st := fe.Stats()
	fmt.Printf("replay through %s: raw miss rate %.4f -> effective %.4f "+
		"(%d victim hits, %d stream hits)\n",
		fe.Name(), st.RawMissRate(), st.MissRate(), st.VictimHits, st.StreamHits)
}
