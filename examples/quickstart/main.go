// Quickstart: simulate the paper's baseline system and its improved
// system (victim cache + stream buffers) on one benchmark and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jouppi/sim"
)

func main() {
	const bench = "ccom"
	const scale = 0.25

	base, err := sim.RunBenchmark(bench, scale, sim.BaselineSystem())
	if err != nil {
		log.Fatal(err)
	}
	improved, err := sim.RunBenchmark(bench, scale, sim.ImprovedSystem())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (%d instructions)\n\n", bench, base.Instructions)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "improved")
	fmt.Printf("%-22s %12.4f %12.4f\n", "I-cache miss rate", base.I.MissRate, improved.I.MissRate)
	fmt.Printf("%-22s %12.4f %12.4f\n", "D-cache miss rate", base.D.MissRate, improved.D.MissRate)
	fmt.Printf("%-22s %12d %12d\n", "victim-cache hits", base.D.VictimHits, improved.D.VictimHits)
	fmt.Printf("%-22s %12d %12d\n", "stream-buffer hits",
		base.I.StreamHits+base.D.StreamHits, improved.I.StreamHits+improved.D.StreamHits)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "of potential perf",
		base.PercentOfPotential, improved.PercentOfPotential)
	fmt.Printf("\nspeedup from a 4-entry victim cache + stream buffers: %.2fx\n",
		sim.Speedup(base, improved))
}
