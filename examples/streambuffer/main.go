// Stream-buffer study: compare single, multi-way, quasi-sequential, and
// stride-detecting stream buffers on the two numeric workloads whose
// behaviour motivates them — linpack (one dominant sequential stream per
// loop) and liver (several interleaved streams), plus the strided
// column-walk that defeats sequential prefetching entirely.
//
//	go run ./examples/streambuffer
package main

import (
	"fmt"
	"log"

	"jouppi/sim"
)

func main() {
	const scale = 0.25
	configs := []struct {
		name string
		cfg  sim.Config
	}{
		{"no buffers", sim.Config{}},
		{"single buffer", sim.Config{D: sim.Augmentation{Stream: &sim.StreamOptions{Ways: 1}}}},
		{"4-way buffers", sim.Config{D: sim.Augmentation{Stream: &sim.StreamOptions{Ways: 4}}}},
		{"4-way quasi", sim.Config{D: sim.Augmentation{Stream: &sim.StreamOptions{Ways: 4, Quasi: true}}}},
		{"4-way stride", sim.Config{D: sim.Augmentation{Stream: &sim.StreamOptions{Ways: 4, DetectStride: true}}}},
	}

	for _, bench := range []string{"linpack", "liver", "strided"} {
		fmt.Printf("== %s ==\n", bench)
		var base sim.Results
		for i, c := range configs {
			res, err := sim.RunBenchmark(bench, scale, c.cfg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = res
			}
			removed := 0.0
			if base.D.FullMisses > 0 {
				removed = 100 * float64(int64(base.D.FullMisses)-int64(res.D.FullMisses)) /
					float64(base.D.FullMisses)
			}
			fmt.Printf("  %-14s D miss rate %.4f   misses removed %6.1f%%   stream hits %8d\n",
				c.name, res.D.MissRate, removed, res.D.StreamHits)
		}
		fmt.Println()
	}
	fmt.Println("expected shapes (paper §4 and §5 future work):")
	fmt.Println("  linpack: even a single buffer removes most misses (one stream at a time)")
	fmt.Println("  liver:   a single buffer thrashes; 4-way captures the interleaved streams")
	fmt.Println("  strided: sequential buffers are useless; only stride detection helps")
}
