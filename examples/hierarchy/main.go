// Hierarchy study: sweep the paper's six benchmarks through four system
// configurations (baseline, +miss caches, +victim caches, the paper's
// full improved system) and print a Figure 5-1-style comparison of system
// performance, demonstrating the abstract's claim that a small amount of
// hardware recovers a large share of the performance lost to the memory
// hierarchy.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"jouppi/sim"
)

func main() {
	const scale = 0.25

	configs := []struct {
		name string
		cfg  sim.Config
	}{
		{"baseline", sim.BaselineSystem()},
		{"+4-entry miss caches", sim.Config{
			I: sim.Augmentation{MissCacheEntries: 4},
			D: sim.Augmentation{MissCacheEntries: 4},
		}},
		{"+4-entry victim caches", sim.Config{
			I: sim.Augmentation{VictimCacheEntries: 4},
			D: sim.Augmentation{VictimCacheEntries: 4},
		}},
		{"improved (paper fig 5-1)", sim.ImprovedSystem()},
	}

	fmt.Printf("%-10s", "bench")
	for _, c := range configs {
		fmt.Printf(" %24s", c.name)
	}
	fmt.Println()

	sums := make([]float64, len(configs))
	for _, bench := range sim.Benchmarks()[:6] {
		fmt.Printf("%-10s", bench)
		var base sim.Results
		for i, c := range configs {
			res, err := sim.RunBenchmark(bench, scale, c.cfg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = res
			}
			sp := sim.Speedup(base, res)
			sums[i] += sp
			fmt.Printf("    %8.1f%% (%5.2fx)", res.PercentOfPotential, sp)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("mean speedup over baseline:")
	for i := range configs {
		fmt.Printf("  %s %.2fx", configs[i].name, sums[i]/6)
	}
	fmt.Println()
	fmt.Println("\n(the paper reports an average improvement of 143% — about 2.4x — for the")
	fmt.Println(" improved system, with the first-level miss rate cut by a factor of 2–3)")
}
