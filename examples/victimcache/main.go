// Victim-cache study: drive a custom access pattern — the paper's §3.1
// string-comparison scenario, where two buffers map to the same
// direct-mapped cache lines — through systems with a miss cache, a victim
// cache, and nothing, using the manual access API.
//
// The output shows the paper's core §3 result: the alternating conflict
// pattern defeats the plain cache completely, a one-entry miss cache
// doesn't help (it duplicates a line the cache already has), and a
// one-entry victim cache removes nearly every conflict miss.
//
//	go run ./examples/victimcache
package main

import (
	"fmt"
	"log"

	"jouppi/sim"
)

// compareStrings emits the address pattern of comparing two long strings
// whose storage collides in a 4KB direct-mapped cache, preceded by a tiny
// code loop.
func compareStrings(sys *sim.System, iterations int) {
	const (
		textBase = 0x0010_0000
		strA     = 0x1000_0040 // same offset modulo 4KB …
		strB     = 0x1000_1040 // … so every line of A collides with B
	)
	for i := 0; i < iterations; i++ {
		for pc := 0; pc < 6; pc++ { // the comparison loop body
			sys.Ifetch(textBase + uint64(pc*4))
		}
		off := uint64(i % 256 * 4) // walk the strings word by word
		sys.Load(strA + off)
		sys.Load(strB + off)
	}
}

func run(name string, cfg sim.Config) sim.Results {
	sys, err := sim.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	compareStrings(sys, 20000)
	res := sys.Results()
	fmt.Printf("%-22s D misses %6d  (miss rate %.4f, victim hits %d, miss-cache hits %d)\n",
		name, res.D.FullMisses, res.D.MissRate, res.D.VictimHits, res.D.MissCacheHits)
	return res
}

func main() {
	fmt.Println("alternating string comparison over cache-colliding buffers")
	fmt.Println("(the paper's motivating example for miss and victim caches)")
	fmt.Println()
	plain := run("plain direct-mapped", sim.Config{})
	mc1 := run("1-entry miss cache", sim.Config{D: sim.Augmentation{MissCacheEntries: 1}})
	mc2 := run("2-entry miss cache", sim.Config{D: sim.Augmentation{MissCacheEntries: 2}})
	vc1 := run("1-entry victim cache", sim.Config{D: sim.Augmentation{VictimCacheEntries: 1}})

	fmt.Println()
	fmt.Printf("misses removed: miss-cache-1 %.0f%%, miss-cache-2 %.0f%%, victim-cache-1 %.0f%%\n",
		removed(plain, mc1), removed(plain, mc2), removed(plain, vc1))
	fmt.Println("(paper §3.2: victim caches of one entry are useful; one-entry miss caches are not)")
}

func removed(base, improved sim.Results) float64 {
	if base.D.FullMisses == 0 {
		return 0
	}
	return 100 * float64(base.D.FullMisses-improved.D.FullMisses) / float64(base.D.FullMisses)
}
