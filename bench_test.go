// Package jouppi's root benchmark harness: one testing.B benchmark per
// table and figure of the paper, timing the full regeneration of that
// exhibit (trace generation + all simulator sweeps), plus micro-benchmarks
// of the core simulation loop. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports MAcc/s — millions of simulated memory accesses
// per second across the whole sweep — so throughput is comparable between
// exhibits of different sizes.
package jouppi

import (
	"runtime"
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/experiments"
	"jouppi/internal/memtrace"
	"jouppi/internal/workload"
	"jouppi/sim"
)

// benchScale keeps each exhibit's regeneration in the hundreds of
// milliseconds; jouppisim uses larger scales for reported results.
const benchScale = 0.05

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	// Share traces across iterations; the sweep work itself is the
	// benchmark body.
	traces := experiments.NewTraceSet(benchScale)
	cfg := experiments.Config{Scale: benchScale, Traces: traces}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Run(cfg)
		if res == nil || len(res.Text) == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

func BenchmarkTable1_1(b *testing.B) { benchExperiment(b, "table1-1") }
func BenchmarkTable2_1(b *testing.B) { benchExperiment(b, "table2-1") }
func BenchmarkTable2_2(b *testing.B) { benchExperiment(b, "table2-2") }
func BenchmarkFig2_2(b *testing.B)   { benchExperiment(b, "fig2-2") }
func BenchmarkFig3_1(b *testing.B)   { benchExperiment(b, "fig3-1") }
func BenchmarkFig3_3(b *testing.B)   { benchExperiment(b, "fig3-3") }
func BenchmarkFig3_5(b *testing.B)   { benchExperiment(b, "fig3-5") }
func BenchmarkFig3_6(b *testing.B)   { benchExperiment(b, "fig3-6") }
func BenchmarkFig3_7(b *testing.B)   { benchExperiment(b, "fig3-7") }
func BenchmarkFig4_1(b *testing.B)   { benchExperiment(b, "fig4-1") }
func BenchmarkFig4_3(b *testing.B)   { benchExperiment(b, "fig4-3") }
func BenchmarkFig4_5(b *testing.B)   { benchExperiment(b, "fig4-5") }
func BenchmarkFig4_6(b *testing.B)   { benchExperiment(b, "fig4-6") }
func BenchmarkFig4_7(b *testing.B)   { benchExperiment(b, "fig4-7") }
func BenchmarkFig5_1(b *testing.B)   { benchExperiment(b, "fig5-1") }
func BenchmarkOverlap(b *testing.B)  { benchExperiment(b, "overlap") }

func BenchmarkAblationQuasi(b *testing.B)       { benchExperiment(b, "ablation-quasi") }
func BenchmarkAblationStride(b *testing.B)      { benchExperiment(b, "ablation-stride") }
func BenchmarkAblationL2Victim(b *testing.B)    { benchExperiment(b, "ablation-l2victim") }
func BenchmarkAblationMissCmp(b *testing.B)     { benchExperiment(b, "ablation-misscmp") }
func BenchmarkAblationReplacement(b *testing.B) { benchExperiment(b, "ablation-replacement") }
func BenchmarkAblationAssoc(b *testing.B)       { benchExperiment(b, "ablation-assoc") }
func BenchmarkAblationPrefetchCmp(b *testing.B) { benchExperiment(b, "ablation-prefetchcmp") }
func BenchmarkAblationDepth(b *testing.B)       { benchExperiment(b, "ablation-depth") }
func BenchmarkAblationWritePolicy(b *testing.B) { benchExperiment(b, "ablation-writepolicy") }
func BenchmarkAblationMultiprog(b *testing.B)   { benchExperiment(b, "ablation-multiprog") }
func BenchmarkAblationInclusion(b *testing.B)   { benchExperiment(b, "ablation-inclusion") }
func BenchmarkAblationLatency(b *testing.B)     { benchExperiment(b, "ablation-latency") }
func BenchmarkAblationL2Stream(b *testing.B)    { benchExperiment(b, "ablation-l2stream") }
func BenchmarkAblationBandwidth(b *testing.B)   { benchExperiment(b, "ablation-bandwidth") }
func BenchmarkAblationWriteBuffer(b *testing.B) { benchExperiment(b, "ablation-writebuffer") }

// --- micro-benchmarks of the simulation substrate ---

// BenchmarkTraceGeneration measures raw workload generation speed.
func BenchmarkTraceGeneration(b *testing.B) {
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			var accesses uint64
			for i := 0; i < b.N; i++ {
				tr := workload.GenerateTrace(workload.MustByName(name), benchScale)
				accesses += uint64(tr.Len())
			}
			b.ReportMetric(float64(accesses)/1e6/b.Elapsed().Seconds(), "MAcc/s")
		})
	}
}

// BenchmarkBaselineReplay measures the plain direct-mapped simulation loop.
func BenchmarkBaselineReplay(b *testing.B) {
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		l1 := cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 1})
		tr.Each(func(a memtrace.Access) {
			l1.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		})
		total += uint64(tr.Len())
	}
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
}

// BenchmarkVictimCacheReplay measures the victim-cache front-end.
func BenchmarkVictimCacheReplay(b *testing.B) {
	tr := workload.GenerateTrace(workload.MustByName("met"), benchScale)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		fe := core.NewVictimCache(cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 1}),
			4, nil, core.DefaultTiming())
		tr.Each(func(a memtrace.Access) {
			if a.Kind.IsData() {
				fe.Access(uint64(a.Addr), a.Kind == memtrace.Store)
			}
		})
		total += tr.DataRefs()
	}
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
}

// BenchmarkStreamBufferReplay measures the 4-way stream-buffer front-end.
func BenchmarkStreamBufferReplay(b *testing.B) {
	tr := workload.GenerateTrace(workload.MustByName("liver"), benchScale)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		fe := core.NewStreamBuffer(cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 1}),
			core.StreamConfig{Ways: 4, Depth: 4}, nil, core.DefaultTiming())
		tr.Each(func(a memtrace.Access) {
			if a.Kind.IsData() {
				fe.Access(uint64(a.Addr), a.Kind == memtrace.Store)
			}
		})
		total += tr.DataRefs()
	}
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
}

// BenchmarkFullSystemReplay measures the complete two-level improved
// system end to end through the public API.
func BenchmarkFullSystemReplay(b *testing.B) {
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		sys, err := sim.NewSystem(sim.ImprovedSystem())
		if err != nil {
			b.Fatal(err)
		}
		tr.Each(func(a memtrace.Access) {
			switch a.Kind {
			case memtrace.Ifetch:
				sys.Ifetch(uint64(a.Addr))
			case memtrace.Load:
				sys.Load(uint64(a.Addr))
			case memtrace.Store:
				sys.Store(uint64(a.Addr))
			}
		})
		total += uint64(tr.Len())
	}
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
}

// --- streaming vs materialized replay ---

// streamScale sizes the streaming comparison: at scale 4 ccom is ≈5M
// accesses, so the materialized trace (8 bytes per record plus growth
// copies) dominates the heap, while the streaming path replays the same
// workload in O(1) memory. Run with -benchmem to see the gap.
const streamScale = 4

// BenchmarkStreamedRunBenchmark measures the streaming replay path: the
// generator emits directly into the memory system, no trace is built.
func BenchmarkStreamedRunBenchmark(b *testing.B) {
	var total uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunBenchmark("ccom", streamScale, sim.BaselineSystem())
		if err != nil {
			b.Fatal(err)
		}
		total += res.I.Accesses + res.D.Accesses
	}
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
}

// BenchmarkMaterializedRunBenchmark measures the pre-streaming shape of
// the same replay: generate the whole trace, then walk it.
func BenchmarkMaterializedRunBenchmark(b *testing.B) {
	var total uint64
	for i := 0; i < b.N; i++ {
		tr := workload.GenerateTrace(workload.MustByName("ccom"), streamScale)
		sys, err := sim.NewSystem(sim.BaselineSystem())
		if err != nil {
			b.Fatal(err)
		}
		tr.Each(func(a memtrace.Access) {
			switch a.Kind {
			case memtrace.Ifetch:
				sys.Ifetch(uint64(a.Addr))
			case memtrace.Load:
				sys.Load(uint64(a.Addr))
			case memtrace.Store:
				sys.Store(uint64(a.Addr))
			}
		})
		total += uint64(tr.Len())
	}
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
}

// TestStreamingReplayAllocReduction pins the point of the streaming
// engine: replaying a benchmark at scale 4 must allocate at least 10×
// less than materializing its trace first.
func TestStreamingReplayAllocReduction(t *testing.T) {
	measure := func(fn func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	var streamedRes sim.Results
	streamed := measure(func() {
		var err error
		streamedRes, err = sim.RunBenchmark("ccom", streamScale, sim.BaselineSystem())
		if err != nil {
			t.Fatal(err)
		}
	})

	var traceLen int
	materialized := measure(func() {
		tr := workload.GenerateTrace(workload.MustByName("ccom"), streamScale)
		sys, err := sim.NewSystem(sim.BaselineSystem())
		if err != nil {
			t.Fatal(err)
		}
		tr.Each(func(a memtrace.Access) {
			switch a.Kind {
			case memtrace.Ifetch:
				sys.Ifetch(uint64(a.Addr))
			case memtrace.Load:
				sys.Load(uint64(a.Addr))
			case memtrace.Store:
				sys.Store(uint64(a.Addr))
			}
		})
		traceLen = tr.Len()
	})

	if got := streamedRes.I.Accesses + streamedRes.D.Accesses; got != uint64(traceLen) {
		t.Fatalf("paths replayed different work: streamed %d accesses, materialized %d", got, traceLen)
	}
	t.Logf("allocated: streamed %d KB, materialized %d KB (%d accesses)",
		streamed/1024, materialized/1024, traceLen)
	if materialized < 10*streamed {
		t.Errorf("streaming saved less than 10×: streamed %d B, materialized %d B",
			streamed, materialized)
	}
}
