package jouppi

import (
	"io"
	"sync"
	"testing"

	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/workload"
	"jouppi/sim"
)

// TestTelemetryConcurrentScrape pins the concurrency contract of the
// sharded, delta-published counters: several replays feeding one shared
// registry while a scraper hammers WritePrometheus and Snapshot must (a)
// be race-clean — this test earns its keep under `go test -race` — and
// (b) lose nothing: once the replays finish, every counter must equal
// exactly N times its sequential single-replay value.
func TestTelemetryConcurrentScrape(t *testing.T) {
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)

	replay := func(reg *telemetry.Registry) {
		sys, err := sim.NewSystem(sim.ImprovedSystem())
		if err != nil {
			t.Error(err)
			return
		}
		sys.AttachTelemetry(reg)
		tr.Each(func(a memtrace.Access) {
			switch a.Kind {
			case memtrace.Ifetch:
				sys.Ifetch(uint64(a.Addr))
			case memtrace.Load:
				sys.Load(uint64(a.Addr))
			case memtrace.Store:
				sys.Store(uint64(a.Addr))
			}
		})
		sys.Results() // flushes any pending telemetry deltas
	}

	// Sequential ground truth: one replay into a private registry.
	seqReg := telemetry.NewRegistry()
	replay(seqReg)
	seq := seqReg.Snapshot()
	if seq["sim_l1i_accesses_total"] == 0 {
		t.Fatalf("sequential replay registered nothing: %v", seq)
	}

	const replays = 4
	reg := telemetry.NewRegistry()

	// The scraper loops until the replays are done. Intermediate
	// snapshots may lag (deltas are buffered up to a flush interval) but
	// must never fault or race with the writers.
	stop := make(chan struct{})
	scrapes := 0
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus during replay: %v", err)
				return
			}
			reg.Snapshot()
			scrapes++
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < replays; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replay(reg)
		}()
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()

	if scrapes == 0 {
		t.Error("scraper goroutine never completed a scrape")
	}
	got := reg.Snapshot()
	if len(got) != len(seq) {
		t.Errorf("concurrent registry has %d metrics, sequential has %d", len(got), len(seq))
	}
	for name, want := range seq {
		if got[name] != want*replays {
			t.Errorf("%s = %v after %d concurrent replays, want %v (%d × %v)",
				name, got[name], replays, want*replays, replays, want)
		}
	}
}
