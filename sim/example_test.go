package sim_test

import (
	"fmt"
	"log"

	"jouppi/sim"
)

// Compare the paper's baseline system against its improved system on the
// alternating-conflict pattern from §3.1.
func Example() {
	base, err := sim.NewSystem(sim.BaselineSystem())
	if err != nil {
		log.Fatal(err)
	}
	improved, err := sim.NewSystem(sim.ImprovedSystem())
	if err != nil {
		log.Fatal(err)
	}

	// Two data buffers whose addresses collide in the 4KB direct-mapped
	// data cache, accessed alternately — the string-comparison scenario.
	for i := 0; i < 1000; i++ {
		for _, sys := range []*sim.System{base, improved} {
			sys.Ifetch(0x100000)
			sys.Load(0x10000040)
			sys.Load(0x10001040) // +4KB: same cache set
		}
	}

	fmt.Printf("baseline D misses: %d\n", base.Results().D.FullMisses)
	fmt.Printf("improved D misses: %d\n", improved.Results().D.FullMisses)
	// Output:
	// baseline D misses: 2000
	// improved D misses: 2
}

// Run one of the paper's benchmarks through a custom configuration.
func ExampleRunBenchmark() {
	cfg := sim.Config{
		D: sim.Augmentation{VictimCacheEntries: 4},
	}
	res, err := sim.RunBenchmark("met", 0.05, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("met victim-cache hits > 0: %v\n", res.D.VictimHits > 0)
	fmt.Printf("met D miss rate below baseline 0.04: %v\n", res.D.MissRate < 0.04)
	// Output:
	// met victim-cache hits > 0: true
	// met D miss rate below baseline 0.04: true
}

// Enumerate the reproducible paper exhibits.
func ExampleExperiments() {
	for _, e := range sim.Experiments()[:3] {
		fmt.Println(e.ID)
	}
	// Output:
	// table1-1
	// table2-1
	// table2-2
}

// Stream a workload's raw references into custom code — here, counting
// how many distinct 4KB pages the compiler model touches.
func ExampleVisitBenchmark() {
	pages := map[uint64]bool{}
	err := sim.VisitBenchmark("met", 0.02, func(kind sim.AccessKind, addr uint64) {
		if kind != sim.Ifetch {
			pages[addr>>12] = true
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("met touches %d data pages at this scale\n", len(pages))
	// Output:
	// met touches 6 data pages at this scale
}
