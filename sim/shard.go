package sim

import (
	"context"
	"fmt"

	"jouppi/internal/introspect"
	"jouppi/internal/memtrace"
	"jouppi/internal/shardreplay"
	"jouppi/internal/telemetry"
	"jouppi/internal/trace"
	"jouppi/internal/workload"
)

// ShardInfo reports how a sharded replay actually ran: the requested
// and effective shard counts, and — when the configuration forced the
// sequential fallback — the reason. Results are bit-identical either
// way; the info only tells the caller which cores did the work.
type ShardInfo struct {
	Requested int
	Shards    int
	// Fallback is the human-readable reason the replay ran sequentially
	// ("" when it sharded, or when one shard was requested). Victim and
	// miss caches, stream buffers, random replacement and geometries
	// with no common set-index bits cannot shard — see the fallback
	// matrix in DESIGN.md §13.
	Fallback string
}

// Sharded reports whether the replay ran on more than one shard.
func (i ShardInfo) Sharded() bool { return i.Shards > 1 }

func toShardInfo(d shardreplay.Decision) ShardInfo {
	return ShardInfo{Requested: d.Requested, Shards: d.Shards, Fallback: d.Fallback}
}

// ShardPlan analyses cfg without building a system and reports how a
// request for the given shard count would run.
func ShardPlan(cfg Config, shards int) (ShardInfo, error) {
	hc, err := cfg.toHierarchy()
	if err != nil {
		return ShardInfo{}, err
	}
	return toShardInfo(shardreplay.PlanHierarchy(hc, shards)), nil
}

// ShardedSystem is a simulated memory system replayed across shard
// goroutines: addresses are partitioned by a bit-field inside every
// cache's set index, so each shard owns a disjoint slice of the sets
// and the merged counters are bit-identical to a sequential replay.
// Configurations with globally-coupled structures run sequentially
// instead (Info reports why).
type ShardedSystem struct {
	h            *shardreplay.Hierarchy
	instructions uint64
	records      uint64
}

// NewShardedSystem builds a system from cfg that replays on up to the
// given number of shards.
func NewShardedSystem(cfg Config, shards int) (*ShardedSystem, error) {
	hc, err := cfg.toHierarchy()
	if err != nil {
		return nil, err
	}
	h, err := shardreplay.NewHierarchy(hc, shards)
	if err != nil {
		return nil, err
	}
	return &ShardedSystem{h: h}, nil
}

// Info reports the effective shard count and any fallback reason.
func (s *ShardedSystem) Info() ShardInfo { return toShardInfo(s.h.Decision()) }

// AttachTelemetry attaches every shard (and the routing engine) to reg;
// the shards share one name-idempotent counter set and publish deltas
// under the usual delta-publication discipline, so the registry
// converges to exactly the sequential totals. A nil registry detaches.
// Attach before the replay starts.
func (s *ShardedSystem) AttachTelemetry(reg *telemetry.Registry) { s.h.AttachTelemetry(reg) }

// AttachIntrospection installs one introspection probe set per shard
// and returns them (index = shard; one entry on the fallback path).
// Each shard needs its own probes because the hierarchy's observer taps
// write single-owner state from the shard's goroutine. Heatmaps merge
// exactly across shards with introspect.MergeHeat — every L1 set
// belongs to one shard — while phase windows and sampled miss events
// cover only that shard's sub-stream of the trace. Attachment changes
// no simulated number, sharded or not. Attach before the replay starts.
func (s *ShardedSystem) AttachIntrospection(o Introspection) []*introspect.SystemProbe {
	systems := s.h.Systems()
	probes := make([]*introspect.SystemProbe, len(systems))
	for i, sys := range systems {
		probes[i] = introspect.Attach(sys, o.toOptions())
	}
	return probes
}

// ReplaySource pulls src dry through the sharded system, accumulating
// the instruction count for Results. It returns ctx's error if the
// replay is cancelled mid-stream.
func (s *ShardedSystem) ReplaySource(ctx context.Context, src memtrace.Source) error {
	counting := memtrace.NewCountingSource(src)
	err := s.h.Replay(ctx, counting)
	s.instructions += counting.Instructions()
	s.records += counting.Total()
	return err
}

// Results merges the per-shard counters and returns the run's results.
func (s *ShardedSystem) Results() Results {
	return toResults(s.h.Results(s.instructions))
}

// ReplaySharded generates the named workload once and replays it
// through a system built from cfg on up to the given number of shards.
// The results are bit-identical to RunBenchmark's — sharding is pure
// parallelism, pinned by the differential test suite — and the returned
// ShardInfo says whether the configuration actually sharded or fell
// back to a sequential replay.
func ReplaySharded(name string, scale float64, shards int, cfg Config) (Results, ShardInfo, error) {
	return ReplayShardedContext(context.Background(), name, scale, shards, nil, cfg)
}

// ReplayShardedContext is ReplaySharded with cooperative cancellation
// and optional telemetry: the replay stops early with ctx's error once
// the context is done, and a non-nil registry receives the per-shard
// system counters plus the routing engine's metrics
// (shardreplay_chunks_total, shardreplay_records_total,
// shardreplay_shards, shardreplay_depth, shardreplay_shard_lag_*).
func ReplayShardedContext(ctx context.Context, name string, scale float64, shards int,
	reg *telemetry.Registry, cfg Config) (Results, ShardInfo, error) {
	if err := checkScale(scale); err != nil {
		return Results{}, ShardInfo{}, err
	}
	b, err := benchmark(name)
	if err != nil {
		return Results{}, ShardInfo{}, err
	}
	sys, err := NewShardedSystem(cfg, shards)
	if err != nil {
		return Results{}, ShardInfo{}, err
	}
	info := sys.Info()
	if reg != nil {
		sys.AttachTelemetry(reg)
	}
	// The whole sharded pass is one "replay" span; each shard goroutine
	// opens a child "shard" span. Granularity stays per replay, never
	// per access.
	ctx, rsp := trace.Start(ctx, "replay",
		trace.String("benchmark", name), trace.Int("shards", info.Shards))
	defer rsp.End()
	src := workload.NewSource(b, scale)
	defer src.Close()
	if err := sys.ReplaySource(ctx, src); err != nil {
		return Results{}, info, err
	}
	rsp.SetAttr("records", fmt.Sprint(sys.records))
	return sys.Results(), info, nil
}
