package sim

import (
	"context"
	"testing"

	"jouppi/internal/trace"
)

// TestTracedReplayBitIdentical pins the zero-interference contract of
// the tracing layer: attaching a span context to a replay changes no
// simulated number. Every Results field must be bit-identical between a
// detached replay and the same replay under a live root span.
func TestTracedReplayBitIdentical(t *testing.T) {
	cfgs := []Config{BaselineSystem(), ImprovedSystem(), BaselineSystem(), ImprovedSystem()}
	for _, name := range Benchmarks() {
		detached, err := ReplayMany(name, 0.05, cfgs)
		if err != nil {
			t.Fatalf("%s detached: %v", name, err)
		}

		tr := trace.New(trace.Options{})
		root := tr.Root("job", "equiv-"+name, nil)
		ctx := trace.ContextWith(context.Background(), root)
		attached, err := ReplayManyContext(ctx, name, 0.05, nil, cfgs)
		root.End()
		if err != nil {
			t.Fatalf("%s attached: %v", name, err)
		}

		for i := range cfgs {
			if attached[i] != detached[i] {
				t.Errorf("%s config %d: traced %+v\n  != detached %+v",
					name, i, attached[i], detached[i])
			}
		}

		// The replay produced a real span tree: one replay span plus one
		// concurrent consumer span per configuration (under -race this is
		// the fan-out span-emission safety check).
		td, ok := tr.TraceByID("equiv-" + name)
		if !ok {
			t.Fatalf("%s: no trace retained", name)
		}
		rsp, ok := td.Span("replay")
		if !ok {
			t.Fatalf("%s: no replay span", name)
		}
		if rsp.Attr("records") == "" || rsp.Attr("benchmark") != name {
			t.Fatalf("%s: replay attrs = %v", name, rsp.Attrs)
		}
		var consumers int
		for _, s := range td.Spans {
			if s.Name == "consumer" {
				consumers++
				if s.Parent != rsp.ID {
					t.Fatalf("%s: consumer parent = %q, want replay %q", name, s.Parent, rsp.ID)
				}
			}
		}
		if consumers != len(cfgs) {
			t.Fatalf("%s: consumer spans = %d, want %d", name, consumers, len(cfgs))
		}
	}
}
