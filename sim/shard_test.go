package sim

import (
	"context"
	"strings"
	"testing"

	"jouppi/internal/introspect"
	"jouppi/internal/telemetry"
	"jouppi/internal/workload"
)

func TestShardPlanDecisions(t *testing.T) {
	info, err := ShardPlan(BaselineSystem(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Sharded() || info.Shards != 4 || info.Requested != 4 || info.Fallback != "" {
		t.Fatalf("baseline plan = %+v, want 4 clean shards", info)
	}

	info, err = ShardPlan(BaselineSystem(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Sharded() || info.Shards != 1 || info.Fallback != "" {
		t.Fatalf("one-shard plan = %+v, want sequential without fallback", info)
	}

	coupled := BaselineSystem()
	coupled.D.VictimCacheEntries = 4
	info, err = ShardPlan(coupled, 4)
	if err != nil {
		t.Fatal(err)
	}
	if info.Sharded() || info.Shards != 1 || info.Fallback == "" {
		t.Fatalf("victim plan = %+v, want fallback to 1 shard with a reason", info)
	}
	if !strings.Contains(info.Fallback, "victim") {
		t.Errorf("fallback reason %q does not name the victim cache", info.Fallback)
	}

	bad := BaselineSystem()
	bad.D.MissCacheEntries, bad.D.VictimCacheEntries = 2, 2
	if _, err := ShardPlan(bad, 4); err == nil {
		t.Error("invalid augmentation accepted")
	}
}

// TestReplayShardedMatchesRunBenchmark is the facade half of the
// bit-identity pin: the public sharded entry point must reproduce
// RunBenchmark exactly, on both the sharded and the fallback route.
func TestReplayShardedMatchesRunBenchmark(t *testing.T) {
	const scale = 0.02
	for _, tc := range []struct {
		name    string
		cfg     Config
		sharded bool
	}{
		{"baseline", BaselineSystem(), true},
		{"improved", ImprovedSystem(), false}, // victim + stream buffers force the fallback
	} {
		want, err := RunBenchmark("ccom", scale, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, info, err := ReplaySharded("ccom", scale, 4, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if info.Sharded() != tc.sharded {
			t.Errorf("%s: sharded = %v (info %+v), want %v", tc.name, info.Sharded(), info, tc.sharded)
		}
		if got != want {
			t.Errorf("%s: sharded results diverge\n got %+v\nwant %+v", tc.name, got, want)
		}
	}
}

// TestShardedIntrospectionHeatMerges pins the per-shard probe story:
// every L1 set belongs to one shard, so MergeHeat over the shard probes
// reproduces the sequential heatmap exactly, and the replay's numbers
// are untouched by the attached probes.
func TestShardedIntrospectionHeatMerges(t *testing.T) {
	const scale = 0.02
	opts := Introspection{Heatmap: true, Window: -1}
	ctx := context.Background()

	want, seqProbe, err := RunBenchmarkIntrospected(ctx, "ccom", scale, BaselineSystem(), opts)
	if err != nil {
		t.Fatal(err)
	}

	sys, err := NewShardedSystem(BaselineSystem(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Info().Sharded() {
		t.Fatalf("baseline did not shard: %+v", sys.Info())
	}
	probes := sys.AttachIntrospection(opts)
	if len(probes) != 4 {
		t.Fatalf("got %d probe sets, want one per shard", len(probes))
	}
	if err := replayShardedBenchmark(ctx, sys, "ccom", scale); err != nil {
		t.Fatal(err)
	}
	if got := sys.Results(); got != want {
		t.Errorf("introspected sharded results diverge\n got %+v\nwant %+v", got, want)
	}

	for _, side := range []struct {
		name string
		seq  []introspect.SetCounts
		pick func(*introspect.SystemProbe) []introspect.SetCounts
	}{
		{"I", seqProbe.I.Heat(), func(sp *introspect.SystemProbe) []introspect.SetCounts { return sp.I.Heat() }},
		{"D", seqProbe.D.Heat(), func(sp *introspect.SystemProbe) []introspect.SetCounts { return sp.D.Heat() }},
	} {
		parts := make([][]introspect.SetCounts, len(probes))
		for i, sp := range probes {
			parts[i] = side.pick(sp)
		}
		merged := introspect.MergeHeat(parts...)
		if len(merged) != len(side.seq) {
			t.Fatalf("%s heat length %d, want %d", side.name, len(merged), len(side.seq))
		}
		for i := range merged {
			if merged[i] != side.seq[i] {
				t.Errorf("%s set %d: merged %+v, sequential %+v", side.name, i, merged[i], side.seq[i])
			}
		}
	}
}

// replayShardedBenchmark feeds the named workload through an
// already-built sharded system (test helper; the production path is
// ReplayShardedContext, which builds its own system).
func replayShardedBenchmark(ctx context.Context, sys *ShardedSystem, name string, scale float64) error {
	b, err := benchmark(name)
	if err != nil {
		return err
	}
	src := workload.NewSource(b, scale)
	defer src.Close()
	return sys.ReplaySource(ctx, src)
}

func TestReplayShardedTelemetryAndCancellation(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, _, err := ReplayShardedContext(context.Background(), "ccom", 0.02, 4, reg, BaselineSystem()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["shardreplay_records_total"] == 0 {
		t.Error("engine telemetry not published")
	}
	if snap["sim_l1i_accesses_total"] == 0 {
		t.Error("per-shard system telemetry not published")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ReplayShardedContext(ctx, "ccom", 0.02, 4, nil, BaselineSystem()); err == nil {
		t.Error("cancelled sharded replay succeeded")
	}
}

func TestReplayShardedErrors(t *testing.T) {
	if _, _, err := ReplaySharded("nonesuch", 0.02, 4, BaselineSystem()); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, _, err := ReplaySharded("ccom", 0, 4, BaselineSystem()); err == nil {
		t.Error("zero scale accepted")
	}
	bad := BaselineSystem()
	bad.L1I.LineSize = 5
	if _, _, err := ReplaySharded("ccom", 0.02, 4, bad); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewShardedSystem(bad, 4); err == nil {
		t.Error("NewShardedSystem accepted invalid config")
	}
}
