package sim

import (
	"context"
	"fmt"

	"jouppi/internal/fanout"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/trace"
	"jouppi/internal/workload"
)

// ReplayMany generates the named workload once and replays that single
// trace pass through a system built from each configuration, returning
// one Results per configuration in order. The numbers are bit-identical
// to running RunBenchmark once per configuration — the trace production
// cost is simply paid once instead of len(cfgs) times, which is where
// per-config sweeps spend most of their wall-clock.
func ReplayMany(name string, scale float64, cfgs []Config) ([]Results, error) {
	return ReplayManyContext(context.Background(), name, scale, nil, cfgs)
}

// ReplayManyContext is ReplayMany with cooperative cancellation and
// optional telemetry: the replay stops early with ctx's error once the
// context is done, and a non-nil registry receives the fan-out engine's
// broadcast metrics (fanout_chunks_total, fanout_records_total,
// fanout_consumers, fanout_broadcast_depth, fanout_consumer_lag_*).
func ReplayManyContext(ctx context.Context, name string, scale float64,
	reg *telemetry.Registry, cfgs []Config) ([]Results, error) {
	return replayMany(ctx, name, scale, reg, cfgs, nil)
}

// replayMany is the shared fan-out replay body. attach, when non-nil, is
// called once per freshly built consumer system before the replay starts
// (the introspection hook); it must not touch the access stream.
func replayMany(ctx context.Context, name string, scale float64,
	reg *telemetry.Registry, cfgs []Config, attach func(i int, sys *System)) ([]Results, error) {
	if err := checkScale(scale); err != nil {
		return nil, err
	}
	b, err := benchmark(name)
	if err != nil {
		return nil, err
	}
	systems := make([]*System, len(cfgs))
	consumers := make([]fanout.Consumer, len(cfgs))
	for i, cfg := range cfgs {
		sys, err := NewSystem(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: config %d: %w", i, err)
		}
		if attach != nil {
			attach(i, sys)
		}
		systems[i] = sys
		consumers[i] = fanout.Sink(sys.sys)
	}

	// The whole fan-out pass is one "replay" span: trace decode/production
	// and broadcast are a single stage of a job's wall-clock, and the
	// record count lands as an attribute at close. Span granularity is
	// per replay, never per access, so tracing stays off the hot path.
	ctx, rsp := trace.Start(ctx, "replay",
		trace.String("benchmark", name), trace.Int("configs", len(cfgs)))
	defer rsp.End()

	// Instructions are counted once on the producer side; every consumer
	// sees the same stream, so they all share the count.
	src := workload.NewSource(b, scale)
	defer src.Close()
	counting := memtrace.NewCountingSource(src)
	eng := fanout.New(fanout.Config{})
	eng.AttachTelemetry(reg)
	if err := eng.Replay(ctx, counting, consumers...); err != nil {
		return nil, err
	}
	out := make([]Results, len(systems))
	for i, sys := range systems {
		sys.instructions = counting.Instructions()
		out[i] = sys.Results()
	}
	rsp.SetAttr("records", fmt.Sprint(counting.Total()))
	return out, nil
}
