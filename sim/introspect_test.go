package sim

import (
	"context"
	"testing"
)

// fullIntrospection enables every probe view (classification included,
// since equivalence must hold even for the most intrusive options).
var fullIntrospection = Introspection{
	Window:    1 << 12,
	Heatmap:   true,
	MissEvery: 8,
	MissCap:   256,
	Classify:  true,
}

// TestIntrospectionEquivalence pins the tentpole guarantee at the public
// API: an introspected replay returns bit-identical Results.
func TestIntrospectionEquivalence(t *testing.T) {
	for name, cfg := range map[string]Config{
		"baseline": BaselineSystem(),
		"improved": ImprovedSystem(),
	} {
		t.Run(name, func(t *testing.T) {
			plain, err := RunBenchmark("ccom", 0.05, cfg)
			if err != nil {
				t.Fatal(err)
			}
			probed, probe, err := RunBenchmarkIntrospected(context.Background(), "ccom", 0.05, cfg, fullIntrospection)
			if err != nil {
				t.Fatal(err)
			}
			if plain != probed {
				t.Errorf("introspection changed simulated numbers:\nplain  %+v\nprobed %+v", plain, probed)
			}
			if probe.I.Accesses()+probe.D.Accesses() != plain.I.Accesses+plain.D.Accesses {
				t.Error("probe did not see every access")
			}
			if len(probe.D.Windows()) == 0 || probe.D.Heat() == nil || len(probe.D.Events()) == 0 {
				t.Error("probe views empty after an introspected replay")
			}
		})
	}
}

// TestIntrospectionFanoutBitIdentical pins fan-out safety: a fan-out
// replay with per-consumer probes produces the same Results as
// sequential replays, and each consumer's probe matches the probe of a
// standalone introspected replay of the same configuration.
func TestIntrospectionFanoutBitIdentical(t *testing.T) {
	cfgs := []Config{
		BaselineSystem(),
		{D: Augmentation{VictimCacheEntries: 4}},
	}
	o := Introspection{Window: 1 << 12, Heatmap: true, MissEvery: 8}
	results, probes, err := ReplayManyIntrospected(context.Background(), "ccom", 0.05, nil, cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cfgs) || len(probes) != len(cfgs) {
		t.Fatalf("got %d results / %d probes for %d configs", len(results), len(probes), len(cfgs))
	}
	for i, cfg := range cfgs {
		seq, seqProbe, err := RunBenchmarkIntrospected(context.Background(), "ccom", 0.05, cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != seq {
			t.Errorf("config %d: fan-out results differ from sequential:\nfan-out    %+v\nsequential %+v", i, results[i], seq)
		}
		fw, sw := probes[i].D.Windows(), seqProbe.D.Windows()
		if len(fw) != len(sw) {
			t.Fatalf("config %d: %d fan-out windows vs %d sequential", i, len(fw), len(sw))
		}
		for w := range fw {
			if fw[w] != sw[w] {
				t.Errorf("config %d window %d differs under fan-out:\n%+v\n%+v", i, w, fw[w], sw[w])
			}
		}
		fh, sh := probes[i].D.Heat(), seqProbe.D.Heat()
		for s := range fh {
			if fh[s] != sh[s] {
				t.Errorf("config %d set %d heat differs under fan-out: %+v vs %+v", i, s, fh[s], sh[s])
				break
			}
		}
	}
	// The victim cache must actually change what the probes see (the
	// two consumers are independent).
	if probes[0].D.Windows()[0] == probes[1].D.Windows()[0] {
		t.Error("baseline and victim-cache probes identical — consumers not independent")
	}
}

func TestIntrospectionErrors(t *testing.T) {
	if _, _, err := RunBenchmarkIntrospected(context.Background(), "ccom", 0, Config{}, Introspection{}); err == nil {
		t.Error("zero scale must fail")
	}
	if _, _, err := RunBenchmarkIntrospected(context.Background(), "nope", 1, Config{}, Introspection{}); err == nil {
		t.Error("unknown benchmark must fail")
	}
	bad := Config{I: Augmentation{MissCacheEntries: 2, VictimCacheEntries: 2}}
	if _, _, err := RunBenchmarkIntrospected(context.Background(), "ccom", 1, bad, Introspection{}); err == nil {
		t.Error("invalid config must fail")
	}
	if _, _, err := ReplayManyIntrospected(context.Background(), "ccom", -1, nil, []Config{{}}, Introspection{}); err == nil {
		t.Error("negative scale must fail in fan-out")
	}
}

func TestIntrospectionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RunBenchmarkIntrospected(ctx, "ccom", 0.05, Config{}, Introspection{}); err == nil {
		t.Error("cancelled context must abort the introspected replay")
	}
}
