package sim

import (
	"os"
	"path/filepath"
	"testing"
)

func TestVisitBenchmark(t *testing.T) {
	var ifetches, loads, stores uint64
	err := VisitBenchmark("met", 0.02, func(kind AccessKind, addr uint64) {
		switch kind {
		case Ifetch:
			ifetches++
		case Load:
			loads++
		case Store:
			stores++
		}
		if addr == 0 {
			t.Error("zero address visited")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ifetches == 0 || loads == 0 || stores == 0 {
		t.Errorf("counts: ifetch %d, load %d, store %d", ifetches, loads, stores)
	}
	if err := VisitBenchmark("nope", 1, func(AccessKind, uint64) {}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAccessKindString(t *testing.T) {
	if Ifetch.String() != "ifetch" || Load.String() != "load" || Store.String() != "store" {
		t.Error("kind names wrong")
	}
	if AccessKind(9).String() != "AccessKind(9)" {
		t.Error("unknown kind name wrong")
	}
}

func TestWriteAndReplayTraceFile(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"jtr", "din"} {
		path := filepath.Join(dir, "met."+format)
		n, err := WriteTraceFile("met", 0.02, path, format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if n == 0 {
			t.Fatalf("%s: zero records", format)
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Fatalf("%s: file missing or empty", format)
		}
		res, err := ReplayTraceFile(path, format, BaselineSystem())
		if err != nil {
			t.Fatalf("%s replay: %v", format, err)
		}
		if res.Instructions == 0 || res.D.Accesses == 0 {
			t.Errorf("%s replay results empty: %+v", format, res)
		}
		// Replaying the file must match running the benchmark directly.
		direct, err := RunBenchmark("met", 0.02, BaselineSystem())
		if err != nil {
			t.Fatal(err)
		}
		if res.D.FullMisses != direct.D.FullMisses {
			t.Errorf("%s replay misses %d != direct %d",
				format, res.D.FullMisses, direct.D.FullMisses)
		}
	}
}

func TestTraceFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteTraceFile("nope", 1, filepath.Join(dir, "x"), "jtr"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := WriteTraceFile("met", 0.01, filepath.Join(dir, "x"), "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := WriteTraceFile("met", 0.01, filepath.Join(dir, "nodir", "x"), "jtr"); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := ReplayTraceFile(filepath.Join(dir, "missing"), "jtr", Config{}); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(dir, "t.jtr")
	if _, err := WriteTraceFile("met", 0.01, path, "jtr"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTraceFile(path, "xml", Config{}); err == nil {
		t.Error("bad replay format accepted")
	}
	if _, err := ReplayTraceFile(path, "din", Config{}); err == nil {
		t.Error("jtr-as-din accepted")
	}
	if _, err := ReplayTraceFile(path, "jtr", Config{L1I: CacheGeometry{Size: 7}}); err == nil {
		t.Error("bad config accepted")
	}
}
