package sim

import (
	"context"
	"testing"
	"time"

	"jouppi/internal/telemetry"
)

// replayManyConfigs is a paper-flavoured sweep: baseline, miss and victim
// caches at a few entry counts, stream buffers, and the improved system.
func replayManyConfigs() []Config {
	return []Config{
		BaselineSystem(),
		{D: Augmentation{MissCacheEntries: 2}},
		{D: Augmentation{MissCacheEntries: 4}},
		{D: Augmentation{VictimCacheEntries: 2}},
		{D: Augmentation{VictimCacheEntries: 4}},
		{I: Augmentation{Stream: &StreamOptions{Ways: 1, Depth: 4}}},
		{D: Augmentation{Stream: &StreamOptions{Ways: 4, Depth: 4}}},
		ImprovedSystem(),
	}
}

// TestReplayManyMatchesRunBenchmark is the facade-level bit-identity pin:
// one fan-out pass across eight configurations must reproduce exactly the
// Results of eight independent sequential RunBenchmark replays.
func TestReplayManyMatchesRunBenchmark(t *testing.T) {
	const scale = 0.02
	cfgs := replayManyConfigs()
	got, err := ReplayMany("ccom", scale, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(got), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := RunBenchmark("ccom", scale, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("config %d: fan-out results differ from sequential:\n got %+v\nwant %+v",
				i, got[i], want)
		}
	}
}

// TestReplayManyErrors covers argument validation.
func TestReplayManyErrors(t *testing.T) {
	if _, err := ReplayMany("ccom", 0, nil); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := ReplayMany("no-such-benchmark", 0.1, nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
	bad := Config{D: Augmentation{MissCacheEntries: 2, VictimCacheEntries: 2}}
	if _, err := ReplayMany("ccom", 0.1, []Config{BaselineSystem(), bad}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestReplayManyTelemetryAndCancellation covers the registry hook and the
// context path in one small run.
func TestReplayManyTelemetryAndCancellation(t *testing.T) {
	reg := telemetry.NewRegistry()
	res, err := ReplayManyContext(context.Background(), "ccom", 0.02, reg,
		[]Config{BaselineSystem(), ImprovedSystem()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	snap := reg.Snapshot()
	if snap["fanout_records_total"] == 0 || snap["fanout_consumers"] != 2 {
		t.Errorf("engine telemetry missing: %v", snap)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := ReplayManyContext(ctx, "ccom", 4, nil,
		[]Config{BaselineSystem(), ImprovedSystem()}); err == nil {
		t.Error("expired context did not abort the replay")
	}
}
