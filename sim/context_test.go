package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The cancellable replay path (goroutine-fed source) must produce results
// identical to the direct push path RunBenchmark uses.
func TestRunBenchmarkContextMatchesRunBenchmark(t *testing.T) {
	cfg := BaselineSystem()
	plain, err := RunBenchmark("linpack", 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// context.Background has a nil Done channel, so force the pull-based
	// path with a cancellable (but never cancelled) context.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := RunBenchmarkContext(ctx, "linpack", 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain != withCtx {
		t.Errorf("results differ:\n push: %+v\n pull: %+v", plain, withCtx)
	}
}

func TestRunBenchmarkContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunBenchmarkContext(ctx, "linpack", 0.5, BaselineSystem())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunExperimentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunExperimentContext(ctx, "table2-1", 0.05)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunBenchmarkContextTimeoutStopsLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	// A scale this large would run for a long time uninterrupted; the
	// deadline must cut it short promptly.
	_, err := RunBenchmarkContext(ctx, "linpack", 500, BaselineSystem())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline took %v to take effect", elapsed)
	}
}
