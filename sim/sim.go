// Package sim is the public entry point of the library: a trace-driven
// simulator for the memory-system techniques of Jouppi's ISCA 1990 paper
// "Improving Direct-Mapped Cache Performance by the Addition of a Small
// Fully-Associative Cache and Prefetch Buffers" — miss caches, victim
// caches, and single-/multi-way stream buffers on top of a two-level
// cache hierarchy — together with the paper's six reconstructed benchmark
// workloads and every evaluation experiment.
//
// Quick use:
//
//	res, err := sim.RunBenchmark("liver", 0.25, sim.ImprovedSystem())
//	fmt.Printf("data miss rate %.3f, %.1f%% of potential performance\n",
//		res.D.MissRate, res.PercentOfPotential)
//
// The zero Config is the paper's baseline system (4KB direct-mapped split
// I/D caches with 16B lines, 1MB L2 with 128B lines, 24/320 instruction-
// time penalties) with no augmentation.
package sim

import (
	"context"
	"fmt"
	"math"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/experiments"
	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/workload"
)

// CacheGeometry describes one cache array. Zero values take the paper's
// baseline for that level.
type CacheGeometry struct {
	// Size in bytes; power of two.
	Size int
	// LineSize in bytes; power of two.
	LineSize int
	// Assoc is the set associativity; 1 (direct-mapped) when zero.
	Assoc int
}

// StreamOptions configures a set of stream buffers.
type StreamOptions struct {
	// Ways is the number of parallel buffers (1 = the paper's single
	// sequential buffer; 4 = its multi-way buffer).
	Ways int
	// Depth is entries per buffer; 4 when zero.
	Depth int
	// RunLimit caps lines prefetched per allocation; 0 = unlimited.
	RunLimit int
	// Quasi enables tag comparators on every entry (extension).
	Quasi bool
	// DetectStride enables non-unit-stride detection (extension).
	DetectStride bool
}

// Augmentation attaches the paper's helper structures to one first-level
// cache. At most one of MissCacheEntries / VictimCacheEntries may be set;
// a victim cache may be combined with stream buffers (the paper's §5
// improved data cache), a miss cache may not.
type Augmentation struct {
	MissCacheEntries   int
	VictimCacheEntries int
	Stream             *StreamOptions
}

// Config describes a complete simulated system.
type Config struct {
	L1I, L1D, L2 CacheGeometry
	I, D         Augmentation
	// L2VictimEntries places a victim cache behind the L2 (extension).
	L2VictimEntries int
	// L2Stream places stream buffers between the L2 and main memory
	// (extension; §5's second-level future work).
	L2Stream *StreamOptions
	// L1MissPenalty and L2MissPenalty are in instruction times;
	// 24 and 320 when zero.
	L1MissPenalty int
	L2MissPenalty int
}

// BaselineSystem returns the paper's unaugmented baseline configuration.
func BaselineSystem() Config { return Config{} }

// ImprovedSystem returns the paper's §5 improved system: a single stream
// buffer on the instruction cache and a 4-entry victim cache plus 4-way
// stream buffer on the data cache.
func ImprovedSystem() Config {
	return Config{
		I: Augmentation{Stream: &StreamOptions{Ways: 1, Depth: 4}},
		D: Augmentation{VictimCacheEntries: 4, Stream: &StreamOptions{Ways: 4, Depth: 4}},
	}
}

func (g CacheGeometry) toCache(name string, def cache.Config) cache.Config {
	out := def
	out.Name = name
	if g.Size != 0 {
		out.Size = g.Size
	}
	if g.LineSize != 0 {
		out.LineSize = g.LineSize
	}
	if g.Assoc != 0 {
		out.Assoc = g.Assoc
	}
	return out
}

func (a Augmentation) toAugment() (hierarchy.Augment, error) {
	if a.MissCacheEntries < 0 || a.VictimCacheEntries < 0 {
		return hierarchy.Augment{}, fmt.Errorf("sim: negative augmentation entry count")
	}
	if a.MissCacheEntries > 0 && a.VictimCacheEntries > 0 {
		return hierarchy.Augment{}, fmt.Errorf("sim: a cache cannot have both a miss cache and a victim cache")
	}
	var stream core.StreamConfig
	if a.Stream != nil {
		stream = core.StreamConfig{
			Ways:         a.Stream.Ways,
			Depth:        a.Stream.Depth,
			RunLimit:     a.Stream.RunLimit,
			Quasi:        a.Stream.Quasi,
			DetectStride: a.Stream.DetectStride,
		}
		if stream.Ways == 0 {
			stream.Ways = 1
		}
	}
	switch {
	case a.MissCacheEntries > 0 && a.Stream != nil:
		return hierarchy.Augment{}, fmt.Errorf("sim: miss caches cannot be combined with stream buffers (use a victim cache)")
	case a.MissCacheEntries > 0:
		return hierarchy.Augment{Kind: hierarchy.MissCache, Entries: a.MissCacheEntries}, nil
	case a.VictimCacheEntries > 0 && a.Stream != nil:
		return hierarchy.Augment{Kind: hierarchy.VictimAndStream,
			Entries: a.VictimCacheEntries, Stream: stream}, nil
	case a.VictimCacheEntries > 0:
		return hierarchy.Augment{Kind: hierarchy.VictimCache, Entries: a.VictimCacheEntries}, nil
	case a.Stream != nil:
		return hierarchy.Augment{Kind: hierarchy.StreamBuffers, Stream: stream}, nil
	default:
		return hierarchy.Augment{Kind: hierarchy.None}, nil
	}
}

func (c Config) toHierarchy() (hierarchy.Config, error) {
	def := hierarchy.DefaultConfig()
	out := hierarchy.Config{
		L1I:             c.L1I.toCache("L1I", def.L1I),
		L1D:             c.L1D.toCache("L1D", def.L1D),
		L2:              c.L2.toCache("L2", def.L2),
		L2VictimEntries: c.L2VictimEntries,
		Timing:          def.Timing,
		Perf:            def.Perf,
	}
	if c.L2Stream != nil {
		l2aug, err := (Augmentation{
			VictimCacheEntries: c.L2VictimEntries,
			Stream:             c.L2Stream,
		}).toAugment()
		if err != nil {
			return out, fmt.Errorf("second-level cache: %w", err)
		}
		out.L2Augment = l2aug
		out.L2VictimEntries = 0
	}
	if c.L1MissPenalty != 0 {
		out.Timing.MissPenalty = c.L1MissPenalty
		out.Timing.FillLatency = c.L1MissPenalty
		out.Perf.L1MissPenalty = c.L1MissPenalty
	}
	if c.L2MissPenalty != 0 {
		out.Perf.L2MissPenalty = c.L2MissPenalty
	}
	var err error
	if out.IAugment, err = c.I.toAugment(); err != nil {
		return out, fmt.Errorf("instruction cache: %w", err)
	}
	if out.DAugment, err = c.D.toAugment(); err != nil {
		return out, fmt.Errorf("data cache: %w", err)
	}
	return out, nil
}

// SideResults summarizes one first-level cache's behaviour.
type SideResults struct {
	Accesses uint64
	// Misses are L1 misses before augmentation credit; FullMisses are
	// the misses that still required a next-level fetch.
	Misses     uint64
	FullMisses uint64
	// AuxHits are L1 misses satisfied by an augmentation, broken down
	// into victim-cache, miss-cache, and stream-buffer hits.
	AuxHits       uint64
	VictimHits    uint64
	MissCacheHits uint64
	StreamHits    uint64
	// MissRate is FullMisses/Accesses.
	MissRate float64
}

// Results summarizes a simulation run.
type Results struct {
	Instructions uint64
	I, D         SideResults
	// L2DemandAccesses/Misses cover demand traffic only; prefetch
	// traffic is reported separately.
	L2DemandAccesses   uint64
	L2DemandMisses     uint64
	L2PrefetchAccesses uint64
	// TotalTime is execution time in instruction times under the
	// paper's performance model; PercentOfPotential is
	// Instructions/TotalTime×100.
	TotalTime          uint64
	PercentOfPotential float64
}

func sideResults(s core.Stats) SideResults {
	return SideResults{
		Accesses:      s.Accesses,
		Misses:        s.L1Misses,
		FullMisses:    s.FullMisses(),
		AuxHits:       s.AuxHits,
		VictimHits:    s.VictimHits,
		MissCacheHits: s.MissCacheHits,
		StreamHits:    s.StreamHits,
		MissRate:      s.MissRate(),
	}
}

func toResults(r hierarchy.Results) Results {
	return Results{
		Instructions:       r.Instructions,
		I:                  sideResults(r.I),
		D:                  sideResults(r.D),
		L2DemandAccesses:   r.L2I.DemandAccesses + r.L2D.DemandAccesses,
		L2DemandMisses:     r.L2I.DemandMisses + r.L2D.DemandMisses,
		L2PrefetchAccesses: r.L2I.PrefetchAccesses + r.L2D.PrefetchAccesses,
		TotalTime:          r.Breakdown.Total(),
		PercentOfPotential: r.Breakdown.PercentOfPotential(),
	}
}

// Speedup returns how much faster b is than a (ratio of total times).
func Speedup(a, b Results) float64 {
	if b.TotalTime == 0 {
		return 0
	}
	return float64(a.TotalTime) / float64(b.TotalTime)
}

// System is a runnable simulated memory system fed one access at a time.
type System struct {
	sys          *hierarchy.System
	instructions uint64
}

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) (*System, error) {
	hc, err := cfg.toHierarchy()
	if err != nil {
		return nil, err
	}
	sys, err := hierarchy.New(hc)
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// Ifetch simulates an instruction fetch at addr.
func (s *System) Ifetch(addr uint64) {
	s.instructions++
	s.sys.Access(memtrace.Access{Addr: memtrace.Addr(addr), Kind: memtrace.Ifetch})
}

// Load simulates a data load at addr.
func (s *System) Load(addr uint64) {
	s.sys.Access(memtrace.Access{Addr: memtrace.Addr(addr), Kind: memtrace.Load})
}

// Store simulates a data store at addr.
func (s *System) Store(addr uint64) {
	s.sys.Access(memtrace.Access{Addr: memtrace.Addr(addr), Kind: memtrace.Store})
}

// Results returns the accumulated counters and performance model output.
func (s *System) Results() Results {
	return toResults(s.sys.Results(s.instructions))
}

// AttachTelemetry registers the system's live counters (per-side
// reference outcomes, second-level and memory traffic, per-array cache
// activity) in reg and starts feeding them; see the Observability section
// of the repository docs for the metric names. A nil registry detaches.
// Attach before the replay starts; counters are atomic, so a concurrent
// /metrics scrape during the run is safe.
func (s *System) AttachTelemetry(reg *telemetry.Registry) { s.sys.AttachTelemetry(reg) }

// Benchmarks returns the names of the paper's six workloads, in paper
// order, plus the auxiliary workloads ("strided", "ptrchase").
func Benchmarks() []string {
	return append(workload.Names(), "strided", "ptrchase")
}

// BenchmarkDescription returns the Table 2-1 program-type string.
func BenchmarkDescription(name string) (string, error) {
	b, err := benchmark(name)
	if err != nil {
		return "", err
	}
	return b.Description(), nil
}

// checkScale rejects non-positive and non-finite workload scales.
func checkScale(scale float64) error {
	if !(scale > 0) || math.IsInf(scale, 0) {
		return fmt.Errorf("sim: scale must be a positive finite number, got %v", scale)
	}
	return nil
}

func benchmark(name string) (workload.Benchmark, error) {
	switch name {
	case "strided":
		return workload.Strided(), nil
	case "ptrchase":
		return workload.PointerChase(), nil
	}
	if b, ok := workload.ByName(name); ok {
		return b, nil
	}
	return nil, fmt.Errorf("sim: unknown benchmark %q (have %v)", name, Benchmarks())
}

// RunBenchmark generates the named workload at the given scale and replays
// it through a system built from cfg. Scale 1.0 is roughly 1–4M
// instructions depending on the benchmark; it must be positive and finite.
//
// The workload streams directly into the simulated hierarchy — the trace
// is never materialized — so replay memory is O(1) in trace length and
// arbitrarily large scales are feasible.
func RunBenchmark(name string, scale float64, cfg Config) (Results, error) {
	return RunBenchmarkContext(context.Background(), name, scale, cfg)
}

// RunBenchmarkContext is RunBenchmark with cooperative cancellation: the
// replay polls ctx and stops early with its error once the context is
// done, so long runs at large scales stay interruptible and can be
// time-bounded with context.WithTimeout. The access sequence is
// bit-identical to RunBenchmark's.
func RunBenchmarkContext(ctx context.Context, name string, scale float64, cfg Config) (Results, error) {
	if err := checkScale(scale); err != nil {
		return Results{}, err
	}
	b, err := benchmark(name)
	if err != nil {
		return Results{}, err
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return Results{}, err
	}
	if err := sys.replayBenchmark(ctx, b, scale); err != nil {
		return Results{}, err
	}
	return sys.Results(), nil
}

// replayBenchmark streams b at scale through the system, booking the
// instruction count. It is the shared body of RunBenchmarkContext and
// RunBenchmarkIntrospected, so both replay bit-identically.
func (s *System) replayBenchmark(ctx context.Context, b workload.Benchmark, scale float64) error {
	if ctx.Done() == nil {
		// The context can never be cancelled (Background/TODO): generate
		// straight into the hierarchy with no goroutine hand-off.
		var counts memtrace.Counts
		b.Generate(scale, memtrace.SinkFunc(func(a memtrace.Access) {
			counts.Observe(a)
			s.sys.Access(a)
		}))
		s.instructions = counts.Instructions()
		return nil
	}
	// A cancellable context needs a pull-based replay loop that can stop
	// between accesses; the workload source generates in a goroutine that
	// Close releases if the replay is cut short.
	src := workload.NewSource(b, scale)
	defer src.Close()
	counting := memtrace.NewCountingSource(src)
	if err := memtrace.EachContext(ctx, counting, s.sys.Access); err != nil {
		return err
	}
	s.instructions = counting.Instructions()
	return nil
}

// ExperimentInfo names one reproducible paper exhibit.
type ExperimentInfo struct {
	ID    string
	Title string
}

// Experiments lists every table/figure reproduction and ablation study.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// RunExperiment runs one experiment by ID at the given workload scale and
// returns its rendered text output.
func RunExperiment(id string, scale float64) (string, error) {
	return RunExperimentContext(context.Background(), id, scale)
}

// RunExperimentContext is RunExperiment with cooperative cancellation and
// panic isolation: a cancelled context or a crashing experiment returns
// an error instead of hanging the caller or killing the process.
func RunExperimentContext(ctx context.Context, id string, scale float64) (string, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("sim: unknown experiment %q (have %v)", id, experiments.IDs())
	}
	results, err := experiments.RunAll(ctx, experiments.Config{Scale: scale},
		experiments.RunOptions{Experiments: []experiments.Experiment{e}})
	if err != nil {
		return "", err
	}
	res := results[0]
	if res.Failed() {
		return "", fmt.Errorf("sim: experiment %s failed: %s", id, res.Err)
	}
	return res.Title + "\n\n" + res.Text, nil
}
