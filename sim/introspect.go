package sim

import (
	"context"

	"jouppi/internal/introspect"
	"jouppi/internal/telemetry"
)

// Introspection configures the optional time- and space-resolved probe a
// replay can carry: phase windows (miss rate and hit attribution per N
// accesses), per-set heatmaps, and a sampled miss-event trace. The probe
// is a pure reader — the introspection equivalence tests pin that an
// introspected replay produces bit-identical simulated numbers — and
// per-access cost is a handful of plain integer increments (the 3C
// shadow classifier, when enabled, is the one exception).
type Introspection struct {
	// Window is the phase-window width in accesses
	// (introspect.DefaultWindow when zero; negative disables windows).
	Window int
	// Heatmap enables per-L1-set access/miss/eviction counting.
	Heatmap bool
	// MissEvery samples every Nth L1 miss into a bounded event ring;
	// zero disables the trace. MissCap bounds the ring
	// (introspect.DefaultMissCap when zero).
	MissEvery int
	MissCap   int
	// Classify tags sampled miss events with their 3C class.
	Classify bool
}

func (o Introspection) toOptions() introspect.Options {
	return introspect.Options{
		Window:    o.Window,
		Heatmap:   o.Heatmap,
		MissEvery: o.MissEvery,
		MissCap:   o.MissCap,
		Classify:  o.Classify,
	}
}

// AttachIntrospection installs probes on both first-level sides of the
// system and returns them. Attach before the replay starts; one probe
// set per system (fan-out replays attach one per consumer).
func (s *System) AttachIntrospection(o Introspection) *introspect.SystemProbe {
	return introspect.Attach(s.sys, o.toOptions())
}

// RunBenchmarkIntrospected is RunBenchmarkContext plus an attached
// introspection probe. The access stream and all simulated numbers are
// bit-identical to the un-introspected replay; the returned probe holds
// the phase windows, heatmaps, and sampled miss events accumulated
// during the run.
func RunBenchmarkIntrospected(ctx context.Context, name string, scale float64,
	cfg Config, o Introspection) (Results, *introspect.SystemProbe, error) {
	if err := checkScale(scale); err != nil {
		return Results{}, nil, err
	}
	b, err := benchmark(name)
	if err != nil {
		return Results{}, nil, err
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return Results{}, nil, err
	}
	probe := sys.AttachIntrospection(o)
	if err := sys.replayBenchmark(ctx, b, scale); err != nil {
		return Results{}, nil, err
	}
	return sys.Results(), probe, nil
}

// ReplayManyIntrospected is ReplayManyContext plus one introspection
// probe set per configuration: every consumer system gets its own probe,
// so the fan-out replay stays bit-identical to per-config replays while
// each configuration's time/space behaviour is captured independently.
// The returned probes are index-aligned with cfgs and the results.
func ReplayManyIntrospected(ctx context.Context, name string, scale float64,
	reg *telemetry.Registry, cfgs []Config, o Introspection) ([]Results, []*introspect.SystemProbe, error) {
	probes := make([]*introspect.SystemProbe, len(cfgs))
	results, err := replayMany(ctx, name, scale, reg, cfgs, func(i int, sys *System) {
		probes[i] = sys.AttachIntrospection(o)
	})
	if err != nil {
		return nil, nil, err
	}
	return results, probes, nil
}
