package sim

import (
	"testing"

	"jouppi/internal/memtrace"
	"jouppi/internal/workload"
)

// The streaming replay path must be bit-identical to materializing the
// trace first and replaying it access by access: same access order, same
// counts, same derived rates, for every benchmark.
func TestStreamingMatchesMaterializedReplay(t *testing.T) {
	for _, name := range Benchmarks() {
		streamed, err := RunBenchmark(name, 0.1, ImprovedSystem())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		b, err := benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := workload.GenerateTrace(b, 0.1)
		sys, err := NewSystem(ImprovedSystem())
		if err != nil {
			t.Fatal(err)
		}
		tr.Each(func(a memtrace.Access) {
			switch a.Kind {
			case memtrace.Ifetch:
				sys.Ifetch(uint64(a.Addr))
			case memtrace.Load:
				sys.Load(uint64(a.Addr))
			case memtrace.Store:
				sys.Store(uint64(a.Addr))
			}
		})
		materialized := sys.Results()

		if streamed != materialized {
			t.Errorf("%s: streamed %+v\n  != materialized %+v", name, streamed, materialized)
		}
	}
}
