package sim

import (
	"fmt"
	"os"

	"jouppi/internal/memtrace"
)

// AccessKind identifies the type of a memory reference delivered to a
// TraceVisitor.
type AccessKind uint8

// The access kinds, matching the trace formats' labels.
const (
	Ifetch AccessKind = iota
	Load
	Store
)

// String returns the kind name.
func (k AccessKind) String() string {
	switch k {
	case Ifetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// TraceVisitor receives one memory reference at a time.
type TraceVisitor func(kind AccessKind, addr uint64)

func toKind(k memtrace.Kind) AccessKind {
	switch k {
	case memtrace.Load:
		return Load
	case memtrace.Store:
		return Store
	default:
		return Ifetch
	}
}

// VisitBenchmark generates the named workload at the given scale and
// streams every reference to visit, without materializing the trace. Use
// it to drive custom simulators or exporters off the paper's workloads.
func VisitBenchmark(name string, scale float64, visit TraceVisitor) error {
	b, err := benchmark(name)
	if err != nil {
		return err
	}
	b.Generate(scale, memtrace.SinkFunc(func(a memtrace.Access) {
		visit(toKind(a.Kind), uint64(a.Addr))
	}))
	return nil
}

// WriteTraceFile generates the named workload and writes its trace to
// path. format is "jtr" (compact binary) or "din" (dinero text). It
// returns the number of records written.
func WriteTraceFile(name string, scale float64, path, format string) (uint64, error) {
	b, err := benchmark(name)
	if err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	switch format {
	case "jtr":
		sw, err := memtrace.NewStreamWriter(f)
		if err != nil {
			return 0, err
		}
		b.Generate(scale, sw)
		if err := sw.Close(); err != nil {
			return 0, err
		}
		return sw.Count(), f.Close()
	case "din":
		dw := memtrace.NewDineroWriter(f)
		b.Generate(scale, dw)
		if err := dw.Close(); err != nil {
			return 0, err
		}
		return dw.Count(), f.Close()
	default:
		return 0, fmt.Errorf("sim: unknown trace format %q (want jtr or din)", format)
	}
}

// ReplayTraceFile reads a trace file (format "jtr" or "din") and replays
// it through a system built from cfg, returning the results. Instruction
// counts are taken from the trace's ifetch records. The file is decoded
// in buffered chunks and streamed through the system, so replay memory is
// O(1) in file size.
func ReplayTraceFile(path, format string, cfg Config) (Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return Results{}, err
	}
	defer f.Close()

	var (
		src    memtrace.Source
		srcErr func() error
	)
	switch format {
	case "jtr":
		r, err := memtrace.NewReader(f)
		if err != nil {
			return Results{}, err
		}
		src, srcErr = r, r.Err
	case "din":
		dr := memtrace.NewDineroReader(f)
		src, srcErr = dr, dr.Err
	default:
		return Results{}, fmt.Errorf("sim: unknown trace format %q (want jtr or din)", format)
	}

	sys, err := NewSystem(cfg)
	if err != nil {
		return Results{}, err
	}
	cs := memtrace.NewCountingSource(src)
	sys.sys.RunSource(cs)
	if err := srcErr(); err != nil {
		return Results{}, err
	}
	sys.instructions = cs.Instructions()
	return sys.Results(), nil
}
