package sim

import (
	"math"
	"strings"
	"testing"
)

func TestBaselineAndImprovedConfigs(t *testing.T) {
	if _, err := NewSystem(BaselineSystem()); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	if _, err := NewSystem(ImprovedSystem()); err != nil {
		t.Fatalf("improved config rejected: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{I: Augmentation{MissCacheEntries: 2, VictimCacheEntries: 2}},
		{D: Augmentation{MissCacheEntries: 2, Stream: &StreamOptions{Ways: 1}}},
		{I: Augmentation{MissCacheEntries: -1}},
		{L1I: CacheGeometry{Size: 100}}, // not a power of two
	}
	for i, cfg := range bad {
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestManualAccessPath(t *testing.T) {
	sys, err := NewSystem(BaselineSystem())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sys.Ifetch(uint64(0x100000 + i*4))
		if i%2 == 0 {
			sys.Load(uint64(0x800000 + i*8))
		} else {
			sys.Store(uint64(0x900000 + i*8))
		}
	}
	res := sys.Results()
	if res.Instructions != 100 {
		t.Errorf("instructions = %d, want 100", res.Instructions)
	}
	if res.I.Accesses != 100 || res.D.Accesses != 100 {
		t.Errorf("accesses I=%d D=%d, want 100 each", res.I.Accesses, res.D.Accesses)
	}
	if res.TotalTime < res.Instructions {
		t.Error("total time below instruction count")
	}
	if res.PercentOfPotential <= 0 || res.PercentOfPotential > 100 {
		t.Errorf("percent of potential = %v", res.PercentOfPotential)
	}
}

func TestRunBenchmarkBaselineVsImproved(t *testing.T) {
	base, err := RunBenchmark("liver", 0.05, BaselineSystem())
	if err != nil {
		t.Fatal(err)
	}
	improved, err := RunBenchmark("liver", 0.05, ImprovedSystem())
	if err != nil {
		t.Fatal(err)
	}
	if improved.D.FullMisses >= base.D.FullMisses {
		t.Errorf("improved D misses %d not below baseline %d",
			improved.D.FullMisses, base.D.FullMisses)
	}
	if Speedup(base, improved) <= 1 {
		t.Errorf("speedup = %v, want > 1", Speedup(base, improved))
	}
	if improved.D.StreamHits == 0 || improved.D.VictimHits == 0 {
		t.Error("improved system shows no augmentation hits")
	}
	if base.L2DemandAccesses == 0 {
		t.Error("no L2 traffic recorded")
	}
	if improved.L2PrefetchAccesses == 0 {
		t.Error("no prefetch traffic recorded")
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("nope", 1, BaselineSystem()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBenchmarkRejectsBadScale(t *testing.T) {
	// Zero, negative, NaN, and infinite scales previously produced an
	// empty trace and all-zero Results with no error; they must now be
	// rejected so the zeros cannot be mistaken for measurements.
	for _, scale := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := RunBenchmark("liver", scale, BaselineSystem()); err == nil {
			t.Errorf("scale %v accepted", scale)
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 8 {
		t.Fatalf("Benchmarks() = %v, want six paper benchmarks + strided + ptrchase", names)
	}
	for _, n := range names {
		desc, err := BenchmarkDescription(n)
		if err != nil || desc == "" {
			t.Errorf("BenchmarkDescription(%q) = %q, %v", n, desc, err)
		}
	}
	if _, err := BenchmarkDescription("nope"); err == nil {
		t.Error("unknown description accepted")
	}
}

func TestSpeedupZeroGuard(t *testing.T) {
	if Speedup(Results{TotalTime: 10}, Results{}) != 0 {
		t.Error("speedup against zero time should be 0")
	}
}

func TestExperimentsSurface(t *testing.T) {
	infos := Experiments()
	if len(infos) < 20 {
		t.Fatalf("Experiments() returned %d entries", len(infos))
	}
	out, err := RunExperiment("table1-1", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "WRL Titan") {
		t.Errorf("table1-1 output missing content:\n%s", out)
	}
	if _, err := RunExperiment("nope", 0.05); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCustomGeometryAndPenalties(t *testing.T) {
	cfg := Config{
		L1D:           CacheGeometry{Size: 8192, LineSize: 32},
		L2:            CacheGeometry{Size: 1 << 18, LineSize: 256},
		L1MissPenalty: 10,
		L2MissPenalty: 100,
	}
	res, err := RunBenchmark("met", 0.02, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.D.Accesses == 0 {
		t.Error("no data accesses")
	}
}

func TestStridedWorkloadWithStrideBuffers(t *testing.T) {
	plain, err := RunBenchmark("strided", 0.05, Config{
		D: Augmentation{Stream: &StreamOptions{Ways: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	stride, err := RunBenchmark("strided", 0.05, Config{
		D: Augmentation{Stream: &StreamOptions{Ways: 4, DetectStride: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stride.D.FullMisses >= plain.D.FullMisses {
		t.Errorf("stride detection did not help: %d vs %d",
			stride.D.FullMisses, plain.D.FullMisses)
	}
}

func TestL2StreamOption(t *testing.T) {
	res, err := RunBenchmark("linpack", 0.05, Config{
		L2:       CacheGeometry{Size: 64 << 10, LineSize: 128},
		L2Stream: &StreamOptions{Ways: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunBenchmark("linpack", 0.05, Config{
		L2: CacheGeometry{Size: 64 << 10, LineSize: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.L2DemandMisses >= base.L2DemandMisses {
		t.Errorf("L2 stream buffers did not reduce misses: %d vs %d",
			res.L2DemandMisses, base.L2DemandMisses)
	}
}

func TestL2StreamWithVictim(t *testing.T) {
	// Combined L2 victim cache + stream buffers through the facade.
	if _, err := NewSystem(Config{
		L2VictimEntries: 4,
		L2Stream:        &StreamOptions{Ways: 2},
	}); err != nil {
		t.Fatalf("combined L2 augmentation rejected: %v", err)
	}
}
