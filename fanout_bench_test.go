package jouppi

// The fan-out engine's headline number: decoding an on-disk trace once and
// broadcasting it to N cache configurations versus re-decoding it for every
// configuration. Text-format trace decode dominates per-configuration
// simulation cost, so the single-pass replay amortizes the expensive part
// across the whole sweep. TestFanoutDecodeOnceEquivalence pins that the
// two paths produce bit-identical results; TestWriteBenchFanoutJSON (env
// gated, wired as `make bench-json`) records the measured speedup in
// BENCH_fanout.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"jouppi/internal/core"
	"jouppi/internal/fanout"
	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/workload"
)

// fanoutBenchConfigs returns the eight-system sweep the acceptance
// criterion asks for: the paper baseline, miss and victim caches at two
// sizes, instruction and data stream buffers, and the full improved
// system.
func fanoutBenchConfigs() []hierarchy.Config {
	stream1 := core.StreamConfig{Ways: 1, Depth: 4}
	stream4 := core.StreamConfig{Ways: 4, Depth: 4}
	return []hierarchy.Config{
		{}, // paper baseline
		{DAugment: hierarchy.Augment{Kind: hierarchy.MissCache, Entries: 2}},
		{DAugment: hierarchy.Augment{Kind: hierarchy.MissCache, Entries: 4}},
		{DAugment: hierarchy.Augment{Kind: hierarchy.VictimCache, Entries: 2}},
		{DAugment: hierarchy.Augment{Kind: hierarchy.VictimCache, Entries: 4}},
		{IAugment: hierarchy.Augment{Kind: hierarchy.StreamBuffers, Stream: stream1}},
		{DAugment: hierarchy.Augment{Kind: hierarchy.StreamBuffers, Stream: stream4}},
		{
			IAugment: hierarchy.Augment{Kind: hierarchy.StreamBuffers, Stream: stream1},
			DAugment: hierarchy.Augment{Kind: hierarchy.VictimAndStream, Entries: 4, Stream: stream4},
		},
	}
}

// fanoutBenchTrace serializes the ccom workload to dinero text — the
// captured-trace-file shape the decode-once replay is built for — and
// returns the bytes plus the record count.
func fanoutBenchTrace(tb testing.TB) ([]byte, int) {
	tb.Helper()
	tr := workload.GenerateTrace(workload.MustByName("ccom"), benchScale)
	var buf bytes.Buffer
	if _, err := tr.WriteDinero(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), tr.Len()
}

// replaySequentialDinero is the per-configuration arm: each system decodes
// the trace text itself, exactly as N independent cachesim invocations
// would.
func replaySequentialDinero(tb testing.TB, din []byte, cfgs []hierarchy.Config) []hierarchy.Results {
	tb.Helper()
	out := make([]hierarchy.Results, len(cfgs))
	for i, cfg := range cfgs {
		counting := memtrace.NewCountingSource(memtrace.NewDineroReader(bytes.NewReader(din)))
		sys := hierarchy.MustNew(cfg)
		sys.RunSource(counting)
		out[i] = sys.Results(counting.Instructions())
	}
	return out
}

// replayFanoutDinero is the single-pass arm: one decode feeds every system
// through the fan-out engine.
func replayFanoutDinero(tb testing.TB, din []byte, cfgs []hierarchy.Config) []hierarchy.Results {
	tb.Helper()
	systems := make([]*hierarchy.System, len(cfgs))
	consumers := make([]fanout.Consumer, len(cfgs))
	for i, cfg := range cfgs {
		systems[i] = hierarchy.MustNew(cfg)
		consumers[i] = fanout.Sink(systems[i])
	}
	counting := memtrace.NewCountingSource(memtrace.NewDineroReader(bytes.NewReader(din)))
	if err := fanout.Replay(context.Background(), counting, consumers...); err != nil {
		tb.Fatal(err)
	}
	out := make([]hierarchy.Results, len(cfgs))
	for i, sys := range systems {
		out[i] = sys.Results(counting.Instructions())
	}
	return out
}

// TestFanoutDecodeOnceEquivalence pins the engine's core contract at the
// benchmark's own scale and configuration sweep: the single-pass replay
// must be bit-identical to decoding the trace once per configuration.
func TestFanoutDecodeOnceEquivalence(t *testing.T) {
	din, _ := fanoutBenchTrace(t)
	cfgs := fanoutBenchConfigs()
	want := replaySequentialDinero(t, din, cfgs)
	got := replayFanoutDinero(t, din, cfgs)
	for i := range cfgs {
		if got[i] != want[i] {
			t.Errorf("config %d diverged:\nfanout:     %+v\nsequential: %+v", i, got[i], want[i])
		}
	}
}

// BenchmarkFanoutReplay compares the two arms interactively; the JSON
// artifact below is the recorded measurement.
func BenchmarkFanoutReplay(b *testing.B) {
	din, records := fanoutBenchTrace(b)
	cfgs := fanoutBenchConfigs()
	arm := func(replay func(testing.TB, []byte, []hierarchy.Config) []hierarchy.Results) func(*testing.B) {
		return func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				replay(b, din, cfgs)
				total += uint64(records) * uint64(len(cfgs))
			}
			b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MAcc/s")
		}
	}
	b.Run("sequential", arm(replaySequentialDinero))
	b.Run("fanout", arm(replayFanoutDinero))
}

// TestWriteBenchFanoutJSON measures both arms with testing.Benchmark and
// writes the comparison — including the decode-once speedup — to the file
// named by the BENCH_FANOUT_JSON environment variable (wired up as
// `make bench-json`). Without the variable the test is skipped.
func TestWriteBenchFanoutJSON(t *testing.T) {
	out := os.Getenv("BENCH_FANOUT_JSON")
	if out == "" {
		t.Skip("set BENCH_FANOUT_JSON=<path> to write the fan-out benchmark comparison")
	}
	din, records := fanoutBenchTrace(t)
	cfgs := fanoutBenchConfigs()
	measure := func(replay func(testing.TB, []byte, []hierarchy.Config) []hierarchy.Results) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b, din, cfgs)
			}
		})
	}
	seq := measure(replaySequentialDinero)
	fan := measure(replayFanoutDinero)

	type entry struct {
		NsPerOp     int64 `json:"ns_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
		N           int   `json:"n"`
	}
	mk := func(r testing.BenchmarkResult) entry {
		return entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
	}
	report := struct {
		Benchmark  string  `json:"benchmark"`
		Workload   string  `json:"workload"`
		Scale      float64 `json:"scale"`
		Format     string  `json:"trace_format"`
		Records    int     `json:"trace_records"`
		Configs    int     `json:"configurations"`
		Sequential entry   `json:"decode_per_config"`
		Fanout     entry   `json:"decode_once_fanout"`
		Speedup    float64 `json:"speedup"`
	}{
		Benchmark:  "FanoutReplay",
		Workload:   "ccom",
		Scale:      benchScale,
		Format:     "din",
		Records:    records,
		Configs:    len(cfgs),
		Sequential: mk(seq),
		Fanout:     mk(fan),
	}
	if report.Fanout.NsPerOp > 0 {
		report.Speedup = float64(report.Sequential.NsPerOp) / float64(report.Fanout.NsPerOp)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: sequential %d ns/op, fanout %d ns/op, speedup %.2fx over %d configs",
		out, report.Sequential.NsPerOp, report.Fanout.NsPerOp, report.Speedup, report.Configs)
}
