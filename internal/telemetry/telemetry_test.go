package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	if got := reg.Snapshot(); len(got) != 0 {
		t.Errorf("nil registry snapshot = %v, want empty", got)
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("sim_hits_total", "hits")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("counter = %d, want 10", c.Value())
	}
	if reg.Counter("sim_hits_total", "") != c {
		t.Error("re-registration must return the same counter")
	}

	g := reg.Gauge("queue_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}

	h := reg.Histogram("dur_seconds", "durations", []float64{1, 0.1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 55.55; got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "the b counter").Add(2)
	reg.Gauge("a_depth", "the a gauge").Set(-5)
	h := reg.Histogram("c_seconds", "the c histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(9)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_depth the a gauge",
		"# TYPE a_depth gauge",
		"a_depth -5",
		"# TYPE b_total counter",
		"b_total 2",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="0.1"} 1`,
		`c_seconds_bucket{le="1"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 9.55",
		"c_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Names must come out sorted for deterministic scrapes.
	if strings.Index(out, "a_depth") > strings.Index(out, "b_total") {
		t.Error("metrics not sorted by name")
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "").Add(3)
	reg.Gauge("depth", "").Set(2)
	reg.Histogram("d_seconds", "", []float64{1}).Observe(0.5)
	snap := reg.Snapshot()
	want := map[string]float64{
		"hits_total": 3, "depth": 2, "d_seconds_count": 1, "d_seconds_sum": 0.5,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"bad-label":      "bad_label",
		"address-range":  "address_range",
		"ok_name:x9":     "ok_name:x9",
		"9leading":       "_9leading",
		"":               "_",
		"with space/sep": "with_space_sep",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name must panic")
		}
	}()
	NewRegistry().Counter("bad-name", "")
}

// TestConcurrentUpdates exercises the atomic paths under the race
// detector: many writers against a concurrent scraper.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	for i := 0; i < 10; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		reg.Snapshot()
	}
	wg.Wait()
	if c.Value() != 4000 || g.Value() != 4000 || h.Count() != 4000 {
		t.Errorf("lost updates: counter %d gauge %d histogram %d, want 4000 each",
			c.Value(), g.Value(), h.Count())
	}
	if got, want := h.Sum(), 1000.0; got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "quantile test", []float64{0.1, 1, 10})

	// Empty histogram: no estimate.
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil Quantile = %v, want 0", got)
	}

	for _, v := range []float64{0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	// Cumulative buckets: ≤0.1 → 2, ≤1 → 3, ≤10 → 4. Rank-based
	// estimates return the upper bound of the rank's bucket.
	if got := h.Quantile(0.5); got != 0.1 {
		t.Fatalf("p50 = %v, want 0.1", got)
	}
	if got := h.Quantile(0.75); got != 1.0 {
		t.Fatalf("p75 = %v, want 1", got)
	}
	if got := h.Quantile(0.99); got != 10.0 {
		t.Fatalf("p99 = %v, want 10", got)
	}

	// An observation past every bound lands in +Inf; the estimate clamps
	// to the largest finite bound rather than returning infinity.
	h.Observe(100)
	if got := h.Quantile(1); got != 10.0 {
		t.Fatalf("p100 with +Inf tail = %v, want 10", got)
	}
}
