package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry and the standard
// Go diagnostics:
//
//	/metrics          Prometheus text exposition of reg
//	/vars             JSON snapshot of reg (counters, gauges, histogram
//	                  _count/_sum), sorted-key encoding
//	/debug/vars       the process-wide expvar handler (memstats, cmdline)
//	/debug/pprof/...  net/http/pprof profiles for attaching to a live run
//
// The handler is safe to scrape while a simulation mutates the registry.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:9090"; port 0 picks a free port) and
// serves Handler(reg) on it in a background goroutine. The caller owns
// the returned Server and must Close it.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, including the resolved port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
