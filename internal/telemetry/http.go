package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry and the standard
// Go diagnostics:
//
//	/metrics          Prometheus text exposition of reg
//	/vars             JSON snapshot of reg (counters, gauges, histogram
//	                  _count/_sum), sorted-key encoding
//	/debug/vars       the process-wide expvar handler (memstats, cmdline)
//	/debug/pprof/...  net/http/pprof profiles for attaching to a live run
//
// The handler is safe to scrape while a simulation mutates the registry.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Default timeouts NewHTTPServer applies. ReadHeaderTimeout is the
// slowloris bound — a client that trickles header bytes is cut off well
// before it can pin a connection; ReadTimeout additionally bounds slow
// bodies (uploaded traces stream fast or not at all), and IdleTimeout
// reclaims keep-alive connections.
const (
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultReadTimeout       = 5 * time.Minute
	DefaultIdleTimeout       = 2 * time.Minute
)

// NewHTTPServer wraps h in an http.Server with the hardened timeout
// defaults above. Every listener this repo binds goes through it (or
// sets the same three fields explicitly), so no endpoint accepts
// unbounded slow-header connections.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}

// Server is a running metrics endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:9090"; port 0 picks a free port) and
// serves Handler(reg) on it in a background goroutine. The caller owns
// the returned Server and must Close it.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: NewHTTPServer(Handler(reg))}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, including the resolved port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
