package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestProgressLine(t *testing.T) {
	reg := NewRegistry()
	acc := reg.Counter("sim_replay_accesses_total", "")
	done := reg.Gauge("experiments_done", "")
	total := reg.Gauge("experiments_total", "")
	total.Set(10)

	var sb strings.Builder
	p := NewProgress(&sb, acc, done, total)
	start := p.start

	// After 2s: 3 of 10 done, 4M accesses → 2 MAcc/s, ETA ~4.7s. The
	// windowed and cumulative rates agree on the first draw.
	done.Set(3)
	acc.Add(4_000_000)
	line := p.line(start.Add(2 * time.Second))
	for _, want := range []string{"3/10 experiments", "ETA", "2.0 MAcc/s (avg 2.0)", "4000000 accesses", "elapsed 2s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}

	// Rate is windowed: another second with no new accesses reads 0 —
	// but the cumulative average still reports the whole run (4M over
	// 3s ≈ 1.3), so a stalled phase is visible without erasing history.
	line = p.line(start.Add(3 * time.Second))
	if !strings.Contains(line, "0.0 MAcc/s (avg 1.3)") {
		t.Errorf("line must show zero windowed rate and the cumulative average after an idle second: %q", line)
	}
}

func TestProgressWithoutTotals(t *testing.T) {
	acc := NewRegistry().Counter("a_total", "")
	p := NewProgress(&strings.Builder{}, acc, nil, nil)
	line := p.line(p.start.Add(time.Second))
	if strings.Contains(line, "experiments") {
		t.Errorf("line shows experiments without gauges: %q", line)
	}
	if !strings.Contains(line, "accesses") {
		t.Errorf("line missing access count: %q", line)
	}
}

func TestProgressStartStopClearsLine(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, nil, nil, nil)
	p.Start(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	out := sb.String()
	if !strings.Contains(out, "\r") {
		t.Error("progress never redrew")
	}
	if !strings.HasSuffix(out, "\r") {
		t.Errorf("Stop must clear the line and park the cursor at column 0: %q", out[len(out)-10:])
	}
	// Stopping twice must not panic or re-clear.
	p.Stop()
}
