package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders a live single-line status to a terminal-ish writer
// (normally stderr), driven by the same counters the /metrics endpoint
// serves: replay throughput in accesses/sec (instantaneous over the last
// redraw window, with the cumulative average alongside), experiments
// done/total, and
// an ETA extrapolated from the completion rate. The line is redrawn in
// place with a carriage return; Stop clears it so final output is clean.
type Progress struct {
	w        io.Writer
	accesses *Counter // cumulative simulated accesses; optional
	done     *Gauge   // experiments completed; optional
	total    *Gauge   // experiments planned; optional

	mu        sync.Mutex
	start     time.Time
	lastAcc   uint64
	lastTime  time.Time
	lastWidth int
	stop      chan struct{}
	stopped   sync.WaitGroup
}

// NewProgress builds a progress line over the given sources. Any source
// may be nil; the line shows only what it has.
func NewProgress(w io.Writer, accesses *Counter, done, total *Gauge) *Progress {
	now := time.Now()
	return &Progress{w: w, accesses: accesses, done: done, total: total,
		start: now, lastTime: now}
}

// Start begins redrawing every interval until Stop.
func (p *Progress) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	p.stop = make(chan struct{})
	p.stopped.Add(1)
	go func() {
		defer p.stopped.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case now := <-t.C:
				p.draw(now)
			}
		}
	}()
}

// Stop halts redrawing and clears the line.
func (p *Progress) Stop() {
	if p.stop != nil {
		close(p.stop)
		p.stopped.Wait()
		p.stop = nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastWidth > 0 {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.lastWidth))
		p.lastWidth = 0
	}
}

func (p *Progress) draw(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	line := p.line(now)
	pad := p.lastWidth - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(p.w, "\r%s%s", line, strings.Repeat(" ", pad))
	p.lastWidth = len(line)
}

// line composes the status text for the given instant. Factored out of
// draw (and given an explicit clock) so tests can pin time.
func (p *Progress) line(now time.Time) string {
	var parts []string
	if p.done != nil || p.total != nil {
		done, total := p.done.Value(), p.total.Value()
		parts = append(parts, fmt.Sprintf("%d/%d experiments", done, total))
		if elapsed := now.Sub(p.start); done > 0 && total > done && elapsed > 0 {
			eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
			parts = append(parts, "ETA "+eta.Round(time.Second).String())
		}
	}
	if p.accesses != nil {
		acc := p.accesses.Value()
		dt := now.Sub(p.lastTime).Seconds()
		if dt > 0 {
			// The leading figure is the instantaneous (windowed) rate —
			// what the replay is doing right now — with the cumulative
			// average alongside, so a slow phase late in a long replay
			// reads as a dip instead of being flattened into the mean.
			rate := float64(acc-p.lastAcc) / dt
			part := fmt.Sprintf("%.1f MAcc/s", rate/1e6)
			if elapsed := now.Sub(p.start).Seconds(); elapsed > 0 {
				part += fmt.Sprintf(" (avg %.1f)", float64(acc)/elapsed/1e6)
			}
			parts = append(parts, part)
		}
		parts = append(parts, fmt.Sprintf("%d accesses", acc))
		p.lastAcc, p.lastTime = acc, now
	}
	parts = append(parts, "elapsed "+now.Sub(p.start).Round(time.Second).String())
	return "  " + strings.Join(parts, " · ")
}
