package telemetry

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	ts := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	in := []Event{
		{Event: "run-start", Total: 2},
		{Event: "experiment-start", ID: "fig3-5", Title: "Figure 3-5", Seq: 1, Total: 2},
		{Event: "experiment-finish", ID: "fig3-5", Seq: 1, ElapsedS: 1.25},
		{Event: "experiment-finish", ID: "fig4-1", Seq: 2, Err: "panic: boom", Cached: false},
		{Event: "experiment-panic", ID: "fig4-1", Err: "panic: boom"},
		{Event: "checkpoint-saved", ID: "fig4-1"},
		{Event: "run-finish", ElapsedS: 3.5, Err: "context canceled"},
	}
	var sb strings.Builder
	j := NewJournal(&sb)
	j.now = func() time.Time { return ts }
	for _, e := range in {
		j.Emit(e)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	// One JSON object per line, decodable mid-stream.
	if got := strings.Count(strings.TrimSpace(sb.String()), "\n") + 1; got != len(in) {
		t.Fatalf("journal has %d lines, want %d", got, len(in))
	}
	out, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip produced %d events, want %d", len(out), len(in))
	}
	for i, e := range out {
		want := in[i]
		want.Time = ts
		if !reflect.DeepEqual(e, want) {
			t.Errorf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, e, want)
		}
	}
}

func TestJournalNilIsNoOp(t *testing.T) {
	var j *Journal
	j.Emit(Event{Event: "run-start"}) // must not panic
	if j.Err() != nil {
		t.Error("nil journal must report nil error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(failWriter{})
	j.Emit(Event{Event: "run-start"})
	if j.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	j.Emit(Event{Event: "run-finish"}) // must not panic after error
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"event\":\"run-start\"}\nnot json\n"))
	if err == nil {
		t.Fatal("garbage line must fail decoding")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error must name the offending line: %v", err)
	}
}

func TestJournalMissEventRoundTrip(t *testing.T) {
	ts := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	in := []Event{
		{Event: "miss-dump", Side: "data", Total: 2, Dropped: 7},
		{Event: "miss-event", Side: "data", Access: 1024, Addr: "0x2a40",
			Set: 41, Tag: "0x15", Served: "victim", Class: "conflict"},
		{Event: "miss-event", Side: "data", Access: 2048, Addr: "0x0",
			Set: 0, Tag: "0x0", Served: "memory"},
	}
	var sb strings.Builder
	j := NewJournal(&sb)
	j.now = func() time.Time { return ts }
	for _, e := range in {
		j.Emit(e)
	}
	out, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip produced %d events, want %d", len(out), len(in))
	}
	for i, e := range out {
		want := in[i]
		want.Time = ts
		if !reflect.DeepEqual(e, want) {
			t.Errorf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, e, want)
		}
	}
}

// TestReadEventsLongLine pins that ReadEvents has no line-length cap. A
// large miss-dump journal can carry lines far past bufio.Scanner's 64KiB
// default token limit; an implementation built on a default Scanner
// fails this test with bufio.ErrTooLong.
func TestReadEventsLongLine(t *testing.T) {
	long := strings.Repeat("x", 2<<20) // ~2MiB, well past bufio.MaxScanTokenSize
	var sb strings.Builder
	j := NewJournal(&sb)
	j.now = func() time.Time { return time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC) }
	j.Emit(Event{Event: "experiment-finish", ID: "big", Err: long})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("long journal line must decode, got: %v", err)
	}
	if len(out) != 1 || out[0].Err != long {
		t.Fatal("long journal line did not round-trip intact")
	}
}

// ReadEvents must also tolerate a final line with no trailing newline —
// e.g. a journal truncated by a crash mid-flush but after the payload.
func TestReadEventsNoTrailingNewline(t *testing.T) {
	out, err := ReadEvents(strings.NewReader(`{"event":"run-start","total":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Total != 3 {
		t.Fatalf("unterminated final line not decoded: %+v", out)
	}
}

func TestJournalStampsMonotonicTime(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	before := time.Now()
	j.Emit(Event{Event: "run-start"})
	j.Emit(Event{Event: "run-finish"})
	after := time.Now()

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for i, e := range events {
		if e.Time.IsZero() {
			t.Fatalf("event %d not stamped", i)
		}
		if e.Time.Before(before.Add(-time.Second)) || e.Time.After(after.Add(time.Second)) {
			t.Fatalf("event %d stamp %v outside [%v, %v]", i, e.Time, before, after)
		}
	}
	// Stamps from one journal are totally ordered: the monotonic clock
	// cannot run backwards even if the wall clock steps.
	if events[1].Time.Before(events[0].Time) {
		t.Fatalf("stamps run backwards: %v then %v", events[0].Time, events[1].Time)
	}
}

func TestJournalExplicitTimePreserved(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	want := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	j.Emit(Event{Event: "span", Time: want})
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !events[0].Time.Equal(want) {
		t.Fatalf("explicit time rewritten: got %v, want %v", events[0].Time, want)
	}
}
