package telemetry

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	ts := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	in := []Event{
		{Event: "run-start", Total: 2},
		{Event: "experiment-start", ID: "fig3-5", Title: "Figure 3-5", Seq: 1, Total: 2},
		{Event: "experiment-finish", ID: "fig3-5", Seq: 1, ElapsedS: 1.25},
		{Event: "experiment-finish", ID: "fig4-1", Seq: 2, Err: "panic: boom", Cached: false},
		{Event: "experiment-panic", ID: "fig4-1", Err: "panic: boom"},
		{Event: "checkpoint-saved", ID: "fig4-1"},
		{Event: "run-finish", ElapsedS: 3.5, Err: "context canceled"},
	}
	var sb strings.Builder
	j := NewJournal(&sb)
	j.now = func() time.Time { return ts }
	for _, e := range in {
		j.Emit(e)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	// One JSON object per line, decodable mid-stream.
	if got := strings.Count(strings.TrimSpace(sb.String()), "\n") + 1; got != len(in) {
		t.Fatalf("journal has %d lines, want %d", got, len(in))
	}
	out, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip produced %d events, want %d", len(out), len(in))
	}
	for i, e := range out {
		want := in[i]
		want.Time = ts
		if e != want {
			t.Errorf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, e, want)
		}
	}
}

func TestJournalNilIsNoOp(t *testing.T) {
	var j *Journal
	j.Emit(Event{Event: "run-start"}) // must not panic
	if j.Err() != nil {
		t.Error("nil journal must report nil error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(failWriter{})
	j.Emit(Event{Event: "run-start"})
	if j.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	j.Emit(Event{Event: "run-finish"}) // must not panic after error
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"event\":\"run-start\"}\nnot json\n"))
	if err == nil {
		t.Error("garbage line must fail decoding")
	}
}
