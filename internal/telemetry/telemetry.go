// Package telemetry is the simulator's observability layer: a registry of
// named atomic counters, gauges, and fixed-bucket histograms, rendered on
// demand as Prometheus text or a JSON snapshot, plus the JSONL run
// journal and live progress line built on top of them.
//
// The design goal is a zero-overhead disabled path. Every metric type is
// nil-receiver safe — Inc/Add/Set/Observe on a nil metric are no-ops —
// and a nil *Registry hands out nil metrics, so instrumented code always
// calls through unconditionally:
//
//	var reg *telemetry.Registry // nil: telemetry disabled
//	hits := reg.Counter("sim_l1_hits_total", "L1 hits")
//	hits.Inc() // no-op, one predicted branch
//
// When a registry is live, updates are single atomic operations, safe to
// scrape concurrently from the /metrics endpoint while a replay runs.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are nil-receiver safe.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are nil-receiver safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets. Buckets are
// cumulative in the Prometheus sense: bucket i counts observations ≤
// bounds[i], with an implicit +Inf bucket at the end. All methods are
// nil-receiver safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefaultDurationBuckets covers per-experiment wall times from
// milliseconds to minutes.
func DefaultDurationBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300}
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a named collection of metrics. A nil *Registry is the
// disabled state: its lookup methods return nil metrics whose updates are
// no-ops. Registration is idempotent by name; the same name always
// returns the same metric. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// SanitizeName rewrites s into a valid metric name: every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_'
// prefix. Used to fold free-form labels (e.g. trace-degradation reasons)
// into metric names.
func SanitizeName(s string) string {
	var sb strings.Builder
	for i, r := range s {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			sb.WriteByte('_')
			sb.WriteRune(r)
			continue
		}
		if valid {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

func validName(s string) bool { return s != "" && s == SanitizeName(s) }

func (r *Registry) noteHelp(name, help string) {
	if _, ok := r.help[name]; !ok {
		r.help[name] = help
	}
}

// Counter returns the counter registered under name, creating it if
// needed. A nil registry returns a nil (no-op) counter. Invalid metric
// names panic; use SanitizeName for free-form inputs.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.noteHelp(name, help)
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.noteHelp(name, help)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed (bounds are ignored on an
// already-registered name). A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	r.noteHelp(name, help)
	return h
}

// Snapshot returns the current value of every counter and gauge, plus
// histogram _count and _sum series, keyed by metric name. Nil registries
// return an empty map.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		if help := r.help[name]; help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, help)
		}
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value())
		case r.gauges[name] != nil:
			fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value())
		default:
			h := r.hists[name]
			fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(&sb, "%s_sum %g\n", name, h.Sum())
			fmt.Fprintf(&sb, "%s_count %d\n", name, h.Count())
		}
	}
	r.mu.Unlock()

	_, err := io.WriteString(w, sb.String())
	return err
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
