// Package telemetry is the simulator's observability layer: a registry of
// named counters, gauges, and fixed-bucket histograms, rendered on demand
// as Prometheus text or a JSON snapshot, plus the JSONL run journal and
// live progress line built on top of them.
//
// The design goal is a zero-overhead disabled path and a near-zero-cost
// enabled path. Every metric type is nil-receiver safe — Inc/Add/Set/
// Observe on a nil metric are no-ops — and a nil *Registry hands out nil
// metrics, so instrumented code always calls through unconditionally:
//
//	var reg *telemetry.Registry // nil: telemetry disabled
//	hits := reg.Counter("sim_l1_hits_total", "L1 hits")
//	hits.Inc() // no-op, one predicted branch
//
// When a registry is live, a Counter is striped across cache-line-padded
// shards: Inc/Add touch one shard (picked by a cheap per-goroutine hash),
// and Value aggregates the shards lazily at read time. Concurrent writers
// therefore do not serialize on a single cache line, and a /metrics
// scrape reading Value never stalls writers. Hot loops avoid even the
// per-update shard atomic: the simulator components keep updating the
// plain single-writer stats structs they always had and publish the
// deltas of those structs into shared counters at flush boundaries
// (every few thousand accesses and at end of replay), while stream
// decoders batch through a LocalCounter — a plain accumulator owned by
// the writing goroutine, flushed at chunk boundaries. Either way a
// scrape taken mid-replay may lag the true count by at most one flush
// interval; flushes at end of replay and at results time make the final
// numbers exact.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numShards is the stripe width of counters and histogram accumulators.
// A power of two so the shard pick is a shift; 16 keeps write contention
// negligible up to well beyond the core counts the replay engines use,
// at a fixed 1 KiB per counter.
const (
	numShards = 16
	shardBits = 4
)

// pad64 is one striped accumulator slot, padded out to a cache line so
// adjacent shards never false-share.
type pad64 struct {
	v atomic.Uint64
	_ [56]byte
}

// shardIndex picks this goroutine's stripe. Goroutines have distinct
// stacks, so hashing the address of a stack variable spreads concurrent
// writers across shards at the cost of one multiply — no thread-local
// storage exists in Go, and pinning APIs are runtime-internal. The value
// is only a hash seed; the uintptr never converts back to a pointer.
func shardIndex() uint64 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return (uint64(p) * 0x9E3779B97F4A7C15) >> (64 - shardBits)
}

// Counter is a monotonically increasing metric, striped across padded
// shards (see the package comment). The zero value is ready to use; all
// methods are nil-receiver safe.
type Counter struct {
	shards [numShards]pad64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.shards[shardIndex()].v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.shards[shardIndex()].v.Add(n)
	}
}

// Value aggregates the shards and returns the current count (0 on a nil
// counter). Concurrent updates may or may not be included; updates are
// never lost or double-counted.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Local returns a LocalCounter feeding c. A nil counter yields a detached
// LocalCounter whose Flush is a no-op.
func (c *Counter) Local() LocalCounter { return LocalCounter{c: c} }

// LocalCounter is a plain, non-atomic accumulator owned by a single
// goroutine and flushed into its shared Counter in batches. It is the
// hot-path form of a counter: Inc is one ordinary register increment, so
// an instrumented replay loop pays essentially nothing per access and one
// atomic add per flush interval.
//
// The zero value is a valid detached accumulator. LocalCounter values
// must not be copied after first use (the pending delta would flush
// twice) and must not be shared between goroutines.
type LocalCounter struct {
	n uint64
	c *Counter
}

// Inc adds one to the local accumulator.
func (l *LocalCounter) Inc() { l.n++ }

// Add adds n to the local accumulator.
func (l *LocalCounter) Add(n uint64) { l.n += n }

// Flush publishes the pending delta into the shared counter and zeroes
// the accumulator. Detached LocalCounters simply drop the delta.
func (l *LocalCounter) Flush() {
	if l.n != 0 {
		l.c.Add(l.n) // nil-safe: detached locals drop the delta
		l.n = 0
	}
}

// Pending returns the delta accumulated since the last Flush.
func (l *LocalCounter) Pending() uint64 { return l.n }

// Gauge is a metric that can go up and down. Gauges sit on the slow path
// (queue depths, consumer lags, progress totals), so a single atomic slot
// suffices. The zero value is ready to use; all methods are nil-receiver
// safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histShard is one stripe of a histogram's count/sum pair, padded to a
// cache line.
type histShard struct {
	count atomic.Uint64
	sum   atomic.Uint64 // float64 bits, CAS-updated within this shard only
	_     [48]byte
}

// Histogram accumulates observations into fixed buckets. Buckets are
// cumulative in the Prometheus sense: bucket i counts observations ≤
// bounds[i], with an implicit +Inf bucket at the end. The running count
// and sum are striped like Counter shards, so the float-bits
// compare-and-swap that accumulates the sum only ever races with writers
// that hashed to the same shard — the retry loop that was unbounded under
// contention on a single slot now almost always succeeds first try. All
// methods are nil-receiver safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	shards [numShards]histShard
}

// DefaultDurationBuckets covers per-experiment wall times from
// milliseconds to minutes.
func DefaultDurationBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300}
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	s := &h.shards[shardIndex()]
	s.count.Add(1)
	for {
		old := s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.shards {
		total += h.shards[i].count.Load()
	}
	return total
}

// Quantile returns an upper-bound estimate of the q-th quantile
// (0 < q ≤ 1): the upper bound of the bucket the quantile rank falls in.
// Observations in the implicit +Inf bucket report the largest finite
// bound — a floor, the only honest answer a fixed-bucket histogram has.
// Returns 0 on a nil or empty histogram. The estimate is what the SLO
// profile trigger compares against its bound: it can only over-estimate
// within one bucket, so a trigger threshold is conservative by at most
// the bucket width.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 || math.IsNaN(q) || q <= 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return b
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of observations (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i := range h.shards {
		total += math.Float64frombits(h.shards[i].sum.Load())
	}
	return total
}

// sameBounds reports whether two sorted bound slices are identical.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// metricInfo records what a name was first registered as, so later
// registrations can be checked for silent mismatches.
type metricInfo struct {
	kind   string // "counter", "gauge", "histogram"
	help   string
	bounds []float64 // histograms only, sorted
}

// Registry is a named collection of metrics. A nil *Registry is the
// disabled state: its lookup methods return nil metrics whose updates are
// no-ops. Registration is idempotent by name; the same name always
// returns the same metric. Registering a name again as a different metric
// type, with a different (non-empty) help string, or with different
// histogram bounds panics — a silent first-registration-wins would hide
// the mismatch until someone read the wrong series off a dashboard. An
// empty help string defers to whatever help the name carries. Safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	info     map[string]metricInfo
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		info:     make(map[string]metricInfo),
	}
}

// SanitizeName rewrites s into a valid metric name: every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_'
// prefix. Used to fold free-form labels (e.g. trace-degradation reasons)
// into metric names.
func SanitizeName(s string) string {
	var sb strings.Builder
	for i, r := range s {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			sb.WriteByte('_')
			sb.WriteRune(r)
			continue
		}
		if valid {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

func validName(s string) bool { return s != "" && s == SanitizeName(s) }

// check validates a registration against what name is already registered
// as, recording it on first sight. Callers hold r.mu.
func (r *Registry) check(name, kind, help string, bounds []float64) {
	prev, ok := r.info[name]
	if !ok {
		r.info[name] = metricInfo{kind: kind, help: help, bounds: bounds}
		return
	}
	if prev.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a %s, re-registered as a %s",
			name, prev.kind, kind))
	}
	if help != "" && prev.help != "" && help != prev.help {
		panic(fmt.Sprintf("telemetry: metric %q help mismatch: registered %q, re-registered %q",
			name, prev.help, help))
	}
	if kind == "histogram" && !sameBounds(prev.bounds, bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q bounds mismatch: registered %v, re-registered %v",
			name, prev.bounds, bounds))
	}
	if prev.help == "" && help != "" {
		prev.help = help
		r.info[name] = prev
	}
}

// Counter returns the counter registered under name, creating it if
// needed. A nil registry returns a nil (no-op) counter. Invalid metric
// names, or re-registering name as a different type or with conflicting
// help, panic; use SanitizeName for free-form inputs.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.check(name, "counter", help, nil)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// A nil registry returns a nil (no-op) gauge. Invalid names and
// conflicting re-registrations panic like Counter.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.check(name, "gauge", help, nil)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed. A nil registry returns a nil
// (no-op) histogram. Invalid names panic, as does re-registering name
// with different bounds (order-insensitive), a different type, or
// conflicting help.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.check(name, "histogram", help, sorted)
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(sorted)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns the current value of every counter and gauge, plus
// histogram _count and _sum series, keyed by metric name. Nil registries
// return an empty map.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		if help := r.info[name].help; help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, help)
		}
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value())
		case r.gauges[name] != nil:
			fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value())
		default:
			h := r.hists[name]
			fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(&sb, "%s_sum %g\n", name, h.Sum())
			fmt.Fprintf(&sb, "%s_count %d\n", name, h.Count())
		}
	}
	r.mu.Unlock()

	_, err := io.WriteString(w, sb.String())
	return err
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
