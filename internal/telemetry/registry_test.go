package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, what string, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if v := recover(); v != nil {
				msg = v.(string)
			}
		}()
		fn()
		t.Fatalf("%s: expected panic, got none", what)
	}()
	return msg
}

// TestRegistryHelpMismatchPanics is the regression test for the silent
// name-collision bug: registering an existing name with a different,
// non-empty help string used to return the first registration without a
// word. It must now panic, naming both help strings.
func TestRegistryHelpMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_hits_total", "L1 hits")
	msg := mustPanic(t, "help mismatch", func() {
		reg.Counter("sim_hits_total", "L2 hits")
	})
	if !strings.Contains(msg, "L1 hits") || !strings.Contains(msg, "L2 hits") {
		t.Errorf("panic message should name both helps, got %q", msg)
	}
}

// TestRegistryEmptyHelpDefers pins the escape hatch: an empty help string
// matches any registered help (lookups don't need to repeat the prose),
// and a later non-empty help fills in an initially empty one.
func TestRegistryEmptyHelpDefers(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a_total", "the a counter")
	if reg.Counter("a_total", "") != c {
		t.Error("empty-help lookup must return the registered counter")
	}
	reg.Counter("b_total", "")
	reg.Counter("b_total", "the b counter").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# HELP b_total the b counter") {
		t.Errorf("late help should backfill an empty registration:\n%s", sb.String())
	}
}

// TestRegistryTypeMismatchPanics: one name, two metric types. The old
// registry kept both in separate maps and rendered whichever the type
// switch hit first.
func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queue_depth", "")
	msg := mustPanic(t, "type mismatch", func() {
		reg.Gauge("queue_depth", "")
	})
	if !strings.Contains(msg, "counter") || !strings.Contains(msg, "gauge") {
		t.Errorf("panic message should name both types, got %q", msg)
	}
}

// TestRegistryHistogramBoundsMismatchPanics is the regression test for
// histogram bounds: re-registering with different buckets used to be
// silently ignored. Matching bounds in a different order stay fine.
func TestRegistryHistogramBoundsMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("dur_seconds", "", []float64{1, 0.1, 10})
	if reg.Histogram("dur_seconds", "", []float64{10, 1, 0.1}) != h {
		t.Error("same bounds in a different order must be the same histogram")
	}
	mustPanic(t, "bounds mismatch", func() {
		reg.Histogram("dur_seconds", "", []float64{1, 2, 3})
	})
}

// TestLocalCounterFlush pins the buffered-counter contract: increments
// stay local until Flush, Flush publishes exactly once, and detached
// locals never crash.
func TestLocalCounterFlush(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "")
	l := c.Local()
	l.Inc()
	l.Add(4)
	if c.Value() != 0 {
		t.Errorf("unflushed local leaked into shared counter: %d", c.Value())
	}
	if l.Pending() != 5 {
		t.Errorf("pending = %d, want 5", l.Pending())
	}
	l.Flush()
	l.Flush() // second flush must not double-count
	if c.Value() != 5 {
		t.Errorf("after flush counter = %d, want 5", c.Value())
	}

	var detached LocalCounter
	detached.Inc()
	detached.Flush()
	var nilParent *Counter
	nl := nilParent.Local()
	nl.Add(7)
	nl.Flush() // drops the delta; must not panic
}

// TestShardedCounterConcurrentSum hammers one counter from many
// goroutines while a reader aggregates, pinning that striping loses no
// updates and Value converges to the exact total.
func TestShardedCounterConcurrentSum(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				c.Value() // concurrent aggregation must be race-free
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	close(stop)
	if got := c.Value(); got != writers*per {
		t.Errorf("counter = %d, want %d", got, writers*per)
	}
}
