package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_l1_hits_total", "L1 hits").Add(42)
	reg.Gauge("experiments_queue_depth", "pending").Set(3)
	h := Handler(reg)

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"sim_l1_hits_total 42", "experiments_queue_depth 3"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_l1_hits_total", "").Add(7)
	code, body := get(t, Handler(reg), "/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars status %d", code)
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/vars is not JSON: %v\n%s", err, body)
	}
	if snap["sim_l1_hits_total"] != 7 {
		t.Errorf("/vars snapshot = %v", snap)
	}
}

func TestHandlerDebugEndpoints(t *testing.T) {
	h := Handler(NewRegistry())
	if code, body := get(t, h, "/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: status %d", code)
	}
	if code, body := get(t, h, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: status %d", code)
	}
	if code, _ := get(t, h, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "").Inc()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("live /metrics missing counter:\n%s", body)
	}
}
