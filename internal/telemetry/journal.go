package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one line of the JSONL run journal. The schema is deliberately
// flat — one object per line, every field optional except ts and event —
// so shell tools (jq, grep) and dashboards can consume a journal while
// the run is still appending to it.
//
// Event kinds emitted by experiments.RunAll and the jouppisim CLI:
//
//	run-start         a sweep began (Total experiments)
//	experiment-start  one experiment began (ID, Title, Seq, Total)
//	experiment-finish one experiment ended (adds ElapsedS; Err on failure;
//	                  Cached when the result came from a checkpoint)
//	experiment-panic  the finished experiment failed by panicking
//	experiment-retry  a failed experiment is being re-run (RunOptions.Retries)
//	checkpoint-saved  the checkpoint file was flushed (ID of the result)
//	run-finish        the sweep ended (adds ElapsedS; Err if interrupted)
//
// Event kinds emitted by the introspection probes (internal/introspect):
//
//	miss-dump         header before one probe's sampled miss events
//	                  (Side; Total events that follow; Dropped counts
//	                  sampled events the bounded ring overwrote)
//	miss-event        one sampled L1 miss (Side, Access index, Addr, Set,
//	                  Tag, Served structure; Class when 3C classification
//	                  was on)
//
// Event kinds emitted by the span system (internal/trace):
//
//	span              one finished span (ID is the trace/job ID; Span the
//	                  stage name; SpanID/Parent the tree edges; ElapsedS
//	                  the duration; Attrs the span's annotations)
//	dup-join          an identical in-flight submission joined this job
type Event struct {
	Time     time.Time `json:"ts"`
	Event    string    `json:"event"`
	ID       string    `json:"id,omitempty"`
	Title    string    `json:"title,omitempty"`
	Seq      int       `json:"seq,omitempty"`
	Total    int       `json:"total,omitempty"`
	ElapsedS float64   `json:"elapsed_s,omitempty"`
	Cached   bool      `json:"cached,omitempty"`
	Err      string    `json:"err,omitempty"`

	// Introspection fields (miss-dump / miss-event lines). Addresses are
	// hex strings ("0x2a40") so jq pipelines stay readable; zero-valued
	// fields are omitted and decode back to their zero values.
	Side    string `json:"side,omitempty"`
	Access  uint64 `json:"access,omitempty"`
	Addr    string `json:"addr,omitempty"`
	Set     int    `json:"set,omitempty"`
	Tag     string `json:"tag,omitempty"`
	Served  string `json:"served,omitempty"`
	Class   string `json:"class,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`

	// Span fields (span lines, emitted by internal/trace). Attrs decodes
	// deterministically: json.Marshal sorts map keys.
	Span   string            `json:"span,omitempty"`
	SpanID string            `json:"span_id,omitempty"`
	Parent string            `json:"parent,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Journal appends Events to a writer as JSONL. A nil *Journal is the
// disabled state: Emit is a no-op, so callers never need to branch.
// Safe for concurrent use; write errors are sticky and reported by Err.
type Journal struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	base time.Time // monotonic anchor for stamped timestamps
	err  error
	now  func() time.Time // test seam; monotonic stamping when nil
}

// NewJournal starts a journal writing to w. Each Emit is flushed through
// to w so a crash loses at most the event being written.
func NewJournal(w io.Writer) *Journal {
	return &Journal{bw: bufio.NewWriter(w), base: time.Now()}
}

// Emit appends one event, stamping Time if the caller left it zero. The
// stamp is derived from the monotonic clock (the wall reading of the
// journal's creation instant advanced by the monotonic time elapsed
// since), so events stamped by the same process are totally ordered and
// line up with span start/end times even if the wall clock steps
// between emits — timelines built from one journal never run backwards.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if e.Time.IsZero() {
		if j.now != nil {
			e.Time = j.now()
		} else {
			e.Time = j.base.Add(time.Since(j.base))
		}
	}
	data, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.bw.Write(append(data, '\n')); err != nil {
		j.err = err
		return
	}
	j.err = j.bw.Flush()
}

// Err returns the first write error, if any. Nil journals report nil.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadEvents decodes a JSONL journal back into events — the round-trip
// counterpart of Emit, used by tests and tooling. It reads strictly line
// by line with no line-length limit (a miss-event dump with long fields
// must not trip a default bufio.Scanner token cap), and a malformed line
// fails with an error naming its line number, returning the events
// decoded before it.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	br := bufio.NewReader(r)
	line := 0
	for {
		data, err := br.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 {
			line++
			var e Event
			if jerr := json.Unmarshal(trimmed, &e); jerr != nil {
				return out, fmt.Errorf("telemetry: journal line %d: %w", line, jerr)
			}
			out = append(out, e)
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}
