package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one line of the JSONL run journal. The schema is deliberately
// flat — one object per line, every field optional except ts and event —
// so shell tools (jq, grep) and dashboards can consume a journal while
// the run is still appending to it.
//
// Event kinds emitted by experiments.RunAll and the jouppisim CLI:
//
//	run-start         a sweep began (Total experiments)
//	experiment-start  one experiment began (ID, Title, Seq, Total)
//	experiment-finish one experiment ended (adds ElapsedS; Err on failure;
//	                  Cached when the result came from a checkpoint)
//	experiment-panic  the finished experiment failed by panicking
//	experiment-retry  a failed experiment is being re-run (RunOptions.Retries)
//	checkpoint-saved  the checkpoint file was flushed (ID of the result)
//	run-finish        the sweep ended (adds ElapsedS; Err if interrupted)
type Event struct {
	Time     time.Time `json:"ts"`
	Event    string    `json:"event"`
	ID       string    `json:"id,omitempty"`
	Title    string    `json:"title,omitempty"`
	Seq      int       `json:"seq,omitempty"`
	Total    int       `json:"total,omitempty"`
	ElapsedS float64   `json:"elapsed_s,omitempty"`
	Cached   bool      `json:"cached,omitempty"`
	Err      string    `json:"err,omitempty"`
}

// Journal appends Events to a writer as JSONL. A nil *Journal is the
// disabled state: Emit is a no-op, so callers never need to branch.
// Safe for concurrent use; write errors are sticky and reported by Err.
type Journal struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
	now func() time.Time // test seam; time.Now when nil
}

// NewJournal starts a journal writing to w. Each Emit is flushed through
// to w so a crash loses at most the event being written.
func NewJournal(w io.Writer) *Journal {
	return &Journal{bw: bufio.NewWriter(w)}
}

// Emit appends one event, stamping Time if the caller left it zero.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if e.Time.IsZero() {
		if j.now != nil {
			e.Time = j.now()
		} else {
			e.Time = time.Now()
		}
	}
	data, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.bw.Write(append(data, '\n')); err != nil {
		j.err = err
		return
	}
	j.err = j.bw.Flush()
}

// Err returns the first write error, if any. Nil journals report nil.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadEvents decodes a JSONL journal back into events — the round-trip
// counterpart of Emit, used by tests and tooling.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}
