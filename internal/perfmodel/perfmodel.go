// Package perfmodel implements the paper's instruction-time performance
// accounting (Figures 2-2 and 5-1): execution time is the dynamic
// instruction count plus, for every first-level miss, the first-level miss
// penalty; misses that also miss the second-level cache pay the full
// main-memory penalty instead; augmentation hits (victim cache, stream
// buffer) pay a single cycle. All quantities are in instruction times,
// following the paper's convention that penalties are quoted in
// instruction issues (24 for L1, 320 for L2).
package perfmodel

// Params are the penalty settings. The zero value is invalid; use
// DefaultParams for the paper's baseline system.
type Params struct {
	// L1MissPenalty is the cost of an L1 miss that hits in L2 (24).
	L1MissPenalty int
	// L2MissPenalty is the total cost of a miss that goes to main
	// memory (320). The incremental cost beyond the L1 penalty is
	// L2MissPenalty − L1MissPenalty.
	L2MissPenalty int
	// AuxHitPenalty is the cost of an augmentation hit (1).
	AuxHitPenalty int
}

// DefaultParams returns the paper's baseline penalties.
func DefaultParams() Params {
	return Params{L1MissPenalty: 24, L2MissPenalty: 320, AuxHitPenalty: 1}
}

// Inputs are the event counts the model consumes, typically taken from the
// hierarchy's run results.
type Inputs struct {
	// Instructions is the dynamic instruction count (one cycle each at
	// peak issue).
	Instructions uint64
	// L1IFullMisses / L1DFullMisses are first-level misses not covered
	// by any augmentation (they pay at least L1MissPenalty).
	L1IFullMisses uint64
	L1DFullMisses uint64
	// IAuxHits / DAuxHits are L1 misses satisfied by an augmentation
	// (1-cycle penalty).
	IAuxHits uint64
	DAuxHits uint64
	// L2IDemandMisses / L2DDemandMisses are demand fetches that also
	// missed L2, split by which first-level cache caused them. Each adds
	// L2MissPenalty − L1MissPenalty on top of the L1 penalty.
	L2IDemandMisses uint64
	L2DDemandMisses uint64
}

// Breakdown is execution time partitioned by where cycles went, in
// instruction times.
type Breakdown struct {
	Instructions uint64 // base: one instruction time each
	L1ICycles    uint64 // L1 instruction-miss stall cycles (at L1 penalty)
	L1DCycles    uint64 // L1 data-miss stall cycles (at L1 penalty)
	L2ICycles    uint64 // additional cycles for instruction L2 misses
	L2DCycles    uint64 // additional cycles for data L2 misses
	AuxCycles    uint64 // augmentation-hit cycles
}

// Compute builds the time breakdown from event counts.
func Compute(in Inputs, p Params) Breakdown {
	l2extra := uint64(p.L2MissPenalty - p.L1MissPenalty)
	return Breakdown{
		Instructions: in.Instructions,
		L1ICycles:    in.L1IFullMisses * uint64(p.L1MissPenalty),
		L1DCycles:    in.L1DFullMisses * uint64(p.L1MissPenalty),
		L2ICycles:    in.L2IDemandMisses * l2extra,
		L2DCycles:    in.L2DDemandMisses * l2extra,
		AuxCycles:    (in.IAuxHits + in.DAuxHits) * uint64(p.AuxHitPenalty),
	}
}

// Total returns total execution time in instruction times.
func (b Breakdown) Total() uint64 {
	return b.Instructions + b.L1ICycles + b.L1DCycles + b.L2ICycles + b.L2DCycles + b.AuxCycles
}

// PercentOfPotential returns the fraction of peak performance achieved:
// instructions / total time × 100 (the height of the solid line in
// Figure 2-2).
func (b Breakdown) PercentOfPotential() float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return float64(b.Instructions) / float64(total) * 100
}

// LossBands returns the Figure 2-2 stacked bands as percentages of total
// time: performance lost to L1 instruction misses, L1 data misses, L2
// misses, and augmentation hits. Together with PercentOfPotential they sum
// to 100.
type Bands struct {
	Net   float64 // useful work
	L1I   float64
	L1D   float64
	L2    float64
	Aux   float64
	Total uint64 // total instruction times, for reference
}

// LossBands partitions total time into percentage bands.
func (b Breakdown) LossBands() Bands {
	total := float64(b.Total())
	if total == 0 {
		return Bands{}
	}
	return Bands{
		Net:   float64(b.Instructions) / total * 100,
		L1I:   float64(b.L1ICycles) / total * 100,
		L1D:   float64(b.L1DCycles) / total * 100,
		L2:    float64(b.L2ICycles+b.L2DCycles) / total * 100,
		Aux:   float64(b.AuxCycles) / total * 100,
		Total: b.Total(),
	}
}

// Speedup returns how much faster the improved breakdown is than the
// baseline: baselineTotal / improvedTotal. Both must describe the same
// instruction stream.
func Speedup(baseline, improved Breakdown) float64 {
	if improved.Total() == 0 {
		return 0
	}
	return float64(baseline.Total()) / float64(improved.Total())
}
