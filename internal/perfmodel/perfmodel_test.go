package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.L1MissPenalty != 24 || p.L2MissPenalty != 320 || p.AuxHitPenalty != 1 {
		t.Errorf("defaults = %+v", p)
	}
}

func TestComputeBasic(t *testing.T) {
	// 1000 instructions, 10 I misses, 20 D misses, 5 aux hits, 2 L2
	// misses on the data side.
	in := Inputs{
		Instructions:    1000,
		L1IFullMisses:   10,
		L1DFullMisses:   20,
		IAuxHits:        2,
		DAuxHits:        3,
		L2DDemandMisses: 2,
	}
	b := Compute(in, DefaultParams())
	if b.L1ICycles != 240 || b.L1DCycles != 480 {
		t.Errorf("L1 cycles = %d, %d", b.L1ICycles, b.L1DCycles)
	}
	if b.L2ICycles != 0 || b.L2DCycles != 2*(320-24) {
		t.Errorf("L2 cycles = %d, %d", b.L2ICycles, b.L2DCycles)
	}
	if b.AuxCycles != 5 {
		t.Errorf("aux cycles = %d", b.AuxCycles)
	}
	want := uint64(1000 + 240 + 480 + 592 + 5)
	if b.Total() != want {
		t.Errorf("total = %d, want %d", b.Total(), want)
	}
	if got := b.PercentOfPotential(); !almost(got, 1000.0/float64(want)*100) {
		t.Errorf("percent of potential = %v", got)
	}
}

func TestNoMissesIsFullSpeed(t *testing.T) {
	b := Compute(Inputs{Instructions: 500}, DefaultParams())
	if b.Total() != 500 {
		t.Errorf("total = %d, want 500", b.Total())
	}
	if got := b.PercentOfPotential(); !almost(got, 100) {
		t.Errorf("percent = %v, want 100", got)
	}
}

func TestEmptyBreakdown(t *testing.T) {
	var b Breakdown
	if b.PercentOfPotential() != 0 {
		t.Error("empty percent nonzero")
	}
	if b.LossBands() != (Bands{}) {
		t.Error("empty bands nonzero")
	}
}

func TestLossBandsSumTo100(t *testing.T) {
	f := func(instr, l1i, l1d, auxI, auxD, l2i, l2d uint16) bool {
		in := Inputs{
			Instructions:    uint64(instr) + 1,
			L1IFullMisses:   uint64(l1i),
			L1DFullMisses:   uint64(l1d),
			IAuxHits:        uint64(auxI),
			DAuxHits:        uint64(auxD),
			L2IDemandMisses: uint64(l2i),
			L2DDemandMisses: uint64(l2d),
		}
		b := Compute(in, DefaultParams()).LossBands()
		sum := b.Net + b.L1I + b.L1D + b.L2 + b.Aux
		return math.Abs(sum-100) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	base := Compute(Inputs{Instructions: 100, L1DFullMisses: 100}, DefaultParams())
	improved := Compute(Inputs{Instructions: 100, DAuxHits: 100}, DefaultParams())
	got := Speedup(base, improved)
	want := float64(100+2400) / float64(100+100)
	if !almost(got, want) {
		t.Errorf("speedup = %v, want %v", got, want)
	}
	if Speedup(base, Breakdown{}) != 0 {
		t.Error("speedup vs zero breakdown should be 0")
	}
}

// Removing misses can only reduce total time (monotonicity).
func TestMonotonicity(t *testing.T) {
	f := func(instr uint16, misses uint8, removed uint8) bool {
		m := uint64(misses)
		r := uint64(removed)
		if r > m {
			r = m
		}
		base := Compute(Inputs{Instructions: uint64(instr), L1DFullMisses: m}, DefaultParams())
		improved := Compute(Inputs{
			Instructions:  uint64(instr),
			L1DFullMisses: m - r,
			DAuxHits:      r,
		}, DefaultParams())
		return improved.Total() <= base.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
