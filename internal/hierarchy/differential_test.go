package hierarchy

import (
	"math/bits"
	"math/rand"
	"testing"

	"jouppi/internal/memtrace"
)

// naiveCache is the obviously-correct reference for a direct-mapped cache:
// a map from set index to the resident tag, no timing, no statistics.
// Every access probes and fills on miss, exactly the contract the paper's
// baseline L1 follows.
type naiveCache struct {
	lineShift uint
	sets      uint64
	tags      map[uint64]uint64
}

func newNaive(size, lineSize int) *naiveCache {
	return &naiveCache{
		lineShift: uint(bits.TrailingZeros(uint(lineSize))),
		sets:      uint64(size / lineSize),
		tags:      map[uint64]uint64{},
	}
}

func (n *naiveCache) access(addr uint64) bool {
	la := addr >> n.lineShift
	set := la % n.sets
	if tag, ok := n.tags[set]; ok && tag == la {
		return true
	}
	n.tags[set] = la
	return false
}

// differentialTrace is a clustered random access mix: sequential code,
// loads and stores with reuse, 4KB conflict partners, and occasional far
// jumps.
func differentialTrace(seed int64, n int) []memtrace.Access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]memtrace.Access, n)
	pc, data := uint64(0x10000), uint64(0x400000)
	for i := range out {
		switch rng.Intn(10) {
		case 0: // branch
			pc = uint64(rng.Intn(1 << 22))
		case 1, 2, 3: // data access with locality
			if rng.Intn(4) == 0 {
				data = uint64(rng.Intn(1 << 22))
			} else {
				data += uint64(rng.Intn(64))
			}
			kind := memtrace.Load
			if rng.Intn(3) == 0 {
				kind = memtrace.Store
			}
			out[i] = memtrace.Access{Addr: memtrace.Addr(data), Kind: kind}
			continue
		case 4: // conflict partner of the current data pointer
			out[i] = memtrace.Access{Addr: memtrace.Addr(data ^ 0x1000), Kind: memtrace.Load}
			continue
		default:
			pc += 4
		}
		out[i] = memtrace.Access{Addr: memtrace.Addr(pc), Kind: memtrace.Ifetch}
	}
	return out
}

// TestDifferentialPlainL1 replays random traces through the full System
// (paper baseline: 4KB direct-mapped split I/D, 16B lines) and through the
// naive reference, asserting the per-access L1 hit/miss sequences are
// identical on both sides. The System's hit/miss outcome per access is
// read off its front-end statistics deltas.
func TestDifferentialPlainL1(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sys := MustNew(Config{})
		refI := newNaive(4096, 16)
		refD := newNaive(4096, 16)
		for i, a := range differentialTrace(seed, 30000) {
			var hit, naiveHit bool
			if a.Kind == memtrace.Ifetch {
				before := sys.IFrontEnd().Stats().L1Misses
				sys.Access(a)
				hit = sys.IFrontEnd().Stats().L1Misses == before
				naiveHit = refI.access(uint64(a.Addr))
			} else {
				before := sys.DFrontEnd().Stats().L1Misses
				sys.Access(a)
				hit = sys.DFrontEnd().Stats().L1Misses == before
				naiveHit = refD.access(uint64(a.Addr))
			}
			if hit != naiveHit {
				t.Fatalf("seed %d access %d (%v %#x): system hit=%v, naive reference hit=%v",
					seed, i, a.Kind, uint64(a.Addr), hit, naiveHit)
			}
		}
	}
}
