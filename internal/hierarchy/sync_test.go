package hierarchy

import (
	"testing"

	"jouppi/internal/core"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
)

// syncRecorder is a MissObserver that records every SyncAccesses call.
type syncRecorder struct {
	syncs []uint64 // instruction-side counts, in delivery order
}

func (r *syncRecorder) ObserveMiss(memtrace.Access, core.Result, uint64) {}
func (r *syncRecorder) Counters(bool) *MissCounters                      { return nil }
func (r *syncRecorder) SyncAccesses(instr bool, accesses uint64) {
	if instr {
		r.syncs = append(r.syncs, accesses)
	}
}

// TestPeriodicFlushSyncsMissObserver pins the MissObserver contract at
// the periodic mid-replay flush: with telemetry attached, every
// telFlushEvery-access flush must also deliver SyncAccesses, so an
// observer's windows keep closing through miss-free stretches of a long
// replay. This failed before Access was changed to run the full
// FlushTelemetry at the periodic boundary instead of the
// telemetry-only flushTel — the observer then saw no sync until the
// replay ended.
func TestPeriodicFlushSyncsMissObserver(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := &syncRecorder{}
	sys.AttachMissObserver(rec)
	sys.AttachTelemetry(telemetry.NewRegistry())

	// Two full flush periods of instruction fetches, fed one Access at a
	// time — no replay-end or Results boundary is ever reached.
	for i := 0; i < 2*telFlushEvery; i++ {
		sys.Access(memtrace.Access{Kind: memtrace.Ifetch, Addr: memtrace.Addr(uint64(i%64) * 16)})
	}

	if len(rec.syncs) < 2 {
		t.Fatalf("got %d mid-replay syncs over two flush periods, want ≥2", len(rec.syncs))
	}
	if got := rec.syncs[0]; got != telFlushEvery {
		t.Errorf("first sync reported %d accesses, want %d", got, telFlushEvery)
	}
	if got := rec.syncs[1]; got != 2*telFlushEvery {
		t.Errorf("second sync reported %d accesses, want %d", got, 2*telFlushEvery)
	}
}

// TestPeriodicFlushWithoutTelemetryStaysLazy pins the complementary
// half of the contract: without a registry attached there is no
// periodic flush, so sync arrives only at explicit boundaries.
func TestPeriodicFlushWithoutTelemetryStaysLazy(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := &syncRecorder{}
	sys.AttachMissObserver(rec)
	for i := 0; i < telFlushEvery+1; i++ {
		sys.Access(memtrace.Access{Kind: memtrace.Ifetch, Addr: memtrace.Addr(uint64(i%64) * 16)})
	}
	if len(rec.syncs) != 0 {
		t.Fatalf("detached system synced %d times mid-replay", len(rec.syncs))
	}
	sys.FlushTelemetry()
	if len(rec.syncs) != 1 || rec.syncs[0] != telFlushEvery+1 {
		t.Fatalf("explicit flush syncs = %v, want one exact count", rec.syncs)
	}
}
