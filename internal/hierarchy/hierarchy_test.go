package hierarchy

import (
	"math/rand"
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/memtrace"
)

func TestDefaultConfigIsPaperBaseline(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1I.Size != 4096 || cfg.L1I.LineSize != 16 || cfg.L1I.Assoc != 1 {
		t.Errorf("L1I = %+v", cfg.L1I)
	}
	if cfg.L1D.Size != 4096 || cfg.L1D.LineSize != 16 {
		t.Errorf("L1D = %+v", cfg.L1D)
	}
	if cfg.L2.Size != 1<<20 || cfg.L2.LineSize != 128 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if cfg.Perf.L1MissPenalty != 24 || cfg.Perf.L2MissPenalty != 320 {
		t.Errorf("Perf = %+v", cfg.Perf)
	}
}

func TestAugmentKindString(t *testing.T) {
	names := map[AugmentKind]string{
		None:            "none",
		MissCache:       "miss-cache",
		VictimCache:     "victim-cache",
		StreamBuffers:   "stream-buffers",
		VictimAndStream: "victim+stream",
		AugmentKind(42): "AugmentKind(42)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	bad := DefaultConfig()
	bad.L1I.Size = 100 // not a power of two
	if _, err := New(bad); err == nil {
		t.Error("accepted invalid L1I")
	}
	bad = DefaultConfig()
	bad.IAugment = Augment{Kind: StreamBuffers, Stream: core.StreamConfig{Ways: -1}}
	if _, err := New(bad); err == nil {
		t.Error("accepted invalid stream config")
	}
	bad = DefaultConfig()
	bad.DAugment = Augment{Kind: AugmentKind(99)}
	if _, err := New(bad); err == nil {
		t.Error("accepted unknown augment kind")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(bad)
}

func TestZeroConfigDefaults(t *testing.T) {
	s := MustNew(Config{})
	if got := s.Config().L1I.Size; got != 4096 {
		t.Errorf("defaulted L1I size = %d", got)
	}
	if s.IFrontEnd() == nil || s.DFrontEnd() == nil || s.L2Cache() == nil {
		t.Error("components missing")
	}
}

func TestRoutingByKind(t *testing.T) {
	s := MustNew(Config{})
	tr := memtrace.NewTrace(0)
	tr.Append(memtrace.Access{Addr: 0x1000, Kind: memtrace.Ifetch})
	tr.Append(memtrace.Access{Addr: 0x2000, Kind: memtrace.Load})
	tr.Append(memtrace.Access{Addr: 0x3000, Kind: memtrace.Store})
	s.Run(tr)
	if got := s.IFrontEnd().Stats().Accesses; got != 1 {
		t.Errorf("I accesses = %d, want 1", got)
	}
	if got := s.DFrontEnd().Stats().Accesses; got != 2 {
		t.Errorf("D accesses = %d, want 2", got)
	}
}

func TestL2SeesL1MissesOnly(t *testing.T) {
	s := MustNew(Config{})
	// Two ifetches in the same L1 line: one L1 miss, one hit; L2 sees
	// exactly one demand access.
	s.Access(memtrace.Access{Addr: 0x1000, Kind: memtrace.Ifetch})
	s.Access(memtrace.Access{Addr: 0x1004, Kind: memtrace.Ifetch})
	r := s.Results(2)
	if r.L2I.DemandAccesses != 1 {
		t.Errorf("L2 demand accesses = %d, want 1", r.L2I.DemandAccesses)
	}
	if r.L2I.DemandMisses != 1 {
		t.Errorf("L2 demand misses = %d, want 1 (cold)", r.L2I.DemandMisses)
	}
}

func TestL2LineGranularity(t *testing.T) {
	s := MustNew(Config{})
	// Adjacent L1 lines (16B) fall in one L2 line (128B): the second L1
	// miss hits in L2.
	s.Access(memtrace.Access{Addr: 0x1000, Kind: memtrace.Load})
	s.Access(memtrace.Access{Addr: 0x1010, Kind: memtrace.Load})
	r := s.Results(0)
	if r.L2D.DemandAccesses != 2 || r.L2D.DemandMisses != 1 {
		t.Errorf("L2D = %+v, want 2 accesses / 1 miss", r.L2D)
	}
}

func TestPrefetchTrafficAttributed(t *testing.T) {
	cfg := Config{
		DAugment: Augment{Kind: StreamBuffers, Stream: core.StreamConfig{Ways: 1, Depth: 4}},
	}
	s := MustNew(cfg)
	for i := 0; i < 100; i++ {
		s.Access(memtrace.Access{Addr: memtrace.Addr(0x10000 + i*16), Kind: memtrace.Load})
	}
	r := s.Results(0)
	if r.L2D.PrefetchAccesses == 0 {
		t.Error("no prefetch traffic recorded at L2")
	}
	if r.D.StreamHits == 0 {
		t.Error("no stream hits on a sequential walk")
	}
	// Sequential walk: nearly all L1 misses covered by the buffer.
	if r.D.FullMisses() > 2 {
		t.Errorf("full misses = %d, want ≤ 2", r.D.FullMisses())
	}
}

func TestResultsBreakdownConsistency(t *testing.T) {
	s := MustNew(Config{})
	rng := rand.New(rand.NewSource(9))
	tr := memtrace.NewTrace(0)
	for i := 0; i < 20000; i++ {
		kind := memtrace.Ifetch
		addr := memtrace.Addr(0x100000 + rng.Intn(1<<16))
		if rng.Intn(3) == 0 {
			kind = memtrace.Load
			addr = memtrace.Addr(0x800000 + rng.Intn(1<<17))
		}
		tr.Append(memtrace.Access{Addr: addr, Kind: kind})
	}
	s.Run(tr)
	r := s.Results(tr.Instructions())
	if r.Instructions != tr.Instructions() {
		t.Errorf("instructions = %d, want %d", r.Instructions, tr.Instructions())
	}
	// L2 demand misses can never exceed L1 full misses.
	if r.L2I.DemandMisses > r.I.FullMisses() {
		t.Errorf("L2I misses %d > L1I full misses %d", r.L2I.DemandMisses, r.I.FullMisses())
	}
	if r.L2D.DemandMisses > r.D.FullMisses() {
		t.Errorf("L2D misses %d > L1D full misses %d", r.L2D.DemandMisses, r.D.FullMisses())
	}
	// Demand accesses at L2 equal L1 full misses (every uncovered L1
	// miss fetches exactly one line).
	if r.L2I.DemandAccesses != r.I.FullMisses() {
		t.Errorf("L2I demand accesses %d != L1I full misses %d",
			r.L2I.DemandAccesses, r.I.FullMisses())
	}
	if got := r.Breakdown.Total(); got < r.Instructions {
		t.Errorf("total time %d < instructions %d", got, r.Instructions)
	}
	if r.IMissRate() != r.I.MissRate() || r.DMissRate() != r.D.MissRate() {
		t.Error("miss-rate accessors disagree")
	}
}

func TestVictimCacheAugmentReducesConflicts(t *testing.T) {
	// Alternating L1-conflicting lines: the victim-cache system should
	// have far fewer full misses than the baseline.
	mkTrace := func() *memtrace.Trace {
		tr := memtrace.NewTrace(0)
		for i := 0; i < 1000; i++ {
			tr.Append(memtrace.Access{Addr: 0x0000, Kind: memtrace.Load})
			tr.Append(memtrace.Access{Addr: 0x1000, Kind: memtrace.Load}) // +4KB: same set
		}
		return tr
	}
	base := MustNew(Config{})
	base.Run(mkTrace())
	vc := MustNew(Config{DAugment: Augment{Kind: VictimCache, Entries: 4}})
	vc.Run(mkTrace())
	if b, v := base.Results(0).D.FullMisses(), vc.Results(0).D.FullMisses(); v*10 > b {
		t.Errorf("victim cache misses %d not ≪ baseline %d", v, b)
	}
}

func TestCombinedAugment(t *testing.T) {
	cfg := Config{
		IAugment: Augment{Kind: StreamBuffers, Stream: core.StreamConfig{Ways: 1, Depth: 4}},
		DAugment: Augment{Kind: VictimAndStream, Entries: 4,
			Stream: core.StreamConfig{Ways: 4, Depth: 4}},
	}
	s := MustNew(cfg)
	for i := 0; i < 2000; i++ {
		s.Access(memtrace.Access{Addr: memtrace.Addr(0x100000 + i*4), Kind: memtrace.Ifetch})
		s.Access(memtrace.Access{Addr: memtrace.Addr(0x900000 + i*8), Kind: memtrace.Load})
	}
	r := s.Results(2000)
	if r.I.StreamHits == 0 || r.D.StreamHits == 0 {
		t.Errorf("stream hits I=%d D=%d, want both > 0", r.I.StreamHits, r.D.StreamHits)
	}
}

func TestMissCacheAugment(t *testing.T) {
	s := MustNew(Config{DAugment: Augment{Kind: MissCache, Entries: 2}})
	for i := 0; i < 100; i++ {
		s.Access(memtrace.Access{Addr: 0x0000, Kind: memtrace.Load})
		s.Access(memtrace.Access{Addr: 0x1000, Kind: memtrace.Load})
	}
	if hits := s.DFrontEnd().Stats().MissCacheHits; hits == 0 {
		t.Error("miss cache never hit")
	}
}

func TestL2VictimCacheExtension(t *testing.T) {
	// Two L2-conflicting lines alternate: a small L2 with a victim cache
	// behind it converts L2 conflict misses into victim hits. Use a tiny
	// L2 so conflicts are easy to provoke, and L1 of different line size
	// so every L1 miss reaches L2.
	cfg := Config{
		L1I: cache.Config{Name: "L1I", Size: 64, LineSize: 16, Assoc: 1},
		L1D: cache.Config{Name: "L1D", Size: 64, LineSize: 16, Assoc: 1},
		L2:  cache.Config{Name: "L2", Size: 1024, LineSize: 128, Assoc: 1},
	}
	base := MustNew(cfg)
	cfgV := cfg
	cfgV.L2VictimEntries = 4
	withVC := MustNew(cfgV)

	run := func(s *System) Results {
		for i := 0; i < 500; i++ {
			// Same L1 set (64B cache) and same L2 set (1KB cache).
			s.Access(memtrace.Access{Addr: 0x00000, Kind: memtrace.Load})
			s.Access(memtrace.Access{Addr: 0x10000, Kind: memtrace.Load})
		}
		return s.Results(0)
	}
	rb, rv := run(base), run(withVC)
	if rv.L2D.DemandMisses >= rb.L2D.DemandMisses {
		t.Errorf("L2 victim cache did not reduce L2 misses: %d vs %d",
			rv.L2D.DemandMisses, rb.L2D.DemandMisses)
	}
	if rv.L2D.VictimHits == 0 {
		t.Error("L2 victim hits not recorded")
	}
}

func TestImprovedSystemBeatsBaseline(t *testing.T) {
	// The Figure 5-1 shape on a mixed workload: baseline vs the paper's
	// improved system (I stream buffer; D victim cache + 4-way stream
	// buffer) — the improved system must achieve a higher percentage of
	// potential performance.
	mkTrace := func() *memtrace.Trace {
		tr := memtrace.NewTrace(0)
		rng := rand.New(rand.NewSource(77))
		ipc := uint64(0x100000)
		for i := 0; i < 30000; i++ {
			// Sequential code with occasional jumps across a 32KB text.
			if rng.Intn(32) == 0 {
				ipc = 0x100000 + uint64(rng.Intn(1<<15))&^3
			}
			tr.Append(memtrace.Access{Addr: memtrace.Addr(ipc), Kind: memtrace.Ifetch})
			ipc += 4
			if i%3 == 0 {
				// Mixed data: streaming plus a conflicting pair.
				switch rng.Intn(3) {
				case 0:
					tr.Append(memtrace.Access{Addr: memtrace.Addr(0x800000 + i*8), Kind: memtrace.Load})
				case 1:
					tr.Append(memtrace.Access{Addr: 0x40000, Kind: memtrace.Load})
				default:
					tr.Append(memtrace.Access{Addr: 0x41000, Kind: memtrace.Store})
				}
			}
		}
		return tr
	}

	base := MustNew(Config{})
	base.Run(mkTrace())
	rb := base.Results(mkTrace().Instructions())

	improved := MustNew(Config{
		IAugment: Augment{Kind: StreamBuffers, Stream: core.StreamConfig{Ways: 1, Depth: 4}},
		DAugment: Augment{Kind: VictimAndStream, Entries: 4,
			Stream: core.StreamConfig{Ways: 4, Depth: 4}},
	})
	improved.Run(mkTrace())
	ri := improved.Results(mkTrace().Instructions())

	if ri.Breakdown.PercentOfPotential() <= rb.Breakdown.PercentOfPotential() {
		t.Errorf("improved %.1f%% not better than baseline %.1f%%",
			ri.Breakdown.PercentOfPotential(), rb.Breakdown.PercentOfPotential())
	}
	if ri.D.FullMisses() >= rb.D.FullMisses() {
		t.Errorf("improved D misses %d not below baseline %d",
			ri.D.FullMisses(), rb.D.FullMisses())
	}
}

func TestInclusionReport(t *testing.T) {
	// A system with a small L2 and a victim-cached L1D. Drive conflicting
	// lines so the victim cache retains lines and the small L2 evicts.
	cfg := Config{
		L2:       cache.Config{Name: "L2", Size: 1024, LineSize: 128, Assoc: 1},
		DAugment: Augment{Kind: VictimCache, Entries: 8},
	}
	s := MustNew(cfg)
	// Touch widely spaced lines: the 8-line L2 cycles constantly while
	// L1 (256 lines) and the victim cache keep most of them.
	for i := 0; i < 64; i++ {
		s.Access(memtrace.Access{Addr: memtrace.Addr(i * 4096), Kind: memtrace.Load})
	}
	r := s.Inclusion()
	if r.DLines == 0 {
		t.Fatal("no resident D lines counted")
	}
	if r.DViolations == 0 {
		t.Error("expected inclusion violations with a tiny L2")
	}
	if r.DViolations > r.DLines {
		t.Errorf("violations %d exceed lines %d", r.DViolations, r.DLines)
	}
	// The instruction side saw no traffic.
	if r.ILines != 0 || r.IViolations != 0 {
		t.Errorf("idle I side reports %+v", r)
	}
}

func TestInclusionHoldsWithBigL2(t *testing.T) {
	// With the paper's 1MB L2 and short traffic, nothing is evicted from
	// L2, so a plain hierarchy has no violations.
	s := MustNew(Config{})
	for i := 0; i < 200; i++ {
		s.Access(memtrace.Access{Addr: memtrace.Addr(0x100000 + i*16), Kind: memtrace.Load})
	}
	if r := s.Inclusion(); r.DViolations != 0 {
		t.Errorf("unexpected violations: %+v", r)
	}
}

func TestL2StreamBufferExtension(t *testing.T) {
	// Stream data far beyond a small L2: second-level stream buffers
	// should convert most L2 misses into buffer hits, with the prefetch
	// traffic visible at memory.
	cfg := Config{
		L2: cache.Config{Name: "L2", Size: 8 << 10, LineSize: 128, Assoc: 1},
		L2Augment: Augment{Kind: StreamBuffers,
			Stream: core.StreamConfig{Ways: 2, Depth: 4}},
	}
	s := MustNew(cfg)
	for i := 0; i < 4000; i++ {
		s.Access(memtrace.Access{Addr: memtrace.Addr(0x100000 + i*16), Kind: memtrace.Load})
	}
	r := s.Results(0)
	if r.L2D.StreamHits == 0 {
		t.Fatal("no L2 stream-buffer hits on a sequential sweep")
	}
	if r.Mem.PrefetchFetches == 0 {
		t.Error("no memory prefetch traffic recorded")
	}
	// Compare against the plain system: far fewer L2 demand misses.
	base := MustNew(Config{
		L2: cache.Config{Name: "L2", Size: 8 << 10, LineSize: 128, Assoc: 1},
	})
	for i := 0; i < 4000; i++ {
		base.Access(memtrace.Access{Addr: memtrace.Addr(0x100000 + i*16), Kind: memtrace.Load})
	}
	rb := base.Results(0)
	if r.L2D.DemandMisses*2 > rb.L2D.DemandMisses {
		t.Errorf("L2 stream buffers barely helped: %d vs %d misses",
			r.L2D.DemandMisses, rb.L2D.DemandMisses)
	}
	if rb.Mem.DemandFetches == 0 {
		t.Error("baseline memory demand traffic not recorded")
	}
}

func TestL2VictimShorthandStillWorks(t *testing.T) {
	s := MustNew(Config{L2VictimEntries: 4})
	if got := s.Config().L2VictimEntries; got != 4 {
		t.Errorf("config lost shorthand: %d", got)
	}
	s.Access(memtrace.Access{Addr: 0x1000, Kind: memtrace.Load})
}
