package hierarchy

import (
	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/telemetry"
)

// sideTel is the per-reference counter set of one first-level side. Every
// Access routed to that side increments accesses plus exactly one of the
// outcome counters, attributed from Result.Served.
type sideTel struct {
	accesses      *telemetry.Counter
	l1Hits        *telemetry.Counter
	auxHits       *telemetry.Counter
	missCacheHits *telemetry.Counter
	victimHits    *telemetry.Counter
	streamHits    *telemetry.Counter
	fullMisses    *telemetry.Counter
}

func newSideTel(reg *telemetry.Registry, side string) sideTel {
	p := "sim_" + side + "_"
	return sideTel{
		accesses:      reg.Counter(p+"accesses_total", side+": references routed to this side"),
		l1Hits:        reg.Counter(p+"l1_hits_total", side+": first-level cache hits"),
		auxHits:       reg.Counter(p+"aux_hits_total", side+": hits in any auxiliary structure"),
		missCacheHits: reg.Counter(p+"miss_cache_hits_total", side+": miss-cache hits"),
		victimHits:    reg.Counter(p+"victim_hits_total", side+": victim-cache hits"),
		streamHits:    reg.Counter(p+"stream_hits_total", side+": stream-buffer hits"),
		fullMisses:    reg.Counter(p+"full_misses_total", side+": misses served by the next level"),
	}
}

func (t *sideTel) count(r core.Result) {
	t.accesses.Inc()
	switch r.Served {
	case core.ServedL1:
		t.l1Hits.Inc()
	case core.ServedMissCache:
		t.auxHits.Inc()
		t.missCacheHits.Inc()
	case core.ServedVictim:
		t.auxHits.Inc()
		t.victimHits.Inc()
	case core.ServedStream:
		t.auxHits.Inc()
		t.streamHits.Inc()
	case core.ServedMemory:
		t.fullMisses.Inc()
	}
}

// sysTel is the system-level counter set AttachTelemetry installs.
type sysTel struct {
	i, d sideTel

	l2DemandAccesses   *telemetry.Counter
	l2DemandMisses     *telemetry.Counter
	l2PrefetchAccesses *telemetry.Counter
	l2PrefetchMisses   *telemetry.Counter

	memDemandFetches   *telemetry.Counter
	memPrefetchFetches *telemetry.Counter
}

// AttachTelemetry registers the system's live counters in reg and starts
// feeding them: per-side reference outcomes (sim_l1i_*, sim_l1d_*),
// second-level traffic split demand/prefetch (sim_l2_*), main-memory
// fetches (sim_mem_*), and the per-array cache counters
// (sim_cache_<name>_*). A nil registry detaches. Attach before the replay
// starts; the counters are atomic, so a /metrics scrape may read them
// concurrently with the run, but attachment itself is not synchronized.
func (s *System) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel = nil
		s.ife.Cache().Instrument(nil)
		s.dfe.Cache().Instrument(nil)
		s.l2.Instrument(nil)
		return
	}
	s.tel = &sysTel{
		i: newSideTel(reg, "l1i"),
		d: newSideTel(reg, "l1d"),

		l2DemandAccesses:   reg.Counter("sim_l2_demand_accesses_total", "L2: demand accesses from either first-level side"),
		l2DemandMisses:     reg.Counter("sim_l2_demand_misses_total", "L2: demand accesses that missed everywhere"),
		l2PrefetchAccesses: reg.Counter("sim_l2_prefetch_accesses_total", "L2: stream-buffer prefetch accesses"),
		l2PrefetchMisses:   reg.Counter("sim_l2_prefetch_misses_total", "L2: prefetch accesses that missed everywhere"),

		memDemandFetches:   reg.Counter("sim_mem_demand_fetches_total", "memory: demand line fetches below the L2"),
		memPrefetchFetches: reg.Counter("sim_mem_prefetch_fetches_total", "memory: prefetch line fetches below the L2"),
	}
	s.ife.Cache().Instrument(cache.NewCounters(reg, s.cfg.L1I.Name))
	s.dfe.Cache().Instrument(cache.NewCounters(reg, s.cfg.L1D.Name))
	s.l2.Instrument(cache.NewCounters(reg, s.cfg.L2.Name))
}
