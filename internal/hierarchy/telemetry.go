package hierarchy

import (
	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/telemetry"
)

// telFlushEvery is the system's telemetry flush cadence in accesses. The
// simulator's own (non-atomic, single-writer) stats structs are the only
// counters the hot path touches; telemetry is published by copying the
// delta of those stats into the shared registry counters every
// telFlushEvery routed references, at the end of every Run/RunSource
// replay, and whenever Results or FlushTelemetry is called. A /metrics
// scrape taken mid-replay therefore lags the live run by at most this
// many accesses; completed runs are exact.
const telFlushEvery = 4096

// addDelta publishes the growth of one stat since the last flush.
func addDelta(c *telemetry.Counter, cur, last uint64) {
	if cur != last {
		c.Add(cur - last)
	}
}

// sideTel publishes one first-level side's reference outcomes, derived
// from the front-end's core.Stats rather than counted separately: the
// last published snapshot is kept and each flush emits the difference.
type sideTel struct {
	accesses      *telemetry.Counter
	l1Hits        *telemetry.Counter
	auxHits       *telemetry.Counter
	missCacheHits *telemetry.Counter
	victimHits    *telemetry.Counter
	streamHits    *telemetry.Counter
	fullMisses    *telemetry.Counter

	last core.Stats // stats already published to the registry
}

func newSideTel(reg *telemetry.Registry, side string) sideTel {
	p := "sim_" + side + "_"
	return sideTel{
		accesses:      reg.Counter(p+"accesses_total", side+": references routed to this side"),
		l1Hits:        reg.Counter(p+"l1_hits_total", side+": first-level cache hits"),
		auxHits:       reg.Counter(p+"aux_hits_total", side+": hits in any auxiliary structure"),
		missCacheHits: reg.Counter(p+"miss_cache_hits_total", side+": miss-cache hits"),
		victimHits:    reg.Counter(p+"victim_hits_total", side+": victim-cache hits"),
		streamHits:    reg.Counter(p+"stream_hits_total", side+": stream-buffer hits"),
		fullMisses:    reg.Counter(p+"full_misses_total", side+": misses served by the next level"),
	}
}

func (t *sideTel) publish(cur core.Stats) {
	addDelta(t.accesses, cur.Accesses, t.last.Accesses)
	addDelta(t.l1Hits, cur.L1Hits, t.last.L1Hits)
	addDelta(t.auxHits, cur.AuxHits, t.last.AuxHits)
	addDelta(t.missCacheHits, cur.MissCacheHits, t.last.MissCacheHits)
	addDelta(t.victimHits, cur.VictimHits, t.last.VictimHits)
	addDelta(t.streamHits, cur.StreamHits, t.last.StreamHits)
	addDelta(t.fullMisses, cur.FullMisses(), t.last.FullMisses())
	t.last = cur
}

// sysTel is the system-level counter set AttachTelemetry installs.
type sysTel struct {
	i, d sideTel

	l2DemandAccesses   *telemetry.Counter
	l2DemandMisses     *telemetry.Counter
	l2PrefetchAccesses *telemetry.Counter
	l2PrefetchMisses   *telemetry.Counter
	lastL2             L2Stats // combined i+d snapshot already published

	memDemandFetches   *telemetry.Counter
	memPrefetchFetches *telemetry.Counter
	lastMem            MemStats

	// caches are the per-array counter sets handed to the cache arrays,
	// likewise published as stats deltas by the caches themselves.
	caches [3]*cache.Counters

	// pending counts references since the last flush; Access flushes the
	// whole set once it reaches telFlushEvery.
	pending int
}

// combinedL2 merges both sides' L2 traffic into one snapshot.
func (s *System) combinedL2() L2Stats {
	return L2Stats{
		DemandAccesses:   s.l2i.DemandAccesses + s.l2d.DemandAccesses,
		DemandMisses:     s.l2i.DemandMisses + s.l2d.DemandMisses,
		PrefetchAccesses: s.l2i.PrefetchAccesses + s.l2d.PrefetchAccesses,
		PrefetchMisses:   s.l2i.PrefetchMisses + s.l2d.PrefetchMisses,
	}
}

// flushTel publishes the stats deltas accumulated since the last flush
// into the shared registry.
func (s *System) flushTel() {
	t := s.tel
	t.i.publish(s.ife.Stats())
	t.d.publish(s.dfe.Stats())

	l2 := s.combinedL2()
	addDelta(t.l2DemandAccesses, l2.DemandAccesses, t.lastL2.DemandAccesses)
	addDelta(t.l2DemandMisses, l2.DemandMisses, t.lastL2.DemandMisses)
	addDelta(t.l2PrefetchAccesses, l2.PrefetchAccesses, t.lastL2.PrefetchAccesses)
	addDelta(t.l2PrefetchMisses, l2.PrefetchMisses, t.lastL2.PrefetchMisses)
	t.lastL2 = l2

	addDelta(t.memDemandFetches, s.mem.DemandFetches, t.lastMem.DemandFetches)
	addDelta(t.memPrefetchFetches, s.mem.PrefetchFetches, t.lastMem.PrefetchFetches)
	t.lastMem = s.mem

	s.ife.Cache().FlushTelemetry()
	s.dfe.Cache().FlushTelemetry()
	s.l2.FlushTelemetry()
	t.pending = 0
}

// AttachTelemetry registers the system's live counters in reg and starts
// feeding them: per-side reference outcomes (sim_l1i_*, sim_l1d_*),
// second-level traffic split demand/prefetch (sim_l2_*), main-memory
// fetches (sim_mem_*), and the per-array cache counters
// (sim_cache_<name>_*). A nil registry detaches, publishing anything not
// yet flushed. The counters are fed by delta-publication from the
// simulator's own stats structs — the per-access paths carry no
// telemetry code — with flushes every telFlushEvery accesses and at
// replay/results boundaries (see FlushTelemetry), so a concurrent
// /metrics scrape sees values at most one flush interval stale. A fresh
// attachment counts activity from attach time forward. Attach before the
// replay starts; attachment itself is not synchronized.
func (s *System) AttachTelemetry(reg *telemetry.Registry) {
	if s.tel != nil {
		s.flushTel()
	}
	if reg == nil {
		s.tel = nil
		s.ife.Cache().Instrument(nil)
		s.dfe.Cache().Instrument(nil)
		s.l2.Instrument(nil)
		return
	}
	s.tel = &sysTel{
		i: newSideTel(reg, "l1i"),
		d: newSideTel(reg, "l1d"),

		l2DemandAccesses:   reg.Counter("sim_l2_demand_accesses_total", "L2: demand accesses from either first-level side"),
		l2DemandMisses:     reg.Counter("sim_l2_demand_misses_total", "L2: demand accesses that missed everywhere"),
		l2PrefetchAccesses: reg.Counter("sim_l2_prefetch_accesses_total", "L2: stream-buffer prefetch accesses"),
		l2PrefetchMisses:   reg.Counter("sim_l2_prefetch_misses_total", "L2: prefetch accesses that missed everywhere"),

		memDemandFetches:   reg.Counter("sim_mem_demand_fetches_total", "memory: demand line fetches below the L2"),
		memPrefetchFetches: reg.Counter("sim_mem_prefetch_fetches_total", "memory: prefetch line fetches below the L2"),
	}
	// Count from attach time forward: mark the current stats published.
	s.tel.i.last = s.ife.Stats()
	s.tel.d.last = s.dfe.Stats()
	s.tel.lastL2 = s.combinedL2()
	s.tel.lastMem = s.mem
	s.tel.caches = [3]*cache.Counters{
		cache.NewCounters(reg, s.cfg.L1I.Name),
		cache.NewCounters(reg, s.cfg.L1D.Name),
		cache.NewCounters(reg, s.cfg.L2.Name),
	}
	s.ife.Cache().Instrument(s.tel.caches[0])
	s.dfe.Cache().Instrument(s.tel.caches[1])
	s.l2.Instrument(s.tel.caches[2])
}

// FlushTelemetry publishes all pending telemetry deltas to the attached
// registry immediately. Replay and results paths call it automatically;
// call it directly before reading the registry at a custom boundary.
func (s *System) FlushTelemetry() {
	if s.tel != nil {
		s.flushTel()
	}
	if s.mobs != nil {
		s.mobs.SyncAccesses(true, *s.iAcc)
		s.mobs.SyncAccesses(false, *s.dAcc)
	}
}
