package hierarchy

import (
	"context"
	"errors"
	"testing"

	"jouppi/internal/memtrace"
)

func bigTestTrace(n int) *memtrace.Trace {
	tr := memtrace.NewTrace(n)
	for i := 0; i < n; i++ {
		tr.Append(memtrace.Access{Addr: memtrace.Addr(i * 4), Kind: memtrace.Ifetch})
	}
	return tr
}

// RunSourceContext must replay the full stream under a live context and
// produce the same counts as RunSource.
func TestRunSourceContextMatchesRunSource(t *testing.T) {
	tr := bigTestTrace(50000)
	a := MustNew(Config{})
	a.RunSource(tr.Source())
	b := MustNew(Config{})
	if err := b.RunSourceContext(context.Background(), tr.Source()); err != nil {
		t.Fatalf("RunSourceContext: %v", err)
	}
	sa, sb := a.Results(50000), b.Results(50000)
	if sa != sb {
		t.Errorf("results differ:\n plain: %+v\n ctx:   %+v", sa, sb)
	}
}

// A cancelled context must cut the replay short with its error.
func TestRunSourceContextCancelled(t *testing.T) {
	tr := bigTestTrace(200000)
	s := MustNew(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.RunSourceContext(ctx, tr.Source())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := s.IFrontEnd().Stats().Accesses; n >= 200000 {
		t.Errorf("cancelled replay still visited all %d accesses", n)
	}
}
