// Package hierarchy composes the full baseline memory system of the
// paper's §2 — split 4KB direct-mapped first-level instruction and data
// caches with 16B lines, a pipelined 1MB direct-mapped second-level cache
// with 128B lines, and main memory — together with the augmentations of
// §3–5 attached to either first-level cache and, as an extension, a victim
// cache behind the second level.
//
// The hierarchy routes a memory-reference trace to the right first-level
// front-end, forwards first-level fetch traffic (demand and prefetch) into
// the second-level cache, and gathers the counts the performance model
// needs.
package hierarchy

import (
	"context"
	"fmt"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/memtrace"
	"jouppi/internal/perfmodel"
)

// AugmentKind selects the augmentation attached to a first-level cache.
type AugmentKind uint8

// The available first-level augmentations.
const (
	None AugmentKind = iota
	MissCache
	VictimCache
	StreamBuffers
	VictimAndStream
)

// String returns the augmentation name.
func (k AugmentKind) String() string {
	switch k {
	case None:
		return "none"
	case MissCache:
		return "miss-cache"
	case VictimCache:
		return "victim-cache"
	case StreamBuffers:
		return "stream-buffers"
	case VictimAndStream:
		return "victim+stream"
	default:
		return fmt.Sprintf("AugmentKind(%d)", uint8(k))
	}
}

// Augment configures one first-level cache's helper hardware.
type Augment struct {
	Kind AugmentKind
	// Entries sizes the miss or victim cache (ignored otherwise).
	Entries int
	// Stream configures the stream buffers (ignored unless Kind includes
	// stream buffers).
	Stream core.StreamConfig
}

// Config describes a complete two-level system. Zero-valued cache configs
// default to the paper's baseline geometry.
type Config struct {
	L1I cache.Config
	L1D cache.Config
	L2  cache.Config

	// IAugment / DAugment attach helper hardware to the first-level
	// caches.
	IAugment Augment
	DAugment Augment

	// L2Augment attaches helper hardware to the second-level cache —
	// the §3.5/§5 "apply these techniques to second-level caches" future
	// work. Its stream buffers prefetch from main memory.
	L2Augment Augment

	// L2VictimEntries is shorthand for L2Augment{Kind: VictimCache,
	// Entries: n}; ignored when L2Augment is set.
	L2VictimEntries int

	// Timing carries the first-level penalties; Perf the system-level
	// penalties. Zero values take the paper's baseline.
	Timing core.Timing
	Perf   perfmodel.Params
}

// DefaultConfig returns the paper's baseline system: 4KB split I/D caches
// with 16B lines, 1MB L2 with 128B lines, penalties 24 and 320.
func DefaultConfig() Config {
	return Config{
		L1I:    cache.Config{Name: "L1I", Size: 4096, LineSize: 16, Assoc: 1},
		L1D:    cache.Config{Name: "L1D", Size: 4096, LineSize: 16, Assoc: 1},
		L2:     cache.Config{Name: "L2", Size: 1 << 20, LineSize: 128, Assoc: 1},
		Timing: core.DefaultTiming(),
		Perf:   perfmodel.DefaultParams(),
	}
}

// Defaulted returns the configuration with every zero-valued field
// resolved to the paper baseline — the exact geometry New would build.
// Callers that analyse a configuration without constructing a system
// (the sharded-replay planner) use it to see the same geometry the
// system will have.
func (c Config) Defaulted() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.L1I.Size == 0 {
		c.L1I = d.L1I
	}
	if c.L1D.Size == 0 {
		c.L1D = d.L1D
	}
	if c.L2.Size == 0 {
		c.L2 = d.L2
	}
	if c.Timing == (core.Timing{}) {
		c.Timing = d.Timing
	}
	if c.Perf == (perfmodel.Params{}) {
		c.Perf = d.Perf
	}
	return c
}

// L2Stats separates second-level traffic by source and type.
type L2Stats struct {
	DemandAccesses   uint64
	DemandMisses     uint64
	PrefetchAccesses uint64
	PrefetchMisses   uint64
	// VictimHits counts L2 victim-cache hits (extension).
	VictimHits uint64
	// StreamHits counts L2 stream-buffer hits (extension).
	StreamHits uint64
}

// Add accumulates other into s (plain event counts, so per-shard stats
// sum exactly to whole-trace stats).
func (s *L2Stats) Add(other L2Stats) {
	s.DemandAccesses += other.DemandAccesses
	s.DemandMisses += other.DemandMisses
	s.PrefetchAccesses += other.PrefetchAccesses
	s.PrefetchMisses += other.PrefetchMisses
	s.VictimHits += other.VictimHits
	s.StreamHits += other.StreamHits
}

// MemStats counts main-memory traffic (fetches below the L2).
type MemStats struct {
	// DemandFetches are memory lines fetched because an L2 demand access
	// missed everywhere; PrefetchFetches are issued by L2 stream buffers.
	DemandFetches   uint64
	PrefetchFetches uint64
}

// Add accumulates other into s.
func (s *MemStats) Add(other MemStats) {
	s.DemandFetches += other.DemandFetches
	s.PrefetchFetches += other.PrefetchFetches
}

// System is a runnable two-level memory hierarchy.
type System struct {
	cfg Config

	ife core.FrontEnd
	dfe core.FrontEnd

	// The optional replay taps live right after the front-end words so
	// the nil checks Access performs per reference share the front-ends'
	// cache lines. tel holds live counters (AttachTelemetry), obs a full
	// per-access observer (AttachObserver), mobs the cheap miss-only tap
	// (AttachMissObserver); each is nil unless attached.
	tel  *sysTel
	obs  Observer
	mobs MissObserver
	// imc/dmc are the miss observer's per-side hot counters (nil when
	// detached or not exposed), booked inline by Access; iAcc/dAcc
	// point at the front-ends' live access counters (core.AccessCounter)
	// so the tap reads the index the access just counted without an
	// interface call.
	imc  *MissCounters
	dmc  *MissCounters
	iAcc *uint64
	dAcc *uint64

	l2   *cache.Cache
	l2fe core.FrontEnd // wraps l2, possibly with a victim cache

	l2i L2Stats // L2 traffic caused by the instruction side
	l2d L2Stats // L2 traffic caused by the data side
	mem MemStats

	l1iShift uint
	l1dShift uint
}

// Observer receives every routed reference together with its resolution.
// Observers are read-only taps: they must not touch the simulated
// structures, so attaching one changes no simulated number (the
// introspection equivalence tests pin this). The callback runs on the
// replay's hot path — keep it to plain struct updates — and even a
// trivial callback costs an indirect call per access; consumers that
// only need misses and periodic counts should use a MissObserver
// instead.
type Observer interface {
	ObserveAccess(a memtrace.Access, r core.Result)
}

// MissCounters is one side's hot miss-bookkeeping state, owned by a
// MissObserver but updated inline by the hierarchy: a consumer that
// exposes it (via Counters) gets the common miss booked with a handful
// of inline stores — no call of any kind — and receives an ObserveMiss
// interface call only for the misses its slow path must see: one whose
// index reaches NextWin (a period boundary to close) or one that would
// take SampleIn below zero (a sample to take). The consumer reads the
// fields back when it renders; it must not touch them mid-replay.
type MissCounters struct {
	// NextWin is the access index at which the consumer's current
	// period closes (MaxUint64 when periods are off); a miss at or past
	// it is delivered via ObserveMiss so the consumer can close periods
	// retroactively at exact boundaries.
	NextWin uint64
	// Accesses is the consumer's access high-water mark. The inline
	// path rides it forward on each miss so a mid-replay snapshot never
	// sees more misses than accesses; SyncAccesses makes it exact.
	Accesses uint64
	// Served counts the current period's misses by the structure that
	// served them, indexed by core.ServedBy ([8] so a &7 mask replaces
	// the bounds check).
	Served [8]uint64
	// SampleIn counts misses down to the next sample. The inline path
	// only decrements it while it stays non-negative; the miss that
	// would drop it below zero goes through ObserveMiss, which re-arms
	// it.
	SampleIn int64
}

// MissObserver is the cheap replay tap: instead of seeing every access,
// it is called only on first-level misses and at flush boundaries. The
// hierarchy keeps no extra per-access state for it — the access index a
// miss carries is the side's own front-end counter, which the access
// just incremented — so the cost on the overwhelmingly common L1 hit is
// one nil check and one test of the already-loaded result. The same
// read-only contract as Observer applies.
type MissObserver interface {
	// ObserveMiss receives first-level misses with their resolution.
	// index is the 0-based per-side access index of the missing access
	// (the front-end's lifetime count); misses arrive in ascending
	// index order, so a consumer can place its own period boundaries
	// retroactively — an index at or past a boundary proves every
	// earlier period is complete. A consumer that exposes MissCounters
	// sees only the slow-path misses described there; one that returns
	// nil from Counters sees every miss.
	ObserveMiss(a memtrace.Access, r core.Result, index uint64)
	// Counters returns the side's inline-updated hot state, or nil to
	// receive every miss through ObserveMiss instead.
	Counters(instr bool) *MissCounters
	// SyncAccesses receives one side's exact running access count at
	// telemetry-flush boundaries (replay end, Results, FlushTelemetry,
	// and the periodic mid-replay flushes when a registry is attached).
	// All misses up to the counted access have already been delivered.
	SyncAccesses(instr bool, accesses uint64)
}

// AttachObserver installs o as the system's per-access observer; nil
// detaches. A system carries one observer of either kind, so this
// replaces a previous Observer or MissObserver alike. Like
// AttachTelemetry, attachment is not synchronized — attach before the
// replay starts.
func (s *System) AttachObserver(o Observer) {
	s.obs = o
	s.mobs = nil
}

// AttachMissObserver installs o as the system's miss observer, replacing
// any previous observer of either kind; nil detaches. The indices o
// receives are the front-ends' lifetime access counts, so attach to a
// fresh system — before its first access — for them to start at zero.
func (s *System) AttachMissObserver(o MissObserver) {
	s.obs = nil
	s.mobs = o
	s.imc, s.dmc = nil, nil
	if o != nil {
		s.imc, s.dmc = o.Counters(true), o.Counters(false)
	}
}

// New builds a system from cfg.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	for _, cc := range []cache.Config{cfg.L1I, cfg.L1D, cfg.L2} {
		if err := cc.Validate(); err != nil {
			return nil, err
		}
	}

	s := &System{cfg: cfg}

	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	s.l2 = l2
	// The L2 front-end's timing is irrelevant to the system performance
	// model (which works from counts), so baseline timing is fine. Its
	// fetch callback is main-memory traffic.
	l2aug := cfg.L2Augment
	if l2aug.Kind == None && cfg.L2VictimEntries > 0 {
		l2aug = Augment{Kind: VictimCache, Entries: cfg.L2VictimEntries}
	}
	memFetch := func(lineAddr uint64, prefetch bool) {
		if prefetch {
			s.mem.PrefetchFetches++
		} else {
			s.mem.DemandFetches++
		}
	}
	s.l2fe, err = buildFrontEnd(l2, l2aug, memFetch, cfg.Timing)
	if err != nil {
		return nil, err
	}

	l1i, err := cache.New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	s.l1iShift = shiftFor(cfg.L1I.LineSize)
	s.l1dShift = shiftFor(cfg.L1D.LineSize)

	s.ife, err = buildFrontEnd(l1i, cfg.IAugment, s.fetcher(&s.l2i, s.l1iShift), cfg.Timing)
	if err != nil {
		return nil, err
	}
	s.dfe, err = buildFrontEnd(l1d, cfg.DAugment, s.fetcher(&s.l2d, s.l1dShift), cfg.Timing)
	if err != nil {
		return nil, err
	}
	// buildFrontEnd only constructs core front-end types, so the counter
	// pointers are always available.
	s.iAcc = core.AccessCounter(s.ife)
	s.dAcc = core.AccessCounter(s.dfe)
	return s, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func shiftFor(lineSize int) uint {
	shift := uint(0)
	for ls := lineSize; ls > 1; ls >>= 1 {
		shift++
	}
	return shift
}

func buildFrontEnd(l1 *cache.Cache, aug Augment, fetch core.Fetcher, timing core.Timing) (core.FrontEnd, error) {
	switch aug.Kind {
	case None:
		return core.NewBaseline(l1, fetch, timing), nil
	case MissCache:
		return core.NewMissCache(l1, aug.Entries, fetch, timing), nil
	case VictimCache:
		return core.NewVictimCache(l1, aug.Entries, fetch, timing), nil
	case StreamBuffers:
		if err := aug.Stream.Validate(); err != nil {
			return nil, err
		}
		return core.NewStreamBuffer(l1, aug.Stream, fetch, timing), nil
	case VictimAndStream:
		if err := aug.Stream.Validate(); err != nil {
			return nil, err
		}
		return core.NewCombined(l1, aug.Entries, aug.Stream, fetch, timing), nil
	default:
		return nil, fmt.Errorf("hierarchy: unknown augmentation kind %d", aug.Kind)
	}
}

// fetcher routes a first-level fetch into the second level, attributing
// traffic to stats.
func (s *System) fetcher(stats *L2Stats, l1Shift uint) core.Fetcher {
	return func(lineAddr uint64, prefetch bool) {
		addr := lineAddr << l1Shift
		vcBefore := s.l2VictimHits()
		sbBefore := s.l2StreamHits()
		r := s.l2fe.Access(addr, false)
		if prefetch {
			stats.PrefetchAccesses++
			if r.FullMiss() {
				stats.PrefetchMisses++
			}
		} else {
			stats.DemandAccesses++
			if r.FullMiss() {
				stats.DemandMisses++
			}
		}
		stats.VictimHits += s.l2VictimHits() - vcBefore
		stats.StreamHits += s.l2StreamHits() - sbBefore
	}
}

func (s *System) l2VictimHits() uint64 { return s.l2fe.Stats().VictimHits }

func (s *System) l2StreamHits() uint64 { return s.l2fe.Stats().StreamHits }

// Access routes one trace reference. With telemetry attached, the only
// per-access telemetry cost is one pending-count increment; the outcome
// counters are derived from the simulator's stats and published every
// telFlushEvery references (and at replay/results boundaries).
func (s *System) Access(a memtrace.Access) {
	// An attached miss observer costs the (overwhelmingly common) L1 hit
	// one nil check and one test of the result already in hand. The miss
	// path reads the per-side access index back from the front-end that
	// just counted it, so the hierarchy tracks nothing per access, and
	// books the common miss inline into the observer's MissCounters —
	// the ObserveMiss interface call is reserved for the misses the
	// observer's slow path must see (a period boundary or a due sample).
	var r core.Result
	var mc *MissCounters
	var acc *uint64
	switch a.Kind {
	case memtrace.Ifetch:
		r = s.ife.Access(uint64(a.Addr), false)
		mc, acc = s.imc, s.iAcc
	case memtrace.Load:
		r = s.dfe.Access(uint64(a.Addr), false)
		mc, acc = s.dmc, s.dAcc
	case memtrace.Store:
		r = s.dfe.Access(uint64(a.Addr), true)
		mc, acc = s.dmc, s.dAcc
	}
	if s.mobs != nil && !r.L1Hit && acc != nil {
		idx := *acc - 1
		if mc != nil && idx < mc.NextWin && mc.SampleIn > 0 {
			if idx >= mc.Accesses {
				mc.Accesses = idx + 1
			}
			mc.Served[r.Served&7]++
			mc.SampleIn--
		} else {
			s.mobs.ObserveMiss(a, r, idx)
		}
	}
	if s.obs != nil {
		s.obs.ObserveAccess(a, r)
	}
	if s.tel != nil {
		s.tel.pending++
		if s.tel.pending >= telFlushEvery {
			// The full flush, not just flushTel: the MissObserver contract
			// promises SyncAccesses at the periodic mid-replay flush too,
			// so an observer's windows keep closing through miss-free
			// stretches of the trace.
			s.FlushTelemetry()
		}
	}
}

// Run replays an entire in-memory trace.
func (s *System) Run(t *memtrace.Trace) {
	t.Each(s.Access)
	s.FlushTelemetry()
}

// RunSource pulls src dry through the system. Replay memory is O(1) in
// stream length, so arbitrarily long traces (file readers, live workload
// generators) can be replayed without materializing them.
func (s *System) RunSource(src memtrace.Source) {
	memtrace.Each(src, s.Access)
	s.FlushTelemetry()
}

// RunSourceContext is RunSource with cooperative cancellation: the drain
// loop polls ctx and stops early with its error once the context is done,
// so multi-hour replays of huge traces stay interruptible. A completed
// replay returns nil.
func (s *System) RunSourceContext(ctx context.Context, src memtrace.Source) error {
	err := memtrace.EachContext(ctx, src, s.Access)
	s.FlushTelemetry()
	return err
}

// Access also satisfies memtrace.Sink, so a *System can be the direct
// target of a workload generator.
var _ memtrace.Sink = (*System)(nil)

// Results collects the run's counters and performance breakdown.
type Results struct {
	Instructions uint64
	I, D         core.Stats
	L2I, L2D     L2Stats
	Mem          MemStats
	Breakdown    perfmodel.Breakdown
}

// IMissRate returns the effective instruction miss rate.
func (r Results) IMissRate() float64 { return r.I.MissRate() }

// DMissRate returns the effective data miss rate.
func (r Results) DMissRate() float64 { return r.D.MissRate() }

// Results gathers counters after a run. instructions is the dynamic
// instruction count of the trace (its ifetch count). Buffered telemetry
// is flushed first, so registry and Results always agree at this point.
func (s *System) Results(instructions uint64) Results {
	s.FlushTelemetry()
	i, d := s.ife.Stats(), s.dfe.Stats()
	in := perfmodel.Inputs{
		Instructions:    instructions,
		L1IFullMisses:   i.FullMisses(),
		L1DFullMisses:   d.FullMisses(),
		IAuxHits:        i.AuxHits,
		DAuxHits:        d.AuxHits,
		L2IDemandMisses: s.l2i.DemandMisses,
		L2DDemandMisses: s.l2d.DemandMisses,
	}
	return Results{
		Instructions: instructions,
		I:            i,
		D:            d,
		L2I:          s.l2i,
		L2D:          s.l2d,
		Mem:          s.mem,
		Breakdown:    perfmodel.Compute(in, s.cfg.Perf),
	}
}

// MergeResults combines the per-shard results of a set-partitioned
// replay into the results of the equivalent sequential replay. Every
// stats field is a plain event count over a disjoint slice of the
// address stream, so the sums are exact, and the performance breakdown
// is recomputed from the merged counts with cfg's parameters — the same
// pure function of the same integers Results would have computed
// sequentially, hence bit-identical floats. instructions is the whole
// trace's dynamic instruction count (counted once at the producer; the
// per-shard results carry no meaningful instruction count of their own).
func MergeResults(cfg Config, instructions uint64, parts ...Results) Results {
	cfg = cfg.withDefaults()
	out := Results{Instructions: instructions}
	for _, p := range parts {
		out.I.Add(p.I)
		out.D.Add(p.D)
		out.L2I.Add(p.L2I)
		out.L2D.Add(p.L2D)
		out.Mem.Add(p.Mem)
	}
	in := perfmodel.Inputs{
		Instructions:    instructions,
		L1IFullMisses:   out.I.FullMisses(),
		L1DFullMisses:   out.D.FullMisses(),
		IAuxHits:        out.I.AuxHits,
		DAuxHits:        out.D.AuxHits,
		L2IDemandMisses: out.L2I.DemandMisses,
		L2DDemandMisses: out.L2D.DemandMisses,
	}
	out.Breakdown = perfmodel.Compute(in, cfg.Perf)
	return out
}

// IFrontEnd returns the instruction-side front-end (for inspection).
func (s *System) IFrontEnd() core.FrontEnd { return s.ife }

// DFrontEnd returns the data-side front-end (for inspection).
func (s *System) DFrontEnd() core.FrontEnd { return s.dfe }

// L2Cache returns the second-level cache array.
func (s *System) L2Cache() *cache.Cache { return s.l2 }

// Config returns the (defaulted) configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// InclusionReport quantifies the multilevel inclusion property (Baer &
// Wang): how many lines resident in a first-level structure are absent
// from the second-level cache. The paper's §3.5 observes that victim
// caches violate inclusion (they deliberately retain lines the hierarchy
// has pushed out), as do mismatched line sizes.
type InclusionReport struct {
	// ILines / DLines are the resident line counts of the first-level
	// caches (plus their miss/victim caches).
	ILines int
	DLines int
	// IViolations / DViolations count those lines that are not present
	// in the second-level cache.
	IViolations int
	DViolations int
}

// Inclusion scans current cache contents and reports violations.
func (s *System) Inclusion() InclusionReport {
	var r InclusionReport
	count := func(fe core.FrontEnd, shift uint) (lines, violations int) {
		resident := fe.Cache().ResidentLines()
		if aux, ok := fe.(core.AuxResidents); ok {
			resident = append(resident, aux.AuxResidentLines()...)
		}
		for _, la := range resident {
			lines++
			if !s.l2.Contains(la << shift) {
				violations++
			}
		}
		return lines, violations
	}
	r.ILines, r.IViolations = count(s.ife, s.l1iShift)
	r.DLines, r.DViolations = count(s.dfe, s.l1dShift)
	return r
}
