package hierarchy

import (
	"strings"
	"testing"

	"jouppi/internal/core"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/workload"
)

func telemetryTestTrace(t *testing.T) *memtrace.Trace {
	t.Helper()
	return workload.GenerateTrace(workload.MustByName("ccom"), 0.02)
}

// TestAttachTelemetryMatchesStats replays a workload on an instrumented
// combined system and checks every live counter against the plain Stats
// the same run accumulated.
func TestAttachTelemetryMatchesStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IAugment = Augment{Kind: StreamBuffers, Stream: core.StreamConfig{Ways: 1}}
	cfg.DAugment = Augment{Kind: VictimAndStream, Entries: 4, Stream: core.StreamConfig{Ways: 4}}
	sys := MustNew(cfg)
	reg := telemetry.NewRegistry()
	sys.AttachTelemetry(reg)

	sys.Run(telemetryTestTrace(t))

	snap := reg.Snapshot()
	res := sys.Results(0)

	want := map[string]uint64{
		"sim_l1i_accesses_total":         res.I.Accesses,
		"sim_l1i_l1_hits_total":          res.I.L1Hits,
		"sim_l1i_aux_hits_total":         res.I.AuxHits,
		"sim_l1i_stream_hits_total":      res.I.StreamHits,
		"sim_l1i_full_misses_total":      res.I.FullMisses(),
		"sim_l1d_accesses_total":         res.D.Accesses,
		"sim_l1d_l1_hits_total":          res.D.L1Hits,
		"sim_l1d_aux_hits_total":         res.D.AuxHits,
		"sim_l1d_victim_hits_total":      res.D.VictimHits,
		"sim_l1d_stream_hits_total":      res.D.StreamHits,
		"sim_l1d_miss_cache_hits_total":  res.D.MissCacheHits,
		"sim_l1d_full_misses_total":      res.D.FullMisses(),
		"sim_l2_demand_accesses_total":   res.L2I.DemandAccesses + res.L2D.DemandAccesses,
		"sim_l2_demand_misses_total":     res.L2I.DemandMisses + res.L2D.DemandMisses,
		"sim_l2_prefetch_accesses_total": res.L2I.PrefetchAccesses + res.L2D.PrefetchAccesses,
		"sim_l2_prefetch_misses_total":   res.L2I.PrefetchMisses + res.L2D.PrefetchMisses,
		"sim_mem_demand_fetches_total":   res.Mem.DemandFetches,
		"sim_mem_prefetch_fetches_total": res.Mem.PrefetchFetches,
	}
	for name, v := range want {
		got, ok := snap[name]
		if !ok {
			t.Errorf("counter %s not registered", name)
			continue
		}
		if got != float64(v) {
			t.Errorf("%s = %v, want %d", name, got, v)
		}
	}
	if res.D.AuxHits == 0 {
		t.Error("test workload produced no data-side aux hits; counters untested")
	}

	// The cache arrays were instrumented too, under their config names.
	l1d := sys.DFrontEnd().Cache().Stats()
	if got := snap["sim_cache_L1D_hits_total"]; got != float64(l1d.Hits) {
		t.Errorf("sim_cache_L1D_hits_total = %v, want %d", got, l1d.Hits)
	}
	if got := snap["sim_cache_L1D_misses_total"]; got != float64(l1d.Misses) {
		t.Errorf("sim_cache_L1D_misses_total = %v, want %d", got, l1d.Misses)
	}
	l2 := sys.L2Cache().Stats()
	if got := snap["sim_cache_L2_fills_total"]; got != float64(l2.Fills) {
		t.Errorf("sim_cache_L2_fills_total = %v, want %d", got, l2.Fills)
	}

	// The Prometheus exposition carries the same values.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, name := range []string{"sim_l1d_victim_hits_total", "sim_l2_demand_accesses_total"} {
		if !strings.Contains(sb.String(), name+" ") {
			t.Errorf("Prometheus output missing %s", name)
		}
	}
}

// TestAttachTelemetryIdentical verifies the acceptance criterion that an
// attached registry does not perturb simulation results: two identical
// systems, one instrumented, must agree on every counter after the same
// replay.
func TestAttachTelemetryIdentical(t *testing.T) {
	tr := telemetryTestTrace(t)
	cfg := DefaultConfig()
	cfg.DAugment = Augment{Kind: VictimAndStream, Entries: 4, Stream: core.StreamConfig{Ways: 4}}

	plain := MustNew(cfg)
	instr := MustNew(cfg)
	instr.AttachTelemetry(telemetry.NewRegistry())

	plain.Run(tr)
	instr.Run(tr)

	if a, b := plain.Results(tr.Instructions()), instr.Results(tr.Instructions()); a != b {
		t.Errorf("telemetry changed results:\nplain: %+v\ninstr: %+v", a, b)
	}
}

// TestAttachTelemetryDetach checks that AttachTelemetry(nil) stops the
// counter feed.
func TestAttachTelemetryDetach(t *testing.T) {
	sys := MustNew(DefaultConfig())
	reg := telemetry.NewRegistry()
	sys.AttachTelemetry(reg)
	sys.AttachTelemetry(nil)

	sys.Run(telemetryTestTrace(t))

	if got := reg.Snapshot()["sim_l1i_accesses_total"]; got != 0 {
		t.Errorf("detached system still counted %v accesses", got)
	}
}
