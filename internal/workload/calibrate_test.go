package workload

import (
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/classify"
	"jouppi/internal/memtrace"
)

// TestCalibrationReport prints each benchmark's baseline behaviour against
// the paper's Table 2-1/2-2 and Figure 3-1 targets. Run with -v to see the
// table; assertions are deliberately loose (band checks live in
// paper_test.go).
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short mode")
	}
	t.Logf("%-8s %10s %10s %7s %7s %8s %8s %8s",
		"bench", "instr", "datarefs", "imr", "dmr", "iconf%", "dconf%", "d/i")
	for _, b := range All() {
		tr := GenerateTrace(b, 0.25)

		l1i := cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 1})
		l1d := cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 1})
		ci := classify.MustNew(4096, 16)
		cd := classify.MustNew(4096, 16)

		tr.Each(func(a memtrace.Access) {
			if a.Kind == memtrace.Ifetch {
				hit, _ := l1i.Access(uint64(a.Addr), false)
				ci.ObserveMiss(uint64(a.Addr), !hit)
			} else {
				hit, _ := l1d.Access(uint64(a.Addr), a.Kind == memtrace.Store)
				cd.ObserveMiss(uint64(a.Addr), !hit)
			}
		})

		imr := l1i.Stats().MissRate()
		dmr := l1d.Stats().MissRate()
		iconf, dconf := 0.0, 0.0
		if m := ci.Counts().Total(); m > 0 {
			iconf = float64(ci.Counts().Conflict) / float64(m) * 100
		}
		if m := cd.Counts().Total(); m > 0 {
			dconf = float64(cd.Counts().Conflict) / float64(m) * 100
		}
		ratio := float64(tr.DataRefs()) / float64(tr.Instructions())
		t.Logf("%-8s %10d %10d %7.4f %7.4f %7.1f%% %7.1f%% %8.2f",
			b.Name(), tr.Instructions(), tr.DataRefs(), imr, dmr, iconf, dconf, ratio)
	}
}
