package workload

import "jouppi/internal/memtrace"

// grr is a behavioural model of a printed-circuit-board router (DEC's
// internal "grr" CAD tool): for each net it runs a Lee-style wavefront
// expansion over a large routing grid — breadth-first search with a work
// queue — then backtraces the found path and marks it. The wavefront has
// strong 2-D locality (neighbour probes around a slowly moving frontier),
// the work queue contributes sequential streams, per-layer obstacle tables
// contribute mapping conflicts, and the routing-heuristic procedure fabric
// is large enough that the instruction cache sees steady conflict traffic
// — grr and yacc are the paper's examples of programs with above-average
// conflict-miss fractions.
type grr struct{}

// Grr returns the PC-board-router benchmark.
func Grr() Benchmark { return grr{} }

func (grr) Name() string        { return "grr" }
func (grr) Description() string { return "PC board CAD" }

func (grr) Generate(scale float64, sink memtrace.Sink) {
	g := newGen(sink, 0x6121)

	const width = 256 // grid cells per row
	const height = 256
	const cell = 2 // bytes per grid cell

	mem := newLayout(dataBase)
	grid := array{base: mem.alloc(width*height*cell, 64), elem: cell}
	// Offset the cost array by half the 4KB cache so grid[i] and cost[i]
	// do not collide (they are always accessed together).
	cost := array{base: mem.allocAt(width*height*cell, 4096, 2048), elem: cell}
	queue := array{base: mem.alloc(1<<20, 64), elem: 4}
	nets := array{base: mem.alloc(1<<18, 64), elem: 16}
	path := array{base: mem.alloc(1<<16, 64), elem: 4}
	// Per-layer obstacle tables that collide in the cache: checked
	// alternately during expansion.
	obstA := array{base: mem.allocAt(32<<10, 4096, 0x80), elem: 4}
	obstB := array{base: mem.allocAt(32<<10, 4096, 0x80), elem: 4}

	procs := newProcAllocator()
	pMain := procs.place(320)
	pRoute := procs.place(512)
	pExpand := procs.place(384)
	pProbe := procs.place(128)
	pBacktrace := procs.place(256)
	pMark := procs.place(96)
	pObst := procs.place(112)
	// Routing heuristics: cost evaluation differs by net class, layer,
	// and congestion — a fabric of mid-sized procedures that overflows a
	// 4KB instruction cache when cycled.
	const nHeur = 26
	heur := make([]proc, nHeur)
	for i := range heur {
		heur[i] = procs.place(224 + 32*(i%5))
	}

	cellAt := func(x, y int) int { return y*width + x }

	// The moving wavefront frontier for the current net.
	cx, cy := width/2, height/2

	// probe examines one neighbour cell: grid load, cost compare, and on
	// acceptance a cost store plus queue append.
	qHead, qTail := 0, 0
	probe := func(idx int) {
		g.call(pProbe, 1, func() {
			g.load(grid.at(idx))
			g.exec(3)
			g.load(cost.at(idx))
			g.exec(2)
			if g.chance(2, 5) { // cell improves: relax and enqueue
				g.store(cost.at(idx))
				g.store(queue.at(qTail % (1 << 18)))
				qTail++
				g.exec(2)
			}
		})
	}

	// checkObstacles consults the two per-layer tables around the
	// frontier — the alternating conflicting-pair pattern.
	checkObstacles := func(idx int) {
		g.call(pObst, 1, func() {
			g.exec(2)
			g.load(obstA.at(idx % 8000))
			g.exec(2)
			g.load(obstB.at(idx % 8000))
			g.exec(2)
		})
	}

	// evaluate runs the net's cost heuristic for the frontier cell.
	evaluate := func(h int, idx int) {
		g.call(heur[h], 2, func() {
			g.exec(28 + h%9)
			g.load(cost.at(idx))
			g.exec(24)
		})
	}

	// expand pops one frontier cell and probes its four neighbours. The
	// frontier drifts a few cells per expansion, as a real wavefront
	// does.
	expand := func(h int) {
		g.call(pExpand, 2, func() {
			g.exec(3)
			g.load(queue.at(qHead % (1 << 18)))
			qHead++
			cx += g.rand(3) - 1
			if g.chance(1, 4) {
				cy += g.rand(3) - 1
			}
			if cx < 1 {
				cx = 1
			} else if cx > width-2 {
				cx = width - 2
			}
			if cy < 1 {
				cy = 1
			} else if cy > height-2 {
				cy = height - 2
			}
			idx := cellAt(cx, cy)
			g.load(grid.at(idx))
			g.exec(2)
			evaluate(g.rand(nHeur), idx)
			if g.chance(1, 3) { // cell flagged: consult the layer tables
				checkObstacles(idx)
			}
			_ = h
			probe(cellAt(cx+1, cy))
			probe(cellAt(cx-1, cy))
			probe(cellAt(cx, cy+1))
			probe(cellAt(cx, cy-1))
		})
	}

	// backtrace walks the found path back to the source, marking cells.
	backtrace := func(steps int) {
		g.call(pBacktrace, 2, func() {
			x, y := cx, cy
			g.loop(steps, func(i int) {
				idx := cellAt(x, y)
				g.load(cost.at(idx))
				g.exec(3)
				g.call(pMark, 1, func() {
					g.store(grid.at(idx))
					g.store(path.at(i % (1 << 14)))
					g.exec(2)
				})
				// Step toward the source along one axis.
				if g.chance(1, 2) && x > 1 {
					x--
				} else if y > 1 {
					y--
				}
			})
		})
	}

	netsToRoute := int(scale*420 + 0.5)
	if netsToRoute < 1 {
		netsToRoute = 1
	}
	g.call(pMain, 4, func() {
		g.loop(netsToRoute, func(netIdx int) {
			g.exec(4)
			g.load(nets.at(netIdx % (1 << 14)))
			g.load(nets.at(netIdx%(1<<14) + 1))
			// New net: the wavefront restarts at the net's pins.
			cx, cy = 1+g.rand(width-2), 1+g.rand(height-2)
			h := g.rand(nHeur)
			g.call(pRoute, 3, func() {
				g.exec(6)
				g.loop(40+g.rand(80), func(e int) {
					expand(h)
				})
				backtrace(10 + g.rand(30))
			})
		})
	})
}
