package workload

import "jouppi/internal/memtrace"

// Address-space layout shared by the behavioural generators. Segments are
// far apart so they never alias accidentally; conflict behaviour comes
// only from cache geometry (addresses congruent modulo the cache size).
const (
	textBase  = 0x0010_0000 // program text
	dataBase  = 0x1000_0000 // statics, heaps, tables
	stackBase = 0x7fff_f000 // grows down
	instrSize = 4           // one instruction fetch every 4 bytes
)

// gen is the little machine the behavioural benchmarks run on: a program
// counter emitting instruction fetches, a data path emitting loads and
// stores, a stack, and a deterministic PRNG.
type gen struct {
	sink memtrace.Sink
	pc   uint64
	sp   uint64
	rng  uint64
}

func newGen(sink memtrace.Sink, seed uint64) *gen {
	return &gen{sink: sink, pc: textBase, sp: stackBase, rng: seed*2654435761 | 1}
}

// rand returns a deterministic pseudo-random integer in [0, n).
func (g *gen) rand(n int) int {
	// xorshift64*
	g.rng ^= g.rng >> 12
	g.rng ^= g.rng << 25
	g.rng ^= g.rng >> 27
	return int((g.rng * 2685821657736338717) >> 33 % uint64(n))
}

// chance reports true with probability num/den.
func (g *gen) chance(num, den int) bool { return g.rand(den) < num }

// exec emits n sequential instruction fetches.
func (g *gen) exec(n int) {
	for i := 0; i < n; i++ {
		g.sink.Access(memtrace.Access{Addr: memtrace.Addr(g.pc), Kind: memtrace.Ifetch})
		g.pc += instrSize
	}
}

// jump emits the branch instruction at the current pc and transfers
// control to target.
func (g *gen) jump(target uint64) {
	g.exec(1)
	g.pc = target
}

// load and store emit data references.
func (g *gen) load(addr uint64) {
	g.sink.Access(memtrace.Access{Addr: memtrace.Addr(addr), Kind: memtrace.Load})
}

func (g *gen) store(addr uint64) {
	g.sink.Access(memtrace.Access{Addr: memtrace.Addr(addr), Kind: memtrace.Store})
}

// loop runs body iters times with a backward branch after each iteration,
// so the instruction fetches of every iteration cover the same text
// addresses — the fundamental loop locality the I-cache sees.
func (g *gen) loop(iters int, body func(i int)) {
	if iters <= 0 {
		return
	}
	top := g.pc
	for i := 0; i < iters; i++ {
		g.pc = top
		body(i)
		g.exec(1) // the backward branch (falls through on the last pass)
	}
}

// proc is a procedure placed in the text segment.
type proc struct {
	base uint64
}

// call transfers control to p with callWords of register save/restore
// traffic on the stack, runs body, and returns. The body's instruction
// fetches start at p.base on every call, giving procedures stable
// footprints that conflict (or not) purely by their placement.
func (g *gen) call(p proc, saveWords int, body func()) {
	g.exec(1) // the call instruction
	ret := g.pc
	sp := g.sp
	g.sp -= uint64(8 * (saveWords + 2))
	g.pc = p.base
	for i := 0; i < saveWords; i++ {
		g.store(g.sp + uint64(8*i))
	}
	body()
	for i := 0; i < saveWords; i++ {
		g.load(g.sp + uint64(8*i))
	}
	g.exec(1) // the return instruction
	g.sp = sp
	g.pc = ret
}

// layout hands out non-overlapping memory regions.
type layout struct{ next uint64 }

func newLayout(base uint64) *layout { return &layout{next: base} }

// alloc returns size bytes aligned to align (a power of two).
func (l *layout) alloc(size, align uint64) uint64 {
	l.next = (l.next + align - 1) &^ (align - 1)
	addr := l.next
	l.next += size
	return addr
}

// allocAt returns a region whose address is congruent to offset modulo
// modulus — the tool for constructing deliberate cache conflicts.
func (l *layout) allocAt(size, modulus, offset uint64) uint64 {
	l.next = (l.next + modulus - 1) &^ (modulus - 1)
	addr := l.next + offset
	l.next = addr + size
	return addr
}

// array is a traced array of fixed-size elements.
type array struct {
	base uint64
	elem uint64
}

func (a array) at(i int) uint64 { return a.base + uint64(i)*a.elem }

// procAllocator places procedures in the text segment. Procedures are
// padded to 16-byte boundaries like real linkers do.
type procAllocator struct{ l layout }

func newProcAllocator() *procAllocator {
	return &procAllocator{l: layout{next: textBase}}
}

// place returns a procedure of the given size in bytes.
func (pa *procAllocator) place(size int) proc {
	return proc{base: pa.l.alloc(uint64(size), 16)}
}

// placeConflicting returns a procedure whose start collides with addr
// modulo modulus (e.g. the I-cache size), forcing mapping conflicts.
func (pa *procAllocator) placeConflicting(size int, modulus, addr uint64) proc {
	return proc{base: pa.l.allocAt(uint64(size), modulus, addr%modulus)}
}
