package workload

import "jouppi/internal/memtrace"

// ccom is a behavioural model of a C compiler front end, the paper's
// first benchmark. Per compiled function it runs the classic phases:
//
//   - lexing: a sequential scan of the source buffer producing a token
//     stream, with identifier interning through a hash table whose probe
//     occasionally degenerates into a character-by-character comparison of
//     two strings — the paper's §3.1 example of a tight data conflict;
//   - parsing: recursive descent across many small procedures, allocating
//     expression-tree nodes bump-pointer style on a heap;
//   - semantic analysis and code generation: depth-first walks of the
//     tree just built (pointer-chasing loads) emitting to a sequential
//     output buffer.
//
// The text segment holds ~120 procedures spread over ~80KB, so the call
// fabric sweeps working sets much larger than a 4KB instruction cache —
// the source of ccom's high instruction miss rate.
type ccom struct{}

// Ccom returns the C-compiler benchmark.
func Ccom() Benchmark { return ccom{} }

func (ccom) Name() string        { return "ccom" }
func (ccom) Description() string { return "C compiler" }

func (ccom) Generate(scale float64, sink memtrace.Sink) {
	g := newGen(sink, 0xCC04)

	mem := newLayout(dataBase)
	src := array{base: mem.alloc(1<<20, 64), elem: 1}      // source text
	tokens := array{base: mem.alloc(1<<20, 64), elem: 8}   // token records
	heap := array{base: mem.alloc(8<<20, 64), elem: 8}     // AST node words
	hashTab := array{base: mem.alloc(64<<10, 64), elem: 8} // symbol buckets
	symtab := array{base: mem.alloc(1<<20, 64), elem: 8}   // symbol records
	// Two string-storage areas that collide in a 4KB cache: interning
	// compares a new identifier against a stored one, alternating loads
	// between conflicting lines.
	strA := array{base: mem.allocAt(64<<10, 4096, 0x40), elem: 1}
	strB := array{base: mem.allocAt(64<<10, 4096, 0x40), elem: 1}
	out := array{base: mem.alloc(2<<20, 64), elem: 8} // generated code

	procs := newProcAllocator()
	// The parser/semantic fabric: many small procedures.
	const nParse = 48
	const nSema = 40
	const nGen = 32
	parseProcs := make([]proc, nParse)
	for i := range parseProcs {
		parseProcs[i] = procs.place(96 + 16*(i%12))
	}
	semaProcs := make([]proc, nSema)
	for i := range semaProcs {
		semaProcs[i] = procs.place(112 + 16*(i%10))
	}
	genProcs := make([]proc, nGen)
	for i := range genProcs {
		genProcs[i] = procs.place(128 + 16*(i%8))
	}
	pLex := procs.place(448)
	pIntern := procs.place(192)
	pStrcmp := procs.place(64)
	pAlloc := procs.place(80)
	pEmit := procs.place(96)
	pMain := procs.place(256)

	srcPos := 0
	tokPos := 0
	heapPos := 0
	strApos := 0
	strBpos := 0
	outPos := 0

	// intern hashes an identifier and, on a partial match, compares it
	// byte-by-byte against the stored copy (the conflict-pair pattern).
	intern := func() {
		g.call(pIntern, 2, func() {
			g.exec(6) // hash computation
			// Identifier frequency is Zipf-like: most probes land on a
			// small set of hot buckets (common identifiers), the rest
			// spray across the full table.
			bucket := g.rand(256)
			if g.chance(1, 5) {
				bucket = g.rand(8192)
			}
			g.load(hashTab.at(bucket))
			g.exec(2)
			if g.chance(2, 3) {
				// Chain entry: load the symbol record.
				rec := g.rand(96) * 4
				if g.chance(1, 5) {
					rec = g.rand(4096) * 4
				}
				g.load(symtab.at(rec))
				g.load(symtab.at(rec + 1))
				g.exec(2)
				if g.chance(1, 3) {
					// Full string comparison between the probe string
					// (built in strA) and the stored name (in strB).
					g.call(pStrcmp, 1, func() {
						length := 4 + g.rand(12)
						g.loop(length, func(i int) {
							g.load(strA.at((strApos + i) % (48 << 10)))
							g.load(strB.at((strBpos + i) % (48 << 10)))
							g.exec(3)
						})
						strApos += length
						strBpos += length
					})
				}
			} else {
				// New symbol: append a record.
				rec := g.rand(4096) * 4
				g.store(symtab.at(rec))
				g.store(symtab.at(rec + 1))
				g.exec(3)
			}
		})
	}

	// lex scans forward through the source, producing one token.
	lex := func() {
		g.call(pLex, 3, func() {
			g.exec(4)
			span := 2 + g.rand(8) // bytes consumed
			for b := 0; b < span; b += 4 {
				g.load(src.at((srcPos + b) % (1 << 20)))
				g.exec(3)
			}
			srcPos += span
			g.store(tokens.at(tokPos % (1 << 17)))
			tokPos++
			if g.chance(1, 4) {
				intern()
			}
		})
	}

	// allocNode bump-allocates an AST node (6 words) and returns its
	// index in the heap.
	allocNode := func() int {
		idx := heapPos
		g.call(pAlloc, 1, func() {
			g.exec(3)
			for w := 0; w < 6; w++ {
				g.store(heap.at((idx + w) % (1 << 20)))
			}
		})
		heapPos += 6
		return idx
	}

	// parse builds an expression tree of bounded depth, consuming
	// tokens, and returns the node indices in construction order.
	var nodes []int
	var parse func(depth int)
	parse = func(depth int) {
		p := parseProcs[g.rand(nParse)]
		g.call(p, 2, func() {
			g.exec(5 + g.rand(8))
			lex()
			idx := allocNode()
			nodes = append(nodes, idx)
			if depth > 0 {
				kids := 1 + g.rand(2)
				for c := 0; c < kids; c++ {
					g.exec(2)
					parse(depth - 1)
				}
			}
		})
	}

	// walk revisits the tree nodes (pointer-chasing loads) through the
	// semantic/codegen procedure fabric, emitting output words.
	walk := func(procsArr []proc, nProcs int, emit bool) {
		for _, idx := range nodes {
			p := procsArr[g.rand(nProcs)]
			g.call(p, 2, func() {
				g.exec(4 + g.rand(6))
				for w := 0; w < 3; w++ {
					g.load(heap.at((idx + w) % (1 << 20)))
				}
				g.exec(3)
				if emit {
					g.call(pEmit, 1, func() {
						g.exec(3)
						words := 1 + g.rand(3)
						for w := 0; w < words; w++ {
							g.store(out.at(outPos % (1 << 17)))
							outPos++
						}
					})
				} else {
					g.store(heap.at((idx + 4) % (1 << 20)))
				}
			})
		}
	}

	functions := int(scale*260 + 0.5)
	if functions < 1 {
		functions = 1
	}
	g.call(pMain, 4, func() {
		g.loop(functions, func(f int) {
			g.exec(6)
			// Per-function arenas: the AST heap and token buffer are
			// recycled when a function's compilation finishes, as real
			// compilers do.
			heapPos = 0
			tokPos = 0
			stmts := 3 + g.rand(6)
			g.loop(stmts, func(s int) {
				// Statement-at-a-time: parse, analyse, and generate
				// code for each statement's tree while it is hot.
				nodes = nodes[:0]
				parse(2 + g.rand(3))
				walk(semaProcs, nSema, false)
				walk(genProcs, nGen, true)
			})
		})
	})
}
