package workload

import (
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/memtrace"
)

func TestAllReturnsSixInPaperOrder(t *testing.T) {
	want := []string{"ccom", "grr", "yacc", "met", "linpack", "liver"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d benchmarks, want %d", len(all), len(want))
	}
	for i, b := range all {
		if b.Name() != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, b.Name(), want[i])
		}
		if b.Description() == "" {
			t.Errorf("%s has empty description", b.Name())
		}
	}
	if names := Names(); len(names) != 6 || names[0] != "ccom" {
		t.Errorf("Names() = %v", names)
	}
}

func TestByName(t *testing.T) {
	if b, ok := ByName("linpack"); !ok || b.Name() != "linpack" {
		t.Error("ByName(linpack) failed")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName accepted unknown name")
	}
	if MustByName("liver").Name() != "liver" {
		t.Error("MustByName failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic on unknown name")
		}
	}()
	MustByName("nosuch")
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	for _, b := range All() {
		a := GenerateTrace(b, 0.02)
		c := GenerateTrace(b, 0.02)
		if a.Len() != c.Len() {
			t.Fatalf("%s: lengths differ between runs: %d vs %d", b.Name(), a.Len(), c.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != c.At(i) {
				t.Fatalf("%s: access %d differs: %v vs %v", b.Name(), i, a.At(i), c.At(i))
			}
		}
	}
}

func TestScaleGrowsTraces(t *testing.T) {
	for _, b := range All() {
		small := GenerateTrace(b, 0.05)
		big := GenerateTrace(b, 0.2)
		if big.Len() <= small.Len() {
			t.Errorf("%s: scale 0.2 trace (%d) not larger than 0.05 (%d)",
				b.Name(), big.Len(), small.Len())
		}
	}
}

func TestTracesAreWellFormed(t *testing.T) {
	for _, b := range All() {
		tr := GenerateTrace(b, 0.05)
		if tr.Instructions() == 0 {
			t.Errorf("%s: no instructions", b.Name())
		}
		if tr.DataRefs() == 0 {
			t.Errorf("%s: no data refs", b.Name())
		}
		// Every instruction fetch must be 4-byte aligned and in the text
		// segment; data refs must be outside it.
		bad := 0
		tr.Each(func(a memtrace.Access) {
			if a.Kind == memtrace.Ifetch {
				if uint64(a.Addr)%4 != 0 || uint64(a.Addr) < textBase || uint64(a.Addr) >= dataBase {
					bad++
				}
			} else {
				if uint64(a.Addr) < dataBase {
					bad++
				}
			}
		})
		if bad > 0 {
			t.Errorf("%s: %d malformed accesses", b.Name(), bad)
		}
		// The data/instruction ratio should be in a plausible range
		// (Table 2-1 ratios are 0.2–0.5; generators run 0.2–0.9).
		ratio := float64(tr.DataRefs()) / float64(tr.Instructions())
		if ratio < 0.1 || ratio > 1.2 {
			t.Errorf("%s: data/instr ratio %.2f out of range", b.Name(), ratio)
		}
	}
}

// runBaseline replays a benchmark against the paper's baseline 4KB split
// I/D caches and returns the miss rates.
func runBaseline(t *testing.T, b Benchmark, scale float64) (imr, dmr float64) {
	t.Helper()
	tr := GenerateTrace(b, scale)
	l1i := cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 1})
	l1d := cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 1})
	tr.Each(func(a memtrace.Access) {
		if a.Kind == memtrace.Ifetch {
			l1i.Access(uint64(a.Addr), false)
		} else {
			l1d.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		}
	})
	return l1i.Stats().MissRate(), l1d.Stats().MissRate()
}

// TestBaselineMissRateBands asserts each benchmark's baseline miss rates
// stay within a calibration band around the paper's Table 2-2. The bands
// are generous (the generators are models, not the original traces) but
// tight enough to catch regressions that would change experiment shapes.
func TestBaselineMissRateBands(t *testing.T) {
	bands := map[string]struct{ iLo, iHi, dLo, dHi float64 }{
		"ccom":    {0.06, 0.14, 0.08, 0.17},
		"grr":     {0.035, 0.09, 0.04, 0.10},
		"yacc":    {0.012, 0.045, 0.025, 0.08},
		"met":     {0.006, 0.030, 0.020, 0.06},
		"linpack": {0.0, 0.005, 0.10, 0.25},
		"liver":   {0.0, 0.005, 0.20, 0.40},
	}
	for _, b := range All() {
		band := bands[b.Name()]
		imr, dmr := runBaseline(t, b, 0.25)
		if imr < band.iLo || imr > band.iHi {
			t.Errorf("%s: instruction miss rate %.4f outside [%.3f, %.3f]",
				b.Name(), imr, band.iLo, band.iHi)
		}
		if dmr < band.dLo || dmr > band.dHi {
			t.Errorf("%s: data miss rate %.4f outside [%.3f, %.3f]",
				b.Name(), dmr, band.dLo, band.dHi)
		}
	}
}

func TestGenEmitsExpectedShapes(t *testing.T) {
	tr := memtrace.NewTrace(0)
	g := newGen(tr, 1)
	g.exec(3)
	if tr.Len() != 3 || tr.Instructions() != 3 {
		t.Fatalf("exec emitted %d accesses", tr.Len())
	}
	if tr.At(1).Addr != tr.At(0).Addr+4 {
		t.Error("exec addresses not sequential")
	}
	g.load(0x2000_0000)
	g.store(0x2000_0008)
	if tr.Loads() != 1 || tr.Stores() != 1 {
		t.Error("load/store counts wrong")
	}
}

func TestGenLoopRepeatsText(t *testing.T) {
	tr := memtrace.NewTrace(0)
	g := newGen(tr, 1)
	g.loop(3, func(i int) { g.exec(2) })
	// Each iteration: 2 body instructions + 1 branch, at identical
	// addresses across iterations.
	if tr.Len() != 9 {
		t.Fatalf("loop emitted %d accesses, want 9", tr.Len())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(i*3+j).Addr != tr.At(j).Addr {
				t.Fatalf("iteration %d instruction %d at %#x, want %#x",
					i, j, tr.At(i*3+j).Addr, tr.At(j).Addr)
			}
		}
	}
	// Zero iterations emit nothing.
	before := tr.Len()
	g.loop(0, func(int) { g.exec(5) })
	if tr.Len() != before {
		t.Error("empty loop emitted accesses")
	}
}

func TestGenCallRestoresState(t *testing.T) {
	tr := memtrace.NewTrace(0)
	g := newGen(tr, 1)
	p := proc{base: textBase + 0x1000}
	pcBefore, spBefore := g.pc, g.sp
	g.call(p, 2, func() {
		if g.pc != p.base {
			t.Errorf("body pc = %#x, want %#x", g.pc, p.base)
		}
		if g.sp >= spBefore {
			t.Error("sp did not descend for frame")
		}
		g.exec(4)
	})
	if g.pc != pcBefore+4 {
		t.Errorf("pc after call = %#x, want %#x", g.pc, pcBefore+4)
	}
	if g.sp != spBefore {
		t.Error("sp not restored after call")
	}
	// 2 saves + 2 restores of the frame words.
	if tr.Stores() != 2 || tr.Loads() != 2 {
		t.Errorf("frame traffic = %d stores / %d loads, want 2/2", tr.Stores(), tr.Loads())
	}
}

func TestLayoutAllocators(t *testing.T) {
	l := newLayout(0x1000)
	a := l.alloc(100, 64)
	b := l.alloc(100, 64)
	if a%64 != 0 || b%64 != 0 {
		t.Error("alloc alignment violated")
	}
	if b < a+100 {
		t.Error("alloc regions overlap")
	}
	c := l.allocAt(64, 4096, 0x123)
	if c%4096 != 0x123 {
		t.Errorf("allocAt offset = %#x, want 0x123", c%4096)
	}
	pa := newProcAllocator()
	p1 := pa.place(100)
	p2 := pa.placeConflicting(100, 4096, p1.base)
	if p1.base%16 != 0 {
		t.Error("proc not 16-byte aligned")
	}
	if p2.base%4096 != p1.base%4096 {
		t.Error("placeConflicting offset mismatch")
	}
	if p2.base == p1.base {
		t.Error("conflicting proc at identical address")
	}
}

func TestRandDeterministicAndBounded(t *testing.T) {
	g1 := newGen(memtrace.NewTrace(0), 42)
	g2 := newGen(memtrace.NewTrace(0), 42)
	for i := 0; i < 1000; i++ {
		a, b := g1.rand(100), g2.rand(100)
		if a != b {
			t.Fatal("same seed diverged")
		}
		if a < 0 || a >= 100 {
			t.Fatalf("rand out of bounds: %d", a)
		}
	}
	// chance() frequencies should be roughly right.
	g := newGen(memtrace.NewTrace(0), 7)
	hits := 0
	for i := 0; i < 10000; i++ {
		if g.chance(1, 4) {
			hits++
		}
	}
	if hits < 2200 || hits > 2800 {
		t.Errorf("chance(1,4) hit %d/10000, want ≈2500", hits)
	}
}

// Structural checks: the reconstructed numeric workloads must touch the
// memory the real programs would.
func TestWorkloadFootprints(t *testing.T) {
	footprint := func(b Benchmark) (iBytes, dBytes int) {
		iLines := map[uint64]struct{}{}
		dLines := map[uint64]struct{}{}
		tr := GenerateTrace(b, 0.2)
		tr.Each(func(a memtrace.Access) {
			la := uint64(a.Addr) >> 4
			if a.Kind == memtrace.Ifetch {
				iLines[la] = struct{}{}
			} else {
				dLines[la] = struct{}{}
			}
		})
		return len(iLines) * 16, len(dLines) * 16
	}

	// linpack: the 100×100 float64 matrix is 80KB; the data footprint
	// must be at least that and not wildly more.
	_, d := footprint(Linpack())
	if d < 78<<10 || d > 120<<10 {
		t.Errorf("linpack data footprint = %dKB, want ≈80KB", d/1024)
	}

	// liver: six ~8KB vectors plus 2D state: tens of KB.
	_, d = footprint(Liver())
	if d < 40<<10 || d > 160<<10 {
		t.Errorf("liver data footprint = %dKB, want ≈50-100KB", d/1024)
	}

	// The numeric kernels' instruction footprints fit their 4KB caches;
	// ccom's is far larger (many procedures).
	iLin, _ := footprint(Linpack())
	if iLin > 4<<10 {
		t.Errorf("linpack instruction footprint = %dB, want < 4KB", iLin)
	}
	iCcom, _ := footprint(Ccom())
	if iCcom < 8<<10 {
		t.Errorf("ccom instruction footprint = %dKB, want ≥ 2× the 4KB cache", iCcom/1024)
	}
}

// The deliberate conflict pairs land where the models say they do: met's
// layer tables collide at offset 0x200 modulo 4KB.
func TestMetConflictPairPlacement(t *testing.T) {
	tr := GenerateTrace(Met(), 0.02)
	offsets := map[uint64]int{}
	tr.Each(func(a memtrace.Access) {
		if a.Kind.IsData() {
			offsets[uint64(a.Addr)%4096/16]++
		}
	})
	// The colliding window starts at set 0x200/16 = 32.
	if offsets[32] == 0 {
		t.Error("no data traffic at met's colliding offset")
	}
}

func TestPointerChaseDefeatsPrefetching(t *testing.T) {
	tr := GenerateTrace(PointerChase(), 0.05)
	if tr.Instructions() == 0 || tr.DataRefs() == 0 {
		t.Fatal("empty ptrchase trace")
	}
	// Its data miss rate must be very high (nodes never fit), and the
	// miss stream must have essentially no sequential runs.
	l1 := cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 1})
	var prev uint64
	sequential, misses := 0, 0
	tr.Each(func(a memtrace.Access) {
		if !a.Kind.IsData() {
			return
		}
		if hit, _ := l1.Access(uint64(a.Addr), a.Kind == memtrace.Store); !hit {
			la := uint64(a.Addr) >> 4
			if la == prev+1 {
				sequential++
			}
			prev = la
			misses++
		}
	})
	if misses == 0 {
		t.Fatal("pointer chase never missed")
	}
	if frac := float64(sequential) / float64(misses); frac > 0.05 {
		t.Errorf("pointer-chase miss stream %0.1f%% sequential, want ≈0", frac*100)
	}
}
