package workload

import (
	"testing"

	"jouppi/internal/memtrace"
)

func TestMultiprogramValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Multiprogram(0, Met()) },
		func() { Multiprogram(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid Multiprogram arguments")
				}
			}()
			fn()
		}()
	}
}

func TestMultiprogramNameAndDescription(t *testing.T) {
	m := Multiprogram(1000, Met(), Yacc())
	if m.Name() != "multi(met+yacc)" {
		t.Errorf("name = %q", m.Name())
	}
	if m.Description() == "" {
		t.Error("empty description")
	}
}

func TestMultiprogramPreservesAllAccesses(t *testing.T) {
	a := GenerateTrace(Met(), 0.02)
	b := GenerateTrace(Yacc(), 0.02)
	merged := GenerateTrace(Multiprogram(500, Met(), Yacc()), 0.02)
	if got, want := merged.Len(), a.Len()+b.Len(); got != want {
		t.Fatalf("merged length %d, want %d", got, want)
	}
	if got, want := merged.Instructions(), a.Instructions()+b.Instructions(); got != want {
		t.Errorf("merged instructions %d, want %d", got, want)
	}
}

func TestMultiprogramOffsetsProcesses(t *testing.T) {
	merged := GenerateTrace(Multiprogram(500, Met(), Yacc()), 0.02)
	const stride = uint64(1) << 40
	var inP0, inP1 int
	merged.Each(func(acc memtrace.Access) {
		switch uint64(acc.Addr) / stride {
		case 0:
			inP0++
		case 1:
			inP1++
		default:
			t.Fatalf("access outside both process regions: %v", acc)
		}
	})
	if inP0 == 0 || inP1 == 0 {
		t.Fatalf("process regions unused: p0=%d p1=%d", inP0, inP1)
	}
}

func TestMultiprogramOffsetsPreserveIndexBits(t *testing.T) {
	// The per-process offset must not change addr mod 4096, so the
	// cache-set behaviour of each program is preserved.
	single := GenerateTrace(Yacc(), 0.02)
	merged := GenerateTrace(Multiprogram(1<<30, Met(), Yacc()), 0.02)
	// With a quantum larger than either trace, the merged trace is met
	// followed by yacc; extract the yacc tail and compare index bits.
	metLen := GenerateTrace(Met(), 0.02).Len()
	for i := 0; i < 100; i++ {
		got := merged.At(metLen + i)
		want := single.At(i)
		if uint64(got.Addr)%4096 != uint64(want.Addr)%4096 {
			t.Fatalf("access %d: index bits changed: %#x vs %#x", i, got.Addr, want.Addr)
		}
		if got.Kind != want.Kind {
			t.Fatalf("access %d: kind changed", i)
		}
	}
}

func TestMultiprogramInterleavesByQuantum(t *testing.T) {
	const stride = uint64(1) << 40
	merged := GenerateTrace(Multiprogram(200, Met(), Yacc()), 0.02)
	switches := 0
	last := -1
	merged.Each(func(a memtrace.Access) {
		p := int(uint64(a.Addr) / stride)
		if p != last {
			switches++
			last = p
		}
	})
	if switches < 10 {
		t.Errorf("only %d context switches; quantum interleaving broken", switches)
	}
}
