package workload

import "jouppi/internal/memtrace"

// met is a behavioural model of the second PC-board CAD program in the
// paper's suite — a design-rule/metrics pass with a very small instruction
// footprint (met has the lowest instruction miss rate of the four
// non-numeric benchmarks) and a modest data miss rate of which an unusually
// large share are mapping conflicts: the paper notes met has "by far the
// highest ratio of conflict misses to total data cache misses", which is
// why miss and victim caches help it most. The conflicts come from
// comparing small windows of two per-layer coordinate tables that map to
// the same cache lines; the bulk of the references are cache-friendly
// scans of hot component records.
type met struct{}

// Met returns the metrics-pass benchmark.
func Met() Benchmark { return met{} }

func (met) Name() string        { return "met" }
func (met) Description() string { return "PC board CAD" }

func (met) Generate(scale float64, sink memtrace.Sink) {
	g := newGen(sink, 0x0E37)

	mem := newLayout(dataBase)
	// Parallel coordinate tables for two board layers, deliberately
	// allocated at the same offset modulo the 4KB cache: comparing
	// layer A against layer B alternates between conflicting lines.
	layerA := array{base: mem.allocAt(16<<10, 4096, 0x200), elem: 8}
	layerB := array{base: mem.allocAt(16<<10, 4096, 0x200), elem: 8}
	// The hot arrays are placed at distinct offsets modulo the 4KB cache
	// so that the only data conflicts are the deliberate layerA/layerB
	// pair; everything hot together fits a 4KB fully-associative cache,
	// keeping met's misses overwhelmingly conflict-classified.
	rules := array{base: mem.allocAt(384, 4096, 0x400), elem: 8}
	results := array{base: mem.allocAt(384, 4096, 0x580), elem: 8}
	components := array{base: mem.allocAt(1792, 4096, 0x700), elem: 8}

	procs := newProcAllocator()
	pMain := procs.place(256)
	pCheckPair := procs.place(192)
	pDistance := procs.place(96)
	pAccum := procs.place(96)
	pScan := procs.place(224)
	// A report routine placed on the same cache lines as pScan: the two
	// alternate every check, so met also shows instruction conflicts.
	pReport := procs.placeConflicting(224, 4096, pScan.base)

	// checkPair compares a window of layer-A coordinates against the
	// corresponding layer-B window: the alternating conflict pattern.
	checkPair := func(base, window int) {
		g.call(pCheckPair, 2, func() {
			g.exec(4)
			g.loop(window, func(i int) {
				idx := (base + i) % 64
				g.load(layerA.at(idx))
				g.exec(2)
				g.load(layerB.at(idx))
				g.exec(2)
				g.call(pDistance, 0, func() {
					g.exec(4)
					g.load(rules.at(g.rand(48)))
					g.exec(2)
				})
			})
		})
	}

	// accumulate records a metric into the hot results table.
	accumulate := func() {
		g.call(pAccum, 1, func() {
			idx := g.rand(48)
			g.load(results.at(idx))
			g.exec(3)
			g.store(results.at(idx))
		})
	}

	// scan walks hot component records sequentially, computing local
	// metrics (cache-friendly background traffic).
	scan := func(base, count int) {
		g.call(pScan, 2, func() {
			g.exec(3)
			g.loop(count, func(i int) {
				idx := (base + i) % 224
				g.load(components.at(idx))
				g.exec(6)
				g.load(rules.at(g.rand(48)))
				g.exec(5)
				g.load(components.at(idx))
				g.exec(4)
			})
		})
	}

	// report summarizes a batch through the routine that conflicts with
	// pScan in the instruction cache.
	report := func() {
		g.call(pReport, 2, func() {
			g.exec(28)
			g.load(results.at(g.rand(96)))
			g.exec(12)
		})
	}

	checks := int(scale*2600 + 0.5)
	if checks < 1 {
		checks = 1
	}
	g.call(pMain, 4, func() {
		g.loop(checks, func(c int) {
			g.exec(5)
			scan(c*13, 24+g.rand(20))
			checkPair(c*7, 1+g.rand(3))
			if g.chance(1, 3) {
				accumulate()
			}
			if g.chance(3, 4) {
				report()
			}
		})
	})
}
