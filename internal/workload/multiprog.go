package workload

import (
	"fmt"
	"strings"

	"jouppi/internal/memtrace"
)

// Multiprogram combines several benchmarks into one multiprogrammed
// trace: execution rotates round-robin between the programs, switching
// after quantum instructions. Each program's addresses are offset into a
// disjoint region of the (virtual) address space; the offset is a
// multiple of 1TB, so every program keeps its cache-index behaviour while
// the tags differ — processes fight for the same cache sets, exactly the
// effect that erodes locality on context switches.
//
// The paper's §5 lists "the performance of victim caching and stream
// buffers ... for multiprogramming workloads" as future work; this
// combinator provides the workload for that study.
func Multiprogram(quantum int, benches ...Benchmark) Benchmark {
	if quantum <= 0 {
		panic(fmt.Sprintf("workload: non-positive quantum %d", quantum))
	}
	if len(benches) == 0 {
		panic("workload: Multiprogram needs at least one benchmark")
	}
	return multiprog{quantum: quantum, benches: benches}
}

type multiprog struct {
	quantum int
	benches []Benchmark
}

func (m multiprog) Name() string {
	names := make([]string, len(m.benches))
	for i, b := range m.benches {
		names[i] = b.Name()
	}
	return "multi(" + strings.Join(names, "+") + ")"
}

func (m multiprog) Description() string {
	return fmt.Sprintf("multiprogrammed, quantum %d instructions", m.quantum)
}

func (m multiprog) Generate(scale float64, sink memtrace.Sink) {
	const processStride = 1 << 40 // 1TB per process; preserves index bits

	// Each process streams from its own generator goroutine; nothing is
	// materialized, so a multiprogrammed trace costs the same memory as
	// its longest-running constituent's chunk buffers.
	srcs := make([]*Source, len(m.benches))
	for i, b := range m.benches {
		srcs[i] = NewSource(b, scale)
		defer srcs[i].Close()
	}

	done := make([]bool, len(srcs))
	remaining := len(srcs)
	for remaining > 0 {
		for p, src := range srcs {
			if done[p] {
				continue
			}
			offset := memtrace.Addr(uint64(p) * processStride)
			instrs := 0
			for instrs < m.quantum {
				a, ok := src.Next()
				if !ok {
					done[p] = true
					remaining--
					break
				}
				if a.Kind == memtrace.Ifetch {
					instrs++
				}
				a.Addr += offset
				sink.Access(a)
			}
		}
	}
}

var _ Benchmark = multiprog{}
