// Package workload reconstructs the paper's six trace workloads (Table
// 2-1): ccom (C compiler), grr (PC board CAD), yacc (Unix utility), met
// (PC board CAD), linpack (100×100 numeric), and liver (the first 14
// Livermore loops) — plus the strided extra workload and a
// multiprogramming combinator.
//
// Generators are deterministic: the same name and scale always produce
// the identical trace.
//
// # Why synthetic reconstruction
//
// The paper's traces are proprietary: 31–145M-instruction address traces
// of six programs captured on a DEC WRL Titan. No copy is available, so
// this package rebuilds each program as a deterministic generator whose
// reference stream has the same *character* — the locality structure that
// the paper's hardware exploits — rather than the same bytes.
//
// Three levels of fidelity are used:
//
//   - linpack and liver are address-pattern implementations of the actual
//     algorithms: LU factorization with partial pivoting over a 100×100
//     column-major matrix with the authentic leading dimension of 201,
//     and the first fourteen Livermore kernels over ≈8KB vectors. Their
//     miss behaviour *emerges* from the algorithms.
//   - ccom, grr, yacc, and met are behavioural models: procedures placed
//     in a text segment, call/return traffic with register save/restore
//     on a descending stack, and the data structures each program class
//     is known for (token buffers, AST heaps, symbol tables, routing
//     grids, work queues, item-set bit vectors, coordinate tables).
//   - Each model's free parameters (procedure counts and sizes, hot-table
//     sizes, branch probabilities, conflict-pair placement) were then
//     calibrated against the paper's Table 2-2 miss rates and Figure 3-1
//     conflict fractions; TestCalibrationReport prints the current values
//     and TestBaselineMissRateBands pins them.
//
// # The load-bearing behaviours
//
// The experiments depend on specific, paper-documented properties that
// the generators must reproduce:
//
//   - ccom: a large instruction working set reached through calls (high I
//     miss rate), per-statement AST construction and traversal, and the
//     §3.1 string-comparison conflict pair (interning against colliding
//     string storage).
//   - grr: 2-D wavefront expansion with a drifting frontier (data
//     locality), a sequential work queue, colliding per-layer obstacle
//     tables, and a routing-heuristic procedure fabric that overflows the
//     4KB I-cache — grr and yacc have above-average conflict fractions.
//   - yacc: hot closure scratch vectors, a recently-created-states ring
//     deliberately colliding with the closure result vector, hashed state
//     lookup, and a moving action-table packing frontier.
//   - met: a small hot working set (lowest non-numeric I miss rate) plus
//     parallel per-layer coordinate tables at the same offset modulo 4KB,
//     giving the highest conflict fraction of the suite — the paper's
//     flagship miss/victim-cache client.
//   - linpack: the whole matrix streams through the cache once per
//     elimination step (§4.1's stream-buffer showcase), while conflicts
//     are rare — the paper notes linpack benefits least from victim
//     caching.
//   - liver: several interleaved unit-stride streams per kernel, which
//     defeat a single stream buffer and motivate the 4-way buffer (the
//     paper's 7% → 60% example), with COMMON-resident scalar coefficients
//     providing the hot references real Fortran would have.
//
// # Determinism and scaling
//
// Every generator is seeded xorshift64*; the same (benchmark, scale) pair
// always yields the identical trace, which the experiments and golden
// tests rely on. Scale multiplies the amount of work (compiled functions,
// routed nets, factorization columns, kernel passes) without changing any
// layout, so miss rates are stationary once past warm-up (scale ≈ 0.2).
package workload
