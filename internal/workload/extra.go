package workload

import "jouppi/internal/memtrace"

// strided is an auxiliary workload outside the paper's six-benchmark
// suite: a column-major sweep over a matrix stored row-major, i.e. a
// constant non-unit-stride reference stream. The paper's §5 notes that
// "numeric programs with non-unit stride ... access patterns also need to
// be simulated"; this workload exercises the stride-detecting stream
// buffer extension, which the plain sequential buffer cannot help.
type strided struct{}

// Strided returns the non-unit-stride matrix-walk workload.
func Strided() Benchmark { return strided{} }

func (strided) Name() string        { return "strided" }
func (strided) Description() string { return "column-major matrix sweep (non-unit stride)" }

func (strided) Generate(scale float64, sink memtrace.Sink) {
	g := newGen(sink, 0x57FD)
	const fw = 8
	const rows, cols = 256, 64 // 128KB matrix, row stride 512B (32 lines)

	mem := newLayout(dataBase)
	m := array{base: mem.alloc(rows*cols*fw, 64), elem: fw}
	sums := array{base: mem.alloc(cols*fw, 64), elem: fw}

	procs := newProcAllocator()
	pMain := procs.place(256)
	pColSum := procs.place(128)

	passes := int(scale*24 + 0.5)
	if passes < 1 {
		passes = 1
	}
	g.call(pMain, 4, func() {
		g.loop(passes, func(p int) {
			// Sum each column: the inner loop walks one column with a
			// row-sized stride — the non-unit-stride stream.
			g.loop(cols, func(j int) {
				g.call(pColSum, 2, func() {
					g.exec(3)
					g.loop(rows, func(i int) {
						g.load(m.at(i*cols + j))
						g.exec(4)
					})
					g.store(sums.at(j))
				})
			})
		})
	})
}

// pointerChase is the second auxiliary workload: a linked-list traversal
// whose node order is a random permutation, so consecutive misses share no
// spatial relationship at all. No sequential or strided prefetcher can
// help it — the honest negative case that bounds what the paper's stream
// buffers (and the stride extension) can do.
type pointerChase struct{}

// PointerChase returns the random-order linked-list traversal workload.
func PointerChase() Benchmark { return pointerChase{} }

func (pointerChase) Name() string        { return "ptrchase" }
func (pointerChase) Description() string { return "random-order linked-list walk" }

func (pointerChase) Generate(scale float64, sink memtrace.Sink) {
	g := newGen(sink, 0x9C4A)
	const nodes = 4096  // 4096 × 64B = 256KB of nodes, 64× the 4KB cache
	const nodeSize = 64 // one node per pair of cache lines

	mem := newLayout(dataBase)
	pool := array{base: mem.alloc(nodes*nodeSize, 64), elem: nodeSize}

	// Deterministic pseudo-random permutation: traversal order is
	// i → (a·i + c) mod nodes with a coprime multiplier, visiting every
	// node once per lap with no spatial pattern.
	next := func(i int) int { return (i*1597 + 511) % nodes }

	procs := newProcAllocator()
	pMain := procs.place(192)
	pVisit := procs.place(96)

	laps := int(scale*40 + 0.5)
	if laps < 1 {
		laps = 1
	}
	g.call(pMain, 4, func() {
		g.loop(laps, func(lap int) {
			node := lap % nodes
			g.loop(nodes, func(step int) {
				g.call(pVisit, 1, func() {
					g.load(pool.at(node))     // node->next
					g.load(pool.at(node) + 8) // node->payload
					g.exec(5)
				})
				node = next(node)
			})
		})
	})
}
