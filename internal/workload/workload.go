package workload

import (
	"fmt"
	"sort"

	"jouppi/internal/memtrace"
)

// Benchmark generates the reference trace of one test program.
type Benchmark interface {
	// Name is the paper's program name (e.g. "ccom").
	Name() string
	// Description matches Table 2-1's "program type" column.
	Description() string
	// Generate emits the program's reference trace into sink. scale
	// linearly scales the amount of work; 1.0 is the default length
	// (roughly 1–4 M instructions depending on the benchmark).
	Generate(scale float64, sink memtrace.Sink)
}

// All returns the six benchmarks in the paper's Table 2-1 order.
func All() []Benchmark {
	return []Benchmark{
		Ccom(),
		Grr(),
		Yacc(),
		Met(),
		Linpack(),
		Liver(),
	}
}

// Names returns the benchmark names in paper order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name()
	}
	return names
}

// ByName looks a benchmark up by its paper name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name() == name {
			return b, true
		}
	}
	return nil, false
}

// MustByName is ByName but panics on unknown names, listing the valid ones.
func MustByName(name string) Benchmark {
	b, ok := ByName(name)
	if !ok {
		names := Names()
		sort.Strings(names)
		panic(fmt.Sprintf("workload: unknown benchmark %q (have %v)", name, names))
	}
	return b
}

// GenerateTrace runs b into a fresh in-memory trace.
func GenerateTrace(b Benchmark, scale float64) *memtrace.Trace {
	t := memtrace.NewTrace(1 << 20)
	b.Generate(scale, t)
	return t
}
