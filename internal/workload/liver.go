package workload

import "jouppi/internal/memtrace"

// liver reconstructs the first 14 Livermore Fortran kernels, which the
// paper runs sequentially as its "liver" benchmark. Each kernel is a
// small loop over a handful of large arrays — interleaved unit-stride
// reference streams, the workload that motivates the multi-way stream
// buffer (a single buffer thrashes between the streams; four buffers in
// parallel capture them). The loop bodies are tiny and executed
// back-to-back, so instruction misses are essentially nil.
type liver struct{}

// Liver returns the Livermore-loops benchmark.
func Liver() Benchmark { return liver{} }

func (liver) Name() string        { return "liver" }
func (liver) Description() string { return "LFK (numeric)" }

func (liver) Generate(scale float64, sink memtrace.Sink) {
	g := newGen(sink, 0x11FE)
	const fw = 8
	const n = 990 // elements per vector; ~8KB, twice the 4KB data cache

	mem := newLayout(dataBase)
	vec := func() array { return array{base: mem.alloc((n+16)*fw, 64), elem: fw} }
	x, y, z, u, v, w := vec(), vec(), vec(), vec(), vec(), vec()
	// 2D state for kernels 8–10 and 13–14.
	rows := 64
	cols := 16
	px := array{base: mem.alloc(uint64(rows*cols)*fw, 64), elem: fw}
	pxAt := func(i, j int) uint64 { return px.at(i*cols + j) }
	grid := array{base: mem.alloc(64*1024, 64), elem: fw}
	// Scalar coefficients (q, r, t, ...) live in COMMON storage in the
	// Fortran kernels: loaded every iteration, always hot.
	coef := array{base: mem.alloc(256, 64), elem: fw}

	procs := newProcAllocator()
	kproc := make([]proc, 15)
	for k := 1; k <= 14; k++ {
		kproc[k] = procs.place(256)
	}
	pMain := procs.place(256)

	kernels := []func(){
		// K1: hydro fragment — x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
		func() {
			g.loop(n-12, func(k int) {
				g.load(coef.at(0)) // q
				g.load(coef.at(1)) // r
				g.load(z.at(k + 10))
				g.load(z.at(k + 11))
				g.exec(3)
				g.load(coef.at(2)) // t
				g.load(y.at(k))
				g.exec(3)
				g.store(x.at(k))
			})
		},
		// K2: ICCG excerpt — strided gathers over a halving index set.
		func() {
			for ii := n / 2; ii >= 4; ii /= 2 {
				g.exec(4)
				g.loop(ii/2, func(i int) {
					g.load(coef.at(1)) // r
					g.load(x.at(2 * i))
					g.load(v.at(i))
					g.load(x.at(2*i + 1))
					g.exec(4)
					g.store(x.at(i))
				})
			}
		},
		// K3: inner product — q += z[k]*x[k].
		func() {
			g.loop(n, func(k int) {
				g.load(z.at(k))
				g.load(x.at(k))
				g.exec(3)
				g.load(coef.at(4)) // q accumulator
				g.store(coef.at(4))
			})
		},
		// K4: banded linear equations.
		func() {
			for j := 0; j < 3; j++ {
				g.exec(4)
				g.loop((n-6)/5, func(k int) {
					g.load(coef.at(7 + j)) // band coefficient
					g.load(y.at(5 * k))
					g.load(z.at(5*k + j))
					g.exec(4)
					g.store(x.at(5 * k))
				})
			}
		},
		// K5: tri-diagonal elimination — x[i] = z[i]*(y[i] − x[i−1]).
		func() {
			g.loop(n-1, func(i int) {
				g.load(z.at(i + 1))
				g.load(y.at(i + 1))
				g.load(x.at(i)) // usually the line just stored: hits
				g.exec(3)
				g.store(x.at(i + 1))
			})
		},
		// K6: general linear recurrence (banded to keep O(n)).
		func() {
			g.loop(n-16, func(i int) {
				g.load(coef.at(10))
				for k := 0; k < 3; k++ {
					g.load(w.at(i + k))
					g.exec(2)
				}
				g.load(y.at(i))
				g.exec(2)
				g.store(w.at(i + 16))
			})
		},
		// K7: equation of state fragment — many operands per element.
		func() {
			g.loop(n-8, func(k int) {
				g.load(coef.at(1)) // r
				g.load(u.at(k))
				g.load(z.at(k))
				g.load(y.at(k))
				g.exec(4)
				g.load(coef.at(2)) // t
				g.load(u.at(k + 3))
				g.load(u.at(k + 6))
				g.exec(4)
				g.store(x.at(k))
			})
		},
		// K8: ADI integration — six streams.
		func() {
			g.loop(n-4, func(k int) {
				g.load(coef.at(5)) // a11..a13
				g.load(coef.at(6))
				g.load(u.at(k))
				g.load(v.at(k))
				g.load(w.at(k))
				g.exec(5)
				g.load(x.at(k))
				g.exec(3)
				g.store(y.at(k))
				g.store(z.at(k))
			})
		},
		// K9: integrate predictors — row-wise polynomial evaluation.
		func() {
			g.loop(rows, func(i int) {
				for j := 4; j < 13; j++ {
					g.load(pxAt(i, j))
					g.exec(2)
				}
				g.store(pxAt(i, 0))
			})
		},
		// K10: difference predictors — shifting cascade along each row.
		func() {
			g.loop(rows, func(i int) {
				g.load(pxAt(i, 4))
				for j := 12; j > 4; j-- {
					g.load(pxAt(i, j-1))
					g.exec(2)
					g.store(pxAt(i, j))
				}
			})
		},
		// K11: first sum — x[k] = x[k−1] + y[k].
		func() {
			g.loop(n-1, func(k int) {
				g.load(x.at(k))
				g.load(y.at(k + 1))
				g.exec(2)
				g.store(x.at(k + 1))
			})
		},
		// K12: first difference — x[k] = y[k+1] − y[k].
		func() {
			g.loop(n-1, func(k int) {
				g.load(y.at(k + 1))
				g.load(y.at(k))
				g.exec(2)
				g.store(x.at(k))
			})
		},
		// K13: 2-D particle in cell — gather/scatter through the grid.
		func() {
			g.loop(n/2, func(ip int) {
				g.load(y.at(ip)) // particle coordinates
				g.load(z.at(ip))
				g.exec(4)
				cell := uint64(ip*8+g.rand(64)) % 8000 * fw
				g.load(grid.base + cell)
				g.exec(3)
				g.store(grid.base + cell)
				g.store(y.at(ip))
			})
		},
		// K14: 1-D particle in cell.
		func() {
			g.loop(n/2, func(ip int) {
				g.load(v.at(ip))
				g.exec(3)
				cell := uint64(ip*4+g.rand(32)) % 4000 * fw
				g.load(grid.base + cell)
				g.exec(2)
				g.store(grid.base + cell)
			})
		},
	}

	passes := int(scale*16 + 0.5)
	if passes < 1 {
		passes = 1
	}
	g.call(pMain, 4, func() {
		g.loop(passes, func(p int) {
			for k, kernel := range kernels {
				g.call(kproc[k+1], 3, kernel)
			}
		})
	})
}
