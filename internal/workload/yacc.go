package workload

import "jouppi/internal/memtrace"

// yaccBench is a behavioural model of the Unix yacc utility building LALR
// parser tables from a grammar: computing item-set closures with
// bit-vector operations over hot scratch vectors, comparing freshly built
// states against recently created ones, hashing item sets, and packing
// action rows into the output tables. The hot working set is small (yacc
// has low absolute miss rates), and an above-average share of the
// remaining data misses are mapping conflicts — here between the closure
// result vector and the recent-state comparison buffers, which land on the
// same cache lines.
type yaccBench struct{}

// Yacc returns the yacc benchmark.
func Yacc() Benchmark { return yaccBench{} }

func (yaccBench) Name() string        { return "yacc" }
func (yaccBench) Description() string { return "Unix utility" }

func (yaccBench) Generate(scale float64, sink memtrace.Sink) {
	g := newGen(sink, 0x9ACC)

	const setWords = 40 // bit-vector words per item set (320B)

	mem := newLayout(dataBase)
	grammar := array{base: mem.alloc(16<<10, 64), elem: 8}   // productions
	first := array{base: mem.alloc(2<<10, 64), elem: 8}      // FIRST sets (hot)
	stateHash := array{base: mem.alloc(32<<10, 64), elem: 8} // item-set hash
	states := array{base: mem.alloc(256<<10, 64), elem: 8}   // stored item sets
	actions := array{base: mem.alloc(512<<10, 64), elem: 4}  // packed action table
	kernel := array{base: mem.alloc(setWords*8, 64), elem: 8}
	setSrc := array{base: mem.alloc(setWords*8, 64), elem: 8}
	// The closure result vector and the ring of recently created states
	// land on conflicting lines: the state-equality comparison alternates
	// between them, producing yacc's conflict misses.
	setDst := array{base: mem.allocAt(setWords*8, 4096, 0x300), elem: 8}
	recentSlots := make([]array, 8)
	for i := range recentSlots {
		recentSlots[i] = array{base: mem.allocAt(setWords*8, 4096, 0x300), elem: 8}
	}

	procs := newProcAllocator()
	pMain := procs.place(320)
	pClosure := procs.place(384)
	pGoto := procs.place(256)
	pCompare := procs.place(160)
	pLookup := procs.place(192)
	pPack := procs.place(224)
	pFirst := procs.place(160)
	// Grammar-rule handling: one smallish routine per production class,
	// giving yacc its moderate instruction footprint.
	const nRule = 26
	rule := make([]proc, nRule)
	for i := range rule {
		rule[i] = procs.place(176 + 16*(i%6))
	}

	actFrontier := 0
	recentSlot := 0

	// closure expands the scratch set: passes over the hot vectors
	// OR-ing production FIRST sets into the result.
	closure := func() {
		g.call(pClosure, 3, func() {
			g.exec(4)
			passes := 2 + g.rand(2)
			for p := 0; p < passes; p++ {
				g.loop(setWords, func(w int) {
					g.load(setSrc.at(w))
					g.exec(2)
					g.load(setDst.at(w))
					g.exec(2)
					g.store(setDst.at(w))
				})
				pulls := 2 + g.rand(4)
				for q := 0; q < pulls; q++ {
					nt := g.rand(256)
					g.call(pFirst, 1, func() {
						g.load(first.at(nt))
						g.exec(3)
					})
				}
			}
		})
	}

	// compare checks the freshly closed set against one recently created
	// state — the alternating conflicting-pair pattern.
	compare := func() {
		g.call(pCompare, 1, func() {
			g.exec(3)
			slot := recentSlots[g.rand(8)]
			g.loop(setWords/3, func(w int) {
				g.load(setDst.at(w))
				g.exec(2)
				g.load(slot.at(w))
				g.exec(2)
			})
		})
	}

	// lookup hashes the result vector and probes the state hash table;
	// a new state is appended to the cold state store and the recent
	// ring.
	lookup := func() {
		g.call(pLookup, 2, func() {
			g.exec(3)
			g.loop(setWords/4, func(w int) {
				g.load(setDst.at(w * 4))
				g.exec(2)
			})
			bucket := g.rand(4096)
			g.load(stateHash.at(bucket))
			g.exec(2)
			if g.chance(1, 3) {
				// New state: store it cold and remember it hot.
				base := g.rand(2048) * 16
				slot := recentSlots[recentSlot]
				recentSlot = (recentSlot + 1) % 8
				g.loop(setWords/4, func(w int) {
					g.load(setDst.at(w * 4))
					g.store(states.at(base + w))
					g.store(slot.at(w * 4))
				})
				g.store(stateHash.at(bucket))
			}
		})
	}

	// pack writes one action row at the moving packing frontier.
	pack := func() {
		g.call(pPack, 2, func() {
			g.exec(4)
			probes := 2 + g.rand(6)
			for p := 0; p < probes; p++ {
				g.load(actions.at((actFrontier + p*17) % (120 << 10)))
				g.exec(2)
			}
			entries := 4 + g.rand(10)
			g.loop(entries, func(e int) {
				g.store(actions.at((actFrontier + e) % (120 << 10)))
				g.exec(2)
			})
			actFrontier += entries
		})
	}

	statesToBuild := int(scale*2400 + 0.5)
	if statesToBuild < 1 {
		statesToBuild = 1
	}
	g.call(pMain, 4, func() {
		g.loop(statesToBuild, func(s int) {
			g.exec(5)
			g.load(grammar.at(g.rand(240)))
			items := 3 + g.rand(3)
			for it := 0; it < items; it++ {
				g.call(rule[g.rand(nRule)], 2, func() {
					g.exec(30 + g.rand(16))
					g.load(grammar.at(g.rand(240) + 2))
					g.exec(12)
				})
			}
			g.call(pGoto, 2, func() {
				g.exec(4)
				// Seed the scratch set from the current state's kernel.
				g.loop(setWords/2, func(w int) {
					g.load(kernel.at(w * 2))
					g.store(setSrc.at(w * 2))
				})
			})
			closure()
			if g.chance(1, 3) {
				compare()
			}
			lookup()
			if g.chance(2, 3) {
				pack()
			}
		})
	})
}
