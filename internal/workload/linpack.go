package workload

import "jouppi/internal/memtrace"

// linpack reconstructs the address behaviour of the 100×100 LINPACK
// benchmark: LU factorization (dgefa) with partial pivoting followed by
// back-substitution (dgesl), with the classic column-oriented BLAS-1 inner
// loops (idamax, dscal, daxpy). The 80KB column-major matrix streams
// through the 4KB data cache on every elimination step — the paper's
// example of a workload whose misses are long sequential runs that a
// stream buffer can service at full second-level bandwidth, while a victim
// cache barely helps (linpack benefits least from victim caching of the
// six).
type linpack struct{}

// Linpack returns the 100×100 numeric benchmark.
func Linpack() Benchmark { return linpack{} }

func (linpack) Name() string        { return "linpack" }
func (linpack) Description() string { return "100x100 numeric" }

func (linpack) Generate(scale float64, sink memtrace.Sink) {
	g := newGen(sink, 0x11A9)
	const n = 100
	const fw = 8 // float64 width

	// The real 100×100 LINPACK declares the matrix a(201,200): columns
	// are lda elements apart, not n.
	const lda = 201

	mem := newLayout(dataBase)
	// Column-major matrix: column j starts lda float64s after column j-1.
	aBase := mem.alloc(n*lda*fw, 64)
	colAddr := func(j, i int) uint64 { return aBase + uint64(j*lda+i)*fw }
	b := array{base: mem.alloc(n*fw, 64), elem: fw}
	ipvt := array{base: mem.alloc(n*4, 64), elem: 4}

	procs := newProcAllocator()
	pMain := procs.place(512)
	pDgefa := procs.place(768)
	pIdamax := procs.place(128)
	pDscal := procs.place(128)
	pDaxpy := procs.place(160)
	pDgesl := procs.place(512)

	// idamax: find the pivot row in column k.
	idamax := func(k int) {
		g.call(pIdamax, 2, func() {
			g.exec(4)
			g.loop(n-k, func(i int) {
				g.load(colAddr(k, k+i))
				g.exec(3) // compare-and-update-max
			})
			g.exec(2)
		})
	}

	// dscal: scale column k below the diagonal.
	dscal := func(k int) {
		g.call(pDscal, 2, func() {
			g.exec(3)
			g.loop(n-k-1, func(i int) {
				g.load(colAddr(k, k+1+i))
				g.exec(3)
				g.store(colAddr(k, k+1+i))
			})
		})
	}

	// daxpy: a[k+1..n-1, j] += t * a[k+1..n-1, k].
	daxpy := func(k, j int) {
		g.call(pDaxpy, 2, func() {
			g.exec(3)
			g.loop(n-k-1, func(i int) {
				g.load(colAddr(k, k+1+i)) // x element
				g.exec(2)
				g.load(colAddr(j, k+1+i)) // y element
				g.exec(2)
				g.store(colAddr(j, k+1+i))
			})
		})
	}

	// dgefa runs the elimination up to kLimit columns (n-1 for the full
	// factorization); fractional workload scales truncate it.
	dgefa := func(kLimit int) {
		g.call(pDgefa, 4, func() {
			g.loop(kLimit, func(k int) {
				g.exec(4)
				idamax(k)
				g.store(ipvt.at(k))
				g.exec(3) // pivot swap bookkeeping
				g.load(colAddr(k, k))
				dscal(k)
				g.loop(n-k-1, func(jj int) {
					j := k + 1 + jj
					g.exec(2)
					g.load(colAddr(j, k)) // t = a[k][j] pivot element
					daxpy(k, j)
				})
			})
		})
	}

	dgesl := func() {
		g.call(pDgesl, 4, func() {
			// Forward elimination on b.
			g.loop(n-1, func(k int) {
				g.exec(3)
				g.load(ipvt.at(k))
				g.load(b.at(k))
				g.loop(n-k-1, func(i int) {
					g.load(colAddr(k, k+1+i))
					g.load(b.at(k + 1 + i))
					g.exec(2)
					g.store(b.at(k + 1 + i))
				})
			})
			// Back substitution.
			g.loop(n, func(kk int) {
				k := n - 1 - kk
				g.exec(3)
				g.load(b.at(k))
				g.load(colAddr(k, k))
				g.store(b.at(k))
				g.loop(k, func(i int) {
					g.load(colAddr(k, i))
					g.load(b.at(i))
					g.exec(2)
					g.store(b.at(i))
				})
			})
		})
	}

	// Translate the scale into whole factorizations plus a truncated
	// final one. Elimination step k costs about (n-k)² element
	// operations, so the truncation point for a fractional remainder is
	// found by accumulating that cost.
	whole := int(scale)
	frac := scale - float64(whole)
	kFrac := 0
	if frac > 0 {
		total := 0.0
		for k := 0; k < n-1; k++ {
			total += float64((n - k) * (n - k))
		}
		acc := 0.0
		for k := 0; k < n-1 && acc < frac*total; k++ {
			acc += float64((n - k) * (n - k))
			kFrac = k + 1
		}
	}
	if whole == 0 && kFrac == 0 {
		kFrac = 1
	}

	runOnce := func(kLimit int) {
		// Matrix (re)generation: one sequential pass of stores.
		g.loop(n*n/4, func(i int) {
			g.exec(3)
			for e := 0; e < 4; e++ {
				g.store(aBase + uint64(i*4+e)*fw)
			}
		})
		dgefa(kLimit)
		dgesl()
	}
	g.call(pMain, 4, func() {
		g.loop(whole, func(rep int) {
			runOnce(n - 1)
		})
		if kFrac > 0 {
			runOnce(kFrac)
		}
	})
}
