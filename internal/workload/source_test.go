package workload

import (
	"testing"

	"jouppi/internal/memtrace"
)

// NewSource must deliver exactly the sequence Generate pushes, for every
// benchmark: same records, same order.
func TestSourceMatchesGenerate(t *testing.T) {
	for _, name := range Names() {
		b := MustByName(name)
		pushed := GenerateTrace(b, 0.05)
		src := NewSource(b, 0.05)
		i := 0
		memtrace.Each(src, func(a memtrace.Access) {
			if i < pushed.Len() && a != pushed.At(i) {
				t.Fatalf("%s record %d: %v vs %v", name, i, a, pushed.At(i))
			}
			i++
		})
		if err := src.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
		if i != pushed.Len() {
			t.Fatalf("%s: pulled %d records, generator pushed %d", name, i, pushed.Len())
		}
	}
}

// Closing a source mid-stream must stop the generator goroutine without
// deadlocking, and Next must report exhaustion afterwards.
func TestSourceCloseMidStream(t *testing.T) {
	src := NewSource(MustByName("linpack"), 0.5)
	for i := 0; i < 10; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatal("source dried up after", i, "records")
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Next(); ok {
		t.Error("Next returned a record after Close")
	}
	if err := src.Close(); err != nil {
		t.Error("second Close:", err)
	}
}

func TestSourceExhaustionThenClose(t *testing.T) {
	src := NewSource(MustByName("met"), 0.01)
	n := 0
	memtrace.Each(src, func(memtrace.Access) { n++ })
	if n == 0 {
		t.Fatal("empty stream")
	}
	if _, ok := src.Next(); ok {
		t.Error("Next returned a record past exhaustion")
	}
	if err := src.Close(); err != nil {
		t.Error(err)
	}
}
