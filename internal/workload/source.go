package workload

import (
	"sync"

	"jouppi/internal/memtrace"
)

// sourceChunk is the hand-off granularity between the generator goroutine
// and the consumer: large enough to amortize channel operations, small
// enough to keep streaming memory O(1) (a few chunks of 4096 accesses).
const sourceChunk = 4096

// stopGeneration is the sentinel panic value used to unwind a generator
// whose consumer closed the Source early; Benchmark.Generate has no
// cancellation hook of its own.
type stopGeneration struct{}

// Source streams a benchmark's reference trace as a pull-based
// memtrace.Source without ever materializing it: the generator runs in a
// goroutine and hands chunks of accesses to the consumer. Close releases
// the goroutine; it must be called if the consumer stops before the
// stream is exhausted (draining to the end also releases it, but Close is
// always safe and idempotent).
type Source struct {
	ch     chan []memtrace.Access
	cur    []memtrace.Access
	stop   chan struct{}
	once   sync.Once
	closed bool
}

// NewSource starts generating b at the given scale and returns the
// streaming view of its trace.
func NewSource(b Benchmark, scale float64) *Source {
	s := &Source{
		ch:   make(chan []memtrace.Access, 4),
		stop: make(chan struct{}),
	}
	go func() {
		defer close(s.ch)
		defer func() {
			if r := recover(); r != nil {
				if _, stopped := r.(stopGeneration); !stopped {
					panic(r)
				}
			}
		}()
		chunk := make([]memtrace.Access, 0, sourceChunk)
		flush := func() {
			if len(chunk) == 0 {
				return
			}
			select {
			case s.ch <- chunk:
				chunk = make([]memtrace.Access, 0, sourceChunk)
			case <-s.stop:
				panic(stopGeneration{})
			}
		}
		b.Generate(scale, memtrace.SinkFunc(func(a memtrace.Access) {
			chunk = append(chunk, a)
			if len(chunk) == sourceChunk {
				flush()
			}
		}))
		flush()
	}()
	return s
}

// Next implements memtrace.Source.
func (s *Source) Next() (memtrace.Access, bool) {
	if s.closed {
		return memtrace.Access{}, false
	}
	for len(s.cur) == 0 {
		chunk, ok := <-s.ch
		if !ok {
			return memtrace.Access{}, false
		}
		s.cur = chunk
	}
	a := s.cur[0]
	s.cur = s.cur[1:]
	return a, true
}

// Close stops the generator goroutine and ends the stream. It is safe to
// call at any time, multiple times.
func (s *Source) Close() error {
	s.once.Do(func() {
		s.closed = true
		close(s.stop)
		// Unblock the generator if it is parked on a full channel, and
		// discard anything already buffered.
		for range s.ch {
		}
	})
	return nil
}

var _ memtrace.Source = (*Source)(nil)
