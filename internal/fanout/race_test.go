package fanout

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"jouppi/internal/memtrace"
)

// These tests exist to run meaningfully under -race (make test runs the
// whole suite with the detector on): mixed-speed consumers exercise the
// backpressure path, cancellation exercises the producer's select, and a
// panicking consumer exercises the relay and drain logic.

// slowConsumer yields the scheduler on every chunk so faster consumers
// race ahead to the ring bound.
type slowConsumer struct {
	collector
	delay time.Duration
}

func (s *slowConsumer) Consume(chunk []memtrace.Access) {
	time.Sleep(s.delay)
	s.collector.Consume(chunk)
}

// TestReplaySlowFastConsumers pins that backpressure (a slow consumer
// pinned at the ring bound) never costs correctness: both consumers see
// the identical full sequence.
func TestReplaySlowFastConsumers(t *testing.T) {
	tr := randomTrace(8192)
	want := sequential(tr)
	slow := &slowConsumer{delay: 100 * time.Microsecond}
	fast := &collector{}
	eng := New(Config{ChunkSize: 256, Ring: 2})
	if err := eng.Replay(context.Background(), tr.Source(), slow, fast); err != nil {
		t.Fatal(err)
	}
	sameAccesses(t, "slow", want, slow.got)
	sameAccesses(t, "fast", want, fast.got)
}

// cancelAfter cancels the context once it has consumed n chunks.
type cancelAfter struct {
	n      int
	seen   int
	cancel context.CancelFunc
	total  atomic.Int64
}

func (c *cancelAfter) Consume(chunk []memtrace.Access) {
	c.total.Add(int64(len(chunk)))
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

// TestReplayCancellation cancels mid-stream from inside a consumer and
// checks the producer stops promptly with ctx's error while the other
// consumer exits cleanly having seen only a prefix.
func TestReplayCancellation(t *testing.T) {
	tr := randomTrace(100000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trigger := &cancelAfter{n: 3, cancel: cancel}
	bystander := &collector{}
	eng := New(Config{ChunkSize: 512, Ring: 2})
	err := eng.Replay(ctx, tr.Source(), trigger, bystander)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := trigger.total.Load(); got >= int64(tr.Len()) {
		t.Errorf("cancellation did not stop the stream: consumer saw all %d records", got)
	}
	if len(bystander.got) > tr.Len() {
		t.Errorf("bystander saw %d records, trace has only %d", len(bystander.got), tr.Len())
	}
	// Whatever prefix the bystander saw must match the sequential order.
	want := sequential(tr)
	sameAccesses(t, "bystander prefix", want[:len(bystander.got)], bystander.got)
}

// TestReplayInlineCancellation covers the single-consumer fast path's
// cancellation poll.
func TestReplayInlineCancellation(t *testing.T) {
	tr := randomTrace(100000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trigger := &cancelAfter{n: 2, cancel: cancel}
	eng := New(Config{ChunkSize: 512})
	if err := eng.Replay(ctx, tr.Source(), trigger); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := trigger.total.Load(); got >= int64(tr.Len()) {
		t.Errorf("cancellation did not stop the inline stream: saw all %d records", got)
	}
}

// panicky panics while consuming its nth chunk.
type panicky struct {
	collector
	n int
}

func (p *panicky) Consume(chunk []memtrace.Access) {
	if len(p.got)/cap(chunk) >= p.n-1 && p.n > 0 {
		panic("injected consumer failure")
	}
	p.collector.Consume(chunk)
}

// TestReplayConsumerPanic injects a panic into one consumer of a group
// and checks the contract: Replay re-panics a *ConsumerPanic naming the
// culprit, the producer stops instead of deadlocking, and the surviving
// consumers exit cleanly with a valid prefix of the stream.
func TestReplayConsumerPanic(t *testing.T) {
	tr := randomTrace(50000)
	bad := &panicky{n: 2}
	good1 := &collector{}
	good2 := &collector{}
	eng := New(Config{ChunkSize: 512, Ring: 2})

	var relayed *ConsumerPanic
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("Replay did not re-panic after consumer panic")
			}
			cp, ok := v.(*ConsumerPanic)
			if !ok {
				t.Fatalf("recovered %T (%v), want *ConsumerPanic", v, v)
			}
			relayed = cp
		}()
		_ = eng.Replay(context.Background(), tr.Source(), good1, bad, good2)
	}()

	if relayed.Consumer != 1 {
		t.Errorf("panic attributed to consumer %d, want 1", relayed.Consumer)
	}
	if relayed.Val != "injected consumer failure" {
		t.Errorf("panic value = %v", relayed.Val)
	}
	if len(relayed.Stack) == 0 {
		t.Error("panic relay lost the consumer stack")
	}
	// Survivors completed cleanly on a sequential prefix.
	want := sequential(tr)
	sameAccesses(t, "survivor 1 prefix", want[:len(good1.got)], good1.got)
	sameAccesses(t, "survivor 2 prefix", want[:len(good2.got)], good2.got)
}
