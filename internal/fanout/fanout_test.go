package fanout

import (
	"context"
	"math/rand"
	"testing"

	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
)

// randomTrace builds a deterministic pseudo-random trace of n accesses.
func randomTrace(n int) *memtrace.Trace {
	rng := rand.New(rand.NewSource(42))
	tr := &memtrace.Trace{}
	kinds := []memtrace.Kind{memtrace.Ifetch, memtrace.Load, memtrace.Store}
	for i := 0; i < n; i++ {
		tr.Append(memtrace.Access{
			Addr: memtrace.Addr(rng.Uint64() % (1 << 20)),
			Kind: kinds[rng.Intn(len(kinds))],
		})
	}
	return tr
}

// collector records every access it consumes, in order.
type collector struct {
	got []memtrace.Access
}

func (c *collector) Consume(chunk []memtrace.Access) {
	c.got = append(c.got, chunk...)
}

// sequential is the reference: what a plain single-pass replay delivers.
func sequential(tr *memtrace.Trace) []memtrace.Access {
	var out []memtrace.Access
	tr.Each(func(a memtrace.Access) { out = append(out, a) })
	return out
}

func sameAccesses(t *testing.T, label string, want, got []memtrace.Access) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d accesses, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: access %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestReplayEquivalence is the bit-identity pin: every consumer of a
// fan-out replay must observe exactly the sequence a sequential replay
// delivers, for consumer counts on both sides of the inline fast path
// and for traces that do not divide evenly into chunks.
func TestReplayEquivalence(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4096, 4097, 10000} {
		tr := randomTrace(n)
		want := sequential(tr)
		for _, consumers := range []int{1, 2, 3, 8} {
			eng := New(Config{ChunkSize: 512, Ring: 2})
			cs := make([]*collector, consumers)
			args := make([]Consumer, consumers)
			for i := range cs {
				cs[i] = &collector{}
				args[i] = cs[i]
			}
			if err := eng.Replay(context.Background(), tr.Source(), args...); err != nil {
				t.Fatalf("n=%d consumers=%d: %v", n, consumers, err)
			}
			for i, c := range cs {
				sameAccesses(t, "n="+itoa(n)+" consumer "+itoa(i), want, c.got)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestReplayFuncAndSink covers the two adapters.
func TestReplayFuncAndSink(t *testing.T) {
	tr := randomTrace(1000)
	want := sequential(tr)

	var viaFunc []memtrace.Access
	var viaSink []memtrace.Access
	sink := memtrace.SinkFunc(func(a memtrace.Access) { viaSink = append(viaSink, a) })
	err := Replay(context.Background(), tr.Source(),
		Func(func(a memtrace.Access) { viaFunc = append(viaFunc, a) }),
		Sink(sink))
	if err != nil {
		t.Fatal(err)
	}
	sameAccesses(t, "Func adapter", want, viaFunc)
	sameAccesses(t, "Sink adapter", want, viaSink)
}

// TestReplayArgumentErrors pins the pre-flight checks: nil sources and
// nil consumers are rejected before any record moves, and zero consumers
// is a no-op that leaves the source untouched.
func TestReplayArgumentErrors(t *testing.T) {
	if err := Replay(context.Background(), nil, &collector{}); err != memtrace.ErrNilSource {
		t.Errorf("nil source: got %v, want ErrNilSource", err)
	}
	tr := randomTrace(10)
	if err := Replay(context.Background(), tr.Source(), &collector{}, nil); err != ErrNilConsumer {
		t.Errorf("nil consumer: got %v, want ErrNilConsumer", err)
	}
	src := tr.Source()
	if err := Replay(context.Background(), src); err != nil {
		t.Errorf("zero consumers: got %v, want nil", err)
	}
	if a, ok := src.Next(); !ok {
		t.Error("zero-consumer replay consumed the source")
	} else if a != sequential(tr)[0] {
		t.Errorf("source advanced: first access now %+v", a)
	}
}

// TestReplayTelemetry checks the engine's metrics: chunk and record
// counters, the consumer-count gauge, and per-consumer lag gauges all
// registered with valid names; detaching returns every update to a no-op.
func TestReplayTelemetry(t *testing.T) {
	tr := randomTrace(2500)
	reg := telemetry.NewRegistry()
	eng := New(Config{ChunkSize: 1000, Ring: 2})
	eng.AttachTelemetry(reg)
	if err := eng.Replay(context.Background(), tr.Source(), &collector{}, &collector{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["fanout_chunks_total"]; got != 3 {
		t.Errorf("fanout_chunks_total = %v, want 3", got)
	}
	if got := snap["fanout_records_total"]; got != 2500 {
		t.Errorf("fanout_records_total = %v, want 2500", got)
	}
	if got := snap["fanout_consumers"]; got != 2 {
		t.Errorf("fanout_consumers = %v, want 2", got)
	}
	for _, name := range []string{"fanout_broadcast_depth", "fanout_consumer_lag_0", "fanout_consumer_lag_1"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metric %s not registered; snapshot %v", name, snap)
		}
	}

	// Detach: replaying again must not advance the registry.
	eng.AttachTelemetry(nil)
	if err := eng.Replay(context.Background(), tr.Source(), &collector{}, &collector{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot()["fanout_records_total"]; got != 2500 {
		t.Errorf("detached engine still counted: fanout_records_total = %v", got)
	}
}

// TestReplayInlineTelemetry covers the single-consumer fast path's
// counters, which share countChunk with the broadcast path.
func TestReplayInlineTelemetry(t *testing.T) {
	tr := randomTrace(1500)
	reg := telemetry.NewRegistry()
	eng := New(Config{ChunkSize: 1000})
	eng.AttachTelemetry(reg)
	if err := eng.Replay(context.Background(), tr.Source(), &collector{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["fanout_chunks_total"]; got != 2 {
		t.Errorf("fanout_chunks_total = %v, want 2", got)
	}
	if got := snap["fanout_records_total"]; got != 1500 {
		t.Errorf("fanout_records_total = %v, want 1500", got)
	}
	if got := snap["fanout_consumers"]; got != 1 {
		t.Errorf("fanout_consumers = %v, want 1", got)
	}
}

// TestConfigDefaults pins the documented zero-value behaviour.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ChunkSize != defaultChunkSize || cfg.Ring != defaultRing {
		t.Errorf("defaults = %+v, want {%d %d}", cfg, defaultChunkSize, defaultRing)
	}
	cfg = Config{ChunkSize: 7, Ring: 3}.withDefaults()
	if cfg.ChunkSize != 7 || cfg.Ring != 3 {
		t.Errorf("explicit config rewritten: %+v", cfg)
	}
}

// TestConsumerPanicError covers the error formatting used by the
// experiment shield when a relayed panic is rendered as a failure.
func TestConsumerPanicError(t *testing.T) {
	p := &ConsumerPanic{Consumer: 3, Val: "boom"}
	want := "fanout: consumer 3 panicked: boom"
	if got := p.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}
