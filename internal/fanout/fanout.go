// Package fanout implements single-pass trace replay across many
// consumers: one producer pulls chunks from a memtrace.Source and
// broadcasts each chunk to N independently-configured consumers running
// on their own goroutines.
//
// The classic trace-driven-simulation observation (Mattson et al., and
// the sweep shapes in Jouppi's figures) is that producing or decoding the
// address stream often costs as much as simulating one configuration, so
// replaying K configurations by regenerating the trace K times pays the
// production cost K times over. The fan-out engine pays it once: chunks
// are produced once, shared read-only, and every consumer walks them in
// order on its own cursor.
//
// Chunk buffers are pooled: each broadcast chunk carries a reference
// count, the last consumer to finish returns it to a sync.Pool, and the
// producer refills recycled buffers (bulk-decoding through
// memtrace.ChunkSource when the source supports it). Steady-state replay
// therefore allocates nothing per chunk regardless of trace length.
//
// Consumers see exactly the sequence of accesses a sequential replay
// would deliver — same records, same order, one at a time — so results
// are bit-identical to per-config replay (pinned by equivalence tests).
package fanout

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/trace"
)

// Errors reported by Replay before any record is consumed.
var (
	ErrNilConsumer = errors.New("fanout: nil Consumer")
)

// Consumer receives successive chunks of the trace in order. Chunks are
// shared read-only between all consumers of a replay and their buffers
// are recycled once every consumer is done with them: a Consumer must
// not modify or retain the slice beyond the Consume call.
type Consumer interface {
	Consume(chunk []memtrace.Access)
}

// Func adapts a per-access function (for example hierarchy.System.Access
// or any memtrace.Sink's method) to the Consumer interface.
type Func func(memtrace.Access)

// Consume applies the function to each access of the chunk in order.
func (f Func) Consume(chunk []memtrace.Access) {
	for _, a := range chunk {
		f(a)
	}
}

// Sink adapts a memtrace.Sink to a Consumer.
func Sink(s memtrace.Sink) Consumer { return Func(s.Access) }

// ConsumerPanic wraps a panic raised inside a consumer goroutine. The
// engine records the first one, stops producing, lets the surviving
// consumers drain their queued chunks, and then re-panics the wrapped
// value on the caller's goroutine — the same relay contract as the
// experiment runner's workerPanic.
type ConsumerPanic struct {
	Consumer int    // index of the panicking consumer in the Replay call
	Val      any    // the recovered panic value
	Stack    []byte // stack of the consumer goroutine at panic time
}

// Error makes the relayed panic presentable when a recovering caller
// (such as the experiment shield) formats it as a failure.
func (p *ConsumerPanic) Error() string {
	return fmt.Sprintf("fanout: consumer %d panicked: %v", p.Consumer, p.Val)
}

// Config sizes the engine. The zero value selects the defaults.
type Config struct {
	// ChunkSize is the number of accesses per broadcast chunk.
	// Defaults to 4096 — the same granularity the streaming workload
	// source uses, large enough to amortise channel operations and
	// small enough to keep consumers' working sets cache-resident.
	ChunkSize int
	// Ring is the per-consumer bound on in-flight chunks (the depth of
	// each consumer's cursor behind the producer). The producer blocks
	// once the slowest consumer falls Ring chunks behind, so memory is
	// O(Consumers × Ring × ChunkSize) regardless of trace length.
	// Defaults to 8.
	Ring int
}

const (
	defaultChunkSize = 4096
	defaultRing      = 8
)

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = defaultChunkSize
	}
	if c.Ring <= 0 {
		c.Ring = defaultRing
	}
	return c
}

// Engine broadcasts one trace pass to many consumers. The zero value is
// usable; New applies defaults eagerly. An Engine is reusable across
// Replay calls but not concurrently.
type Engine struct {
	cfg Config
	reg *telemetry.Registry

	// Metrics are nil (and every operation a no-op) until
	// AttachTelemetry is called with a non-nil registry.
	chunks    *telemetry.Counter
	records   *telemetry.Counter
	consumers *telemetry.Gauge
	depth     *telemetry.Gauge
	lag       []*telemetry.Gauge
}

// New returns an engine with cfg's zero fields defaulted.
func New(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// AttachTelemetry registers the engine's metrics on reg: counters for
// chunks and records broadcast, a gauge for the consumer count of the
// current replay, a gauge for the deepest per-consumer backlog observed
// at each broadcast, and one lag gauge per consumer slot. A nil registry
// detaches (every metric update becomes a no-op).
func (e *Engine) AttachTelemetry(reg *telemetry.Registry) {
	e.reg = reg
	e.lag = nil
	if reg == nil {
		e.chunks, e.records, e.consumers, e.depth = nil, nil, nil, nil
		return
	}
	e.chunks = reg.Counter("fanout_chunks_total", "trace chunks broadcast by the fan-out engine")
	e.records = reg.Counter("fanout_records_total", "trace records broadcast by the fan-out engine")
	e.consumers = reg.Gauge("fanout_consumers", "consumers attached to the current fan-out replay")
	e.depth = reg.Gauge("fanout_broadcast_depth", "deepest per-consumer chunk backlog at last broadcast")
}

// lagGauge returns the lag gauge for consumer slot i, creating it on
// first use. Lag is measured in chunks queued ahead of the consumer.
func (e *Engine) lagGauge(i int) *telemetry.Gauge {
	if e.reg == nil {
		return nil
	}
	for len(e.lag) <= i {
		e.lag = append(e.lag, e.reg.Gauge(
			fmt.Sprintf("fanout_consumer_lag_%d", len(e.lag)),
			fmt.Sprintf("chunk backlog of fan-out consumer %d", len(e.lag))))
	}
	return e.lag[i]
}

// Replay pulls every record from src exactly once and delivers it, in
// order, to every consumer. It returns ctx's error if the context is
// cancelled mid-stream (consumers may then have seen a prefix of the
// trace), and re-panics a *ConsumerPanic if any consumer panics. With a
// single consumer the replay runs inline on the caller's goroutine.
func (e *Engine) Replay(ctx context.Context, src memtrace.Source, consumers ...Consumer) error {
	if src == nil {
		return memtrace.ErrNilSource
	}
	for _, c := range consumers {
		if c == nil {
			return ErrNilConsumer
		}
	}
	if e.consumers != nil {
		e.consumers.Set(int64(len(consumers)))
	}
	if len(consumers) == 0 {
		return nil
	}
	if len(consumers) == 1 {
		return e.replayInline(ctx, src, consumers[0])
	}
	return e.replayFanout(ctx, src, consumers)
}

// chunkFiller returns the bulk-fill function for src: the source's own
// NextChunk when it implements memtrace.ChunkSource, otherwise a
// per-record fallback with the same contract (short fill only at end of
// stream).
func chunkFiller(src memtrace.Source) func(dst []memtrace.Access) int {
	if cs, ok := src.(memtrace.ChunkSource); ok {
		return cs.NextChunk
	}
	return func(dst []memtrace.Access) int { return memtrace.FillChunk(src, dst) }
}

// replayInline is the single-consumer fast path: no goroutines, no
// channels, just one reused chunk buffer filled in bulk and delivered
// with periodic cancellation polls.
func (e *Engine) replayInline(ctx context.Context, src memtrace.Source, c Consumer) error {
	cfg := e.cfg.withDefaults()
	fill := chunkFiller(src)
	buf := make([]memtrace.Access, cfg.ChunkSize)
	done := ctx.Done()
	for {
		n := fill(buf)
		if n == 0 {
			return nil
		}
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		c.Consume(buf[:n])
		e.countChunk(n)
		if n < cfg.ChunkSize {
			return nil // short fill: source exhausted
		}
	}
}

// sharedChunk is one pooled broadcast buffer. refs counts the consumers
// still holding it; the one that decrements it to zero returns the chunk
// to the pool for the producer to refill.
type sharedChunk struct {
	buf  []memtrace.Access
	refs atomic.Int32
}

// release drops one reference, recycling the chunk when it was the last.
func (sc *sharedChunk) release(pool *sync.Pool) {
	if sc.refs.Add(-1) == 0 {
		pool.Put(sc)
	}
}

// replayFanout is the multi-consumer path. Each consumer gets a bounded
// channel of shared read-only chunks — the channel is the consumer's
// window of the chunk ring, its length the consumer's cursor lag. Chunk
// buffers are reference-counted and pooled: the producer refills a
// buffer only after the last consumer has released it, so a slow
// consumer never observes a chunk being rewritten and steady-state
// broadcasting allocates nothing.
func (e *Engine) replayFanout(ctx context.Context, src memtrace.Source, consumers []Consumer) error {
	cfg := e.cfg.withDefaults()
	chans := make([]chan *sharedChunk, len(consumers))
	for i := range chans {
		chans[i] = make(chan *sharedChunk, cfg.Ring)
	}
	pool := &sync.Pool{New: func() any {
		return &sharedChunk{buf: make([]memtrace.Access, cfg.ChunkSize)}
	}}

	// abort is closed by the first panicking consumer; panicOnce
	// guards the recorded ConsumerPanic. A panicking consumer drains
	// its own channel so the producer can never deadlock against it.
	abort := make(chan struct{})
	var panicOnce sync.Once
	var relayed *ConsumerPanic

	var wg sync.WaitGroup
	wg.Add(len(consumers))
	for i, c := range consumers {
		go func(i int, c Consumer, ch chan *sharedChunk) {
			defer wg.Done()
			// Each consumer goroutine is one span: N configurations
			// replaying concurrently close N sibling spans from N
			// goroutines, which is exactly what the span system's
			// concurrency contract covers. Detached (no span in ctx)
			// this is a single context lookup per replay.
			_, csp := trace.Start(ctx, "consumer", trace.Int("consumer", i))
			defer csp.End()
			defer func() {
				if v := recover(); v != nil {
					panicOnce.Do(func() {
						relayed = &ConsumerPanic{Consumer: i, Val: v, Stack: stack()}
						close(abort)
					})
					// Keep draining (and releasing) so the producer's
					// send to this channel cannot block while it reacts
					// to abort.
					for sc := range ch {
						sc.release(pool)
					}
				}
			}()
			for sc := range ch {
				c.Consume(sc.buf)
				sc.release(pool)
			}
		}(i, c, chans[i])
	}

	closeAll := func() {
		for _, ch := range chans {
			close(ch)
		}
	}

	err := e.produce(ctx, src, chans, pool, abort, cfg)
	closeAll()
	wg.Wait()
	if relayed != nil {
		panic(relayed)
	}
	return err
}

// produce fills pooled chunks from src and broadcasts each to every
// consumer channel, blocking (backpressure) when a consumer's window is
// full. It stops on source exhaustion, context cancellation, or abort.
func (e *Engine) produce(ctx context.Context, src memtrace.Source,
	chans []chan *sharedChunk, pool *sync.Pool, abort <-chan struct{}, cfg Config) error {
	done := ctx.Done()
	fill := chunkFiller(src)
	for {
		sc := pool.Get().(*sharedChunk)
		buf := sc.buf[:cfg.ChunkSize]
		n := fill(buf)
		if n == 0 {
			pool.Put(sc)
			return nil
		}
		sc.buf = buf[:n]
		// Chunks abandoned mid-broadcast (abort/cancel) keep a positive
		// refcount and simply fall to the garbage collector.
		sc.refs.Store(int32(len(chans)))
		e.observeDepth(chans)
		for _, ch := range chans {
			select {
			case ch <- sc:
			case <-abort:
				return nil // the relayed panic carries the failure
			case <-done:
				return ctx.Err()
			}
		}
		e.countChunk(n)
		if n < cfg.ChunkSize {
			return nil // short fill: source exhausted
		}
	}
}

// countChunk advances the broadcast counters (no-ops when detached).
func (e *Engine) countChunk(records int) {
	e.chunks.Inc()
	e.records.Add(uint64(records))
}

// observeDepth records each consumer's current backlog and the maximum
// across consumers. Skipped entirely when telemetry is detached.
func (e *Engine) observeDepth(chans []chan *sharedChunk) {
	if e.reg == nil {
		return
	}
	max := 0
	for i, ch := range chans {
		n := len(ch)
		if n > max {
			max = n
		}
		e.lagGauge(i).Set(int64(n))
	}
	e.depth.Set(int64(max))
}

// stack captures the current goroutine's stack for panic relay.
func stack() []byte {
	buf := make([]byte, 64<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Replay runs a single-pass broadcast with the default configuration.
func Replay(ctx context.Context, src memtrace.Source, consumers ...Consumer) error {
	return New(Config{}).Replay(ctx, src, consumers...)
}
