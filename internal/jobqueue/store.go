package jobqueue

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"jouppi/internal/atomicfile"
)

// storeHeader prefixes every result entry; the hex digest that follows
// it covers the body bytes exactly. An entry that fails its own
// checksum — a torn write from before fsync discipline, bit rot, a
// stray editor — is quarantined, never served.
const storeHeader = "cachesimd-result v1 sha256="

// storeExt is the result entry filename extension; entry names are
// "<cache key>.res" where the key is already a hex digest.
const storeExt = ".res"

// Store is the daemon's content-addressed on-disk result cache. Entries
// are written atomically and durably (write-temp + fsync + rename, see
// internal/atomicfile) and validated by checksum on every read, so a
// crash mid-write can never surface a torn result and a damaged entry
// degrades to a cache miss instead of a wrong answer.
//
// Keys are derived by Spec.CacheKey from the trace digest, the
// canonicalized configuration list, and the build version, so a hit is
// byte-identical to the run that populated it and a new binary never
// serves results computed by old code.
type Store struct {
	dir string

	mu          sync.Mutex
	quarantined int
}

// OpenStore opens (creating if necessary) a result store rooted at dir
// and validates every existing entry. Corrupt entries are moved into
// dir/quarantine — preserved for post-mortems, never served — and
// counted, not fatal: a damaged cache must degrade to misses, not keep
// the daemon from starting.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobqueue: opening result store: %w", err)
	}
	s := &Store{dir: dir}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobqueue: opening result store: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), storeExt) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil || decodeEntry(data) == nil {
			if qerr := s.quarantine(path); qerr != nil {
				return nil, qerr
			}
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Quarantined returns how many corrupt entries have been quarantined
// since the store was opened (startup scan plus read-time detections).
// A nil store (caching disabled) reports zero.
func (s *Store) Quarantined() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// decodeEntry validates an entry's header and checksum, returning the
// body or nil if the entry is damaged in any way.
func decodeEntry(data []byte) []byte {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil
	}
	header := string(data[:nl])
	if !strings.HasPrefix(header, storeHeader) {
		return nil
	}
	want := strings.TrimPrefix(header, storeHeader)
	body := data[nl+1:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != want {
		return nil
	}
	return body
}

// quarantine moves a damaged entry aside, preserving it for inspection.
func (s *Store) quarantine(path string) error {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("jobqueue: quarantining %s: %w", path, err)
	}
	dst := filepath.Join(qdir, filepath.Base(path))
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), i))
	}
	if err := os.Rename(path, dst); err != nil {
		return fmt.Errorf("jobqueue: quarantining %s: %w", path, err)
	}
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
	return nil
}

// Get returns the cached body for key, if present and intact. A corrupt
// entry found at read time is quarantined and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	path := filepath.Join(s.dir, key+storeExt)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	body := decodeEntry(data)
	if body == nil {
		_ = s.quarantine(path)
		return nil, false
	}
	return body, true
}

// Put stores body under key, atomically and durably. A nil store
// silently drops the write (caching disabled).
func (s *Store) Put(key string, body []byte) error {
	if s == nil {
		return nil
	}
	sum := sha256.Sum256(body)
	entry := make([]byte, 0, len(storeHeader)+64+1+len(body))
	entry = append(entry, storeHeader...)
	entry = append(entry, hex.EncodeToString(sum[:])...)
	entry = append(entry, '\n')
	entry = append(entry, body...)
	return atomicfile.WriteFile(filepath.Join(s.dir, key+storeExt), entry, 0o644)
}
