package jobqueue

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"jouppi/internal/memtrace"
	"jouppi/internal/trace"
	"jouppi/sim"
)

// ConfigResult pairs one submitted configuration label with its
// simulation results.
type ConfigResult struct {
	Label   string      `json:"label"`
	Results sim.Results `json:"results"`
}

// ResultBody is the canonical result of a completed job — what GET
// /jobs/{id} returns under "result" and what the content-addressed
// store persists. Encode renders it deterministically, so a cache hit
// is byte-identical to the run that produced it.
type ResultBody struct {
	// Version is the build that computed the result (part of the cache
	// key, recorded for provenance).
	Version string `json:"version"`
	// Benchmark/Scale or TraceDigest identify the input.
	Benchmark   string  `json:"benchmark,omitempty"`
	Scale       float64 `json:"scale,omitempty"`
	TraceDigest string  `json:"trace_digest"`
	// Records is the replayed access count (decoded records for an
	// upload; generated accesses are not re-counted for benchmarks).
	Records uint64 `json:"records,omitempty"`
	// Degradation reports what a lenient decode dropped; absent for
	// clean inputs.
	Degradation *memtrace.Degradation `json:"degradation,omitempty"`
	Configs     []ConfigResult        `json:"configs"`
}

// Encode renders the body as canonical JSON (deterministic field order,
// trailing newline). Byte-identical inputs yield byte-identical output.
func (b *ResultBody) Encode() ([]byte, error) {
	data, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("jobqueue: encoding result: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeResult parses bytes produced by Encode.
func DecodeResult(data []byte) (*ResultBody, error) {
	var b ResultBody
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("jobqueue: decoding result: %w", err)
	}
	return &b, nil
}

// permanentError wraps a failure that retrying cannot fix: corrupt
// uploaded bytes, an invalid configuration. The queue accepts such
// failures immediately instead of burning retry attempts and backoff
// time on them.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as not retryable.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (anywhere in its chain) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Runner executes one validated job spec under ctx and produces its
// result. The queue's default is DefaultRunner; tests substitute
// deterministic or failing runners.
type Runner func(ctx context.Context, spec *Spec, version string) (*ResultBody, error)

// DefaultRunner simulates the job for real: benchmark jobs fan out
// through the single-pass replay engine (the workload is generated
// once, every configuration consumes the same stream); uploaded traces
// are decoded once — strictly, or leniently with a drop budget — and
// then replayed through each configuration. Cancellation is honoured
// between accesses on every path.
func DefaultRunner(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
	body := &ResultBody{
		Version:     version,
		Benchmark:   spec.Benchmark,
		Scale:       spec.Scale,
		TraceDigest: spec.TraceDigest(),
	}
	if spec.Benchmark != "" {
		// With Shards > 1 each configuration replays on its own sharded
		// system (intra-config parallelism); otherwise all configurations
		// share one generated stream through the fan-out engine
		// (inter-config parallelism). Same numbers either way — sharded
		// replay is bit-identical or falls back.
		if spec.Shards > 1 {
			for _, c := range spec.Configs {
				r, _, err := sim.ReplayShardedContext(ctx, spec.Benchmark, spec.Scale, spec.Shards, nil, c.Config)
				if err != nil {
					return nil, err
				}
				body.Configs = append(body.Configs, ConfigResult{Label: c.Label, Results: r})
			}
			return body, nil
		}
		cfgs := make([]sim.Config, len(spec.Configs))
		for i, c := range spec.Configs {
			cfgs[i] = c.Config
		}
		results, err := sim.ReplayManyContext(ctx, spec.Benchmark, spec.Scale, nil, cfgs)
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			body.Configs = append(body.Configs, ConfigResult{Label: spec.Configs[i].Label, Results: r})
		}
		return body, nil
	}

	// The upload is decoded exactly once; its extent is recorded as a
	// retroactive "decode" span so a slow trace shows up as decode time,
	// not replay time.
	decStart := time.Now()
	tr, degr, err := decodeUpload(spec)
	if err != nil {
		trace.FromContext(ctx).Record("decode", decStart, time.Now(),
			trace.String("format", spec.TraceFormat), trace.String("err", err.Error()))
		// The uploaded bytes are immutable; a decode failure now is a
		// decode failure forever.
		return nil, Permanent(fmt.Errorf("jobqueue: decoding uploaded trace: %w", err))
	}
	trace.FromContext(ctx).Record("decode", decStart, time.Now(),
		trace.String("format", spec.TraceFormat), trace.Int("records", tr.Len()))
	body.Records = uint64(tr.Len())
	if degr != nil && degr.Degraded() {
		body.Degradation = degr
	}
	for _, c := range spec.Configs {
		_, csp := trace.Start(ctx, "replay", trace.String("config", c.Label))
		if spec.Shards > 1 {
			ssys, err := sim.NewShardedSystem(c.Config, spec.Shards)
			if err != nil {
				csp.End()
				return nil, Permanent(fmt.Errorf("jobqueue: config %q: %w", c.Label, err))
			}
			csp.SetAttr("shards", fmt.Sprint(ssys.Info().Shards))
			if err := ssys.ReplaySource(ctx, tr.Source()); err != nil {
				csp.SetAttr("err", err.Error())
				csp.End()
				return nil, err
			}
			csp.End()
			body.Configs = append(body.Configs, ConfigResult{Label: c.Label, Results: ssys.Results()})
			continue
		}
		sys, err := sim.NewSystem(c.Config)
		if err != nil {
			csp.End()
			// Configs are validated at submission; reaching this means a
			// bug, but it is still not retryable.
			return nil, Permanent(fmt.Errorf("jobqueue: config %q: %w", c.Label, err))
		}
		if err := memtrace.EachContext(ctx, tr.Source(), func(a memtrace.Access) {
			switch a.Kind {
			case memtrace.Ifetch:
				sys.Ifetch(uint64(a.Addr))
			case memtrace.Load:
				sys.Load(uint64(a.Addr))
			case memtrace.Store:
				sys.Store(uint64(a.Addr))
			}
		}); err != nil {
			csp.SetAttr("err", err.Error())
			csp.End()
			return nil, err
		}
		csp.End()
		body.Configs = append(body.Configs, ConfigResult{Label: c.Label, Results: sys.Results()})
	}
	return body, nil
}

// decodeUpload decodes the spec's uploaded bytes into a materialized
// trace, once, applying the lenient count-and-skip policy if requested.
func decodeUpload(spec *Spec) (*memtrace.Trace, *memtrace.Degradation, error) {
	r := bytes.NewReader(spec.TraceData)
	if !spec.Lenient {
		var (
			tr  *memtrace.Trace
			err error
		)
		if spec.TraceFormat == FormatJTR1 {
			tr, err = memtrace.ReadTrace(r)
		} else {
			tr, err = memtrace.ReadDinero(r)
		}
		if err != nil {
			return nil, nil, err
		}
		return tr, nil, nil
	}

	var (
		src    memtrace.Source
		errFn  func() error
		degrFn func() memtrace.Degradation
	)
	if spec.TraceFormat == FormatJTR1 {
		// Lenient decode tolerates record-level damage; a damaged JTR1
		// header is rejected before any record exists to salvage.
		jr, err := memtrace.NewReader(r)
		if err != nil {
			return nil, nil, err
		}
		jr.Lenient(spec.MaxDrops)
		src, errFn, degrFn = jr, jr.Err, jr.Degradation
	} else {
		dr := memtrace.NewDineroReader(r).Lenient(spec.MaxDrops)
		src, errFn, degrFn = dr, dr.Err, dr.Degradation
	}
	tr := memtrace.NewTrace(0)
	memtrace.Each(src, tr.Append)
	if err := errFn(); err != nil {
		return nil, nil, err
	}
	degr := degrFn()
	return tr, &degr, nil
}
