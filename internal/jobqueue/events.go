package jobqueue

import (
	"context"
	"sync"
)

// eventLog is an append-only byte log with broadcast: one writer (the
// job's journal) appends JSONL event lines, any number of readers
// stream them live. It backs GET /jobs/{id}/events — a client can
// attach mid-run, replay everything emitted so far, and then follow new
// events until the job reaches a terminal state and the log closes.
type eventLog struct {
	mu     sync.Mutex
	data   []byte
	closed bool
	// change is closed and replaced on every append/close, waking every
	// blocked reader; readers grab the current channel under the lock
	// and wait on it outside.
	change chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{change: make(chan struct{})}
}

// Write implements io.Writer for telemetry.NewJournal.
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		// A late write after close (a journal flush racing job
		// completion) is dropped rather than resurrecting the stream.
		return len(p), nil
	}
	l.data = append(l.data, p...)
	l.wake()
	return len(p), nil
}

// Close marks the log complete; readers drain what remains and stop.
func (l *eventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		l.wake()
	}
}

// wake must be called with mu held.
func (l *eventLog) wake() {
	close(l.change)
	l.change = make(chan struct{})
}

// snapshot returns the bytes past from, whether the log is closed, and
// the channel that signals the next change.
func (l *eventLog) snapshot(from int) (chunk []byte, closed bool, change <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.data) {
		chunk = l.data[from:len(l.data):len(l.data)]
	}
	return chunk, l.closed, l.change
}

// stream sends the log to emit from the beginning, blocking for new
// data until the log closes or ctx is done. emit is called with chunks
// that are never modified afterwards.
func (l *eventLog) stream(ctx context.Context, emit func([]byte) error) error {
	off := 0
	for {
		chunk, closed, change := l.snapshot(off)
		if len(chunk) > 0 {
			if err := emit(chunk); err != nil {
				return err
			}
			off += len(chunk)
			continue
		}
		if closed {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-change:
		}
	}
}
