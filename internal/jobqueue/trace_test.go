package jobqueue

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"jouppi/internal/backoff"
	"jouppi/internal/telemetry"
	"jouppi/internal/trace"
)

// getTrace fetches the finished trace for a settled job.
func getTrace(t *testing.T, q *Queue, jobID string) trace.TraceData {
	t.Helper()
	td, ok := q.Tracer().TraceByID(jobID)
	if !ok {
		t.Fatalf("no trace retained for job %s", jobID)
	}
	return td
}

// TestJobSpanTreeAccountsWallClock is the accounting contract from the
// tracing design: the root span's direct children (queue-wait + run)
// must cover at least 95% of the job's end-to-end wall-clock, so a slow
// job always has a named stage to blame.
func TestJobSpanTreeAccountsWallClock(t *testing.T) {
	q := NewQueue(Options{Workers: 1, Version: "test"})
	defer q.Drain(time.Second)

	job, err := q.Submit(uploadSpec(t, testTraceDin(5000), "victim=4;misscache=2"))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, job); st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}

	td := getTrace(t, q, job.ID())
	if td.Root != "job" {
		t.Fatalf("root span = %q", td.Root)
	}
	root := td.Spans[len(td.Spans)-1]
	if root.Name != "job" {
		t.Fatalf("last span = %q, want the root", root.Name)
	}
	total := root.Duration()
	if total <= 0 {
		t.Fatalf("root duration = %v", total)
	}
	var covered time.Duration
	for _, s := range td.Spans {
		if s.Parent == root.ID {
			covered += s.Duration()
		}
	}
	if ratio := float64(covered) / float64(total); ratio < 0.95 {
		t.Fatalf("direct children cover %.1f%% of the root (%v of %v), want >= 95%%",
			100*ratio, covered, total)
	}

	// The expected stages must each be present, correctly parented.
	for _, name := range []string{"queue-wait", "run", "attempt", "decode", "replay"} {
		if _, ok := td.Span(name); !ok {
			t.Fatalf("span %q missing from %v", name, spanNames(td))
		}
	}
	run, _ := td.Span("run")
	att, _ := td.Span("attempt")
	if att.Parent != run.ID {
		t.Fatalf("attempt parent = %q, want run %q", att.Parent, run.ID)
	}
	dec, _ := td.Span("decode")
	if dec.Parent != att.ID {
		t.Fatalf("decode parent = %q, want attempt %q", dec.Parent, att.ID)
	}
	if dec.Attr("records") == "" {
		t.Fatalf("decode attrs = %v, want a records count", dec.Attrs)
	}
	// One replay span per configuration, each hanging off the attempt.
	var replays int
	for _, s := range td.Spans {
		if s.Name == "replay" {
			replays++
			if s.Parent != att.ID {
				t.Fatalf("replay parent = %q, want attempt %q", s.Parent, att.ID)
			}
		}
	}
	if replays != 2 {
		t.Fatalf("replay spans = %d, want one per config", replays)
	}
}

func spanNames(td trace.TraceData) []string {
	var names []string
	for _, s := range td.Spans {
		names = append(names, s.Name)
	}
	return names
}

// TestDedupJoinSpan checks that a second identical submission while the
// first is in flight marks a dedup-join on the primary's trace and
// journal instead of running twice.
func TestDedupJoinSpan(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	q := NewQueue(Options{
		Workers: 1, Version: "test",
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &ResultBody{Version: version, TraceDigest: spec.TraceDigest(),
				Configs: []ConfigResult{{Label: "baseline"}}}, nil
		},
	})
	defer q.Drain(time.Second)

	spec := uploadSpec(t, testTraceDin(20), "")
	first, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	second, err := q.Submit(uploadSpec(t, testTraceDin(20), ""))
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("identical submission got its own job %s, want join to %s",
			second.ID(), first.ID())
	}
	close(release)
	if st := waitJob(t, first); st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}

	td := getTrace(t, q, first.ID())
	join, ok := td.Span("dedup-join")
	if !ok {
		t.Fatalf("no dedup-join span in %v", spanNames(td))
	}
	root := td.Spans[len(td.Spans)-1]
	if join.Parent != root.ID {
		t.Fatalf("dedup-join parent = %q, want root %q", join.Parent, root.ID)
	}

	// The journal carries the matching dup-join event.
	var buf []telemetry.Event
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := first.StreamEvents(ctx, func(chunk []byte) error {
		events, err := telemetry.ReadEvents(bytes.NewReader(chunk))
		if err == nil {
			buf = append(buf, events...)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range buf {
		if e.Event == "dup-join" && e.ID == first.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dup-join event in journal (%d events)", len(buf))
	}
}

// TestRetryBackoffSpans checks a retried job's trace separates attempt
// time from backoff time: two attempt spans with one backoff span
// between them.
func TestRetryBackoffSpans(t *testing.T) {
	var calls int
	q := NewQueue(Options{
		Workers: 1, Version: "test", Retries: 1,
		Backoff: backoff.Policy{Base: 5 * time.Millisecond, Max: 10 * time.Millisecond},
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			calls++
			if calls == 1 {
				return nil, fmt.Errorf("transient failure")
			}
			return &ResultBody{Version: version, TraceDigest: spec.TraceDigest(),
				Configs: []ConfigResult{{Label: "baseline"}}}, nil
		},
	})
	defer q.Drain(time.Second)

	job, err := q.Submit(uploadSpec(t, testTraceDin(20), ""))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, job); st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}

	td := getTrace(t, q, job.ID())
	var attempts, backoffs int
	var failedAttempt trace.SpanData
	for _, s := range td.Spans {
		switch s.Name {
		case "attempt":
			attempts++
			if s.Attr("err") != "" {
				failedAttempt = s
			}
		case "backoff":
			backoffs++
		}
	}
	if attempts != 2 || backoffs != 1 {
		t.Fatalf("attempts = %d, backoffs = %d (spans %v), want 2 and 1",
			attempts, backoffs, spanNames(td))
	}
	if failedAttempt.Attr("err") != "transient failure" {
		t.Fatalf("failed attempt err attr = %q", failedAttempt.Attr("err"))
	}
	root := td.Spans[len(td.Spans)-1]
	if root.Attr("state") != string(StateDone) {
		t.Fatalf("root state attr = %q", root.Attr("state"))
	}
}

// TestCacheHitTrace checks a store-answered submission still produces a
// complete (if tiny) trace: a store-read child and a cache_hit-marked
// root.
func TestCacheHitTrace(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(Options{Workers: 1, Version: "test", Store: store})
	defer q.Drain(time.Second)

	first, err := q.Submit(uploadSpec(t, testTraceDin(20), ""))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, first)

	second, err := q.Submit(uploadSpec(t, testTraceDin(20), ""))
	if err != nil {
		t.Fatal(err)
	}
	st := second.Status()
	if !st.CacheHit {
		t.Fatalf("second submission not a cache hit: %+v", st)
	}
	td := getTrace(t, q, second.ID())
	root := td.Spans[len(td.Spans)-1]
	if root.Attr("cache_hit") != "true" || root.Attr("state") != string(StateDone) {
		t.Fatalf("cache-hit root attrs = %v", root.Attrs)
	}
	if _, ok := td.Span("store-read"); !ok {
		t.Fatalf("no store-read span in %v", spanNames(td))
	}
}
