package jobqueue

import (
	"strings"
	"testing"

	"jouppi/sim"
)

func validSpec() *Spec {
	return &Spec{
		TraceData:   []byte("0 1000\n1 2000\n2 3000\n"),
		TraceFormat: FormatDinero,
		Configs:     []ConfigSpec{{Label: "baseline", Config: sim.BaselineSystem()}},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"both inputs", func(s *Spec) { s.Benchmark = "liver"; s.Scale = 1 }, "not both"},
		{"no input", func(s *Spec) { s.TraceData = nil }, "must name a benchmark or upload"},
		{"bad format", func(s *Spec) { s.TraceFormat = "elf" }, "trace format"},
		{"no configs", func(s *Spec) { s.Configs = nil }, "at least one configuration"},
		{"negative timeout", func(s *Spec) { s.Timeout = -1 }, "negative timeout"},
		{"bad retries", func(s *Spec) { s.Retries = -2 }, "negative retries"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}

	bench := &Spec{Benchmark: "liver", Scale: 0.5, Configs: validSpec().Configs}
	if err := bench.Validate(); err != nil {
		t.Fatalf("benchmark spec rejected: %v", err)
	}
	bench.Scale = 0
	if err := bench.Validate(); err == nil {
		t.Fatal("zero scale accepted")
	}
	bench.Scale = 1
	bench.Benchmark = "nonesuch"
	if err := bench.Validate(); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("unknown benchmark: got %v", err)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	base := validSpec()
	key := base.CacheKey("v1")
	if key != base.CacheKey("v1") {
		t.Fatal("cache key is not deterministic")
	}
	variants := map[string]*Spec{
		"trace bytes": func() *Spec { s := validSpec(); s.TraceData = []byte("0 1004\n"); return s }(),
		"format":      func() *Spec { s := validSpec(); s.TraceFormat = FormatJTR1; return s }(),
		"lenient":     func() *Spec { s := validSpec(); s.Lenient = true; return s }(),
		"max drops":   func() *Spec { s := validSpec(); s.Lenient = true; s.MaxDrops = 5; return s }(),
		"config": func() *Spec {
			s := validSpec()
			s.Configs[0].Config.D.VictimCacheEntries = 4
			return s
		}(),
		"label": func() *Spec { s := validSpec(); s.Configs[0].Label = "other"; return s }(),
	}
	for name, v := range variants {
		if v.CacheKey("v1") == key {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
	if base.CacheKey("v2") == key {
		t.Error("changing the version did not change the cache key")
	}

	// Timeout/retry policy must NOT change the key: they affect how hard
	// the daemon tries, not what the result is.
	s := validSpec()
	s.Timeout, s.Deadline, s.Retries = 1000, 2000, 3
	if s.CacheKey("v1") != key {
		t.Error("execution policy leaked into the cache key")
	}
}

func TestTraceDigestBenchmarkVsUpload(t *testing.T) {
	b := &Spec{Benchmark: "liver", Scale: 0.25}
	if got := b.TraceDigest(); !strings.HasPrefix(got, "benchmark/liver@") {
		t.Fatalf("benchmark digest = %q", got)
	}
	b2 := &Spec{Benchmark: "liver", Scale: 0.5}
	if b.TraceDigest() == b2.TraceDigest() {
		t.Fatal("scale not folded into the benchmark digest")
	}
	u := validSpec()
	if len(u.TraceDigest()) != 64 {
		t.Fatalf("upload digest = %q, want 64 hex chars", u.TraceDigest())
	}
}

func TestParseConfigsGrammar(t *testing.T) {
	cfgs, err := ParseConfigs("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if len(cfgs) != 1 || cfgs[0].Label != "baseline" {
		t.Fatalf("empty spec = %+v, want one baseline", cfgs)
	}
	if cfgs[0].Config != sim.BaselineSystem() {
		t.Fatal("empty spec is not the baseline system")
	}

	cfgs, err = ParseConfigs("misscache=2; misscache=4 ;sys=improved")
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs, want 3", len(cfgs))
	}
	if cfgs[0].Config.D.MissCacheEntries != 2 || cfgs[1].Config.D.MissCacheEntries != 4 {
		t.Fatalf("misscache values wrong: %+v", cfgs)
	}
	if cfgs[1].Label != "misscache=4" {
		t.Fatalf("label not trimmed: %q", cfgs[1].Label)
	}
	imp := cfgs[2].Config
	if imp.D.VictimCacheEntries != 4 || imp.D.Stream == nil || imp.D.Stream.Ways != 4 {
		t.Fatalf("sys=improved preset wrong: %+v", imp)
	}

	cfgs, err = ParseConfigs("size=8192,line=32,assoc=2,l2size=2097152,victim=4,ways=2,depth=8,quasi=true")
	if err != nil {
		t.Fatalf("full grammar: %v", err)
	}
	c := cfgs[0].Config
	switch {
	case c.L1I.Size != 8192 || c.L1D.Size != 8192:
		t.Fatalf("size: %+v", c)
	case c.L1D.LineSize != 32 || c.L1I.Assoc != 2:
		t.Fatalf("line/assoc: %+v", c)
	case c.L2.Size != 2097152:
		t.Fatalf("l2size: %+v", c)
	case c.D.VictimCacheEntries != 4 || c.D.Stream == nil || c.D.Stream.Ways != 2 || c.D.Stream.Depth != 8 || !c.D.Stream.Quasi:
		t.Fatalf("augmentation: %+v", c)
	}

	cfgs, err = ParseConfigs("isize=2048,iways=1,idepth=4,imisscache=0")
	if err != nil {
		t.Fatalf("i-side: %v", err)
	}
	c = cfgs[0].Config
	if c.L1I.Size != 2048 || c.L1D.Size != 0 || c.I.Stream == nil || c.I.Stream.Ways != 1 {
		t.Fatalf("i-side: %+v", c)
	}

	for _, bad := range []string{
		"nonsense",
		"size=big",
		"sys=huge",
		"misscache=2,victim=2", // rejected by sim validation
		"quasi=true",           // no stream buffers to apply it to
		"frobnicate=1",
	} {
		if _, err := ParseConfigs(bad); err == nil {
			t.Errorf("ParseConfigs(%q) accepted", bad)
		}
	}
}
