package jobqueue

import (
	"context"
	"strings"
	"testing"
)

// TestSpecShardsValidation pins the accepted shard range: 0 (default,
// sequential) through 64 (the partitioner's own cap).
func TestSpecShardsValidation(t *testing.T) {
	for _, ok := range []int{0, 1, 2, 64} {
		s := validSpec()
		s.Shards = ok
		if err := s.Validate(); err != nil {
			t.Errorf("shards=%d rejected: %v", ok, err)
		}
	}
	for _, bad := range []int{-1, 65, 1000} {
		s := validSpec()
		s.Shards = bad
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "shards") {
			t.Errorf("shards=%d: got %v, want shards range error", bad, err)
		}
	}
}

// TestCacheKeyIgnoresShards pins the policy boundary: sharding changes
// how a result is computed, never what it is, so a sharded and a
// sequential submission of the same job must share one cache entry.
func TestCacheKeyIgnoresShards(t *testing.T) {
	base := validSpec()
	key := base.CacheKey("v1")
	s := validSpec()
	s.Shards = 8
	if s.CacheKey("v1") != key {
		t.Error("shards leaked into the cache key")
	}
}

// TestSubmitRequestShardsRoundTrip checks the API field reaches the
// spec and is range-checked at submission time.
func TestSubmitRequestShardsRoundTrip(t *testing.T) {
	req := &SubmitRequest{Benchmark: "liver", Scale: 0.05, Shards: 4}
	spec, err := req.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shards != 4 {
		t.Fatalf("spec.Shards = %d, want 4", spec.Shards)
	}
	req.Shards = 128
	if _, err := req.ToSpec(); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("shards=128: got %v, want shards range error", err)
	}
}

// TestRunnerShardedUploadParity runs the same uploaded-trace job
// sequentially and sharded and requires byte-identical encoded results.
// The config list mixes a shardable baseline with a victim-cache config
// that must take the sequential fallback — parity covers both routes.
func TestRunnerShardedUploadParity(t *testing.T) {
	trace := testTraceDin(400)
	spec := uploadSpec(t, trace, ";size=8192;victim=4")

	seq, err := DefaultRunner(context.Background(), spec, "test")
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = 4
	sharded, err := DefaultRunner(context.Background(), spec, "test")
	if err != nil {
		t.Fatal(err)
	}
	seqBytes, err := seq.Encode()
	if err != nil {
		t.Fatal(err)
	}
	shardedBytes, err := sharded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(seqBytes) != string(shardedBytes) {
		t.Errorf("sharded upload result diverged\n--- sequential ---\n%s--- sharded ---\n%s",
			seqBytes, shardedBytes)
	}
}

// TestRunnerShardedBenchmarkParity does the same for a generated
// workload: the sharded per-config path must reproduce the fan-out
// engine's numbers exactly.
func TestRunnerShardedBenchmarkParity(t *testing.T) {
	cfgs, err := ParseConfigs(";size=8192")
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Benchmark: "liver", Scale: 0.05, Configs: cfgs, Retries: -1}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	seq, err := DefaultRunner(context.Background(), spec, "test")
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = 4
	sharded, err := DefaultRunner(context.Background(), spec, "test")
	if err != nil {
		t.Fatal(err)
	}
	seqBytes, err := seq.Encode()
	if err != nil {
		t.Fatal(err)
	}
	shardedBytes, err := sharded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(seqBytes) != string(shardedBytes) {
		t.Errorf("sharded benchmark result diverged\n--- sequential ---\n%s--- sharded ---\n%s",
			seqBytes, shardedBytes)
	}
}

// TestRunnerShardedCancellation pins that a sharded replay still
// honours cancellation between accesses.
func TestRunnerShardedCancellation(t *testing.T) {
	spec := uploadSpec(t, testTraceDin(400), "")
	spec.Shards = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DefaultRunner(ctx, spec, "test"); err == nil {
		t.Fatal("cancelled sharded run succeeded")
	}
}
