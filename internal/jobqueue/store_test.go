package jobqueue

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	body := []byte(`{"configs":[{"label":"baseline"}]}` + "\n")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit before put")
	}
	if err := s.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want the stored body", got, ok)
	}

	// A fresh open over the same directory must serve the same bytes.
	s2, err := OpenStore(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatal("entry lost across reopen")
	}
	if s2.Quarantined() != 0 {
		t.Fatalf("clean store quarantined %d entries", s2.Quarantined())
	}
}

func TestStoreQuarantinesCorruptEntryAtOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := strings.Repeat("aa", 32)
	bad := strings.Repeat("bb", 32)
	if err := s.Put(good, []byte("good result\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bad, []byte("doomed result\n")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second entry's body the way a torn write would.
	path := filepath.Join(dir, bad+storeExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("corrupt entry was fatal at open: %v", err)
	}
	if s2.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s2.Quarantined())
	}
	if _, ok := s2.Get(bad); ok {
		t.Fatal("corrupt entry served")
	}
	if got, ok := s2.Get(good); !ok || string(got) != "good result\n" {
		t.Fatal("intact entry lost in the purge")
	}
	// The damaged bytes are preserved for inspection, not deleted.
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qents) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(qents), err)
	}
}

func TestStoreQuarantinesCorruptEntryAtRead(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("cc", 32)
	if err := s.Put(key, []byte("result\n")); err != nil {
		t.Fatal(err)
	}
	// Flip a body byte after the startup scan: read-time detection.
	path := filepath.Join(dir, key+storeExt)
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("bit-rotted entry served")
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s.Quarantined())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still in the serving directory")
	}
}

func TestStoreHeaderOnlyAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	// A file with a valid-looking name but no newline, and a foreign file
	// that is not a result entry at all.
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("dd", 32)+storeExt), []byte("no newline"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hands off"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1 (the truncated entry, not the README)", s.Quarantined())
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatal("foreign file was touched")
	}
}

func TestNilStoreIsDisabledCache(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if s.Quarantined() != 0 {
		t.Fatal("nil store quarantined")
	}
}
