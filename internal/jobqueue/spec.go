package jobqueue

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"jouppi/internal/trace"
	"jouppi/sim"
)

// Trace upload formats accepted by POST /jobs.
const (
	FormatJTR1   = "jtr1"
	FormatDinero = "din"
)

// ConfigSpec is one system configuration of a job, with the label it
// was submitted under. It marshals deterministically (fixed field
// order), which is what makes it usable inside the cache key.
type ConfigSpec struct {
	Label  string     `json:"label"`
	Config sim.Config `json:"config"`
}

// Spec is a fully-parsed, validated job: what to simulate and how hard
// to try. The API layer builds it from the request JSON; everything
// here has already been checked, so a Spec that reaches the queue can
// only fail for runtime reasons (corrupt trace body, panic, timeout).
type Spec struct {
	// Benchmark names a built-in workload; Scale sizes it. Mutually
	// exclusive with TraceData.
	Benchmark string
	Scale     float64
	// TraceData is an uploaded encoded trace in TraceFormat (jtr1/din).
	TraceData   []byte
	TraceFormat string
	// Lenient enables count-and-skip decode of damaged uploads; the
	// resulting Degradation report is surfaced in the job status.
	// MaxDrops caps tolerated damage (0 = unlimited).
	Lenient  bool
	MaxDrops uint64
	// Configs is the fan-out list: every configuration replays the same
	// single trace decode.
	Configs []ConfigSpec
	// Timeout bounds each attempt; Deadline bounds the whole job across
	// retries and backoff. Zero values take the queue defaults.
	Timeout  time.Duration
	Deadline time.Duration
	// Retries re-runs a retryably-failed job this many extra times,
	// paced by the queue's backoff policy. -1 means the queue default.
	Retries int
	// Shards replays each configuration on this many set-partitioned
	// shards (0 or 1 = sequential). Sharding is pure execution policy:
	// results are bit-identical (configurations that cannot shard fall
	// back to a sequential replay automatically), so Shards is excluded
	// from the cache key — a sharded and a sequential submission of the
	// same job share one result.
	Shards int
}

// Validate checks a Spec the way Submit will rely on it.
func (s *Spec) Validate() error {
	switch {
	case s.Benchmark != "" && len(s.TraceData) > 0:
		return fmt.Errorf("jobqueue: a job names a benchmark or uploads a trace, not both")
	case s.Benchmark == "" && len(s.TraceData) == 0:
		return fmt.Errorf("jobqueue: a job must name a benchmark or upload a trace")
	case s.Benchmark != "":
		if !(s.Scale > 0) || math.IsInf(s.Scale, 0) {
			return fmt.Errorf("jobqueue: scale must be a positive finite number, got %v", s.Scale)
		}
		found := false
		for _, b := range sim.Benchmarks() {
			if b == s.Benchmark {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("jobqueue: unknown benchmark %q (have %v)", s.Benchmark, sim.Benchmarks())
		}
	default:
		if s.TraceFormat != FormatJTR1 && s.TraceFormat != FormatDinero {
			return fmt.Errorf("jobqueue: trace format must be %q or %q, got %q",
				FormatJTR1, FormatDinero, s.TraceFormat)
		}
	}
	if len(s.Configs) == 0 {
		return fmt.Errorf("jobqueue: a job needs at least one configuration")
	}
	if s.Timeout < 0 || s.Deadline < 0 {
		return fmt.Errorf("jobqueue: negative timeout")
	}
	if s.Retries < -1 {
		return fmt.Errorf("jobqueue: negative retries")
	}
	if s.Shards < 0 || s.Shards > 64 {
		return fmt.Errorf("jobqueue: shards must be between 0 and 64, got %d", s.Shards)
	}
	return nil
}

// traceAttrs describes the job's input for its root span: what is being
// simulated and how wide the fan-out is, without ever embedding trace
// bytes.
func (s *Spec) traceAttrs() []trace.Attr {
	attrs := []trace.Attr{trace.Int("configs", len(s.Configs))}
	if s.Benchmark != "" {
		attrs = append(attrs,
			trace.String("benchmark", s.Benchmark),
			trace.String("scale", strconv.FormatFloat(s.Scale, 'g', -1, 64)))
	} else {
		attrs = append(attrs,
			trace.String("format", s.TraceFormat),
			trace.Int("upload_bytes", len(s.TraceData)))
	}
	return attrs
}

// TraceDigest returns the identity of the job's input trace: the hex
// SHA-256 of the uploaded bytes, or "benchmark/<name>@<scale>" with the
// scale's exact bits for a referenced workload.
func (s *Spec) TraceDigest() string {
	if s.Benchmark != "" {
		return fmt.Sprintf("benchmark/%s@%016x", s.Benchmark, math.Float64bits(s.Scale))
	}
	sum := sha256.Sum256(s.TraceData)
	return hex.EncodeToString(sum[:])
}

// CacheKey derives the content address of the job's result: a SHA-256
// over the trace digest, the decode options (lenient decode changes the
// replayed stream, so it must key separately), the canonicalized
// configuration list, and the build version. Identical submissions to
// the same binary collapse to one key; any difference in input, config,
// or code yields a different one. Execution policy — Timeout, Deadline,
// Retries, Shards — is deliberately excluded: it changes how the result
// is computed, never what it is (sharded replay is bit-identical by the
// shardreplay differential suite), so policy variants share one result.
func (s *Spec) CacheKey(version string) string {
	h := sha256.New()
	fmt.Fprintf(h, "trace=%s format=%s lenient=%t maxdrops=%d\n",
		s.TraceDigest(), s.TraceFormat, s.Lenient, s.MaxDrops)
	cfgs, err := json.Marshal(s.Configs)
	if err != nil {
		// sim.Config is plain data; Marshal cannot fail. Guard anyway.
		cfgs = []byte(fmt.Sprintf("%+v", s.Configs))
	}
	h.Write(cfgs)
	fmt.Fprintf(h, "\nversion=%s\n", version)
	return hex.EncodeToString(h.Sum(nil))
}

// ParseConfigs parses a fan-out configuration list: semicolon-separated
// specs, each a comma-separated key=value list over the grammar below.
// The empty spec is the paper baseline, labelled "baseline"; each
// spec's label is its own trimmed text.
//
//	sys=baseline|improved      preset to start from
//	size/line/assoc=N          both L1 geometries (isize/dsize etc. for one side)
//	l2size/l2line/l2assoc=N    L2 geometry
//	victim=N / ivictim=N       D-/I-side victim cache entries
//	misscache=N / imisscache=N D-/I-side miss cache entries
//	ways=N,depth=N             D-side stream buffers (iways/idepth for I-side)
//	quasi=bool, stride=bool    stream buffer extensions (both sides)
//	l2victim=N                 victim cache behind the L2
//
// Every parsed configuration is validated by constructing the system,
// so a spec that parses is a spec that runs.
func ParseConfigs(s string) ([]ConfigSpec, error) {
	var out []ConfigSpec
	for _, one := range strings.Split(s, ";") {
		cfg, label, err := parseOneConfig(one)
		if err != nil {
			return nil, err
		}
		if _, err := sim.NewSystem(cfg); err != nil {
			return nil, fmt.Errorf("jobqueue: config %q: %w", label, err)
		}
		out = append(out, ConfigSpec{Label: label, Config: cfg})
	}
	return out, nil
}

// parseOneConfig parses one semicolon-separated element of a config
// list into a sim.Config.
func parseOneConfig(s string) (sim.Config, string, error) {
	cfg := sim.BaselineSystem()
	label := strings.TrimSpace(s)
	if label == "" {
		label = "baseline"
	}
	var (
		iWays, iDepth, dWays, dDepth int
		quasi, stride                bool
		haveIStream, haveDStream     bool
	)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, "", fmt.Errorf("jobqueue: config %q: want key=value, got %q", label, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		bad := func(err error) (sim.Config, string, error) {
			return cfg, "", fmt.Errorf("jobqueue: config %q: %s: %v", label, key, err)
		}
		switch key {
		case "sys":
			switch val {
			case "baseline":
				cfg = sim.BaselineSystem()
			case "improved":
				cfg = sim.ImprovedSystem()
				if st := cfg.I.Stream; st != nil {
					iWays, iDepth, haveIStream = st.Ways, st.Depth, true
				}
				if st := cfg.D.Stream; st != nil {
					dWays, dDepth, haveDStream = st.Ways, st.Depth, true
				}
			default:
				return bad(fmt.Errorf("unknown preset %q (have baseline, improved)", val))
			}
		case "quasi", "stride":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return bad(err)
			}
			if key == "quasi" {
				quasi = b
			} else {
				stride = b
			}
		default:
			n, err := strconv.Atoi(val)
			if err != nil {
				return bad(err)
			}
			switch key {
			case "size":
				cfg.L1I.Size, cfg.L1D.Size = n, n
			case "isize":
				cfg.L1I.Size = n
			case "dsize":
				cfg.L1D.Size = n
			case "line":
				cfg.L1I.LineSize, cfg.L1D.LineSize = n, n
			case "iline":
				cfg.L1I.LineSize = n
			case "dline":
				cfg.L1D.LineSize = n
			case "assoc":
				cfg.L1I.Assoc, cfg.L1D.Assoc = n, n
			case "iassoc":
				cfg.L1I.Assoc = n
			case "dassoc":
				cfg.L1D.Assoc = n
			case "l2size":
				cfg.L2.Size = n
			case "l2line":
				cfg.L2.LineSize = n
			case "l2assoc":
				cfg.L2.Assoc = n
			case "victim":
				cfg.D.VictimCacheEntries = n
			case "ivictim":
				cfg.I.VictimCacheEntries = n
			case "misscache":
				cfg.D.MissCacheEntries = n
			case "imisscache":
				cfg.I.MissCacheEntries = n
			case "ways":
				dWays, haveDStream = n, true
			case "depth":
				dDepth, haveDStream = n, true
			case "iways":
				iWays, haveIStream = n, true
			case "idepth":
				iDepth, haveIStream = n, true
			case "l2victim":
				cfg.L2VictimEntries = n
			default:
				return cfg, "", fmt.Errorf("jobqueue: config %q: unknown key %q", label, key)
			}
		}
	}
	if haveIStream {
		cfg.I.Stream = &sim.StreamOptions{Ways: iWays, Depth: iDepth, Quasi: quasi, DetectStride: stride}
	}
	if haveDStream {
		cfg.D.Stream = &sim.StreamOptions{Ways: dWays, Depth: dDepth, Quasi: quasi, DetectStride: stride}
	}
	if (quasi || stride) && !haveIStream && !haveDStream {
		return cfg, "", fmt.Errorf("jobqueue: config %q: quasi/stride require stream buffers (ways/iways)", label)
	}
	return cfg, label, nil
}
