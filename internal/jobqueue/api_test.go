package jobqueue

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jouppi/internal/telemetry"
)

// newTestServer builds a queue + API pair over an httptest server.
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Queue, *telemetry.Registry) {
	t.Helper()
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
		opts.Registry = reg
	}
	if opts.Version == "" {
		opts.Version = "test"
	}
	q := NewQueue(opts)
	srv := httptest.NewServer(NewServer(q, reg))
	t.Cleanup(func() {
		srv.Close()
		q.Drain(time.Second)
	})
	return srv, q, reg
}

func submitJSON(t *testing.T, srv *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &st)
	return resp, st
}

func getStatus(t *testing.T, srv *httptest.Server, id string) (int, Status) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatal(err)
	}
	return resp.StatusCode, st
}

// pollDone polls GET /jobs/{id} until the job is terminal.
func pollDone(t *testing.T, srv *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, srv, id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return Status{}
}

func TestAPISubmitBenchmarkJob(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{Workers: 2})

	resp, st := submitJSON(t, srv,
		`{"benchmark": "liver", "scale": 0.02, "configs": "misscache=2;misscache=4"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	done := pollDone(t, srv, st.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s, err %q", done.State, done.Error)
	}
	var body ResultBody
	if err := json.Unmarshal(done.Result, &body); err != nil {
		t.Fatal(err)
	}
	if body.Benchmark != "liver" || len(body.Configs) != 2 {
		t.Fatalf("result = %+v", body)
	}
	if body.Configs[0].Results.Instructions == 0 {
		t.Fatal("benchmark replay produced no instructions")
	}
}

func TestAPISubmitUploadedTrace(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{Workers: 1})

	trace := base64.StdEncoding.EncodeToString(testTraceDin(50))
	resp, st := submitJSON(t, srv, fmt.Sprintf(
		`{"trace": %q, "trace_format": "din", "configs": "victim=4", "timeout": "30s"}`, trace))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}
	done := pollDone(t, srv, st.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s, err %q", done.State, done.Error)
	}
}

func TestAPIBadRequests(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{Workers: 1})
	for name, body := range map[string]string{
		"not json":       `{"benchmark": `,
		"unknown field":  `{"benchmark": "liver", "scale": 1, "frobnicate": true}`,
		"no input":       `{"configs": "victim=4"}`,
		"both inputs":    `{"benchmark": "liver", "scale": 1, "trace": "AAAA", "trace_format": "din"}`,
		"bad benchmark":  `{"benchmark": "nonesuch", "scale": 1}`,
		"bad base64":     `{"trace": "!!!", "trace_format": "din"}`,
		"bad format":     `{"trace": "AAAA", "trace_format": "elf"}`,
		"bad config":     `{"benchmark": "liver", "scale": 1, "configs": "frobnicate=1"}`,
		"bad timeout":    `{"benchmark": "liver", "scale": 1, "timeout": "soon"}`,
		"negative scale": `{"benchmark": "liver", "scale": -1}`,
	} {
		resp, _ := submitJSON(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if code, _ := getStatus(t, srv, "j99999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
}

func TestAPIQueueFullReturns429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	srv, _, _ := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1,
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			<-release
			return &ResultBody{TraceDigest: spec.TraceDigest()}, nil
		},
	})
	defer close(release)

	var got429 bool
	for i := 0; i < 4 && !got429; i++ {
		trace := base64.StdEncoding.EncodeToString(testTraceDin(i + 1))
		resp, _ := submitJSON(t, srv, fmt.Sprintf(`{"trace": %q, "trace_format": "din"}`, trace))
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if !got429 {
		t.Fatal("queue never returned 429")
	}
}

func TestAPIDrainingReturns503(t *testing.T) {
	srv, q, _ := newTestServer(t, Options{Workers: 1})
	q.Drain(time.Second)
	resp, _ := submitJSON(t, srv, `{"benchmark": "liver", "scale": 0.02}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestAPIEventsStreamsJournal(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{Workers: 1})
	_, st := submitJSON(t, srv, `{"benchmark": "liver", "scale": 0.02, "configs": "victim=2"}`)

	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("Content-Type = %q", ct)
	}
	// The stream ends when the job settles; every line is a journal event.
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, e.Event)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Span closes interleave with the lifecycle events (the queue-wait
	// span closes before run-start, the root "job" span after
	// run-finish); the RunAll framing must still be present in order.
	var lifecycle []string
	for _, k := range kinds {
		if k != "span" {
			lifecycle = append(lifecycle, k)
		}
	}
	if len(lifecycle) == 0 || lifecycle[0] != "run-start" || lifecycle[len(lifecycle)-1] != "run-finish" {
		t.Fatalf("event kinds = %v", kinds)
	}
}

func TestAPIHealthAndMetrics(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, _, _ := newTestServer(t, Options{Workers: 1, Store: store})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status      string `json:"status"`
		Draining    bool   `json:"draining"`
		Version     string `json:"version"`
		Quarantined int    `json:"quarantined"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Draining || health.Version != "test" {
		t.Fatalf("health = %+v", health)
	}

	_, st := submitJSON(t, srv, `{"benchmark": "liver", "scale": 0.02}`)
	pollDone(t, srv, st.ID)

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"jobqueue_submitted_total 1",
		"jobqueue_completed_total 1",
		"jobqueue_job_duration_seconds_count 1",
		"jobqueue_depth 0",
	} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
