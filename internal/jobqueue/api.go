package jobqueue

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"jouppi/internal/telemetry"
	"jouppi/internal/trace"
)

// maxRequestBytes bounds a POST /jobs body; an uploaded trace has to
// fit in it (base64-encoded).
const maxRequestBytes = 64 << 20

// SubmitRequest is the POST /jobs body. A job either names a built-in
// benchmark or uploads a trace, and lists the configurations to fan the
// single trace pass out over (the cachesim -configs grammar).
type SubmitRequest struct {
	// Benchmark and Scale reference a built-in workload.
	Benchmark string  `json:"benchmark,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	// Trace is a base64-encoded trace body in TraceFormat ("jtr1" or
	// "din"). Lenient decodes damaged uploads with a count-and-skip
	// policy, dropping at most MaxDrops records (0 = unlimited).
	Trace       string `json:"trace,omitempty"`
	TraceFormat string `json:"trace_format,omitempty"`
	Lenient     bool   `json:"lenient,omitempty"`
	MaxDrops    uint64 `json:"max_drops,omitempty"`
	// Configs is the fan-out spec (see ParseConfigs), e.g.
	// "misscache=2;misscache=4;sys=improved". Empty means the paper
	// baseline alone.
	Configs string `json:"configs,omitempty"`
	// Timeout bounds each attempt, Deadline the whole job; Go duration
	// strings ("30s", "2m"). Empty takes the server defaults.
	Timeout  string `json:"timeout,omitempty"`
	Deadline string `json:"deadline,omitempty"`
	// Retries overrides the server's retry budget when non-nil.
	Retries *int `json:"retries,omitempty"`
	// Shards replays each configuration on this many set-partitioned
	// shards (0 or 1 = sequential; max 64). Results are bit-identical
	// either way — configurations that cannot shard fall back to a
	// sequential replay — so shards does not change the job's cache key.
	Shards int `json:"shards,omitempty"`
}

// ToSpec validates the request into a runnable Spec.
func (r *SubmitRequest) ToSpec() (*Spec, error) {
	spec := &Spec{
		Benchmark:   r.Benchmark,
		Scale:       r.Scale,
		TraceFormat: r.TraceFormat,
		Lenient:     r.Lenient,
		MaxDrops:    r.MaxDrops,
		Retries:     -1,
		Shards:      r.Shards,
	}
	if r.Trace != "" {
		data, err := base64.StdEncoding.DecodeString(r.Trace)
		if err != nil {
			return nil, fmt.Errorf("jobqueue: trace is not valid base64: %v", err)
		}
		spec.TraceData = data
	}
	cfgs, err := ParseConfigs(r.Configs)
	if err != nil {
		return nil, err
	}
	spec.Configs = cfgs
	if r.Timeout != "" {
		if spec.Timeout, err = time.ParseDuration(r.Timeout); err != nil {
			return nil, fmt.Errorf("jobqueue: timeout: %v", err)
		}
	}
	if r.Deadline != "" {
		if spec.Deadline, err = time.ParseDuration(r.Deadline); err != nil {
			return nil, fmt.Errorf("jobqueue: deadline: %v", err)
		}
	}
	if r.Retries != nil {
		spec.Retries = *r.Retries
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Server is the daemon's HTTP API over a Queue:
//
//	POST /jobs              submit a job (202; 200 if answered from cache;
//	                        400 invalid; 429 queue full, with Retry-After;
//	                        503 draining)
//	GET  /jobs/{id}         job status, with the result when done
//	GET  /jobs/{id}/events  the job's JSONL event journal, streamed live
//	                        until the job is terminal
//	GET  /healthz           liveness, drain state, store quarantine count
//	GET  /debug/traces      finished job span trees + per-stage SLO summary
//	GET  /metrics, /vars, /debug/...  the telemetry endpoints
type Server struct {
	queue *Queue
	mux   *http.ServeMux

	mu       sync.Mutex
	draining bool
}

// NewServer builds the API. reg must be the registry the queue
// publishes to (it backs /metrics).
func NewServer(q *Queue, reg *telemetry.Registry) *Server {
	s := &Server{queue: q, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	tel := telemetry.Handler(reg)
	s.mux.Handle("GET /metrics", tel)
	s.mux.Handle("GET /vars", tel)
	s.mux.Handle("GET /debug/", tel)
	// More specific than /debug/, so it wins routing: the finished-job
	// span trees and the per-stage SLO summary.
	s.mux.Handle("GET /debug/traces", trace.Handler(q.Tracer(), q.SLO()))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetDraining flips what /healthz reports, so load balancers see the
// drain before the listener closes.
func (s *Server) SetDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("parsing request: %v", err)})
		return
	}
	spec, err := req.ToSpec()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	job, err := s.queue.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// The queue is a fixed-size admission buffer; tell the client to
		// back off briefly and try again rather than queueing unboundedly.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	st := job.Status()
	if st.State.Terminal() {
		// Answered from the result store: the job is already done.
		writeJSON(w, http.StatusOK, st)
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	_ = job.StreamEvents(r.Context(), func(chunk []byte) error {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"draining":    draining,
		"version":     s.queue.Version(),
		"quarantined": s.queue.opts.Store.Quarantined(),
	})
}
