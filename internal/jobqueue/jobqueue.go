// Package jobqueue is the engine of cachesimd, the simulation-as-a-
// service daemon: a bounded job queue with a worker pool that executes
// simulation jobs through the same resilient runner the CLI sweeps use
// (experiments.RunAll — panic isolation, per-attempt timeouts, retries
// paced by capped exponential backoff), in front of a content-addressed
// crash-safe result store.
//
// The design favours predictable degradation over unbounded queues:
// admission is a non-blocking send into a fixed-depth channel (full →
// ErrQueueFull, which the API layer maps to 429), identical in-flight
// submissions join the existing job instead of running twice, and a
// drain stops admission, rejects what is still queued, and gives
// in-flight jobs a deadline to finish before cancelling them.
package jobqueue

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"jouppi/internal/backoff"
	"jouppi/internal/experiments"
	"jouppi/internal/telemetry"
	"jouppi/internal/trace"
)

// Queue admission errors.
var (
	// ErrQueueFull reports that the bounded queue had no room; the
	// client should back off and resubmit (HTTP 429).
	ErrQueueFull = fmt.Errorf("jobqueue: queue full")
	// ErrDraining reports that the daemon is shutting down and admits
	// nothing new (HTTP 503).
	ErrDraining = fmt.Errorf("jobqueue: server draining")
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateRejected State = "rejected" // queued at drain time, never ran
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateRejected
}

// Status is a point-in-time snapshot of a job, shaped for the API.
type Status struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Error    string `json:"error,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Attempts counts runner invocations (1 + retries); 0 until the
	// first attempt starts, and for cache hits.
	Attempts int       `json:"attempts,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Result is the canonical ResultBody JSON, present when done.
	Result json.RawMessage `json:"result,omitempty"`
}

// Job is one admitted submission.
type Job struct {
	id     string
	key    string
	spec   *Spec
	events *eventLog
	// jnl is the job's journal over events: RunAll lifecycle events and
	// span closes interleave on it, so /jobs/{id}/events is the complete
	// per-job timeline.
	jnl *telemetry.Journal
	// root is the job's root span (admission to terminal state);
	// queueWait covers admission to worker pickup. Both nil-safe.
	root      *trace.Span
	queueWait *trace.Span
	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu       sync.Mutex
	state    State
	err      string
	cacheHit bool
	attempts int
	created  time.Time
	started  time.Time
	finished time.Time
	result   []byte
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:       j.id,
		State:    j.state,
		Error:    j.err,
		CacheHit: j.cacheHit,
		Attempts: j.attempts,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Result:   json.RawMessage(j.result),
	}
}

// Result returns the encoded ResultBody, or nil if the job is not done.
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// StreamEvents replays the job's JSONL event log from the beginning and
// follows it live until the job is terminal or ctx is done. The schema
// is the experiments journal schema (telemetry.Event).
func (j *Job) StreamEvents(ctx context.Context, emit func([]byte) error) error {
	return j.events.stream(ctx, emit)
}

// Options configures a Queue. The zero value is usable: one worker, a
// small queue, no cache, defaults for every bound.
type Options struct {
	// Workers is the worker-pool size (1 when zero or negative).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (16 when 0).
	QueueDepth int
	// JobTimeout bounds each attempt of a job that does not set its own
	// (0 = unbounded). JobDeadline bounds the whole job across attempts
	// and backoff waits.
	JobTimeout  time.Duration
	JobDeadline time.Duration
	// Retries re-runs a retryably-failed job this many extra times.
	Retries int
	// Backoff paces retries; the zero policy's defaults apply.
	Backoff backoff.Policy
	// Store, when non-nil, is the content-addressed result cache.
	Store *Store
	// Registry receives the queue's metrics; a private registry is used
	// when nil (metrics still work, just unexported).
	Registry *telemetry.Registry
	// MaxJobs bounds retained job records; the oldest terminal jobs are
	// evicted past it (1024 when 0).
	MaxJobs int
	// Runner executes jobs (DefaultRunner when nil).
	Runner Runner
	// Version is the build identity folded into cache keys and results.
	Version string
	// Logger receives structured job-lifecycle logs, every record
	// carrying the job ID (and span ID where one exists) so a single job
	// can be followed across logs, spans, journal events, and metrics by
	// one ID. Nil discards.
	Logger *slog.Logger
	// TraceCapacity bounds the ring of finished job traces served at
	// /debug/traces (256 when 0).
	TraceCapacity int
	// QueueWaitP99 and ProfileDir arm the SLO profile trigger: when the
	// queue-wait p99 exceeds QueueWaitP99, a pprof CPU profile is
	// captured into ProfileDir (one per cooldown window). Both must be
	// set; ProfileDuration/ProfileCooldown override the 2s capture and
	// 10m cooldown defaults.
	QueueWaitP99    time.Duration
	ProfileDir      string
	ProfileDuration time.Duration
	ProfileCooldown time.Duration
}

// queueTel is the metric set a Queue publishes.
type queueTel struct {
	submitted   *telemetry.Counter
	completed   *telemetry.Counter
	failed      *telemetry.Counter
	rejected    *telemetry.Counter
	queueFull   *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	joined      *telemetry.Counter
	retries     *telemetry.Counter
	storeErrors *telemetry.Counter
	depth       *telemetry.Gauge
	running     *telemetry.Gauge
	duration    *telemetry.Histogram
}

func newQueueTel(reg *telemetry.Registry) *queueTel {
	return &queueTel{
		submitted:   reg.Counter("jobqueue_submitted_total", "jobs admitted (including cache hits and joins)"),
		completed:   reg.Counter("jobqueue_completed_total", "jobs that finished with a result"),
		failed:      reg.Counter("jobqueue_failed_total", "jobs whose final outcome was a failure"),
		rejected:    reg.Counter("jobqueue_rejected_total", "queued jobs rejected by a drain"),
		queueFull:   reg.Counter("jobqueue_queue_full_total", "submissions refused because the queue was full"),
		cacheHits:   reg.Counter("jobqueue_cache_hits_total", "submissions answered from the result store"),
		cacheMisses: reg.Counter("jobqueue_cache_misses_total", "submissions that had to run"),
		joined:      reg.Counter("jobqueue_joined_total", "submissions joined to an identical in-flight job"),
		retries:     reg.Counter("jobqueue_retries_total", "job attempts beyond the first"),
		storeErrors: reg.Counter("jobqueue_store_errors_total", "result-store writes that failed"),
		depth:       reg.Gauge("jobqueue_depth", "jobs admitted but not yet running"),
		running:     reg.Gauge("jobqueue_running", "jobs currently executing"),
		duration: reg.Histogram("jobqueue_job_duration_seconds",
			"wall time from admission to terminal state", telemetry.DefaultDurationBuckets()),
	}
}

// Queue is the daemon's bounded job queue and worker pool.
type Queue struct {
	opts   Options
	tel    *queueTel
	log    *slog.Logger
	tracer *trace.Tracer
	slo    *trace.SLO
	prof   *trace.CPUProfile

	baseCtx    context.Context
	baseCancel context.CancelFunc
	ch         chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job
	byKey    map[string]*Job // non-terminal jobs by cache key (dup-join)
	order    []string        // job IDs in admission order (eviction)
}

// NewQueue builds the queue and starts its workers.
func NewQueue(opts Options) *Queue {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 1024
	}
	if opts.Runner == nil {
		opts.Runner = DefaultRunner
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		opts:       opts,
		tel:        newQueueTel(reg),
		log:        log,
		baseCtx:    ctx,
		baseCancel: cancel,
		ch:         make(chan *Job, opts.QueueDepth),
		jobs:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
	}
	// SLO latency series are derived from span closes: each close is one
	// Observe of a whole interval (the delta discipline — nothing is
	// recorded on the hot path). The queue-wait series additionally arms
	// the CPU-profile trigger when configured.
	q.slo = trace.NewSLO(reg, nil, trace.JobStages()...)
	if opts.QueueWaitP99 > 0 && opts.ProfileDir != "" {
		q.prof = &trace.CPUProfile{
			Dir:      opts.ProfileDir,
			Series:   "queuewait",
			Hist:     q.slo.Histogram("queue-wait"),
			Bound:    opts.QueueWaitP99,
			Duration: opts.ProfileDuration,
			Cooldown: opts.ProfileCooldown,
			Log:      log,
		}
	}
	q.tracer = trace.New(trace.Options{
		Capacity: opts.TraceCapacity,
		OnSpanEnd: func(d trace.SpanData) {
			q.slo.Observe(d)
			if d.Name == "queue-wait" {
				q.prof.Check()
			}
		},
	})
	for i := 0; i < opts.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Tracer exposes the finished-job trace ring (for /debug/traces).
func (q *Queue) Tracer() *trace.Tracer { return q.tracer }

// SLO exposes the per-stage latency accounting (for /debug/traces).
func (q *Queue) SLO() *trace.SLO { return q.slo }

// Profiler exposes the queue-wait CPU-profile trigger (nil when not
// armed).
func (q *Queue) Profiler() *trace.CPUProfile { return q.prof }

// Version returns the build identity folded into cache keys.
func (q *Queue) Version() string { return q.opts.Version }

// Job looks up a retained job by ID.
func (q *Queue) Job(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Submit validates and admits a job. It never blocks: the outcomes are
// an admitted (or joined, or cache-answered) job, ErrQueueFull, or
// ErrDraining. The returned job may already be terminal (cache hit).
func (q *Queue) Submit(spec *Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key := spec.CacheKey(q.opts.Version)

	// The store read happens outside the lock: it is disk I/O, and the
	// worst a race costs is a duplicate cache probe. Its extent is
	// recorded retroactively as a store-read span once the job exists.
	probeStart := time.Now()
	cached, hit := q.opts.Store.Get(key)
	probeEnd := time.Now()

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, ErrDraining
	}
	if primary, ok := q.byKey[key]; ok {
		// An identical job is already queued or running: join it. The
		// join is marked on the primary's trace and journal so its
		// timeline shows who it answered for.
		q.tel.submitted.Inc()
		q.tel.joined.Inc()
		now := time.Now()
		primary.root.Record("dedup-join", now, now)
		primary.jnl.Emit(telemetry.Event{Event: "dup-join", ID: primary.id})
		q.log.Info("job joined to identical in-flight job",
			"job", primary.id, "span", primary.root.ID())
		return primary, nil
	}

	q.seq++
	job := &Job{
		id:      fmt.Sprintf("j%08d", q.seq),
		key:     key,
		spec:    spec,
		events:  newEventLog(),
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
	job.jnl = telemetry.NewJournal(job.events)
	job.root = q.tracer.Root("job", job.id, job.jnl, spec.traceAttrs()...)
	if q.opts.Store != nil {
		job.root.Record("store-read", probeStart, probeEnd,
			trace.String("hit", fmt.Sprint(hit)))
	}

	if hit {
		q.tel.submitted.Inc()
		q.tel.cacheHits.Inc()
		job.state = StateDone
		job.cacheHit = true
		job.finished = job.created
		job.result = cached
		job.jnl.Emit(telemetry.Event{Event: "experiment-finish", ID: job.id, Cached: true})
		job.root.SetAttr("state", string(StateDone))
		job.root.SetAttr("cache_hit", "true")
		job.root.End()
		job.events.Close()
		close(job.done)
		q.record(job)
		q.log.Info("job answered from result store", "job", job.id, "span", job.root.ID())
		return job, nil
	}

	// Queue wait opens before the job is published to a worker (the send
	// below hands the job to another goroutine) and closes when one picks
	// it up — or when a drain rejects it. On refusal the unfinished trace
	// is simply dropped; it never reaches the ring.
	job.queueWait = job.root.Start("queue-wait")
	select {
	case q.ch <- job:
	default:
		q.tel.queueFull.Inc()
		q.log.Warn("queue full, submission refused", "depth", q.opts.QueueDepth)
		return nil, ErrQueueFull
	}
	q.tel.submitted.Inc()
	q.tel.cacheMisses.Inc()
	q.tel.depth.Add(1)
	q.byKey[key] = job
	q.record(job)
	q.log.Info("job admitted", "job", job.id, "span", job.root.ID(),
		"benchmark", spec.Benchmark, "configs", len(spec.Configs))
	return job, nil
}

// record indexes a job and evicts the oldest terminal records past the
// retention bound. Callers hold q.mu.
func (q *Queue) record(job *Job) {
	q.jobs[job.id] = job
	q.order = append(q.order, job.id)
	if len(q.jobs) <= q.opts.MaxJobs {
		return
	}
	kept := q.order[:0]
	for _, id := range q.order {
		j := q.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if terminal && len(q.jobs) > q.opts.MaxJobs {
			delete(q.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

// worker drains the queue until it closes.
func (q *Queue) worker() {
	defer q.wg.Done()
	for job := range q.ch {
		q.runJob(job)
	}
}

// runJob executes one job through experiments.RunAll, inheriting its
// panic isolation, per-attempt timeout, retry/backoff pacing, and
// journal events, then settles the job.
func (q *Queue) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued {
		// Rejected by a racing drain after the worker pulled it.
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()
	job.queueWait.End()
	q.tel.depth.Add(-1)
	q.tel.running.Add(1)
	defer q.tel.running.Add(-1)
	q.log.Info("job running", "job", job.id, "span", job.root.ID(),
		"queue_wait_s", job.started.Sub(job.created).Seconds())

	// The root span rides the worker's context from here on: every stage
	// below — attempts, backoff sleeps, trace decode, fan-out replay,
	// store writes — hangs its span off this one.
	ctx := trace.ContextWith(q.baseCtx, job.root)
	if d := firstDuration(job.spec.Deadline, q.opts.JobDeadline); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	retries := job.spec.Retries
	if retries < 0 {
		retries = q.opts.Retries
	}

	// "run" covers everything between queue wait and settlement: all
	// attempts, the backoff sleeps between them, and the result-store
	// write. Together with queue-wait it accounts for the root's
	// wall-clock to within scheduling noise.
	rctx, runSpan := trace.Start(ctx, "run")

	var (
		body    []byte
		lastErr error
	)
	exp := experiments.Experiment{
		ID:    job.id,
		Title: "cachesimd job " + job.id,
		Run: func(cfg experiments.Config) *experiments.Result {
			job.mu.Lock()
			job.attempts++
			job.mu.Unlock()
			res := &experiments.Result{ID: job.id, Title: "cachesimd job " + job.id}
			out, err := q.opts.Runner(cfg.Context(), job.spec, q.opts.Version)
			if err != nil {
				lastErr = err
				res.Err = err.Error()
				return res
			}
			data, err := out.Encode()
			if err != nil {
				lastErr = Permanent(err)
				res.Err = err.Error()
				return res
			}
			body = data
			return res
		},
	}
	results, _ := experiments.RunAll(rctx, experiments.Config{}, experiments.RunOptions{
		Experiments: []experiments.Experiment{exp},
		Timeout:     firstDuration(job.spec.Timeout, q.opts.JobTimeout),
		Retries:     retries,
		Backoff:     &q.opts.Backoff,
		Retryable:   func(*experiments.Result) bool { return !IsPermanent(lastErr) },
		Journal:     job.jnl,
	})

	var res *experiments.Result
	if len(results) > 0 {
		res = results[0]
	}
	switch {
	case res == nil:
		// RunAll returned before running anything: the queue context was
		// already cancelled (drain deadline expired).
		runSpan.End()
		q.finish(job, StateFailed, "cancelled before start", nil)
	case res.Failed() || body == nil:
		errText := res.Err
		if errText == "" {
			errText = "job produced no result"
		}
		runSpan.SetAttr("err", errText)
		runSpan.End()
		q.finish(job, StateFailed, errText, nil)
	default:
		if q.opts.Store != nil {
			putStart := time.Now()
			err := q.opts.Store.Put(job.key, body)
			runSpan.Record("store-write", putStart, time.Now(),
				trace.String("ok", fmt.Sprint(err == nil)))
			if err != nil {
				// The client still gets its result; only future cache hits
				// are lost. Count it so operators notice a sick disk.
				q.tel.storeErrors.Inc()
				q.log.Warn("result store write failed", "job", job.id, "err", err)
			}
		}
		runSpan.End()
		q.finish(job, StateDone, "", body)
	}
}

// finish settles a job into a terminal state and publishes the metrics
// derived from it.
func (q *Queue) finish(job *Job, state State, errText string, body []byte) {
	job.mu.Lock()
	if job.state.Terminal() {
		job.mu.Unlock()
		return
	}
	job.state = state
	job.err = errText
	job.result = body
	job.finished = time.Now()
	attempts := job.attempts
	elapsed := job.finished.Sub(job.created)
	job.mu.Unlock()

	// A drain-rejected job still has its queue-wait span open; End is
	// idempotent, so the normal path (already ended in runJob) is a no-op.
	job.queueWait.End()
	job.root.SetAttr("state", string(state))
	if errText != "" {
		job.root.SetAttr("err", errText)
	}
	job.root.End()
	q.log.Info("job finished", "job", job.id, "span", job.root.ID(),
		"state", string(state), "attempts", attempts,
		"elapsed_s", elapsed.Seconds(), "err", errText)

	job.events.Close()
	close(job.done)

	q.mu.Lock()
	if q.byKey[job.key] == job {
		delete(q.byKey, job.key)
	}
	q.mu.Unlock()

	switch state {
	case StateDone:
		q.tel.completed.Inc()
	case StateFailed:
		q.tel.failed.Inc()
	case StateRejected:
		q.tel.rejected.Inc()
	}
	if attempts > 1 {
		q.tel.retries.Add(uint64(attempts - 1))
	}
	q.tel.duration.Observe(elapsed.Seconds())
}

// DrainSummary reports what a drain did.
type DrainSummary struct {
	// Rejected is how many queued jobs were refused without running.
	Rejected int
	// Forced reports that the deadline expired and in-flight jobs were
	// cancelled rather than allowed to finish.
	Forced bool
}

// Drain shuts the queue down gracefully: stop admitting (Submit returns
// ErrDraining), reject everything still queued with a clear status, and
// give in-flight jobs until the deadline to finish before cancelling
// them. It returns once the workers have exited. Drain is idempotent in
// effect but intended to be called once.
func (q *Queue) Drain(deadline time.Duration) DrainSummary {
	q.mu.Lock()
	alreadyDraining := q.draining
	q.draining = true
	q.mu.Unlock()

	var sum DrainSummary
	// Reject whatever is still queued. Workers race this loop for the
	// remaining jobs; either outcome (ran vs rejected) is sound. On a
	// repeat drain the channel is already closed and yields no jobs.
drain:
	for {
		select {
		case job, ok := <-q.ch:
			if !ok {
				break drain
			}
			q.tel.depth.Add(-1)
			q.finish(job, StateRejected, "server draining", nil)
			sum.Rejected++
		default:
			break drain
		}
	}
	if !alreadyDraining {
		close(q.ch)
	}

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	if deadline > 0 {
		select {
		case <-done:
		case <-time.After(deadline):
			sum.Forced = true
			q.baseCancel()
			<-done
		}
	} else {
		<-done
	}
	q.baseCancel()
	return sum
}

// firstDuration returns the first positive duration.
func firstDuration(ds ...time.Duration) time.Duration {
	for _, d := range ds {
		if d > 0 {
			return d
		}
	}
	return 0
}
