package jobqueue

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"jouppi/internal/faultinject"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/sim"
)

// chaosScale returns the load profile: the short profile runs in CI,
// the full one is opted into with CACHESIMD_LOADTEST=full (make
// loadtest-full).
func chaosScale(t *testing.T) (submissions, clients int) {
	if os.Getenv("CACHESIMD_LOADTEST") == "full" {
		return 5000, 64
	}
	if testing.Short() {
		return 1000, 32
	}
	return 1500, 32
}

// chaosConfigs are the fan-out specs the chaos clients draw from.
var chaosConfigs = []string{
	"",
	"victim=4",
	"misscache=2;misscache=4",
	"sys=improved",
}

// expectedOutcome is what a direct (daemon-free) execution of a spec
// produces: either a decode error or per-config results.
type expectedOutcome struct {
	decodeErr bool
	dropped   uint64
	results   []sim.Results
}

// directReplay computes a spec's ground truth with the library alone —
// the same decode policy and replay the daemon claims to perform.
func directReplay(t *testing.T, spec *Spec) expectedOutcome {
	t.Helper()
	var (
		tr   *memtrace.Trace
		degr memtrace.Degradation
	)
	if spec.Lenient {
		dr := memtrace.NewDineroReader(bytes.NewReader(spec.TraceData)).Lenient(spec.MaxDrops)
		tr = memtrace.NewTrace(0)
		memtrace.Each(dr, tr.Append)
		if dr.Err() != nil {
			return expectedOutcome{decodeErr: true}
		}
		degr = dr.Degradation()
	} else {
		var err error
		tr, err = memtrace.ReadDinero(bytes.NewReader(spec.TraceData))
		if err != nil {
			return expectedOutcome{decodeErr: true}
		}
	}
	out := expectedOutcome{dropped: degr.Dropped}
	for _, cs := range spec.Configs {
		sys, err := sim.NewSystem(cs.Config)
		if err != nil {
			t.Fatalf("direct replay: %v", err)
		}
		tr.Each(func(a memtrace.Access) {
			switch a.Kind {
			case memtrace.Ifetch:
				sys.Ifetch(uint64(a.Addr))
			case memtrace.Load:
				sys.Load(uint64(a.Addr))
			case memtrace.Store:
				sys.Store(uint64(a.Addr))
			}
		})
		out.results = append(out.results, sys.Results())
	}
	return out
}

// TestChaosLoad floods the daemon's HTTP API with concurrent
// submissions — a tenth of them carrying fault-injected traces — and
// verifies the three invariants the service exists for: no accepted job
// is ever lost (every one reaches a terminal, queryable state), no
// completed job reports numbers that differ from a direct library
// replay of the same spec, and overload surfaces as 429 + Retry-After
// rather than unbounded queueing. Run it under -race; the scheduling
// noise is the point.
func TestChaosLoad(t *testing.T) {
	submissions, clients := chaosScale(t)

	reg := telemetry.NewRegistry()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Overload is engineered, not hoped for: the runner holds its first
	// jobs until the clients have collectively watched the queue
	// overflow, so queue-full handling is exercised on every run — fast
	// machines and slow race-detector runs alike. Once released it is
	// the real runner, so results still match the direct replay.
	var release sync.Once
	hold := make(chan struct{})
	unblock := func() { release.Do(func() { close(hold) }) }
	defer time.AfterFunc(5*time.Second, unblock).Stop() // never let clients starve
	q := NewQueue(Options{
		Workers:    2,
		QueueDepth: 2, // tiny on purpose: overload must actually happen
		Store:      store,
		Registry:   reg,
		MaxJobs:    submissions + 16, // retention must not lose jobs mid-test
		Version:    "chaos",
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			select {
			case <-hold:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return DefaultRunner(ctx, spec, version)
		},
	})
	srv := httptest.NewServer(NewServer(q, reg))
	defer srv.Close()
	defer q.Drain(10 * time.Second)
	client := srv.Client()
	client.Timeout = 30 * time.Second

	// A pool of distinct base traces. Reuse across submissions makes
	// cache hits and dup-joins happen under fire, not just in unit tests.
	baseTraces := make([][]byte, 50)
	for i := range baseTraces {
		baseTraces[i] = testTraceDin(400 + 13*i)
	}

	type submission struct {
		spec *Spec
		id   string
	}
	var (
		mu       sync.Mutex
		accepted []submission
		got429   int
		invalid  int
	)

	var wg sync.WaitGroup
	perClient := submissions / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int, httpc *http.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(client)))
			for i := 0; i < perClient; i++ {
				seq := client*perClient + i
				trace := baseTraces[rng.Intn(len(baseTraces))]
				req := SubmitRequest{
					TraceFormat: FormatDinero,
					Configs:     chaosConfigs[rng.Intn(len(chaosConfigs))],
				}
				if seq%10 == 0 {
					// Every tenth submission uploads a fault-injected
					// trace, decoded leniently so record damage degrades
					// instead of failing — except header damage, which
					// may kill the whole decode; both outcomes are
					// verified against the direct replay.
					switch seq % 3 {
					case 0:
						trace = faultinject.FlipBits(trace, int64(seq), 8)
					case 1:
						trace = faultinject.Truncate(trace, int64(seq))
					default:
						trace = faultinject.TruncateHeader(trace, int64(seq))
					}
					req.Lenient = true
				}
				if len(trace) == 0 {
					// Header truncation can cut a trace to nothing; the
					// API rejects an empty upload at validation (400),
					// which is the correct outcome, not a lost job.
					mu.Lock()
					invalid++
					mu.Unlock()
					continue
				}
				req.Trace = base64.StdEncoding.EncodeToString(trace)

				body, err := json.Marshal(req)
				if err != nil {
					t.Error(err)
					return
				}
				// Submit, backing off briefly on 429 the way a well-
				// behaved client would. Overload is expected; loss is not.
				for attempt := 0; ; attempt++ {
					resp, err := httpc.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("client %d: %v", client, err)
						return
					}
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						mu.Lock()
						got429++
						sated := got429 >= 32
						mu.Unlock()
						if sated {
							unblock()
						}
						if resp.Header.Get("Retry-After") == "" {
							t.Error("429 without Retry-After")
							return
						}
						if attempt > 2000 {
							t.Errorf("client %d: starved by 429s", client)
							return
						}
						time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
						t.Errorf("client %d: status %d: %s", client, resp.StatusCode, data)
						return
					}
					var st Status
					if err := json.Unmarshal(data, &st); err != nil {
						t.Errorf("client %d: bad status body: %v", client, err)
						return
					}
					spec, err := req.ToSpec()
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					accepted = append(accepted, submission{spec: spec, id: st.ID})
					mu.Unlock()
					break
				}
			}
		}(c, client)
	}
	wg.Wait()

	if len(accepted)+invalid != clients*perClient {
		t.Fatalf("accepted %d + invalid %d submissions, want %d", len(accepted), invalid, clients*perClient)
	}
	if got429 == 0 {
		t.Error("no submission ever saw 429: the queue was never saturated, weaken QueueDepth")
	}

	// Invariant 1: zero lost jobs. Every accepted submission names a job
	// that still exists and reaches a terminal state.
	deadline := time.Now().Add(2 * time.Minute)
	for _, s := range accepted {
		job, ok := q.Job(s.id)
		if !ok {
			t.Fatalf("job %s vanished (lost job)", s.id)
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		err := job.Wait(ctx)
		cancel()
		if err != nil {
			t.Fatalf("job %s never settled: %v", s.id, err)
		}
	}

	// Invariant 2: zero incorrect results. Completed jobs match a direct
	// library replay of the same spec bit for bit; failed jobs are
	// exactly the specs whose decode fails directly too. Ground truth is
	// computed once per unique cache key.
	expected := make(map[string]expectedOutcome)
	var verified, failedJobs, degraded int
	for _, s := range accepted {
		key := s.spec.CacheKey("chaos")
		want, ok := expected[key]
		if !ok {
			want = directReplay(t, s.spec)
			expected[key] = want
		}
		job, _ := q.Job(s.id)
		st := job.Status()
		switch st.State {
		case StateFailed:
			failedJobs++
			if !want.decodeErr {
				t.Fatalf("job %s failed (%s) but the spec replays cleanly", s.id, st.Error)
			}
		case StateDone:
			if want.decodeErr {
				t.Fatalf("job %s completed but direct decode fails", s.id)
			}
			var body ResultBody
			if err := json.Unmarshal(st.Result, &body); err != nil {
				t.Fatalf("job %s: bad result: %v", s.id, err)
			}
			if len(body.Configs) != len(want.results) {
				t.Fatalf("job %s: %d config results, want %d", s.id, len(body.Configs), len(want.results))
			}
			for i, cr := range body.Configs {
				if cr.Results != want.results[i] {
					t.Fatalf("job %s config %q diverges from direct replay:\n got %+v\nwant %+v",
						s.id, cr.Label, cr.Results, want.results[i])
				}
			}
			var gotDropped uint64
			if body.Degradation != nil {
				gotDropped = body.Degradation.Dropped
			}
			if gotDropped != want.dropped {
				t.Fatalf("job %s: dropped %d, want %d", s.id, gotDropped, want.dropped)
			}
			if gotDropped > 0 {
				degraded++
			}
			verified++
		default:
			t.Fatalf("job %s settled in state %s", s.id, st.State)
		}
	}
	if verified == 0 {
		t.Fatal("no job completed")
	}

	// Invariant 3: duplicates deduplicate. With 50 traces and 4 config
	// specs there are at most 200 clean cache keys; the overwhelming
	// majority of clean submissions must have been answered by a join or
	// a byte-identical cache hit, and the store's bytes must agree with
	// the job records.
	snap := reg.Snapshot()
	hits := snap["jobqueue_cache_hits_total"]
	joined := snap["jobqueue_joined_total"]
	if hits+joined == 0 {
		t.Error("no submission was deduplicated despite heavy spec reuse")
	}
	byKey := make(map[string][]byte)
	for _, s := range accepted {
		job, _ := q.Job(s.id)
		res := job.Result()
		if res == nil {
			continue
		}
		key := s.spec.CacheKey("chaos")
		if prev, ok := byKey[key]; ok && !bytes.Equal(prev, res) {
			t.Fatalf("two jobs for one cache key returned different bytes")
		}
		byKey[key] = res
		if cached, ok := store.Get(key); ok && !bytes.Equal(cached, res) {
			t.Fatalf("store bytes diverge from job result for key %s", key)
		}
	}

	if snap["jobqueue_submitted_total"] != float64(len(accepted)) {
		t.Errorf("jobqueue_submitted_total = %v, want %d", snap["jobqueue_submitted_total"], len(accepted))
	}
	if snap["jobqueue_queue_full_total"] != float64(got429) {
		t.Errorf("jobqueue_queue_full_total = %v, want %d", snap["jobqueue_queue_full_total"], got429)
	}
	if snap["jobqueue_job_duration_seconds_count"] == 0 {
		t.Error("job duration histogram never observed")
	}
	t.Logf("chaos: %d submissions, %d unique jobs, %d verified done (%d degraded), %d failed, %d joined, %.0f cache hits, %d rejections with 429",
		len(accepted), len(byKey), verified, degraded, failedJobs, int(joined), hits, got429)
}
