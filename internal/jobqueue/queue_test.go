package jobqueue

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jouppi/internal/backoff"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/sim"
)

// testTraceDin renders a small deterministic din trace: n instruction
// fetches interleaved with loads and stores.
func testTraceDin(n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "2 %x\n", 0x1000+16*i) // ifetch
		switch i % 3 {
		case 0:
			fmt.Fprintf(&buf, "0 %x\n", 0x80000+8*(i%64)) // load
		case 1:
			fmt.Fprintf(&buf, "1 %x\n", 0x90000+8*(i%32)) // store
		}
	}
	return buf.Bytes()
}

func uploadSpec(t *testing.T, trace []byte, configs string) *Spec {
	t.Helper()
	cfgs, err := ParseConfigs(configs)
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{
		TraceData:   trace,
		TraceFormat: FormatDinero,
		Configs:     cfgs,
		Retries:     -1,
	}
}

// waitJob blocks until the job is terminal, failing the test on hang.
func waitJob(t *testing.T, j *Job) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not settle: %v", j.ID(), err)
	}
	return j.Status()
}

func metric(reg *telemetry.Registry, name string) float64 {
	return reg.Snapshot()[name]
}

func TestQueueRunsUploadedJobAndMatchesDirectReplay(t *testing.T) {
	trace := testTraceDin(400)
	reg := telemetry.NewRegistry()
	q := NewQueue(Options{Workers: 2, Registry: reg, Version: "test"})
	defer q.Drain(time.Second)

	spec := uploadSpec(t, trace, ";victim=4;misscache=2")
	job, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != StateDone {
		t.Fatalf("state = %s, err %q", st.State, st.Error)
	}
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", st.Attempts)
	}
	body, err := DecodeResult(job.Result())
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Configs) != 3 {
		t.Fatalf("got %d config results, want 3", len(body.Configs))
	}
	if body.Degradation != nil {
		t.Fatalf("clean trace reported degradation: %+v", body.Degradation)
	}

	// The daemon's numbers must be exactly what a direct replay produces.
	tr, err := memtrace.ReadDinero(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if body.Records != uint64(tr.Len()) {
		t.Fatalf("records = %d, want %d", body.Records, tr.Len())
	}
	for i, cs := range spec.Configs {
		sys, err := sim.NewSystem(cs.Config)
		if err != nil {
			t.Fatal(err)
		}
		tr.Each(func(a memtrace.Access) {
			switch a.Kind {
			case memtrace.Ifetch:
				sys.Ifetch(uint64(a.Addr))
			case memtrace.Load:
				sys.Load(uint64(a.Addr))
			case memtrace.Store:
				sys.Store(uint64(a.Addr))
			}
		})
		if want := sys.Results(); body.Configs[i].Results != want {
			t.Errorf("config %q results diverge:\n got %+v\nwant %+v",
				cs.Label, body.Configs[i].Results, want)
		}
	}
	if got := metric(reg, "jobqueue_completed_total"); got != 1 {
		t.Fatalf("jobqueue_completed_total = %v, want 1", got)
	}
}

func TestQueueCacheHitIsByteIdentical(t *testing.T) {
	reg := telemetry.NewRegistry()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(Options{Workers: 1, Store: store, Registry: reg, Version: "test"})
	defer q.Drain(time.Second)

	spec := uploadSpec(t, testTraceDin(100), "victim=2")
	first, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, first)

	second, err := q.Submit(uploadSpec(t, testTraceDin(100), "victim=2"))
	if err != nil {
		t.Fatal(err)
	}
	st := second.Status()
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("second submission: state %s, cacheHit %v", st.State, st.CacheHit)
	}
	if second.ID() == first.ID() {
		t.Fatal("cache hit reused the original job record")
	}
	if !bytes.Equal(first.Result(), second.Result()) {
		t.Fatal("cache hit is not byte-identical to the computed result")
	}
	if got := metric(reg, "jobqueue_cache_hits_total"); got != 1 {
		t.Fatalf("jobqueue_cache_hits_total = %v, want 1", got)
	}
	if got := metric(reg, "jobqueue_cache_misses_total"); got != 1 {
		t.Fatalf("jobqueue_cache_misses_total = %v, want 1", got)
	}
}

func TestQueueJoinsIdenticalInFlightSubmissions(t *testing.T) {
	release := make(chan struct{})
	reg := telemetry.NewRegistry()
	q := NewQueue(Options{
		Workers:  1,
		Registry: reg,
		Version:  "test",
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			<-release
			return &ResultBody{Version: version, TraceDigest: spec.TraceDigest()}, nil
		},
	})
	defer q.Drain(time.Second)

	a, err := q.Submit(uploadSpec(t, testTraceDin(10), ""))
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Submit(uploadSpec(t, testTraceDin(10), ""))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical in-flight submission did not join the primary job")
	}
	c, err := q.Submit(uploadSpec(t, testTraceDin(11), ""))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different spec joined the wrong job")
	}
	close(release)
	waitJob(t, a)
	waitJob(t, c)
	if got := metric(reg, "jobqueue_joined_total"); got != 1 {
		t.Fatalf("jobqueue_joined_total = %v, want 1", got)
	}
}

func TestQueueFullRejectsWithErrQueueFull(t *testing.T) {
	release := make(chan struct{})
	reg := telemetry.NewRegistry()
	q := NewQueue(Options{
		Workers: 1, QueueDepth: 1, Registry: reg, Version: "test",
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			<-release
			return &ResultBody{TraceDigest: spec.TraceDigest()}, nil
		},
	})
	defer func() { close(release); q.Drain(time.Second) }()

	// Fill the worker and then the one queue slot with distinct specs.
	if _, err := q.Submit(uploadSpec(t, testTraceDin(1), "")); err != nil {
		t.Fatal(err)
	}
	// The worker may not have picked up the first job yet, so the second
	// or third submission fills the queue slot; by the fourth the queue
	// must be full regardless of scheduling.
	var full bool
	for i := 2; i <= 4; i++ {
		_, err := q.Submit(uploadSpec(t, testTraceDin(i), ""))
		if errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("queue never filled")
	}
	if got := metric(reg, "jobqueue_queue_full_total"); got < 1 {
		t.Fatalf("jobqueue_queue_full_total = %v, want >= 1", got)
	}
}

func TestQueueRetriesTransientFailuresWithBackoff(t *testing.T) {
	var calls atomic.Int32
	reg := telemetry.NewRegistry()
	q := NewQueue(Options{
		Workers: 1, Retries: 3, Registry: reg, Version: "test",
		Backoff: backoff.Policy{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			if calls.Add(1) <= 2 {
				return nil, fmt.Errorf("transient: simulated storage hiccup")
			}
			return &ResultBody{Version: version, TraceDigest: spec.TraceDigest()}, nil
		},
	})
	defer q.Drain(time.Second)

	job, err := q.Submit(uploadSpec(t, testTraceDin(5), ""))
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != StateDone {
		t.Fatalf("state = %s, err %q", st.State, st.Error)
	}
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two transient failures, then success)", st.Attempts)
	}
	if got := metric(reg, "jobqueue_retries_total"); got != 2 {
		t.Fatalf("jobqueue_retries_total = %v, want 2", got)
	}
}

func TestQueueAcceptsPermanentFailureImmediately(t *testing.T) {
	var calls atomic.Int32
	q := NewQueue(Options{
		Workers: 1, Retries: 5, Version: "test",
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			calls.Add(1)
			return nil, Permanent(fmt.Errorf("corrupt input"))
		},
	})
	defer q.Drain(time.Second)

	job, err := q.Submit(uploadSpec(t, testTraceDin(5), ""))
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != StateFailed || !strings.Contains(st.Error, "corrupt input") {
		t.Fatalf("state = %s, err %q", st.State, st.Error)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner called %d times for a permanent failure, want 1", got)
	}
}

func TestQueueCorruptUploadFailsPermanently(t *testing.T) {
	q := NewQueue(Options{Workers: 1, Retries: 4, Version: "test"})
	defer q.Drain(time.Second)

	// Strict decode of a damaged din trace: permanent failure, one attempt.
	spec := uploadSpec(t, []byte("0 1000\nthis is not a record\n"), "")
	job, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != StateFailed {
		t.Fatalf("state = %s", st.State)
	}
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (decode failures are permanent)", st.Attempts)
	}

	// The same bytes decoded leniently succeed with a degradation report.
	lenient := uploadSpec(t, []byte("0 1000\nthis is not a record\n"), "")
	lenient.Lenient = true
	job2, err := q.Submit(lenient)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, job2)
	if st2.State != StateDone {
		t.Fatalf("lenient state = %s, err %q", st2.State, st2.Error)
	}
	body, err := DecodeResult(job2.Result())
	if err != nil {
		t.Fatal(err)
	}
	if body.Degradation == nil || body.Degradation.Dropped != 1 {
		t.Fatalf("degradation = %+v, want 1 dropped record", body.Degradation)
	}
	if body.Records != 1 {
		t.Fatalf("records = %d, want 1", body.Records)
	}
}

func TestDrainRejectsQueuedCompletesInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	reg := telemetry.NewRegistry()
	q := NewQueue(Options{
		Workers: 1, QueueDepth: 4, Registry: reg, Version: "test",
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			started <- struct{}{}
			<-release
			return &ResultBody{Version: version, TraceDigest: spec.TraceDigest()}, nil
		},
	})

	inflight, err := q.Submit(uploadSpec(t, testTraceDin(1), ""))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var queued []*Job
	for i := 2; i <= 3; i++ {
		j, err := q.Submit(uploadSpec(t, testTraceDin(i), ""))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	sum := q.Drain(10 * time.Second)
	if sum.Forced {
		t.Fatal("drain was forced despite the job finishing in time")
	}
	if sum.Rejected != len(queued) {
		t.Fatalf("rejected %d, want %d", sum.Rejected, len(queued))
	}
	if st := inflight.Status(); st.State != StateDone {
		t.Fatalf("in-flight job state = %s, want done", st.State)
	}
	for _, j := range queued {
		st := j.Status()
		if st.State != StateRejected || !strings.Contains(st.Error, "draining") {
			t.Fatalf("queued job state = %s, err %q; want rejected/draining", st.State, st.Error)
		}
	}
	if _, err := q.Submit(uploadSpec(t, testTraceDin(9), "")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	if got := metric(reg, "jobqueue_rejected_total"); got != float64(len(queued)) {
		t.Fatalf("jobqueue_rejected_total = %v, want %d", got, len(queued))
	}
}

func TestDrainDeadlineForcesCancellation(t *testing.T) {
	started := make(chan struct{}, 1)
	q := NewQueue(Options{
		Workers: 1, Version: "test",
		Runner: func(ctx context.Context, spec *Spec, version string) (*ResultBody, error) {
			started <- struct{}{}
			<-ctx.Done() // a hung job that only cancellation can end
			return nil, ctx.Err()
		},
	})
	job, err := q.Submit(uploadSpec(t, testTraceDin(1), ""))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	start := time.Now()
	sum := q.Drain(50 * time.Millisecond)
	if !sum.Forced {
		t.Fatal("drain not marked forced")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("forced drain took %v", elapsed)
	}
	if st := job.Status(); st.State != StateFailed {
		t.Fatalf("hung job state = %s, want failed", st.State)
	}
}

func TestJobEventsStreamFollowsJournalSchema(t *testing.T) {
	q := NewQueue(Options{Workers: 1, Version: "test"})
	defer q.Drain(time.Second)

	job, err := q.Submit(uploadSpec(t, testTraceDin(20), ""))
	if err != nil {
		t.Fatal(err)
	}
	// Stream concurrently with the run; the stream ends when the job
	// settles and the log closes.
	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.StreamEvents(ctx, func(chunk []byte) error {
		buf.Write(chunk)
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	events, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("events are not valid journal JSONL: %v", err)
	}
	// Span closes interleave with the RunAll lifecycle events on the same
	// journal; the lifecycle framing must survive unchanged underneath.
	var kinds, spans []string
	var expStart *telemetry.Event
	for i, e := range events {
		if e.Event == "span" {
			spans = append(spans, e.Span)
			continue
		}
		kinds = append(kinds, e.Event)
		if e.Event == "experiment-start" && expStart == nil {
			expStart = &events[i]
		}
	}
	want := []string{"run-start", "experiment-start", "experiment-finish", "run-finish"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("lifecycle event kinds = %v, want %v", kinds, want)
	}
	if expStart == nil || expStart.ID != job.ID() {
		t.Fatalf("experiment-start ID = %+v, want job ID %q", expStart, job.ID())
	}
	// The same log carries the job's span tree; the root span ("job")
	// closes last.
	if len(spans) == 0 || spans[len(spans)-1] != "job" {
		t.Fatalf("span closes = %v, want non-empty ending in \"job\"", spans)
	}
	for _, name := range []string{"queue-wait", "attempt", "job"} {
		found := false
		for _, s := range spans {
			if s == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("span closes = %v, missing %q", spans, name)
		}
	}
}

func TestQueueEvictsOldestTerminalJobs(t *testing.T) {
	q := NewQueue(Options{Workers: 1, MaxJobs: 3, Version: "test"})
	defer q.Drain(time.Second)

	var ids []string
	for i := 0; i < 6; i++ {
		job, err := q.Submit(uploadSpec(t, testTraceDin(i+1), ""))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, job)
		ids = append(ids, job.ID())
	}
	if _, ok := q.Job(ids[0]); ok {
		t.Fatal("oldest job survived eviction")
	}
	if _, ok := q.Job(ids[len(ids)-1]); !ok {
		t.Fatal("newest job evicted")
	}
}
