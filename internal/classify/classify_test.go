package classify

import (
	"math/rand"
	"testing"

	"jouppi/internal/cache"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := New(100, 16); err == nil {
		t.Error("accepted non-power-of-two size")
	}
	if _, err := New(64, 0); err == nil {
		t.Error("accepted zero line size")
	}
	if _, err := New(16, 64); err == nil {
		t.Error("accepted line > size")
	}
	if _, err := New(4096, 16); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(0, 16)
}

func TestClassString(t *testing.T) {
	if Compulsory.String() != "compulsory" || Capacity.String() != "capacity" ||
		Conflict.String() != "conflict" {
		t.Error("class names wrong")
	}
	if Class(77).String() != "Class(77)" {
		t.Error("unknown class name wrong")
	}
}

func TestFirstReferenceIsCompulsory(t *testing.T) {
	c := MustNew(64, 16)
	if got := c.Observe(0x1000); got != Compulsory {
		t.Errorf("first ref = %v, want compulsory", got)
	}
	// Same line, different byte: not compulsory anymore.
	if got := c.Observe(0x1008); got == Compulsory {
		t.Error("second ref to same line classified compulsory")
	}
}

func TestConflictDetection(t *testing.T) {
	// Shadow capacity = 4 lines. Two alternating lines easily fit in a
	// 4-line fully-associative cache, so after warm-up every re-reference
	// is a Conflict from the direct-mapped cache's point of view.
	c := MustNew(64, 16)
	c.Observe(0x0000) // compulsory
	c.Observe(0x1000) // compulsory
	for i := 0; i < 10; i++ {
		if got := c.Observe(0x0000); got != Conflict {
			t.Fatalf("alternating ref = %v, want conflict", got)
		}
		if got := c.Observe(0x1000); got != Conflict {
			t.Fatalf("alternating ref = %v, want conflict", got)
		}
	}
}

func TestCapacityDetection(t *testing.T) {
	// Stream 8 distinct lines through a 4-line shadow repeatedly: after the
	// compulsory pass, every miss is a capacity miss (the FA LRU cache of 4
	// lines also misses a cyclic sweep of 8 lines).
	c := MustNew(64, 16)
	lines := 8
	for i := 0; i < lines; i++ {
		if got := c.Observe(uint64(i * 16)); got != Compulsory {
			t.Fatalf("pass 1 ref %d = %v, want compulsory", i, got)
		}
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			if got := c.Observe(uint64(i * 16)); got != Capacity {
				t.Fatalf("pass %d ref %d = %v, want capacity", pass+2, i, got)
			}
		}
	}
}

func TestShadowCapacityBound(t *testing.T) {
	c := MustNew(256, 16) // 16 lines
	for i := 0; i < 1000; i++ {
		c.Observe(uint64(i) * 16)
	}
	if c.Len() != 16 {
		t.Errorf("shadow holds %d lines, want 16", c.Len())
	}
	if c.UniqueLines() != 1000 {
		t.Errorf("unique lines = %d, want 1000", c.UniqueLines())
	}
}

func TestObserveMissRecordsOnlyMisses(t *testing.T) {
	c := MustNew(64, 16)
	c.ObserveMiss(0x0000, true)  // compulsory, recorded
	c.ObserveMiss(0x0000, false) // hit in cache under study, not recorded
	c.ObserveMiss(0x1000, true)  // compulsory, recorded
	c.ObserveMiss(0x0000, true)  // conflict, recorded
	got := c.Counts()
	if got.Compulsory != 2 || got.Conflict != 1 || got.Capacity != 0 {
		t.Errorf("counts = %+v", got)
	}
	if got.Total() != 3 {
		t.Errorf("total = %d, want 3", got.Total())
	}
	if got.Of(Compulsory) != 2 || got.Of(Conflict) != 1 || got.Of(Capacity) != 0 {
		t.Error("Of() disagrees with fields")
	}
}

// The defining identity: classes partition the misses of the cache under
// study — compulsory + capacity + conflict == total misses — for any
// reference stream.
func TestClassesPartitionMisses(t *testing.T) {
	dm := cache.MustNew(cache.Config{Size: 256, LineSize: 16, Assoc: 1})
	cl := MustNew(256, 16)
	rng := rand.New(rand.NewSource(11))
	var misses uint64
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(4096))
		hit, _ := dm.Access(addr, false)
		cl.ObserveMiss(addr, !hit)
		if !hit {
			misses++
		}
	}
	if got := cl.Counts().Total(); got != misses {
		t.Fatalf("class totals %d != misses %d", got, misses)
	}
	if cl.Counts().Conflict == 0 {
		t.Error("random clustered stream produced no conflict misses")
	}
	if cl.Counts().Compulsory == 0 || cl.Counts().Capacity == 0 {
		t.Errorf("expected all classes populated: %+v", cl.Counts())
	}
}

// A fully-associative LRU cache of the same size must, by definition, have
// zero conflict misses.
func TestFullyAssociativeCacheHasNoConflictMisses(t *testing.T) {
	fa := cache.MustNew(cache.Config{Size: 256, LineSize: 16, Assoc: cache.FullyAssociative})
	cl := MustNew(256, 16)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 30000; i++ {
		addr := uint64(rng.Intn(8192))
		hit, _ := fa.Access(addr, false)
		cl.ObserveMiss(addr, !hit)
	}
	if got := cl.Counts().Conflict; got != 0 {
		t.Fatalf("fully-associative cache shows %d conflict misses", got)
	}
}

// Shadow LRU must agree with the cache package's fully-associative LRU
// implementation on hit/miss for arbitrary streams (two independent
// implementations of the same policy).
func TestShadowMatchesCachePackageFA(t *testing.T) {
	cl := MustNew(512, 16)
	fa := cache.MustNew(cache.Config{Size: 512, LineSize: 16, Assoc: cache.FullyAssociative})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 40000; i++ {
		addr := uint64(rng.Intn(16384))
		class := cl.Observe(addr)
		hit, _ := fa.Access(addr, false)
		// Observe returns Conflict iff the shadow FA hit (for previously
		// seen lines); the cache package FA must agree.
		if hit && class == Capacity {
			t.Fatalf("access %d addr %#x: shadow missed but cache.FA hit", i, addr)
		}
		if !hit && class == Conflict {
			t.Fatalf("access %d addr %#x: shadow hit but cache.FA missed", i, addr)
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	cl := MustNew(4096, 16)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Observe(addrs[i&(len(addrs)-1)])
	}
}
