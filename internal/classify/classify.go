// Package classify implements the 3C miss classification the paper uses
// (after Hill): every miss of a cache under study is labelled
//
//   - compulsory — the first reference to the line anywhere in the run,
//   - conflict   — a non-compulsory miss that would have hit in a
//     fully-associative LRU cache of the same capacity and line size,
//   - capacity   — everything else (the fully-associative cache missed
//     too, but the line had been seen before).
//
// The classifier maintains two shadow structures alongside the cache under
// study: a fully-associative LRU cache of equal capacity (implemented as a
// hash map plus intrusive doubly-linked list so large capacities stay
// O(1) per access) and the set of line addresses ever referenced.
//
// Coherence misses (the paper's fourth class) do not arise in this
// uniprocessor simulator.
package classify

import (
	"fmt"
	"math/bits"

	"jouppi/internal/telemetry"
)

// Class labels a cache miss.
type Class uint8

// The miss classes.
const (
	Compulsory Class = iota
	Capacity
	Conflict

	numClasses = 3
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Compulsory:
		return "compulsory"
	case Capacity:
		return "capacity"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Counts accumulates per-class miss totals.
type Counts struct {
	Compulsory uint64
	Capacity   uint64
	Conflict   uint64
}

// Total returns the sum over all classes.
func (c Counts) Total() uint64 { return c.Compulsory + c.Capacity + c.Conflict }

// Of returns the count for a single class.
func (c Counts) Of(cl Class) uint64 {
	switch cl {
	case Compulsory:
		return c.Compulsory
	case Capacity:
		return c.Capacity
	default:
		return c.Conflict
	}
}

// add increments the count for cl.
func (c *Counts) add(cl Class) {
	switch cl {
	case Compulsory:
		c.Compulsory++
	case Capacity:
		c.Capacity++
	default:
		c.Conflict++
	}
}

// faNode is an entry in the shadow fully-associative LRU cache.
type faNode struct {
	lineAddr   uint64
	prev, next *faNode
}

// Classifier tracks the shadow state for one cache under study.
// It is not safe for concurrent use.
type Classifier struct {
	lineShift uint
	capacity  int // lines
	nodes     map[uint64]*faNode
	head      *faNode // most recently used
	tail      *faNode // least recently used
	seen      map[uint64]struct{}
	counts    Counts
	free      []faNode // preallocated node pool
	nextFree  int

	telCompulsory *telemetry.Counter
	telCapacity   *telemetry.Counter
	telConflict   *telemetry.Counter
	telLast       Counts // per-class totals already published
	telPending    int    // ObserveMiss calls since the last telemetry flush
}

// telFlushEvery bounds how stale the live per-class counters can be: the
// classifier's internal Counts are the only thing the classification fast
// path updates, and their delta since the previous flush is published
// after this many observations, and again at Counts/Flush.
const telFlushEvery = 4096

// New creates a classifier shadowing a cache of size bytes with lineSize-
// byte lines. Both must be positive powers of two with lineSize ≤ size.
func New(size, lineSize int) (*Classifier, error) {
	if size <= 0 || bits.OnesCount(uint(size)) != 1 {
		return nil, fmt.Errorf("classify: size %d is not a positive power of two", size)
	}
	if lineSize <= 0 || bits.OnesCount(uint(lineSize)) != 1 || lineSize > size {
		return nil, fmt.Errorf("classify: line size %d invalid for size %d", lineSize, size)
	}
	capacity := size / lineSize
	return &Classifier{
		lineShift: uint(bits.TrailingZeros(uint(lineSize))),
		capacity:  capacity,
		nodes:     make(map[uint64]*faNode, capacity*2),
		seen:      make(map[uint64]struct{}, 1<<12),
		free:      make([]faNode, capacity),
	}, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(size, lineSize int) *Classifier {
	c, err := New(size, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// Observe processes one access to addr and returns how a miss at this
// point would be classified. Callers invoke Observe for every access to
// the cache under study (hits included, so the shadow LRU state tracks the
// full reference stream) and record the returned class only when the cache
// under study actually missed.
func (c *Classifier) Observe(addr uint64) Class {
	la := addr >> c.lineShift

	_, seenBefore := c.seen[la]
	if !seenBefore {
		c.seen[la] = struct{}{}
	}

	faHit := c.touch(la)

	switch {
	case !seenBefore:
		return Compulsory
	case faHit:
		return Conflict
	default:
		return Capacity
	}
}

// Instrument attaches live per-class miss counters, fed by publishing
// the delta of the internal Counts at flush time. Any counter may be nil
// (that class is simply not exported). Flushes happen every
// telFlushEvery observations and at Counts/Flush, so the classification
// fast path carries no telemetry code at all. A fresh attachment counts
// misses from attach time forward. Attach before replay begins.
func (c *Classifier) Instrument(compulsory, capacity, conflict *telemetry.Counter) {
	c.Flush()
	c.telCompulsory = compulsory
	c.telCapacity = capacity
	c.telConflict = conflict
	c.telLast = c.counts
}

// addDelta publishes the growth of one class since the last flush; nil
// counters drop their class.
func addDelta(tc *telemetry.Counter, cur, last uint64) {
	if tc != nil && cur != last {
		tc.Add(cur - last)
	}
}

// Flush publishes the per-class miss deltas since the previous flush.
func (c *Classifier) Flush() {
	addDelta(c.telCompulsory, c.counts.Compulsory, c.telLast.Compulsory)
	addDelta(c.telCapacity, c.counts.Capacity, c.telLast.Capacity)
	addDelta(c.telConflict, c.counts.Conflict, c.telLast.Conflict)
	c.telLast = c.counts
	c.telPending = 0
}

// ObserveMiss is Observe plus recording: it updates the classifier's
// internal per-class totals when missed is true.
func (c *Classifier) ObserveMiss(addr uint64, missed bool) Class {
	cl := c.Observe(addr)
	if missed {
		c.counts.add(cl)
	}
	c.telPending++
	if c.telPending >= telFlushEvery {
		c.Flush()
	}
	return cl
}

// Counts returns the recorded per-class miss totals, publishing any
// buffered telemetry so registry and Counts agree.
func (c *Classifier) Counts() Counts {
	c.Flush()
	return c.counts
}

// touch references la in the shadow fully-associative LRU cache,
// installing it (with LRU eviction) on a miss. It reports whether la hit.
func (c *Classifier) touch(la uint64) bool {
	if n, ok := c.nodes[la]; ok {
		c.moveToFront(n)
		return true
	}

	var n *faNode
	if c.nextFree < len(c.free) {
		n = &c.free[c.nextFree]
		c.nextFree++
	} else {
		// Capacity reached: recycle the LRU node.
		n = c.tail
		c.unlink(n)
		delete(c.nodes, n.lineAddr)
	}
	n.lineAddr = la
	c.nodes[la] = n
	c.pushFront(n)
	return false
}

func (c *Classifier) moveToFront(n *faNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *Classifier) unlink(n *faNode) {
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if c.head == n {
		c.head = n.next
	}
	if c.tail == n {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Classifier) pushFront(n *faNode) {
	n.next = c.head
	n.prev = nil
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Len returns the number of lines currently resident in the shadow
// fully-associative cache.
func (c *Classifier) Len() int { return len(c.nodes) }

// UniqueLines returns the number of distinct lines referenced so far.
func (c *Classifier) UniqueLines() int { return len(c.seen) }
