package classify_test

import (
	"fmt"

	"jouppi/internal/cache"
	"jouppi/internal/classify"
)

// Classify the misses of a direct-mapped cache into compulsory, capacity,
// and conflict (the 3C model the paper's Figure 3-1 is built on).
func Example() {
	l1 := cache.MustNew(cache.Config{Size: 64, LineSize: 16, Assoc: 1})
	cl := classify.MustNew(64, 16)

	// Alternate between two conflicting lines: after the compulsory
	// pair, every miss is a conflict (a 4-line fully-associative cache
	// would hold both).
	for i := 0; i < 10; i++ {
		for _, addr := range []uint64{0x000, 0x040} {
			hit, _ := l1.Access(addr, false)
			cl.ObserveMiss(addr, !hit)
		}
	}
	c := cl.Counts()
	fmt.Printf("compulsory %d, capacity %d, conflict %d\n",
		c.Compulsory, c.Capacity, c.Conflict)
	// Output:
	// compulsory 2, capacity 0, conflict 18
}
