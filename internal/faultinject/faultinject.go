// Package faultinject stress-tests the replay pipeline by corrupting
// trace streams on purpose. Production trace archives are messy —
// interrupted copies truncate files, bit rot flips bits, concatenation
// and retry bugs duplicate or reorder records, slow storage stalls the
// reader — and a simulator that only meets pristine inputs in testing
// falls over the first time a real one arrives.
//
// The package operates at two levels:
//
//   - Injector decorates a memtrace.Source, injecting configurable fault
//     classes into the decoded access stream. It is deterministic: the
//     same seed and configuration over the same source produces the same
//     faulted stream, so failures found under injection reproduce.
//   - Truncate, FlipBits, and DuplicateSpan corrupt encoded trace bytes
//     (JTR1 or din), for exercising the file readers' strict and lenient
//     decode paths and for seeding fuzz corpora.
//
// A zero-valued Config injects nothing: the decorated stream is
// bit-identical to the original, so the decorator can stay in a pipeline
// unconditionally and be armed only for resilience runs.
package faultinject

import (
	"bytes"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"strings"
	"time"

	"jouppi/internal/memtrace"
)

// Fault class names as they appear in Report.Injected.
const (
	ClassTruncate  = "truncate"
	ClassBitFlip   = "bit-flip"
	ClassDuplicate = "duplicate"
	ClassReorder   = "reorder"
	ClassStall     = "stall"
)

// Config selects which fault classes an Injector produces and how often.
// Rates are per-record probabilities in [0, 1]; a zero rate disables the
// class entirely (and consumes no randomness, preserving determinism of
// the remaining classes).
type Config struct {
	// Seed fixes the fault sequence. Equal seeds and rates over equal
	// inputs inject equal faults.
	Seed int64
	// BitFlipRate flips one random bit of the record's packed 64-bit
	// representation — usually scrambling the address, sometimes driving
	// the kind out of range.
	BitFlipRate float64
	// DuplicateRate delivers the record twice in a row.
	DuplicateRate float64
	// ReorderRate swaps the record with its successor.
	ReorderRate float64
	// StallRate sleeps for StallDuration before delivering the record,
	// simulating a stalling reader (useful for exercising cancellation).
	StallRate     float64
	StallDuration time.Duration
	// TruncateAfter ends the stream after that many records even if the
	// underlying source has more (0 = never).
	TruncateAfter uint64
}

// Validate rejects rates outside [0, 1].
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"BitFlipRate", c.BitFlipRate},
		{"DuplicateRate", c.DuplicateRate},
		{"ReorderRate", c.ReorderRate},
		{"StallRate", c.StallRate},
	} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("faultinject: %s %v outside [0, 1]", r.name, r.rate)
		}
	}
	return nil
}

// Report tallies what an Injector did to the stream.
type Report struct {
	// Delivered counts records handed to the consumer (including
	// corrupted and duplicated ones).
	Delivered uint64 `json:"delivered"`
	// Injected counts faults per class.
	Injected map[string]uint64 `json:"injected,omitempty"`
}

// Total returns the total number of injected faults.
func (r Report) Total() uint64 {
	var t uint64
	for _, n := range r.Injected {
		t += n
	}
	return t
}

// String renders a one-line summary.
func (r Report) String() string {
	if r.Total() == 0 {
		return fmt.Sprintf("delivered %d records, no faults injected", r.Delivered)
	}
	classes := make([]string, 0, len(r.Injected))
	for c := range r.Injected {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s %d", c, r.Injected[c]))
	}
	return fmt.Sprintf("delivered %d records, injected %d faults (%s)",
		r.Delivered, r.Total(), strings.Join(parts, ", "))
}

// Injector is a memtrace.Source decorator that injects faults into the
// stream flowing through it. It is single-use and not safe for concurrent
// use, like every Source.
type Injector struct {
	src        memtrace.Source
	cfg        Config
	rng        *rand.Rand
	pending    memtrace.Access
	hasPending bool
	truncated  bool
	report     Report
}

// New decorates src with fault injection per cfg. A nil src panics with
// memtrace.ErrNilSource; an invalid cfg panics with its Validate error
// (both are programmer errors, caught at construction rather than
// surfacing mid-replay).
func New(src memtrace.Source, cfg Config) *Injector {
	if src == nil {
		panic(memtrace.ErrNilSource)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{src: src, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Report returns the faults injected so far.
func (in *Injector) Report() Report { return in.report }

// roll draws one Bernoulli trial. A zero rate consumes no randomness, so
// disabled classes do not perturb the fault sequence of enabled ones.
func (in *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return in.rng.Float64() < rate
}

func (in *Injector) inject(class string) {
	if in.report.Injected == nil {
		in.report.Injected = make(map[string]uint64)
	}
	in.report.Injected[class]++
}

// addrBits is the width of the packed address field (see
// memtrace.MaxAddr); the kind occupies the bits above it.
var addrBits = bits.Len64(uint64(memtrace.MaxAddr))

// flipBit flips one bit of the access's packed 64-bit representation.
func flipBit(a memtrace.Access, bit int) memtrace.Access {
	rec := uint64(a.Addr)&uint64(memtrace.MaxAddr) | uint64(a.Kind)<<addrBits
	rec ^= 1 << bit
	return memtrace.Access{
		Addr: memtrace.Addr(rec & uint64(memtrace.MaxAddr)),
		Kind: memtrace.Kind(rec >> addrBits),
	}
}

// Next implements memtrace.Source.
func (in *Injector) Next() (memtrace.Access, bool) {
	if in.hasPending {
		in.hasPending = false
		in.report.Delivered++
		return in.pending, true
	}
	if in.truncated {
		return memtrace.Access{}, false
	}
	a, ok := in.src.Next()
	if !ok {
		return memtrace.Access{}, false
	}
	if in.cfg.TruncateAfter > 0 && in.report.Delivered >= in.cfg.TruncateAfter {
		in.truncated = true
		in.inject(ClassTruncate)
		return memtrace.Access{}, false
	}
	if in.roll(in.cfg.StallRate) {
		in.inject(ClassStall)
		if in.cfg.StallDuration > 0 {
			time.Sleep(in.cfg.StallDuration)
		}
	}
	if in.roll(in.cfg.BitFlipRate) {
		a = flipBit(a, in.rng.Intn(64))
		in.inject(ClassBitFlip)
	}
	switch {
	case in.roll(in.cfg.DuplicateRate):
		in.pending, in.hasPending = a, true
		in.inject(ClassDuplicate)
	case in.roll(in.cfg.ReorderRate):
		// Swap with the successor; at end of stream there is nothing to
		// swap with and the record passes through unfaulted.
		if b, ok := in.src.Next(); ok {
			in.pending, in.hasPending = a, true
			a = b
			in.inject(ClassReorder)
		}
	}
	in.report.Delivered++
	return a, true
}

var _ memtrace.Source = (*Injector)(nil)

// The byte-level corruptors below damage encoded trace files the way the
// Injector damages decoded streams. They never modify data in place.

// Truncate returns data cut short at a seeded point in its second half —
// the shape an interrupted copy leaves behind.
func Truncate(data []byte, seed int64) []byte {
	if len(data) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	cut := len(data)/2 + rng.Intn(len(data)/2+1)
	return append([]byte(nil), data[:cut]...)
}

// FlipBits returns a copy of data with n seeded single-bit flips.
func FlipBits(data []byte, seed int64, n int) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(out))
		out[pos] ^= 1 << rng.Intn(8)
	}
	return out
}

// headerLen returns the length of data's header region: the first line
// (terminator included) for text formats like din, or the JTR1 fixed
// 16-byte header, whichever is shorter — capped at len(data).
func headerLen(data []byte) int {
	h := 16
	if i := bytes.IndexByte(data, '\n'); i >= 0 && i+1 < h {
		h = i + 1
	}
	if h > len(data) {
		h = len(data)
	}
	return h
}

// TruncateHeader corrupts the header region of an encoded trace — the
// JTR1 16-byte magic/count header or a din file's first line — rather
// than its body. Body damage exercises the record-level lenient decode
// paths; header damage exercises the very first branch of a reader,
// where a parser that trusts its header (magic, record count, first
// line's shape) meets an interrupted or bit-rotted write. The seeded
// corruption is one of: cutting the file inside the header, flipping
// bits within it, or zeroing it while the body survives.
func TruncateHeader(data []byte, seed int64) []byte {
	if len(data) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	h := headerLen(data)
	switch rng.Intn(3) {
	case 0:
		// Cut mid-header: the shape a copy interrupted at the very
		// start leaves behind.
		return append([]byte(nil), data[:rng.Intn(h)]...)
	case 1:
		// Flip 1–4 bits inside the header; the body is untouched.
		out := append([]byte(nil), data...)
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			out[rng.Intn(h)] ^= 1 << rng.Intn(8)
		}
		return out
	default:
		// Zero the header: the block a torn write never flushed.
		out := append([]byte(nil), data...)
		for i := 0; i < h; i++ {
			out[i] = 0
		}
		return out
	}
}

// DuplicateSpan returns data with a seeded span of up to span bytes
// repeated in place — the shape a retried append leaves behind.
func DuplicateSpan(data []byte, seed int64, span int) []byte {
	if len(data) == 0 || span <= 0 {
		return append([]byte(nil), data...)
	}
	rng := rand.New(rand.NewSource(seed))
	if span > len(data) {
		span = len(data)
	}
	start := rng.Intn(len(data) - span + 1)
	out := make([]byte, 0, len(data)+span)
	out = append(out, data[:start+span]...)
	out = append(out, data[start:start+span]...)
	out = append(out, data[start+span:]...)
	return out
}
