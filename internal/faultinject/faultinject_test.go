package faultinject

import (
	"bytes"
	"testing"

	"jouppi/internal/memtrace"
)

func testTrace(n int) *memtrace.Trace {
	tr := memtrace.NewTrace(n)
	for i := 0; i < n; i++ {
		tr.Append(memtrace.Access{Addr: memtrace.Addr(i * 16), Kind: memtrace.Kind(i % 3)})
	}
	return tr
}

func drain(src memtrace.Source) []memtrace.Access {
	var out []memtrace.Access
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// A zero-valued Config must be a perfect pass-through: the decorated
// stream is bit-identical to the undecorated source, so the decorator can
// sit in a pipeline permanently and be armed only when wanted.
func TestZeroFaultConfigIsBitIdentical(t *testing.T) {
	tr := testTrace(10000)
	plain := drain(tr.Source())
	in := New(tr.Source(), Config{Seed: 12345})
	faulted := drain(in)
	if len(plain) != len(faulted) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(faulted))
	}
	for i := range plain {
		if plain[i] != faulted[i] {
			t.Fatalf("record %d differs: %v vs %v", i, plain[i], faulted[i])
		}
	}
	r := in.Report()
	if r.Total() != 0 {
		t.Errorf("zero config injected %d faults: %v", r.Total(), r.Injected)
	}
	if r.Delivered != uint64(len(plain)) {
		t.Errorf("delivered = %d, want %d", r.Delivered, len(plain))
	}
}

// The injector is seeded: equal configurations over equal inputs must
// produce equal faulted streams, so injection failures reproduce.
func TestInjectionIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, BitFlipRate: 0.05, DuplicateRate: 0.05, ReorderRate: 0.05}
	tr := testTrace(5000)
	a := drain(New(tr.Source(), cfg))
	b := drain(New(tr.Source(), cfg))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must perturb the stream (with 5000 records and 5%
	// rates the chance of an identical stream is negligible).
	cfg.Seed = 43
	c := drain(New(tr.Source(), cfg))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical faulted streams")
	}
}

func TestTruncateAfterEndsStreamEarly(t *testing.T) {
	tr := testTrace(1000)
	in := New(tr.Source(), Config{TruncateAfter: 100})
	got := drain(in)
	if len(got) != 100 {
		t.Fatalf("delivered %d records, want 100", len(got))
	}
	if in.Report().Injected[ClassTruncate] != 1 {
		t.Errorf("report = %v, want one truncate", in.Report())
	}
	if _, ok := in.Next(); ok {
		t.Error("stream restarted after truncation")
	}
}

func TestDuplicateDeliversRecordTwice(t *testing.T) {
	tr := testTrace(100)
	in := New(tr.Source(), Config{Seed: 7, DuplicateRate: 1})
	got := drain(in)
	if len(got) != 200 {
		t.Fatalf("delivered %d records, want 200 (every record doubled)", len(got))
	}
	for i := 0; i < len(got); i += 2 {
		if got[i] != got[i+1] {
			t.Fatalf("records %d/%d not duplicates: %v vs %v", i, i+1, got[i], got[i+1])
		}
	}
	if in.Report().Injected[ClassDuplicate] != 100 {
		t.Errorf("report = %v", in.Report())
	}
}

func TestReorderSwapsNeighbours(t *testing.T) {
	tr := testTrace(100)
	in := New(tr.Source(), Config{Seed: 7, ReorderRate: 1})
	got := drain(in)
	if len(got) != 100 {
		t.Fatalf("delivered %d records, want 100", len(got))
	}
	orig := drain(tr.Source())
	if got[0] != orig[1] || got[1] != orig[0] {
		t.Errorf("first pair not swapped: %v %v", got[0], got[1])
	}
	if n := in.Report().Injected[ClassReorder]; n != 50 {
		t.Errorf("reorders = %d, want 50 (every delivered pair swapped)", n)
	}
}

func TestBitFlipCorruptsRecords(t *testing.T) {
	tr := testTrace(1000)
	in := New(tr.Source(), Config{Seed: 7, BitFlipRate: 1})
	got := drain(in)
	orig := drain(tr.Source())
	if len(got) != len(orig) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(orig))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	// Every record had one bit of its packed form flipped, so every
	// record must differ (a single-bit flip cannot be a no-op).
	if diff != len(orig) {
		t.Errorf("%d of %d records corrupted, want all", diff, len(orig))
	}
	if n := in.Report().Injected[ClassBitFlip]; n != uint64(len(orig)) {
		t.Errorf("bit-flips = %d, want %d", n, len(orig))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{BitFlipRate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (Config{ReorderRate: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Config{Seed: 9, StallRate: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewNilSourcePanics(t *testing.T) {
	defer func() {
		if r := recover(); r != memtrace.ErrNilSource {
			t.Errorf("panicked with %v, want memtrace.ErrNilSource", r)
		}
	}()
	New(nil, Config{})
}

func TestByteCorruptors(t *testing.T) {
	data := bytes.Repeat([]byte{0xab, 0xcd, 0xef, 0x01}, 64)

	tr := Truncate(data, 1)
	if len(tr) >= len(data) || len(tr) < len(data)/2 {
		t.Errorf("Truncate len = %d of %d", len(tr), len(data))
	}
	if !bytes.Equal(tr, data[:len(tr)]) {
		t.Error("Truncate changed the surviving prefix")
	}

	fl := FlipBits(data, 1, 3)
	if len(fl) != len(data) {
		t.Fatalf("FlipBits changed length: %d", len(fl))
	}
	diffBits := 0
	for i := range fl {
		for b := fl[i] ^ data[i]; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits == 0 || diffBits > 3 {
		t.Errorf("FlipBits flipped %d bits, want 1..3", diffBits)
	}

	du := DuplicateSpan(data, 1, 8)
	if len(du) != len(data)+8 {
		t.Errorf("DuplicateSpan len = %d, want %d", len(du), len(data)+8)
	}

	// Determinism: same seed, same corruption.
	if !bytes.Equal(Truncate(data, 5), Truncate(data, 5)) ||
		!bytes.Equal(FlipBits(data, 5, 4), FlipBits(data, 5, 4)) ||
		!bytes.Equal(DuplicateSpan(data, 5, 8), DuplicateSpan(data, 5, 8)) {
		t.Error("byte corruptors are not deterministic")
	}

	// Originals must never be modified in place.
	if !bytes.Equal(data, bytes.Repeat([]byte{0xab, 0xcd, 0xef, 0x01}, 64)) {
		t.Error("corruptor modified its input")
	}
}

func TestTruncateHeaderDamagesOnlyTheHeaderRegion(t *testing.T) {
	// A JTR1-shaped input: 16-byte header then body. Whatever corruption
	// mode the seed picks, the body past the header must survive intact
	// (when the output is long enough to contain it at all).
	data := append([]byte("JTR1\x00\x00\x00\x00\x08\x00\x00\x00\x00\x00\x00\x00"),
		bytes.Repeat([]byte{0x11, 0x22, 0x33, 0x44}, 16)...)
	sawChange := false
	for seed := int64(0); seed < 32; seed++ {
		out := TruncateHeader(data, seed)
		if len(out) > len(data) {
			t.Fatalf("seed %d: output grew: %d > %d", seed, len(out), len(data))
		}
		if len(out) == len(data) {
			if !bytes.Equal(out[16:], data[16:]) {
				t.Fatalf("seed %d: body bytes were damaged", seed)
			}
			if !bytes.Equal(out[:16], data[:16]) {
				sawChange = true
			}
		} else {
			if len(out) >= 16 {
				t.Fatalf("seed %d: truncation cut outside the header: len %d", seed, len(out))
			}
			sawChange = true
		}
		if !bytes.Equal(out, TruncateHeader(data, seed)) {
			t.Fatalf("seed %d: TruncateHeader is not deterministic", seed)
		}
	}
	if !sawChange {
		t.Error("32 seeds never corrupted the header")
	}

	// A din-shaped input: the header region is the first line only.
	din := []byte("2 1000\n0 2000\n1 3000\n")
	for seed := int64(0); seed < 32; seed++ {
		out := TruncateHeader(din, seed)
		if len(out) == len(din) && !bytes.Equal(out[7:], din[7:]) {
			t.Fatalf("seed %d: bytes past the first line were damaged", seed)
		}
		if len(out) < len(din) && len(out) >= 7 {
			t.Fatalf("seed %d: truncation cut outside the first line: len %d", seed, len(out))
		}
	}

	if TruncateHeader(nil, 1) != nil {
		t.Error("TruncateHeader(nil) != nil")
	}
	if !bytes.Equal(din, []byte("2 1000\n0 2000\n1 3000\n")) {
		t.Error("TruncateHeader modified its input")
	}
}
