// Package atomicfile writes files that survive crashes and power loss.
// The usual write-then-rename dance gives atomicity against process
// crashes, but not against power loss: without an fsync the renamed
// file can come back from an unclean shutdown as zero bytes or a torn
// prefix, because the rename (metadata) can reach the disk before the
// data does. WriteFile orders the three durability points explicitly —
// file data, file metadata, then the directory entry — so after it
// returns, either the old content or the complete new content is on
// disk, never a mixture.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically and durably replaces path with data:
//
//  1. the data is written to a temporary file in path's directory,
//  2. the temporary file is fsynced (data + metadata reach the disk),
//  3. it is renamed over path,
//  4. the directory is fsynced (the rename itself reaches the disk).
//
// A failure at any step removes the temporary file and leaves any
// previous content of path untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename in it is
// durable. Some platforms (and some filesystems) refuse to fsync a
// directory; that is reported as an error only if it is not the
// well-known "not supported" case, which is treated as best-effort.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: syncing %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return fmt.Errorf("atomicfile: syncing %s: %w", dir, err)
	}
	return nil
}
