package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v; want \"first\"", got, err)
	}

	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatalf("WriteFile replace: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("after replace read back %q, want \"second\"", got)
	}
}

func TestWriteFileLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	for i := 0; i < 3; i++ {
		if err := WriteFile(path, []byte("x"), 0o600); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}

func TestWriteFileFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.txt")
	if err := WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Writing into a nonexistent directory must fail without touching
	// anything else.
	bad := filepath.Join(dir, "nope", "keep.txt")
	if err := WriteFile(bad, []byte("x"), 0o644); err == nil {
		t.Fatal("WriteFile into missing directory succeeded")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("old file damaged: %q", got)
	}
}

func TestWriteFileAppliesPermissions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mode.txt")
	if err := WriteFile(path, []byte("x"), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("mode = %v, want 0600", st.Mode().Perm())
	}
}
