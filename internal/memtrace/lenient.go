package memtrace

import (
	"fmt"
	"sort"
	"strings"

	"jouppi/internal/telemetry"
)

// Degradation reports what a lenient reader dropped while decoding a
// damaged trace. Trace-driven studies routinely meet messy real-world
// inputs — truncated downloads, bit-rotted archives, hand-edited din
// files — and an all-or-nothing decoder turns one bad record into a lost
// multi-hour replay. Lenient mode instead counts and skips malformed
// records up to a cap, and this report is surfaced alongside the
// simulation results so the damage is visible rather than silent.
type Degradation struct {
	// Dropped is the total number of records skipped.
	Dropped uint64 `json:"dropped"`
	// Reasons breaks Dropped down by malformation kind (e.g. "bad-label",
	// "address-range", "truncated-tail").
	Reasons map[string]uint64 `json:"reasons,omitempty"`
	// First describes the first malformed record encountered, with its
	// position, to give debugging a starting point.
	First string `json:"first,omitempty"`
}

// Degraded reports whether anything was dropped.
func (d Degradation) Degraded() bool { return d.Dropped > 0 }

// String renders a one-line summary, e.g.
// "3 records dropped (address-range 1, bad-label 2); first: ...".
func (d Degradation) String() string {
	if d.Dropped == 0 {
		return "no records dropped"
	}
	kinds := make([]string, 0, len(d.Reasons))
	for k := range d.Reasons {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s %d", k, d.Reasons[k]))
	}
	s := fmt.Sprintf("%d records dropped (%s)", d.Dropped, strings.Join(parts, ", "))
	if d.First != "" {
		s += "; first: " + d.First
	}
	return s
}

// record notes one dropped record in the report.
func (d *Degradation) record(reason, detail string) {
	if d.Reasons == nil {
		d.Reasons = make(map[string]uint64)
	}
	d.Dropped++
	d.Reasons[reason]++
	if d.First == "" {
		d.First = detail
	}
}

// lenient carries the shared count-and-skip state of the file readers.
type lenient struct {
	enabled    bool
	maxDrops   uint64 // 0 = unlimited
	report     Degradation
	telDropped *telemetry.Counter // live drop counter (nil-safe), see Instrument
}

// drop records one malformed record. It returns an error once the drop
// cap is exceeded — past that point the input is judged too damaged to
// trust and the stream fails like strict mode would.
func (l *lenient) drop(reason, detail string) error {
	l.report.record(reason, detail)
	l.telDropped.Inc()
	if l.maxDrops > 0 && l.report.Dropped > l.maxDrops {
		return fmt.Errorf("memtrace: %d malformed records exceed the lenient cap of %d (%s)",
			l.report.Dropped, l.maxDrops, l.report.String())
	}
	return nil
}
