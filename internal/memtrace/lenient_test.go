package memtrace

import (
	"bytes"
	"strings"
	"testing"
)

// collect pulls a source dry, returning the accesses it delivered.
func collect(src Source) []Access {
	var out []Access
	Each(src, func(a Access) { out = append(out, a) })
	return out
}

// Every din fault class: strict mode fails the stream, lenient mode skips
// the bad line (counting it under the right reason) and keeps going.
func TestDineroLenientVsStrictPerFaultClass(t *testing.T) {
	cases := []struct {
		name   string
		line   string // the malformed line, spliced between two good ones
		reason string
	}{
		{"short-line", "2", "short-line"},
		{"bad-label", "x 1000", "bad-label"},
		{"bad-address", "0 zzzz", "bad-address"},
		{"address-range", "0 ffffffffffffffff", "address-range"},
		{"unknown-label", "7 1000", "unknown-label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := "2 100\n" + tc.line + "\n0 200\n"

			strict := NewDineroReader(strings.NewReader(in))
			got := collect(strict)
			if strict.Err() == nil {
				t.Fatal("strict mode accepted the malformed line")
			}
			if len(got) != 1 {
				t.Fatalf("strict mode delivered %d records before failing, want 1", len(got))
			}

			lenientR := NewDineroReader(strings.NewReader(in)).Lenient(0)
			got = collect(lenientR)
			if err := lenientR.Err(); err != nil {
				t.Fatalf("lenient mode failed: %v", err)
			}
			want := []Access{{Addr: 0x100, Kind: Ifetch}, {Addr: 0x200, Kind: Load}}
			if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("lenient mode delivered %v, want %v", got, want)
			}
			d := lenientR.Degradation()
			if d.Dropped != 1 || d.Reasons[tc.reason] != 1 {
				t.Errorf("degradation = %+v, want 1 drop under %q", d, tc.reason)
			}
			if d.First == "" {
				t.Error("degradation did not record the first malformed line")
			}
		})
	}
}

func TestDineroLenientCap(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("bogus line\n")
	}
	dr := NewDineroReader(strings.NewReader(sb.String())).Lenient(3)
	got := collect(dr)
	if len(got) != 0 {
		t.Fatalf("delivered %d records from pure garbage", len(got))
	}
	err := dr.Err()
	if err == nil {
		t.Fatal("exceeding the drop cap did not fail the stream")
	}
	if !strings.Contains(err.Error(), "exceed the lenient cap") {
		t.Errorf("cap error = %v", err)
	}
}

// jtrWithInvalidKind builds a binary trace whose middle record carries an
// out-of-range kind — the shape a bit flip in the top two bits leaves.
func jtrWithInvalidKind(t *testing.T) []byte {
	t.Helper()
	tr := NewTrace(0)
	tr.Append(Access{Addr: 0x100, Kind: Ifetch})
	tr.Append(Access{Addr: 0x200, Kind: Load})
	tr.Append(Access{Addr: 0x300, Kind: Store})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Record 1 starts at byte 16+8; its top byte is data[16+8+7].
	data[16+8+7] |= 0xc0 // kind = 3
	return data
}

func TestReaderLenientInvalidKind(t *testing.T) {
	data := jtrWithInvalidKind(t)

	strict, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(strict)
	if strict.Err() == nil {
		t.Fatal("strict mode accepted the invalid kind")
	}
	if len(got) != 1 {
		t.Fatalf("strict mode delivered %d records before failing, want 1", len(got))
	}

	lr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	lr.Lenient(0)
	got = collect(lr)
	if err := lr.Err(); err != nil {
		t.Fatalf("lenient mode failed: %v", err)
	}
	if len(got) != 2 || got[0].Addr != 0x100 || got[1].Addr != 0x300 {
		t.Fatalf("lenient mode delivered %v, want records 0 and 2", got)
	}
	d := lr.Degradation()
	if d.Dropped != 1 || d.Reasons["invalid-kind"] != 1 {
		t.Errorf("degradation = %+v, want 1 invalid-kind drop", d)
	}
}

func TestReaderLenientTruncatedTail(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < 5; i++ {
		tr.Append(Access{Addr: Addr(0x100 * (i + 1)), Kind: Load})
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:16+3*8+4] // three whole records and half a fourth

	strict, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	collect(strict)
	if strict.Err() == nil {
		t.Fatal("strict mode accepted the truncated trace")
	}

	lr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	lr.Lenient(0)
	got := collect(lr)
	if err := lr.Err(); err != nil {
		t.Fatalf("lenient mode failed: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("lenient mode salvaged %d records, want 3", len(got))
	}
	d := lr.Degradation()
	if d.Reasons["truncated-tail"] != 1 {
		t.Errorf("degradation = %+v, want a truncated-tail note", d)
	}
	// After the truncated tail the stream must stay ended.
	if _, ok := lr.Next(); ok {
		t.Error("stream restarted after truncation")
	}
}

func TestReaderLenientZeroFaultIdentical(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < 1000; i++ {
		tr.Append(Access{Addr: Addr(i * 64), Kind: Kind(i % 3)})
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	strict, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lr.Lenient(0)
	a, b := collect(strict), collect(lr)
	if strict.Err() != nil || lr.Err() != nil {
		t.Fatalf("errs: %v, %v", strict.Err(), lr.Err())
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if lr.Degradation().Degraded() {
		t.Error("clean input reported degradation")
	}
}
