package memtrace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace checks that arbitrary input never panics the binary
// reader, and that anything it accepts round-trips.
func FuzzReadTrace(f *testing.F) {
	// Seeds: a valid trace, truncations, and garbage.
	valid := func() []byte {
		tr := NewTrace(0)
		tr.Append(Access{Addr: 0x1000, Kind: Load})
		tr.Append(Access{Addr: 0x1004, Kind: Ifetch})
		var buf bytes.Buffer
		tr.WriteTo(&buf)
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("JTR1garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must survive a round trip.
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		tr2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d vs %d", tr2.Len(), tr.Len())
		}
	})
}

// FuzzReadDinero checks the text parser likewise.
func FuzzReadDinero(f *testing.F) {
	f.Add("0 1000\n1 2000\n2 3000\n")
	f.Add("0\n")
	f.Add("junk junk junk\n")
	f.Add("")
	f.Add("2 ffffffffffffffff\n")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadDinero(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := tr.WriteDinero(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		tr2, err := ReadDinero(&buf)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d vs %d", tr2.Len(), tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			// Addresses above 62 bits are rejected by the reader, so
			// anything that parsed fits the packed representation and
			// the second round trip must be exact.
			if tr.At(i) != tr2.At(i) {
				t.Fatalf("record %d changed: %v vs %v", i, tr.At(i), tr2.At(i))
			}
		}
	})
}
