// Fuzz targets live in an external test package so they can seed their
// corpus from internal/faultinject's byte corruptors without an import
// cycle.
package memtrace_test

import (
	"bytes"
	"testing"

	"jouppi/internal/faultinject"
	"jouppi/internal/memtrace"
)

// validJTR returns a well-formed binary trace encoding.
func validJTR() []byte {
	tr := memtrace.NewTrace(0)
	tr.Append(memtrace.Access{Addr: 0x1000, Kind: memtrace.Load})
	tr.Append(memtrace.Access{Addr: 0x1004, Kind: memtrace.Ifetch})
	tr.Append(memtrace.Access{Addr: 0x2000, Kind: memtrace.Store})
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	return buf.Bytes()
}

// addFaultSeeds seeds f with deterministic corruptions of data, one per
// fault class the trace fault injector models, so the fuzzer starts from
// realistic damage instead of pure noise.
func addFaultSeeds(f *testing.F, data []byte) {
	for seed := int64(1); seed <= 3; seed++ {
		f.Add(faultinject.Truncate(data, seed))
		f.Add(faultinject.FlipBits(data, seed, 4))
		f.Add(faultinject.DuplicateSpan(data, seed, 8))
		f.Add(faultinject.TruncateHeader(data, seed))
	}
}

// FuzzReadTrace checks that arbitrary input never panics the binary
// reader, and that anything it accepts round-trips.
func FuzzReadTrace(f *testing.F) {
	// Seeds: a valid trace, per-fault-class corruptions, and garbage.
	valid := validJTR()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("JTR1garbage"))
	f.Add([]byte{})
	addFaultSeeds(f, valid)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := memtrace.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must survive a round trip.
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		tr2, err := memtrace.ReadTrace(&buf)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d vs %d", tr2.Len(), tr.Len())
		}
	})
}

// FuzzReadDinero checks the text parser likewise.
func FuzzReadDinero(f *testing.F) {
	f.Add("0 1000\n1 2000\n2 3000\n")
	f.Add("0\n")
	f.Add("junk junk junk\n")
	f.Add("")
	f.Add("2 ffffffffffffffff\n")
	din := []byte("0 1000\n1 2000\n2 3000\n0 4000\n")
	for seed := int64(1); seed <= 3; seed++ {
		f.Add(string(faultinject.Truncate(din, seed)))
		f.Add(string(faultinject.FlipBits(din, seed, 4)))
		f.Add(string(faultinject.DuplicateSpan(din, seed, 7)))
		f.Add(string(faultinject.TruncateHeader(din, seed)))
	}

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := memtrace.ReadDinero(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := tr.WriteDinero(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		tr2, err := memtrace.ReadDinero(&buf)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d vs %d", tr2.Len(), tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			// Addresses above 62 bits are rejected by the reader, so
			// anything that parsed fits the packed representation and
			// the second round trip must be exact.
			if tr.At(i) != tr2.At(i) {
				t.Fatalf("record %d changed: %v vs %v", i, tr.At(i), tr2.At(i))
			}
		}
	})
}

// FuzzLenientReaders checks the count-and-skip decode paths: with an
// unlimited drop budget a lenient reader must never panic, never error on
// record-level damage, and keep its degradation report consistent.
func FuzzLenientReaders(f *testing.F) {
	valid := validJTR()
	f.Add(valid)
	f.Add([]byte("0 1000\n1 2000\nnot a record\n2 3000\n"))
	addFaultSeeds(f, valid)
	addFaultSeeds(f, []byte("0 1000\n1 2000\n2 3000\n0 4000\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(name string, src memtrace.Source, errFn func() error, degrFn func() memtrace.Degradation) {
			delivered := 0
			memtrace.Each(src, func(memtrace.Access) { delivered++ })
			if err := errFn(); err != nil {
				t.Fatalf("%s: lenient reader with unlimited budget errored: %v", name, err)
			}
			d := degrFn()
			var sum uint64
			for _, n := range d.Reasons {
				sum += n
			}
			if d.Dropped != sum {
				t.Fatalf("%s: Dropped = %d but reasons sum to %d", name, d.Dropped, sum)
			}
			if d.Degraded() && d.First == "" {
				t.Fatalf("%s: drops recorded but no first-diagnostic", name)
			}
		}

		// The binary reader rejects damaged headers before lenient decode
		// begins; only a successfully-opened stream exercises it.
		if r, err := memtrace.NewReader(bytes.NewReader(data)); err == nil {
			r.Lenient(0)
			check("jtr", r, r.Err, r.Degradation)
		}
		dr := memtrace.NewDineroReader(bytes.NewReader(data)).Lenient(0)
		check("din", dr, dr.Err, dr.Degradation)
	})
}
