package memtrace

import (
	"context"
	"errors"
)

// ErrNilSource and ErrNilSink report a streaming call handed a nil
// endpoint. The non-context helpers (Each, Drain, NewCountingSource)
// panic with these values so the failure names the actual mistake
// instead of surfacing as an anonymous nil-pointer dereference deep in a
// drain loop; EachContext and DrainContext return them as ordinary
// errors.
var (
	ErrNilSource = errors.New("memtrace: nil Source")
	ErrNilSink   = errors.New("memtrace: nil Sink")
)

// Source is a pull-based stream of accesses — the streaming counterpart of
// Sink. Consumers call Next until it reports ok == false; after that every
// further call must keep returning ok == false. Sources are single-use and
// not safe for concurrent use; obtain a fresh Source per replay.
//
// Source is the interface the simulators consume, so replay memory stays
// O(1) in trace length: a *Trace cursor, the binary and dinero file
// readers, and live workload generators all implement it.
type Source interface {
	Next() (Access, bool)
}

// ChunkSource is an optional bulk-decode extension of Source: NextChunk
// fills dst from the stream and returns how many records it delivered.
// It returns fewer than len(dst) only when the stream is exhausted (or
// failed — check the source's Err as usual), so 0 means end of stream.
// Bulk consumers (the fan-out engine) fill reusable buffers through this
// interface, skipping the per-record interface dispatch of Next and
// keeping steady-state replay allocation-free.
type ChunkSource interface {
	Source
	NextChunk(dst []Access) int
}

// FillChunk fills dst from src via plain Next calls — the fallback bulk
// path for sources without a native NextChunk. It obeys the ChunkSource
// contract.
func FillChunk(src Source, dst []Access) int {
	n := 0
	for n < len(dst) {
		a, ok := src.Next()
		if !ok {
			break
		}
		dst[n] = a
		n++
	}
	return n
}

// Each pulls src dry, calling fn for every access in order. It is the bulk
// consumption path shared by the simulators and analyses. A nil src
// panics with ErrNilSource.
func Each(src Source, fn func(Access)) {
	if src == nil {
		panic(ErrNilSource)
	}
	for {
		a, ok := src.Next()
		if !ok {
			return
		}
		fn(a)
	}
}

// cancelCheckEvery is how many accesses flow between context polls in the
// context-aware drain loops: coarse enough that the poll is free against
// the per-access simulation work, fine enough that cancelling a replay
// takes effect within microseconds.
const cancelCheckEvery = 8192

// EachContext is Each with cooperative cancellation: it polls ctx every
// cancelCheckEvery accesses and stops early with ctx's error once the
// context is done. A clean end of stream returns nil; nil arguments
// return ErrNilSource.
func EachContext(ctx context.Context, src Source, fn func(Access)) error {
	if src == nil {
		return ErrNilSource
	}
	for n := uint(0); ; n++ {
		if n%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		a, ok := src.Next()
		if !ok {
			return nil
		}
		fn(a)
	}
}

// Drain pulls src dry, pushing every access into sink. It bridges the
// pull-based Source world into the push-based Sink world (trace writers,
// in-memory traces). A nil src or sink panics with ErrNilSource or
// ErrNilSink.
func Drain(src Source, sink Sink) {
	if src == nil {
		panic(ErrNilSource)
	}
	if sink == nil {
		panic(ErrNilSink)
	}
	for {
		a, ok := src.Next()
		if !ok {
			return
		}
		sink.Access(a)
	}
}

// DrainContext is Drain with cooperative cancellation, polling ctx the
// same way EachContext does. Nil arguments return ErrNilSource or
// ErrNilSink.
func DrainContext(ctx context.Context, src Source, sink Sink) error {
	if src == nil {
		return ErrNilSource
	}
	if sink == nil {
		return ErrNilSink
	}
	return EachContext(ctx, src, sink.Access)
}

// Cursor is a Source iterating over an in-memory Trace. The trace must not
// be appended to while the cursor is live.
type Cursor struct {
	t *Trace
	i int
}

// Source returns a fresh cursor positioned at the start of the trace.
// Multiple cursors over one trace are independent, so concurrent replays
// of a shared read-only trace each take their own.
func (t *Trace) Source() *Cursor { return &Cursor{t: t} }

// Next implements Source.
func (c *Cursor) Next() (Access, bool) {
	if c.i >= len(c.t.recs) {
		return Access{}, false
	}
	a := c.t.recs[c.i].unpack()
	c.i++
	return a, true
}

// NextChunk implements ChunkSource by unpacking records straight into
// dst.
func (c *Cursor) NextChunk(dst []Access) int {
	n := 0
	for n < len(dst) && c.i < len(c.t.recs) {
		dst[n] = c.t.recs[c.i].unpack()
		c.i++
		n++
	}
	return n
}

// Remaining returns how many accesses the cursor has yet to deliver.
func (c *Cursor) Remaining() int { return len(c.t.recs) - c.i }

var _ ChunkSource = (*Cursor)(nil)

// Counts tallies accesses per kind as they stream past.
type Counts struct {
	counts [numKinds]uint64
}

// Observe records one access.
func (c *Counts) Observe(a Access) {
	if a.Kind < numKinds {
		c.counts[a.Kind]++
	}
}

// Instructions returns the ifetch count — the dynamic instruction count
// under the paper's convention.
func (c *Counts) Instructions() uint64 { return c.counts[Ifetch] }

// Loads returns the load count.
func (c *Counts) Loads() uint64 { return c.counts[Load] }

// Stores returns the store count.
func (c *Counts) Stores() uint64 { return c.counts[Store] }

// Total returns the total access count.
func (c *Counts) Total() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// CountingSource wraps a Source and tallies what flows through it, so a
// streaming replay can recover instruction counts without materializing
// the trace.
type CountingSource struct {
	Src Source
	Counts
}

// NewCountingSource wraps src. A nil src panics with ErrNilSource.
func NewCountingSource(src Source) *CountingSource {
	if src == nil {
		panic(ErrNilSource)
	}
	return &CountingSource{Src: src}
}

// Next implements Source.
func (cs *CountingSource) Next() (Access, bool) {
	a, ok := cs.Src.Next()
	if ok {
		cs.Observe(a)
	}
	return a, ok
}

// NextChunk implements ChunkSource, delegating to the wrapped source's
// bulk path when it has one and tallying every delivered record.
func (cs *CountingSource) NextChunk(dst []Access) int {
	var n int
	if b, ok := cs.Src.(ChunkSource); ok {
		n = b.NextChunk(dst)
	} else {
		n = FillChunk(cs.Src, dst)
	}
	for _, a := range dst[:n] {
		cs.Observe(a)
	}
	return n
}

var _ ChunkSource = (*CountingSource)(nil)
