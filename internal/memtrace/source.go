package memtrace

// Source is a pull-based stream of accesses — the streaming counterpart of
// Sink. Consumers call Next until it reports ok == false; after that every
// further call must keep returning ok == false. Sources are single-use and
// not safe for concurrent use; obtain a fresh Source per replay.
//
// Source is the interface the simulators consume, so replay memory stays
// O(1) in trace length: a *Trace cursor, the binary and dinero file
// readers, and live workload generators all implement it.
type Source interface {
	Next() (Access, bool)
}

// Each pulls src dry, calling fn for every access in order. It is the bulk
// consumption path shared by the simulators and analyses.
func Each(src Source, fn func(Access)) {
	for {
		a, ok := src.Next()
		if !ok {
			return
		}
		fn(a)
	}
}

// Drain pulls src dry, pushing every access into sink. It bridges the
// pull-based Source world into the push-based Sink world (trace writers,
// in-memory traces).
func Drain(src Source, sink Sink) {
	for {
		a, ok := src.Next()
		if !ok {
			return
		}
		sink.Access(a)
	}
}

// Cursor is a Source iterating over an in-memory Trace. The trace must not
// be appended to while the cursor is live.
type Cursor struct {
	t *Trace
	i int
}

// Source returns a fresh cursor positioned at the start of the trace.
// Multiple cursors over one trace are independent, so concurrent replays
// of a shared read-only trace each take their own.
func (t *Trace) Source() *Cursor { return &Cursor{t: t} }

// Next implements Source.
func (c *Cursor) Next() (Access, bool) {
	if c.i >= len(c.t.recs) {
		return Access{}, false
	}
	a := c.t.recs[c.i].unpack()
	c.i++
	return a, true
}

// Remaining returns how many accesses the cursor has yet to deliver.
func (c *Cursor) Remaining() int { return len(c.t.recs) - c.i }

var _ Source = (*Cursor)(nil)

// Counts tallies accesses per kind as they stream past.
type Counts struct {
	counts [numKinds]uint64
}

// Observe records one access.
func (c *Counts) Observe(a Access) {
	if a.Kind < numKinds {
		c.counts[a.Kind]++
	}
}

// Instructions returns the ifetch count — the dynamic instruction count
// under the paper's convention.
func (c *Counts) Instructions() uint64 { return c.counts[Ifetch] }

// Loads returns the load count.
func (c *Counts) Loads() uint64 { return c.counts[Load] }

// Stores returns the store count.
func (c *Counts) Stores() uint64 { return c.counts[Store] }

// Total returns the total access count.
func (c *Counts) Total() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// CountingSource wraps a Source and tallies what flows through it, so a
// streaming replay can recover instruction counts without materializing
// the trace.
type CountingSource struct {
	Src Source
	Counts
}

// NewCountingSource wraps src.
func NewCountingSource(src Source) *CountingSource { return &CountingSource{Src: src} }

// Next implements Source.
func (cs *CountingSource) Next() (Access, bool) {
	a, ok := cs.Src.Next()
	if ok {
		cs.Observe(a)
	}
	return a, ok
}

var _ Source = (*CountingSource)(nil)
