package memtrace

import "jouppi/internal/telemetry"

// This file wires the streaming readers into the telemetry layer: live
// decoded/dropped counters a /metrics scrape can watch during a replay,
// and PublishDegradation, which folds a finished Degradation report's
// per-reason breakdown into a registry.

// Instrument attaches live counters: decoded is incremented once per
// record delivered by Next (buffered locally and published every
// telFlushEvery records and at end of stream, so decoding never touches
// an atomic), dropped once per record skipped in lenient mode. Either
// may be nil. Attach before the first Next; it returns r for chaining
// like Lenient.
func (r *Reader) Instrument(decoded, dropped *telemetry.Counter) *Reader {
	r.telDecoded = decoded.Local()
	r.len.telDropped = dropped
	return r
}

// Instrument attaches live counters: decoded is incremented once per
// record delivered by Next (buffered locally and published every
// telFlushEvery records and at end of stream), dropped once per record
// skipped in lenient mode. Either may be nil. Attach before the first
// Next; it returns dr for chaining like Lenient.
func (dr *DineroReader) Instrument(decoded, dropped *telemetry.Counter) *DineroReader {
	dr.telDecoded = decoded.Local()
	dr.len.telDropped = dropped
	return dr
}

// PublishDegradation folds a finished Degradation report's per-reason
// drop counts into reg as memtrace_dropped_reason_<reason>_total
// counters (reason names sanitized for the exposition format). Call it
// once, after the replay that produced d has ended; calling it again
// with the same report would double-count. A nil registry is a no-op.
func PublishDegradation(reg *telemetry.Registry, d Degradation) {
	if reg == nil {
		return
	}
	for reason, n := range d.Reasons {
		reg.Counter(
			"memtrace_dropped_reason_"+telemetry.SanitizeName(reason)+"_total",
			"trace records dropped in lenient mode, reason: "+reason,
		).Add(n)
	}
}
