package memtrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format ("JTR1"):
//
//	offset  size  field
//	0       4     magic "JTR1"
//	4       4     reserved (zero)
//	8       8     record count, little-endian
//	16      8*n   packed records (kind in top 2 bits, addr in low 62),
//	              little-endian
//
// The format is deliberately simple and fixed-width so that external tools
// can generate or inspect traces easily.

var fileMagic = [4]byte{'J', 'T', 'R', '1'}

// ErrBadFormat is returned when a trace file does not carry the expected
// magic number or is structurally truncated.
var ErrBadFormat = errors.New("memtrace: bad trace file format")

// WriteTo writes the trace to w in the binary trace format. It returns the
// number of bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64

	var header [16]byte
	copy(header[0:4], fileMagic[:])
	binary.LittleEndian.PutUint64(header[8:16], uint64(len(t.recs)))
	k, err := bw.Write(header[:])
	n += int64(k)
	if err != nil {
		return n, err
	}

	var buf [8]byte
	for _, r := range t.recs {
		binary.LittleEndian.PutUint64(buf[:], uint64(r))
		k, err := bw.Write(buf[:])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace reads a complete trace in the binary trace format from r.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)

	var header [16]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("memtrace: reading header: %w", err)
	}
	if [4]byte(header[0:4]) != fileMagic {
		return nil, ErrBadFormat
	}
	count := binary.LittleEndian.Uint64(header[8:16])
	const maxReasonable = 1 << 33 // 8 G records ≈ 64 GB; reject clearly corrupt counts
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadFormat, count)
	}

	t := NewTrace(int(count))
	var buf [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadFormat, i, err)
		}
		rec := record(binary.LittleEndian.Uint64(buf[:]))
		a := rec.unpack()
		if a.Kind >= numKinds {
			return nil, fmt.Errorf("%w: record %d has invalid kind %d", ErrBadFormat, i, a.Kind)
		}
		t.Append(a)
	}
	return t, nil
}

// StreamWriter incrementally writes a trace file without holding it in
// memory. Close must be called to finalize the record count, so the
// underlying writer must be an io.WriteSeeker.
type StreamWriter struct {
	ws    io.WriteSeeker
	bw    *bufio.Writer
	count uint64
	err   error
}

// NewStreamWriter starts writing a trace file to ws. The header is written
// immediately with a zero count and patched on Close.
func NewStreamWriter(ws io.WriteSeeker) (*StreamWriter, error) {
	sw := &StreamWriter{ws: ws, bw: bufio.NewWriterSize(ws, 1<<16)}
	var header [16]byte
	copy(header[0:4], fileMagic[:])
	if _, err := sw.bw.Write(header[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// Access appends one access record. Errors are sticky and reported by Close.
func (sw *StreamWriter) Access(a Access) {
	if sw.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(pack(a)))
	if _, err := sw.bw.Write(buf[:]); err != nil {
		sw.err = err
		return
	}
	sw.count++
}

// Count returns the number of records written so far.
func (sw *StreamWriter) Count() uint64 { return sw.count }

// Close flushes buffered records and patches the record count into the
// header. It returns the first error encountered during writing.
func (sw *StreamWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if err := sw.bw.Flush(); err != nil {
		return err
	}
	if _, err := sw.ws.Seek(8, io.SeekStart); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], sw.count)
	if _, err := sw.ws.Write(buf[:]); err != nil {
		return err
	}
	_, err := sw.ws.Seek(0, io.SeekEnd)
	return err
}

var _ Sink = (*StreamWriter)(nil)
