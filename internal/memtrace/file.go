package memtrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"jouppi/internal/telemetry"
)

// Binary trace file format ("JTR1"):
//
//	offset  size  field
//	0       4     magic "JTR1"
//	4       4     reserved (zero)
//	8       8     record count, little-endian
//	16      8*n   packed records (kind in top 2 bits, addr in low 62),
//	              little-endian
//
// The format is deliberately simple and fixed-width so that external tools
// can generate or inspect traces easily.

var fileMagic = [4]byte{'J', 'T', 'R', '1'}

// ErrBadFormat is returned when a trace file does not carry the expected
// magic number or is structurally truncated.
var ErrBadFormat = errors.New("memtrace: bad trace file format")

// WriteTo writes the trace to w in the binary trace format. It returns the
// number of bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64

	var header [16]byte
	copy(header[0:4], fileMagic[:])
	binary.LittleEndian.PutUint64(header[8:16], uint64(len(t.recs)))
	k, err := bw.Write(header[:])
	n += int64(k)
	if err != nil {
		return n, err
	}

	var buf [8]byte
	for _, r := range t.recs {
		binary.LittleEndian.PutUint64(buf[:], uint64(r))
		k, err := bw.Write(buf[:])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Reader is a streaming Source over the binary trace format. It decodes
// records in buffered chunks, so replay memory stays O(1) in trace length
// — multi-gigabyte trace files never need to fit in memory. Check Err
// after Next reports false: a clean end of trace leaves it nil.
type Reader struct {
	br    *bufio.Reader
	buf   []byte // undecoded tail of the current chunk
	chunk [8 << 10]byte
	read  uint64 // records delivered so far
	count uint64 // records the header promised
	err   error
	done  bool
	len   lenient

	telDecoded telemetry.LocalCounter // live decoded-record counter, see Instrument
}

// NewReader parses the header and returns a streaming reader positioned at
// the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)

	var header [16]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("memtrace: reading header: %w", err)
	}
	if [4]byte(header[0:4]) != fileMagic {
		return nil, ErrBadFormat
	}
	count := binary.LittleEndian.Uint64(header[8:16])
	const maxReasonable = 1 << 40 // 1 T records ≈ 8 TB; reject clearly corrupt counts
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadFormat, count)
	}
	return &Reader{br: br, count: count}, nil
}

// Count returns the record count promised by the file header.
func (r *Reader) Count() uint64 { return r.count }

// Err returns the error that terminated the stream, or nil after a clean
// end of trace.
func (r *Reader) Err() error { return r.err }

// Lenient switches the reader to count-and-skip mode: records with an
// invalid kind are recorded in the Degradation report and skipped, and a
// truncated tail ends the stream cleanly (noted in the report) instead of
// failing it. maxDrops caps how much damage is tolerated (0 = unlimited).
// It returns r for chaining and must be called before the first Next.
func (r *Reader) Lenient(maxDrops uint64) *Reader {
	r.len.enabled = true
	r.len.maxDrops = maxDrops
	return r
}

// Degradation returns the report of records skipped in lenient mode.
func (r *Reader) Degradation() Degradation { return r.len.report }

// Next implements Source. It returns ok == false at the end of the trace
// or on a decoding error (reported by Err).
func (r *Reader) Next() (Access, bool) {
	for {
		if r.err != nil || r.done || r.read == r.count {
			r.telDecoded.Flush()
			return Access{}, false
		}
		if len(r.buf) < 8 {
			// Chunk boundary: publish the buffered decode counter so a
			// concurrent scrape lags by at most one chunk.
			r.telDecoded.Flush()
			want := (r.count - r.read) * 8
			if want > uint64(len(r.chunk)) {
				want = uint64(len(r.chunk))
			}
			// Carry the partial record (if any) to the front of the chunk.
			n := copy(r.chunk[:], r.buf)
			m, err := io.ReadAtLeast(r.br, r.chunk[n:want], 8-n)
			if err != nil {
				if r.len.enabled {
					// A truncated tail is the classic interrupted-copy
					// fault: salvage everything before it and end the
					// stream cleanly, noting the loss.
					r.done = true
					if derr := r.len.drop("truncated-tail",
						fmt.Sprintf("trace truncated at record %d of %d", r.read, r.count)); derr != nil {
						r.err = derr
					}
					return Access{}, false
				}
				r.err = fmt.Errorf("%w: truncated at record %d: %v", ErrBadFormat, r.read, err)
				return Access{}, false
			}
			r.buf = r.chunk[:n+m]
		}
		rec := record(binary.LittleEndian.Uint64(r.buf[:8]))
		r.buf = r.buf[8:]
		a := rec.unpack()
		if a.Kind >= numKinds {
			if r.len.enabled {
				r.read++
				if err := r.len.drop("invalid-kind",
					fmt.Sprintf("record %d has invalid kind %d", r.read-1, a.Kind)); err != nil {
					r.err = err
					r.telDecoded.Flush()
					return Access{}, false
				}
				continue
			}
			r.err = fmt.Errorf("%w: record %d has invalid kind %d", ErrBadFormat, r.read, a.Kind)
			r.telDecoded.Flush()
			return Access{}, false
		}
		r.read++
		r.telDecoded.Inc()
		return a, true
	}
}

// NextChunk implements ChunkSource: it decodes up to len(dst) records
// into dst with direct (non-interface) Next calls.
func (r *Reader) NextChunk(dst []Access) int {
	n := 0
	for n < len(dst) {
		a, ok := r.Next()
		if !ok {
			break
		}
		dst[n] = a
		n++
	}
	return n
}

var _ ChunkSource = (*Reader)(nil)

// ReadTrace reads a complete trace in the binary trace format from r,
// materializing it in memory. For large files prefer NewReader, which
// streams.
func ReadTrace(r io.Reader) (*Trace, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	if sr.Count() > 1<<33 { // 8 G records ≈ 64 GB in memory
		return nil, fmt.Errorf("%w: record count %d too large to materialize (use NewReader)",
			ErrBadFormat, sr.Count())
	}
	// The header count is untrusted input: preallocate from it only up to
	// a modest bound, so a corrupt header cannot force a giant allocation
	// before the (truncated) body is even read.
	prealloc := sr.Count()
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t := NewTrace(int(prealloc))
	Drain(sr, t)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// StreamWriter incrementally writes a trace file without holding it in
// memory. Close must be called to finalize the record count, so the
// underlying writer must be an io.WriteSeeker.
type StreamWriter struct {
	ws    io.WriteSeeker
	bw    *bufio.Writer
	count uint64
	err   error
}

// NewStreamWriter starts writing a trace file to ws. The header is written
// immediately with a zero count and patched on Close.
func NewStreamWriter(ws io.WriteSeeker) (*StreamWriter, error) {
	sw := &StreamWriter{ws: ws, bw: bufio.NewWriterSize(ws, 1<<16)}
	var header [16]byte
	copy(header[0:4], fileMagic[:])
	if _, err := sw.bw.Write(header[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// Access appends one access record. Errors are sticky and reported by Close.
func (sw *StreamWriter) Access(a Access) {
	if sw.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(pack(a)))
	if _, err := sw.bw.Write(buf[:]); err != nil {
		sw.err = err
		return
	}
	sw.count++
}

// Count returns the number of records written so far.
func (sw *StreamWriter) Count() uint64 { return sw.count }

// Close flushes buffered records and patches the record count into the
// header. It returns the first error encountered during writing.
func (sw *StreamWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if err := sw.bw.Flush(); err != nil {
		return err
	}
	if _, err := sw.ws.Seek(8, io.SeekStart); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], sw.count)
	if _, err := sw.ws.Write(buf[:]); err != nil {
		return err
	}
	_, err := sw.ws.Seek(0, io.SeekEnd)
	return err
}

var _ Sink = (*StreamWriter)(nil)
