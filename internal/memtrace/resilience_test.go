package memtrace

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"
)

func mustPanicWith(t *testing.T, want error, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, want) {
			t.Fatalf("panicked with %v, want %v", r, want)
		}
	}()
	fn()
}

// The nil guards must name the mistake instead of dereferencing nil deep
// in a drain loop.
func TestNilSourceSinkGuards(t *testing.T) {
	tr := NewTrace(0)
	tr.Append(Access{Addr: 0x10, Kind: Load})

	mustPanicWith(t, ErrNilSource, func() { Each(nil, func(Access) {}) })
	mustPanicWith(t, ErrNilSource, func() { Drain(nil, tr) })
	mustPanicWith(t, ErrNilSink, func() { Drain(tr.Source(), nil) })
	mustPanicWith(t, ErrNilSource, func() { NewCountingSource(nil) })

	if err := EachContext(context.Background(), nil, func(Access) {}); !errors.Is(err, ErrNilSource) {
		t.Errorf("EachContext(nil src) = %v, want ErrNilSource", err)
	}
	if err := DrainContext(context.Background(), nil, tr); !errors.Is(err, ErrNilSource) {
		t.Errorf("DrainContext(nil src) = %v, want ErrNilSource", err)
	}
	if err := DrainContext(context.Background(), tr.Source(), nil); !errors.Is(err, ErrNilSink) {
		t.Errorf("DrainContext(nil sink) = %v, want ErrNilSink", err)
	}
}

func TestEachContextCompletes(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < 100; i++ {
		tr.Append(Access{Addr: Addr(i), Kind: Load})
	}
	n := 0
	if err := EachContext(context.Background(), tr.Source(), func(Access) { n++ }); err != nil {
		t.Fatalf("EachContext: %v", err)
	}
	if n != 100 {
		t.Errorf("visited %d accesses, want 100", n)
	}
}

func TestEachContextCancelled(t *testing.T) {
	// Far more records than one cancellation-poll interval, so a cancelled
	// context must cut the replay well short of the end.
	tr := NewTrace(0)
	for i := 0; i < 10*cancelCheckEvery; i++ {
		tr.Append(Access{Addr: Addr(i), Kind: Load})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	err := EachContext(ctx, tr.Source(), func(Access) { n++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Errorf("pre-cancelled context still replayed %d accesses", n)
	}
}

func TestEachContextCancelledMidStream(t *testing.T) {
	tr := NewTrace(0)
	total := 10 * cancelCheckEvery
	for i := 0; i < total; i++ {
		tr.Append(Access{Addr: Addr(i), Kind: Load})
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := EachContext(ctx, tr.Source(), func(Access) {
		n++
		if n == cancelCheckEvery/2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= total {
		t.Errorf("cancellation did not stop the replay early (visited all %d)", n)
	}
}

func TestDrainContextRoundTrip(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < 10; i++ {
		tr.Append(Access{Addr: Addr(0x100 * i), Kind: Store})
	}
	out := NewTrace(0)
	if err := DrainContext(context.Background(), tr.Source(), out); err != nil {
		t.Fatalf("DrainContext: %v", err)
	}
	if out.Len() != tr.Len() {
		t.Errorf("drained %d records, want %d", out.Len(), tr.Len())
	}
}

func TestDegradationString(t *testing.T) {
	var d Degradation
	if got := d.String(); got != "no records dropped" {
		t.Errorf("clean String() = %q", got)
	}
	d.record("bad-label", "line 3: bad label")
	d.record("address-range", "line 9")
	d.record("bad-label", "line 12")
	s := d.String()
	for _, want := range []string{"3 records dropped", "bad-label 2", "address-range 1", "line 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if !d.Degraded() {
		t.Error("Degraded() = false after drops")
	}
}

// A corrupt header claiming billions of records must not translate into
// a giant up-front allocation — the body is truncated and decode fails
// long before those records could exist.
func TestReadTraceHugeCountHeaderDoesNotPreallocate(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(0)
	tr.Append(Access{Addr: 0x100, Kind: Load})
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint64(data[8:16], 1<<32) // lie: 4G records
	done := make(chan error, 1)
	go func() {
		_, err := ReadTrace(bytes.NewReader(data))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("truncated 4G-record trace accepted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ReadTrace stuck on a huge-count header")
	}
}
