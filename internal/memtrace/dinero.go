package memtrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"jouppi/internal/telemetry"
)

// Dinero "din" text trace format interoperability. The classic dineroIII
// input format is one reference per line:
//
//	<label> <hex-address>
//
// where label 0 is a data read, 1 a data write, and 2 an instruction
// fetch. Everything after the address on a line is ignored, as dinero
// does. This lets traces move between this simulator and the many tools
// that speak din.

const (
	dinRead   = 0
	dinWrite  = 1
	dinIfetch = 2
)

func dinLabel(k Kind) int {
	switch k {
	case Load:
		return dinRead
	case Store:
		return dinWrite
	default:
		return dinIfetch
	}
}

// WriteDinero writes the trace to w in din format. It returns the number
// of records written.
func (t *Trace) WriteDinero(w io.Writer) (int, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	n := 0
	var err error
	t.Each(func(a Access) {
		if err != nil {
			return
		}
		if _, werr := fmt.Fprintf(bw, "%d %x\n", dinLabel(a.Kind), uint64(a.Addr)); werr != nil {
			err = werr
			return
		}
		n++
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// DineroReader is a streaming Source over din-format text. Blank lines
// are skipped; trailing fields after the address are ignored. In strict
// mode (the default) a malformed line terminates the stream with an error
// reported by Err, including the line number; in lenient mode (see
// Lenient) malformed lines are counted and skipped instead.
type DineroReader struct {
	sc     *bufio.Scanner
	lineNo int
	err    error
	done   bool
	len    lenient

	telDecoded *telemetry.Counter // live decoded-record counter, see Instrument
}

// NewDineroReader returns a streaming reader over din records in r.
func NewDineroReader(r io.Reader) *DineroReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &DineroReader{sc: sc}
}

// Lenient switches the reader to count-and-skip mode: malformed lines are
// recorded in the Degradation report and skipped instead of terminating
// the stream. maxDrops caps how much damage is tolerated (0 = unlimited);
// exceeding the cap fails the stream like strict mode would. It returns
// dr for chaining and must be called before the first Next.
func (dr *DineroReader) Lenient(maxDrops uint64) *DineroReader {
	dr.len.enabled = true
	dr.len.maxDrops = maxDrops
	return dr
}

// Degradation returns the report of records skipped in lenient mode.
func (dr *DineroReader) Degradation() Degradation { return dr.len.report }

// Err returns the error that terminated the stream, or nil after a clean
// end of input.
func (dr *DineroReader) Err() error { return dr.err }

// dinLineFault classifies one malformed line: reason is the stable fault
// class used in Degradation.Reasons, detail the human-readable message.
func dinLineFault(lineNo int, line string) (reason, detail string, a Access, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "short-line", fmt.Sprintf("memtrace: din line %d: want \"<label> <addr>\", got %q", lineNo, line), Access{}, false
	}
	label, err := strconv.Atoi(fields[0])
	if err != nil {
		return "bad-label", fmt.Sprintf("memtrace: din line %d: bad label %q", lineNo, fields[0]), Access{}, false
	}
	addr, err := strconv.ParseUint(fields[1], 16, 64)
	if err != nil {
		return "bad-address", fmt.Sprintf("memtrace: din line %d: bad address %q", lineNo, fields[1]), Access{}, false
	}
	if Addr(addr) > MaxAddr {
		return "address-range", fmt.Sprintf("memtrace: din line %d: address 0x%x exceeds the 62-bit range", lineNo, addr), Access{}, false
	}
	var kind Kind
	switch label {
	case dinRead:
		kind = Load
	case dinWrite:
		kind = Store
	case dinIfetch:
		kind = Ifetch
	default:
		return "unknown-label", fmt.Sprintf("memtrace: din line %d: unknown label %d", lineNo, label), Access{}, false
	}
	return "", "", Access{Addr: Addr(addr), Kind: kind}, true
}

// Next implements Source.
func (dr *DineroReader) Next() (Access, bool) {
	if dr.err != nil || dr.done {
		return Access{}, false
	}
	for dr.sc.Scan() {
		dr.lineNo++
		line := strings.TrimSpace(dr.sc.Text())
		if line == "" {
			continue
		}
		reason, detail, a, ok := dinLineFault(dr.lineNo, line)
		if !ok {
			if dr.len.enabled {
				if err := dr.len.drop(reason, detail); err != nil {
					dr.err = err
					return Access{}, false
				}
				continue
			}
			dr.err = fmt.Errorf("%s", detail)
			return Access{}, false
		}
		dr.telDecoded.Inc()
		return a, true
	}
	dr.done = true
	if err := dr.sc.Err(); err != nil {
		dr.err = fmt.Errorf("memtrace: reading din trace: %w", err)
	}
	return Access{}, false
}

var _ Source = (*DineroReader)(nil)

// ReadDinero reads a complete din-format trace from r, materializing it in
// memory. For large files prefer NewDineroReader, which streams.
func ReadDinero(r io.Reader) (*Trace, error) {
	dr := NewDineroReader(r)
	t := NewTrace(1 << 12)
	Drain(dr, t)
	if err := dr.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// DineroWriter is a streaming Sink that writes din format.
type DineroWriter struct {
	bw    *bufio.Writer
	count uint64
	err   error
}

// NewDineroWriter starts writing din records to w.
func NewDineroWriter(w io.Writer) *DineroWriter {
	return &DineroWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Access implements Sink. Errors are sticky and reported by Close.
func (dw *DineroWriter) Access(a Access) {
	if dw.err != nil {
		return
	}
	if _, err := fmt.Fprintf(dw.bw, "%d %x\n", dinLabel(a.Kind), uint64(a.Addr)); err != nil {
		dw.err = err
		return
	}
	dw.count++
}

// Count returns records written so far.
func (dw *DineroWriter) Count() uint64 { return dw.count }

// Close flushes buffered output and returns the first write error.
func (dw *DineroWriter) Close() error {
	if dw.err != nil {
		return dw.err
	}
	return dw.bw.Flush()
}

var _ Sink = (*DineroWriter)(nil)
