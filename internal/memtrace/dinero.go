package memtrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Dinero "din" text trace format interoperability. The classic dineroIII
// input format is one reference per line:
//
//	<label> <hex-address>
//
// where label 0 is a data read, 1 a data write, and 2 an instruction
// fetch. Everything after the address on a line is ignored, as dinero
// does. This lets traces move between this simulator and the many tools
// that speak din.

const (
	dinRead   = 0
	dinWrite  = 1
	dinIfetch = 2
)

func dinLabel(k Kind) int {
	switch k {
	case Load:
		return dinRead
	case Store:
		return dinWrite
	default:
		return dinIfetch
	}
}

// WriteDinero writes the trace to w in din format. It returns the number
// of records written.
func (t *Trace) WriteDinero(w io.Writer) (int, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	n := 0
	var err error
	t.Each(func(a Access) {
		if err != nil {
			return
		}
		if _, werr := fmt.Fprintf(bw, "%d %x\n", dinLabel(a.Kind), uint64(a.Addr)); werr != nil {
			err = werr
			return
		}
		n++
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadDinero reads a din-format trace from r. Blank lines are skipped;
// trailing fields after the address are ignored; malformed lines are
// reported with their line number.
func ReadDinero(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := NewTrace(1 << 12)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("memtrace: din line %d: want \"<label> <addr>\", got %q", lineNo, line)
		}
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("memtrace: din line %d: bad label %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("memtrace: din line %d: bad address %q", lineNo, fields[1])
		}
		var kind Kind
		switch label {
		case dinRead:
			kind = Load
		case dinWrite:
			kind = Store
		case dinIfetch:
			kind = Ifetch
		default:
			return nil, fmt.Errorf("memtrace: din line %d: unknown label %d", lineNo, label)
		}
		t.Append(Access{Addr: Addr(addr), Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("memtrace: reading din trace: %w", err)
	}
	return t, nil
}

// DineroWriter is a streaming Sink that writes din format.
type DineroWriter struct {
	bw    *bufio.Writer
	count uint64
	err   error
}

// NewDineroWriter starts writing din records to w.
func NewDineroWriter(w io.Writer) *DineroWriter {
	return &DineroWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Access implements Sink. Errors are sticky and reported by Close.
func (dw *DineroWriter) Access(a Access) {
	if dw.err != nil {
		return
	}
	if _, err := fmt.Fprintf(dw.bw, "%d %x\n", dinLabel(a.Kind), uint64(a.Addr)); err != nil {
		dw.err = err
		return
	}
	dw.count++
}

// Count returns records written so far.
func (dw *DineroWriter) Count() uint64 { return dw.count }

// Close flushes buffered output and returns the first write error.
func (dw *DineroWriter) Close() error {
	if dw.err != nil {
		return dw.err
	}
	return dw.bw.Flush()
}

var _ Sink = (*DineroWriter)(nil)
