package memtrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"jouppi/internal/telemetry"
)

// Dinero "din" text trace format interoperability. The classic dineroIII
// input format is one reference per line:
//
//	<label> <hex-address>
//
// where label 0 is a data read, 1 a data write, and 2 an instruction
// fetch. Everything after the address on a line is ignored, as dinero
// does. This lets traces move between this simulator and the many tools
// that speak din.

const (
	dinRead   = 0
	dinWrite  = 1
	dinIfetch = 2
)

func dinLabel(k Kind) int {
	switch k {
	case Load:
		return dinRead
	case Store:
		return dinWrite
	default:
		return dinIfetch
	}
}

// WriteDinero writes the trace to w in din format. It returns the number
// of records written.
func (t *Trace) WriteDinero(w io.Writer) (int, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	n := 0
	var err error
	t.Each(func(a Access) {
		if err != nil {
			return
		}
		if _, werr := fmt.Fprintf(bw, "%d %x\n", dinLabel(a.Kind), uint64(a.Addr)); werr != nil {
			err = werr
			return
		}
		n++
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// maxDinLine caps how long a single din line may grow before it is
// judged malformed: 1 MiB is orders of magnitude beyond any legitimate
// "<label> <addr>" record. Overlong lines are a fault of their own
// ("line-too-long"), not a stream-fatal condition — lenient mode skips
// them like any other malformed line.
const maxDinLine = 1 << 20

// telFlushEvery is the streaming readers' telemetry flush cadence in
// records: the live decoded-record counter accumulates in a local
// buffer (one plain increment per record) and is published at this
// cadence and at end of stream, so a /metrics scrape lags the decode by
// at most this many records.
const telFlushEvery = 4096

// DineroReader is a streaming Source over din-format text. Blank lines
// are skipped; trailing fields after the address are ignored. In strict
// mode (the default) a malformed line terminates the stream with an error
// reported by Err, including the line number; in lenient mode (see
// Lenient) malformed lines are counted and skipped instead.
//
// Well-formed lines decode on an allocation-free fast path: lines are
// pulled straight from the buffered reader's internal window (or a
// reusable spill buffer when they straddle a refill) and the label and
// hex address are parsed in place. Malformed or unusual lines fall back
// to the slow path, which allocates but classifies the fault exactly.
type DineroReader struct {
	br      *bufio.Reader
	lineBuf []byte // reusable spill for lines straddling a buffer refill
	lineNo  int
	err     error
	done    bool
	len     lenient

	telDecoded telemetry.LocalCounter // live decoded-record counter, see Instrument
}

// NewDineroReader returns a streaming reader over din records in r.
func NewDineroReader(r io.Reader) *DineroReader {
	return &DineroReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Lenient switches the reader to count-and-skip mode: malformed lines are
// recorded in the Degradation report and skipped instead of terminating
// the stream. maxDrops caps how much damage is tolerated (0 = unlimited);
// exceeding the cap fails the stream like strict mode would. It returns
// dr for chaining and must be called before the first Next.
func (dr *DineroReader) Lenient(maxDrops uint64) *DineroReader {
	dr.len.enabled = true
	dr.len.maxDrops = maxDrops
	return dr
}

// Degradation returns the report of records skipped in lenient mode.
func (dr *DineroReader) Degradation() Degradation { return dr.len.report }

// Err returns the error that terminated the stream, or nil after a clean
// end of input.
func (dr *DineroReader) Err() error { return dr.err }

// dinLineFault classifies one malformed line: reason is the stable fault
// class used in Degradation.Reasons, detail the human-readable message.
func dinLineFault(lineNo int, line string) (reason, detail string, a Access, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "short-line", fmt.Sprintf("memtrace: din line %d: want \"<label> <addr>\", got %q", lineNo, line), Access{}, false
	}
	label, err := strconv.Atoi(fields[0])
	if err != nil {
		return "bad-label", fmt.Sprintf("memtrace: din line %d: bad label %q", lineNo, fields[0]), Access{}, false
	}
	addr, err := strconv.ParseUint(fields[1], 16, 64)
	if err != nil {
		return "bad-address", fmt.Sprintf("memtrace: din line %d: bad address %q", lineNo, fields[1]), Access{}, false
	}
	if Addr(addr) > MaxAddr {
		return "address-range", fmt.Sprintf("memtrace: din line %d: address 0x%x exceeds the 62-bit range", lineNo, addr), Access{}, false
	}
	var kind Kind
	switch label {
	case dinRead:
		kind = Load
	case dinWrite:
		kind = Store
	case dinIfetch:
		kind = Ifetch
	default:
		return "unknown-label", fmt.Sprintf("memtrace: din line %d: unknown label %d", lineNo, label), Access{}, false
	}
	return "", "", Access{Addr: Addr(addr), Kind: kind}, true
}

// readLine returns the next line without its terminator. The returned
// slice aliases the reader's internal buffer (or dr.lineBuf) and is only
// valid until the next readLine call. tooLong reports a line that
// exceeded maxDinLine; its content is discarded but the stream remains
// positioned at the following line. eof reports a clean end of input; a
// non-nil err is an I/O failure.
func (dr *DineroReader) readLine() (line []byte, tooLong, eof bool, err error) {
	dr.lineBuf = dr.lineBuf[:0]
	for {
		frag, e := dr.br.ReadSlice('\n')
		switch e {
		case nil:
			frag = frag[:len(frag)-1] // strip '\n'
			if len(dr.lineBuf)+len(frag) > maxDinLine {
				return nil, true, false, nil
			}
			if len(dr.lineBuf) == 0 {
				return frag, false, false, nil
			}
			dr.lineBuf = append(dr.lineBuf, frag...)
			return dr.lineBuf, false, false, nil
		case bufio.ErrBufferFull:
			if len(dr.lineBuf)+len(frag) > maxDinLine {
				// Discard the rest of the runaway line so the next read
				// starts at the following record.
				for {
					_, e := dr.br.ReadSlice('\n')
					if e == nil || e == io.EOF {
						return nil, true, false, nil
					}
					if e != bufio.ErrBufferFull {
						return nil, true, false, e
					}
				}
			}
			dr.lineBuf = append(dr.lineBuf, frag...)
		case io.EOF:
			if len(frag) == 0 && len(dr.lineBuf) == 0 {
				return nil, false, true, nil
			}
			if len(dr.lineBuf)+len(frag) > maxDinLine {
				return nil, true, false, nil
			}
			dr.lineBuf = append(dr.lineBuf, frag...) // final unterminated line
			return dr.lineBuf, false, false, nil
		default:
			return nil, false, false, e
		}
	}
}

// isDinSpace reports whether c is intra-line whitespace on the fast
// path. Exotic (non-ASCII) whitespace diverts to the slow path, which
// applies the full Unicode rules.
func isDinSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' }

// parseDinLine decodes one well-formed din line without allocating.
// blank reports an all-whitespace line; ok reports a valid record.
// Anything else (malformed or merely unusual) returns ok == false and is
// re-parsed by the caller on the allocating slow path for exact fault
// classification.
func parseDinLine(line []byte) (a Access, blank, ok bool) {
	i := 0
	for i < len(line) && isDinSpace(line[i]) {
		i++
	}
	if i == len(line) {
		return Access{}, true, false
	}

	label := 0
	start := i
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		label = label*10 + int(line[i]-'0')
		if label > dinIfetch {
			return Access{}, false, false // unknown label (or longer digit run)
		}
		i++
	}
	if i == start || i == len(line) || !isDinSpace(line[i]) {
		return Access{}, false, false
	}
	for i < len(line) && isDinSpace(line[i]) {
		i++
	}

	var addr uint64
	digits := 0
	for i < len(line) {
		c := line[i]
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = uint64(c-'A') + 10
		default:
			goto addrDone
		}
		if digits == 16 {
			return Access{}, false, false // >64-bit literal (or leading zeros): slow path
		}
		addr = addr<<4 | v
		digits++
		i++
	}
addrDone:
	if digits == 0 || (i < len(line) && !isDinSpace(line[i])) {
		return Access{}, false, false
	}
	if Addr(addr) > MaxAddr {
		return Access{}, false, false // address-range: slow path
	}

	var kind Kind
	switch label {
	case dinRead:
		kind = Load
	case dinWrite:
		kind = Store
	default:
		kind = Ifetch
	}
	return Access{Addr: Addr(addr), Kind: kind}, false, true
}

// Next implements Source.
func (dr *DineroReader) Next() (Access, bool) {
	if dr.err != nil || dr.done {
		return Access{}, false
	}
	for {
		line, tooLong, eof, err := dr.readLine()
		if err != nil {
			dr.telDecoded.Flush()
			dr.err = fmt.Errorf("memtrace: reading din trace: %w", err)
			return Access{}, false
		}
		if eof {
			break
		}
		dr.lineNo++
		if tooLong {
			reason := "line-too-long"
			detail := fmt.Sprintf("memtrace: din line %d: line exceeds %d bytes", dr.lineNo, maxDinLine)
			if dr.len.enabled {
				if err := dr.len.drop(reason, detail); err != nil {
					dr.telDecoded.Flush()
					dr.err = err
					return Access{}, false
				}
				continue
			}
			dr.telDecoded.Flush()
			dr.err = fmt.Errorf("%s", detail)
			return Access{}, false
		}
		a, blank, ok := parseDinLine(line)
		if blank {
			continue
		}
		if !ok {
			// Slow path: allocate and classify the fault exactly.
			trimmed := strings.TrimSpace(string(line))
			if trimmed == "" {
				continue // blank under the full Unicode whitespace rules
			}
			reason, detail, a2, ok2 := dinLineFault(dr.lineNo, trimmed)
			if ok2 {
				// Valid but unusual (Unicode whitespace, redundant leading
				// zeros, …): deliver it like any other record.
				dr.countDecoded()
				return a2, true
			}
			if dr.len.enabled {
				if err := dr.len.drop(reason, detail); err != nil {
					dr.telDecoded.Flush()
					dr.err = err
					return Access{}, false
				}
				continue
			}
			dr.telDecoded.Flush()
			dr.err = fmt.Errorf("%s", detail)
			return Access{}, false
		}
		dr.countDecoded()
		return a, true
	}
	dr.done = true
	dr.telDecoded.Flush()
	return Access{}, false
}

// countDecoded buffers one decoded record into the live counter,
// publishing at the flush cadence.
func (dr *DineroReader) countDecoded() {
	dr.telDecoded.Inc()
	if dr.telDecoded.Pending() >= telFlushEvery {
		dr.telDecoded.Flush()
	}
}

// NextChunk implements ChunkSource: it decodes up to len(dst) records
// into dst with direct (non-interface) Next calls.
func (dr *DineroReader) NextChunk(dst []Access) int {
	n := 0
	for n < len(dst) {
		a, ok := dr.Next()
		if !ok {
			break
		}
		dst[n] = a
		n++
	}
	return n
}

var _ ChunkSource = (*DineroReader)(nil)

// ReadDinero reads a complete din-format trace from r, materializing it in
// memory. For large files prefer NewDineroReader, which streams.
func ReadDinero(r io.Reader) (*Trace, error) {
	dr := NewDineroReader(r)
	t := NewTrace(1 << 12)
	Drain(dr, t)
	if err := dr.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// DineroWriter is a streaming Sink that writes din format.
type DineroWriter struct {
	bw    *bufio.Writer
	count uint64
	err   error
}

// NewDineroWriter starts writing din records to w.
func NewDineroWriter(w io.Writer) *DineroWriter {
	return &DineroWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Access implements Sink. Errors are sticky and reported by Close.
func (dw *DineroWriter) Access(a Access) {
	if dw.err != nil {
		return
	}
	if _, err := fmt.Fprintf(dw.bw, "%d %x\n", dinLabel(a.Kind), uint64(a.Addr)); err != nil {
		dw.err = err
		return
	}
	dw.count++
}

// Count returns records written so far.
func (dw *DineroWriter) Count() uint64 { return dw.count }

// Close flushes buffered output and returns the first write error.
func (dw *DineroWriter) Close() error {
	if dw.err != nil {
		return dw.err
	}
	return dw.bw.Flush()
}

var _ Sink = (*DineroWriter)(nil)
