package memtrace

import (
	"bytes"
	"strings"
	"testing"
)

func buildTrace(n int) *Trace {
	tr := NewTrace(n)
	for i := 0; i < n; i++ {
		tr.Append(Access{Addr: Addr(0x1000 + i*4), Kind: Kind(i % int(numKinds))})
	}
	return tr
}

func TestCursorMatchesEach(t *testing.T) {
	tr := buildTrace(100)
	var fromEach []Access
	tr.Each(func(a Access) { fromEach = append(fromEach, a) })
	var fromCursor []Access
	Each(tr.Source(), func(a Access) { fromCursor = append(fromCursor, a) })
	if len(fromEach) != len(fromCursor) {
		t.Fatalf("lengths differ: %d vs %d", len(fromEach), len(fromCursor))
	}
	for i := range fromEach {
		if fromEach[i] != fromCursor[i] {
			t.Fatalf("record %d: %v vs %v", i, fromEach[i], fromCursor[i])
		}
	}
}

func TestCursorsAreIndependent(t *testing.T) {
	tr := buildTrace(10)
	c1, c2 := tr.Source(), tr.Source()
	a1, _ := c1.Next()
	b1, _ := c1.Next()
	a2, _ := c2.Next()
	if a1 != a2 {
		t.Errorf("second cursor did not restart: %v vs %v", a1, a2)
	}
	if b1 == a1 {
		t.Error("first cursor did not advance")
	}
}

func TestCursorExhaustion(t *testing.T) {
	c := buildTrace(1).Source()
	if _, ok := c.Next(); !ok {
		t.Fatal("first Next failed")
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Next(); ok {
			t.Fatal("Next returned a record past the end")
		}
	}
}

func TestDrain(t *testing.T) {
	tr := buildTrace(25)
	out := NewTrace(0)
	Drain(tr.Source(), out)
	if out.Len() != tr.Len() {
		t.Fatalf("drained %d records, want %d", out.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if out.At(i) != tr.At(i) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestCountingSource(t *testing.T) {
	tr := NewTrace(0)
	tr.Append(Access{0x100, Ifetch})
	tr.Append(Access{0x104, Ifetch})
	tr.Append(Access{0x2000, Load})
	tr.Append(Access{0x3000, Store})
	cs := NewCountingSource(tr.Source())
	Each(cs, func(Access) {})
	if cs.Instructions() != 2 || cs.Loads() != 1 || cs.Stores() != 1 || cs.Total() != 4 {
		t.Errorf("counts: instr %d load %d store %d total %d",
			cs.Instructions(), cs.Loads(), cs.Stores(), cs.Total())
	}
}

// Reader must decode exactly what ReadTrace does, across record counts
// that land on, before, and after its chunk boundaries (chunk = 1024
// records).
func TestReaderMatchesReadTrace(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1023, 1024, 1025, 3000} {
		tr := buildTrace(n)
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r.Count() != uint64(n) {
			t.Fatalf("n=%d: header count %d", n, r.Count())
		}
		i := 0
		Each(r, func(a Access) {
			if a != tr.At(i) {
				t.Fatalf("n=%d record %d: %v vs %v", n, i, a, tr.At(i))
			}
			i++
		})
		if err := r.Err(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if i != n {
			t.Fatalf("n=%d: streamed %d records", n, i)
		}
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	tr := buildTrace(10)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-5] // mid-record cut
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	Each(r, func(Access) {})
	if r.Err() == nil {
		t.Fatal("truncated body not reported")
	}
}

func TestFileRoundTripBoundaryAddress(t *testing.T) {
	// The largest representable address must survive the full binary
	// round trip through both the materializing and the streaming reader.
	tr := NewTrace(0)
	tr.Append(Access{Addr: MaxAddr, Kind: Load})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0).Addr != MaxAddr {
		t.Errorf("materialized round trip = %#x", uint64(got.At(0).Addr))
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := r.Next()
	if !ok || a.Addr != MaxAddr {
		t.Errorf("streamed round trip = %#x, ok %v", uint64(a.Addr), ok)
	}
}

func TestDineroReaderMatchesReadDinero(t *testing.T) {
	tr := buildTrace(50)
	var buf bytes.Buffer
	if _, err := tr.WriteDinero(&buf); err != nil {
		t.Fatal(err)
	}
	dr := NewDineroReader(bytes.NewReader(buf.Bytes()))
	i := 0
	Each(dr, func(a Access) {
		if a != tr.At(i) {
			t.Fatalf("record %d: %v vs %v", i, a, tr.At(i))
		}
		i++
	})
	if err := dr.Err(); err != nil {
		t.Fatal(err)
	}
	if i != tr.Len() {
		t.Fatalf("streamed %d records, want %d", i, tr.Len())
	}
}

func TestDineroReaderRejectsWideAddress(t *testing.T) {
	// 1<<62 is one past MaxAddr; it used to be silently truncated to a
	// different address by the packed representation.
	dr := NewDineroReader(strings.NewReader("0 4000000000000000\n"))
	Each(dr, func(Access) {})
	if dr.Err() == nil {
		t.Fatal("wide address not rejected")
	}
}
