package memtrace

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Ifetch, "ifetch"},
		{Load, "load"},
		{Store, "store"},
		{Kind(9), "Kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestKindIsData(t *testing.T) {
	if Ifetch.IsData() {
		t.Error("Ifetch.IsData() = true, want false")
	}
	if !Load.IsData() {
		t.Error("Load.IsData() = false, want true")
	}
	if !Store.IsData() {
		t.Error("Store.IsData() = false, want true")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(addr uint64, kindRaw uint8) bool {
		a := Access{Addr: Addr(addr & uint64(addrMask)), Kind: Kind(kindRaw % numKinds)}
		return pack(a).unpack() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackBoundaryAddress(t *testing.T) {
	// The largest representable address must round-trip exactly through
	// the packed record.
	a := Access{Addr: MaxAddr, Kind: Store}
	if got := pack(a).unpack(); got != a {
		t.Errorf("round trip = %+v, want %+v", got, a)
	}
}

func TestPackRejectsWideAddresses(t *testing.T) {
	// Addresses wider than 62 bits used to be silently truncated into a
	// different address; they must now be rejected before they can
	// corrupt a trace.
	defer func() {
		if recover() == nil {
			t.Fatal("pack accepted an address above MaxAddr")
		}
	}()
	pack(Access{Addr: MaxAddr + 1, Kind: Store})
}

func TestAppendRejectsWideAddresses(t *testing.T) {
	tr := NewTrace(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Append accepted an address above MaxAddr")
		}
	}()
	tr.Append(Access{Addr: Addr(^uint64(0)), Kind: Load})
}

func TestTraceCounts(t *testing.T) {
	tr := NewTrace(0)
	tr.Append(Access{0x100, Ifetch})
	tr.Append(Access{0x104, Ifetch})
	tr.Append(Access{0x2000, Load})
	tr.Append(Access{0x3000, Store})
	tr.Append(Access{0x108, Ifetch})

	if got := tr.Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	if got := tr.Instructions(); got != 3 {
		t.Errorf("Instructions = %d, want 3", got)
	}
	if got := tr.Loads(); got != 1 {
		t.Errorf("Loads = %d, want 1", got)
	}
	if got := tr.Stores(); got != 1 {
		t.Errorf("Stores = %d, want 1", got)
	}
	if got := tr.DataRefs(); got != 2 {
		t.Errorf("DataRefs = %d, want 2", got)
	}
	if got := tr.Count(Load); got != 1 {
		t.Errorf("Count(Load) = %d, want 1", got)
	}
}

func TestTraceAtAndEachAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTrace(100)
	for i := 0; i < 100; i++ {
		tr.Append(Access{Addr(rng.Uint64() & uint64(addrMask)), Kind(rng.Intn(numKinds))})
	}
	i := 0
	tr.Each(func(a Access) {
		if a != tr.At(i) {
			t.Fatalf("Each access %d = %v, At = %v", i, a, tr.At(i))
		}
		i++
	})
	if i != tr.Len() {
		t.Fatalf("Each visited %d accesses, want %d", i, tr.Len())
	}
}

func TestTraceSlice(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < 10; i++ {
		tr.Append(Access{Addr(i * 16), Load})
	}
	s := tr.Slice(3, 7)
	if s.Len() != 4 {
		t.Fatalf("Slice len = %d, want 4", s.Len())
	}
	for i := 0; i < 4; i++ {
		if got, want := s.At(i).Addr, Addr((i+3)*16); got != want {
			t.Errorf("slice[%d].Addr = %#x, want %#x", i, got, want)
		}
	}
	if s.DataRefs() != 4 {
		t.Errorf("slice DataRefs = %d, want 4", s.DataRefs())
	}
}

func TestTee(t *testing.T) {
	a, b := NewTrace(0), NewTrace(0)
	sink := Tee(a, b)
	sink.Access(Access{0x40, Load})
	sink.Access(Access{0x80, Ifetch})
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("tee lengths = %d, %d, want 2, 2", a.Len(), b.Len())
	}
	if a.At(1) != b.At(1) {
		t.Errorf("tee targets diverge: %v vs %v", a.At(1), b.At(1))
	}
}

func TestFilter(t *testing.T) {
	dst := NewTrace(0)
	f := Filter(dst, func(a Access) bool { return a.Kind.IsData() })
	f.Access(Access{0x100, Ifetch})
	f.Access(Access{0x200, Load})
	f.Access(Access{0x300, Store})
	if dst.Len() != 2 {
		t.Fatalf("filtered len = %d, want 2", dst.Len())
	}
	if dst.At(0).Kind != Load || dst.At(1).Kind != Store {
		t.Errorf("filter kept wrong accesses: %v, %v", dst.At(0), dst.At(1))
	}
}

func randomTrace(n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := NewTrace(n)
	for i := 0; i < n; i++ {
		tr.Append(Access{Addr(rng.Uint64() & uint64(addrMask)), Kind(rng.Intn(numKinds))})
	}
	return tr
}

func tracesEqual(a, b *Trace) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

func TestFileRoundTrip(t *testing.T) {
	tr := randomTrace(1000, 42)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if want := int64(16 + 8*tr.Len()); n != want {
		t.Errorf("WriteTo wrote %d bytes, want %d", n, want)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Error("round-tripped trace differs from original")
	}
	if got.Instructions() != tr.Instructions() || got.DataRefs() != tr.DataRefs() {
		t.Error("round-tripped trace counts differ")
	}
}

func TestFileEmptyRoundTrip(t *testing.T) {
	tr := NewTrace(0)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("empty trace round-trip has %d records", got.Len())
	}
}

func TestReadTraceBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOPE0000000000000000")
	if _, err := ReadTrace(buf); err == nil {
		t.Fatal("ReadTrace accepted bad magic")
	}
}

func TestReadTraceTruncatedHeader(t *testing.T) {
	buf := bytes.NewBufferString("JTR1")
	if _, err := ReadTrace(buf); err == nil {
		t.Fatal("ReadTrace accepted truncated header")
	}
}

func TestReadTraceTruncatedBody(t *testing.T) {
	tr := randomTrace(10, 7)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(cut)); err == nil {
		t.Fatal("ReadTrace accepted truncated body")
	}
}

func TestReadTraceImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("JTR1")
	buf.Write([]byte{0, 0, 0, 0})
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("ReadTrace accepted implausible record count")
	}
}

func TestStreamWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	tr := randomTrace(257, 3)
	tr.Each(sw.Access)
	if sw.Count() != 257 {
		t.Errorf("Count = %d, want 257", sw.Count())
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := ReadTrace(rf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Error("stream-written trace differs from original")
	}
}

// failingSeeker wraps a writer whose writes fail after a threshold, to
// exercise sticky error handling in StreamWriter.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.n -= len(p)
	return len(p), nil
}

func (f *failAfter) Seek(offset int64, whence int) (int64, error) { return 0, nil }

func TestStreamWriterStickyError(t *testing.T) {
	sw, err := NewStreamWriter(&failAfter{n: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<14; i++ { // enough to overflow the bufio buffer
		sw.Access(Access{Addr(i), Load})
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close succeeded despite write failure")
	}
}
