// Package memtrace defines the memory-reference trace representation used
// throughout the simulator: single accesses, packed in-memory traces, trace
// statistics, and a binary on-disk format.
//
// A trace is an ordered sequence of Access values. Each access is either an
// instruction fetch or a data load/store to a byte address in a flat
// simulated address space. Traces are the interface between the workload
// generators (which produce them) and the cache simulators (which consume
// them); they correspond to the address traces driving the paper's
// trace-driven simulation methodology.
package memtrace

import "fmt"

// Kind identifies the type of a memory access.
type Kind uint8

// The three access kinds. Ifetch references go to the instruction cache;
// Load and Store go to the data cache.
const (
	Ifetch Kind = iota
	Load
	Store

	numKinds = 3
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Ifetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsData reports whether the access kind references the data cache.
func (k Kind) IsData() bool { return k == Load || k == Store }

// Addr is a byte address in the simulated flat address space.
// Addresses must fit in 62 bits so that a Kind can be packed alongside;
// MaxAddr is the largest representable address.
type Addr uint64

// MaxAddr is the largest address the packed trace representation can
// carry: 2^62 − 1. Appending an access beyond it panics rather than
// silently truncating the address (and, with it, corrupting round-trips).
const MaxAddr Addr = 1<<kindShift - 1

// Access is a single memory reference.
type Access struct {
	Addr Addr
	Kind Kind
}

// String renders the access as "kind 0xaddr".
func (a Access) String() string { return fmt.Sprintf("%s 0x%x", a.Kind, uint64(a.Addr)) }

// record packs an Access into 8 bytes: the kind occupies the top two bits,
// the address the remaining 62. This keeps large in-memory traces compact
// (8 bytes per reference).
type record uint64

const (
	kindShift = 62
	addrMask  = record(1)<<kindShift - 1
)

func pack(a Access) record {
	if a.Addr > MaxAddr {
		panic(fmt.Sprintf("memtrace: address 0x%x exceeds the 62-bit packed range (MaxAddr 0x%x)",
			uint64(a.Addr), uint64(MaxAddr)))
	}
	if a.Kind >= numKinds {
		panic(fmt.Sprintf("memtrace: invalid access kind %d", uint8(a.Kind)))
	}
	return record(a.Addr)&addrMask | record(a.Kind)<<kindShift
}

func (r record) unpack() Access {
	return Access{Addr: Addr(r & addrMask), Kind: Kind(r >> kindShift)}
}

// Trace is an in-memory sequence of accesses with per-kind counts.
// The zero value is an empty trace ready for use.
type Trace struct {
	recs   []record
	counts [numKinds]uint64
}

// NewTrace returns an empty trace with capacity for n accesses.
func NewTrace(n int) *Trace {
	return &Trace{recs: make([]record, 0, n)}
}

// Append adds one access to the end of the trace. It panics if a.Addr
// exceeds MaxAddr or a.Kind is invalid — the packed 8-byte representation
// cannot carry them, and truncating silently would corrupt round-trips.
func (t *Trace) Append(a Access) {
	t.recs = append(t.recs, pack(a))
	t.counts[a.Kind]++
}

// Len returns the number of accesses in the trace.
func (t *Trace) Len() int { return len(t.recs) }

// At returns the i'th access. It panics if i is out of range.
func (t *Trace) At(i int) Access { return t.recs[i].unpack() }

// Instructions returns the number of instruction-fetch accesses, which the
// performance model treats as the dynamic instruction count.
func (t *Trace) Instructions() uint64 { return t.counts[Ifetch] }

// Loads returns the number of load accesses.
func (t *Trace) Loads() uint64 { return t.counts[Load] }

// Stores returns the number of store accesses.
func (t *Trace) Stores() uint64 { return t.counts[Store] }

// DataRefs returns the number of data (load + store) accesses.
func (t *Trace) DataRefs() uint64 { return t.counts[Load] + t.counts[Store] }

// Count returns the number of accesses of kind k.
func (t *Trace) Count(k Kind) uint64 { return t.counts[k] }

// Each calls fn for every access in order. It is the bulk consumption path
// used by the simulators; unpacking is done inline to keep the loop tight.
func (t *Trace) Each(fn func(Access)) {
	for _, r := range t.recs {
		fn(r.unpack())
	}
}

// Slice returns a view of accesses in [lo, hi) as a fresh Trace sharing no
// storage with t. It panics if the range is invalid.
func (t *Trace) Slice(lo, hi int) *Trace {
	out := NewTrace(hi - lo)
	for _, r := range t.recs[lo:hi] {
		out.Append(r.unpack())
	}
	return out
}

// Sink consumes a stream of accesses. Cache simulators and trace writers
// implement Sink; workload generators drive one.
type Sink interface {
	Access(a Access)
}

// Access implements Sink, so a *Trace can be used directly as the target of
// a workload generator.
func (t *Trace) Access(a Access) { t.Append(a) }

// Tee returns a Sink that forwards every access to each of sinks in order.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (ts teeSink) Access(a Access) {
	for _, s := range ts {
		s.Access(a)
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Access)

// Access calls f(a).
func (f SinkFunc) Access(a Access) { f(a) }

// Filter returns a Sink that forwards only accesses for which keep returns
// true.
func Filter(dst Sink, keep func(Access) bool) Sink {
	return SinkFunc(func(a Access) {
		if keep(a) {
			dst.Access(a)
		}
	})
}
