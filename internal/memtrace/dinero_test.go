package memtrace

import (
	"bytes"
	"strings"
	"testing"
)

func TestDineroRoundTrip(t *testing.T) {
	tr := randomTrace(500, 9)
	var buf bytes.Buffer
	n, err := tr.WriteDinero(&buf)
	if err != nil {
		t.Fatalf("WriteDinero: %v", err)
	}
	if n != tr.Len() {
		t.Errorf("wrote %d records, want %d", n, tr.Len())
	}
	got, err := ReadDinero(&buf)
	if err != nil {
		t.Fatalf("ReadDinero: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Error("din round trip differs")
	}
}

func TestDineroFormatExact(t *testing.T) {
	tr := NewTrace(0)
	tr.Append(Access{Addr: 0x1000, Kind: Load})
	tr.Append(Access{Addr: 0x2000, Kind: Store})
	tr.Append(Access{Addr: 0x40ab, Kind: Ifetch})
	var buf bytes.Buffer
	if _, err := tr.WriteDinero(&buf); err != nil {
		t.Fatal(err)
	}
	want := "0 1000\n1 2000\n2 40ab\n"
	if buf.String() != want {
		t.Errorf("din output = %q, want %q", buf.String(), want)
	}
}

func TestReadDineroTolerance(t *testing.T) {
	// Blank lines and trailing fields (as emitted by some tracers) are
	// accepted.
	in := "0 1000 extra stuff\n\n  2 2000\n1 3000\n"
	tr, err := ReadDinero(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.At(1).Kind != Ifetch || tr.At(1).Addr != 0x2000 {
		t.Errorf("record 1 = %v", tr.At(1))
	}
}

func TestReadDineroErrors(t *testing.T) {
	cases := []string{
		"0\n",                  // missing address
		"x 1000\n",             // bad label
		"0 zz\n",               // bad address
		"7 1000\n",             // unknown label
		"0 4000000000000000\n", // address above the 62-bit packed range
	}
	for _, in := range cases {
		if _, err := ReadDinero(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestDineroWriterStreaming(t *testing.T) {
	var buf bytes.Buffer
	dw := NewDineroWriter(&buf)
	tr := randomTrace(100, 4)
	tr.Each(dw.Access)
	if dw.Count() != 100 {
		t.Errorf("count = %d", dw.Count())
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDinero(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Error("streamed din trace differs")
	}
}

func TestDineroWriterStickyError(t *testing.T) {
	dw := NewDineroWriter(&failAfter{n: 8})
	for i := 0; i < 1<<14; i++ {
		dw.Access(Access{Addr: Addr(i), Kind: Load})
	}
	if err := dw.Close(); err == nil {
		t.Fatal("Close succeeded despite write failure")
	}
}

// TestDineroLenientLineTooLong is the regression test for the
// Scanner-limit bug: a din line longer than the maxDinLine cap used to
// abort the whole replay with bufio.ErrTooLong even in lenient mode.
// It must instead be counted and skipped as its own degradation reason,
// with the surrounding records decoded intact.
func TestDineroLenientLineTooLong(t *testing.T) {
	var in strings.Builder
	in.WriteString("0 1000\n")
	in.WriteString("0 2000 ")
	for i := 0; i < maxDinLine; i++ { // pad one line past the cap
		in.WriteByte('x')
	}
	in.WriteString("\n2 3000\n")

	dr := NewDineroReader(strings.NewReader(in.String())).Lenient(0)
	var got []Access
	Each(dr, func(a Access) { got = append(got, a) })
	if err := dr.Err(); err != nil {
		t.Fatalf("lenient replay failed on an overlong line: %v", err)
	}
	if len(got) != 2 || got[0].Addr != 0x1000 || got[1].Addr != 0x3000 {
		t.Fatalf("records around the overlong line lost: %v", got)
	}
	d := dr.Degradation()
	if d.Dropped != 1 || d.Reasons["line-too-long"] != 1 {
		t.Errorf("degradation = %+v, want 1 line-too-long drop", d)
	}
	if !strings.Contains(d.First, "din line 2") {
		t.Errorf("first-fault detail should name line 2: %q", d.First)
	}
}

// Strict mode must still fail on an overlong line — but with an error
// naming the line, not a bare scanner error.
func TestDineroStrictLineTooLong(t *testing.T) {
	var in strings.Builder
	in.WriteString("0 1000\n1 ")
	for i := 0; i < maxDinLine; i++ {
		in.WriteByte('f')
	}
	in.WriteString("\n")
	dr := NewDineroReader(strings.NewReader(in.String()))
	if a, ok := dr.Next(); !ok || a.Addr != 0x1000 {
		t.Fatalf("first record = %v, %v", a, ok)
	}
	if _, ok := dr.Next(); ok {
		t.Fatal("overlong line delivered a record")
	}
	err := dr.Err()
	if err == nil {
		t.Fatal("strict mode accepted an overlong line")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the line: %v", err)
	}
}

// The zero-alloc fast path and the allocating slow path must agree:
// unusual-but-valid lines (Unicode whitespace, redundant leading zeros,
// CRLF endings, no trailing newline) decode to the same records.
func TestDineroFastSlowPathAgree(t *testing.T) {
	in := "0 1000\r\n" + // CRLF
		"1\t00000000000000002000\n" + // tab + redundant leading zeros
		"2 3000\n" + // non-breaking space separator (slow path)
		" \n" + // Unicode-whitespace-only line: skipped
		"0 4000" // unterminated final line
	tr, err := ReadDinero(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Access{
		{Addr: 0x1000, Kind: Load},
		{Addr: 0x2000, Kind: Store},
		{Addr: 0x3000, Kind: Ifetch},
		{Addr: 0x4000, Kind: Load},
	}
	if tr.Len() != len(want) {
		t.Fatalf("decoded %d records, want %d", tr.Len(), len(want))
	}
	for i, w := range want {
		if tr.At(i) != w {
			t.Errorf("record %d = %v, want %v", i, tr.At(i), w)
		}
	}
}

// Lines straddling the buffered reader's 64 KiB window must reassemble
// losslessly via the spill buffer.
func TestDineroLineAcrossBufferBoundary(t *testing.T) {
	var in strings.Builder
	in.WriteString("0 1000")
	for in.Len() < (1<<16)+8 { // push the line across the 64 KiB refill
		in.WriteString(" pad")
	}
	in.WriteString("\n2 2000\n")
	tr, err := ReadDinero(strings.NewReader(in.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.At(0).Addr != 0x1000 || tr.At(1).Addr != 0x2000 {
		t.Fatalf("records = %d %v %v", tr.Len(), tr.At(0), tr.At(1))
	}
}
