package memtrace

import (
	"bytes"
	"strings"
	"testing"
)

func TestDineroRoundTrip(t *testing.T) {
	tr := randomTrace(500, 9)
	var buf bytes.Buffer
	n, err := tr.WriteDinero(&buf)
	if err != nil {
		t.Fatalf("WriteDinero: %v", err)
	}
	if n != tr.Len() {
		t.Errorf("wrote %d records, want %d", n, tr.Len())
	}
	got, err := ReadDinero(&buf)
	if err != nil {
		t.Fatalf("ReadDinero: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Error("din round trip differs")
	}
}

func TestDineroFormatExact(t *testing.T) {
	tr := NewTrace(0)
	tr.Append(Access{Addr: 0x1000, Kind: Load})
	tr.Append(Access{Addr: 0x2000, Kind: Store})
	tr.Append(Access{Addr: 0x40ab, Kind: Ifetch})
	var buf bytes.Buffer
	if _, err := tr.WriteDinero(&buf); err != nil {
		t.Fatal(err)
	}
	want := "0 1000\n1 2000\n2 40ab\n"
	if buf.String() != want {
		t.Errorf("din output = %q, want %q", buf.String(), want)
	}
}

func TestReadDineroTolerance(t *testing.T) {
	// Blank lines and trailing fields (as emitted by some tracers) are
	// accepted.
	in := "0 1000 extra stuff\n\n  2 2000\n1 3000\n"
	tr, err := ReadDinero(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.At(1).Kind != Ifetch || tr.At(1).Addr != 0x2000 {
		t.Errorf("record 1 = %v", tr.At(1))
	}
}

func TestReadDineroErrors(t *testing.T) {
	cases := []string{
		"0\n",                  // missing address
		"x 1000\n",             // bad label
		"0 zz\n",               // bad address
		"7 1000\n",             // unknown label
		"0 4000000000000000\n", // address above the 62-bit packed range
	}
	for _, in := range cases {
		if _, err := ReadDinero(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestDineroWriterStreaming(t *testing.T) {
	var buf bytes.Buffer
	dw := NewDineroWriter(&buf)
	tr := randomTrace(100, 4)
	tr.Each(dw.Access)
	if dw.Count() != 100 {
		t.Errorf("count = %d", dw.Count())
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDinero(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Error("streamed din trace differs")
	}
}

func TestDineroWriterStickyError(t *testing.T) {
	dw := NewDineroWriter(&failAfter{n: 8})
	for i := 0; i < 1<<14; i++ {
		dw.Access(Access{Addr: Addr(i), Kind: Load})
	}
	if err := dw.Close(); err == nil {
		t.Fatal("Close succeeded despite write failure")
	}
}
