package version

import (
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringCarriesToolAndToolchain(t *testing.T) {
	s := String("jouppisim")
	if !strings.HasPrefix(s, "jouppisim") {
		t.Errorf("String = %q, want the tool name first", s)
	}
	for _, part := range []string{runtime.Version(), runtime.GOOS + "/" + runtime.GOARCH} {
		if !strings.Contains(s, part) {
			t.Errorf("String = %q, missing %q", s, part)
		}
	}
}

func TestStringWithFullBuildInfo(t *testing.T) {
	orig := readBuildInfo
	defer func() { readBuildInfo = orig }()
	readBuildInfo = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			Main: debug.Module{Path: "example.com/jouppi", Version: "v1.2.3"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}
	s := String("tracegen")
	for _, part := range []string{"tracegen", "example.com/jouppi", "v1.2.3", "vcs 0123456789ab", "(modified)"} {
		if !strings.Contains(s, part) {
			t.Errorf("String = %q, missing %q", s, part)
		}
	}
	if strings.Contains(s, "0123456789abcdef") {
		t.Errorf("String = %q, revision not truncated", s)
	}
}

func TestStringWithoutBuildInfo(t *testing.T) {
	orig := readBuildInfo
	defer func() { readBuildInfo = orig }()
	readBuildInfo = func() (*debug.BuildInfo, bool) { return nil, false }
	s := String("cachesim")
	if !strings.HasPrefix(s, "cachesim ") {
		t.Errorf("String = %q, want graceful fallback", s)
	}
}
