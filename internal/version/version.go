// Package version derives a human-readable build identification string
// from the information the Go toolchain embeds in every binary, so the
// command-line tools can answer -version without a hand-maintained
// constant or linker flags.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// readBuildInfo is a test seam over debug.ReadBuildInfo.
var readBuildInfo = debug.ReadBuildInfo

// String renders the build identification for one named tool, e.g.
//
//	jouppisim jouppi (devel) go1.22.5 linux/amd64 vcs 7b8ecfa (modified)
//
// Fields that the build did not embed (module version outside a module
// build, VCS data outside a checkout) are simply omitted.
func String(tool string) string {
	out := tool
	if bi, ok := readBuildInfo(); ok {
		if bi.Main.Path != "" {
			out += " " + bi.Main.Path
		}
		if bi.Main.Version != "" {
			out += " " + bi.Main.Version
		}
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = " (modified)"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			out += " vcs " + rev + modified
		}
	}
	return fmt.Sprintf("%s %s %s/%s", out, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
