package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPercent(t *testing.T) {
	if got := Percent(1, 4); !almost(got, 25) {
		t.Errorf("Percent(1,4) = %v, want 25", got)
	}
	if got := Percent(3, 0); got != 0 {
		t.Errorf("Percent(3,0) = %v, want 0", got)
	}
}

func TestPercentReduction(t *testing.T) {
	cases := []struct{ base, improved, want float64 }{
		{100, 50, 50},
		{100, 100, 0},
		{100, 0, 100},
		{100, 150, -50},
		{0, 10, 0},
	}
	for _, c := range cases {
		if got := PercentReduction(c.base, c.improved); !almost(got, c.want) {
			t.Errorf("PercentReduction(%v,%v) = %v, want %v", c.base, c.improved, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); !almost(got, 4) {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestMeanPercentReductionEqualWeighting(t *testing.T) {
	// The footnote-1 example: one benchmark drops 90% with tiny counts,
	// another drops 10% with huge counts. The metric must return 50%,
	// not a count-weighted figure.
	base := []uint64{10, 1000000}
	improved := []uint64{1, 900000}
	if got := MeanPercentReduction(base, improved); !almost(got, 50) {
		t.Errorf("MeanPercentReduction = %v, want 50", got)
	}
}

func TestMeanPercentReductionZeroBase(t *testing.T) {
	got := MeanPercentReduction([]uint64{0, 100}, []uint64{0, 50})
	if !almost(got, 25) {
		t.Errorf("MeanPercentReduction with zero base = %v, want 25", got)
	}
}

func TestMeanPercentReductionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	MeanPercentReduction([]uint64{1}, []uint64{1, 2})
}

func TestMeanPercentReductionEmpty(t *testing.T) {
	if got := MeanPercentReduction(nil, nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Min, 1) || !almost(s.Max, 4) || !almost(s.Mean, 2.5) || !almost(s.Sum, 10) {
		t.Errorf("Summarize = %+v", s)
	}
	// Sample std-dev of 1..4 is sqrt(5/3).
	if !almost(s.StdDev, math.Sqrt(5.0/3.0)) {
		t.Errorf("StdDev = %v, want %v", s.StdDev, math.Sqrt(5.0/3.0))
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.StdDev != 0 || one.Mean != 7 {
		t.Errorf("single-element summary = %+v", one)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

// Property: reduction is antisymmetric around equal values and bounded by
// 100 for non-negative improved counts.
func TestPercentReductionProperties(t *testing.T) {
	f := func(base, improved uint32) bool {
		r := PercentReduction(float64(base), float64(improved))
		if base == 0 {
			return r == 0
		}
		if improved == 0 {
			return almost(r, 100)
		}
		if improved == base {
			return almost(r, 0)
		}
		return r <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean is bounded by Min and Max.
func TestSummarizeBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip degenerate inputs
			}
			// Bound magnitudes so the sum cannot overflow; overflow
			// behaviour is not what this property is about.
			xs[i] = math.Mod(x, 1e12)
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s == Summary{}
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
