// Package stats provides the small statistical helpers the experiments
// share, most importantly the paper's cross-benchmark aggregation metric:
// the unweighted average of per-benchmark percentage reductions in miss
// rate (paper footnote 1), which deliberately weights each benchmark
// equally rather than weighting by miss count.
package stats

import "math"

// Percent returns part/whole × 100, or 0 when whole is 0.
func Percent(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return part / whole * 100
}

// PercentReduction returns the percentage by which improved undercuts
// base: (base − improved)/base × 100. A negative result means improved is
// worse. It returns 0 when base is 0 (no misses to remove).
func PercentReduction(base, improved float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - improved) / base * 100
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanPercentReduction computes the paper's footnote-1 metric over paired
// per-benchmark counts: for each pair it computes the percent reduction
// from base[i] to improved[i], then returns the unweighted mean of those
// percentages. Pairs with base[i] == 0 contribute 0 (nothing to remove).
// It panics if the slices differ in length.
func MeanPercentReduction(base, improved []uint64) float64 {
	if len(base) != len(improved) {
		panic("stats: MeanPercentReduction slice length mismatch")
	}
	if len(base) == 0 {
		return 0
	}
	sum := 0.0
	for i := range base {
		sum += PercentReduction(float64(base[i]), float64(improved[i]))
	}
	return sum / float64(len(base))
}

// Summary holds simple descriptive statistics of a series.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	StdDev   float64
	Sum      float64
}

// Summarize computes descriptive statistics of xs. An empty series yields
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		varSum := 0.0
		for _, x := range xs {
			d := x - s.Mean
			varSum += d * d
		}
		s.StdDev = math.Sqrt(varSum / float64(s.N-1))
	}
	return s
}

// GeoMean returns the geometric mean of xs (all values must be positive),
// or 0 for an empty slice. Used for speedup aggregation.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
