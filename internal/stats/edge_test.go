package stats

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty series should yield the zero Summary, got %+v", s)
	}
}

func TestSummarizeSingleElement(t *testing.T) {
	s := Summarize([]float64{4.5})
	want := Summary{N: 1, Min: 4.5, Max: 4.5, Mean: 4.5, StdDev: 0, Sum: 4.5}
	if s != want {
		t.Errorf("got %+v, want %+v", s, want)
	}
}

func TestSummarizeNaNPropagates(t *testing.T) {
	// NaN inputs are a caller bug; the contract is that they surface
	// loudly in the aggregate fields rather than being silently dropped.
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.N != 3 {
		t.Errorf("N = %d, want 3", s.N)
	}
	if !math.IsNaN(s.Sum) || !math.IsNaN(s.Mean) {
		t.Errorf("NaN input should propagate to Sum and Mean, got %+v", s)
	}
}

func TestSummarizeNegativeValues(t *testing.T) {
	s := Summarize([]float64{-2, 0, 2})
	if s.Min != -2 || s.Max != 2 || s.Mean != 0 || s.Sum != 0 {
		t.Errorf("got %+v", s)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s.StdDev)
	}
}

func TestGeoMeanEdges(t *testing.T) {
	if g := GeoMean(nil); g != 0 {
		t.Errorf("empty GeoMean = %v, want 0", g)
	}
	if g := GeoMean([]float64{7}); math.Abs(g-7) > 1e-12 {
		t.Errorf("single-element GeoMean = %v, want 7", g)
	}
}
