package shardreplay_test

// Engine-level tests: argument validation, the inline fast path, the
// multi-shard pipeline, cancellation on both paths, panic relay, and
// the routing telemetry. These exercise the machinery the differential
// suite relies on, with synthetic sinks instead of cache systems.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/shardreplay"
	"jouppi/internal/telemetry"
)

// synthTrace builds a trace of n line-aligned accesses striding through
// the baseline L1's sets, so every shard of any small partition gets
// work.
func synthTrace(n int) *memtrace.Trace {
	tr := memtrace.NewTrace(n)
	for i := 0; i < n; i++ {
		kind := memtrace.Ifetch
		if i%3 == 1 {
			kind = memtrace.Load
		} else if i%7 == 2 {
			kind = memtrace.Store
		}
		tr.Append(memtrace.Access{Kind: kind, Addr: memtrace.Addr(uint64(i) * 16)})
	}
	return tr
}

// basePartition returns the baseline hierarchy's partition for k shards.
func basePartition(t *testing.T, k int) shardreplay.Partition {
	t.Helper()
	dec := shardreplay.PlanHierarchy(hierarchy.Config{}, k)
	if !dec.Sharded() {
		t.Fatalf("baseline config did not shard: %q", dec.Fallback)
	}
	return dec.Partition()
}

// collector is a sink recording every access it sees (single-goroutine
// per shard by the engine contract, so no lock).
type collector struct{ got []memtrace.Access }

func (c *collector) Access(a memtrace.Access) { c.got = append(c.got, a) }

func TestReplayValidation(t *testing.T) {
	eng := shardreplay.New(shardreplay.Config{})
	p := basePartition(t, 2)
	if err := eng.Replay(context.Background(), nil, p, []memtrace.Sink{&collector{}, &collector{}}); !errors.Is(err, memtrace.ErrNilSource) {
		t.Errorf("nil source: got %v", err)
	}
	src := synthTrace(8).Source()
	if err := eng.Replay(context.Background(), src, p, []memtrace.Sink{&collector{}, nil}); !errors.Is(err, shardreplay.ErrNilShard) {
		t.Errorf("nil shard: got %v", err)
	}
	if err := eng.Replay(context.Background(), src, p, make([]memtrace.Sink, 3, 3)); err == nil {
		t.Error("partition/sink count mismatch accepted")
	}
	if err := eng.Replay(context.Background(), src, p, nil); err != nil {
		t.Errorf("zero sinks should be a no-op, got %v", err)
	}
}

// TestReplayRoutesEveryRecordOnce pins the core delivery contract: with
// K sinks, every record lands exactly once, on the shard the partition
// assigns, in its original relative order.
func TestReplayRoutesEveryRecordOnce(t *testing.T) {
	const n = 10_000
	tr := synthTrace(n)
	p := basePartition(t, 3)
	sinks := []*collector{{}, {}, {}}
	eng := shardreplay.New(shardreplay.Config{ChunkSize: 256, Batch: 64, Ring: 2})
	if err := eng.Replay(context.Background(), tr.Source(),
		p, []memtrace.Sink{sinks[0], sinks[1], sinks[2]}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range sinks {
		total += len(s.got)
		last := -1
		for _, a := range s.got {
			if p.ShardOf(a.Addr) != i {
				t.Fatalf("shard %d got foreign address %#x", i, a.Addr)
			}
			// Addresses ascend in synthTrace, so in-order delivery means
			// strictly ascending addresses within a shard.
			if int(a.Addr) <= last {
				t.Fatalf("shard %d out of order at %#x", i, a.Addr)
			}
			last = int(a.Addr)
		}
	}
	if total != n {
		t.Fatalf("delivered %d of %d records", total, n)
	}
}

// TestReplayInlineSingleShard pins that one sink replays inline and
// sees the full stream in order.
func TestReplayInlineSingleShard(t *testing.T) {
	tr := synthTrace(5000)
	var c collector
	eng := shardreplay.New(shardreplay.Config{ChunkSize: 512})
	if err := eng.Replay(context.Background(), tr.Source(),
		shardreplay.Partition{}, []memtrace.Sink{&c}); err != nil {
		t.Fatal(err)
	}
	if len(c.got) != tr.Len() {
		t.Fatalf("inline replay delivered %d of %d", len(c.got), tr.Len())
	}
}

// slowSource trickles records one at a time (not a ChunkSource), also
// covering the per-record chunkFiller fallback.
type slowSource struct {
	recs []memtrace.Access
	i    int
}

func (s *slowSource) Next() (memtrace.Access, bool) {
	if s.i >= len(s.recs) {
		return memtrace.Access{}, false
	}
	a := s.recs[s.i]
	s.i++
	return a, true
}

func TestReplayPlainSourceFallback(t *testing.T) {
	tr := synthTrace(3000)
	src := &slowSource{}
	tr.Each(func(a memtrace.Access) { src.recs = append(src.recs, a) })
	p := basePartition(t, 2)
	a, b := &collector{}, &collector{}
	eng := shardreplay.New(shardreplay.Config{ChunkSize: 128, Batch: 32})
	if err := eng.Replay(context.Background(), src, p, []memtrace.Sink{a, b}); err != nil {
		t.Fatal(err)
	}
	if got := len(a.got) + len(b.got); got != tr.Len() {
		t.Fatalf("delivered %d of %d", got, tr.Len())
	}
}

func TestReplayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := synthTrace(100_000)
	p := basePartition(t, 2)
	eng := shardreplay.New(shardreplay.Config{})
	err := eng.Replay(ctx, tr.Source(), p, []memtrace.Sink{&collector{}, &collector{}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("sharded cancellation: got %v", err)
	}
	var c collector
	if err := eng.Replay(ctx, tr.Source(), shardreplay.Partition{}, []memtrace.Sink{&c}); !errors.Is(err, context.Canceled) {
		t.Errorf("inline cancellation: got %v", err)
	}
}

// blockingSink parks until released, letting the producer fill the
// shard's ring and block — then cancellation must still win.
type blockingSink struct{ release chan struct{} }

func (s *blockingSink) Access(memtrace.Access) { <-s.release }

func TestReplayCancellationUnderBackpressure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr := synthTrace(200_000)
	p := basePartition(t, 2)
	blocked := &blockingSink{release: make(chan struct{})}
	eng := shardreplay.New(shardreplay.Config{ChunkSize: 256, Batch: 16, Ring: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	var err error
	go func() {
		defer wg.Done()
		err = eng.Replay(ctx, tr.Source(), p, []memtrace.Sink{blocked, &collector{}})
	}()
	cancel()
	close(blocked.release)
	wg.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("backpressured cancellation: got %v", err)
	}
}

// panicSink panics on the nth access it sees.
type panicSink struct{ n int }

func (s *panicSink) Access(memtrace.Access) {
	s.n--
	if s.n <= 0 {
		panic("boom")
	}
}

func TestReplayShardPanicRelay(t *testing.T) {
	tr := synthTrace(50_000)
	p := basePartition(t, 2)
	eng := shardreplay.New(shardreplay.Config{ChunkSize: 256, Batch: 32, Ring: 2})
	defer func() {
		v := recover()
		sp, ok := v.(*shardreplay.ShardPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *ShardPanic", v, v)
		}
		if sp.Val != "boom" {
			t.Errorf("relayed value %v", sp.Val)
		}
		if len(sp.Stack) == 0 {
			t.Error("relayed panic has no stack")
		}
		if sp.Error() == "" {
			t.Error("empty Error()")
		}
	}()
	_ = eng.Replay(context.Background(), tr.Source(), p,
		[]memtrace.Sink{&panicSink{n: 100}, &collector{}})
	t.Fatal("replay returned instead of re-panicking")
}

func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := synthTrace(20_000)
	p := basePartition(t, 2)
	eng := shardreplay.New(shardreplay.Config{ChunkSize: 256, Batch: 32, Ring: 2})
	eng.AttachTelemetry(reg)
	if err := eng.Replay(context.Background(), tr.Source(), p,
		[]memtrace.Sink{&collector{}, &collector{}}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["shardreplay_records_total"]; got != float64(tr.Len()) {
		t.Errorf("records_total = %v, want %d", got, tr.Len())
	}
	if snap["shardreplay_chunks_total"] == 0 {
		t.Error("chunks_total stayed zero")
	}
	if got := snap["shardreplay_shards"]; got != 2 {
		t.Errorf("shards gauge = %v, want 2", got)
	}
	if _, ok := snap["shardreplay_shard_lag_0"]; !ok {
		t.Error("no per-shard lag gauge registered")
	}
	// Detach: the engine must run metric-free again.
	eng.AttachTelemetry(nil)
	if err := eng.Replay(context.Background(), tr.Source(), p,
		[]memtrace.Sink{&collector{}, &collector{}}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot()["shardreplay_records_total"]; got != float64(tr.Len()) {
		t.Errorf("detached engine still published: %v", got)
	}
}
