package shardreplay_test

// Telemetry exactness under sharding: K shard systems attached to one
// registry share a name-idempotent counter set, each publishing its own
// deltas. After the replay the shared counters must equal the
// sequential replay's exactly — no double counts, no lost remainders.
// Under -race this is also the pin that delta publication from shard
// goroutines is race-free.

import (
	"context"
	"strings"
	"testing"

	"jouppi/internal/hierarchy"
	"jouppi/internal/shardreplay"
	"jouppi/internal/telemetry"
)

// simSnapshot filters a registry snapshot down to the simulation
// counters (dropping the engine's own shardreplay_* routing metrics,
// which have no sequential counterpart).
func simSnapshot(reg *telemetry.Registry) map[string]float64 {
	out := map[string]float64{}
	for name, v := range reg.Snapshot() {
		if strings.HasPrefix(name, "sim_") {
			out[name] = v
		}
	}
	return out
}

func TestShardedTelemetryExactness(t *testing.T) {
	tr := diffTrace(t, "grr")
	cfg := hierarchy.Config{}

	seqReg := telemetry.NewRegistry()
	seq, err := hierarchy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq.AttachTelemetry(seqReg)
	if err := seq.RunSourceContext(context.Background(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	seq.FlushTelemetry()

	shReg := telemetry.NewRegistry()
	h, err := shardreplay.NewHierarchy(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Systems()) != 4 {
		t.Fatalf("systems = %d, want 4", len(h.Systems()))
	}
	h.AttachTelemetry(shReg)
	if err := h.Replay(context.Background(), tr.Source()); err != nil {
		t.Fatal(err)
	}

	want, got := simSnapshot(seqReg), simSnapshot(shReg)
	if len(want) == 0 {
		t.Fatal("sequential registry published no sim_ metrics")
	}
	for name, w := range want {
		if g, ok := got[name]; !ok || g != w {
			t.Errorf("%s: sharded registry %v, sequential %v", name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: sharded-only sim metric", name)
		}
	}
	// The engine's routing metrics must exist alongside.
	if shReg.Snapshot()["shardreplay_records_total"] != float64(tr.Len()) {
		t.Errorf("engine records_total = %v, want %d",
			shReg.Snapshot()["shardreplay_records_total"], tr.Len())
	}
}
