// The fuzz target lives in the package's external test suite so it can
// seed its corpus from internal/faultinject's byte corruptors, same as
// the memtrace fuzz targets.
package shardreplay_test

import (
	"bytes"
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/faultinject"
	"jouppi/internal/memtrace"
	"jouppi/internal/shardreplay"
)

// fuzzTraceBytes returns a well-formed binary trace that touches
// several sets of the small fuzz cache.
func fuzzTraceBytes() []byte {
	tr := memtrace.NewTrace(0)
	for i := 0; i < 64; i++ {
		kind := memtrace.Ifetch
		if i%2 == 1 {
			kind = memtrace.Load
		}
		if i%5 == 3 {
			kind = memtrace.Store
		}
		tr.Append(memtrace.Access{Addr: memtrace.Addr(uint64(i) * 48), Kind: kind})
	}
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	return buf.Bytes()
}

// FuzzShardMerge feeds arbitrary (usually damaged) trace bytes through
// two independent lenient decodes — one replayed sequentially, one
// through the sharded engine — and requires both the degradation
// reports and the merged simulation stats to be identical. Sharding
// must be invisible even on corrupt input: the decoder, not the replay
// topology, decides what survives.
func FuzzShardMerge(f *testing.F) {
	valid := fuzzTraceBytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	for seed := int64(1); seed <= 3; seed++ {
		f.Add(faultinject.Truncate(valid, seed))
		f.Add(faultinject.FlipBits(valid, seed, 4))
		f.Add(faultinject.DuplicateSpan(valid, seed, 8))
		f.Add(faultinject.TruncateHeader(valid, seed))
	}

	cc := cache.Config{Name: "L1", Size: 512, LineSize: 16, Assoc: 1} // 32 sets
	build := func() (core.FrontEnd, error) {
		c, err := cache.New(cc)
		if err != nil {
			return nil, err
		}
		return core.NewBaseline(c, nil, core.DefaultTiming()), nil
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Damaged headers are rejected before lenient decode begins; only
		// a stream that opens exercises the replay comparison.
		seqR, err := memtrace.NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		seqR.Lenient(0)
		seqFE, err := build()
		if err != nil {
			t.Fatal(err)
		}
		memtrace.Each(seqR, func(a memtrace.Access) {
			seqFE.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		})
		if err := seqR.Err(); err != nil {
			t.Fatalf("lenient sequential decode errored: %v", err)
		}

		shR, err := memtrace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal("same bytes opened once but not twice")
		}
		shR.Lenient(0)
		fes, err := shardreplay.NewFrontEnds(cc, 3, build)
		if err != nil {
			t.Fatal(err)
		}
		if err := fes.Replay(t.Context(), shR); err != nil {
			t.Fatalf("sharded replay: %v", err)
		}
		if err := shR.Err(); err != nil {
			t.Fatalf("lenient sharded decode errored: %v", err)
		}

		seqD, shD := seqR.Degradation(), shR.Degradation()
		if seqD.Dropped != shD.Dropped || seqD.First != shD.First {
			t.Fatalf("degradation diverged:\nsequential %+v\nsharded    %+v", seqD, shD)
		}
		for reason, n := range seqD.Reasons {
			if shD.Reasons[reason] != n {
				t.Fatalf("degradation reason %q: sequential %d, sharded %d", reason, n, shD.Reasons[reason])
			}
		}
		if want, got := seqFE.Stats(), fes.Stats(); want != got {
			t.Fatalf("stats diverged on damaged input:\nsequential %+v\nsharded    %+v", want, got)
		}
	})
}
