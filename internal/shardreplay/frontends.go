package shardreplay

import (
	"context"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
)

// FrontEnds is a sharded stand-alone first-level simulation (cachesim's
// shape): K replicas of one core.FrontEnd, each receiving exactly the
// accesses that touch its slice of the L1 sets. On the fallback path it
// holds one replica and replays sequentially.
type FrontEnds struct {
	dec  Decision
	part Partition
	eng  *Engine
	fes  []core.FrontEnd
}

// NewFrontEnds plans a sharded replay for the cache geometry cc and
// builds one front-end per effective shard with build (called once per
// replica; every call must construct an identically-configured fresh
// front-end over a fresh cache array). coupled lists fallback reasons
// for globally-coupled structure the geometry alone cannot reveal, as
// in PlanCache.
func NewFrontEnds(cc cache.Config, requested int, build func() (core.FrontEnd, error), coupled ...string) (*FrontEnds, error) {
	dec := PlanCache(cc, requested, coupled...)
	f := &FrontEnds{dec: dec, eng: New(Config{})}
	f.fes = make([]core.FrontEnd, dec.Shards)
	for i := range f.fes {
		fe, err := build()
		if err != nil {
			return nil, err
		}
		f.fes[i] = fe
	}
	if dec.Sharded() {
		f.part = dec.Partition()
	}
	return f, nil
}

// Decision returns the plan the replica set was built from.
func (f *FrontEnds) Decision() Decision { return f.dec }

// AttachTelemetry attaches the routing engine's metrics to reg (the
// replicas' own stats are single-owner structs; callers publish them
// after the replay, when the shard goroutines are done). A nil registry
// detaches. Attach before the replay starts.
func (f *FrontEnds) AttachTelemetry(reg *telemetry.Registry) { f.eng.AttachTelemetry(reg) }

// FrontEnds exposes the per-shard replicas (index = shard).
func (f *FrontEnds) FrontEnds() []core.FrontEnd { return f.fes }

// feSink adapts a core.FrontEnd to the memtrace.Sink the engine feeds.
type feSink struct{ fe core.FrontEnd }

func (s feSink) Access(a memtrace.Access) {
	s.fe.Access(uint64(a.Addr), a.Kind == memtrace.Store)
}

// Replay pulls src dry through the replica set — sharded, or inline on
// the caller's goroutine when the plan fell back to one shard.
func (f *FrontEnds) Replay(ctx context.Context, src memtrace.Source) error {
	sinks := make([]memtrace.Sink, len(f.fes))
	for i, fe := range f.fes {
		sinks[i] = feSink{fe}
	}
	return f.eng.Replay(ctx, src, f.part, sinks)
}

// Stats merges the per-shard counters; every field is a plain event
// count over a disjoint sub-stream, so the sums equal the sequential
// replay's stats exactly.
func (f *FrontEnds) Stats() core.Stats {
	var out core.Stats
	for _, fe := range f.fes {
		out.Add(fe.Stats())
	}
	return out
}
