package shardreplay_test

// Metamorphic and property tests: relations that must hold for *every*
// input, checked with testing/quick where the input space is cheap to
// sample and with explicit sweeps where a replay is involved.
//
//   - shard-count invariance: the merged results are the same function
//     of the trace for every K (including K=1 and non-power-of-two K);
//   - per-shard decomposition: the shard counters sum field-for-field
//     to the merged counters;
//   - partition soundness: every cache set is owned by exactly one
//     shard, and bits outside the common field never change ownership.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/shardreplay"
)

// TestShardCountInvariance replays one trace at every interesting shard
// count — one (inline path), powers of two, a prime, and more shards
// than common-field values (capped) — and requires every replay to
// produce bit-identical results.
func TestShardCountInvariance(t *testing.T) {
	tr := diffTrace(t, "ccom")
	want := replaySequential(t, hierarchy.Config{}, tr)
	for _, k := range []int{1, 2, 4, 7, 16, 64} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			got, dec := replayShardedN(t, hierarchy.Config{}, tr, k)
			if dec.Shards > k {
				t.Errorf("effective shards %d exceed requested %d", dec.Shards, k)
			}
			requireBitIdentical(t, want, got)
		})
	}
}

// TestShardResultsSumToMerged pins the decomposition the merge relies
// on: summing the per-shard counters field-for-field (via the same Add
// methods MergeResults uses) reproduces the merged counters exactly,
// and no shard is silently idle on a trace that touches every set slice.
func TestShardResultsSumToMerged(t *testing.T) {
	tr := diffTrace(t, "yacc")
	h, err := shardreplay.NewHierarchy(hierarchy.Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Shards(); got != 8 {
		t.Fatalf("effective shards = %d, want 8", got)
	}
	if err := h.Replay(context.Background(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	merged := h.Results(tr.Instructions())

	var sum hierarchy.Results
	for i, r := range h.ShardResults() {
		if r.I.Accesses+r.D.Accesses == 0 {
			t.Errorf("shard %d received no accesses", i)
		}
		sum.I.Add(r.I)
		sum.D.Add(r.D)
		sum.L2I.Add(r.L2I)
		sum.L2D.Add(r.L2D)
		sum.Mem.Add(r.Mem)
	}
	sum.Instructions = merged.Instructions
	sum.Breakdown = merged.Breakdown // derived, not a per-shard counter
	requireBitIdentical(t, sum, merged)
}

// TestPartitionCoversEverySet property-checks the partition function
// over random geometries: for every cache in the plan, each set index
// maps to exactly one shard, and two addresses in the same set always
// land in the same shard.
func TestPartitionCoversEverySet(t *testing.T) {
	property := func(sizeLog, lineLog, assocLog uint8, k uint8) bool {
		line := 1 << (4 + lineLog%4)    // 16..128B
		size := line << (4 + sizeLog%8) // 16..2048 lines
		assoc := 1 << (assocLog % 3)    // 1..4-way
		shards := 2 + int(k%15)         // 2..16
		cc := cache.Config{Name: "C", Size: size, LineSize: line, Assoc: assoc}
		if cc.Sets() < 2 {
			return true // single-set geometries fall back, nothing to cover
		}
		dec := shardreplay.PlanCache(cc, shards)
		if !dec.Sharded() {
			// A standalone cache with ≥2 sets always has set-index bits.
			return false
		}
		p := dec.Partition()
		// Walk one line-aligned address per set, plus aliases that differ
		// only in tag and offset bits: ownership must depend on the set
		// alone, and every shard index must stay in range.
		owner := make(map[int]int, cc.Sets())
		for set := 0; set < cc.Sets(); set++ {
			base := memtrace.Addr(uint64(set) * uint64(line))
			s := p.ShardOf(base)
			if s < 0 || s >= dec.Shards {
				return false
			}
			owner[set] = s
			tagAlias := base + memtrace.Addr(uint64(cc.Sets())*uint64(line)*3)
			offAlias := base + memtrace.Addr(line-1)
			if p.ShardOf(tagAlias) != s || p.ShardOf(offAlias) != s {
				return false
			}
		}
		return len(owner) == cc.Sets()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPartitionBalance pins that the modulo routing uses every shard
// when the field has at least as many values as shards — no shard may
// be structurally unreachable.
func TestPartitionBalance(t *testing.T) {
	property := func(k uint8) bool {
		shards := 2 + int(k%31)
		dec := shardreplay.PlanHierarchy(hierarchy.Config{}, shards)
		if !dec.Sharded() {
			return false
		}
		p := dec.Partition()
		seen := make(map[int]bool)
		for v := 0; v < 1<<dec.FieldWidth; v++ {
			seen[p.ShardOf(memtrace.Addr(uint64(v)<<dec.FieldShift))] = true
		}
		return len(seen) == dec.Shards
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// TestStatsAddCoversEveryField guards the merge against field rot: a
// counter added to core.Stats, L2Stats or MemStats without extending
// Add would silently drop events from merged results. Adding a struct
// filled with ones to a zero value must set every numeric field.
func TestStatsAddCoversEveryField(t *testing.T) {
	check := func(name string, zero, ones interface{}, add func()) {
		fill(reflect.ValueOf(ones).Elem())
		add()
		v := reflect.ValueOf(zero).Elem()
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).Kind() == reflect.Uint64 && v.Field(i).Uint() != 1 {
				t.Errorf("%s.Add drops field %s", name, v.Type().Field(i).Name)
			}
		}
	}
	{
		var dst, src core.Stats
		check("core.Stats", &dst, &src, func() { dst.Add(src) })
	}
	{
		var dst, src hierarchy.L2Stats
		check("L2Stats", &dst, &src, func() { dst.Add(src) })
	}
	{
		var dst, src hierarchy.MemStats
		check("MemStats", &dst, &src, func() { dst.Add(src) })
	}
}

func fill(v reflect.Value) {
	for i := 0; i < v.NumField(); i++ {
		if f := v.Field(i); f.Kind() == reflect.Uint64 {
			f.SetUint(1)
		}
	}
}
