package shardreplay_test

// FrontEnds tests: the stand-alone first-level shape (cachesim's) must
// obey the same contract as the full hierarchy — bit-identical merged
// stats, or a loud fallback when the caller declares coupled structure.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/memtrace"
	"jouppi/internal/shardreplay"
)

func baselineL1() cache.Config {
	return cache.Config{Name: "L1", Size: 4096, LineSize: 16, Assoc: 1}
}

func buildBaseline(cc cache.Config) func() (core.FrontEnd, error) {
	return func() (core.FrontEnd, error) {
		c, err := cache.New(cc)
		if err != nil {
			return nil, err
		}
		return core.NewBaseline(c, nil, core.DefaultTiming()), nil
	}
}

// TestFrontEndsDifferential replays each paper workload through one
// front-end sequentially and through a sharded replica set, and
// requires the merged core.Stats to match field-for-field.
func TestFrontEndsDifferential(t *testing.T) {
	cc := baselineL1()
	for _, bench := range []string{"ccom", "linpack"} {
		t.Run(bench, func(t *testing.T) {
			tr := diffTrace(t, bench)

			seq, err := buildBaseline(cc)()
			if err != nil {
				t.Fatal(err)
			}
			tr.Each(func(a memtrace.Access) { seq.Access(uint64(a.Addr), a.Kind == memtrace.Store) })

			fes, err := shardreplay.NewFrontEnds(cc, 4, buildBaseline(cc))
			if err != nil {
				t.Fatal(err)
			}
			if dec := fes.Decision(); !dec.Sharded() {
				t.Fatalf("baseline L1 did not shard: %q", dec.Fallback)
			}
			if got := len(fes.FrontEnds()); got != 4 {
				t.Fatalf("replica count = %d, want 4", got)
			}
			if err := fes.Replay(context.Background(), tr.Source()); err != nil {
				t.Fatal(err)
			}
			if want, got := seq.Stats(), fes.Stats(); want != got {
				t.Errorf("stats diverge:\nsequential %+v\nsharded    %+v", want, got)
			}
		})
	}
}

// TestFrontEndsCoupledFallback pins that a declared coupled structure —
// the classifier, introspection taps, an augmentation — forces one
// replica and surfaces the caller's reason verbatim.
func TestFrontEndsCoupledFallback(t *testing.T) {
	const reason = "3C classifier keeps a global LRU shadow"
	fes, err := shardreplay.NewFrontEnds(baselineL1(), 8, buildBaseline(baselineL1()), "", reason)
	if err != nil {
		t.Fatal(err)
	}
	dec := fes.Decision()
	if dec.Sharded() || dec.Shards != 1 {
		t.Fatalf("coupled config sharded: %+v", dec)
	}
	if !strings.Contains(dec.Fallback, reason) {
		t.Errorf("fallback %q lost the caller's reason", dec.Fallback)
	}
	// The fallback replica must still replay (inline).
	tr := diffTrace(t, "ccom")
	if err := fes.Replay(context.Background(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	if fes.Stats().Accesses == 0 {
		t.Error("fallback replica saw no accesses")
	}
}

// TestFrontEndsBuildError pins that a failing factory aborts construction.
func TestFrontEndsBuildError(t *testing.T) {
	boom := errors.New("boom")
	_, err := shardreplay.NewFrontEnds(baselineL1(), 4,
		func() (core.FrontEnd, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want build error", err)
	}
}

// TestPlanCacheFallbacks covers the stand-alone planner's matrix.
func TestPlanCacheFallbacks(t *testing.T) {
	fa := cache.Config{Name: "FA", Size: 1024, LineSize: 16, Assoc: 64}
	if d := shardreplay.PlanCache(fa, 4); d.Sharded() || !strings.Contains(d.Fallback, "single set") {
		t.Errorf("fully-associative cache: %+v", d)
	}
	rnd := baselineL1()
	rnd.Assoc, rnd.Replacement = 2, cache.Random
	if d := shardreplay.PlanCache(rnd, 4); d.Sharded() || !strings.Contains(d.Fallback, "random") {
		t.Errorf("random replacement: %+v", d)
	}
	if d := shardreplay.PlanCache(baselineL1(), 1); d.Sharded() || d.Fallback != "" {
		t.Errorf("single-shard request: %+v", d)
	}
	// More shards than field values: capped at the value count.
	small := cache.Config{Name: "S", Size: 64, LineSize: 16, Assoc: 1} // 4 sets
	if d := shardreplay.PlanCache(small, 64); d.Shards != 4 {
		t.Errorf("cap: %+v", d)
	}
}

// TestPartitionPanicsOnFallback pins the misuse guard.
func TestPartitionPanicsOnFallback(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Partition() on a fallback decision did not panic")
		}
	}()
	shardreplay.PlanCache(baselineL1(), 1).Partition()
}
