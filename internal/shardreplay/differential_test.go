package shardreplay_test

// The differential harness pins the package contract — "bit-identical
// or loudly fall back" — by replaying every golden-figure configuration
// shape both ways over the paper workloads and demanding that every
// counter and every derived float in hierarchy.Results matches to the
// last bit (math.Float64bits, not an epsilon). A randomized sweep over
// seeded geometries extends the pin beyond the hand-picked shapes.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/shardreplay"
	"jouppi/internal/workload"
)

// diffScale matches the golden snapshot suite's scale, so the traces
// replayed here are exactly the traces whose figures the goldens pin,
// while the full matrix stays fast under -race.
const diffScale = 0.05

// diffTraces caches one generated trace per benchmark; every case
// replays fresh cursors over the same immutable records.
var diffTraces = map[string]*memtrace.Trace{}

func diffTrace(tb testing.TB, name string) *memtrace.Trace {
	if tr, ok := diffTraces[name]; ok {
		return tr
	}
	b, ok := workload.ByName(name)
	if !ok {
		tb.Fatalf("unknown benchmark %q", name)
	}
	tr := workload.GenerateTrace(b, diffScale)
	diffTraces[name] = tr
	return tr
}

// requireBitIdentical walks two hierarchy.Results with reflection and
// fails on the first field whose bits differ. Floats are compared by
// Float64bits — stricter than ==, which would let -0 and NaN slip by.
func requireBitIdentical(t *testing.T, want, got hierarchy.Results) {
	t.Helper()
	diffValue(t, "Results", reflect.ValueOf(want), reflect.ValueOf(got))
}

func diffValue(t *testing.T, path string, want, got reflect.Value) {
	t.Helper()
	switch want.Kind() {
	case reflect.Struct:
		for i := 0; i < want.NumField(); i++ {
			diffValue(t, path+"."+want.Type().Field(i).Name, want.Field(i), got.Field(i))
		}
	case reflect.Float64:
		w, g := want.Float(), got.Float()
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Errorf("%s: sequential %v (bits %#x) != sharded %v (bits %#x)",
				path, w, math.Float64bits(w), g, math.Float64bits(g))
		}
	case reflect.Uint64, reflect.Uint, reflect.Uint32:
		if want.Uint() != got.Uint() {
			t.Errorf("%s: sequential %d != sharded %d", path, want.Uint(), got.Uint())
		}
	default:
		if !reflect.DeepEqual(want.Interface(), got.Interface()) {
			t.Errorf("%s: sequential %v != sharded %v", path, want.Interface(), got.Interface())
		}
	}
}

// replaySequential is the reference path: one hierarchy.System pulled
// straight off a cursor.
func replaySequential(t *testing.T, cfg hierarchy.Config, tr *memtrace.Trace) hierarchy.Results {
	t.Helper()
	sys, err := hierarchy.New(cfg)
	if err != nil {
		t.Fatalf("hierarchy.New: %v", err)
	}
	if err := sys.RunSourceContext(context.Background(), tr.Source()); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	return sys.Results(tr.Instructions())
}

// replayShardedN replays the same trace through a sharded hierarchy and
// returns the merged results plus the decision that was taken.
func replayShardedN(t *testing.T, cfg hierarchy.Config, tr *memtrace.Trace, shards int) (hierarchy.Results, shardreplay.Decision) {
	t.Helper()
	h, err := shardreplay.NewHierarchy(cfg, shards)
	if err != nil {
		t.Fatalf("shardreplay.NewHierarchy: %v", err)
	}
	if err := h.Replay(context.Background(), tr.Source()); err != nil {
		t.Fatalf("sharded replay: %v", err)
	}
	return h.Results(tr.Instructions()), h.Decision()
}

// diffCase is one golden-figure configuration shape: the system config,
// whether the planner must shard it, and — when it must not — a
// substring the fallback reason has to contain.
type diffCase struct {
	name     string
	cfg      hierarchy.Config
	sharded  bool
	fallback string
	benches  []string // nil means ccom+liver
}

func l1(size, line, assoc int) cache.Config {
	return cache.Config{Name: "L1", Size: size, LineSize: line, Assoc: assoc}
}

// goldenCases mirrors the golden snapshot suite's figure configurations
// (internal/experiments/testdata/golden): one differential case per
// figure shape, plus the pure-geometry variants those figures sweep.
func goldenCases() []diffCase {
	mk := func(name string, sharded bool, fb string, mut func(*hierarchy.Config)) diffCase {
		c := diffCase{name: name, sharded: sharded, fallback: fb}
		mut(&c.cfg)
		return c
	}
	stream := core.StreamConfig{Ways: 1, Depth: 4}
	return []diffCase{
		// Figure 2-2: the paper baseline — pure direct-mapped, shardable.
		// Run all six paper workloads through it; this is the headline pin.
		{name: "fig2-2/baseline", sharded: true, benches: workload.Names()},
		// Figure 2-2's loss bands sweep L1 size implicitly; pin the
		// geometry extremes the golden suite visits.
		mk("fig2-2/l1-1k", true, "", func(c *hierarchy.Config) {
			c.L1I, c.L1D = l1(1024, 16, 1), l1(1024, 16, 1)
		}),
		mk("fig2-2/l1-64k", true, "", func(c *hierarchy.Config) {
			c.L1I, c.L1D = l1(64<<10, 16, 1), l1(64<<10, 16, 1)
		}),
		mk("fig2-2/line-32", true, "", func(c *hierarchy.Config) {
			c.L1I, c.L1D = l1(4096, 32, 1), l1(4096, 32, 1)
		}),
		// Figure 3-1: miss caches — a shared FA structure, must fall back.
		mk("fig3-1/miss-cache-4", false, "miss-cache", func(c *hierarchy.Config) {
			c.DAugment = hierarchy.Augment{Kind: hierarchy.MissCache, Entries: 4}
		}),
		// Figure 3-3: victim caches — must fall back.
		mk("fig3-3/victim-4", false, "victim-cache", func(c *hierarchy.Config) {
			c.DAugment = hierarchy.Augment{Kind: hierarchy.VictimCache, Entries: 4}
		}),
		// Figure 4-1: instruction stream buffer — must fall back.
		mk("fig4-1/i-stream", false, "stream-buffers", func(c *hierarchy.Config) {
			c.IAugment = hierarchy.Augment{Kind: hierarchy.StreamBuffers, Stream: stream}
		}),
		// Figure 4-3: data stream buffer — must fall back.
		mk("fig4-3/d-stream", false, "stream-buffers", func(c *hierarchy.Config) {
			c.DAugment = hierarchy.Augment{Kind: hierarchy.StreamBuffers, Stream: stream}
		}),
		// Figure 4-6 sweeps stream-buffer gain over cache size; the
		// buffers force the fallback, while the underlying geometries
		// shard. Pin both halves of that matrix.
		mk("fig4-6/stream-16k", false, "stream-buffers", func(c *hierarchy.Config) {
			c.L1I, c.L1D = l1(16<<10, 16, 1), l1(16<<10, 16, 1)
			c.IAugment = hierarchy.Augment{Kind: hierarchy.StreamBuffers, Stream: stream}
		}),
		mk("fig4-6/bare-16k", true, "", func(c *hierarchy.Config) {
			c.L1I, c.L1D = l1(16<<10, 16, 1), l1(16<<10, 16, 1)
		}),
		// Set-associative L1s: LRU is within-set order, still shardable.
		mk("assoc/2-way", true, "", func(c *hierarchy.Config) {
			c.L1I, c.L1D = l1(4096, 16, 2), l1(4096, 16, 2)
		}),
		mk("assoc/4-way-fifo", true, "", func(c *hierarchy.Config) {
			c.L1I, c.L1D = l1(4096, 16, 4), l1(4096, 16, 4)
			c.L1I.Replacement, c.L1D.Replacement = cache.FIFO, cache.FIFO
		}),
		// The L2 extensions couple globally too.
		mk("l2/victim", false, "victim-cache", func(c *hierarchy.Config) {
			c.L2VictimEntries = 4
		}),
		// Random replacement shares one generator across sets.
		mk("random/l1d", false, "random replacement", func(c *hierarchy.Config) {
			c.L1D = l1(4096, 16, 2)
			c.L1D.Replacement = cache.Random
		}),
	}
}

// TestDifferentialGoldenSuite replays every golden-figure configuration
// shape sharded and sequentially and requires bit-identical results —
// and that the planner's shard-or-fallback decision is the expected one.
func TestDifferentialGoldenSuite(t *testing.T) {
	for _, tc := range goldenCases() {
		benches := tc.benches
		if benches == nil {
			benches = []string{"ccom", "liver"}
		}
		for _, bench := range benches {
			t.Run(tc.name+"/"+bench, func(t *testing.T) {
				tr := diffTrace(t, bench)
				want := replaySequential(t, tc.cfg, tr)
				got, dec := replayShardedN(t, tc.cfg, tr, 4)
				if dec.Sharded() != tc.sharded {
					t.Errorf("decision: sharded=%v (fallback %q), want sharded=%v",
						dec.Sharded(), dec.Fallback, tc.sharded)
				}
				if !tc.sharded && !strings.Contains(dec.Fallback, tc.fallback) {
					t.Errorf("fallback reason %q does not mention %q", dec.Fallback, tc.fallback)
				}
				requireBitIdentical(t, want, got)
			})
		}
	}
}

// TestDifferentialRandomGeometries extends the pin beyond hand-picked
// shapes: seeded random (but deterministic) pure-geometry systems, each
// replayed sharded and sequentially. Only geometry varies — the
// globally-coupled structures are covered by the fallback cases above.
func TestDifferentialRandomGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5ca1e))
	pow2 := func(lo, hi int) int { return 1 << (lo + rng.Intn(hi-lo+1)) }
	repl := []cache.Replacement{cache.LRU, cache.FIFO}
	for i := 0; i < 8; i++ {
		line := pow2(4, 6) // 16..64B
		cfg := hierarchy.Config{
			L1I: cache.Config{Name: "L1I", Size: pow2(10, 14), LineSize: line,
				Assoc: pow2(0, 2), Replacement: repl[rng.Intn(2)]},
			L1D: cache.Config{Name: "L1D", Size: pow2(10, 14), LineSize: line,
				Assoc: pow2(0, 2), Replacement: repl[rng.Intn(2)]},
			L2: cache.Config{Name: "L2", Size: 1 << uint(17+rng.Intn(4)), LineSize: 128,
				Assoc: 1 << uint(rng.Intn(2))},
		}
		shards := 2 + rng.Intn(7)
		bench := workload.Names()[rng.Intn(len(workload.Names()))]
		t.Run(fmt.Sprintf("geom%d/%s/k%d", i, bench, shards), func(t *testing.T) {
			tr := diffTrace(t, bench)
			want := replaySequential(t, cfg, tr)
			got, dec := replayShardedN(t, cfg, tr, shards)
			if !dec.Sharded() {
				// A random geometry may legitimately share no set bits;
				// the differential pin still holds on the fallback path.
				t.Logf("fell back: %s", dec.Fallback)
			}
			requireBitIdentical(t, want, got)
		})
	}
}
