package shardreplay

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/trace"
)

// ErrNilShard reports a Replay handed a nil shard sink.
var ErrNilShard = errors.New("shardreplay: nil shard sink")

// ShardPanic wraps a panic raised inside a shard goroutine. The engine
// records the first one, stops producing, lets the surviving shards
// drain their queued batches, and then re-panics the wrapped value on
// the caller's goroutine — the same relay contract as fanout's
// ConsumerPanic.
type ShardPanic struct {
	Shard int    // index of the panicking shard in the Replay call
	Val   any    // the recovered panic value
	Stack []byte // stack of the shard goroutine at panic time
}

// Error makes the relayed panic presentable when a recovering caller
// formats it as a failure.
func (p *ShardPanic) Error() string {
	return fmt.Sprintf("shardreplay: shard %d panicked: %v", p.Shard, p.Val)
}

// Config sizes the engine. The zero value selects the defaults.
type Config struct {
	// ChunkSize is the producer's pull granularity from the source
	// (bulk-decoded through memtrace.ChunkSource when supported).
	// Defaults to 4096, the streaming workload source's own granularity.
	ChunkSize int
	// Batch is the per-shard hand-off granularity: the producer routes
	// accesses into one pending batch per shard and sends a batch when
	// it fills (or at end of stream). Defaults to 1024 — large enough to
	// amortize channel operations, small enough to keep shards busy on
	// skewed partitions.
	Batch int
	// Ring is the per-shard bound on in-flight batches. The producer
	// blocks once the slowest shard falls Ring batches behind, so memory
	// is O(Shards × Ring × Batch) regardless of trace length. Defaults
	// to 8.
	Ring int
}

const (
	defaultChunkSize = 4096
	defaultBatch     = 1024
	defaultRing      = 8
)

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = defaultChunkSize
	}
	if c.Batch <= 0 {
		c.Batch = defaultBatch
	}
	if c.Ring <= 0 {
		c.Ring = defaultRing
	}
	return c
}

// Engine replays one trace pass partitioned across shard sinks. The
// zero value is usable; New applies defaults eagerly. An Engine is
// reusable across Replay calls but not concurrently.
type Engine struct {
	cfg Config
	reg *telemetry.Registry

	// Metrics are nil (and every operation a no-op) until
	// AttachTelemetry is called with a non-nil registry.
	chunks  *telemetry.Counter
	records *telemetry.Counter
	shards  *telemetry.Gauge
	depth   *telemetry.Gauge
	lag     []*telemetry.Gauge
}

// New returns an engine with cfg's zero fields defaulted.
func New(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// AttachTelemetry registers the engine's metrics on reg: counters for
// chunks pulled and records routed, a gauge for the shard count of the
// current replay, a gauge for the deepest per-shard batch backlog, and
// one lag gauge per shard slot. A nil registry detaches (every metric
// update becomes a no-op).
func (e *Engine) AttachTelemetry(reg *telemetry.Registry) {
	e.reg = reg
	e.lag = nil
	if reg == nil {
		e.chunks, e.records, e.shards, e.depth = nil, nil, nil, nil
		return
	}
	e.chunks = reg.Counter("shardreplay_chunks_total", "trace chunks pulled by the sharded-replay producer")
	e.records = reg.Counter("shardreplay_records_total", "trace records routed to shards")
	e.shards = reg.Gauge("shardreplay_shards", "shards of the current sharded replay")
	e.depth = reg.Gauge("shardreplay_depth", "deepest per-shard batch backlog at last send")
}

// lagGauge returns the lag gauge for shard slot i, creating it on first
// use (producer goroutine only). Lag is measured in batches queued
// ahead of the shard.
func (e *Engine) lagGauge(i int) *telemetry.Gauge {
	if e.reg == nil {
		return nil
	}
	for len(e.lag) <= i {
		e.lag = append(e.lag, e.reg.Gauge(
			fmt.Sprintf("shardreplay_shard_lag_%d", len(e.lag)),
			fmt.Sprintf("batch backlog of replay shard %d", len(e.lag))))
	}
	return e.lag[i]
}

// chunkFiller returns the bulk-fill function for src: the source's own
// NextChunk when it implements memtrace.ChunkSource, otherwise a
// per-record fallback with the same contract (short fill only at end of
// stream).
func chunkFiller(src memtrace.Source) func(dst []memtrace.Access) int {
	if cs, ok := src.(memtrace.ChunkSource); ok {
		return cs.NextChunk
	}
	return func(dst []memtrace.Access) int { return memtrace.FillChunk(src, dst) }
}

// Replay pulls every record from src exactly once and delivers it to
// the shard p assigns it to, preserving the stream's relative order
// within each shard. It returns ctx's error if the context is cancelled
// mid-stream (shards may then have seen a prefix of their sub-streams),
// and re-panics a *ShardPanic if any shard sink panics. With a single
// shard the replay runs inline on the caller's goroutine.
func (e *Engine) Replay(ctx context.Context, src memtrace.Source, p Partition, shards []memtrace.Sink) error {
	if src == nil {
		return memtrace.ErrNilSource
	}
	for _, s := range shards {
		if s == nil {
			return ErrNilShard
		}
	}
	if len(shards) > 1 && p.Shards() != len(shards) {
		return fmt.Errorf("shardreplay: partition routes to %d shards, got %d sinks", p.Shards(), len(shards))
	}
	if e.shards != nil {
		e.shards.Set(int64(len(shards)))
	}
	switch len(shards) {
	case 0:
		return nil
	case 1:
		return e.replayInline(ctx, src, shards[0])
	}
	return e.replaySharded(ctx, src, p, shards)
}

// replayInline is the single-shard fast path: no goroutines, no
// routing, just one reused chunk buffer filled in bulk and drained with
// periodic cancellation polls — the exact sequential replay.
func (e *Engine) replayInline(ctx context.Context, src memtrace.Source, sink memtrace.Sink) error {
	cfg := e.cfg.withDefaults()
	fill := chunkFiller(src)
	buf := make([]memtrace.Access, cfg.ChunkSize)
	done := ctx.Done()
	for {
		n := fill(buf)
		if n == 0 {
			return nil
		}
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		for _, a := range buf[:n] {
			sink.Access(a)
		}
		e.countChunk(n)
		if n < cfg.ChunkSize {
			return nil // short fill: source exhausted
		}
	}
}

// batch is one pooled per-shard buffer. Unlike fanout's sharedChunk it
// has exactly one consumer, so no reference count is needed: the shard
// that receives it returns it to the pool.
type batch struct{ buf []memtrace.Access }

// replaySharded is the multi-shard path: one producer goroutine (the
// caller's) pulls chunks and routes each access into its shard's
// pending batch; full batches travel over bounded per-shard channels to
// shard goroutines that replay them in order. Batch buffers are pooled,
// so steady-state routing allocates nothing.
func (e *Engine) replaySharded(ctx context.Context, src memtrace.Source, p Partition, shards []memtrace.Sink) error {
	cfg := e.cfg.withDefaults()
	chans := make([]chan *batch, len(shards))
	for i := range chans {
		chans[i] = make(chan *batch, cfg.Ring)
	}
	pool := &sync.Pool{New: func() any {
		return &batch{buf: make([]memtrace.Access, 0, cfg.Batch)}
	}}

	// abort is closed by the first panicking shard; panicOnce guards the
	// recorded ShardPanic. A panicking shard drains its own channel so
	// the producer can never deadlock against it.
	abort := make(chan struct{})
	var panicOnce sync.Once
	var relayed *ShardPanic

	var wg sync.WaitGroup
	wg.Add(len(shards))
	for i, sink := range shards {
		go func(i int, sink memtrace.Sink, ch chan *batch) {
			defer wg.Done()
			// One span per shard goroutine: sibling spans closing from
			// sibling goroutines is what the span system's concurrency
			// contract covers. Detached (no span in ctx) this is a single
			// context lookup per replay.
			_, ssp := trace.Start(ctx, "shard", trace.Int("shard", i))
			defer ssp.End()
			defer func() {
				if v := recover(); v != nil {
					panicOnce.Do(func() {
						relayed = &ShardPanic{Shard: i, Val: v, Stack: stack()}
						close(abort)
					})
					// Keep draining so the producer's send to this channel
					// cannot block while it reacts to abort.
					for b := range ch {
						b.buf = b.buf[:0]
						pool.Put(b)
					}
				}
			}()
			for b := range ch {
				for _, a := range b.buf {
					sink.Access(a)
				}
				b.buf = b.buf[:0]
				pool.Put(b)
			}
		}(i, sink, chans[i])
	}

	err := e.produce(ctx, src, p, chans, pool, abort, cfg)
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if relayed != nil {
		panic(relayed)
	}
	return err
}

// errAborted is produce's internal signal that a shard panicked; the
// relayed panic carries the real failure, so Replay reports nil.
var errAborted = errors.New("shardreplay: aborted")

// produce pulls chunks from src and routes each access into its shard's
// pending batch, sending batches as they fill (backpressure when a
// shard's window is full) and flushing the stragglers at end of stream.
func (e *Engine) produce(ctx context.Context, src memtrace.Source, p Partition,
	chans []chan *batch, pool *sync.Pool, abort <-chan struct{}, cfg Config) error {
	done := ctx.Done()
	fill := chunkFiller(src)
	chunk := make([]memtrace.Access, cfg.ChunkSize)
	pending := make([]*batch, len(chans))
	for i := range pending {
		pending[i] = pool.Get().(*batch)
	}
	send := func(i int) error {
		if e.reg != nil {
			e.observeLag(chans)
		}
		select {
		case chans[i] <- pending[i]:
			pending[i] = pool.Get().(*batch)
			return nil
		case <-abort:
			return errAborted
		case <-done:
			return ctx.Err()
		}
	}
	for {
		n := fill(chunk)
		if n == 0 {
			break
		}
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		for _, a := range chunk[:n] {
			s := p.ShardOf(a.Addr)
			b := pending[s]
			b.buf = append(b.buf, a)
			if len(b.buf) == cfg.Batch {
				if err := send(s); err != nil {
					if err == errAborted {
						return nil
					}
					return err
				}
			}
		}
		e.countChunk(n)
		if n < cfg.ChunkSize {
			break
		}
	}
	for i := range pending {
		if len(pending[i].buf) == 0 {
			continue
		}
		if err := send(i); err != nil {
			if err == errAborted {
				return nil
			}
			return err
		}
	}
	return nil
}

// countChunk advances the routing counters (no-ops when detached).
func (e *Engine) countChunk(records int) {
	e.chunks.Inc()
	e.records.Add(uint64(records))
}

// observeLag records every shard's current backlog and the maximum
// across shards. Called only when telemetry is attached.
func (e *Engine) observeLag(chans []chan *batch) {
	max := 0
	for j, ch := range chans {
		n := len(ch)
		if n > max {
			max = n
		}
		e.lagGauge(j).Set(int64(n))
	}
	e.depth.Set(int64(max))
}

// stack captures the current goroutine's stack for panic relay.
func stack() []byte {
	buf := make([]byte, 64<<10)
	return buf[:runtime.Stack(buf, false)]
}
