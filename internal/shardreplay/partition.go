// Package shardreplay parallelizes a single-configuration trace replay
// by partitioning the address stream across K shard simulators, each
// owning a disjoint slice of every cache's sets.
//
// Fan-out (the fanout package) parallelizes *across* configurations: a
// one-configuration run — the common cachesimd job shape — still leaves
// all but one core idle. Sharded replay splits that one run. The trick
// is choosing a partition that the caches cannot see: addresses are
// routed by a bit-field lying inside the set-index field of every cache
// in the hierarchy, so each cache set belongs to exactly one shard, and
// the accesses a shard receives are exactly the accesses that touch its
// sets, in their original relative order. LRU/FIFO replacement decides
// victims from within-set order alone, so every probe, fill, eviction
// and writeback resolves exactly as it would have sequentially, and the
// per-shard stats sum to the sequential stats — bit-identical results,
// pinned by the differential and metamorphic tests in this package.
//
// Structures whose behaviour couples sets globally break the partition
// argument: miss caches, victim caches and stream buffers are shared
// fully-associative structures ordered by the global access stream, a
// Random replacement policy draws from one per-cache generator, and the
// 3C classifier keeps a global LRU shadow. Configurations using them
// are routed through a sequential fallback chosen automatically by
// config analysis (PlanHierarchy/PlanCache) — "bit-identical or loudly
// fall back" is the package contract, never "almost right in parallel".
package shardreplay

import (
	"fmt"
	"math/bits"

	"jouppi/internal/cache"
	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
)

// Partition routes addresses to shards by a bit-field common to every
// cache's set index. The zero value is unusable; build one from a
// sharded Decision.
type Partition struct {
	shift uint
	mask  uint64
	k     uint64
}

// Shards returns the number of shards the partition routes to.
func (p Partition) Shards() int { return int(p.k) }

// ShardOf returns the shard owning addr's sets. Addresses with equal
// common-field bits land in the same shard; addresses with different
// common-field bits can never share a set in any cache of the plan.
func (p Partition) ShardOf(addr memtrace.Addr) int {
	return int(((uint64(addr) >> p.shift) & p.mask) % p.k)
}

// Decision is the outcome of planning a sharded replay for one
// configuration: how many shards to actually run and, when the answer
// is "one", why the configuration forced the sequential fallback.
type Decision struct {
	// Requested is the caller's shard count; Shards the effective one.
	// Shards is Requested capped at the number of distinct common-field
	// values, or 1 when the configuration cannot shard.
	Requested int
	Shards    int
	// FieldShift/FieldWidth locate the partition bit-field: bits
	// [FieldShift, FieldShift+FieldWidth) of the address, which lie
	// inside every cache's set index. Zero when not sharded.
	FieldShift uint
	FieldWidth uint
	// Fallback is the human-readable reason the plan fell back to one
	// shard ("" when sharded, or when the caller asked for ≤1 shard).
	Fallback string
}

// Sharded reports whether the plan runs more than one shard.
func (d Decision) Sharded() bool { return d.Shards > 1 }

// Partition builds the address partition the decision describes. It
// panics on a non-sharded decision — the fallback path has no partition.
func (d Decision) Partition() Partition {
	if !d.Sharded() {
		panic("shardreplay: Partition on a non-sharded Decision")
	}
	return Partition{shift: d.FieldShift, mask: 1<<d.FieldWidth - 1, k: uint64(d.Shards)}
}

// log2 of a positive power of two.
func log2(v int) uint { return uint(bits.TrailingZeros(uint(v))) }

// setField returns the address bit-range [lo, hi) forming cc's set
// index: the bits above the line offset that select the set.
func setField(cc cache.Config) (lo, hi uint) {
	lo = log2(cc.LineSize)
	return lo, lo + log2(cc.Sets())
}

// commonField intersects the set-index fields of all given caches. A
// width of zero means no bit of the address selects a set in every
// cache at once (for instance, a fully-associative cache has an empty
// set field).
func commonField(cfgs ...cache.Config) (shift, width uint) {
	lo, hi := setField(cfgs[0])
	for _, cc := range cfgs[1:] {
		clo, chi := setField(cc)
		if clo > lo {
			lo = clo
		}
		if chi < hi {
			hi = chi
		}
	}
	if hi <= lo {
		return 0, 0
	}
	return lo, hi - lo
}

// randomFallback reports the fallback reason a Random replacement
// policy forces, or "" when none of the caches uses one. Random victim
// selection draws from one generator per cache shared by all sets, so
// the sequence of draws — and therefore every randomly-chosen victim —
// depends on the global interleaving of fills across sets.
func randomFallback(cfgs ...cache.Config) string {
	for _, cc := range cfgs {
		if cc.Replacement == cache.Random {
			return fmt.Sprintf("%s uses random replacement (one generator shared across sets)", cc.Name)
		}
	}
	return ""
}

// auxFallback reports the fallback reason an augmentation forces.
func auxFallback(side string, aug hierarchy.Augment) string {
	if aug.Kind == hierarchy.None {
		return ""
	}
	return fmt.Sprintf("%s %s is a shared fully-associative structure ordered by the global access stream", side, aug.Kind)
}

// PlanHierarchy analyses a two-level system configuration and decides
// how a requested shard count can actually run. The decision falls back
// to one shard when any globally-coupled structure is configured (see
// the package comment and the fallback matrix in DESIGN.md §13) or when
// the three caches share no set-index bits.
func PlanHierarchy(cfg hierarchy.Config, requested int) Decision {
	d := Decision{Requested: requested, Shards: 1}
	if requested <= 1 {
		return d
	}
	cfg = cfg.Defaulted()
	for _, reason := range []string{
		auxFallback("L1I", cfg.IAugment),
		auxFallback("L1D", cfg.DAugment),
		auxFallback("L2", cfg.L2Augment),
	} {
		if reason != "" {
			d.Fallback = reason
			return d
		}
	}
	if cfg.L2Augment.Kind == hierarchy.None && cfg.L2VictimEntries > 0 {
		d.Fallback = auxFallback("L2", hierarchy.Augment{Kind: hierarchy.VictimCache})
		return d
	}
	if reason := randomFallback(cfg.L1I, cfg.L1D, cfg.L2); reason != "" {
		d.Fallback = reason
		return d
	}
	shift, width := commonField(cfg.L1I, cfg.L1D, cfg.L2)
	if width == 0 {
		d.Fallback = "L1I, L1D and L2 share no set-index address bits"
		return d
	}
	return d.sharded(shift, width)
}

// PlanCache analyses a single stand-alone cache front-end (cachesim's
// shape) the same way. Globally-coupled structures the planner cannot
// see from the cache geometry — augmentations on the front-end, a 3C
// shadow classifier, stream-ordered observers — are the caller's to
// declare: each non-empty string in coupled is a fallback reason, and
// the first one wins.
func PlanCache(cc cache.Config, requested int, coupled ...string) Decision {
	d := Decision{Requested: requested, Shards: 1}
	if requested <= 1 {
		return d
	}
	for _, reason := range coupled {
		if reason != "" {
			d.Fallback = reason
			return d
		}
	}
	if reason := randomFallback(cc); reason != "" {
		d.Fallback = reason
		return d
	}
	shift, width := commonField(cc)
	if width == 0 {
		d.Fallback = fmt.Sprintf("%s has a single set (no set-index address bits)", cc.Name)
		return d
	}
	return d.sharded(shift, width)
}

// sharded finalizes a plan that can shard: the effective count is the
// request capped at the number of distinct common-field values.
func (d Decision) sharded(shift, width uint) Decision {
	d.FieldShift, d.FieldWidth = shift, width
	d.Shards = d.Requested
	if m := 1 << width; d.Shards > m {
		d.Shards = m
	}
	return d
}
