package shardreplay

import (
	"context"

	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
)

// Hierarchy is a sharded two-level system: K independent
// hierarchy.System replicas, each receiving exactly the accesses that
// touch its slice of the sets, plus the engine that routes the stream.
// When the configuration cannot shard (Decision.Fallback) it degrades
// to one replica replayed sequentially — same numbers, one core.
type Hierarchy struct {
	cfg     hierarchy.Config
	dec     Decision
	part    Partition
	eng     *Engine
	systems []*hierarchy.System
}

// NewHierarchy plans and builds a sharded system for cfg. shards is the
// requested parallelism; the effective count (and any fallback reason)
// is in Decision.
func NewHierarchy(cfg hierarchy.Config, shards int) (*Hierarchy, error) {
	return NewHierarchyEngine(cfg, shards, Config{})
}

// NewHierarchyEngine is NewHierarchy with explicit engine sizing.
func NewHierarchyEngine(cfg hierarchy.Config, shards int, ecfg Config) (*Hierarchy, error) {
	dec := PlanHierarchy(cfg, shards)
	h := &Hierarchy{cfg: cfg, dec: dec, eng: New(ecfg)}
	h.systems = make([]*hierarchy.System, dec.Shards)
	for i := range h.systems {
		sys, err := hierarchy.New(cfg)
		if err != nil {
			return nil, err
		}
		h.systems[i] = sys
	}
	if dec.Sharded() {
		h.part = dec.Partition()
	}
	return h, nil
}

// Decision returns the plan the hierarchy was built from.
func (h *Hierarchy) Decision() Decision { return h.dec }

// Shards returns the effective shard count (1 on the fallback path).
func (h *Hierarchy) Shards() int { return len(h.systems) }

// Systems exposes the per-shard systems, e.g. to attach an
// introspection probe per shard. Each shard needs its own probe — the
// hierarchy's observer taps write single-owner state from the shard's
// goroutine, so sharing one observer across shards is a data race.
// Per-set artifacts (heatmaps) merge across shards by element-wise sum,
// since every set belongs to exactly one shard; per-shard phase windows
// cover only that shard's sub-stream.
func (h *Hierarchy) Systems() []*hierarchy.System { return h.systems }

// AttachTelemetry attaches every shard system and the routing engine to
// reg. Registry counters are name-idempotent, so the K shard systems
// share one counter set; each publishes its own deltas under the
// delta-publication discipline (per-system snapshots, atomic adds), and
// the shared counters converge to exactly the sequential totals. A nil
// registry detaches. Attach before the replay starts.
func (h *Hierarchy) AttachTelemetry(reg *telemetry.Registry) {
	for _, s := range h.systems {
		s.AttachTelemetry(reg)
	}
	h.eng.AttachTelemetry(reg)
}

// Replay pulls src dry through the sharded system (or through the one
// replica, sequentially, on the fallback path). It returns ctx's error
// on cancellation and re-panics a *ShardPanic if a shard dies.
func (h *Hierarchy) Replay(ctx context.Context, src memtrace.Source) error {
	if !h.dec.Sharded() {
		return h.systems[0].RunSourceContext(ctx, src)
	}
	sinks := make([]memtrace.Sink, len(h.systems))
	for i, s := range h.systems {
		sinks[i] = s
	}
	err := h.eng.Replay(ctx, src, h.part, sinks)
	// The shard goroutines are done; flush their telemetry remainders
	// from this goroutine so the registry is exact at return.
	for _, s := range h.systems {
		s.FlushTelemetry()
	}
	return err
}

// Results merges the per-shard counters into the results of the
// equivalent sequential replay (see hierarchy.MergeResults for why the
// merge is exact). instructions is the whole trace's dynamic
// instruction count.
func (h *Hierarchy) Results(instructions uint64) hierarchy.Results {
	if !h.dec.Sharded() {
		return h.systems[0].Results(instructions)
	}
	return hierarchy.MergeResults(h.cfg, instructions, h.ShardResults()...)
}

// ShardResults returns each shard's own counters (with a zero
// instruction count — instructions are a whole-trace quantity). The
// metamorphic tests pin that these sum exactly to Results.
func (h *Hierarchy) ShardResults() []hierarchy.Results {
	out := make([]hierarchy.Results, len(h.systems))
	for i, s := range h.systems {
		out[i] = s.Results(0)
	}
	return out
}
