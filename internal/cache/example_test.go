package cache_test

import (
	"fmt"

	"jouppi/internal/cache"
)

// A direct-mapped cache thrashes on two addresses that share a set; the
// same pair coexists in a 2-way set-associative cache.
func Example() {
	dm := cache.MustNew(cache.Config{Name: "dm", Size: 4096, LineSize: 16, Assoc: 1})
	sa := cache.MustNew(cache.Config{Name: "2way", Size: 4096, LineSize: 16, Assoc: 2})

	for i := 0; i < 100; i++ {
		dm.Access(0x0040, false)
		dm.Access(0x1040, false) // +4KB: same set in the direct-mapped cache
		sa.Access(0x0040, false)
		sa.Access(0x1040, false)
	}
	fmt.Printf("direct-mapped misses: %d\n", dm.Stats().Misses)
	fmt.Printf("2-way misses:         %d\n", sa.Stats().Misses)
	// Output:
	// direct-mapped misses: 200
	// 2-way misses:         2
}

// The low-level Probe/Fill primitives let callers orchestrate refills
// themselves — this is how the victim-cache front-end is built.
func ExampleCache_Fill() {
	c := cache.MustNew(cache.Config{Size: 64, LineSize: 16, Assoc: 1})
	c.Fill(0x00, false)
	victim := c.Fill(0x40, false) // same set: displaces the line at 0x00
	fmt.Printf("evicted line address: %#x (valid %v)\n", victim.LineAddr<<4, victim.Valid)
	// Output:
	// evicted line address: 0x0 (valid true)
}
