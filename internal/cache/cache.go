// Package cache implements the cache models underlying the simulator:
// direct-mapped, set-associative, and fully-associative caches with
// configurable line size, replacement policy, and write policy.
//
// The package operates on plain byte addresses (uint64) and exposes both a
// high-level Access path (probe, fill on miss) for standalone simulation
// and low-level Probe/Fill/Invalidate primitives that the paper's
// miss-cache, victim-cache, and stream-buffer front-ends compose.
package cache

import (
	"fmt"
	"math/bits"

	"jouppi/internal/telemetry"
)

// Replacement selects the victim-choice policy within a set.
type Replacement uint8

// Supported replacement policies. The paper's structures all use LRU; FIFO
// and Random are provided for comparison studies.
const (
	LRU Replacement = iota
	FIFO
	Random
)

// String returns the policy name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// WritePolicy selects how stores interact with lower levels.
type WritePolicy uint8

// Supported write policies. Both are write-allocate: a store miss fills the
// line like a load miss, which matches the paper's miss accounting (stores
// and loads are not distinguished in its miss rates).
const (
	WriteThrough WritePolicy = iota
	WriteBack
)

// String returns the policy name.
func (w WritePolicy) String() string {
	switch w {
	case WriteThrough:
		return "write-through"
	case WriteBack:
		return "write-back"
	default:
		return fmt.Sprintf("WritePolicy(%d)", uint8(w))
	}
}

// Config describes a cache's geometry and policies.
type Config struct {
	// Name labels the cache in diagnostics ("L1I", "L1D", "L2").
	Name string
	// Size is the total data capacity in bytes. Must be a power of two.
	Size int
	// LineSize is the line (block) size in bytes. Must be a power of two
	// and no larger than Size.
	LineSize int
	// Assoc is the number of ways per set. 1 means direct-mapped;
	// FullyAssociative (0) means a single set containing every line.
	Assoc int
	// Replacement is the within-set victim policy. Ignored for
	// direct-mapped caches. Defaults to LRU.
	Replacement Replacement
	// WritePolicy controls store handling. Defaults to WriteThrough.
	WritePolicy WritePolicy
	// RandomSeed seeds victim selection when Replacement is Random.
	RandomSeed uint64
}

// FullyAssociative is the Assoc value selecting a fully-associative cache.
const FullyAssociative = 0

// Validate checks the configuration and returns a descriptive error if it
// is unusable.
func (c Config) Validate() error {
	if c.Size <= 0 || bits.OnesCount(uint(c.Size)) != 1 {
		return fmt.Errorf("cache %q: size %d is not a positive power of two", c.Name, c.Size)
	}
	if c.LineSize <= 0 || bits.OnesCount(uint(c.LineSize)) != 1 {
		return fmt.Errorf("cache %q: line size %d is not a positive power of two", c.Name, c.LineSize)
	}
	if c.LineSize > c.Size {
		return fmt.Errorf("cache %q: line size %d exceeds cache size %d", c.Name, c.LineSize, c.Size)
	}
	lines := c.Size / c.LineSize
	assoc := c.Assoc
	if assoc == FullyAssociative {
		assoc = lines
	}
	if assoc < 0 || assoc > lines {
		return fmt.Errorf("cache %q: associativity %d out of range [1, %d]", c.Name, c.Assoc, lines)
	}
	if lines%assoc != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by associativity %d", c.Name, lines, assoc)
	}
	if c.Replacement > Random {
		return fmt.Errorf("cache %q: unknown replacement policy %d", c.Name, c.Replacement)
	}
	if c.WritePolicy > WriteBack {
		return fmt.Errorf("cache %q: unknown write policy %d", c.Name, c.WritePolicy)
	}
	return nil
}

// Lines returns the total number of lines the configuration holds.
func (c Config) Lines() int { return c.Size / c.LineSize }

// Sets returns the number of sets the configuration resolves to.
func (c Config) Sets() int {
	assoc := c.Assoc
	if assoc == FullyAssociative {
		assoc = c.Lines()
	}
	return c.Lines() / assoc
}

// Victim describes a line evicted by Fill.
type Victim struct {
	// LineAddr is the line address (byte address >> line-offset bits) of
	// the evicted line. Valid only when Valid is true.
	LineAddr uint64
	// Valid reports whether an actual line was displaced (false when the
	// fill landed in an empty way).
	Valid bool
	// Dirty reports whether the evicted line held unwritten store data
	// (write-back caches only).
	Dirty bool
}

// Stats accumulates cache activity counters.
type Stats struct {
	Accesses   uint64 // total Probe/Access calls
	Hits       uint64
	Misses     uint64
	Fills      uint64 // lines installed
	Evictions  uint64 // valid lines displaced by fills
	Writebacks uint64 // dirty evictions (write-back policy)
	Writes     uint64 // store accesses observed
}

// MissRate returns Misses/Accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Fills += other.Fills
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.Writes += other.Writes
}

// Counters is the optional live telemetry of a Cache: registry counters
// for the same events the plain Stats already count. The cache's probe
// and fill fast paths never touch these — the Stats struct is the
// single (non-atomic, single-writer) source of truth, and a flush
// publishes the delta since the previous flush into the shared registry
// counters. The owner of the replay loop (the hierarchy system, or a CLI
// driver) flushes at chunk boundaries and at results time, so a /metrics
// scrape lags the live run by at most one flush interval and the final
// numbers are exact, while an instrumented replay costs exactly as much
// as an uninstrumented one between flushes.
type Counters struct {
	hits       *telemetry.Counter
	misses     *telemetry.Counter
	fills      *telemetry.Counter
	evictions  *telemetry.Counter
	writebacks *telemetry.Counter
	last       Stats // stats already published to the registry
}

// NewCounters registers the standard cache counter set under
// sim_cache_<label>_* in reg. A nil registry yields detached (no-op)
// counters.
func NewCounters(reg *telemetry.Registry, label string) *Counters {
	name := telemetry.SanitizeName(label)
	return &Counters{
		hits:       reg.Counter("sim_cache_"+name+"_hits_total", "cache "+label+": probe hits"),
		misses:     reg.Counter("sim_cache_"+name+"_misses_total", "cache "+label+": probe misses"),
		fills:      reg.Counter("sim_cache_"+name+"_fills_total", "cache "+label+": lines installed"),
		evictions:  reg.Counter("sim_cache_"+name+"_evictions_total", "cache "+label+": valid lines displaced"),
		writebacks: reg.Counter("sim_cache_"+name+"_writebacks_total", "cache "+label+": dirty evictions"),
	}
}

// addDelta publishes the growth of one stat since the last flush.
func addDelta(c *telemetry.Counter, cur, last uint64) {
	if cur != last {
		c.Add(cur - last)
	}
}

// publish sends the delta between cur and the last published stats to
// the registry and records cur as published. Nil receivers are no-ops.
func (t *Counters) publish(cur Stats) {
	if t == nil {
		return
	}
	addDelta(t.hits, cur.Hits, t.last.Hits)
	addDelta(t.misses, cur.Misses, t.last.Misses)
	addDelta(t.fills, cur.Fills, t.last.Fills)
	addDelta(t.evictions, cur.Evictions, t.last.Evictions)
	addDelta(t.writebacks, cur.Writebacks, t.last.Writebacks)
	t.last = cur
}

// rebase marks cur as already published without emitting anything, so a
// freshly attached registry counts activity from attach time forward and
// a stats reset does not underflow the deltas.
func (t *Counters) rebase(cur Stats) {
	if t != nil {
		t.last = cur
	}
}

type way struct {
	tag   uint64 // line address (full address >> lineShift)
	used  uint64 // last-touch tick (LRU) — untouched after fill under FIFO
	valid bool
	dirty bool
}

// Cache is a single cache array. It is not safe for concurrent use.
type Cache struct {
	cfg       Config
	sets      [][]way
	lineShift uint
	setMask   uint64
	// heatAcc (nil unless InstrumentSets) sits beside the geometry words
	// Probe loads anyway, so the nil check an uninstrumented probe pays
	// costs no extra cache line; the per-set counters are split per
	// metric so the one touched on every access is a dense uint64 array
	// — 8 bytes per set of extra working set instead of a whole row.
	heatAcc []uint64
	tick    uint64
	rng     uint64
	stats   Stats
	// The miss- and eviction-path counters ride after the hot fields.
	heatMiss  []uint64
	heatEvict []uint64
	tel       *Counters
}

// New builds a cache from cfg. It returns an error if cfg is invalid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	assoc := cfg.Assoc
	if assoc == FullyAssociative {
		assoc = cfg.Lines()
	}
	numSets := cfg.Lines() / assoc
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setMask:   uint64(numSets - 1),
		rng:       cfg.RandomSeed | 1,
	}
	c.sets = make([][]way, numSets)
	backing := make([]way, numSets*assoc)
	for i := range c.sets {
		c.sets[i], backing = backing[:assoc:assoc], backing[assoc:]
	}
	return c, nil
}

// MustNew is New but panics on invalid configuration. Intended for tests
// and statically-known configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the activity counters. While a per-set
// counter array is attached (InstrumentSets), the global access count
// lives in the per-set rows and is summed back here, so the probe fast
// path pays one increment whether or not the cache is instrumented.
func (c *Cache) Stats() Stats {
	st := c.stats
	for _, n := range c.heatAcc {
		st.Accesses += n
	}
	return st
}

// Instrument attaches live telemetry counters, fed by delta-publication
// from the cache's Stats at flush time (the probe/fill hot paths carry
// no telemetry code at all). nil detaches, publishing whatever the
// previous attachment had not flushed yet. A freshly attached counter
// set counts activity from attach time forward. Attachment is not
// synchronized with a running replay; attach before replay begins.
func (c *Cache) Instrument(tel *Counters) {
	c.tel.publish(c.Stats())
	c.tel = tel
	c.tel.rebase(c.Stats())
}

// InstrumentSets attaches caller-owned per-set counter arrays, one
// entry per cache set, that the probe and fill paths increment in place:
// acc counts probes mapping to each set, miss the subset that missed,
// evict the fills that displaced a valid line (the direct-mapped
// conflict signature). Counting happens where those paths have already
// computed the set index — the reason the introspection layer sources
// its heatmaps here instead of re-deriving the set per observed access —
// and the arrays are split per metric so the only one touched on every
// access is 8 bytes per set. The caller keeps the slices and reads them
// whenever it likes; the cache only writes them, following the same
// single-writer plain-struct discipline as Stats. While attached, acc
// stands in for the global access counter (see Stats), so hand over
// freshly zeroed arrays. Passing all nil detaches, folding the per-set
// access counts back into the plain counter.
func (c *Cache) InstrumentSets(acc, miss, evict []uint64) {
	for _, s := range [][]uint64{acc, miss, evict} {
		if (s == nil) != (acc == nil) || (s != nil && len(s) != len(c.sets)) {
			panic(fmt.Sprintf("cache %q: InstrumentSets wants three equal arrays of %d counters (got %d/%d/%d)",
				c.cfg.Name, len(c.sets), len(acc), len(miss), len(evict)))
		}
	}
	for _, n := range c.heatAcc {
		c.stats.Accesses += n
	}
	c.heatAcc, c.heatMiss, c.heatEvict = acc, miss, evict
}

// FlushTelemetry publishes the stats delta since the last flush to the
// attached registry counters, if any. The hierarchy flushes its caches
// at chunk boundaries; standalone users should flush before reading the
// registry.
func (c *Cache) FlushTelemetry() { c.tel.publish(c.Stats()) }

// ResetStats zeroes the activity counters — including an attached
// per-set array, which holds part of them — without disturbing contents.
// Pending telemetry deltas are published first; the attached registry
// counters keep their (monotonic) totals and resume from the reset.
func (c *Cache) ResetStats() {
	c.tel.publish(c.Stats())
	c.stats = Stats{}
	c.resetHeat()
	c.tel.rebase(Stats{})
}

func (c *Cache) resetHeat() {
	for _, s := range [][]uint64{c.heatAcc, c.heatMiss, c.heatEvict} {
		for i := range s {
			s[i] = 0
		}
	}
}

// LineAddr converts a byte address to this cache's line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// LineSize returns the configured line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

func (c *Cache) setFor(lineAddr uint64) []way { return c.sets[lineAddr&c.setMask] }

// Probe looks up addr, updating recency and dirty state on a hit. It
// reports whether the line is present. On a miss the cache is unchanged;
// the caller decides whether and what to Fill.
func (c *Cache) Probe(addr uint64, write bool) bool {
	if write {
		c.stats.Writes++
	}
	la := c.LineAddr(addr)
	// An attached per-set counter subsumes the global access counter
	// (Stats sums it back), so instrumentation costs the same single
	// increment. Indexing with len-1 — InstrumentSets guarantees len is
	// the power-of-two set count — lets the compiler drop the bounds
	// check.
	if h := c.heatAcc; len(h) != 0 {
		h[la&uint64(len(h)-1)]++
	} else {
		c.stats.Accesses++
	}
	set := c.setFor(la)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == la {
			if c.cfg.Replacement != FIFO {
				c.tick++
				w.used = c.tick
			}
			if write && c.cfg.WritePolicy == WriteBack {
				w.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	if h := c.heatMiss; len(h) != 0 {
		h[la&uint64(len(h)-1)]++
	}
	return false
}

// Contains reports whether addr's line is present without updating any
// replacement or statistics state.
func (c *Cache) Contains(addr uint64) bool {
	la := c.LineAddr(addr)
	set := c.setFor(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}

// Fill installs addr's line, selecting a victim per the replacement policy
// if the set is full, and returns the displaced line. dirty marks the new
// line as holding unwritten store data (write-allocate store miss under
// write-back). Filling a line that is already present refreshes its
// recency instead of duplicating it.
func (c *Cache) Fill(addr uint64, dirty bool) Victim {
	la := c.LineAddr(addr)
	set := c.setFor(la)
	c.tick++

	victim := -1
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == la {
			// Already present (e.g. racing prefetch): refresh.
			w.used = c.tick
			w.dirty = w.dirty || dirty
			return Victim{}
		}
		if !w.valid && victim == -1 {
			victim = i
		}
	}
	if victim == -1 {
		victim = c.pickVictim(set)
	}

	w := &set[victim]
	out := Victim{LineAddr: w.tag, Valid: w.valid, Dirty: w.dirty}
	if out.Valid {
		c.stats.Evictions++
		if h := c.heatEvict; len(h) != 0 {
			h[la&uint64(len(h)-1)]++
		}
		if out.Dirty {
			c.stats.Writebacks++
		}
	}
	*w = way{tag: la, used: c.tick, valid: true, dirty: dirty}
	c.stats.Fills++
	return out
}

func (c *Cache) pickVictim(set []way) int {
	switch c.cfg.Replacement {
	case Random:
		// xorshift64*; cheap deterministic pseudo-randomness.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(len(set)))
	default: // LRU and FIFO both evict the minimum 'used' tick; FIFO
		// simply never refreshes it on hits (see Probe).
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].used < set[best].used {
				best = i
			}
		}
		return best
	}
}

// Invalidate removes addr's line if present and reports whether it was
// present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := c.LineAddr(addr)
	set := c.setFor(la)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == la {
			present, dirty = true, w.dirty
			*w = way{}
			return present, dirty
		}
	}
	return false, false
}

// Access is the standalone simulation path: probe addr and fill on miss.
// It reports whether the access hit and, when it missed, the victim the
// fill displaced.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim) {
	if c.Probe(addr, write) {
		return true, Victim{}
	}
	dirty := write && c.cfg.WritePolicy == WriteBack
	return false, c.Fill(addr, dirty)
}

// Reset invalidates every line and zeroes the statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
	c.tick = 0
	c.tel.publish(c.Stats())
	c.stats = Stats{}
	c.resetHeat()
	c.tel.rebase(Stats{})
	c.rng = c.cfg.RandomSeed | 1
}

// Touch updates the recency of addr's line if present, without counting an
// access. The victim-cache swap path uses it to model the swapped-in line
// becoming most recently used.
func (c *Cache) Touch(addr uint64) bool {
	la := c.LineAddr(addr)
	set := c.setFor(la)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == la {
			c.tick++
			w.used = c.tick
			return true
		}
	}
	return false
}

// MarkDirty sets the dirty bit on addr's line if present. Used when a line
// arrives from a victim cache carrying modified data.
func (c *Cache) MarkDirty(addr uint64) bool {
	la := c.LineAddr(addr)
	set := c.setFor(la)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == la {
			w.dirty = true
			return true
		}
	}
	return false
}

// Utilization returns the fraction of lines currently valid.
func (c *Cache) Utilization() float64 {
	valid := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				valid++
			}
		}
	}
	return float64(valid) / float64(c.cfg.Lines())
}

// ResidentLines returns the line addresses of every valid line, in no
// particular order. Intended for content inspection (e.g. inclusion
// analysis between hierarchy levels), not for the simulation fast path.
func (c *Cache) ResidentLines() []uint64 {
	out := make([]uint64, 0, c.cfg.Lines())
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				out = append(out, set[i].tag)
			}
		}
	}
	return out
}
