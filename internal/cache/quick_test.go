package cache

import (
	"testing"
	"testing/quick"
)

// Property: under LRU replacement, a fill never evicts the line that was
// touched most recently in its set — with at least two ways, the victim
// is by definition older than the most recent touch.
func TestQuickLRUVictimNeverMRU(t *testing.T) {
	f := func(assocSel uint8, writes []bool, raw []uint16) bool {
		assoc := 2 << (assocSel % 3) // 2, 4, or 8 ways
		c := MustNew(Config{Name: "quick", Size: 1024, LineSize: 16,
			Assoc: assoc, Replacement: LRU})
		sets := uint64(1024 / 16 / assoc)
		mru := make(map[uint64]uint64) // set index → last-touched line address
		for i, r := range raw {
			// A 16-bit address space over a 1KB cache forces constant
			// conflicts, so victims are plentiful.
			addr := uint64(r)
			write := i < len(writes) && writes[i]
			la := c.LineAddr(addr)
			set := la & (sets - 1)
			_, victim := c.Access(addr, write)
			if victim.Valid {
				if last, ok := mru[set]; ok && last == victim.LineAddr {
					return false
				}
			}
			mru[set] = la
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
