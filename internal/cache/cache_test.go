package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	ok := Config{Name: "ok", Size: 4096, LineSize: 16, Assoc: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Size: 0, LineSize: 16, Assoc: 1},
		{Size: 3000, LineSize: 16, Assoc: 1},   // size not power of two
		{Size: 4096, LineSize: 0, Assoc: 1},    // zero line
		{Size: 4096, LineSize: 24, Assoc: 1},   // line not power of two
		{Size: 16, LineSize: 64, Assoc: 1},     // line > size
		{Size: 4096, LineSize: 16, Assoc: 300}, // assoc > lines
		{Size: 4096, LineSize: 16, Assoc: -2},  // negative assoc
		{Size: 4096, LineSize: 16, Assoc: 3},   // lines % assoc != 0
		{Size: 64, LineSize: 16, Assoc: 1, Replacement: 99},
		{Size: 64, LineSize: 16, Assoc: 1, WritePolicy: 99},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{Size: 4096, LineSize: 16, Assoc: 4}
	if got := cfg.Lines(); got != 256 {
		t.Errorf("Lines = %d, want 256", got)
	}
	if got := cfg.Sets(); got != 64 {
		t.Errorf("Sets = %d, want 64", got)
	}
	fa := Config{Size: 4096, LineSize: 16, Assoc: FullyAssociative}
	if got := fa.Sets(); got != 1 {
		t.Errorf("fully-associative Sets = %d, want 1", got)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{Size: 7}); err == nil {
		t.Fatal("New accepted invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{Size: 7})
}

func TestDirectMappedBasics(t *testing.T) {
	// 4 lines of 16B, direct-mapped: addresses 0x00 and 0x40 collide.
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 1})

	if c.Probe(0x00, false) {
		t.Fatal("empty cache hit")
	}
	c.Fill(0x00, false)
	if !c.Probe(0x04, false) {
		t.Fatal("same-line access missed after fill")
	}
	if c.Probe(0x40, false) {
		t.Fatal("conflicting line hit before fill")
	}
	v := c.Fill(0x40, false)
	if !v.Valid || v.LineAddr != c.LineAddr(0x00) {
		t.Fatalf("victim = %+v, want line of 0x00", v)
	}
	if c.Probe(0x00, false) {
		t.Fatal("displaced line still hits")
	}

	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 4 accesses / 1 hit / 3 misses", st)
	}
	if st.Fills != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 fills / 1 eviction", st)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// One set, 2 ways, lines of 16B, cache 32B.
	c := MustNew(Config{Size: 32, LineSize: 16, Assoc: FullyAssociative})
	c.Fill(0x000, false)
	c.Fill(0x100, false)
	// Touch 0x000 so 0x100 becomes LRU.
	if !c.Probe(0x000, false) {
		t.Fatal("0x000 missing")
	}
	v := c.Fill(0x200, false)
	if !v.Valid || v.LineAddr != c.LineAddr(0x100) {
		t.Fatalf("victim = %+v, want LRU line 0x100", v)
	}
	if !c.Contains(0x000) || !c.Contains(0x200) || c.Contains(0x100) {
		t.Error("post-eviction contents wrong")
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	c := MustNew(Config{Size: 32, LineSize: 16, Assoc: FullyAssociative, Replacement: FIFO})
	c.Fill(0x000, false)
	c.Fill(0x100, false)
	// Touch 0x000 repeatedly; FIFO must still evict it first.
	for i := 0; i < 5; i++ {
		c.Probe(0x000, false)
	}
	v := c.Fill(0x200, false)
	if !v.Valid || v.LineAddr != c.LineAddr(0x000) {
		t.Fatalf("FIFO victim = %+v, want first-in line 0x000", v)
	}
}

func TestRandomReplacementIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []uint64 {
		c := MustNew(Config{Size: 64, LineSize: 16, Assoc: FullyAssociative,
			Replacement: Random, RandomSeed: seed})
		var victims []uint64
		for i := 0; i < 64; i++ {
			v := c.Fill(uint64(i)*16+0x1000, false)
			if v.Valid {
				victims = append(victims, v.LineAddr)
			}
		}
		return victims
	}
	a, b := run(5), run(5)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("victim streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different victims at %d", i)
		}
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	c := MustNew(Config{Size: 32, LineSize: 16, Assoc: FullyAssociative})
	c.Fill(0x000, false)
	c.Fill(0x100, false)
	// Re-fill 0x000 (e.g. a redundant prefetch): must not duplicate or evict.
	v := c.Fill(0x000, false)
	if v.Valid {
		t.Fatalf("re-fill evicted %+v", v)
	}
	// 0x100 is now LRU.
	v = c.Fill(0x200, false)
	if v.LineAddr != c.LineAddr(0x100) {
		t.Fatalf("victim = %+v, want 0x100 line", v)
	}
}

func TestWriteBackDirtyTracking(t *testing.T) {
	c := MustNew(Config{Size: 32, LineSize: 16, Assoc: 1, WritePolicy: WriteBack})
	c.Fill(0x00, false)
	c.Probe(0x00, true)       // store hit dirties the line
	v := c.Fill(0x100, false) // wait: 0x100 maps to set (0x100/16)&1 = 0
	_ = v

	c.Reset()
	c.Fill(0x00, false)
	c.Probe(0x00, true)
	v = c.Fill(0x40, false) // same set 0 under 2 sets of 16B
	if !v.Valid || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty eviction", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	c := MustNew(Config{Size: 32, LineSize: 16, Assoc: 1, WritePolicy: WriteThrough})
	c.Fill(0x00, false)
	c.Probe(0x00, true)
	v := c.Fill(0x40, false)
	if v.Dirty {
		t.Fatal("write-through produced a dirty victim")
	}
	if c.Stats().Writebacks != 0 {
		t.Errorf("writebacks = %d, want 0", c.Stats().Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2, WritePolicy: WriteBack})
	c.Fill(0x00, true)
	present, dirty := c.Invalidate(0x00)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Contains(0x00) {
		t.Fatal("line still present after invalidate")
	}
	present, _ = c.Invalidate(0x00)
	if present {
		t.Fatal("second invalidate reported present")
	}
}

func TestAccessFillsOnMiss(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 1})
	hit, _ := c.Access(0x00, false)
	if hit {
		t.Fatal("first access hit")
	}
	hit, _ = c.Access(0x08, false)
	if !hit {
		t.Fatal("second access to same line missed")
	}
}

func TestTouchAndMarkDirty(t *testing.T) {
	c := MustNew(Config{Size: 32, LineSize: 16, Assoc: FullyAssociative, WritePolicy: WriteBack})
	if c.Touch(0x00) {
		t.Fatal("Touch hit in empty cache")
	}
	c.Fill(0x000, false)
	c.Fill(0x100, false)
	if !c.Touch(0x000) {
		t.Fatal("Touch missed present line")
	}
	if !c.MarkDirty(0x000) {
		t.Fatal("MarkDirty missed present line")
	}
	if c.MarkDirty(0x300) {
		t.Fatal("MarkDirty hit absent line")
	}
	// After the touch, 0x100 is LRU and 0x000 is dirty.
	v := c.Fill(0x200, false)
	if v.LineAddr != c.LineAddr(0x100) {
		t.Fatalf("victim = %+v, want 0x100", v)
	}
	v = c.Fill(0x300, false)
	if v.LineAddr != c.LineAddr(0x000) || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty 0x000", v)
	}
}

func TestUtilization(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 1})
	if got := c.Utilization(); got != 0 {
		t.Errorf("empty utilization = %v, want 0", got)
	}
	c.Fill(0x00, false)
	c.Fill(0x10, false)
	if got := c.Utilization(); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2})
	for i := uint64(0); i < 16; i++ {
		c.Access(i*16, false)
	}
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Errorf("stats after reset = %+v", c.Stats())
	}
	if c.Utilization() != 0 {
		t.Error("lines survive reset")
	}
}

func TestStatsAddAndMissRate(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 6, Misses: 4, Fills: 4, Evictions: 2, Writebacks: 1, Writes: 3}
	b := a
	a.Add(b)
	if a.Accesses != 20 || a.Misses != 8 || a.Writebacks != 2 {
		t.Errorf("Add result = %+v", a)
	}
	if got := a.MissRate(); got != 0.4 {
		t.Errorf("MissRate = %v, want 0.4", got)
	}
	if got := (Stats{}).MissRate(); got != 0 {
		t.Errorf("idle MissRate = %v, want 0", got)
	}
}

// refCache is a deliberately naive set-associative LRU model used as the
// oracle for property testing: each set is an ordered slice with
// move-to-front on touch and eviction from the back.
type refCache struct {
	lineSize uint64
	sets     [][]uint64 // sets[i] = line addrs, MRU first
	assoc    int
}

func newRefCache(size, lineSize, assoc int) *refCache {
	lines := size / lineSize
	if assoc == FullyAssociative {
		assoc = lines
	}
	return &refCache{
		lineSize: uint64(lineSize),
		sets:     make([][]uint64, lines/assoc),
		assoc:    assoc,
	}
}

// access returns whether addr hit, filling on miss.
func (r *refCache) access(addr uint64) bool {
	la := addr / r.lineSize
	si := la % uint64(len(r.sets))
	set := r.sets[si]
	for i, tag := range set {
		if tag == la {
			copy(set[1:i+1], set[:i])
			set[0] = la
			return true
		}
	}
	set = append([]uint64{la}, set...)
	if len(set) > r.assoc {
		set = set[:r.assoc]
	}
	r.sets[si] = set
	return false
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	type shape struct{ size, line, assoc int }
	shapes := []shape{
		{256, 16, 1},
		{256, 16, 2},
		{256, 16, 4},
		{256, 16, FullyAssociative},
		{1024, 32, 4},
		{512, 8, 8},
	}
	for _, sh := range shapes {
		c := MustNew(Config{Size: sh.size, LineSize: sh.line, Assoc: sh.assoc})
		ref := newRefCache(sh.size, sh.line, sh.assoc)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 20000; i++ {
			// Cluster addresses so hits and conflicts both occur.
			addr := uint64(rng.Intn(4 * sh.size))
			got, _ := c.Access(addr, false)
			want := ref.access(addr)
			if got != want {
				t.Fatalf("shape %+v access %d addr %#x: cache hit=%v, reference hit=%v",
					sh, i, addr, got, want)
			}
		}
	}
}

func TestDirectMappedEquivalentToOneWay(t *testing.T) {
	f := func(seed int64) bool {
		a := MustNew(Config{Size: 512, LineSize: 16, Assoc: 1})
		rng := rand.New(rand.NewSource(seed))
		ref := newRefCache(512, 16, 1)
		for i := 0; i < 2000; i++ {
			addr := uint64(rng.Intn(2048))
			gotHit, _ := a.Access(addr, false)
			if gotHit != ref.access(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: total fills never exceed misses, and hits+misses == accesses.
func TestStatsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		c := MustNew(Config{Size: 256, LineSize: 16, Assoc: 2})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			c.Access(uint64(rng.Intn(1024)), rng.Intn(4) == 0)
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses && st.Fills <= st.Misses+1 &&
			st.Evictions <= st.Fills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: higher associativity at equal capacity never increases misses
// for an LRU cache replaying the same (read-only) stream... not true in
// general (Belady anomalies are FIFO-only; LRU is a stack algorithm per
// set, not across geometry), so instead verify the classical stack
// property: a fully-associative LRU cache of larger capacity never misses
// on an access that a smaller one hits.
func TestLRUStackProperty(t *testing.T) {
	small := MustNew(Config{Size: 256, LineSize: 16, Assoc: FullyAssociative})
	big := MustNew(Config{Size: 1024, LineSize: 16, Assoc: FullyAssociative})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30000; i++ {
		addr := uint64(rng.Intn(8192))
		smallHit, _ := small.Access(addr, false)
		bigHit, _ := big.Access(addr, false)
		if smallHit && !bigHit {
			t.Fatalf("inclusion violated at access %d addr %#x", i, addr)
		}
	}
}

func BenchmarkDirectMappedAccess(b *testing.B) {
	c := MustNew(Config{Size: 4096, LineSize: 16, Assoc: 1})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], false)
	}
}

func Benchmark4WayAccess(b *testing.B) {
	c := MustNew(Config{Size: 4096, LineSize: 16, Assoc: 4})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], false)
	}
}

func TestResidentLines(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2})
	if got := c.ResidentLines(); len(got) != 0 {
		t.Fatalf("empty cache has residents: %v", got)
	}
	c.Fill(0x00, false)
	c.Fill(0x40, false)
	got := c.ResidentLines()
	if len(got) != 2 {
		t.Fatalf("residents = %v", got)
	}
	want := map[uint64]bool{c.LineAddr(0x00): true, c.LineAddr(0x40): true}
	for _, la := range got {
		if !want[la] {
			t.Errorf("unexpected resident line %#x", la)
		}
	}
}
