package introspect

import (
	"strings"
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
	"jouppi/internal/textplot"
	"jouppi/internal/workload"
)

// l1cfg is the paper's first-level geometry: 4KB direct-mapped, 16B
// lines → 256 sets.
var l1cfg = cache.Config{Name: "L1", Size: 4096, LineSize: 16, Assoc: 1}

func TestWindowBoundaries(t *testing.T) {
	p := NewProbe(l1cfg, Options{Window: 4})
	miss := core.Result{Served: core.ServedMemory}
	hit := core.Result{L1Hit: true, Served: core.ServedL1}
	for i := 0; i < 10; i++ {
		r := hit
		if i%2 == 0 {
			r = miss
		}
		p.Observe(uint64(i*16), r)
	}
	ws := p.Windows()
	if len(ws) != 3 {
		t.Fatalf("10 accesses at window 4 must give 2 full + 1 partial window, got %d", len(ws))
	}
	for i, w := range ws[:2] {
		if w.Accesses != 4 || w.Start != uint64(i*4) {
			t.Errorf("window %d = %+v, want 4 accesses starting at %d", i, w, i*4)
		}
		if w.FullMisses() != 2 || w.MissRate() != 0.5 {
			t.Errorf("window %d miss accounting wrong: %+v", i, w)
		}
	}
	if ws[2].Accesses != 2 || ws[2].Start != 8 {
		t.Errorf("partial window = %+v, want 2 accesses starting at 8", ws[2])
	}
	// Windows must not consume the partial window: asking again gives
	// the same answer, and the probe keeps accumulating into it.
	if again := p.Windows(); len(again) != 3 || again[2] != ws[2] {
		t.Error("Windows must be a non-destructive read")
	}
}

func TestHeatmapEvictionModel(t *testing.T) {
	p := NewProbe(l1cfg, Options{Window: -1, Heatmap: true})
	sets := l1cfg.Sets()
	miss := core.Result{Served: core.ServedMemory}
	// Two conflicting lines in set 5: first two misses are fills into an
	// empty set (no eviction), every later miss displaces the resident.
	a := uint64(5 * 16)
	b := a + uint64(sets*16)
	p.Observe(a, miss)
	p.Observe(b, miss)
	p.Observe(a, miss)
	p.Observe(b, miss)
	p.Observe(a, core.Result{L1Hit: true})
	heat := p.Heat()
	h := heat[5]
	if h.Accesses != 5 || h.Misses != 4 {
		t.Fatalf("set 5 counts = %+v, want 5 accesses / 4 misses", h)
	}
	if h.Evictions != 3 {
		t.Errorf("set 5 evictions = %d, want 3 (first fill lands in an empty way)", h.Evictions)
	}
	for i, h := range heat {
		if i != 5 && h != (SetCounts{}) {
			t.Errorf("set %d unexpectedly touched: %+v", i, h)
		}
	}
}

func TestMissRingSamplingAndBound(t *testing.T) {
	p := NewProbe(l1cfg, Options{Window: -1, MissEvery: 3, MissCap: 4})
	miss := core.Result{Served: core.ServedVictim, AuxHit: true}
	for i := 0; i < 30; i++ {
		p.Observe(uint64(i)*16, miss)
	}
	// Misses 0,3,6,...,27 are sampled (10 samples); the ring keeps the
	// last 4 and reports 6 dropped.
	ev := p.Events()
	if len(ev) != 4 || p.Dropped() != 6 {
		t.Fatalf("ring holds %d events with %d dropped, want 4 and 6", len(ev), p.Dropped())
	}
	for i, e := range ev {
		want := uint64(18 + 3*i)
		if e.Access != want {
			t.Errorf("event %d at access %d, want %d (chronological tail)", i, e.Access, want)
		}
		if e.Served != core.ServedVictim {
			t.Errorf("event %d served = %v", i, e.Served)
		}
	}
	// Set/tag decomposition under the 256-set geometry.
	if e := ev[0]; e.Set != int((e.Addr>>4)&255) || e.Tag != e.Addr>>4>>8 {
		t.Errorf("set/tag decomposition wrong: %+v", e)
	}
}

func TestClassifyTagsSampledMisses(t *testing.T) {
	p := NewProbe(l1cfg, Options{Window: -1, MissEvery: 1, Classify: true})
	miss := core.Result{Served: core.ServedMemory}
	p.Observe(0, miss)                      // first touch: compulsory
	p.Observe(4096, miss)                   // first touch: compulsory
	p.Observe(0, miss)                      // seen, shadow FA holds it: conflict
	p.Observe(16, core.Result{L1Hit: true}) // hits feed the shadow too
	ev := p.Events()
	if len(ev) != 3 {
		t.Fatalf("3 misses must yield 3 samples, got %d", len(ev))
	}
	for i, want := range []string{"compulsory", "compulsory", "conflict"} {
		if !ev[i].HasClass || ev[i].Class.String() != want {
			t.Errorf("event %d class = %v (has=%v), want %s", i, ev[i].Class, ev[i].HasClass, want)
		}
	}
	if got := p.Classes().Total(); got != 3 {
		t.Errorf("classifier recorded %d misses, want 3", got)
	}
}

func TestEmitMissEvents(t *testing.T) {
	p := NewProbe(l1cfg, Options{Window: -1, MissEvery: 1, MissCap: 2})
	for i := 0; i < 3; i++ {
		p.Observe(uint64(i)<<12, core.Result{Served: core.ServedMemory})
	}
	var sb strings.Builder
	j := telemetry.NewJournal(&sb)
	p.EmitMissEvents(j, "data")
	p.EmitMissEvents(nil, "data") // nil journal: no-op
	events, err := telemetry.ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("journal has %d events, want header + 2 samples", len(events))
	}
	head := events[0]
	if head.Event != "miss-dump" || head.Side != "data" || head.Total != 2 || head.Dropped != 1 {
		t.Errorf("miss-dump header = %+v", head)
	}
	if e := events[2]; e.Event != "miss-event" || e.Addr != "0x2000" || e.Served != "memory" {
		t.Errorf("miss-event line = %+v", e)
	}
}

func TestWindowGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewProbe(l1cfg, Options{Window: 2})
	p.AttachTelemetry(reg, "l1d")
	p.Observe(0, core.Result{Served: core.ServedMemory})
	snap := reg.Snapshot()
	if snap["introspect_l1d_windows_total"] != 0 {
		t.Error("gauges must not move before a window boundary")
	}
	p.Observe(16, core.Result{L1Hit: true})
	snap = reg.Snapshot()
	if snap["introspect_l1d_windows_total"] != 1 ||
		snap["introspect_l1d_window_accesses"] != 2 ||
		snap["introspect_l1d_window_full_misses"] != 1 ||
		snap["introspect_l1d_window_miss_rate_ppm"] != 500000 {
		t.Errorf("window gauges wrong after boundary: %v", snap)
	}
}

// replaySystem streams one workload through a hierarchy at a small scale.
func replaySystem(t *testing.T, sys *hierarchy.System, name string) {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	b.Generate(0.02, memtrace.SinkFunc(sys.Access))
	// A manual Access loop must flush, like Run/RunSource do: probes on
	// the cheap miss-observer tap receive their final access-count sync
	// at flush time.
	sys.FlushTelemetry()
}

// probeConfigs spans every front-end kind on both sides.
func probeConfigs() map[string]hierarchy.Config {
	stream := core.StreamConfig{Ways: 4, Depth: 4}
	return map[string]hierarchy.Config{
		"baseline": {},
		"misscache4": {
			DAugment: hierarchy.Augment{Kind: hierarchy.MissCache, Entries: 4},
		},
		"victim4": {
			IAugment: hierarchy.Augment{Kind: hierarchy.VictimCache, Entries: 4},
			DAugment: hierarchy.Augment{Kind: hierarchy.VictimCache, Entries: 4},
		},
		"improved": {
			IAugment: hierarchy.Augment{Kind: hierarchy.StreamBuffers, Stream: core.StreamConfig{Ways: 1, Depth: 4}},
			DAugment: hierarchy.Augment{Kind: hierarchy.VictimAndStream, Entries: 4, Stream: stream},
		},
	}
}

// TestAttributionProperty is the satellite property test: for every
// workload and front-end kind, the probe's per-ServedBy window counts
// sum exactly to the front-end's aggregate stats, and the heatmap's
// per-set counts sum to the L1 cache array's stats.
func TestAttributionProperty(t *testing.T) {
	for _, wl := range workload.Names() {
		for cfgName, cfg := range probeConfigs() {
			t.Run(wl+"/"+cfgName, func(t *testing.T) {
				sys := hierarchy.MustNew(cfg)
				sp := Attach(sys, Options{Window: 1 << 12, Heatmap: true, MissEvery: 16})
				replaySystem(t, sys, wl)

				sides := []struct {
					name  string
					probe *Probe
					fe    core.FrontEnd
				}{
					{"I", sp.I, sys.IFrontEnd()},
					{"D", sp.D, sys.DFrontEnd()},
				}
				for _, s := range sides {
					st := s.fe.Stats()
					var served [5]uint64
					var total uint64
					for _, w := range s.probe.Windows() {
						total += w.Accesses
						for i, n := range w.Served {
							served[i] += n
						}
					}
					if total != st.Accesses || total != s.probe.Accesses() {
						t.Fatalf("%s: window accesses %d != stats %d (probe %d)",
							s.name, total, st.Accesses, s.probe.Accesses())
					}
					checks := []struct {
						name string
						got  uint64
						want uint64
					}{
						{"l1", served[core.ServedL1], st.L1Hits},
						{"miss-cache", served[core.ServedMissCache], st.MissCacheHits},
						{"victim", served[core.ServedVictim], st.VictimHits},
						{"stream", served[core.ServedStream], st.StreamHits},
						{"memory", served[core.ServedMemory], st.FullMisses()},
					}
					for _, c := range checks {
						if c.got != c.want {
							t.Errorf("%s: %s attribution %d != stats %d", s.name, c.name, c.got, c.want)
						}
					}

					cs := s.fe.Cache().Stats()
					var heat SetCounts
					for _, h := range s.probe.Heat() {
						heat.Accesses += h.Accesses
						heat.Misses += h.Misses
						heat.Evictions += h.Evictions
					}
					if heat.Accesses != cs.Accesses || heat.Misses != cs.Misses {
						t.Errorf("%s: heatmap sums %+v != cache stats %+v", s.name, heat, cs)
					}
					if heat.Evictions != cs.Evictions {
						t.Errorf("%s: heatmap evictions %d != cache evictions %d",
							s.name, heat.Evictions, cs.Evictions)
					}
				}
			})
		}
	}
}

// TestObserverEquivalence pins the tentpole guarantee at the hierarchy
// level: attaching a fully-enabled probe changes no simulated number.
func TestObserverEquivalence(t *testing.T) {
	for cfgName, cfg := range probeConfigs() {
		t.Run(cfgName, func(t *testing.T) {
			plain := hierarchy.MustNew(cfg)
			probed := hierarchy.MustNew(cfg)
			Attach(probed, Options{Window: 1 << 10, Heatmap: true, MissEvery: 4, Classify: true})
			replaySystem(t, plain, "ccom")
			replaySystem(t, probed, "ccom")
			if a, b := plain.Results(0), probed.Results(0); a != b {
				t.Errorf("introspection changed simulated numbers:\nplain  %+v\nprobed %+v", a, b)
			}
		})
	}
}

func TestRenderHelpers(t *testing.T) {
	p := NewProbe(l1cfg, Options{Window: 2, Heatmap: true})
	for i := 0; i < 8; i++ {
		r := core.Result{L1Hit: true}
		if i%4 == 0 {
			r = core.Result{Served: core.ServedMemory}
		}
		p.Observe(uint64(i%3)*16, r)
	}
	phases := RenderPhases("phases", []textplot.Series{PhaseSeries("base", p.Windows())}, 40, 8)
	if !strings.Contains(phases, "miss rate %") || !strings.Contains(phases, "base") {
		t.Errorf("phase render missing labels:\n%s", phases)
	}
	heat := RenderHeat("heat", p.Heat(), HeatAccesses, 64)
	if !strings.Contains(heat, "ramp") {
		t.Errorf("heat render missing legend:\n%s", heat)
	}
	top := TopSets(p.Heat(), HeatAccesses, 2)
	if len(top) != 2 || top[0] != 0 {
		t.Errorf("TopSets = %v, want set 0 hottest", top)
	}
	table := TopSetsTable(p.Heat(), HeatMisses, 4)
	if !strings.Contains(table, "evictions") {
		t.Errorf("top-set table missing headers:\n%s", table)
	}
	if got := TopSets(nil, HeatMisses, 3); len(got) != 0 {
		t.Errorf("TopSets over nil heat = %v", got)
	}
}
