package introspect

import (
	"fmt"
	"sort"

	"jouppi/internal/textplot"
)

// This file turns probe state into the text artifacts the CLIs and
// experiments print: phase curves, per-set heat grids, and hottest-set
// tables. Rendering reads probe copies (Windows/Heat), so it can run at
// any time without disturbing an ongoing replay.

// HeatMetric selects which SetCounts field a heatmap or set ranking
// reads.
type HeatMetric uint8

// The renderable per-set counters.
const (
	HeatAccesses HeatMetric = iota
	HeatMisses
	HeatEvictions
)

// String returns the metric name.
func (m HeatMetric) String() string {
	switch m {
	case HeatAccesses:
		return "accesses"
	case HeatMisses:
		return "misses"
	case HeatEvictions:
		return "evictions"
	default:
		return fmt.Sprintf("HeatMetric(%d)", uint8(m))
	}
}

func (m HeatMetric) of(h SetCounts) float64 {
	switch m {
	case HeatAccesses:
		return float64(h.Accesses)
	case HeatMisses:
		return float64(h.Misses)
	default:
		return float64(h.Evictions)
	}
}

// PhaseSeries converts phase windows into one plot line: X is the
// window's starting access index, Y its effective miss rate in percent.
func PhaseSeries(name string, windows []Window) textplot.Series {
	s := textplot.Series{Name: name}
	for _, w := range windows {
		s.X = append(s.X, float64(w.Start))
		s.Y = append(s.Y, w.MissRate()*100)
	}
	return s
}

// RenderPhases renders one or more phase curves on a shared grid. Build
// each series with PhaseSeries so configurations can be overlaid.
func RenderPhases(title string, series []textplot.Series, width, height int) string {
	return textplot.Lines(title, "access index (window start)", "miss rate %", series, width, height)
}

// RenderHeat renders the per-set grid for one metric, cols sets per row.
func RenderHeat(title string, heat []SetCounts, m HeatMetric, cols int) string {
	values := make([]float64, len(heat))
	for i, h := range heat {
		values[i] = m.of(h)
	}
	return textplot.HeatMap(title, values, cols)
}

// MergeHeat sums per-set heatmaps element-wise. Under a set-partitioned
// sharded replay every L1 set belongs to exactly one shard, so each
// set's row is non-zero in at most one part and the merged heatmap is
// exactly the sequential replay's. Parts of differing lengths (probes
// over different geometries) must not be mixed; the longest length
// wins and shorter parts contribute to their prefix.
func MergeHeat(parts ...[]SetCounts) []SetCounts {
	var out []SetCounts
	for _, p := range parts {
		if len(p) > len(out) {
			out = append(out, make([]SetCounts, len(p)-len(out))...)
		}
		for i, h := range p {
			out[i].Accesses += h.Accesses
			out[i].Misses += h.Misses
			out[i].Evictions += h.Evictions
		}
	}
	return out
}

// TopSets returns the indices of the n sets with the largest metric,
// descending (ties broken by lower set index). Sets with a zero metric
// are omitted, so fewer than n entries may come back.
func TopSets(heat []SetCounts, m HeatMetric, n int) []int {
	idx := make([]int, 0, len(heat))
	for i, h := range heat {
		if m.of(h) > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := m.of(heat[idx[a]]), m.of(heat[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	if len(idx) > n {
		idx = idx[:n]
	}
	return idx
}

// TopSetsTable renders the n sets hottest by m with all three per-set
// counters — the "which sets does the victim cache relieve" report.
func TopSetsTable(heat []SetCounts, m HeatMetric, n int) string {
	rows := make([][]string, 0, n)
	for _, i := range TopSets(heat, m, n) {
		h := heat[i]
		rows = append(rows, []string{
			fmt.Sprint(i),
			fmt.Sprint(h.Accesses),
			fmt.Sprint(h.Misses),
			fmt.Sprint(h.Evictions),
		})
	}
	return textplot.Table([]string{"set", "accesses", "misses", "evictions"}, rows)
}
