// Package introspect adds time- and space-resolved visibility to a
// replay: where the end-of-run aggregates say *how often* a cache
// configuration missed, the probes here say *when* and *where*.
//
// A Probe taps the per-access core.Result of one first-level front-end
// and accumulates three views:
//
//   - phase windows — a time series, one sample per N accesses, of the
//     window's miss rate and hit attribution (L1 / miss cache / victim
//     cache / stream buffer / memory). Sequential phases that a stream
//     buffer absorbs, or conflict phases a victim cache flattens, show
//     up as dips the aggregate miss rate averages away.
//   - per-set heatmaps — per-L1-set access, miss, and conflict-eviction
//     counts. The sets a victim cache relieves are exactly the hot rows
//     of the baseline's eviction heatmap.
//   - a sampled miss-event trace — a bounded ring holding every Nth L1
//     miss (access index, address, set, tag, serving structure, and the
//     3C class when classification is on), exportable as JSONL through
//     the telemetry journal.
//
// The probe follows the telemetry layer's delta-publication discipline:
// the per-access path touches only plain single-writer structs, and
// anything shared — registry gauges — is published on window boundaries.
// When attached to a hierarchy.System the probe goes further and removes
// itself from the hit path entirely: per-set heat is counted by the L1
// cache arrays themselves (cache.InstrumentSets increments a probe-owned
// counter array exactly where the cache has already computed the set
// index), and window hit attribution comes from a miss-only tap — hits
// cost one nil check on the result the hierarchy already holds. The tap
// itself is split hot/cold: the hierarchy updates the probe's exported
// hierarchy.MissCounters inline (a handful of plain stores, no call) for
// the common miss, and calls MissObserver.ObserveMiss only when a miss
// crosses a window boundary or is due for sampling. Boundary crossings
// close earlier windows retroactively — misses arrive in access order,
// so an index at a boundary proves the preceding windows are complete —
// and a flush-time access sync makes the in-progress window exact.
// Attaching a probe reads the replay, it never writes it: the
// equivalence tests pin that an introspected run produces bit-identical
// simulated numbers.
package introspect

import (
	"fmt"

	"jouppi/internal/cache"
	"jouppi/internal/classify"
	"jouppi/internal/core"
	"jouppi/internal/hierarchy"
	"jouppi/internal/memtrace"
	"jouppi/internal/telemetry"
)

// DefaultWindow is the phase-window width, in accesses, used when
// Options.Window is zero.
const DefaultWindow = 1 << 15

// DefaultMissCap is the miss-event ring capacity used when
// Options.MissCap is zero.
const DefaultMissCap = 1024

// Options configures a Probe. The zero value enables phase windows at
// DefaultWindow and nothing else.
type Options struct {
	// Window is the phase-window width in accesses (DefaultWindow when
	// zero; negative disables phase windows).
	Window int
	// Heatmap enables per-set access/miss/eviction counting.
	Heatmap bool
	// MissEvery samples every Nth L1 miss into the event ring; zero
	// disables the miss trace.
	MissEvery int
	// MissCap bounds the event ring (DefaultMissCap when zero). Once
	// full, the ring keeps the most recent MissCap samples and counts
	// the overwritten ones as dropped.
	MissCap int
	// Classify tags sampled miss events with their 3C class by running
	// a shadow classifier over the probe's access stream. The shadow
	// needs to see every access, so enabling it keeps the hierarchy on
	// the full per-access observer tap instead of the cheap miss-only
	// one; leave it off when measuring overhead.
	Classify bool
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.MissCap <= 0 {
		o.MissCap = DefaultMissCap
	}
	return o
}

// Window is one completed (or, from Windows, in-progress) phase window.
type Window struct {
	// Start is the probe-local index of the window's first access; the
	// window covers [Start, Start+Accesses).
	Start    uint64
	Accesses uint64
	// Served counts the window's accesses by the structure that
	// satisfied them, indexed by core.ServedBy.
	Served [5]uint64
}

// FullMisses returns the window's demand fetches from the next level.
func (w Window) FullMisses() uint64 { return w.Served[core.ServedMemory] }

// AuxHits returns the window's augmentation hits.
func (w Window) AuxHits() uint64 {
	return w.Served[core.ServedMissCache] + w.Served[core.ServedVictim] + w.Served[core.ServedStream]
}

// MissRate returns the window's effective miss rate (full misses per
// access), or 0 for an empty window.
func (w Window) MissRate() float64 {
	if w.Accesses == 0 {
		return 0
	}
	return float64(w.FullMisses()) / float64(w.Accesses)
}

// RawMissRate returns the window's L1 miss rate before augmentation
// credit.
func (w Window) RawMissRate() float64 {
	if w.Accesses == 0 {
		return 0
	}
	return float64(w.Accesses-w.Served[core.ServedL1]) / float64(w.Accesses)
}

// SetCounts is one L1 set's heatmap row: accesses mapping to the set,
// the subset that missed in L1, and the fills that displaced a valid
// line — the direct-mapped conflict signature. Heat assembles rows from
// the probe's split per-metric arrays (the layout cache.InstrumentSets
// counts into).
type SetCounts struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// MissEvent is one sampled L1 miss.
type MissEvent struct {
	// Access is the probe-local index (0-based) of the missing access.
	Access uint64
	// Addr is the full byte address; Set and Tag its decomposition
	// under the probed cache's geometry.
	Addr uint64
	Set  int
	Tag  uint64
	// Served names the structure that satisfied the miss.
	Served core.ServedBy
	// Class is the 3C classification; valid only when HasClass is set
	// (Options.Classify was on).
	Class    classify.Class
	HasClass bool
}

// Probe observes one first-level front-end's access stream. It is a
// pure reader — it never touches the simulated structures — and is not
// safe for concurrent use (one probe per replay consumer).
type Probe struct {
	opts Options

	sets      int
	assoc     int
	lineShift uint
	setMask   uint64

	// mc is the probe's hot miss-bookkeeping state, in the concrete
	// layout the hierarchy books inline (hierarchy.MissCounters): the
	// access high-water mark, the in-progress window's per-structure
	// miss counts (mc.Served counts only *misses* — L1 hits are derived
	// at snapshot time as accesses minus misses, so the hit path touches
	// no attribution state), the index at which that window closes
	// (MaxUint64 when windows are off), and the countdown to the next
	// ring sample (sampleNever when sampling is off, so the miss path
	// needs no separate enabled test). The manual Observe path updates
	// the same fields, so both ingestion modes share one state machine.
	mc hierarchy.MissCounters

	winSize  uint64 // 0 = windows disabled
	winStart uint64
	windows  []Window

	// The heatmap counters, split per metric (nil unless Options.Heatmap):
	// only heatAcc is touched on every access, so the hot extra working
	// set is 8 bytes per set.
	heatAcc   []uint64
	heatMiss  []uint64
	heatEvict []uint64
	// extHeat marks the heat arrays as maintained externally by an
	// instrumented cache array (the hierarchy attach path); the probe's
	// own observe path then leaves them alone.
	extHeat  bool
	resident []uint16 // valid lines per set; fills past assoc are evictions

	ring      []MissEvent
	ringNext  int
	ringCount int
	dropped   uint64

	cl *classify.Classifier // nil unless Options.Classify

	tel *probeTel // window gauges, nil unless AttachTelemetry
}

// NewProbe builds a probe for a front-end over an L1 with cfg's
// geometry. The config must be valid (cache.New accepted it).
func NewProbe(cfg cache.Config, opts Options) *Probe {
	opts = opts.withDefaults()
	assoc := cfg.Assoc
	if assoc == cache.FullyAssociative {
		assoc = cfg.Lines()
	}
	p := &Probe{
		opts:      opts,
		sets:      cfg.Sets(),
		assoc:     assoc,
		lineShift: shiftFor(cfg.LineSize),
		setMask:   uint64(cfg.Sets() - 1),
	}
	p.mc.NextWin = ^uint64(0)
	if opts.Window > 0 {
		p.winSize = uint64(opts.Window)
		p.mc.NextWin = p.winSize
	}
	if opts.Heatmap {
		p.heatAcc = make([]uint64, p.sets)
		p.heatMiss = make([]uint64, p.sets)
		p.heatEvict = make([]uint64, p.sets)
		p.resident = make([]uint16, p.sets)
	}
	if opts.MissEvery <= 0 {
		// The ring itself is allocated lazily by sample — it grows with
		// the events actually taken instead of committing MissCap slots
		// up front, so a short replay doesn't pay for the bound.
		p.mc.SampleIn = sampleNever
	}
	if opts.Classify {
		p.cl = classify.MustNew(cfg.Size, cfg.LineSize)
	}
	return p
}

func shiftFor(lineSize int) uint {
	shift := uint(0)
	for ls := lineSize; ls > 1; ls >>= 1 {
		shift++
	}
	return shift
}

// Observe records one access and its resolution. The caller passes the
// byte address it gave the front-end and the Result the front-end
// returned; the probe derives set/tag itself so it works for any L1
// geometry.
func (p *Probe) Observe(addr uint64, r core.Result) {
	var cl classify.Class
	has := false
	if p.cl != nil {
		cl = p.cl.ObserveMiss(addr, !r.L1Hit)
		has = true
	}
	p.observe(addr, r, cl, has)
}

// ObserveClassified is Observe for callers that already run their own 3C
// classifier over the same stream: cl tags any sampled miss event, and
// the probe skips its internal shadow classifier (Options.Classify
// should be off to avoid paying for it twice).
func (p *Probe) ObserveClassified(addr uint64, r core.Result, cl classify.Class) {
	p.observe(addr, r, cl, true)
}

// observe is the per-access path of the manual (Observe-driven) mode:
// on the overwhelmingly common L1 hit it is two counter increments and
// one compare; everything a miss needs lives in missPath so its code
// never dilutes the hit path.
func (p *Probe) observe(addr uint64, r core.Result, cl classify.Class, hasClass bool) {
	p.mc.Accesses++
	if p.heatAcc != nil && !p.extHeat {
		p.heatAcc[(addr>>p.lineShift)&p.setMask]++
	}
	if !r.L1Hit {
		p.missPath(addr, r, cl, hasClass)
	}
	if p.mc.Accesses >= p.mc.NextWin {
		p.closeWindow()
	}
}

// missPath books the manual mode's miss-only state: per-set miss and
// eviction counts (unless an instrumented cache maintains them) plus the
// shared served/ring bookkeeping.
func (p *Probe) missPath(addr uint64, r core.Result, cl classify.Class, hasClass bool) {
	if p.heatMiss != nil && !p.extHeat {
		set := int((addr >> p.lineShift) & p.setMask)
		p.heatMiss[set]++
		// Every L1 miss — full miss or augmentation hit — installs the
		// line with exactly one L1 fill in every front-end, so a miss to
		// a set already holding assoc valid lines must displace one of
		// them.
		if p.resident[set] >= uint16(p.assoc) {
			p.heatEvict[set]++
		} else {
			p.resident[set]++
		}
	}
	p.recordMiss(addr, r, p.mc.Accesses-1, cl, hasClass)
}

// sampleNever is the countdown re-arm distance when sampling is off:
// far enough that no replay reaches it, so the miss path can decrement
// unconditionally instead of testing whether sampling is enabled.
const sampleNever = int64(1) << 62

// recordMiss books one L1 miss into the window attribution counters and,
// when sampling is on, the event ring. idx is the probe-local (per-side)
// access index of the missing access. The manual per-access path funnels
// here; SystemProbe.ObserveMiss open-codes the same three lines so the
// cheap tap pays no extra call.
func (p *Probe) recordMiss(addr uint64, r core.Result, idx uint64, cl classify.Class, hasClass bool) {
	p.mc.Served[r.Served&7]++
	p.mc.SampleIn--
	if p.mc.SampleIn < 0 {
		p.sampleMiss(addr, r, idx, cl, hasClass)
	}
}

// sampleMiss stores one miss event and re-arms the sampling countdown:
// the first miss is sampled, then every MissEvery-th. It also absorbs
// the sampling-off case (re-arming to sampleNever) so recordMiss carries
// no enabled test.
func (p *Probe) sampleMiss(addr uint64, r core.Result, idx uint64, cl classify.Class, hasClass bool) {
	if p.opts.MissEvery <= 0 {
		p.mc.SampleIn = sampleNever
		return
	}
	la := addr >> p.lineShift
	e := MissEvent{
		Access: idx,
		Addr:   addr,
		Served: r.Served,
		Set:    int(la & p.setMask),
		Tag:    la >> uint(shiftForSets(p.sets)),
	}
	if hasClass {
		e.Class, e.HasClass = cl, true
	}
	p.sample(e)
	p.mc.SampleIn = int64(p.opts.MissEvery) - 1
}

// The cheap miss-observer ingestion lives open-coded in
// SystemProbe.ObserveMiss. Misses arrive in ascending index order, so an
// index at or past the next window boundary proves every earlier window
// is complete — with all its misses already recorded — and closes it
// retroactively, at its exact boundary, before the miss is booked into
// the window it belongs to; nextWin is MaxUint64 when windows are off,
// so the common case costs one compare. Each miss also rides the access
// count forward, so a mid-replay Windows() snapshot never holds more
// misses than accesses (the flush-time sync makes it exact).

// catchUpWindows closes every window whose boundary idx has passed, each
// at its exact boundary. Out of line to keep the per-miss ingestion in
// ObserveMiss small.
func (p *Probe) catchUpWindows(idx uint64) {
	for idx >= p.mc.NextWin {
		p.closeWindowAt(p.mc.NextWin)
	}
}

// syncAccesses adopts a side's exact access count, delivered by the
// hierarchy at flush boundaries (replay end, Results, periodic telemetry
// flushes), closing every window the count completes. Misses arrive
// strictly before the sync that ends their window, so attribution stays
// exact; anything past the last boundary stays in the partial window.
func (p *Probe) syncAccesses(total uint64) {
	for total >= p.mc.NextWin {
		p.closeWindowAt(p.mc.NextWin)
	}
	p.mc.Accesses = total
}

func shiftForSets(sets int) int {
	shift := 0
	for s := sets; s > 1; s >>= 1 {
		shift++
	}
	return shift
}

// sample appends e to the bounded ring, overwriting the oldest sample
// (and counting it dropped) once the ring holds MissCap events. Growth
// is by append, so the ring's memory tracks the events actually taken
// rather than the configured bound.
func (p *Probe) sample(e MissEvent) {
	if len(p.ring) < p.opts.MissCap {
		p.ring = append(p.ring, e)
		p.ringCount++
		return
	}
	p.ring[p.ringNext] = e
	p.ringNext = (p.ringNext + 1) % len(p.ring)
	p.dropped++
}

// snapWindow packages the in-progress counters as a Window. Only misses
// are counted live; the L1-hit share is what remains of the window's
// accesses once every miss category is subtracted.
func (p *Probe) snapWindow() Window {
	w := Window{Start: p.winStart, Accesses: p.mc.Accesses - p.winStart}
	copy(w.Served[1:], p.mc.Served[1:len(w.Served)])
	var misses uint64
	for _, n := range p.mc.Served[1:] {
		misses += n
	}
	w.Served[core.ServedL1] = w.Accesses - misses
	return w
}

// closeWindowAt closes the in-progress window at exactly end accesses —
// the retroactive form the miss-driven ingestion uses, where the probe's
// access count advances in jumps rather than one at a time.
func (p *Probe) closeWindowAt(end uint64) {
	p.mc.Accesses = end
	p.closeWindow()
}

// closeWindow finalizes the in-progress window and publishes its gauges.
func (p *Probe) closeWindow() {
	w := p.snapWindow()
	p.windows = append(p.windows, w)
	if p.tel != nil {
		p.tel.publish(w)
	}
	p.winStart = p.mc.Accesses
	p.mc.NextWin = p.mc.Accesses + p.winSize
	p.mc.Served = [8]uint64{}
}

// Accesses returns the number of accesses observed so far. For a probe
// attached through the hierarchy's miss-observer tap the count advances
// with each delivered miss and at telemetry flushes (replay end,
// Results), so mid-replay reads may trail the replay; completed replays
// are exact.
func (p *Probe) Accesses() uint64 { return p.mc.Accesses }

// Windows returns the completed phase windows plus, when it holds any
// accesses, a copy of the in-progress partial window. The probe's own
// state is not flushed, so Windows may be called mid-replay.
func (p *Probe) Windows() []Window {
	out := make([]Window, len(p.windows), len(p.windows)+1)
	copy(out, p.windows)
	if p.winSize > 0 && p.mc.Accesses > p.winStart {
		out = append(out, p.snapWindow())
	}
	return out
}

// Heat returns the per-set counts, or nil when the heatmap was not
// enabled. The rows are assembled from the probe's per-metric arrays;
// index = L1 set number.
func (p *Probe) Heat() []SetCounts {
	if p.heatAcc == nil {
		return nil
	}
	out := make([]SetCounts, len(p.heatAcc))
	for i := range out {
		out[i] = SetCounts{
			Accesses:  p.heatAcc[i],
			Misses:    p.heatMiss[i],
			Evictions: p.heatEvict[i],
		}
	}
	return out
}

// Events returns the sampled miss events in chronological order.
func (p *Probe) Events() []MissEvent {
	out := make([]MissEvent, 0, p.ringCount)
	if p.ringCount == len(p.ring) && len(p.ring) > 0 {
		out = append(out, p.ring[p.ringNext:]...)
		out = append(out, p.ring[:p.ringNext]...)
		return out
	}
	return append(out, p.ring...)
}

// Dropped returns the number of sampled events the ring overwrote.
func (p *Probe) Dropped() uint64 { return p.dropped }

// Classes returns the 3C totals of the probe's shadow classifier, or a
// zero Counts when Options.Classify was off.
func (p *Probe) Classes() classify.Counts {
	if p.cl == nil {
		return classify.Counts{}
	}
	return p.cl.Counts()
}

// probeTel is the gauge set AttachTelemetry installs; it is written only
// on window boundaries, per the delta-publication discipline.
type probeTel struct {
	windows  *telemetry.Counter
	accesses *telemetry.Gauge
	misses   *telemetry.Gauge
	auxHits  *telemetry.Gauge
	ratePPM  *telemetry.Gauge
}

func (t *probeTel) publish(w Window) {
	t.windows.Inc()
	t.accesses.Set(int64(w.Accesses))
	t.misses.Set(int64(w.FullMisses()))
	t.auxHits.Set(int64(w.AuxHits()))
	t.ratePPM.Set(int64(w.MissRate() * 1e6))
}

// AttachTelemetry registers the probe's window gauges in reg under
// introspect_<side>_*: a counter of completed windows and gauges holding
// the last completed window's accesses, full misses, augmentation hits,
// and miss rate in parts per million. Gauges move only at window
// boundaries, so the per-access path stays telemetry-free. A nil
// registry detaches.
func (p *Probe) AttachTelemetry(reg *telemetry.Registry, side string) {
	if reg == nil {
		p.tel = nil
		return
	}
	pre := "introspect_" + side + "_"
	p.tel = &probeTel{
		windows:  reg.Counter(pre+"windows_total", side+": completed phase windows"),
		accesses: reg.Gauge(pre+"window_accesses", side+": accesses in the last completed window"),
		misses:   reg.Gauge(pre+"window_full_misses", side+": full misses in the last completed window"),
		auxHits:  reg.Gauge(pre+"window_aux_hits", side+": augmentation hits in the last completed window"),
		ratePPM:  reg.Gauge(pre+"window_miss_rate_ppm", side+": last window's miss rate, parts per million"),
	}
}

// SystemProbe introspects both first-level sides of a hierarchy.System.
// It implements hierarchy.Observer, routing instruction fetches to the I
// probe and loads/stores to the D probe.
type SystemProbe struct {
	I, D *Probe
}

// Attach builds probes for both first-level caches of sys (per opts)
// and installs them as the system's observer, replacing any previous
// one. Probes are per-system — under fan-out every consumer system gets
// its own Attach call — and reading them never perturbs the simulation.
//
// Heatmaps are counted by the L1 arrays themselves: the probes' heat
// slices are handed to cache.InstrumentSets, so the cache increments
// them where it has already computed the set index. Without
// classification the probes ride the hierarchy's cheap miss-observer
// tap — no per-access observer call at all, misses and window
// boundaries only. The 3C shadow classifier needs to see every access,
// so Options.Classify keeps the full per-access tap.
func Attach(sys *hierarchy.System, opts Options) *SystemProbe {
	cfg := sys.Config()
	sp := &SystemProbe{
		I: NewProbe(cfg.L1I, opts),
		D: NewProbe(cfg.L1D, opts),
	}
	sp.I.externalHeat()
	sp.D.externalHeat()
	sys.IFrontEnd().Cache().InstrumentSets(sp.I.heatAcc, sp.I.heatMiss, sp.I.heatEvict)
	sys.DFrontEnd().Cache().InstrumentSets(sp.D.heatAcc, sp.D.heatMiss, sp.D.heatEvict)
	if sp.I.cl != nil {
		sys.AttachObserver(sp)
		return sp
	}
	sys.AttachMissObserver(sp)
	return sp
}

// externalHeat marks the heat array as maintained by an instrumented
// cache; the probe's own paths then neither count into it nor need the
// resident-lines eviction model.
func (p *Probe) externalHeat() {
	p.extHeat = true
	p.resident = nil
}

// ObserveAccess implements hierarchy.Observer — the full per-access tap,
// used only when the 3C shadow classifier must see every access. It
// routes straight to the side's observe body, adding no intermediate
// frame.
func (sp *SystemProbe) ObserveAccess(a memtrace.Access, r core.Result) {
	p := sp.D
	if a.Kind == memtrace.Ifetch {
		p = sp.I
	}
	if p.cl != nil {
		c := p.cl.ObserveMiss(uint64(a.Addr), !r.L1Hit)
		p.observe(uint64(a.Addr), r, c, true)
		return
	}
	p.observe(uint64(a.Addr), r, 0, false)
}

// ObserveMiss implements hierarchy.MissObserver: the cheap tap's
// per-miss delivery. The ingestion body (observeMissAt) is open-coded
// here so the hierarchy's interface dispatch lands directly in the work
// — a typical miss costs no further call.
func (sp *SystemProbe) ObserveMiss(a memtrace.Access, r core.Result, index uint64) {
	p := sp.D
	if a.Kind == memtrace.Ifetch {
		p = sp.I
	}
	if index >= p.mc.NextWin {
		p.catchUpWindows(index)
	}
	if index >= p.mc.Accesses {
		p.mc.Accesses = index + 1
	}
	p.mc.Served[r.Served&7]++
	p.mc.SampleIn--
	if p.mc.SampleIn < 0 {
		p.sampleMiss(uint64(a.Addr), r, index, 0, false)
	}
}

// Counters implements hierarchy.MissObserver: it hands the hierarchy
// the side's hot counters so the common miss is booked inline and only
// window-boundary and sample-due misses arrive through ObserveMiss.
func (sp *SystemProbe) Counters(instr bool) *hierarchy.MissCounters {
	if instr {
		return &sp.I.mc
	}
	return &sp.D.mc
}

// SyncAccesses implements hierarchy.MissObserver: flush-time count
// syncs.
func (sp *SystemProbe) SyncAccesses(instr bool, accesses uint64) {
	if instr {
		sp.I.syncAccesses(accesses)
	} else {
		sp.D.syncAccesses(accesses)
	}
}

var (
	_ hierarchy.Observer     = (*SystemProbe)(nil)
	_ hierarchy.MissObserver = (*SystemProbe)(nil)
)

// AttachTelemetry registers both sides' window gauges in reg
// (introspect_l1i_*, introspect_l1d_*). A nil registry detaches.
func (sp *SystemProbe) AttachTelemetry(reg *telemetry.Registry) {
	sp.I.AttachTelemetry(reg, "l1i")
	sp.D.AttachTelemetry(reg, "l1d")
}

// EmitMissEvents writes the probe's sampled miss trace to the journal as
// one miss-dump header line followed by one miss-event line per sample.
// side labels the lines ("inst", "data", or a CLI-chosen name). A nil
// journal is a no-op, matching telemetry.Journal's convention.
func (p *Probe) EmitMissEvents(j *telemetry.Journal, side string) {
	if j == nil {
		return
	}
	events := p.Events()
	j.Emit(telemetry.Event{
		Event:   "miss-dump",
		Side:    side,
		Total:   len(events),
		Dropped: p.Dropped(),
	})
	for _, e := range events {
		ev := telemetry.Event{
			Event:  "miss-event",
			Side:   side,
			Access: e.Access,
			Addr:   fmt.Sprintf("0x%x", e.Addr),
			Set:    e.Set,
			Tag:    fmt.Sprintf("0x%x", e.Tag),
			Served: e.Served.String(),
		}
		if e.HasClass {
			ev.Class = e.Class.String()
		}
		j.Emit(ev)
	}
}
