package trace

import "context"

// ctxKey is the private context key the current span travels under.
type ctxKey struct{}

// ContextWith returns ctx carrying span. A nil span returns ctx
// unchanged, so detached callers propagate nothing and pay nothing.
func ContextWith(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// FromContext returns the span ctx carries, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of the span ctx carries and returns a context
// carrying the child. When ctx carries no span (tracing detached), it
// returns ctx unchanged and a nil span — the whole call is one context
// lookup, which is why instrumented stages call it unconditionally.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Start(name, attrs...)
	return context.WithValue(ctx, ctxKey{}, child), child
}
