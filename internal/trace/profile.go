package trace

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"jouppi/internal/telemetry"
)

// CPUProfile captures a pprof CPU profile to disk when a watched latency
// histogram's p99 exceeds a bound — the "why is queue wait suddenly
// slow" snapshot, taken while the slowness is still happening instead of
// after an operator notices a dashboard. Check is intended to be called
// from a span-close hook (queue-wait closes, in cachesimd), so the
// trigger reacts within one job of the breach.
//
// Captures are single-flight (the Go runtime allows one CPU profile at a
// time) and paced by a cooldown so a sustained breach produces one
// profile per cooldown window, not one per job. A nil *CPUProfile, or
// one with no bound, never triggers.
type CPUProfile struct {
	// Dir receives the profile files (cpu-<series>-<n>.pprof).
	Dir string
	// Series names the watched latency in file names and logs.
	Series string
	// Hist is the watched histogram; Bound the p99 threshold that arms a
	// capture. Quantile overrides the watched quantile (0.99 when 0).
	Hist     *telemetry.Histogram
	Bound    time.Duration
	Quantile float64
	// Duration is the capture window (2s when 0); Cooldown the minimum
	// gap between captures (10m when 0).
	Duration time.Duration
	Cooldown time.Duration
	// Log, when non-nil, narrates trigger and completion.
	Log *slog.Logger

	busy atomic.Bool
	mu   sync.Mutex
	last time.Time
	seq  int
	caps atomic.Uint64
}

// Captures reports how many profiles have been written.
func (p *CPUProfile) Captures() uint64 {
	if p == nil {
		return 0
	}
	return p.caps.Load()
}

// Busy reports whether a capture is currently running.
func (p *CPUProfile) Busy() bool { return p != nil && p.busy.Load() }

// Check evaluates the trigger and starts an asynchronous capture when
// the watched quantile exceeds the bound. It returns true when a capture
// was started. Check itself never blocks on profiling.
func (p *CPUProfile) Check() bool {
	if p == nil || p.Bound <= 0 || p.Hist == nil || p.Dir == "" {
		return false
	}
	q := p.Quantile
	if q == 0 {
		q = 0.99
	}
	if p.Hist.Quantile(q) <= p.Bound.Seconds() {
		return false
	}
	if !p.busy.CompareAndSwap(false, true) {
		return false
	}
	cooldown := p.Cooldown
	if cooldown == 0 {
		cooldown = 10 * time.Minute
	}
	p.mu.Lock()
	if !p.last.IsZero() && time.Since(p.last) < cooldown {
		p.mu.Unlock()
		p.busy.Store(false)
		return false
	}
	p.last = time.Now()
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	go p.capture(seq)
	return true
}

// capture writes one CPU profile, then clears the busy flag.
func (p *CPUProfile) capture(seq int) {
	defer p.busy.Store(false)
	dur := p.Duration
	if dur == 0 {
		dur = 2 * time.Second
	}
	series := p.Series
	if series == "" {
		series = "latency"
	}
	path := filepath.Join(p.Dir, fmt.Sprintf("cpu-%s-%03d.pprof", series, seq))
	f, err := os.Create(path)
	if err != nil {
		p.logErr("creating profile file", err)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profiler (an operator on /debug/pprof/profile) owns the
		// CPU profile right now; drop this capture rather than fight it.
		f.Close()
		os.Remove(path)
		p.logErr("starting CPU profile", err)
		return
	}
	if p.Log != nil {
		p.Log.Warn("SLO breach: capturing CPU profile",
			"series", series, "bound_s", p.Bound.Seconds(), "path", path)
	}
	time.Sleep(dur)
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		p.logErr("closing profile file", err)
		return
	}
	p.caps.Add(1)
	if p.Log != nil {
		p.Log.Info("CPU profile captured", "series", series, "path", path)
	}
}

func (p *CPUProfile) logErr(what string, err error) {
	if p.Log != nil {
		p.Log.Error("profile capture failed", "stage", what, "err", err)
	}
}
