package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jouppi/internal/telemetry"
)

// TestNilSafety exercises every method on detached (nil) values: the
// whole point of the discipline is that instrumented code never
// branches, so nothing here may panic.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	root := tr.Root("job", "j1", nil)
	if root != nil {
		t.Fatalf("nil tracer Root = %v, want nil", root)
	}
	root.SetAttr("k", "v")
	root.Record("probe", time.Now(), time.Now())
	child := root.Start("child")
	if child != nil {
		t.Fatalf("nil span Start = %v, want nil", child)
	}
	child.End()
	root.End()
	if got := root.ID(); got != "" {
		t.Fatalf("nil span ID = %q", got)
	}
	if got := root.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer Traces = %v", got)
	}
	if _, ok := tr.TraceByID("j1"); ok {
		t.Fatal("nil tracer TraceByID found something")
	}
	if got := tr.Evicted(); got != 0 {
		t.Fatalf("nil tracer Evicted = %d", got)
	}

	var s *SLO
	s.Observe(SpanData{Name: "queue-wait"})
	if got := s.Summary(); got != nil {
		t.Fatalf("nil SLO Summary = %v", got)
	}
	if got := s.Histogram("queue-wait"); got != nil {
		t.Fatalf("nil SLO Histogram = %v", got)
	}

	var p *CPUProfile
	if p.Check() {
		t.Fatal("nil profile triggered")
	}
	if p.Busy() || p.Captures() != 0 {
		t.Fatal("nil profile reports activity")
	}

	// Context propagation on a span-free context: Start must return the
	// context unchanged and a nil span.
	ctx := context.Background()
	ctx2, sp := Start(ctx, "work")
	if ctx2 != ctx || sp != nil {
		t.Fatalf("detached Start = (%v, %v), want (ctx, nil)", ctx2, sp)
	}
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(empty) = %v", got)
	}
	if got := ContextWith(ctx, nil); got != ctx {
		t.Fatal("ContextWith(nil span) changed the context")
	}
}

// TestSpanTree checks that a root with live children, a retroactive
// Record, and attributes finalizes into the expected TraceData shape.
func TestSpanTree(t *testing.T) {
	tr := New(Options{})
	root := tr.Root("job", "j42", nil, String("benchmark", "liver"))
	if root.TraceID() != "j42" {
		t.Fatalf("TraceID = %q, want j42", root.TraceID())
	}

	probeStart := time.Now().Add(-time.Millisecond)
	root.Record("store-read", probeStart, time.Now(), String("hit", "false"))

	child := root.Start("queue-wait")
	child.End()
	grand := root.Start("run")
	inner := grand.Start("attempt", Int("attempt", 1))
	inner.SetAttr("err", "")
	inner.End()
	grand.End()
	root.SetAttr("state", "done")
	root.End()

	// End after finalization must not corrupt anything, just count.
	late := root.Start("late")
	late.End()

	td, ok := tr.TraceByID("j42")
	if !ok {
		t.Fatal("trace j42 not retained")
	}
	if td.Root != "job" || td.ID != "j42" {
		t.Fatalf("trace = %+v", td)
	}
	wantOrder := []string{"store-read", "queue-wait", "attempt", "run", "job"}
	if len(td.Spans) != len(wantOrder) {
		t.Fatalf("got %d spans %v, want %v", len(td.Spans), spanNames(td), wantOrder)
	}
	for i, name := range wantOrder {
		if td.Spans[i].Name != name {
			t.Fatalf("span order = %v, want %v", spanNames(td), wantOrder)
		}
	}
	if td.Dropped != 0 {
		// The late span closed after finalization; it is counted on the
		// *next* snapshot only if it raced the push. Re-fetch to check.
		t.Fatalf("dropped = %d before late close was possible", td.Dropped)
	}

	jobSpan, _ := td.Span("job")
	if jobSpan.Attr("state") != "done" || jobSpan.Attr("benchmark") != "liver" {
		t.Fatalf("root attrs = %v", jobSpan.Attrs)
	}
	if jobSpan.Parent != "" {
		t.Fatalf("root parent = %q", jobSpan.Parent)
	}
	att, _ := td.Span("attempt")
	run, _ := td.Span("run")
	if att.Parent != run.ID {
		t.Fatalf("attempt parent = %q, want run %q", att.Parent, run.ID)
	}
	sr, _ := td.Span("store-read")
	if sr.Parent != jobSpan.ID || sr.Attr("hit") != "false" {
		t.Fatalf("store-read = %+v", sr)
	}
	if d := sr.Duration(); d <= 0 {
		t.Fatalf("store-read duration = %v", d)
	}
}

func spanNames(td TraceData) []string {
	var names []string
	for _, s := range td.Spans {
		names = append(names, s.Name)
	}
	return names
}

// TestEndIdempotent checks a double End publishes exactly once.
func TestEndIdempotent(t *testing.T) {
	var closes int
	tr := New(Options{OnSpanEnd: func(SpanData) { closes++ }})
	root := tr.Root("job", "", nil)
	root.End()
	root.End()
	if closes != 1 {
		t.Fatalf("root closed %d times, want 1", closes)
	}
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("retained %d traces, want 1", got)
	}
}

// TestRingEviction checks the bounded ring keeps the newest traces and
// counts what it dropped.
func TestRingEviction(t *testing.T) {
	tr := New(Options{Capacity: 2})
	for i := 0; i < 5; i++ {
		root := tr.Root("job", fmt.Sprintf("j%d", i), nil)
		root.End()
	}
	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("retained %d traces, want 2", len(traces))
	}
	// Newest first.
	if traces[0].ID != "j4" || traces[1].ID != "j3" {
		t.Fatalf("retained %s, %s; want j4, j3", traces[0].ID, traces[1].ID)
	}
	if got := tr.Evicted(); got != 3 {
		t.Fatalf("evicted = %d, want 3", got)
	}
	if _, ok := tr.TraceByID("j0"); ok {
		t.Fatal("evicted trace still findable")
	}
}

// TestJournalExport round-trips span closes through the JSONL journal
// schema: every close is one "span" event carrying trace/span IDs,
// parentage, duration, and attributes.
func TestJournalExport(t *testing.T) {
	var buf bytes.Buffer
	jnl := telemetry.NewJournal(&buf)
	tr := New(Options{})
	root := tr.Root("job", "j7", jnl, String("benchmark", "ccom"))
	child := root.Start("queue-wait")
	child.End()
	root.End()

	events, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("journal is not valid JSONL: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	qw, rt := events[0], events[1]
	if qw.Event != "span" || qw.Span != "queue-wait" || qw.ID != "j7" {
		t.Fatalf("queue-wait event = %+v", qw)
	}
	if qw.Parent == "" || qw.SpanID == "" {
		t.Fatalf("queue-wait missing IDs: %+v", qw)
	}
	if rt.Span != "job" || rt.Parent != "" || rt.Attrs["benchmark"] != "ccom" {
		t.Fatalf("root event = %+v", rt)
	}
	if qw.Parent != rt.SpanID {
		t.Fatalf("queue-wait parent = %q, want root %q", qw.Parent, rt.SpanID)
	}
	if rt.ElapsedS < 0 {
		t.Fatalf("root elapsed = %v", rt.ElapsedS)
	}
	if qw.Time.IsZero() || rt.Time.IsZero() {
		t.Fatal("span events missing timestamps")
	}
}

// TestConcurrentSpans closes sibling spans from many goroutines at once
// (the fan-out consumer shape); run under -race this is the data-race
// check the fan-out instrumentation depends on.
func TestConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	jnl := telemetry.NewJournal(&buf)
	slo := NewSLO(nil, nil, Stage{Span: "consumer", Metric: "consumer_seconds"})
	tr := New(Options{OnSpanEnd: slo.Observe})
	root := tr.Root("job", "jr", jnl)

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Start("consumer", Int("consumer", i))
			sp.SetAttr("done", "true")
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()

	td, ok := tr.TraceByID("jr")
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(td.Spans) != n+1 {
		t.Fatalf("got %d spans, want %d", len(td.Spans), n+1)
	}
	if events, err := telemetry.ReadEvents(&buf); err != nil || len(events) != n+1 {
		t.Fatalf("journal: %d events, err %v; want %d", len(events), err, n+1)
	}
	sum := slo.Summary()
	if len(sum) != 1 || sum[0].Count != n {
		t.Fatalf("SLO summary = %+v, want count %d", sum, n)
	}
}

// TestContextPropagation checks the span travels through contexts and
// that Start hangs children off the carried span.
func TestContextPropagation(t *testing.T) {
	tr := New(Options{})
	root := tr.Root("job", "jc", nil)
	ctx := ContextWith(context.Background(), root)
	if got := FromContext(ctx); got != root {
		t.Fatalf("FromContext = %v, want root", got)
	}
	ctx2, child := Start(ctx, "stage")
	if child == nil {
		t.Fatal("Start returned nil span on a carrying context")
	}
	if got := FromContext(ctx2); got != child {
		t.Fatal("child context does not carry the child span")
	}
	child.End()
	root.End()
	td, _ := tr.TraceByID("jc")
	st, ok := td.Span("stage")
	if !ok || st.Parent != td.Spans[len(td.Spans)-1].ID {
		t.Fatalf("stage span = %+v", st)
	}
}

// TestSLOQuantilesAndExemplars feeds known durations and checks bucket
// attribution: quantile estimates land on bucket upper bounds, and each
// occupied bucket remembers the last trace that landed in it.
func TestSLOQuantilesAndExemplars(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	slo := NewSLO(nil, bounds, Stage{Span: "job", Metric: "slo_job_seconds"})
	base := time.Now()
	obs := func(trace string, seconds float64) {
		slo.Observe(SpanData{
			Trace: trace, Name: "job",
			Start: base, End: base.Add(time.Duration(seconds * float64(time.Second))),
		})
	}
	obs("fast-1", 0.05)
	obs("fast-2", 0.07)
	obs("mid", 0.5)
	obs("slow", 5)

	sum := slo.Summary()
	if len(sum) != 1 {
		t.Fatalf("got %d summaries", len(sum))
	}
	s := sum[0]
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	// Rank-based bucket upper bounds: p50 → rank 2 → 0.1s bucket,
	// p99 → rank 4 → 10s bucket.
	if s.P50 != 0.1 || s.P99 != 10 {
		t.Fatalf("p50 = %v, p99 = %v; want 0.1, 10", s.P50, s.P99)
	}
	if len(s.Exemplars) != 3 {
		t.Fatalf("exemplars = %+v, want 3 occupied buckets", s.Exemplars)
	}
	if ex := s.Exemplars[0]; ex.LE != 0.1 || ex.Count != 2 || ex.Trace != "fast-2" {
		t.Fatalf("fast bucket = %+v", ex)
	}
	if ex := s.Exemplars[2]; ex.LE != 10 || ex.Trace != "slow" || ex.Seconds != 5 {
		t.Fatalf("slow bucket = %+v", ex)
	}
	// Unknown span names are not stages and must be ignored.
	slo.Observe(SpanData{Name: "unrelated", Start: base, End: base})
	if slo.Summary()[0].Count != 4 {
		t.Fatal("unrelated span leaked into the stage")
	}
}

// TestCPUProfileTrigger drives the watched histogram over its bound and
// checks exactly one profile lands on disk (single-flight + cooldown).
func TestCPUProfileTrigger(t *testing.T) {
	dir := t.TempDir()
	hist := telemetry.NewRegistry().Histogram("w", "", []float64{0.001, 10})
	p := &CPUProfile{
		Dir: dir, Series: "queuewait", Hist: hist,
		Bound: 500 * time.Millisecond, Duration: 10 * time.Millisecond,
	}
	// Below bound: p99 sits in the 0.001 bucket.
	hist.Observe(0.0001)
	if p.Check() {
		t.Fatal("triggered below bound")
	}
	// Breach: p99 estimate becomes 10s > 500ms. Repeated checks during
	// the capture and the cooldown window must not start a second one.
	hist.Observe(5)
	first := p.Check()
	if !first {
		t.Fatal("no trigger on breach")
	}
	for i := 0; i < 10; i++ {
		if p.Check() {
			t.Fatal("second capture started inside cooldown")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Captures() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("capture never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "cpu-queuewait-*.pprof"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("profiles on disk = %v (err %v), want exactly 1", matches, err)
	}
}

// TestHandler checks the /debug/traces endpoint: full listing, ?id=
// filter, and the 404 path.
func TestHandler(t *testing.T) {
	slo := NewSLO(nil, nil, JobStages()...)
	tr := New(Options{OnSpanEnd: slo.Observe})
	for _, id := range []string{"j1", "j2"} {
		root := tr.Root("job", id, nil)
		root.Start("queue-wait").End()
		root.End()
	}
	h := Handler(tr, slo)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var resp struct {
		Traces []TraceData    `json:"traces"`
		SLO    []StageSummary `json:"slo"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Traces) != 2 || resp.Traces[0].ID != "j2" {
		t.Fatalf("traces = %+v, want j2 newest-first", resp.Traces)
	}
	if len(resp.SLO) != 3 {
		t.Fatalf("slo stages = %d, want 3", len(resp.SLO))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=j1", nil))
	resp.Traces = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Traces) != 1 || resp.Traces[0].ID != "j1" {
		t.Fatalf("?id=j1 → %+v", resp.Traces)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace status = %d, want 404", rec.Code)
	}
}
