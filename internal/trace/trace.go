// Package trace is a lightweight, zero-dependency span system for
// request-scoped latency attribution: a span is a named interval with a
// parent, monotonic start/end times, and key/value attributes, and a
// trace is the tree of spans hung off one root (a cachesimd job, a CLI
// sweep). It exists for the same reason the 3C classifier does — a
// number you cannot attribute is a number you cannot improve — applied
// to wall-clock instead of miss rate: the service cannot meet a latency
// SLO without knowing whether a slow job spent its time queued, backing
// off between retries, decoding its trace, or replaying it.
//
// The package follows the telemetry package's nil-safety discipline so
// instrumented code never branches: a nil *Tracer hands out nil roots, a
// nil *Span no-ops every method, and Start on a context that carries no
// span returns a nil span. Detached code paths therefore pay one
// predicted branch (plus one context lookup at propagation boundaries),
// and spans are only ever created at request/stage granularity — never
// per access — so the attached cost is invisible next to a replay.
//
// Finished spans are exported two ways:
//
//   - as "span" events on the trace's telemetry.Journal (the same JSONL
//     schema the run journal and /jobs/{id}/events use), so one job ID
//     links logs, journal events, spans, and metrics, and
//   - into an in-memory ring of finished traces, queryable over HTTP at
//     /debug/traces (see Handler).
//
// SLO accounting (see SLO) and the queue-wait p99 profile trigger (see
// CPUProfile) are derived from span closes, so per-stage histograms
// follow the delta-publication discipline: the hot path updates nothing,
// and one Observe per span close publishes the whole interval.
package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jouppi/internal/telemetry"
)

// Attr is one key/value annotation on a span. Values are strings so the
// export formats (journal events, /debug/traces JSON) stay flat.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Uint64 builds an unsigned integer attribute.
func Uint64(k string, v uint64) Attr {
	return Attr{Key: k, Value: strconv.FormatUint(v, 10)}
}

// SpanData is the immutable record of a finished span.
type SpanData struct {
	// Trace is the ID of the trace this span belongs to (for a cachesimd
	// job, the job ID).
	Trace  string    `json:"trace"`
	Name   string    `json:"name"`
	ID     string    `json:"id"`
	Parent string    `json:"parent,omitempty"` // parent span ID; "" on the root
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Attrs  []Attr    `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock extent.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Attr returns the value of the named attribute ("" when absent).
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TraceData is one finished trace: every span that closed before the
// root did, in close order (the root is always last).
type TraceData struct {
	ID    string     `json:"id"`
	Root  string     `json:"root"` // root span name
	Start time.Time  `json:"start"`
	End   time.Time  `json:"end"`
	Spans []SpanData `json:"spans"`
	// Dropped counts spans that closed after the root had already
	// finalized the trace (a bug in the instrumented code, not fatal).
	Dropped int `json:"dropped,omitempty"`
}

// Span finds a span by name (first match in close order).
func (t *TraceData) Span(name string) (SpanData, bool) {
	for _, s := range t.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanData{}, false
}

// Options configures a Tracer.
type Options struct {
	// Capacity bounds the ring of finished traces kept for /debug/traces
	// (256 when zero or negative).
	Capacity int
	// OnSpanEnd, when non-nil, observes every finished span
	// synchronously. It is the hook SLO accounting and the profile
	// trigger hang off; it must be fast and must not call back into the
	// span being closed.
	OnSpanEnd func(SpanData)
}

const defaultCapacity = 256

// Tracer mints spans and retains finished traces in a bounded ring. A
// nil *Tracer is the detached state: Root returns a nil span and every
// derived operation no-ops.
type Tracer struct {
	capacity int
	onEnd    func(SpanData)
	seq      atomic.Uint64

	mu      sync.Mutex
	ring    []TraceData // oldest first
	evicted uint64
	dropped uint64
}

// New builds a live tracer.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = defaultCapacity
	}
	return &Tracer{capacity: opts.Capacity, onEnd: opts.OnSpanEnd}
}

// nextID mints a process-unique span ID.
func (t *Tracer) nextID() string {
	return fmt.Sprintf("s%06x", t.seq.Add(1))
}

// Root starts a new trace. traceID names the trace (a job ID; "" mints
// one), and jnl, when non-nil, receives one "span" event per span close
// so the trace interleaves with the run journal it belongs to. A nil
// tracer returns a nil span.
func (t *Tracer) Root(name, traceID string, jnl *telemetry.Journal, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if traceID == "" {
		traceID = fmt.Sprintf("t%06x", t.seq.Add(1))
	}
	at := &activeTrace{tracer: t, id: traceID, journal: jnl}
	return &Span{
		at:    at,
		name:  name,
		id:    t.nextID(),
		start: time.Now(),
		attrs: append([]Attr(nil), attrs...),
	}
}

// push retires a finished trace into the ring.
func (t *Tracer) push(td TraceData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = append(t.ring, td)
	if over := len(t.ring) - t.capacity; over > 0 {
		t.evicted += uint64(over)
		t.ring = append(t.ring[:0], t.ring[over:]...)
	}
}

// Traces snapshots the finished traces, newest first.
func (t *Tracer) Traces() []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceData, len(t.ring))
	for i := range t.ring {
		out[i] = t.ring[len(t.ring)-1-i]
	}
	return out
}

// TraceByID finds a finished trace by its ID.
func (t *Tracer) TraceByID(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].ID == id {
			return t.ring[i], true
		}
	}
	return TraceData{}, false
}

// Evicted reports how many finished traces the ring has dropped.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// activeTrace accumulates the finished spans of one in-flight trace.
type activeTrace struct {
	tracer  *Tracer
	id      string
	journal *telemetry.Journal

	mu      sync.Mutex
	spans   []SpanData
	done    bool
	dropped int
}

// finish records one closed span, finalizing the trace when the root
// closes. Journal export and the OnSpanEnd hook run outside the trace
// lock (the journal has its own).
func (at *activeTrace) finish(d SpanData, root bool) {
	at.mu.Lock()
	if at.done {
		at.dropped++
		at.tracer.mu.Lock()
		at.tracer.dropped++
		at.tracer.mu.Unlock()
		at.mu.Unlock()
		return
	}
	at.spans = append(at.spans, d)
	var td TraceData
	if root {
		at.done = true
		td = TraceData{
			ID: at.id, Root: d.Name, Start: d.Start, End: d.End,
			Spans: at.spans, Dropped: at.dropped,
		}
	}
	at.mu.Unlock()

	at.journal.Emit(spanEvent(d))
	if at.tracer.onEnd != nil {
		at.tracer.onEnd(d)
	}
	if root {
		at.tracer.push(td)
	}
}

// spanEvent renders a finished span as one journal event, on the same
// flat schema the run journal uses.
func spanEvent(d SpanData) telemetry.Event {
	e := telemetry.Event{
		Time:     d.End,
		Event:    "span",
		ID:       d.Trace,
		Span:     d.Name,
		SpanID:   d.ID,
		Parent:   d.Parent,
		ElapsedS: d.Duration().Seconds(),
	}
	if len(d.Attrs) > 0 {
		e.Attrs = make(map[string]string, len(d.Attrs))
		for _, a := range d.Attrs {
			e.Attrs[a.Key] = a.Value
		}
	}
	return e
}

// Span is one open interval of a trace. A nil *Span no-ops every method,
// so detached code paths never branch. A span is safe for concurrent
// SetAttr/End against itself, and sibling spans may close concurrently
// (fan-out consumers do).
type Span struct {
	at     *activeTrace
	name   string
	id     string
	parent string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// ID returns the span's process-unique ID ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// TraceID returns the owning trace's ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.at.id
}

// Start opens a child span. A nil receiver returns a nil child.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		at:     s.at,
		name:   name,
		id:     s.at.tracer.nextID(),
		parent: s.id,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
}

// Record adds an already-finished child span — for intervals measured
// before the span existed (the result-store probe that precedes job
// admission) or measured by code that should not hold a span open.
func (s *Span) Record(name string, start, end time.Time, attrs ...Attr) {
	if s == nil {
		return
	}
	s.at.finish(SpanData{
		Trace: s.at.id, Name: name, ID: s.at.tracer.nextID(), Parent: s.id,
		Start: start, End: end, Attrs: append([]Attr(nil), attrs...),
	}, false)
}

// SetAttr sets (or replaces) an attribute on an open span. Attributes
// set after End are lost.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span, publishing it to the journal, the OnSpanEnd
// hook, and — when this is the root — the finished-trace ring. End is
// idempotent; only the first call publishes.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	s.at.finish(SpanData{
		Trace: s.at.id, Name: s.name, ID: s.id, Parent: s.parent,
		Start: s.start, End: time.Now(), Attrs: attrs,
	}, s.parent == "")
}
