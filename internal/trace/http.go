package trace

import (
	"encoding/json"
	"net/http"
)

// tracesResponse is the /debug/traces JSON body.
type tracesResponse struct {
	// Traces lists finished traces newest-first (a single trace when ?id=
	// was given).
	Traces []TraceData `json:"traces"`
	// Evicted counts finished traces the bounded ring has dropped.
	Evicted uint64 `json:"evicted,omitempty"`
	// SLO summarizes the per-stage latency series with their bucket
	// exemplars, so a slow bucket points straight at a job ID whose span
	// tree (above) explains it.
	SLO []StageSummary `json:"slo,omitempty"`
}

// Handler serves the finished-trace ring and the SLO summary as JSON:
//
//	GET /debug/traces        every retained trace, newest first, plus SLO
//	GET /debug/traces?id=X   just trace X (404 when not retained)
//
// slo may be nil. Mount it on the daemon's mux at /debug/traces.
func Handler(t *Tracer, slo *SLO) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := tracesResponse{SLO: slo.Summary(), Evicted: t.Evicted()}
		if id := r.URL.Query().Get("id"); id != "" {
			td, ok := t.TraceByID(id)
			if !ok {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.WriteHeader(http.StatusNotFound)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "no such trace"})
				return
			}
			resp.Traces = []TraceData{td}
		} else {
			resp.Traces = t.Traces()
		}
		if resp.Traces == nil {
			resp.Traces = []TraceData{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
