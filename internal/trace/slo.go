package trace

import (
	"sort"
	"sync"

	"jouppi/internal/telemetry"
)

// Stage maps one span name onto one SLO latency series.
type Stage struct {
	// Span is the span name whose closes feed this stage.
	Span string
	// Metric is the histogram name registered for it (e.g.
	// "slo_queue_wait_seconds").
	Metric string
	// Help is the metric's help string.
	Help string
}

// Exemplar is the last trace observed in one histogram bucket — the
// job you open /debug/traces with when that bucket's latency worries
// you. Slow buckets carrying a concrete job ID are the point: an SLO
// breach names a job whose span tree shows where the time went.
type Exemplar struct {
	// LE is the bucket's upper bound in seconds (+Inf encodes as 0 with
	// Inf set).
	LE  float64 `json:"le"`
	Inf bool    `json:"inf,omitempty"`
	// Count is how many observations landed in this bucket.
	Count uint64 `json:"count"`
	// Trace is the trace/job ID of the latest observation in the bucket;
	// Seconds its duration.
	Trace   string  `json:"trace"`
	Seconds float64 `json:"seconds"`
}

// StageSummary is the queryable state of one stage.
type StageSummary struct {
	Span   string  `json:"span"`
	Metric string  `json:"metric"`
	Count  uint64  `json:"count"`
	P50    float64 `json:"p50_seconds"`
	P90    float64 `json:"p90_seconds"`
	P99    float64 `json:"p99_seconds"`
	// Exemplars lists only occupied buckets, slowest last.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// sloStage is the live accumulator behind one Stage.
type sloStage struct {
	spec   Stage
	hist   *telemetry.Histogram
	bounds []float64

	mu        sync.Mutex
	exemplars []Exemplar // len(bounds)+1; last is +Inf
}

// SLO derives per-stage latency histograms and bucket exemplars from
// span closes. Histograms live in a telemetry.Registry (scraped like any
// other metric); exemplars are queryable through Summary and the
// /debug/traces handler. Publication follows the delta discipline: the
// hot path records nothing, and each span close publishes its whole
// interval in one Observe. A nil *SLO no-ops.
type SLO struct {
	stages map[string]*sloStage // by span name
	order  []string
}

// NewSLO registers one histogram per stage on reg, all sharing bounds
// (DefaultDurationBuckets when nil). A nil registry still accumulates
// exemplars and quantiles; the histograms are simply unexported.
func NewSLO(reg *telemetry.Registry, bounds []float64, stages ...Stage) *SLO {
	if bounds == nil {
		bounds = telemetry.DefaultDurationBuckets()
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	s := &SLO{stages: make(map[string]*sloStage, len(stages))}
	for _, st := range stages {
		s.stages[st.Span] = &sloStage{
			spec:      st,
			hist:      reg.Histogram(st.Metric, st.Help, sorted),
			bounds:    sorted,
			exemplars: make([]Exemplar, len(sorted)+1),
		}
		s.order = append(s.order, st.Span)
	}
	return s
}

// Observe routes one finished span into its stage, if any. Wire it as
// (or into) the tracer's OnSpanEnd hook.
func (s *SLO) Observe(d SpanData) {
	if s == nil {
		return
	}
	st, ok := s.stages[d.Name]
	if !ok {
		return
	}
	sec := d.Duration().Seconds()
	st.hist.Observe(sec)
	i := sort.SearchFloat64s(st.bounds, sec)
	st.mu.Lock()
	ex := &st.exemplars[i]
	ex.Count++
	ex.Trace = d.Trace
	ex.Seconds = sec
	st.mu.Unlock()
}

// Histogram returns the stage's histogram (nil when the span name is
// not a stage), for wiring triggers like CPUProfile.
func (s *SLO) Histogram(span string) *telemetry.Histogram {
	if s == nil {
		return nil
	}
	st, ok := s.stages[span]
	if !ok {
		return nil
	}
	return st.hist
}

// Summary snapshots every stage in registration order.
func (s *SLO) Summary() []StageSummary {
	if s == nil {
		return nil
	}
	out := make([]StageSummary, 0, len(s.order))
	for _, name := range s.order {
		st := s.stages[name]
		sum := StageSummary{
			Span:   st.spec.Span,
			Metric: st.spec.Metric,
			Count:  st.hist.Count(),
			P50:    st.hist.Quantile(0.50),
			P90:    st.hist.Quantile(0.90),
			P99:    st.hist.Quantile(0.99),
		}
		st.mu.Lock()
		for i, ex := range st.exemplars {
			if ex.Count == 0 {
				continue
			}
			if i < len(st.bounds) {
				ex.LE = st.bounds[i]
			} else {
				ex.LE, ex.Inf = 0, true
			}
			sum.Exemplars = append(sum.Exemplars, ex)
		}
		st.mu.Unlock()
		out = append(out, sum)
	}
	return out
}

// JobStages returns the stage set the cachesimd job lifecycle publishes:
// queue wait (admission to worker pickup), per-attempt run time, and
// end-to-end job latency.
func JobStages() []Stage {
	return []Stage{
		{Span: "queue-wait", Metric: "slo_queue_wait_seconds",
			Help: "time jobs spent admitted but not yet running"},
		{Span: "attempt", Metric: "slo_attempt_seconds",
			Help: "wall time of each job attempt (excluding queueing and backoff)"},
		{Span: "job", Metric: "slo_job_seconds",
			Help: "end-to-end job latency from admission to terminal state"},
	}
}
