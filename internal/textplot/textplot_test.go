package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 50, 100}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{100, 50, 0}},
	}
	out := Lines("title", "xs", "ys", s, 30, 8)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* = a") || !strings.Contains(out, "o = b") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "100.0") {
		t.Error("missing y max label")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing plotted points")
	}
	if !strings.Contains(out, "x: xs") {
		t.Error("missing axis labels")
	}
}

func TestLinesEmpty(t *testing.T) {
	out := Lines("t", "", "", nil, 20, 6)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestLinesDegenerateRanges(t *testing.T) {
	// Single point: both axes degenerate; must not panic or divide by 0.
	out := Lines("t", "", "", []Series{{Name: "p", X: []float64{5}, Y: []float64{5}}}, 20, 6)
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}

func TestLinesClampsTinyDimensions(t *testing.T) {
	out := Lines("t", "", "", []Series{{Name: "p", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1)
	if len(out) == 0 {
		t.Error("no output for tiny chart")
	}
}

func TestBars(t *testing.T) {
	out := Bars("misses", "%", []string{"ccom", "grr"}, []float64{50, 100}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("bars output has %d lines, want 3", len(lines))
	}
	ccomHashes := strings.Count(lines[1], "#")
	grrHashes := strings.Count(lines[2], "#")
	if grrHashes != 20 || ccomHashes != 10 {
		t.Errorf("bar lengths = %d, %d; want 10, 20", ccomHashes, grrHashes)
	}
	if !strings.Contains(lines[1], "50.00%") {
		t.Error("missing value annotation")
	}
}

func TestBarsZeroAndTinyValues(t *testing.T) {
	out := Bars("t", "", []string{"zero", "tiny", "big"}, []float64{0, 0.01, 100}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "#") != 0 {
		t.Error("zero value drew a bar")
	}
	if strings.Count(lines[2], "#") != 1 {
		t.Error("tiny nonzero value should draw a minimal bar")
	}
	// All-zero input must not divide by zero.
	_ = Bars("t", "", []string{"a"}, []float64{0}, 20)
}

func TestStackedBars(t *testing.T) {
	rows := [][]Segment{
		{{Name: "net", Glyph: '=', Value: 50}, {Name: "lost", Glyph: '.', Value: 50}},
		{{Name: "net", Glyph: '=', Value: 25}, {Name: "lost", Glyph: '.', Value: 75}},
	}
	out := StackedBars("perf", []string{"ccom", "grr"}, rows, 40)
	if !strings.Contains(out, "==") || !strings.Contains(out, "..") {
		t.Error("missing segments")
	}
	if !strings.Contains(out, "key:") || !strings.Contains(out, "==net") &&
		!strings.Contains(out, "=net") {
		t.Errorf("missing key: %q", out)
	}
	// Bars are normalized: each row should contain exactly width glyphs
	// (within rounding).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && !strings.Contains(line, "key") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) != 40 {
				t.Errorf("bar width %d, want 40: %q", len(inner), line)
			}
		}
	}
	// Zero-total row must not panic.
	_ = StackedBars("z", []string{"a"}, [][]Segment{{{Name: "n", Glyph: '=', Value: 0}}}, 10)
}

func TestHeatMap(t *testing.T) {
	values := make([]float64, 96)
	values[0] = 1     // lightest visible glyph
	values[40] = 100  // mid intensity
	values[95] = 1000 // the maximum: darkest glyph
	out := HeatMap("pressure", values, 64)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("96 values at 64 cols must give title + 2 rows + legend, got %d:\n%s", len(lines), out)
	}
	row0 := lines[1][strings.Index(lines[1], "|")+1:]
	row1 := lines[2][strings.Index(lines[2], "|")+1:]
	if len(row0) != 65 || len(row1) != 33 { // cells + closing '|'
		t.Errorf("row widths %d/%d, want 65/33:\n%s", len(row0), len(row1), out)
	}
	if row0[0] != '.' {
		t.Errorf("tiny nonzero value must render the lightest visible glyph, got %q", row0[0])
	}
	if row1[31] != '@' {
		t.Errorf("maximum must render the darkest glyph, got %q", row1[31])
	}
	if row0[1] != ' ' {
		t.Errorf("zero cell must be blank, got %q", row0[1])
	}
	if !strings.Contains(lines[3], "max 1000 at 95") {
		t.Errorf("legend missing max: %q", lines[3])
	}
	// Row labels name the first cell of each row.
	if !strings.Contains(lines[2], "64") {
		t.Errorf("second row must be labelled 64: %q", lines[2])
	}
}

func TestHeatMapEdgeCases(t *testing.T) {
	if out := HeatMap("empty", nil, 8); !strings.Contains(out, "(no data)") {
		t.Errorf("empty heatmap: %q", out)
	}
	// All-NaN / negative values render as blank cells without panicking.
	out := HeatMap("nan", []float64{math.NaN(), -3}, 0)
	row := strings.Split(out, "\n")[1]
	inner := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if inner != "  " {
		t.Errorf("NaN/negative cells must be blank, got %q", inner)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"ccom", "0.096"},
		{"linpack-long", "0.144"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Error("missing separator row")
	}
	// Alignment: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "0.096") {
		t.Errorf("misaligned table:\n%s", out)
	}
}
