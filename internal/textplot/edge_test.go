package textplot

import (
	"math"
	"strings"
	"testing"
)

// nan saves typing in the tables below.
var nan = math.NaN()

func TestLinesSingleElement(t *testing.T) {
	out := Lines("one point", "x", "y", []Series{
		{Name: "s", X: []float64{3}, Y: []float64{7}},
	}, 20, 6)
	if !strings.Contains(out, "*") {
		t.Errorf("single point did not plot:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("unexpected NaN in output:\n%s", out)
	}
}

func TestLinesNaNPointsSkipped(t *testing.T) {
	out := Lines("nan points", "x", "y", []Series{
		{Name: "s", X: []float64{0, 1, nan, 3}, Y: []float64{1, nan, 2, 4}},
	}, 24, 6)
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into axis labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("finite points should still plot:\n%s", out)
	}
}

func TestLinesAllNaN(t *testing.T) {
	out := Lines("all nan", "x", "y", []Series{
		{Name: "s", X: []float64{nan, nan}, Y: []float64{nan, nan}},
	}, 20, 6)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("all-NaN series should render as no data:\n%s", out)
	}
}

func TestBarsEmpty(t *testing.T) {
	out := Bars("empty", "%", nil, nil, 20)
	if !strings.HasPrefix(out, "empty\n") {
		t.Errorf("empty bars output: %q", out)
	}
}

func TestBarsNaNAndNegative(t *testing.T) {
	// Must not panic (int(NaN) fed to strings.Repeat) and must keep the
	// finite bars sensible.
	out := Bars("mixed", "", []string{"nan", "neg", "ok"}, []float64{nan, -3, 6}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want title + 3 rows, got:\n%s", out)
	}
	if strings.Contains(lines[1], "#") {
		t.Errorf("NaN row should have an empty bar: %q", lines[1])
	}
	if strings.Contains(lines[2], "#") {
		t.Errorf("negative row should have an empty bar: %q", lines[2])
	}
	if !strings.Contains(lines[3], strings.Repeat("#", 10)) {
		t.Errorf("finite max should fill the width: %q", lines[3])
	}
}

func TestStackedBarsNaNSegment(t *testing.T) {
	out := StackedBars("mixed", []string{"row"}, [][]Segment{{
		{Name: "good", Glyph: 'g', Value: 3},
		{Name: "bad", Glyph: 'b', Value: nan},
		{Name: "neg", Glyph: 'n', Value: -1},
	}}, 12)
	if strings.Contains(out, "b") && strings.Contains(out, "|"+strings.Repeat("b", 1)) {
		t.Errorf("NaN segment should not occupy bar width:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("g", 12)) {
		t.Errorf("the only finite positive segment should span the bar:\n%s", out)
	}
}

func TestStackedBarsEmptyRows(t *testing.T) {
	out := StackedBars("none", nil, nil, 12)
	if !strings.HasPrefix(out, "none\n") || strings.Contains(out, "key:") {
		t.Errorf("empty stacked bars output: %q", out)
	}
}

func TestTableEmpty(t *testing.T) {
	out := Table([]string{"a", "bb"}, nil)
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Errorf("headers and separator should render without rows: %q", out)
	}
}
