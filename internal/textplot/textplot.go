// Package textplot renders the experiment results as plain-text charts —
// line charts for the paper's figure sweeps, horizontal bars for the
// per-benchmark comparisons, stacked bars for the performance-loss
// figures, and aligned tables. Output is deterministic, ASCII-safe, and
// suitable for diffing in EXPERIMENTS.md.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers assigns one glyph per series, cycling if there are many.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Lines renders series on a width×height character grid with axis labels.
func Lines(title, xLabel, yLabel string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := 0.0, math.Inf(-1) // y axis anchored at 0: all our figures are percentages/counts
	for _, s := range series {
		for i := range s.X {
			// NaN points are unplottable; leaving them out here (and in
			// the plot loop below) keeps them from poisoning the axis
			// bounds via math.Min/Max.
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMax = math.Max(yMax, s.Y[i])
			yMin = math.Min(yMin, s.Y[i])
		}
	}
	if math.IsInf(xMin, 1) {
		return sb.String() + "(no data)\n"
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int((s.X[i] - xMin) / (xMax - xMin) * float64(width-1))
			cy := int((s.Y[i] - yMin) / (yMax - yMin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = m
			}
		}
	}

	yTop := fmt.Sprintf("%8.1f", yMax)
	yBot := fmt.Sprintf("%8.1f", yMin)
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = yTop
		case height - 1:
			label = yBot
		case height / 2:
			label = fmt.Sprintf("%8.1f", (yMax+yMin)/2)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%s  %-*s%s\n", strings.Repeat(" ", 8), width-len(fmt.Sprint(xMax)), fmt.Sprintf("%.4g", xMin), fmt.Sprintf("%.4g", xMax))
	if xLabel != "" || yLabel != "" {
		fmt.Fprintf(&sb, "%s  x: %s   y: %s\n", strings.Repeat(" ", 8), xLabel, yLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&sb, "%s    %c = %s\n", strings.Repeat(" ", 8), markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

// Bars renders a horizontal bar per label, scaled to the maximum value.
func Bars(title, unit string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if !math.IsNaN(v) {
			maxVal = math.Max(maxVal, v)
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	for i, v := range values {
		// A NaN (or negative) value renders as an empty bar with its
		// printed value telling the story; int(NaN) would otherwise feed
		// an implementation-defined count into strings.Repeat.
		n := 0
		if !math.IsNaN(v) && v > 0 {
			n = int(v / maxVal * float64(width))
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&sb, "  %-*s |%s %.2f%s\n", maxLabel, labels[i], strings.Repeat("#", n), v, unit)
	}
	return sb.String()
}

// Segment is one band of a stacked bar.
type Segment struct {
	Name  string
	Glyph byte
	Value float64
}

// StackedBars renders one stacked horizontal bar per label (the Figure
// 2-2 / 5-1 performance-band presentation). Each bar is normalized to
// width characters, so segments are percentages of the row total.
func StackedBars(title string, labels []string, rows [][]Segment, width int) string {
	if width < 10 {
		width = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	for i, segs := range rows {
		total := 0.0
		for _, s := range segs {
			if !math.IsNaN(s.Value) && s.Value > 0 {
				total += s.Value
			}
		}
		if total == 0 {
			total = 1
		}
		var bar strings.Builder
		used := 0
		for _, s := range segs {
			// NaN and negative bands get zero width, mirroring Bars.
			n := 0
			if !math.IsNaN(s.Value) && s.Value > 0 {
				n = int(s.Value/total*float64(width) + 0.5)
			}
			if used+n > width {
				n = width - used
			}
			bar.WriteString(strings.Repeat(string(s.Glyph), n))
			used += n
		}
		fmt.Fprintf(&sb, "  %-*s |%-*s|\n", maxLabel, labels[i], width, bar.String())
	}
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "  key:")
		for _, s := range rows[0] {
			fmt.Fprintf(&sb, "  %c=%s", s.Glyph, s.Name)
		}
		fmt.Fprintln(&sb)
	}
	return sb.String()
}

// heatRamp maps normalized intensity to a glyph, darkest last. The
// leading space means "no activity at all"; any nonzero value renders at
// least the lightest visible glyph.
const heatRamp = " .:-=+*#%@"

// HeatMap renders values as a density grid, cols cells per row, one
// glyph per value scaled to the maximum — the per-set cache pressure
// view. Index labels on the left give each row's first cell, so cell k
// of the row labelled n is index n+k. NaN and negative values render as
// empty cells.
func HeatMap(title string, values []float64, cols int) string {
	if cols < 1 {
		cols = 64
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(values) == 0 {
		return sb.String() + "(no data)\n"
	}
	maxVal, maxIdx := 0.0, 0
	for i, v := range values {
		if !math.IsNaN(v) && v > maxVal {
			maxVal, maxIdx = v, i
		}
	}
	labelW := len(fmt.Sprint(len(values) - 1))
	if labelW < 4 {
		labelW = 4
	}
	for row := 0; row < len(values); row += cols {
		end := row + cols
		if end > len(values) {
			end = len(values)
		}
		cells := make([]byte, 0, cols)
		for _, v := range values[row:end] {
			g := heatRamp[0]
			if !math.IsNaN(v) && v > 0 && maxVal > 0 {
				n := int(v / maxVal * float64(len(heatRamp)-1))
				if n < 1 {
					n = 1
				}
				g = heatRamp[n]
			}
			cells = append(cells, g)
		}
		fmt.Fprintf(&sb, "  %*d |%s|\n", labelW, row, string(cells))
	}
	fmt.Fprintf(&sb, "  max %.4g at %d; ramp %q (low to high)\n", maxVal, maxIdx, heatRamp)
	return sb.String()
}

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}
