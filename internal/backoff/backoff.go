// Package backoff implements capped exponential backoff with jitter —
// the retry pacing shared by experiments.RunAll and the cachesimd job
// queue. Retrying a failed run immediately is the worst possible
// schedule: whatever broke (an overloaded disk, a transient OOM, a
// stalled NFS mount) is usually still broken a microsecond later, and a
// thousand simultaneous retries amplify the very overload that caused
// the failures. Exponential spacing gives the fault time to clear, the
// cap keeps the wait bounded, and jitter decorrelates retries that
// failed together so they do not stampede back together.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Default policy parameters, applied by Policy for zero-valued fields.
const (
	DefaultBase   = 100 * time.Millisecond
	DefaultMax    = 30 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.5
)

// Policy describes a capped exponential backoff schedule. The zero
// Policy is usable and applies the defaults above. A Policy is immutable
// and safe for concurrent use by any number of retry loops.
type Policy struct {
	// Base is the nominal delay before the first retry (attempt 0).
	Base time.Duration
	// Max caps the nominal delay; growth stops there.
	Max time.Duration
	// Factor multiplies the delay per attempt; values below 1 are
	// treated as the default.
	Factor float64
	// Jitter is the fraction of the nominal delay that is randomized:
	// the actual delay is uniform in [delay*(1-Jitter), delay]. 0 means
	// fully deterministic; 1 means anywhere from 0 to the nominal delay.
	// Values outside [0, 1] are clamped.
	Jitter float64
	// Rand is the randomness source for jitter, returning values in
	// [0, 1); nil uses math/rand's thread-safe global source. Tests
	// substitute a deterministic function.
	Rand func() float64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Factor < 1 {
		p.Factor = DefaultFactor
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Delay returns the jittered delay before retry number attempt
// (0-based: attempt 0 paces the first retry).
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		d -= d * p.Jitter * p.Rand()
	}
	return time.Duration(d)
}

// Sleep blocks for Delay(attempt) or until ctx is done, whichever comes
// first, returning ctx's error if it was cut short. A cancelled context
// interrupts the sleep promptly — a drain or Ctrl-C must never wait out
// a 30-second backoff.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d := p.Delay(attempt)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
