package backoff

import (
	"context"
	"testing"
	"time"
)

// noJitter pins the schedule to its nominal delays.
func noJitter(p Policy) Policy {
	p.Jitter = 0
	return p
}

func TestDelayGrowsExponentiallyAndCaps(t *testing.T) {
	p := noJitter(Policy{Base: 100 * time.Millisecond, Max: 1 * time.Second, Factor: 2})
	want := []time.Duration{
		100 * time.Millisecond, // attempt 0
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second, // capped
		1 * time.Second, // stays capped
	}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayJitterStaysInRange(t *testing.T) {
	// With Rand pinned to its extremes the delay must span exactly
	// [delay*(1-Jitter), delay].
	base := Policy{Base: 1 * time.Second, Max: time.Minute, Factor: 2, Jitter: 0.5}

	lo := base
	lo.Rand = func() float64 { return 0.999999999 }
	hi := base
	hi.Rand = func() float64 { return 0 }

	if got := hi.Delay(0); got != 1*time.Second {
		t.Errorf("zero-jitter draw: Delay(0) = %v, want 1s", got)
	}
	if got := lo.Delay(0); got < 500*time.Millisecond || got > 1*time.Second {
		t.Errorf("max-jitter draw: Delay(0) = %v, want in [500ms, 1s]", got)
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	p.Rand = func() float64 { return 0 }
	if got := p.Delay(0); got != DefaultBase {
		t.Errorf("zero policy Delay(0) = %v, want %v", got, DefaultBase)
	}
	// Far out in the schedule the cap must hold.
	if got := p.Delay(50); got != DefaultMax {
		t.Errorf("zero policy Delay(50) = %v, want %v", got, DefaultMax)
	}
}

func TestDelayClampsOutOfRangeJitter(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute, Factor: 2, Jitter: 7,
		Rand: func() float64 { return 1 - 1e-12 }}
	if got := p.Delay(0); got < 0 || got > time.Second {
		t.Errorf("clamped jitter produced out-of-range delay %v", got)
	}
	n := Policy{Base: time.Second, Max: time.Minute, Factor: 2, Jitter: -3,
		Rand: func() float64 { return 0.5 }}
	if got := n.Delay(0); got != time.Second {
		t.Errorf("negative jitter should clamp to deterministic delay, got %v", got)
	}
}

func TestSleepCompletes(t *testing.T) {
	p := noJitter(Policy{Base: 1 * time.Millisecond, Max: time.Second, Factor: 2})
	if err := p.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
}

func TestSleepInterruptedPromptly(t *testing.T) {
	// A 30s nominal delay cancelled after 10ms must return in far less
	// than the delay — this pins the satellite requirement that
	// cancellation interrupts a backoff sleep promptly.
	p := noJitter(Policy{Base: 30 * time.Second, Max: time.Minute, Factor: 2})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Sleep(ctx, 0)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled Sleep took %v — not prompt", elapsed)
	}
}

func TestSleepOnDoneContextReturnsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := noJitter(Policy{Base: time.Hour, Max: time.Hour, Factor: 2})
	start := time.Now()
	if err := p.Sleep(ctx, 3); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep on a done context blocked")
	}
}
