// Package analysis characterizes memory-reference traces: footprints,
// sequential run lengths in the miss stream (the property that makes
// stream buffers work — the paper plots "how far streams continue on
// average" in Figure 4-3), and working-set curves. The tracestat command
// exposes it on trace files.
package analysis

import (
	"fmt"
	"math/bits"

	"jouppi/internal/cache"
	"jouppi/internal/memtrace"
)

// Summary captures a trace's aggregate shape.
type Summary struct {
	Accesses     uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// UniqueILines / UniqueDLines are distinct cache lines touched, at
	// the given line size; the corresponding footprints are in bytes.
	LineSize     int
	UniqueILines int
	UniqueDLines int
	IFootprint   int
	DFootprint   int
}

// Summarize scans the access stream once and fills a Summary. lineSize
// must be a positive power of two.
func Summarize(src memtrace.Source, lineSize int) (Summary, error) {
	if lineSize <= 0 || bits.OnesCount(uint(lineSize)) != 1 {
		return Summary{}, fmt.Errorf("analysis: line size %d is not a positive power of two", lineSize)
	}
	shift := uint(bits.TrailingZeros(uint(lineSize)))
	iLines := make(map[uint64]struct{})
	dLines := make(map[uint64]struct{})
	s := Summary{LineSize: lineSize}
	memtrace.Each(src, func(a memtrace.Access) {
		s.Accesses++
		la := uint64(a.Addr) >> shift
		switch a.Kind {
		case memtrace.Ifetch:
			s.Instructions++
			iLines[la] = struct{}{}
		case memtrace.Load:
			s.Loads++
			dLines[la] = struct{}{}
		case memtrace.Store:
			s.Stores++
			dLines[la] = struct{}{}
		}
	})
	s.UniqueILines = len(iLines)
	s.UniqueDLines = len(dLines)
	s.IFootprint = s.UniqueILines * lineSize
	s.DFootprint = s.UniqueDLines * lineSize
	return s, nil
}

// Histogram is a bounded histogram with an overflow bucket.
type Histogram struct {
	Buckets  []uint64 // Buckets[i] counts value i
	Overflow uint64
}

// NewHistogram builds a histogram covering values 0..n-1.
func NewHistogram(n int) *Histogram { return &Histogram{Buckets: make([]uint64, n)} }

// Add records one value.
func (h *Histogram) Add(v int) {
	if v >= 0 && v < len(h.Buckets) {
		h.Buckets[v]++
	} else {
		h.Overflow++
	}
}

// Total returns the number of recorded values.
func (h *Histogram) Total() uint64 {
	t := h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Mean returns the mean recorded value, counting overflow entries at the
// histogram's upper bound.
func (h *Histogram) Mean() float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	sum := float64(h.Overflow) * float64(len(h.Buckets))
	for v, c := range h.Buckets {
		sum += float64(v) * float64(c)
	}
	return sum / float64(total)
}

// CumulativeFraction returns, per bucket, the fraction of values ≤ i.
func (h *Histogram) CumulativeFraction() []float64 {
	out := make([]float64, len(h.Buckets))
	total := float64(h.Total())
	if total == 0 {
		return out
	}
	run := uint64(0)
	for i, b := range h.Buckets {
		run += b
		out[i] = float64(run) / total
	}
	return out
}

// MissRunLengths replays one side of the access stream through a direct-mapped
// cache of the given geometry and histograms the lengths of sequential
// line runs in its miss stream: a run of length k means k consecutive
// misses each one line after its predecessor. This is exactly the
// property a sequential stream buffer exploits; the histogram's mass
// tells how deep buffers need to be (paper §4.1).
func MissRunLengths(src memtrace.Source, instrSide bool, cacheSize, lineSize, maxRun int) (*Histogram, error) {
	cfg := cache.Config{Name: "probe", Size: cacheSize, LineSize: lineSize, Assoc: 1}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cache.MustNew(cfg)
	h := NewHistogram(maxRun)

	var (
		inRun    bool
		runLen   int
		lastMiss uint64
	)
	flush := func() {
		if inRun {
			h.Add(runLen)
			inRun = false
			runLen = 0
		}
	}
	memtrace.Each(src, func(a memtrace.Access) {
		if (a.Kind == memtrace.Ifetch) != instrSide {
			return
		}
		hit, _ := c.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		if hit {
			return
		}
		la := c.LineAddr(uint64(a.Addr))
		if inRun && la == lastMiss+1 {
			runLen++
		} else {
			flush()
			inRun = true
			runLen = 1
		}
		lastMiss = la
	})
	flush()
	return h, nil
}

// WorkingSetCurve returns, for each consecutive window of windowSize
// accesses (of either side), the number of distinct lines referenced in
// that window — the classic working-set measurement.
func WorkingSetCurve(src memtrace.Source, lineSize, windowSize int) ([]int, error) {
	if lineSize <= 0 || bits.OnesCount(uint(lineSize)) != 1 {
		return nil, fmt.Errorf("analysis: line size %d is not a positive power of two", lineSize)
	}
	if windowSize <= 0 {
		return nil, fmt.Errorf("analysis: window size %d must be positive", windowSize)
	}
	shift := uint(bits.TrailingZeros(uint(lineSize)))
	var curve []int
	seen := make(map[uint64]struct{}, windowSize)
	n := 0
	memtrace.Each(src, func(a memtrace.Access) {
		seen[uint64(a.Addr)>>shift] = struct{}{}
		n++
		if n == windowSize {
			curve = append(curve, len(seen))
			seen = make(map[uint64]struct{}, windowSize)
			n = 0
		}
	})
	if n > 0 {
		curve = append(curve, len(seen))
	}
	return curve, nil
}
