package analysis

import (
	"fmt"
	"math/bits"
)

// Mattson stack-distance analysis: because LRU is a stack algorithm, one
// pass over a trace yields the miss count of a fully-associative LRU
// cache of *every* capacity simultaneously. For each access, the reuse
// (stack) distance is the number of distinct lines referenced since the
// previous access to the same line; the access misses in any cache with
// fewer lines than that distance. This underlies the capacity/conflict
// discussions throughout the paper (a direct-mapped cache's conflict
// misses are exactly its misses in excess of the equal-size LRU curve).
//
// The implementation keeps the LRU stack as an order-statistic treap
// keyed by last-access time, giving O(log n) per access.

// StackDist computes reuse distances and distance histograms.
type StackDist struct {
	lineShift uint
	nodes     map[uint64]*sdNode // line address → its treap node
	root      *sdNode
	tick      uint64
	rng       uint64

	hist       *Histogram
	compulsory uint64
	accesses   uint64
}

type sdNode struct {
	key         uint64 // last-access tick; larger = more recent
	prio        uint64
	size        int // subtree size
	lineAddr    uint64
	left, right *sdNode
}

func size(n *sdNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *sdNode) update() { n.size = 1 + size(n.left) + size(n.right) }

// NewStackDist builds an analyzer for the given line size (a positive
// power of two). maxDist bounds the distance histogram; distances beyond
// it land in the overflow bucket but are still counted exactly in the
// miss-ratio curve for capacities ≤ maxDist.
func NewStackDist(lineSize, maxDist int) (*StackDist, error) {
	if lineSize <= 0 || bits.OnesCount(uint(lineSize)) != 1 {
		return nil, fmt.Errorf("analysis: line size %d is not a positive power of two", lineSize)
	}
	if maxDist <= 0 {
		return nil, fmt.Errorf("analysis: maxDist %d must be positive", maxDist)
	}
	return &StackDist{
		lineShift: uint(bits.TrailingZeros(uint(lineSize))),
		nodes:     make(map[uint64]*sdNode, 1<<12),
		rng:       0x9E3779B97F4A7C15,
		hist:      NewHistogram(maxDist + 1),
	}, nil
}

// MustNewStackDist is NewStackDist but panics on invalid parameters.
func MustNewStackDist(lineSize, maxDist int) *StackDist {
	sd, err := NewStackDist(lineSize, maxDist)
	if err != nil {
		panic(err)
	}
	return sd
}

func (sd *StackDist) nextPrio() uint64 {
	sd.rng ^= sd.rng << 13
	sd.rng ^= sd.rng >> 7
	sd.rng ^= sd.rng << 17
	return sd.rng
}

// split divides t into nodes with key < k and key ≥ k.
func split(t *sdNode, k uint64) (l, r *sdNode) {
	if t == nil {
		return nil, nil
	}
	if t.key < k {
		t.right, r = split(t.right, k)
		t.update()
		return t, r
	}
	l, t.left = split(t.left, k)
	t.update()
	return l, t
}

func merge(l, r *sdNode) *sdNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// countGreater returns the number of nodes with key > k.
func countGreater(t *sdNode, k uint64) int {
	n := 0
	for t != nil {
		if t.key > k {
			n += 1 + size(t.right)
			t = t.left
		} else {
			t = t.right
		}
	}
	return n
}

// remove deletes the node with exactly key k.
func remove(t *sdNode, k uint64) *sdNode {
	if t == nil {
		return nil
	}
	if t.key == k {
		return merge(t.left, t.right)
	}
	if k < t.key {
		t.left = remove(t.left, k)
	} else {
		t.right = remove(t.right, k)
	}
	t.update()
	return t
}

// insert adds node n (whose key must be larger than all present keys —
// access ticks are monotone, so it always lands at the right spine).
func insert(t, n *sdNode) *sdNode {
	if t == nil {
		return n
	}
	if n.prio > t.prio {
		n.left, n.right = split(t, n.key)
		n.update()
		return n
	}
	// n.key is the maximum, so it always descends right.
	t.right = insert(t.right, n)
	t.update()
	return t
}

// Access records one reference to addr and returns its reuse distance in
// lines, or -1 for a compulsory (first) reference.
func (sd *StackDist) Access(addr uint64) int {
	sd.accesses++
	sd.tick++
	la := addr >> sd.lineShift

	n, seen := sd.nodes[la]
	dist := -1
	if seen {
		dist = countGreater(sd.root, n.key)
		sd.root = remove(sd.root, n.key)
		sd.hist.Add(dist)
	} else {
		sd.compulsory++
		n = &sdNode{lineAddr: la, prio: sd.nextPrio()}
		sd.nodes[la] = n
	}
	n.key = sd.tick
	n.left, n.right = nil, nil
	n.size = 1
	sd.root = insert(sd.root, n)
	return dist
}

// Accesses returns the number of references processed.
func (sd *StackDist) Accesses() uint64 { return sd.accesses }

// Compulsory returns the number of first references.
func (sd *StackDist) Compulsory() uint64 { return sd.compulsory }

// Distances returns the reuse-distance histogram (bucket i = distance i;
// distance 0 means the line was the most recently used).
func (sd *StackDist) Distances() *Histogram { return sd.hist }

// MissRatio returns the miss ratio of a fully-associative LRU cache with
// the given capacity in lines: references whose reuse distance is ≥
// capacity miss, plus all compulsory references. capacity must not exceed
// the analyzer's maxDist bound.
func (sd *StackDist) MissRatio(capacityLines int) (float64, error) {
	if capacityLines <= 0 {
		return 0, fmt.Errorf("analysis: capacity %d must be positive", capacityLines)
	}
	if capacityLines > len(sd.hist.Buckets)-1 {
		return 0, fmt.Errorf("analysis: capacity %d exceeds the maxDist bound %d",
			capacityLines, len(sd.hist.Buckets)-1)
	}
	if sd.accesses == 0 {
		return 0, nil
	}
	misses := sd.compulsory + sd.hist.Overflow
	for d := capacityLines; d < len(sd.hist.Buckets); d++ {
		misses += sd.hist.Buckets[d]
	}
	return float64(misses) / float64(sd.accesses), nil
}

// MissRatioCurve evaluates MissRatio at each capacity.
func (sd *StackDist) MissRatioCurve(capacities []int) ([]float64, error) {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		r, err := sd.MissRatio(c)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
