package analysis

import (
	"testing"

	"jouppi/internal/memtrace"
	"jouppi/internal/workload"
)

func TestConflictHotspotsAlternatingPair(t *testing.T) {
	// Two lines 4KB apart alternate: all misses land in one set, caused
	// by exactly two contending lines.
	tr := memtrace.NewTrace(0)
	for i := 0; i < 100; i++ {
		tr.Append(memtrace.Access{Addr: 0x0200, Kind: memtrace.Load})
		tr.Append(memtrace.Access{Addr: 0x1200, Kind: memtrace.Load})
	}
	hs, err := ConflictHotspots(tr.Source(), false, 4096, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 {
		t.Fatalf("hotspots = %d, want exactly 1", len(hs))
	}
	h := hs[0]
	if h.Set != 0x200/16 {
		t.Errorf("hotspot set = %d, want %d", h.Set, 0x200/16)
	}
	if h.Misses != 200 {
		t.Errorf("hotspot misses = %d, want 200", h.Misses)
	}
	if h.Lines != 2 || len(h.TopLines) != 2 {
		t.Errorf("hotspot lines = %d (%v), want 2", h.Lines, h.TopLines)
	}
	want := map[uint64]bool{0x0200 / 16: true, 0x1200 / 16: true}
	for _, la := range h.TopLines {
		if !want[la] {
			t.Errorf("unexpected top line %#x", la)
		}
	}
}

func TestConflictHotspotsEmptyAndValidation(t *testing.T) {
	if _, err := ConflictHotspots(memtrace.NewTrace(0).Source(), false, 100, 16, 3); err == nil {
		t.Error("accepted bad geometry")
	}
	hs, err := ConflictHotspots(memtrace.NewTrace(0).Source(), false, 4096, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 0 {
		t.Errorf("empty trace has hotspots: %v", hs)
	}
}

func TestConflictHotspotsSideSeparation(t *testing.T) {
	tr := memtrace.NewTrace(0)
	tr.Append(memtrace.Access{Addr: 0x0100, Kind: memtrace.Ifetch})
	tr.Append(memtrace.Access{Addr: 0x9100, Kind: memtrace.Load})
	hi, err := ConflictHotspots(tr.Source(), true, 4096, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := ConflictHotspots(tr.Source(), false, 4096, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hi) != 1 || len(hd) != 1 {
		t.Fatalf("sides not separated: I=%d D=%d", len(hi), len(hd))
	}
}

func TestMetHotspotsMatchItsDesign(t *testing.T) {
	// met's conflicts come from the layerA/layerB pair at offset 0x200
	// mod 4096: its hottest data sets should have exactly 2 dominant
	// contending lines each.
	tr := workload.GenerateTrace(workload.Met(), 0.05)
	hs, err := ConflictHotspots(tr.Source(), false, 4096, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) == 0 {
		t.Fatal("no hotspots found")
	}
	top := hs[0]
	if top.Lines < 2 {
		t.Errorf("top hotspot has %d contending lines, want ≥ 2", top.Lines)
	}
	// The top hotspot's set must fall inside the colliding window
	// (offset 0x200.. in each 4KB frame → sets 32..96 with 16B lines).
	if top.Set < 32 || top.Set > 96 {
		t.Errorf("top hotspot set %d outside met's colliding window", top.Set)
	}
}
