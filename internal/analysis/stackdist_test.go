package analysis

import (
	"math"
	"math/rand"
	"testing"

	"jouppi/internal/cache"
	"jouppi/internal/memtrace"
	"jouppi/internal/workload"
)

func TestStackDistValidation(t *testing.T) {
	if _, err := NewStackDist(24, 100); err == nil {
		t.Error("accepted bad line size")
	}
	if _, err := NewStackDist(16, 0); err == nil {
		t.Error("accepted zero maxDist")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewStackDist did not panic")
		}
	}()
	MustNewStackDist(0, 10)
}

func TestStackDistBasics(t *testing.T) {
	sd := MustNewStackDist(16, 64)
	// First references are compulsory.
	if d := sd.Access(0x000); d != -1 {
		t.Errorf("first ref distance = %d, want -1", d)
	}
	if d := sd.Access(0x100); d != -1 {
		t.Errorf("first ref distance = %d, want -1", d)
	}
	// Re-reference of 0x100: most recently used → distance 0.
	if d := sd.Access(0x104); d != 0 {
		t.Errorf("MRU re-ref distance = %d, want 0", d)
	}
	// 0x000 is now one distinct line away.
	if d := sd.Access(0x008); d != 1 {
		t.Errorf("re-ref distance = %d, want 1", d)
	}
	if sd.Compulsory() != 2 || sd.Accesses() != 4 {
		t.Errorf("compulsory %d, accesses %d", sd.Compulsory(), sd.Accesses())
	}
}

func TestStackDistCyclicSweep(t *testing.T) {
	// Sweeping N distinct lines cyclically: after the first pass, every
	// access has distance N-1.
	const n = 10
	sd := MustNewStackDist(16, 64)
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < n; i++ {
			d := sd.Access(uint64(i * 16))
			if pass == 0 {
				if d != -1 {
					t.Fatalf("pass 0 line %d: distance %d, want -1", i, d)
				}
			} else if d != n-1 {
				t.Fatalf("pass %d line %d: distance %d, want %d", pass, i, d, n-1)
			}
		}
	}
	// Miss ratio: capacity ≥ n hits everything after the compulsory
	// pass; capacity < n misses everything.
	mrSmall, err := sd.MissRatio(n - 1)
	if err != nil {
		t.Fatal(err)
	}
	if mrSmall != 1.0 {
		t.Errorf("capacity %d miss ratio = %v, want 1.0", n-1, mrSmall)
	}
	mrBig, err := sd.MissRatio(n)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) / float64(4*n)
	if math.Abs(mrBig-want) > 1e-12 {
		t.Errorf("capacity %d miss ratio = %v, want %v", n, mrBig, want)
	}
}

func TestStackDistMissRatioErrors(t *testing.T) {
	sd := MustNewStackDist(16, 8)
	if _, err := sd.MissRatio(0); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := sd.MissRatio(9); err == nil {
		t.Error("accepted capacity beyond maxDist")
	}
	if r, err := sd.MissRatio(4); err != nil || r != 0 {
		t.Errorf("empty analyzer ratio = %v, %v", r, err)
	}
}

// The defining cross-check: the Mattson curve must agree exactly with
// direct simulation of fully-associative LRU caches at every capacity.
func TestStackDistMatchesFullyAssociativeSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sd := MustNewStackDist(16, 1024)
	capacities := []int{2, 4, 8, 16, 64, 256}
	caches := make([]*cache.Cache, len(capacities))
	misses := make([]uint64, len(capacities))
	for i, c := range capacities {
		caches[i] = cache.MustNew(cache.Config{
			Size: c * 16, LineSize: 16, Assoc: cache.FullyAssociative})
	}
	const n = 40000
	addr := uint64(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			addr = uint64(rng.Intn(1 << 14))
		default:
			addr += 16
		}
		sd.Access(addr)
		for ci := range caches {
			if hit, _ := caches[ci].Access(addr, false); !hit {
				misses[ci]++
			}
		}
	}
	for ci, c := range capacities {
		want := float64(misses[ci]) / float64(n)
		got, err := sd.MissRatio(c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("capacity %d: stack-distance ratio %v != simulated %v", c, got, want)
		}
	}
}

// Miss ratio is non-increasing in capacity (the stack property itself).
func TestStackDistCurveMonotone(t *testing.T) {
	sd := MustNewStackDist(16, 2048)
	tr := workload.GenerateTrace(workload.Met(), 0.05)
	tr.Each(func(a memtrace.Access) {
		if a.Kind.IsData() {
			sd.Access(uint64(a.Addr))
		}
	})
	caps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	curve, err := sd.MissRatioCurve(caps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatalf("curve not monotone at capacity %d: %v > %v", caps[i], curve[i], curve[i-1])
		}
	}
	if curve[0] <= curve[len(curve)-1] {
		t.Error("curve is flat; expected decay with capacity")
	}
}

func BenchmarkStackDistAccess(b *testing.B) {
	sd := MustNewStackDist(16, 4096)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd.Access(addrs[i&(len(addrs)-1)])
	}
}
