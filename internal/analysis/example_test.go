package analysis_test

import (
	"fmt"

	"jouppi/internal/analysis"
)

// One Mattson stack-distance pass yields the fully-associative LRU miss
// ratio at every cache size simultaneously.
func ExampleStackDist() {
	sd := analysis.MustNewStackDist(16, 64)
	// Sweep 8 lines cyclically, four passes.
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 8; i++ {
			sd.Access(uint64(i * 16))
		}
	}
	small, _ := sd.MissRatio(4) // too small: every access misses
	big, _ := sd.MissRatio(8)   // fits: only the first pass misses
	fmt.Printf("4-line LRU miss ratio: %.2f\n", small)
	fmt.Printf("8-line LRU miss ratio: %.2f\n", big)
	// Output:
	// 4-line LRU miss ratio: 1.00
	// 8-line LRU miss ratio: 0.25
}
