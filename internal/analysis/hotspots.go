package analysis

import (
	"sort"

	"jouppi/internal/cache"
	"jouppi/internal/memtrace"
)

// Hotspot describes one heavily conflicting direct-mapped cache set: how
// many misses it took and which lines contend for it. This is the
// diagnostic view behind the paper's §3 discussion — a workload whose
// misses concentrate in a few sets with few contending lines each is
// exactly what small miss/victim caches fix.
type Hotspot struct {
	// Set is the cache set index.
	Set int
	// Misses is the number of misses that mapped to this set.
	Misses uint64
	// Lines is the number of distinct lines that missed in this set.
	Lines int
	// TopLines are the most frequently missing line addresses, most
	// frequent first (up to four).
	TopLines []uint64
}

// ConflictHotspots replays one side of the access stream through a
// direct-mapped cache and returns the topK sets ranked by miss count, with
// the lines contending for each.
func ConflictHotspots(src memtrace.Source, instrSide bool, cacheSize, lineSize, topK int) ([]Hotspot, error) {
	cfg := cache.Config{Name: "probe", Size: cacheSize, LineSize: lineSize, Assoc: 1}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cache.MustNew(cfg)
	numSets := cfg.Sets()

	setMisses := make([]uint64, numSets)
	lineMisses := make([]map[uint64]uint64, numSets)

	memtrace.Each(src, func(a memtrace.Access) {
		if (a.Kind == memtrace.Ifetch) != instrSide {
			return
		}
		hit, _ := c.Access(uint64(a.Addr), a.Kind == memtrace.Store)
		if hit {
			return
		}
		la := c.LineAddr(uint64(a.Addr))
		set := int(la) & (numSets - 1)
		setMisses[set]++
		if lineMisses[set] == nil {
			lineMisses[set] = make(map[uint64]uint64, 4)
		}
		lineMisses[set][la]++
	})

	order := make([]int, numSets)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if setMisses[order[i]] != setMisses[order[j]] {
			return setMisses[order[i]] > setMisses[order[j]]
		}
		return order[i] < order[j]
	})

	if topK > numSets {
		topK = numSets
	}
	var out []Hotspot
	for _, set := range order[:topK] {
		if setMisses[set] == 0 {
			break
		}
		h := Hotspot{Set: set, Misses: setMisses[set], Lines: len(lineMisses[set])}
		type lc struct {
			la uint64
			n  uint64
		}
		var lines []lc
		for la, n := range lineMisses[set] {
			lines = append(lines, lc{la, n})
		}
		sort.Slice(lines, func(i, j int) bool {
			if lines[i].n != lines[j].n {
				return lines[i].n > lines[j].n
			}
			return lines[i].la < lines[j].la
		})
		for i := 0; i < len(lines) && i < 4; i++ {
			h.TopLines = append(h.TopLines, lines[i].la)
		}
		out = append(out, h)
	}
	return out, nil
}
