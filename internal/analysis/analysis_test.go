package analysis

import (
	"testing"

	"jouppi/internal/memtrace"
	"jouppi/internal/workload"
)

func mkTrace(accs ...memtrace.Access) *memtrace.Trace {
	tr := memtrace.NewTrace(len(accs))
	for _, a := range accs {
		tr.Append(a)
	}
	return tr
}

func TestSummarize(t *testing.T) {
	tr := mkTrace(
		memtrace.Access{Addr: 0x1000, Kind: memtrace.Ifetch},
		memtrace.Access{Addr: 0x1004, Kind: memtrace.Ifetch}, // same line
		memtrace.Access{Addr: 0x2000, Kind: memtrace.Load},
		memtrace.Access{Addr: 0x2010, Kind: memtrace.Store}, // new line
	)
	s, err := Summarize(tr.Source(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Accesses != 4 || s.Instructions != 2 || s.Loads != 1 || s.Stores != 1 {
		t.Errorf("counts: %+v", s)
	}
	if s.UniqueILines != 1 || s.UniqueDLines != 2 {
		t.Errorf("unique lines: %+v", s)
	}
	if s.IFootprint != 16 || s.DFootprint != 32 {
		t.Errorf("footprints: %+v", s)
	}
}

func TestSummarizeBadLineSize(t *testing.T) {
	if _, err := Summarize(memtrace.NewTrace(0).Source(), 0); err == nil {
		t.Error("accepted zero line size")
	}
	if _, err := Summarize(memtrace.NewTrace(0).Source(), 24); err == nil {
		t.Error("accepted non-power-of-two line size")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 3, 9, -1} {
		h.Add(v)
	}
	if h.Buckets[1] != 2 || h.Buckets[3] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Overflow != 2 { // 9 and -1
		t.Errorf("overflow = %d", h.Overflow)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	cum := h.CumulativeFraction()
	if cum[3] <= cum[0] {
		t.Errorf("cumulative not increasing: %v", cum)
	}
	if NewHistogram(2).Mean() != 0 {
		t.Error("empty mean nonzero")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Add(2)
	h.Add(4)
	if got := h.Mean(); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
}

func TestMissRunLengthsPureSequential(t *testing.T) {
	// A pure sequential sweep far beyond cache size: one long run.
	tr := memtrace.NewTrace(0)
	for i := 0; i < 100; i++ {
		tr.Append(memtrace.Access{Addr: memtrace.Addr(0x10000 + i*16), Kind: memtrace.Load})
	}
	h, err := MissRunLengths(tr.Source(), false, 256, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1 {
		t.Fatalf("runs = %d, want 1", h.Total())
	}
	if h.Overflow != 1 { // 100-line run > 64-bucket cap
		t.Errorf("long run not in overflow: %+v", h)
	}
}

func TestMissRunLengthsAlternating(t *testing.T) {
	// Alternating conflicting lines: every miss breaks the sequence, so
	// all runs have length 1.
	tr := memtrace.NewTrace(0)
	for i := 0; i < 50; i++ {
		tr.Append(memtrace.Access{Addr: 0x0000, Kind: memtrace.Load})
		tr.Append(memtrace.Access{Addr: 0x1000, Kind: memtrace.Load})
	}
	h, err := MissRunLengths(tr.Source(), false, 256, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets[1] != h.Total() {
		t.Errorf("expected all runs length 1: %+v", h)
	}
	if h.Total() < 90 {
		t.Errorf("expected ≈100 runs, got %d", h.Total())
	}
}

func TestMissRunLengthsSideFilter(t *testing.T) {
	tr := mkTrace(
		memtrace.Access{Addr: 0x1000, Kind: memtrace.Ifetch},
		memtrace.Access{Addr: 0x9000, Kind: memtrace.Load},
	)
	hi, err := MissRunLengths(tr.Source(), true, 256, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := MissRunLengths(tr.Source(), false, 256, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Total() != 1 || hd.Total() != 1 {
		t.Errorf("side filter wrong: I=%d D=%d", hi.Total(), hd.Total())
	}
}

func TestMissRunLengthsBadGeometry(t *testing.T) {
	if _, err := MissRunLengths(memtrace.NewTrace(0).Source(), false, 100, 16, 8); err == nil {
		t.Error("accepted invalid cache size")
	}
}

func TestWorkingSetCurve(t *testing.T) {
	tr := memtrace.NewTrace(0)
	// Window 1: 4 accesses to 2 lines; window 2: 4 accesses to 4 lines.
	for i := 0; i < 4; i++ {
		tr.Append(memtrace.Access{Addr: memtrace.Addr(i % 2 * 16), Kind: memtrace.Load})
	}
	for i := 0; i < 4; i++ {
		tr.Append(memtrace.Access{Addr: memtrace.Addr(0x1000 + i*16), Kind: memtrace.Load})
	}
	curve, err := WorkingSetCurve(tr.Source(), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 || curve[0] != 2 || curve[1] != 4 {
		t.Errorf("curve = %v, want [2 4]", curve)
	}
	// Partial final window.
	tr.Append(memtrace.Access{Addr: 0x9000, Kind: memtrace.Load})
	curve, err = WorkingSetCurve(tr.Source(), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 || curve[2] != 1 {
		t.Errorf("partial window curve = %v", curve)
	}
}

func TestWorkingSetCurveValidation(t *testing.T) {
	if _, err := WorkingSetCurve(memtrace.NewTrace(0).Source(), 13, 4); err == nil {
		t.Error("accepted bad line size")
	}
	if _, err := WorkingSetCurve(memtrace.NewTrace(0).Source(), 16, 0); err == nil {
		t.Error("accepted zero window")
	}
}

// The paper's workloads should show the expected run-length character:
// linpack's data miss stream is long sequential runs; met's is short.
func TestWorkloadRunLengthCharacter(t *testing.T) {
	lin := workload.GenerateTrace(workload.MustByName("linpack"), 0.05)
	met := workload.GenerateTrace(workload.MustByName("met"), 0.05)
	hLin, err := MissRunLengths(lin.Source(), false, 4096, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	hMet, err := MissRunLengths(met.Source(), false, 4096, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hLin.Mean() <= hMet.Mean() {
		t.Errorf("linpack mean run %.2f should exceed met %.2f", hLin.Mean(), hMet.Mean())
	}
	if hLin.Mean() < 2 {
		t.Errorf("linpack mean run %.2f unexpectedly short", hLin.Mean())
	}
}
