// Package prefetch implements the prior-art prefetch techniques the paper
// compares stream buffers against (§4, after Smith 1982):
//
//   - prefetch on miss — a miss for line L also fetches L+1,
//   - tagged prefetch — every line carries a tag bit, cleared when the
//     line arrives by prefetch and set on first use; a 0→1 transition
//     prefetches the successor line,
//   - prefetch always — every reference to line L prefetches L+1.
//
// Unlike stream buffers, these techniques place prefetched data directly
// in the cache (and so can pollute it), and they prefetch at most one line
// ahead, which the paper shows cannot hide large second-level latencies.
//
// The package also provides the Figure 4-1 instrumentation: a histogram of
// the number of instruction issues between a prefetch and the first demand
// reference to the prefetched line.
package prefetch

import (
	"fmt"

	"jouppi/internal/cache"
)

// Policy selects the prefetch algorithm.
type Policy uint8

// The three §4 baseline policies.
const (
	OnMiss Policy = iota
	Tagged
	Always
)

// String returns the policy name as used in the paper.
func (p Policy) String() string {
	switch p {
	case OnMiss:
		return "prefetch-on-miss"
	case Tagged:
		return "tagged-prefetch"
	case Always:
		return "prefetch-always"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Timing carries the cycle costs. Zero values default to the paper's
// baseline (24-cycle miss penalty and fill latency).
type Timing struct {
	MissPenalty int
	FillLatency int
}

func (t Timing) withDefaults() Timing {
	if t.MissPenalty == 0 {
		t.MissPenalty = 24
	}
	if t.FillLatency == 0 {
		t.FillLatency = t.MissPenalty
	}
	return t
}

// Stats accumulates prefetching front-end activity.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64 // demand misses (prefetch hits are not misses)

	// PrefetchIssued counts prefetch fills; PrefetchUsed counts
	// prefetched lines that later received a demand reference;
	// PrefetchEvictedUnused counts prefetched lines displaced before any
	// use (cache pollution).
	PrefetchIssued        uint64
	PrefetchUsed          uint64
	PrefetchEvictedUnused uint64

	// InFlightHits counts demand hits on lines whose prefetch had not
	// yet completed; the access stalls for the residual latency.
	InFlightHits uint64

	StallCycles uint64
}

// MissRate returns demand misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// TimeToUse is the Figure 4-1 histogram: bucket i counts prefetched lines
// first used exactly i instruction issues after the prefetch was issued.
type TimeToUse struct {
	Buckets  []uint64
	Overflow uint64 // first used later than len(Buckets)-1 issues
	Never    uint64 // evicted without use (filled in by the front-end)
}

// NewTimeToUse builds a histogram with buckets 0..n-1.
func NewTimeToUse(n int) *TimeToUse { return &TimeToUse{Buckets: make([]uint64, n)} }

func (h *TimeToUse) record(delta uint64) {
	if h == nil {
		return
	}
	if delta < uint64(len(h.Buckets)) {
		h.Buckets[delta]++
	} else {
		h.Overflow++
	}
}

// Total returns the number of used prefetches recorded.
func (h *TimeToUse) Total() uint64 {
	t := h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// CumulativePercent returns, for each bucket i, the percentage of used
// prefetches that were needed within i instruction issues.
func (h *TimeToUse) CumulativePercent() []float64 {
	out := make([]float64, len(h.Buckets))
	total := float64(h.Total())
	if total == 0 {
		return out
	}
	running := uint64(0)
	for i, b := range h.Buckets {
		running += b
		out[i] = float64(running) / total * 100
	}
	return out
}

// lineMeta is the per-resident-line bookkeeping.
type lineMeta struct {
	tagBit   bool   // tagged prefetch: set on first use
	arrived  bool   // line came in by prefetch and has not been used yet
	issuedAt uint64 // prefetch issue time
	availAt  uint64 // fill completion time
}

// FrontEnd is a first-level cache with one of the baseline prefetch
// policies. Prefetched lines are installed directly into the cache.
type FrontEnd struct {
	l1     *cache.Cache
	policy Policy
	timing Timing
	stats  Stats
	meta   map[uint64]*lineMeta
	now    uint64
	hist   *TimeToUse
	shift  uint
}

// New builds a prefetching front-end over l1. hist may be nil when the
// Figure 4-1 time-to-use distribution is not wanted.
func New(l1 *cache.Cache, policy Policy, timing Timing, hist *TimeToUse) *FrontEnd {
	shift := uint(0)
	for ls := l1.LineSize(); ls > 1; ls >>= 1 {
		shift++
	}
	return &FrontEnd{
		l1:     l1,
		policy: policy,
		timing: timing.withDefaults(),
		meta:   make(map[uint64]*lineMeta),
		hist:   hist,
		shift:  shift,
	}
}

// Access performs one reference.
func (f *FrontEnd) Access(addr uint64, write bool) (hit bool, stall int) {
	f.stats.Accesses++
	f.now++
	la := f.l1.LineAddr(addr)

	if f.l1.Probe(addr, write) {
		f.stats.Hits++
		m := f.meta[la]
		if m != nil {
			if m.arrived {
				// First demand use of a prefetched line.
				f.stats.PrefetchUsed++
				f.hist.record(f.now - m.issuedAt)
				m.arrived = false
			}
			if m.availAt > f.now {
				stall = int(m.availAt - f.now)
				f.stats.InFlightHits++
				f.stats.StallCycles += uint64(stall)
				f.now += uint64(stall)
			}
			if !m.tagBit {
				m.tagBit = true
				if f.policy == Tagged {
					f.prefetch(la + 1)
				}
			}
		}
		if f.policy == Always {
			f.prefetch(la + 1)
		}
		return true, stall
	}

	// Demand miss.
	f.stats.Misses++
	stall = f.timing.MissPenalty
	f.stats.StallCycles += uint64(stall)
	f.now += uint64(stall)
	f.install(la, write, false)
	// A demand-fetched line is referenced immediately: under tagged
	// prefetch that is a 0→1 transition, and on-miss prefetches the
	// successor by definition. Prefetch-always also fetches ahead.
	f.prefetch(la + 1)
	return false, stall
}

// prefetch installs la into the cache as an unused prefetched line, unless
// it is already resident.
func (f *FrontEnd) prefetch(la uint64) {
	if f.l1.Contains(la << f.shift) {
		return
	}
	f.stats.PrefetchIssued++
	f.install(la, false, true)
}

// install fills la and maintains metadata for it and the displaced victim.
func (f *FrontEnd) install(la uint64, write, prefetched bool) {
	addr := la << f.shift
	dirty := write && f.l1.Config().WritePolicy == cache.WriteBack
	victim := f.l1.Fill(addr, dirty)
	if victim.Valid {
		if vm := f.meta[victim.LineAddr]; vm != nil {
			if vm.arrived {
				f.stats.PrefetchEvictedUnused++
				if f.hist != nil {
					f.hist.Never++
				}
			}
			delete(f.meta, victim.LineAddr)
		}
	}
	m := &lineMeta{
		tagBit:   !prefetched, // demand lines count as used
		arrived:  prefetched,
		issuedAt: f.now,
		availAt:  f.now,
	}
	if prefetched {
		m.availAt = f.now + uint64(f.timing.FillLatency)
	}
	f.meta[la] = m
}

// Stats returns accumulated counters.
func (f *FrontEnd) Stats() Stats { return f.stats }

// Cache exposes the underlying cache.
func (f *FrontEnd) Cache() *cache.Cache { return f.l1 }

// Name identifies the configuration.
func (f *FrontEnd) Name() string { return f.policy.String() }
