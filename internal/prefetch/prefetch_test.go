package prefetch

import (
	"math/rand"
	"testing"

	"jouppi/internal/cache"
)

func newL1() *cache.Cache {
	return cache.MustNew(cache.Config{Size: 256, LineSize: 16, Assoc: 1})
}

func fastTiming() Timing { return Timing{MissPenalty: 24, FillLatency: 1} }

func TestPolicyString(t *testing.T) {
	if OnMiss.String() != "prefetch-on-miss" || Tagged.String() != "tagged-prefetch" ||
		Always.String() != "prefetch-always" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestTimingDefaults(t *testing.T) {
	tm := Timing{}.withDefaults()
	if tm.MissPenalty != 24 || tm.FillLatency != 24 {
		t.Errorf("defaults = %+v", tm)
	}
}

func TestOnMissHalvesSequentialMisses(t *testing.T) {
	// §4: "Prefetch on miss ... can cut the number of misses for a purely
	// sequential reference stream in half." One access per line, far
	// beyond cache capacity.
	fe := New(newL1(), OnMiss, fastTiming(), nil)
	const n = 400
	for i := 0; i < n; i++ {
		fe.Access(uint64(0x100000+i*16), false)
	}
	st := fe.Stats()
	if lo, hi := uint64(n/2-2), uint64(n/2+2); st.Misses < lo || st.Misses > hi {
		t.Errorf("on-miss sequential misses = %d, want ≈ %d", st.Misses, n/2)
	}
}

func TestTaggedRemovesSequentialMisses(t *testing.T) {
	// §4: "Tagged prefetch can reduce the number of misses in a purely
	// sequential reference stream to zero, if fetching is fast enough."
	fe := New(newL1(), Tagged, fastTiming(), nil)
	const n = 400
	for i := 0; i < n; i++ {
		fe.Access(uint64(0x100000+i*16), false)
		// Several references per line so the tag transition fires before
		// the next line is needed.
		fe.Access(uint64(0x100000+i*16+4), false)
		fe.Access(uint64(0x100000+i*16+8), false)
	}
	st := fe.Stats()
	if st.Misses != 1 {
		t.Errorf("tagged sequential misses = %d, want 1", st.Misses)
	}
}

func TestAlwaysRemovesSequentialMisses(t *testing.T) {
	fe := New(newL1(), Always, fastTiming(), nil)
	const n = 400
	for i := 0; i < n; i++ {
		fe.Access(uint64(0x100000+i*16), false)
	}
	if st := fe.Stats(); st.Misses != 1 {
		t.Errorf("always sequential misses = %d, want 1", st.Misses)
	}
}

func TestOnMissOnlyPrefetchesOnMiss(t *testing.T) {
	fe := New(newL1(), OnMiss, fastTiming(), nil)
	fe.Access(0x1000, false) // miss → prefetch 0x1010
	issued := fe.Stats().PrefetchIssued
	if issued != 1 {
		t.Fatalf("prefetches after miss = %d, want 1", issued)
	}
	for i := 0; i < 10; i++ {
		fe.Access(0x1004, false) // hits must not prefetch
	}
	if got := fe.Stats().PrefetchIssued; got != issued {
		t.Errorf("hits issued %d extra prefetches", got-issued)
	}
}

func TestTaggedPrefetchesOncePerLineUse(t *testing.T) {
	fe := New(newL1(), Tagged, fastTiming(), nil)
	fe.Access(0x1000, false) // miss → prefetch 0x1010 (tag 0)
	fe.Access(0x1010, false) // first use → 0→1 → prefetch 0x1020
	before := fe.Stats().PrefetchIssued
	fe.Access(0x1014, false) // second use of same line: no transition
	fe.Access(0x1018, false)
	if got := fe.Stats().PrefetchIssued; got != before {
		t.Errorf("repeat uses issued %d extra prefetches", got-before)
	}
}

func TestPrefetchSkipsResidentLines(t *testing.T) {
	fe := New(newL1(), Always, fastTiming(), nil)
	fe.Access(0x1000, false)
	fe.Access(0x1010, false)
	before := fe.Stats().PrefetchIssued
	fe.Access(0x1000, false) // successor 0x1010 already resident
	if got := fe.Stats().PrefetchIssued; got != before {
		t.Errorf("prefetched a resident line (%d extra)", got-before)
	}
}

func TestInFlightHitStalls(t *testing.T) {
	tm := Timing{MissPenalty: 24, FillLatency: 12}
	fe := New(newL1(), OnMiss, tm, nil)
	fe.Access(0x1000, false)
	// Next access arrives 1 issue later; the prefetch needs 12 cycles.
	hit, stall := fe.Access(0x1010, false)
	if !hit {
		t.Fatal("prefetched line missed")
	}
	if stall <= 0 || stall >= tm.MissPenalty {
		t.Errorf("in-flight stall = %d, want in (0, %d)", stall, tm.MissPenalty)
	}
	if fe.Stats().InFlightHits != 1 {
		t.Errorf("in-flight hits = %d, want 1", fe.Stats().InFlightHits)
	}
}

func TestPollutionCounting(t *testing.T) {
	// Prefetch a line into a conflicting set and displace it before use.
	fe := New(newL1(), OnMiss, fastTiming(), nil)
	fe.Access(0x1000, false) // prefetches 0x1010
	fe.Access(0x2010, false) // same set as 0x1010 in a 256B cache → displaces it
	if got := fe.Stats().PrefetchEvictedUnused; got != 1 {
		t.Errorf("evicted-unused = %d, want 1", got)
	}
}

func TestTimeToUseHistogram(t *testing.T) {
	h := NewTimeToUse(8)
	fe := New(newL1(), OnMiss, fastTiming(), h)
	fe.Access(0x1000, false) // miss at t=1; prefetch 0x1010 issued at t=25 (after stall)
	fe.Access(0x1004, false)
	fe.Access(0x1008, false)
	fe.Access(0x1010, false) // first use of the prefetched line
	if h.Total() != 1 {
		t.Fatalf("histogram total = %d, want 1", h.Total())
	}
	// The prefetch was issued during the miss (after the stall advanced
	// the clock); the three subsequent accesses put the use 3 issues
	// later.
	if h.Buckets[3] != 1 {
		t.Errorf("histogram = %+v, want delta-3 recorded", h.Buckets)
	}
	cum := h.CumulativePercent()
	if cum[2] != 0 || cum[3] != 100 || cum[7] != 100 {
		t.Errorf("cumulative = %v", cum)
	}
}

func TestTimeToUseOverflowAndNever(t *testing.T) {
	h := NewTimeToUse(2)
	fe := New(newL1(), OnMiss, fastTiming(), h)
	fe.Access(0x1000, false) // prefetch 0x1010
	for i := 0; i < 10; i++ {
		fe.Access(0x1004, false)
	}
	fe.Access(0x1010, false) // used long after issue → overflow bucket
	if h.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow)
	}
	fe.Access(0x3000, false) // prefetch 0x3010
	fe.Access(0x2010, false) // displace 0x3010 unused
	if h.Never != 1 {
		t.Errorf("never = %d, want 1", h.Never)
	}
	empty := NewTimeToUse(4)
	if got := empty.CumulativePercent(); got[3] != 0 {
		t.Errorf("empty cumulative = %v", got)
	}
}

func TestNilHistogramSafe(t *testing.T) {
	fe := New(newL1(), Tagged, fastTiming(), nil)
	for i := 0; i < 100; i++ {
		fe.Access(uint64(0x1000+i*16), false)
	}
	// No panic = pass.
}

// Ordering property: on sequential streams, always ≤ tagged ≤ on-miss ≤
// baseline in demand misses.
func TestPolicyOrderingOnSequentialStream(t *testing.T) {
	run := func(p Policy) uint64 {
		fe := New(newL1(), p, fastTiming(), nil)
		for i := 0; i < 500; i++ {
			fe.Access(uint64(0x100000+i*16), false)
			fe.Access(uint64(0x100000+i*16+8), false)
		}
		return fe.Stats().Misses
	}
	base := cache.MustNew(cache.Config{Size: 256, LineSize: 16, Assoc: 1})
	var baseMisses uint64
	for i := 0; i < 500; i++ {
		for _, off := range []int{0, 8} {
			if hit, _ := base.Access(uint64(0x100000+i*16+off), false); !hit {
				baseMisses++
			}
		}
	}
	om, tg, al := run(OnMiss), run(Tagged), run(Always)
	if !(al <= tg && tg <= om && om <= baseMisses) {
		t.Errorf("ordering violated: always=%d tagged=%d onmiss=%d baseline=%d",
			al, tg, om, baseMisses)
	}
}

func TestMissRateAndAccessors(t *testing.T) {
	fe := New(newL1(), OnMiss, fastTiming(), nil)
	if fe.Name() != "prefetch-on-miss" {
		t.Errorf("name = %q", fe.Name())
	}
	if fe.Cache() == nil {
		t.Error("nil cache")
	}
	if fe.Stats().MissRate() != 0 {
		t.Error("idle miss rate nonzero")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		fe.Access(uint64(rng.Intn(1<<16)), false)
	}
	st := fe.Stats()
	if st.MissRate() <= 0 || st.MissRate() > 1 {
		t.Errorf("miss rate = %v", st.MissRate())
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", st.Hits, st.Misses, st.Accesses)
	}
}
