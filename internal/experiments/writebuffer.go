package experiments

import (
	"fmt"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/textplot"
)

// AblationWriteBuffer is the dynamic counterpart of ablation-bandwidth:
// it actually runs the write-through data side through coalescing write
// buffers of several depths against a pipelined (4-cycle) and an
// unpipelined (16-cycle) second-level write port, and reports the store
// stall cycles per access. §2's claim — that an unpipelined L2 cannot
// absorb write-through store traffic — shows up as stalls no reasonable
// buffer depth can hide.
func AblationWriteBuffer() Experiment {
	return Experiment{
		ID:    "ablation-writebuffer",
		Title: "Ablation: write buffer depth vs L2 write-port speed",
		Run: func(cfg Config) *Result {
			cfg = cfg.withDefaults()
			names := benchNames()
			depths := []int{1, 2, 4, 8}
			intervals := []int{4, 16} // pipelined vs unpipelined L2 port

			// stallPerAccess[bench][intervalIdx][depthIdx]
			out := make([][][]float64, len(names))
			for i := range out {
				out[i] = make([][]float64, len(intervals))
				for j := range out[i] {
					out[i][j] = make([]float64, len(depths))
				}
			}
			cfg.parallelFor(len(names), func(i int) {
				tr := cfg.Traces.Get(names[i])
				for ii, interval := range intervals {
					for di, depth := range depths {
						inner := core.NewBaseline(
							cache.MustNew(l1Config(4096, 16)), nil, core.DefaultTiming())
						fe := core.NewWithWriteBuffer(inner,
							core.NewWriteBuffer(depth, interval))
						st := runFrontOn(tr.Source(), dSide, fe)
						// Isolate the buffer's contribution: stalls beyond
						// the plain front-end's.
						base := runFront(cfg, tr.Source(), dSide, func() core.FrontEnd {
							return core.NewBaseline(cache.MustNew(l1Config(4096, 16)),
								nil, core.DefaultTiming())
						})
						out[i][ii][di] = float64(st.StallCycles-base.StallCycles) /
							float64(max(1, st.Accesses))
					}
				}
			})

			headers := []string{"program", "port"}
			for _, d := range depths {
				headers = append(headers, fmt.Sprintf("wb%d", d))
			}
			var rows [][]string
			for i, name := range names {
				for ii, interval := range intervals {
					kind := "pipelined(4)"
					if interval == 16 {
						kind = "unpipelined(16)"
					}
					row := []string{name, kind}
					for di := range depths {
						row = append(row, fmt.Sprintf("%.2f", out[i][ii][di]))
					}
					rows = append(rows, row)
				}
			}
			text := textplot.Table(headers, rows) +
				"\n(extra store-stall cycles per data access from the write buffer, on a\n" +
				" write-through 4KB data cache. Against a pipelined L2 write port a few\n" +
				" entries absorb the bursts; against an unpipelined port the §2 bandwidth\n" +
				" wall appears: stalls stay high regardless of depth for the store-heavy\n" +
				" benchmarks.)\n"
			return &Result{ID: "ablation-writebuffer",
				Title: "Write buffer depth vs L2 write-port speed",
				Text:  text, Headers: headers, Rows: rows}
		},
	}
}
