package experiments

import (
	"fmt"
	"math"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/stats"
	"jouppi/internal/textplot"
)

// streamParamSweep implements Figures 4-6 and 4-7: percentage of misses
// removed by single and 4-way stream buffers, swept over a cache
// parameter (size or line size), for both the instruction and data sides.
func streamParamSweep(cfg Config, id, title, xLabel string,
	params []int, mkGeom func(p int) (size, line int)) *Result {
	cfg = cfg.withDefaults()
	names := benchNames()
	ways := []int{1, 4}

	// results[sideIdx][wayIdx][paramIdx]
	var results [2][2][]float64
	for s := 0; s < 2; s++ {
		for w := 0; w < 2; w++ {
			results[s][w] = make([]float64, len(params))
		}
	}

	cfg.parallelFor(len(params), func(pi int) {
		size, line := mkGeom(params[pi])
		for s := 0; s < 2; s++ {
			base := make([]uint64, len(names))
			include := make([]bool, len(names))
			for b := range names {
				bc := runBaselineClassified(cfg, cfg.Traces.Source(names[b]), side(s), size, line)
				base[b] = bc.misses
				include[b] = bc.misses >= minConflictsForAverage
			}
			for wi, w := range ways {
				vals := make([]float64, len(names))
				for b := range names {
					st := runFront(cfg, cfg.Traces.Source(names[b]), side(s), func() core.FrontEnd {
						return core.NewStreamBuffer(cache.MustNew(l1Config(size, line)),
							core.StreamConfig{Ways: w, Depth: 4}, nil, core.DefaultTiming())
					})
					vals[b] = stats.PercentReduction(float64(base[b]), float64(st.FullMisses()))
				}
				results[s][wi][pi] = meanOver(vals, include)
			}
		}
	})

	xs := make([]float64, len(params))
	for i, p := range params {
		xs[i] = math.Log2(float64(p))
	}
	var series []textplot.Series
	for s := 0; s < 2; s++ {
		for wi, w := range ways {
			kind := "single"
			if w == 4 {
				kind = "4-way"
			}
			series = append(series, textplot.Series{
				Name: fmt.Sprintf("%s buffer, %s", kind, side(s)),
				X:    xs, Y: results[s][wi],
			})
		}
	}

	headers := []string{xLabel, "single I", "4-way I", "single D", "4-way D"}
	var rows [][]string
	for pi, p := range params {
		rows = append(rows, []string{fmt.Sprint(p),
			fmtPct(results[0][0][pi]), fmtPct(results[0][1][pi]),
			fmtPct(results[1][0][pi]), fmtPct(results[1][1][pi])})
	}
	text := textplot.Lines(title, "log2("+xLabel+")", "% misses removed", series, 60, 14) +
		"\n" + textplot.Table(headers, rows)
	return &Result{ID: id, Title: title, Text: text, Series: series, Headers: headers, Rows: rows}
}

// Fig46 reproduces Figure 4-6: stream buffer performance vs cache size
// (1KB to 128KB, 16B lines).
func Fig46() Experiment {
	return Experiment{
		ID:    "fig4-6",
		Title: "Figure 4-6: Stream buffer performance vs cache size",
		Run: func(cfg Config) *Result {
			return streamParamSweep(cfg, "fig4-6",
				"Figure 4-6: Stream buffer performance vs cache size (16B lines)",
				"cache size (KB)",
				[]int{1, 2, 4, 8, 16, 32, 64, 128},
				func(kb int) (int, int) { return kb * 1024, 16 })
		},
	}
}

// Fig47 reproduces Figure 4-7: stream buffer performance vs line size
// (8B to 256B, 4KB caches). The stream buffer's line size follows the
// cache's.
func Fig47() Experiment {
	return Experiment{
		ID:    "fig4-7",
		Title: "Figure 4-7: Stream buffer performance vs line size",
		Run: func(cfg Config) *Result {
			return streamParamSweep(cfg, "fig4-7",
				"Figure 4-7: Stream buffer performance vs line size (4KB caches)",
				"line size (B)",
				[]int{8, 16, 32, 64, 128, 256},
				func(line int) (int, int) { return 4096, line })
		},
	}
}
