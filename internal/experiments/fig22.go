package experiments

import (
	"fmt"

	"jouppi/internal/hierarchy"
	"jouppi/internal/perfmodel"
	"jouppi/internal/textplot"
)

// runSystem replays a benchmark through a full two-level system and
// returns the results. It is the one-config case of runSystemsFanout
// (the engine runs it inline, no goroutines). Cancellation of cfg's
// context stops the replay early; RunAll discards the partial results it
// would yield.
func runSystem(cfg Config, name string, sysCfg hierarchy.Config) hierarchy.Results {
	return runSystemsFanout(cfg, name, []hierarchy.Config{sysCfg})[0]
}

// bandsRows renders per-benchmark performance bands as stacked bars.
func bandsRows(bands []perfmodel.Bands) [][]textplot.Segment {
	rows := make([][]textplot.Segment, len(bands))
	for i, b := range bands {
		rows[i] = []textplot.Segment{
			{Name: "net", Glyph: '=', Value: b.Net},
			{Name: "aux", Glyph: '+', Value: b.Aux},
			{Name: "L1I", Glyph: 'i', Value: b.L1I},
			{Name: "L1D", Glyph: 'd', Value: b.L1D},
			{Name: "L2", Glyph: '2', Value: b.L2},
		}
	}
	return rows
}

// Fig22 reproduces Figure 2-2: baseline design performance — the share of
// potential performance achieved by each benchmark and where the rest is
// lost (L1 instruction misses, L1 data misses, L2 misses).
func Fig22() Experiment {
	return Experiment{
		ID:    "fig2-2",
		Title: "Figure 2-2: Baseline design performance",
		Run: func(cfg Config) *Result {
			cfg = cfg.withDefaults()
			names := benchNames()
			bands := make([]perfmodel.Bands, len(names))
			cfg.parallelFor(len(names), func(i int) {
				r := runSystem(cfg, names[i], hierarchy.Config{})
				bands[i] = r.Breakdown.LossBands()
			})

			headers := []string{"program", "net perf %", "lost L1I %", "lost L1D %", "lost L2 %"}
			var rows [][]string
			for i, name := range names {
				b := bands[i]
				rows = append(rows, []string{name, fmtPct(b.Net), fmtPct(b.L1I),
					fmtPct(b.L1D), fmtPct(b.L2)})
			}
			// Full-precision per-benchmark bands (X is the benchmark index in
			// paper order), so downstream consumers — including the golden
			// snapshot suite — see the exact simulated numbers, not the
			// one-decimal renderings in Rows.
			xs := make([]float64, len(names))
			band := func(pick func(perfmodel.Bands) float64) []float64 {
				ys := make([]float64, len(bands))
				for i, b := range bands {
					xs[i] = float64(i)
					ys[i] = pick(b)
				}
				return ys
			}
			series := []textplot.Series{
				{Name: "net", X: xs, Y: band(func(b perfmodel.Bands) float64 { return b.Net })},
				{Name: "lost L1I", X: xs, Y: band(func(b perfmodel.Bands) float64 { return b.L1I })},
				{Name: "lost L1D", X: xs, Y: band(func(b perfmodel.Bands) float64 { return b.L1D })},
				{Name: "lost L2", X: xs, Y: band(func(b perfmodel.Bands) float64 { return b.L2 })},
			}
			text := textplot.StackedBars(
				"Percent of potential performance (= useful) and losses per benchmark",
				names, bandsRows(bands), 60) +
				"\n" + textplot.Table(headers, rows) +
				fmt.Sprintf("\n(baseline: 4KB split I/D, 16B lines, penalties 24/320 instruction times)\n")
			return &Result{ID: "fig2-2", Title: "Figure 2-2: Baseline design performance",
				Text: text, Series: series, Headers: headers, Rows: rows}
		},
	}
}
