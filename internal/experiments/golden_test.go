package experiments

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"jouppi/internal/textplot"
)

// The golden suite pins the reproduced paper numbers bit-for-bit: each
// figure's full-precision Series is snapshotted to testdata/golden/ at a
// fixed small scale, and any change that shifts a summary number by even
// one ULP fails tier-1. Regenerate deliberately with
//
//	go test ./internal/experiments -run TestGoldenFigures -update
var updateGolden = flag.Bool("update", false, "rewrite golden figure snapshots in testdata/golden")

// goldenScale is deliberately independent of smallCfg's scale so the
// snapshots stay valid even if the rest of the suite retunes its traces.
const goldenScale = 0.05

var goldenTraces = NewTraceSet(goldenScale)

// goldenIDs lists the paper figures pinned by the suite (≥4 required).
var goldenIDs = []string{"fig2-2", "fig3-1", "fig3-3", "fig4-1", "fig4-3", "fig4-6"}

// goldenFigure is the on-disk snapshot. JSON round-trips float64 exactly
// (shortest representation that parses back to the same bits), so exact
// equality below really is bit equality.
type goldenFigure struct {
	ID     string            `json:"id"`
	Scale  float64           `json:"scale"`
	Series []textplot.Series `json:"series"`
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

// runGoldenFigures replays the golden figures through RunAll — the same
// entry point production sweeps use — and returns one snapshot per ID.
func runGoldenFigures(t *testing.T) map[string]goldenFigure {
	t.Helper()
	want := map[string]bool{}
	for _, id := range goldenIDs {
		want[id] = true
	}
	var exps []Experiment
	for _, e := range All() {
		if want[e.ID] {
			exps = append(exps, e)
		}
	}
	if len(exps) != len(goldenIDs) {
		t.Fatalf("found %d of %d golden experiments in All()", len(exps), len(goldenIDs))
	}
	cfg := Config{Scale: goldenScale, Traces: goldenTraces}
	results, err := RunAll(context.Background(), cfg, RunOptions{Experiments: exps})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]goldenFigure{}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("experiment %s failed: %s", r.ID, r.Err)
		}
		if len(r.Series) == 0 {
			t.Fatalf("experiment %s has no Series to snapshot", r.ID)
		}
		out[r.ID] = goldenFigure{ID: r.ID, Scale: goldenScale, Series: r.Series}
	}
	return out
}

// diffGolden reports the first bit-level difference between two snapshots,
// or "" if they are identical. Floats are compared via Float64bits so a
// one-ULP drift (and even a NaN-payload change) is a mismatch.
func diffGolden(want, got goldenFigure) string {
	if want.ID != got.ID {
		return fmt.Sprintf("id: %q != %q", got.ID, want.ID)
	}
	if math.Float64bits(want.Scale) != math.Float64bits(got.Scale) {
		return fmt.Sprintf("scale: %v != %v", got.Scale, want.Scale)
	}
	if len(want.Series) != len(got.Series) {
		return fmt.Sprintf("series count: %d != %d", len(got.Series), len(want.Series))
	}
	for i, ws := range want.Series {
		gs := got.Series[i]
		if ws.Name != gs.Name {
			return fmt.Sprintf("series[%d] name: %q != %q", i, gs.Name, ws.Name)
		}
		if d := diffFloats(fmt.Sprintf("series[%d]=%s X", i, ws.Name), ws.X, gs.X); d != "" {
			return d
		}
		if d := diffFloats(fmt.Sprintf("series[%d]=%s Y", i, ws.Name), ws.Y, gs.Y); d != "" {
			return d
		}
	}
	return ""
}

func diffFloats(label string, want, got []float64) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			return fmt.Sprintf("%s[%d]: %v (bits %#x) != golden %v (bits %#x)",
				label, i, got[i], math.Float64bits(got[i]),
				want[i], math.Float64bits(want[i]))
		}
	}
	return ""
}

// TestGoldenFigures is the paper-fidelity pin: every golden figure's
// summary numbers must match the committed snapshot exactly.
func TestGoldenFigures(t *testing.T) {
	got := runGoldenFigures(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range goldenIDs {
		fig, ok := got[id]
		if !ok {
			t.Errorf("%s: no result produced", id)
			continue
		}
		path := goldenPath(id)
		if *updateGolden {
			buf, err := json.MarshalIndent(fig, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("updated %s", path)
			continue
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v (run with -update to generate)", id, err)
			continue
		}
		var want goldenFigure
		if err := json.Unmarshal(buf, &want); err != nil {
			t.Fatalf("%s: corrupt golden file: %v", path, err)
		}
		if d := diffGolden(want, fig); d != "" {
			t.Errorf("%s: reproduced figure drifted from golden snapshot:\n  %s\n(rerun with -update only if the change is intended)", id, d)
		}
	}
}

// TestGoldenDetectsULPPerturbation proves the comparator's sensitivity
// claim: nudging a single committed summary number by one ULP must be
// reported as a mismatch.
func TestGoldenDetectsULPPerturbation(t *testing.T) {
	buf, err := os.ReadFile(goldenPath(goldenIDs[0]))
	if err != nil {
		t.Skipf("golden files not generated yet: %v", err)
	}
	var want, perturbed goldenFigure
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &perturbed); err != nil {
		t.Fatal(err)
	}
	if d := diffGolden(want, perturbed); d != "" {
		t.Fatalf("identical snapshots reported as different: %s", d)
	}
	y := perturbed.Series[0].Y
	if len(y) == 0 {
		t.Fatal("golden snapshot has an empty series")
	}
	y[0] = math.Nextafter(y[0], math.Inf(1))
	if d := diffGolden(want, perturbed); d == "" {
		t.Errorf("one-ULP perturbation of %s Y[0] went undetected", perturbed.Series[0].Name)
	} else {
		t.Logf("perturbation detected: %s", d)
	}
}
