package experiments

import (
	"fmt"
	"math"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/stats"
	"jouppi/internal/textplot"
)

// victimVsParamSweep implements the shared shape of Figures 3-6 and 3-7:
// the percentage of data-cache conflict misses removed by victim caches of
// 1, 2, 4, and 15 entries, swept over a cache parameter (size or line
// size), plus the percentage of misses that are conflicts at each point.
func victimVsParamSweep(cfg Config, id, title, xLabel string,
	params []int, mkGeom func(p int) (size, line int)) *Result {
	cfg = cfg.withDefaults()
	names := benchNames()
	entries := []int{1, 2, 4, 15}

	type point struct {
		removed  [4]float64 // average % conflict misses removed per entry count
		conflict float64    // average % of misses that are conflicts
	}
	points := make([]point, len(params))

	cfg.parallelFor(len(params), func(pi int) {
		size, line := mkGeom(params[pi])
		baseArr := make([]baseCounts, len(names))
		for b := range names {
			baseArr[b] = runBaselineClassified(cfg, cfg.Traces.Source(names[b]), dSide, size, line)
		}
		include := make([]bool, len(names))
		var conflictPcts []float64
		for b := range names {
			include[b] = baseArr[b].classes.Conflict >= minConflictsForAverage
			conflictPcts = append(conflictPcts,
				stats.Percent(float64(baseArr[b].classes.Conflict), float64(baseArr[b].misses)))
		}
		points[pi].conflict = stats.Mean(conflictPcts)
		for ei, e := range entries {
			vals := make([]float64, len(names))
			for b := range names {
				st := runFront(cfg, cfg.Traces.Source(names[b]), dSide, func() core.FrontEnd {
					return core.NewVictimCache(cache.MustNew(l1Config(size, line)), e,
						nil, core.DefaultTiming())
				})
				removedMisses := float64(baseArr[b].misses) - float64(st.FullMisses())
				vals[b] = min(100, stats.Percent(removedMisses, float64(baseArr[b].classes.Conflict)))
			}
			points[pi].removed[ei] = meanOver(vals, include)
		}
	})

	xs := make([]float64, len(params))
	for i, p := range params {
		xs[i] = math.Log2(float64(p))
	}
	var series []textplot.Series
	for ei, e := range entries {
		ys := make([]float64, len(params))
		for pi := range params {
			ys[pi] = points[pi].removed[ei]
		}
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("%d-entry victim cache", e), X: xs, Y: ys})
	}
	confYs := make([]float64, len(params))
	for pi := range params {
		confYs[pi] = points[pi].conflict
	}
	series = append(series, textplot.Series{Name: "% conflict misses", X: xs, Y: confYs})

	headers := []string{xLabel, "1-entry", "2-entry", "4-entry", "15-entry", "% conflicts"}
	var rows [][]string
	for pi, p := range params {
		rows = append(rows, []string{
			fmt.Sprint(p),
			fmtPct(points[pi].removed[0]), fmtPct(points[pi].removed[1]),
			fmtPct(points[pi].removed[2]), fmtPct(points[pi].removed[3]),
			fmtPct(points[pi].conflict),
		})
	}
	text := textplot.Lines(title, "log2("+xLabel+")", "% D conflict misses removed",
		series, 60, 14) + "\n" + textplot.Table(headers, rows)
	return &Result{ID: id, Title: title, Text: text, Series: series, Headers: headers, Rows: rows}
}

// Fig36 reproduces Figure 3-6: victim cache performance as the
// direct-mapped data cache size varies from 1KB to 128KB (16B lines).
func Fig36() Experiment {
	return Experiment{
		ID:    "fig3-6",
		Title: "Figure 3-6: Victim cache performance vs direct-mapped cache size",
		Run: func(cfg Config) *Result {
			return victimVsParamSweep(cfg, "fig3-6",
				"Figure 3-6: Victim cache performance vs data cache size (16B lines)",
				"cache size (KB)",
				[]int{1, 2, 4, 8, 16, 32, 64, 128},
				func(kb int) (int, int) { return kb * 1024, 16 })
		},
	}
}

// Fig37 reproduces Figure 3-7: victim cache performance as the data cache
// line size varies from 8B to 256B (4KB cache).
func Fig37() Experiment {
	return Experiment{
		ID:    "fig3-7",
		Title: "Figure 3-7: Victim cache performance vs data cache line size",
		Run: func(cfg Config) *Result {
			return victimVsParamSweep(cfg, "fig3-7",
				"Figure 3-7: Victim cache performance vs line size (4KB cache)",
				"line size (B)",
				[]int{8, 16, 32, 64, 128, 256},
				func(line int) (int, int) { return 4096, line })
		},
	}
}
