package experiments

import (
	"fmt"

	"jouppi/internal/core"
	"jouppi/internal/hierarchy"
	"jouppi/internal/perfmodel"
	"jouppi/internal/stats"
	"jouppi/internal/textplot"
)

// improvedConfig is the paper's §5 improved system: a single stream
// buffer on the instruction cache; a 4-entry victim cache plus a 4-way
// stream buffer on the data cache.
func improvedConfig() hierarchy.Config {
	return hierarchy.Config{
		IAugment: hierarchy.Augment{
			Kind:   hierarchy.StreamBuffers,
			Stream: core.StreamConfig{Ways: 1, Depth: 4},
		},
		DAugment: hierarchy.Augment{
			Kind:    hierarchy.VictimAndStream,
			Entries: 4,
			Stream:  core.StreamConfig{Ways: 4, Depth: 4},
		},
	}
}

// Fig51 reproduces Figure 5-1: system performance of the baseline versus
// the improved system with a data victim cache, an instruction stream
// buffer, and a four-way data stream buffer.
func Fig51() Experiment {
	return Experiment{
		ID:    "fig5-1",
		Title: "Figure 5-1: Improved system performance",
		Run: func(cfg Config) *Result {
			cfg = cfg.withDefaults()
			names := benchNames()

			type pair struct {
				base, improved hierarchy.Results
			}
			out := make([]pair, len(names))
			cfg.parallelFor(len(names)*2, func(k int) {
				idx := k / 2
				if k%2 == 0 {
					out[idx].base = runSystem(cfg, names[idx], hierarchy.Config{})
				} else {
					out[idx].improved = runSystem(cfg, names[idx], improvedConfig())
				}
			})

			headers := []string{"program", "base perf %", "improved perf %", "speedup",
				"base missrate I/D", "improved missrate I/D"}
			var rows [][]string
			var speedups, missReductions []float64
			var bands []perfmodel.Bands
			var labels []string
			for i, name := range names {
				b, im := out[i].base, out[i].improved
				sp := perfmodel.Speedup(b.Breakdown, im.Breakdown)
				speedups = append(speedups, sp)
				baseMR := b.I.MissRate() + b.D.MissRate()
				imMR := im.I.MissRate() + im.D.MissRate()
				missReductions = append(missReductions, stats.PercentReduction(baseMR, imMR))
				rows = append(rows, []string{
					name,
					fmtPct(b.Breakdown.PercentOfPotential()),
					fmtPct(im.Breakdown.PercentOfPotential()),
					fmt.Sprintf("%.2fx", sp),
					fmt.Sprintf("%s/%s", fmtRate(b.I.MissRate()), fmtRate(b.D.MissRate())),
					fmt.Sprintf("%s/%s", fmtRate(im.I.MissRate()), fmtRate(im.D.MissRate())),
				})
				labels = append(labels, name+" base", name+" +vc/sb")
				bands = append(bands, b.Breakdown.LossBands(), im.Breakdown.LossBands())
			}

			avgSpeedup := stats.Mean(speedups)
			avgImprovementPct := (avgSpeedup - 1) * 100
			text := textplot.StackedBars(
				"Figure 5-1: share of potential performance, baseline vs improved system",
				labels, bandsRows(bands), 60) +
				"\n" + textplot.Table(headers, rows) +
				fmt.Sprintf("\naverage system performance improvement: %.0f%% (mean speedup %.2fx)\n",
					avgImprovementPct, avgSpeedup) +
				fmt.Sprintf("average L1 miss-rate reduction: %.0f%% (paper: factor of two to three)\n",
					stats.Mean(missReductions))
			return &Result{ID: "fig5-1", Title: "Figure 5-1: Improved system performance",
				Text: text, Headers: headers, Rows: rows}
		},
	}
}
