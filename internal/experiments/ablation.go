package experiments

import (
	"fmt"

	"jouppi/internal/cache"
	"jouppi/internal/core"
	"jouppi/internal/fanout"
	"jouppi/internal/hierarchy"
	"jouppi/internal/stats"
	"jouppi/internal/textplot"
	"jouppi/internal/workload"
)

// AblationQuasi compares the paper's simple head-only stream buffer with
// the quasi-sequential extension (a tag comparator on every entry), which
// the paper §4.1 identifies as the limitation of its model.
func AblationQuasi() Experiment {
	return Experiment{
		ID:    "ablation-quasi",
		Title: "Ablation: quasi-sequential vs head-only stream buffer",
		Run: func(cfg Config) *Result {
			cfg = cfg.withDefaults()
			names := benchNames()

			type row struct{ base, head, quasi uint64 }
			out := make([]row, len(names))
			// One pass per benchmark: the classified baseline and both
			// stream-buffer variants ride the same trace broadcast.
			cfg.parallelFor(len(names), func(i int) {
				bc := newClassifiedRun(dSide, 4096, 16)
				mk := func(quasi bool) *frontRun {
					return newFrontRun(dSide, core.NewStreamBuffer(cache.MustNew(l1Config(4096, 16)),
						core.StreamConfig{Ways: 4, Depth: 4, Quasi: quasi},
						nil, core.DefaultTiming()))
				}
				head, quasi := mk(false), mk(true)
				replayGroup(cfg, cfg.Traces.Source(names[i]), bc, head, quasi)
				out[i] = row{bc.counts(cfg).misses,
					head.stats(cfg).FullMisses(), quasi.stats(cfg).FullMisses()}
			})

			headers := []string{"program", "head-only removed", "quasi removed", "gain (pp)"}
			var rows [][]string
			for i, name := range names {
				r := out[i]
				h := stats.PercentReduction(float64(r.base), float64(r.head))
				q := stats.PercentReduction(float64(r.base), float64(r.quasi))
				rows = append(rows, []string{name, fmtPct(h), fmtPct(q),
					fmt.Sprintf("%+.1f", q-h)})
			}
			text := textplot.Table(headers, rows) +
				"\n(4-way, 4-entry data stream buffers; % of baseline D misses removed)\n"
			return &Result{ID: "ablation-quasi", Title: "Quasi-sequential stream buffer ablation",
				Text: text, Headers: headers, Rows: rows}
		},
	}
}

// AblationStride evaluates the stride-detecting stream buffer (§5 future
// work) across an access-pattern gallery: a sequential sweep (the paper's
// home turf), the column-major matrix sweep (non-unit stride, where the
// plain buffer is useless), and a random-order pointer chase (where no
// prefetcher of this family can help — the technique's honest boundary).
func AblationStride() Experiment {
	return Experiment{
		ID:    "ablation-stride",
		Title: "Ablation: stream-buffer variants across access patterns",
		Run: func(cfg Config) *Result {
			cfg = cfg.withDefaults()

			patterns := []struct {
				label string
				bench workload.Benchmark
			}{
				{"sequential (linpack)", workload.MustByName("linpack")},
				{"non-unit stride (strided)", workload.Strided()},
				{"pointer chase (ptrchase)", workload.PointerChase()},
			}

			headers := []string{"pattern", "baseline D misses",
				"sequential 4-way", "stride-detecting 4-way"}
			var rows [][]string
			for _, p := range patterns {
				// Generate each pattern once; the baseline and both
				// buffer variants consume the same streamed trace.
				mk := func(detect bool) *frontRun {
					return newFrontRun(dSide, core.NewStreamBuffer(cache.MustNew(l1Config(4096, 16)),
						core.StreamConfig{Ways: 4, Depth: 4, DetectStride: detect},
						nil, core.DefaultTiming()))
				}
				bc := newClassifiedRun(dSide, 4096, 16)
				seq, det := mk(false), mk(true)
				src := workload.NewSource(p.bench, cfg.Scale)
				replayGroup(cfg, src, bc, seq, det)
				src.Close()
				base := bc.counts(cfg)
				reduced := func(f *frontRun) string {
					return fmtPct(stats.PercentReduction(float64(base.misses),
						float64(f.stats(cfg).FullMisses())))
				}
				rows = append(rows, []string{p.label, fmt.Sprint(base.misses),
					reduced(seq), reduced(det)})
			}
			text := textplot.Table(headers, rows) +
				"\n(% of baseline D misses removed. Sequential streams are the paper's\n" +
				" case; the two-delta stride detector adds the column-major sweep; the\n" +
				" random pointer chase defeats both — prefetching by address arithmetic\n" +
				" cannot follow data-dependent pointers.)\n"
			return &Result{ID: "ablation-stride", Title: "Stream-buffer variants vs access patterns",
				Text: text, Headers: headers, Rows: rows}
		},
	}
}

// AblationL2Victim evaluates a victim cache behind the second-level cache
// (§3.5, "work ... is underway"). With the paper's 1MB L2 the benchmarks
// barely miss at all, so a smaller L2 is also shown to expose the
// conflict behaviour the paper anticipates for long traces.
func AblationL2Victim() Experiment {
	return Experiment{
		ID:    "ablation-l2victim",
		Title: "Ablation: victim cache behind the second-level cache",
		Run: func(cfg Config) *Result {
			cfg = cfg.withDefaults()
			names := benchNames()

			headers := []string{"program", "L2 size", "L2 misses (base)", "L2 misses (+8-entry VC)", "reduction"}
			var rows [][]string
			sizes := []int{1 << 20, 64 << 10}
			// results indexed [bench][size][0=base,1=victim]. All four
			// systems of a benchmark share one trace pass.
			results := make([][][2]hierarchy.Results, len(names))
			for i := range results {
				results[i] = make([][2]hierarchy.Results, len(sizes))
			}
			cfg.parallelFor(len(names), func(b int) {
				var sysCfgs []hierarchy.Config
				for _, size := range sizes {
					for _, entries := range []int{0, 8} {
						sysCfgs = append(sysCfgs, hierarchy.Config{
							L2:              cache.Config{Name: "L2", Size: size, LineSize: 128, Assoc: 1},
							L2VictimEntries: entries,
						})
					}
				}
				rs := runSystemsFanout(cfg, names[b], sysCfgs)
				for s := range sizes {
					results[b][s][0] = rs[2*s]
					results[b][s][1] = rs[2*s+1]
				}
			})
			for b, name := range names {
				for s, size := range sizes {
					base := results[b][s][0]
					vc := results[b][s][1]
					bm := base.L2I.DemandMisses + base.L2D.DemandMisses
					vm := vc.L2I.DemandMisses + vc.L2D.DemandMisses
					label := fmt.Sprintf("%dKB", size/1024)
					rows = append(rows, []string{name, label,
						fmt.Sprint(bm), fmt.Sprint(vm),
						fmtPct(stats.PercentReduction(float64(bm), float64(vm)))})
				}
			}
			text := textplot.Table(headers, rows) +
				"\n(128B L2 lines; demand misses only. The 1MB L2 rows show the paper's regime —\n" +
				" too few misses for victim caching to matter on short traces; the 64KB rows\n" +
				" expose the L2 conflict behaviour the technique targets.)\n"
			return &Result{ID: "ablation-l2victim", Title: "L2 victim cache ablation",
				Text: text, Headers: headers, Rows: rows}
		},
	}
}

// AblationMissCmp verifies §3.2's claim that victim caching is always an
// improvement over miss caching, per benchmark and entry count.
func AblationMissCmp() Experiment {
	return Experiment{
		ID:    "ablation-misscmp",
		Title: "Ablation: victim caching vs miss caching (D-cache)",
		Run: func(cfg Config) *Result {
			cfg = cfg.withDefaults()
			names := benchNames()
			entries := []int{1, 2, 4, 15}

			type cell struct{ mc, vc uint64 }
			grid := make([][]cell, len(names))
			base := make([]uint64, len(names))
			for i := range grid {
				grid[i] = make([]cell, len(entries))
			}
			// Nine configurations per benchmark (classified baseline plus
			// a miss and a victim cache at each entry count) ride one
			// trace pass — the widest fan-out in the suite.
			cfg.parallelFor(len(names), func(i int) {
				bc := newClassifiedRun(dSide, 4096, 16)
				consumers := []fanout.Consumer{bc}
				mcs := make([]*frontRun, len(entries))
				vcs := make([]*frontRun, len(entries))
				for ei, e := range entries {
					mcs[ei] = newFrontRun(dSide,
						core.NewMissCache(cache.MustNew(l1Config(4096, 16)), e, nil, core.DefaultTiming()))
					vcs[ei] = newFrontRun(dSide,
						core.NewVictimCache(cache.MustNew(l1Config(4096, 16)), e, nil, core.DefaultTiming()))
					consumers = append(consumers, mcs[ei], vcs[ei])
				}
				replayGroup(cfg, cfg.Traces.Source(names[i]), consumers...)
				base[i] = bc.counts(cfg).misses
				for ei := range entries {
					grid[i][ei] = cell{mcs[ei].stats(cfg).FullMisses(), vcs[ei].stats(cfg).FullMisses()}
				}
			})

			headers := []string{"program"}
			for _, e := range entries {
				headers = append(headers, fmt.Sprintf("mc%d", e), fmt.Sprintf("vc%d", e))
			}
			var rows [][]string
			violations := 0
			for i, name := range names {
				row := []string{name}
				for ei := range entries {
					c := grid[i][ei]
					mcPct := stats.PercentReduction(float64(base[i]), float64(c.mc))
					vcPct := stats.PercentReduction(float64(base[i]), float64(c.vc))
					if c.vc > c.mc {
						violations++
					}
					row = append(row, fmtPct(mcPct), fmtPct(vcPct))
				}
				rows = append(rows, row)
			}
			text := textplot.Table(headers, rows) +
				fmt.Sprintf("\n(%% of baseline D misses removed; victim-worse-than-miss violations: %d — the paper predicts 0)\n",
					violations)
			return &Result{ID: "ablation-misscmp", Title: "Victim vs miss cache comparison",
				Text: text, Headers: headers, Rows: rows}
		},
	}
}

// AblationReplacement compares LRU, FIFO, and Random replacement in the
// small fully-associative structures' underlying cache model at 4-way
// associativity — a design-space check the paper takes as given (its
// structures are all LRU).
func AblationReplacement() Experiment {
	return Experiment{
		ID:    "ablation-replacement",
		Title: "Ablation: replacement policy in a 4-way set-associative L1D",
		Run: func(cfg Config) *Result {
			cfg = cfg.withDefaults()
			names := benchNames()
			policies := []cache.Replacement{cache.LRU, cache.FIFO, cache.Random}

			miss := make([][]float64, len(names))
			for i := range miss {
				miss[i] = make([]float64, len(policies))
			}
			// All three policies of a benchmark share one trace pass.
			cfg.parallelFor(len(names), func(b int) {
				runs := make([]*frontRun, len(policies))
				consumers := make([]fanout.Consumer, len(policies))
				for p, pol := range policies {
					l1 := cache.MustNew(cache.Config{Size: 4096, LineSize: 16, Assoc: 4,
						Replacement: pol, RandomSeed: 12345})
					runs[p] = newFrontRun(dSide, core.NewBaseline(l1, nil, core.DefaultTiming()))
					consumers[p] = runs[p]
				}
				replayGroup(cfg, cfg.Traces.Source(names[b]), consumers...)
				for p := range policies {
					miss[b][p] = runs[p].stats(cfg).MissRate()
				}
			})

			headers := []string{"program", "LRU", "FIFO", "Random"}
			var rows [][]string
			for i, name := range names {
				rows = append(rows, []string{name,
					fmtRate(miss[i][0]), fmtRate(miss[i][1]), fmtRate(miss[i][2])})
			}
			text := textplot.Table(headers, rows) +
				"\n(4KB 4-way data cache miss rates under each replacement policy)\n"
			return &Result{ID: "ablation-replacement", Title: "Replacement policy ablation",
				Text: text, Headers: headers, Rows: rows}
		},
	}
}
